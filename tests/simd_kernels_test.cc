// SIMD parity suite (DESIGN.md §17, `ctest -L simd`, check.sh --simd).
//
// Pins the three contracts of the kernel layer:
//   1. dispatch-vs-scalar BIT identity for every simd:: kernel, including
//      non-multiple-of-lane tails;
//   2. the twiddle-table FFT against the legacy w*=wlen recurrence within
//      a max-ulp bound (the one intentional numeric change of §17);
//   3. the blocked denominator order against the old serial left-to-right
//      sum within 1e-12 dB, and the engine against the per-link path
//      bit-exactly;
// plus PrachDetectorBank-vs-PrachDetector bit identity and a composite
// digest for the cross-build (CELLFI_SIMD=OFF vs ON) comparison driven by
// tools/check.sh --simd via CELLFI_SIMD_DIGEST_OUT/_EXPECT.
#include "cellfi/common/simd.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cellfi/common/fft.h"
#include "cellfi/common/rng.h"
#include "cellfi/phy/prach.h"
#include "cellfi/radio/environment.h"
#include "cellfi/radio/interference.h"
#include "cellfi/radio/pathloss.h"

namespace cellfi {
namespace {

// Exact bit equality (stricter than EXPECT_DOUBLE_EQ: distinguishes
// -0.0 from +0.0), which is what the §17 contract promises.
bool BitEqual(double a, double b) {
  std::uint64_t ua = 0;
  std::uint64_t ub = 0;
  std::memcpy(&ua, &a, sizeof(ua));
  std::memcpy(&ub, &b, sizeof(ub));
  return ua == ub;
}

std::vector<double> RandomDoubles(std::size_t n, std::uint64_t seed,
                                  double lo = -1.0, double hi = 1.0) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.Uniform(lo, hi);
  return v;
}

// RAII around simd::ForceScalar for the A/B comparisons.
struct ScopedForceScalar {
  explicit ScopedForceScalar(bool force) : prev(simd::ForceScalar(force)) {}
  ~ScopedForceScalar() { simd::ForceScalar(prev); }
  bool prev;
};

// Sizes straddling every vector width in play (AVX2: 8 doubles per
// blocked-sum step, 4 per butterfly; SSE2/NEON: 2) including pure-tail
// and tail-carrying cases.
const std::size_t kSizes[] = {0, 1, 3, 5, 8, 13, 64, 100, 839, 1024};

TEST(SimdKernelsTest, BlockedSum8DispatchMatchesScalarBitExact) {
  for (std::size_t n : kSizes) {
    const auto x = RandomDoubles(n, 100 + n, 1e-12, 1e-3);
    const double scalar = simd::BlockedSum8Scalar(x.data(), n);
    const double dispatched = simd::BlockedSum8(x.data(), n);
    EXPECT_TRUE(BitEqual(scalar, dispatched)) << "n=" << n;
    ScopedForceScalar forced(true);
    EXPECT_TRUE(BitEqual(scalar, simd::BlockedSum8(x.data(), n))) << "n=" << n;
  }
}

TEST(SimdKernelsTest, ButterflyBlockDispatchMatchesScalarBitExact) {
  for (std::size_t half : kSizes) {
    if (half == 0) continue;
    auto re_a = RandomDoubles(2 * half, 200 + half);
    auto im_a = RandomDoubles(2 * half, 300 + half);
    auto re_b = re_a;
    auto im_b = im_a;
    // Real unit-circle twiddles, as the FFT plans produce.
    std::vector<double> tw_re(half), tw_im(half);
    for (std::size_t k = 0; k < half; ++k) {
      const double ang = -M_PI * static_cast<double>(k) / static_cast<double>(half);
      tw_re[k] = std::cos(ang);
      tw_im[k] = std::sin(ang);
    }
    simd::ButterflyBlockScalar(re_a.data(), im_a.data(), tw_re.data(),
                               tw_im.data(), half);
    simd::ButterflyBlock(re_b.data(), im_b.data(), tw_re.data(), tw_im.data(),
                         half);
    for (std::size_t k = 0; k < 2 * half; ++k) {
      ASSERT_TRUE(BitEqual(re_a[k], re_b[k])) << "half=" << half << " k=" << k;
      ASSERT_TRUE(BitEqual(im_a[k], im_b[k])) << "half=" << half << " k=" << k;
    }
  }
}

TEST(SimdKernelsTest, CMulSplitDispatchMatchesScalarBitExact) {
  for (std::size_t n : kSizes) {
    auto ar = RandomDoubles(n, 400 + n);
    auto ai = RandomDoubles(n, 500 + n);
    const auto br = RandomDoubles(n, 600 + n);
    const auto bi = RandomDoubles(n, 700 + n);
    auto ar2 = ar;
    auto ai2 = ai;
    simd::CMulSplitScalar(ar.data(), ai.data(), br.data(), bi.data(), n);
    simd::CMulSplit(ar2.data(), ai2.data(), br.data(), bi.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(BitEqual(ar[i], ar2[i])) << "n=" << n << " i=" << i;
      ASSERT_TRUE(BitEqual(ai[i], ai2[i])) << "n=" << n << " i=" << i;
    }
  }
}

TEST(SimdKernelsTest, ConjMulInterleavedDispatchMatchesScalarBitExact) {
  for (std::size_t n : kSizes) {
    const auto a = RandomDoubles(2 * n, 800 + n);
    const auto b = RandomDoubles(2 * n, 900 + n);
    std::vector<double> ref(2 * n), out(2 * n);
    simd::ConjMulInterleavedScalar(ref.data(), a.data(), b.data(), n);
    simd::ConjMulInterleaved(out.data(), a.data(), b.data(), n);
    for (std::size_t i = 0; i < 2 * n; ++i) {
      ASSERT_TRUE(BitEqual(ref[i], out[i])) << "n=" << n << " i=" << i;
    }
    // The PRACH correlator aliases dst == a; the contract allows it.
    auto aliased = a;
    simd::ConjMulInterleaved(aliased.data(), aliased.data(), b.data(), n);
    for (std::size_t i = 0; i < 2 * n; ++i) {
      ASSERT_TRUE(BitEqual(ref[i], aliased[i])) << "n=" << n << " i=" << i;
    }
  }
}

TEST(SimdKernelsTest, ScaleDispatchMatchesScalarBitExact) {
  for (std::size_t n : kSizes) {
    auto a = RandomDoubles(n, 1000 + n);
    auto b = a;
    const double s = 1.0 / 839.0;
    simd::ScaleScalar(a.data(), n, s);
    simd::Scale(b.data(), n, s);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(BitEqual(a[i], b[i])) << "n=" << n << " i=" << i;
    }
  }
}

// --- FFT: twiddle tables vs the legacy w *= wlen recurrence ---------------

// The pre-§17 radix-2 implementation, verbatim: one twiddle per stage,
// advanced by repeated complex multiplication. Kept here as the numeric
// yardstick the rewrite is measured against.
void LegacyFftRecurrence(Complex* a, std::size_t n, bool inverse) {
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = 2.0 * M_PI / static_cast<double>(len) * (inverse ? 1 : -1);
    const Complex wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = a[i + k];
        const Complex v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (std::size_t i = 0; i < n; ++i) a[i] *= inv_n;
  }
}

TEST(SimdFftTest, TwiddleTableMatchesLegacyRecurrenceWithinUlps) {
  // Error budget in ulps of the output scale (eps * max|X|). The table
  // version evaluates every twiddle directly, so the difference is
  // dominated by the recurrence's accumulated drift — empirically a few
  // hundred scale-ulps at n=4096; 4096 leaves headroom without letting a
  // real regression (wrong twiddle, wrong butterfly) through, as any such
  // bug produces O(|X|) errors, i.e. ~1e16 scale-ulps.
  constexpr double kMaxScaleUlps = 4096.0;
  for (std::size_t n : {256u, 1024u, 4096u}) {
    Rng rng(42 + n);
    std::vector<Complex> x(n);
    for (auto& v : x) v = Complex(rng.Normal(), rng.Normal());
    for (bool inverse : {false, true}) {
      auto legacy = x;
      LegacyFftRecurrence(legacy.data(), n, inverse);
      auto table = x;
      if (inverse) {
        Ifft(table);
      } else {
        Fft(table);
      }
      double max_abs = 0.0;
      for (const auto& v : legacy) max_abs = std::max(max_abs, std::abs(v));
      const double scale_ulp =
          std::numeric_limits<double>::epsilon() * max_abs;
      double worst = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        worst = std::max(worst, std::abs(table[i] - legacy[i]) / scale_ulp);
      }
      EXPECT_LE(worst, kMaxScaleUlps) << "n=" << n << " inverse=" << inverse;
    }
  }
}

// --- Denominator accumulation: blocked order vs old serial order ----------

TEST(SimdSinrTest, BlockedDenominatorWithinEpsilonOfSerialDb) {
  // The §17 reassociation (serial left-to-right -> 8-lane blocked) is the
  // one place the SINR denominator's bits may move. The contract bounds
  // the movement at 1e-12 dB for realistic term populations: noise floor
  // plus up to ~1000 interferer powers spanning nine decades.
  for (std::size_t n : {3u, 17u, 256u, 1024u, 1029u}) {
    const auto terms = RandomDoubles(n, 9000 + n, 1e-15, 1e-6);
    const double noise_mw = 1.2e-12;
    double serial = noise_mw;
    for (double t : terms) serial += t;
    const double blocked = noise_mw + simd::BlockedSum8(terms.data(), n);
    const double serial_db = 10.0 * std::log10(serial);
    const double blocked_db = 10.0 * std::log10(blocked);
    EXPECT_NEAR(blocked_db, serial_db, 1e-12) << "n=" << n;
  }
}

TEST(SimdSinrTest, EngineMatchesPerLinkPathBitExact) {
  // The engine's aggregate path (InterferenceMap::AggregateDenomMw over
  // the SoA term rows) and the legacy per-link path
  // (RadioEnvironment::SinrDb with an explicit interferer vector) share
  // the blocked accumulation order, so their results are bit-identical —
  // on the scalar and the dispatched kernel alike. bench_scale gates the
  // same identity at scale; this pins it in the unit suite.
  static HataUrbanPathLoss pathloss;
  RadioEnvironmentConfig cfg;
  cfg.enable_fading = false;
  RadioEnvironment env(pathloss, cfg);
  Rng rng(6);
  const RadioNodeId rx = env.AddNode({.position = {0, 0}});
  const RadioNodeId tx = env.AddNode({.position = {200, 0}, .tx_power_dbm = 30});
  std::vector<RadioNodeId> cells;
  for (int i = 0; i < 64; ++i) {
    cells.push_back(env.AddNode({.position = {rng.Uniform(-2000, 2000),
                                              rng.Uniform(-2000, 2000)},
                                 .tx_power_dbm = 30}));
  }
  InterferenceMap imap(env);
  imap.BeginEpoch(13, 360e3);
  std::vector<ActiveTransmitter> interferers;
  for (RadioNodeId c : cells) {
    for (int s = 0; s < 13; ++s) imap.AddTransmitter(s, c, 1.0 / 13.0);
    interferers.push_back({c, 1.0 / 13.0});
  }
  const SimTime now = 7 * kMillisecond;
  for (int s : {0, 5, 12}) {
    const double engine = imap.SinrDb(tx, rx, s, now, 1.0 / 13.0);
    const double legacy = env.SinrDb(tx, rx, static_cast<std::uint32_t>(s),
                                     now, interferers, 360e3, 1.0 / 13.0);
    EXPECT_TRUE(BitEqual(engine, legacy)) << "s=" << s;
    ScopedForceScalar forced(true);
    // Fresh map so the row rebuilds on the scalar path.
    InterferenceMap imap2(env);
    imap2.BeginEpoch(13, 360e3);
    for (RadioNodeId c : cells) {
      for (int sc = 0; sc < 13; ++sc) imap2.AddTransmitter(sc, c, 1.0 / 13.0);
    }
    const double engine_scalar = imap2.SinrDb(tx, rx, s, now, 1.0 / 13.0);
    EXPECT_TRUE(BitEqual(engine, engine_scalar)) << "s=" << s;
  }
}

// --- PRACH bank vs per-root detectors -------------------------------------

std::vector<Complex> AddSignals(const std::vector<Complex>& a,
                                const std::vector<Complex>& b) {
  std::vector<Complex> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

TEST(SimdPrachTest, BankMatchesPerRootDetectorsBitExact) {
  PrachConfig cfg;
  const std::vector<int> roots = {17, 29, 41};
  PrachDetectorBank bank(cfg, roots);
  std::vector<PrachDetector> detectors;
  for (int r : roots) {
    PrachConfig c = cfg;
    c.root = r;
    detectors.emplace_back(c);
  }

  // AWGN fixtures: single preamble on the first root, superimposed
  // preambles on two roots, and a noise-only occasion.
  Rng rng(33);
  std::vector<std::vector<Complex>> fixtures;
  {
    PrachConfig c17 = cfg;
    c17.root = 17;
    fixtures.push_back(PassThroughAwgn(GeneratePreamble(c17, 5), 7, -8.0, rng));
    PrachConfig c29 = cfg;
    c29.root = 29;
    fixtures.push_back(
        AddSignals(PassThroughAwgn(GeneratePreamble(c17, 3), 2, -6.0, rng),
                   PassThroughAwgn(GeneratePreamble(c29, 40), 11, -6.0, rng)));
    fixtures.push_back(NoiseOnly(cfg.sequence_length, rng));
  }

  bool any_detected = false;
  for (const auto& rx : fixtures) {
    const auto banked = bank.DetectAll(rx);
    ASSERT_EQ(banked.size(), roots.size());
    for (std::size_t k = 0; k < roots.size(); ++k) {
      EXPECT_EQ(banked[k].root, roots[k]);
      const auto individual = detectors[k].DetectAll(rx);
      ASSERT_EQ(banked[k].detections.size(), individual.size()) << "k=" << k;
      for (std::size_t d = 0; d < individual.size(); ++d) {
        EXPECT_EQ(banked[k].detections[d].detected, individual[d].detected);
        EXPECT_EQ(banked[k].detections[d].shift_estimate,
                  individual[d].shift_estimate);
        EXPECT_EQ(banked[k].detections[d].preamble_estimate,
                  individual[d].preamble_estimate);
        EXPECT_TRUE(BitEqual(banked[k].detections[d].peak_to_average,
                             individual[d].peak_to_average));
        any_detected = any_detected || individual[d].detected;
      }
    }
  }
  // The fixtures are not all noise: the comparison exercised real peaks.
  EXPECT_TRUE(any_detected);
}

// --- Cross-build digest ---------------------------------------------------

void DigestDouble(std::uint64_t& h, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    h ^= (bits >> (8 * i)) & 0xffu;
    h *= 0x100000001b3ull;  // FNV-1a
  }
}

// One number summarizing the bits of every kernel's output over fixed
// inputs, plus a full FFT, a Bluestein DFT and a PRACH detection pass.
std::uint64_t KernelDigest() {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t n : kSizes) {
    const auto x = RandomDoubles(n, 7000 + n, 1e-12, 1.0);
    DigestDouble(h, simd::BlockedSum8(x.data(), n));
  }
  {
    Rng rng(71);
    std::vector<Complex> x(1024);
    for (auto& v : x) v = Complex(rng.Normal(), rng.Normal());
    Fft(x);
    for (const auto& v : x) {
      DigestDouble(h, v.real());
      DigestDouble(h, v.imag());
    }
  }
  {
    Rng rng(72);
    std::vector<Complex> x(839);
    for (auto& v : x) v = Complex(rng.Normal(), rng.Normal());
    const auto y = Dft(x);
    for (const auto& v : y) {
      DigestDouble(h, v.real());
      DigestDouble(h, v.imag());
    }
  }
  {
    PrachConfig cfg;
    Rng rng(73);
    PrachDetector detector(cfg);
    const auto rx = PassThroughAwgn(GeneratePreamble(cfg, 17), 5, -10.0, rng);
    for (const auto& d : detector.DetectAll(rx)) {
      DigestDouble(h, d.peak_to_average);
      DigestDouble(h, static_cast<double>(d.shift_estimate));
    }
  }
  return h;
}

TEST(SimdDigestTest, CrossBuildDigest) {
  // In-binary half of the contract: the dispatched kernels and the forced
  // scalar path hash to the same bits.
  const std::uint64_t dispatched = KernelDigest();
  {
    ScopedForceScalar forced(true);
    EXPECT_EQ(dispatched, KernelDigest());
  }

  // Cross-build half, driven by tools/check.sh --simd: the CELLFI_SIMD=ON
  // tree writes the digest (CELLFI_SIMD_DIGEST_OUT), the =OFF tree reads
  // and compares it (CELLFI_SIMD_DIGEST_EXPECT). Both env knobs are
  // documented in README.md.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(dispatched));
  const std::string digest_hex(buf);
  if (const char* out_path = std::getenv("CELLFI_SIMD_DIGEST_OUT")) {
    std::ofstream out(out_path);
    ASSERT_TRUE(out.good()) << out_path;
    out << digest_hex << "\n";
  }
  if (const char* expect_path = std::getenv("CELLFI_SIMD_DIGEST_EXPECT")) {
    std::ifstream in(expect_path);
    ASSERT_TRUE(in.good()) << expect_path;
    std::string expected;
    in >> expected;
    EXPECT_EQ(expected, digest_hex)
        << "kernel digest differs from the other build configuration";
  }
}

}  // namespace
}  // namespace cellfi
