// Signal-level QAM/OFDM chain, and cross-validation of the CQI table's
// SINR thresholds against raw constellation error rates.
#include "cellfi/phy/ofdm.h"

#include <gtest/gtest.h>

#include "cellfi/common/stats.h"

namespace cellfi {
namespace {

std::vector<std::uint8_t> RandomBits(std::size_t n, Rng& rng) {
  std::vector<std::uint8_t> bits(n);
  for (auto& b : bits) b = rng.Bernoulli(0.5) ? 1 : 0;
  return bits;
}

double MeasuredBer(Modulation mod, double snr_db, std::size_t symbols, Rng& rng) {
  const auto k = static_cast<std::size_t>(BitsPerSymbol(mod));
  const auto bits = RandomBits(symbols * k, rng);
  const auto rx = DemodulateQamHard(AddAwgn(ModulateQam(bits, mod), snr_db, rng), mod);
  std::size_t errors = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) errors += bits[i] != rx[i];
  return static_cast<double>(errors) / static_cast<double>(bits.size());
}

class QamSweep : public ::testing::TestWithParam<Modulation> {};

TEST_P(QamSweep, UnitAveragePower) {
  const Modulation mod = GetParam();
  Rng rng(3);
  const auto bits = RandomBits(6000 * static_cast<std::size_t>(BitsPerSymbol(mod)), rng);
  const auto symbols = ModulateQam(bits, mod);
  double energy = 0.0;
  for (const auto& s : symbols) energy += std::norm(s);
  EXPECT_NEAR(energy / static_cast<double>(symbols.size()), 1.0, 0.03);
}

TEST_P(QamSweep, NoiselessRoundTrip) {
  const Modulation mod = GetParam();
  Rng rng(5);
  const auto bits = RandomBits(960, rng);
  EXPECT_EQ(DemodulateQamHard(ModulateQam(bits, mod), mod), bits);
}

TEST_P(QamSweep, BerMatchesTheory) {
  const Modulation mod = GetParam();
  Rng rng(7);
  // Pick an SNR where BER ~ 1e-2 for a statistically stable comparison.
  const double snr_db = mod == Modulation::kQpsk ? 7.0
                        : mod == Modulation::kQam16 ? 13.5
                                                    : 19.5;
  const double measured = MeasuredBer(mod, snr_db, 120'000, rng);
  const double theory = TheoreticalBerQam(mod, snr_db);
  EXPECT_GT(measured, theory * 0.7);
  EXPECT_LT(measured, theory * 1.4);
}

TEST_P(QamSweep, GrayCodingLimitsErrorsPerSymbol) {
  // At moderate SNR, almost every symbol error flips exactly one bit —
  // the whole point of Gray mapping. Bit errors / symbol errors ~ 1.
  const Modulation mod = GetParam();
  Rng rng(9);
  const auto k = static_cast<std::size_t>(BitsPerSymbol(mod));
  const double snr_db = mod == Modulation::kQpsk ? 6.0
                        : mod == Modulation::kQam16 ? 12.0
                                                    : 18.0;
  const auto bits = RandomBits(60'000 * k, rng);
  const auto rx = DemodulateQamHard(AddAwgn(ModulateQam(bits, mod), snr_db, rng), mod);
  std::size_t bit_errors = 0, symbol_errors = 0;
  for (std::size_t s = 0; s < bits.size() / k; ++s) {
    std::size_t in_symbol = 0;
    for (std::size_t b = 0; b < k; ++b) in_symbol += bits[s * k + b] != rx[s * k + b];
    bit_errors += in_symbol;
    symbol_errors += in_symbol > 0;
  }
  ASSERT_GT(symbol_errors, 50u);
  EXPECT_LT(static_cast<double>(bit_errors) / static_cast<double>(symbol_errors), 1.15);
}

INSTANTIATE_TEST_SUITE_P(Modulations, QamSweep,
                         ::testing::Values(Modulation::kQpsk, Modulation::kQam16,
                                           Modulation::kQam64));

TEST(OfdmTest, NoiselessRoundTrip) {
  OfdmParams params;
  Rng rng(11);
  const auto bits = RandomBits(static_cast<std::size_t>(params.used_subcarriers) * 2, rng);
  const auto tx = ModulateQam(bits, Modulation::kQpsk);
  const auto rx = OfdmDemodulate(params, OfdmModulate(params, tx));
  ASSERT_EQ(rx.size(), tx.size());
  for (std::size_t i = 0; i < tx.size(); ++i) {
    EXPECT_NEAR(rx[i].real(), tx[i].real(), 1e-9);
    EXPECT_NEAR(rx[i].imag(), tx[i].imag(), 1e-9);
  }
}

TEST(OfdmTest, ScratchOverloadsMatchAllocatingVersions) {
  OfdmParams params;
  Rng rng(21);
  std::vector<Complex> tx(static_cast<std::size_t>(params.used_subcarriers));
  for (auto& v : tx) v = Complex(rng.Normal(), rng.Normal());

  std::vector<Complex> symbol, bins, rx;
  // Reuse the scratch buffers across iterations; results must stay
  // bit-identical to the allocating API every time.
  for (int iter = 0; iter < 3; ++iter) {
    const auto expected_symbol = OfdmModulate(params, tx);
    OfdmModulate(params, tx, symbol, bins);
    ASSERT_EQ(symbol.size(), expected_symbol.size());
    for (std::size_t i = 0; i < symbol.size(); ++i) {
      EXPECT_DOUBLE_EQ(symbol[i].real(), expected_symbol[i].real());
      EXPECT_DOUBLE_EQ(symbol[i].imag(), expected_symbol[i].imag());
    }

    const auto expected_rx = OfdmDemodulate(params, expected_symbol);
    OfdmDemodulate(params, symbol, rx, bins);
    ASSERT_EQ(rx.size(), expected_rx.size());
    for (std::size_t i = 0; i < rx.size(); ++i) {
      EXPECT_DOUBLE_EQ(rx[i].real(), expected_rx[i].real());
      EXPECT_DOUBLE_EQ(rx[i].imag(), expected_rx[i].imag());
    }
  }
}

TEST(OfdmTest, CyclicPrefixAbsorbsMultipath) {
  // Two-tap channel with delay < CP: after OFDM demod the channel is a
  // per-subcarrier complex scalar, so one-tap ZF equalization is exact.
  OfdmParams params;
  Rng rng(13);
  const auto bits = RandomBits(static_cast<std::size_t>(params.used_subcarriers) * 4, rng);
  const auto tx = ModulateQam(bits, Modulation::kQam16);
  const std::vector<Complex> taps = {Complex(0.9, 0.1), Complex(0, 0), Complex(0.3, -0.2)};
  const auto time = ApplyChannel(OfdmModulate(params, tx), taps);
  auto rx = OfdmDemodulate(params, time);
  const auto h = ChannelFrequencyResponse(params, taps);
  for (std::size_t i = 0; i < rx.size(); ++i) rx[i] /= h[i];
  EXPECT_EQ(DemodulateQamHard(rx, Modulation::kQam16), bits);
}

TEST(OfdmTest, DelayBeyondCpBreaksOrthogonality) {
  OfdmParams params;
  params.cp_len = 4;
  Rng rng(17);
  const auto bits = RandomBits(static_cast<std::size_t>(params.used_subcarriers) * 2, rng);
  const auto tx = ModulateQam(bits, Modulation::kQpsk);
  std::vector<Complex> taps(params.cp_len + 30, Complex(0, 0));
  taps[0] = Complex(1, 0);
  taps.back() = Complex(0.8, 0.0);  // echo far outside the CP
  const auto time = ApplyChannel(OfdmModulate(params, tx), taps);
  auto rx = OfdmDemodulate(params, time);
  const auto h = ChannelFrequencyResponse(params, taps);
  for (std::size_t i = 0; i < rx.size(); ++i) rx[i] /= h[i];
  // ISI shows up as residual error even after per-subcarrier equalization.
  const auto decoded = DemodulateQamHard(rx, Modulation::kQpsk);
  std::size_t errors = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) errors += bits[i] != decoded[i];
  EXPECT_GT(errors, 0u);
}

// Cross-validation: at each CQI row's SINR threshold, the raw bit error
// rate of the row's modulation must be within what the row's code rate can
// plausibly correct (a rate-r code handles error fractions well below
// (1-r)/2), and the row above's modulation choice must not be trivially
// error-free (else the table would be leaving rate on the table).
TEST(CqiCrossValidationTest, ThresholdsConsistentWithRawBer) {
  Rng rng(19);
  for (int cqi = kMinCqi; cqi <= kMaxCqi; ++cqi) {
    const CqiEntry& e = CqiTable(cqi);
    const double ber = MeasuredBer(e.modulation, e.sinr_threshold_db, 40'000, rng);
    const double correctable = (1.0 - e.code_rate) / 2.0;
    EXPECT_LT(ber, correctable)
        << "CQI " << cqi << ": raw BER " << ber << " exceeds what rate " << e.code_rate
        << " coding can correct";
  }
}

}  // namespace
}  // namespace cellfi
