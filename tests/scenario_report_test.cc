// JSON config/report bindings for the scenario harness.
#include "cellfi/scenario/report.h"

#include <gtest/gtest.h>

namespace cellfi::scenario {
namespace {

TEST(ReportTest, ConfigRoundTrips) {
  ScenarioConfig cfg;
  cfg.tech = Technology::kLaaLte;
  cfg.workload = WorkloadKind::kWeb;
  cfg.propagation = PropagationKind::kIndoor5GHz;
  cfg.topology.num_aps = 7;
  cfg.topology.clients_per_ap = 3;
  cfg.topology.client_radius_m = 123.0;
  cfg.ap_power_dbm = 21.0;
  cfg.duration = 17 * kSecond;
  cfg.warmup = 2 * kSecond;
  cfg.home_ap_association = false;
  cfg.web.think_time_mean_s = 4.5;
  cfg.seed = 777;

  const auto parsed = ConfigFromJson(ConfigToJson(cfg));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->tech, Technology::kLaaLte);
  EXPECT_EQ(parsed->workload, WorkloadKind::kWeb);
  EXPECT_EQ(parsed->propagation, PropagationKind::kIndoor5GHz);
  EXPECT_EQ(parsed->topology.num_aps, 7);
  EXPECT_EQ(parsed->topology.clients_per_ap, 3);
  EXPECT_DOUBLE_EQ(parsed->topology.client_radius_m, 123.0);
  EXPECT_DOUBLE_EQ(parsed->ap_power_dbm, 21.0);
  EXPECT_EQ(parsed->duration, 17 * kSecond);
  EXPECT_FALSE(parsed->home_ap_association);
  EXPECT_DOUBLE_EQ(parsed->web.think_time_mean_s, 4.5);
  EXPECT_EQ(parsed->seed, 777u);
}

TEST(ReportTest, MissingKeysKeepDefaults) {
  const auto parsed = ConfigFromJsonText(R"({"tech": "lte"})");
  ASSERT_TRUE(parsed.has_value());
  const ScenarioConfig defaults;
  EXPECT_EQ(parsed->tech, Technology::kLte);
  EXPECT_EQ(parsed->topology.num_aps, defaults.topology.num_aps);
  EXPECT_EQ(parsed->workload, defaults.workload);
}

TEST(ReportTest, RejectsInvalidInput) {
  EXPECT_FALSE(ConfigFromJsonText("not json").has_value());
  EXPECT_FALSE(ConfigFromJsonText("[1,2]").has_value());
  EXPECT_FALSE(ConfigFromJsonText(R"({"tech": "wimax"})").has_value());
  EXPECT_FALSE(ConfigFromJsonText(R"({"workload": "torrent"})").has_value());
  EXPECT_FALSE(
      ConfigFromJsonText(R"({"duration_s": 1, "warmup_s": 5})").has_value());
  EXPECT_FALSE(ConfigFromJsonText(R"({"topology": {"num_aps": 0}})").has_value());
}

TEST(ReportTest, TechnologyNamesBijective) {
  for (Technology t : {Technology::kCellFi, Technology::kLte, Technology::kOracle,
                       Technology::kLaaLte, Technology::kWifi80211af,
                       Technology::kWifi80211ac}) {
    const auto back = TechnologyFromName(TechnologyName(t));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, t);
  }
  EXPECT_FALSE(TechnologyFromName("5g").has_value());
}

TEST(ReportTest, ResultSerializesAggregatesAndClients) {
  ScenarioResult result;
  ClientOutcome a;
  a.throughput_bps = 2.5e6;
  a.attached = true;
  a.starved = false;
  a.pages_started = 3;
  a.pages_completed = 2;
  a.page_load_times_s = {0.5, 1.5};
  result.clients.push_back(a);
  result.client_throughput_mbps.Add(2.5);
  result.fraction_connected = 1.0;
  result.total_throughput_bps = 2.5e6;

  const json::Value v = ResultToJson(result);
  EXPECT_DOUBLE_EQ(v.Find("fraction_connected")->as_number(), 1.0);
  const auto& clients = v.Find("clients")->as_array();
  ASSERT_EQ(clients.size(), 1u);
  EXPECT_TRUE(clients[0].Find("attached")->as_bool());
  EXPECT_EQ(clients[0].Find("page_load_times_s")->as_array().size(), 2u);
  // The report itself must be parseable JSON.
  EXPECT_TRUE(json::Parse(v.Dump()).has_value());
}

TEST(ReportTest, EndToEndTinyRun) {
  auto cfg = ConfigFromJsonText(R"({
    "tech": "cellfi",
    "topology": {"num_aps": 2, "clients_per_ap": 2, "area_m": 800,
                 "client_radius_m": 200},
    "duration_s": 5, "warmup_s": 1, "seed": 3
  })");
  ASSERT_TRUE(cfg.has_value());
  const auto result = RunScenario(*cfg);
  const json::Value report = ResultToJson(result);
  EXPECT_EQ(report.Find("clients")->as_array().size(), 4u);
}

}  // namespace
}  // namespace cellfi::scenario
