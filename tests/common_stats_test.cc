#include "cellfi/common/stats.h"

#include <gtest/gtest.h>

#include "cellfi/common/rng.h"
#include "cellfi/common/table.h"
#include "cellfi/common/units.h"

namespace cellfi {
namespace {

TEST(SummaryTest, BasicMoments) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(DistributionTest, PercentilesOnKnownData) {
  Distribution d;
  for (int i = 1; i <= 100; ++i) d.Add(static_cast<double>(i));
  EXPECT_NEAR(d.Median(), 50.5, 1e-9);
  EXPECT_NEAR(d.Percentile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(d.Percentile(1.0), 100.0, 1e-9);
  EXPECT_NEAR(d.Percentile(0.25), 25.75, 1e-9);
}

TEST(DistributionTest, CdfMonotone) {
  Distribution d;
  Rng rng(4);
  for (int i = 0; i < 500; ++i) d.Add(rng.Normal());
  double prev = -1.0;
  for (auto [x, p] : d.CdfSeries(40)) {
    (void)x;
    EXPECT_GE(p, prev);
    prev = p;
  }
  EXPECT_NEAR(d.CdfAt(1e9), 1.0, 1e-12);
  EXPECT_NEAR(d.CdfAt(-1e9), 0.0, 1e-12);
}

TEST(DistributionTest, FractionBelowCountsStrictly) {
  Distribution d;
  d.Add(1.0);
  d.Add(1.0);
  d.Add(2.0);
  d.Add(3.0);
  EXPECT_DOUBLE_EQ(d.FractionBelow(1.0), 0.0);
  EXPECT_DOUBLE_EQ(d.FractionBelow(1.5), 0.5);
  EXPECT_DOUBLE_EQ(d.FractionBelow(100.0), 1.0);
}

TEST(RngTest, UniformBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(2);
  Summary s;
  for (int i = 0; i < 20000; ++i) s.Add(rng.Exponential(10.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.3);
}

TEST(RngTest, ForkProducesDifferentStream) {
  Rng a(5);
  Rng b = a.Fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.UniformInt(0, 1000000) == b.UniformInt(0, 1000000)) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, SameSeedReproduces) {
  Rng a(42), b(42);
  for (int i = 0; i < 50; ++i) EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
}

TEST(UnitsTest, DbmConversionsRoundTrip) {
  EXPECT_NEAR(DbmToMw(0.0), 1.0, 1e-12);
  EXPECT_NEAR(DbmToMw(30.0), 1000.0, 1e-9);
  EXPECT_NEAR(MwToDbm(DbmToMw(-93.7)), -93.7, 1e-9);
  EXPECT_NEAR(LinearToDb(DbToLinear(13.2)), 13.2, 1e-9);
}

TEST(UnitsTest, NoiseFloorValues) {
  // kT over 10 MHz with 7 dB NF: -174 + 70 + 7 = -97 dBm.
  EXPECT_NEAR(NoisePowerDbm(10e6, 7.0), -97.0, 0.01);
}

TEST(TableTest, FormatsNumbers) {
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Num(2.0, 0), "2");
}

}  // namespace
}  // namespace cellfi
