#include <cmath>

#include <gtest/gtest.h>

#include "cellfi/baseline/hopping_game.h"
#include "cellfi/baseline/oracle_allocator.h"
#include "cellfi/common/stats.h"

namespace cellfi::baseline {
namespace {

TEST(OracleTest, IsolatedCellGetsEverything) {
  OracleInput in;
  in.num_subchannels = 13;
  in.clients_per_cell = {5};
  in.conflicts = {{}};
  const auto masks = OracleAllocate(in);
  ASSERT_EQ(masks.size(), 1u);
  for (bool b : masks[0]) EXPECT_TRUE(b);
}

TEST(OracleTest, CellWithoutClientsGetsNothing) {
  OracleInput in;
  in.num_subchannels = 13;
  in.clients_per_cell = {0, 4};
  in.conflicts = {{1}, {0}};
  const auto masks = OracleAllocate(in);
  for (bool b : masks[0]) EXPECT_FALSE(b);
  for (bool b : masks[1]) EXPECT_TRUE(b);  // reuse grows into the whole band
}

TEST(OracleTest, ConflictingCellsDisjoint) {
  OracleInput in;
  in.num_subchannels = 13;
  in.clients_per_cell = {6, 6};
  in.conflicts = {{1}, {0}};
  const auto masks = OracleAllocate(in);
  for (int s = 0; s < 13; ++s) {
    EXPECT_FALSE(masks[0][static_cast<std::size_t>(s)] &&
                 masks[1][static_cast<std::size_t>(s)])
        << "subchannel " << s << " double-booked";
  }
  // Equal weights: the band splits near-evenly and fully.
  const auto count = [](const std::vector<bool>& m) {
    int n = 0;
    for (bool b : m) n += b;
    return n;
  };
  EXPECT_EQ(count(masks[0]) + count(masks[1]), 13);
  EXPECT_GE(count(masks[0]), 6);
  EXPECT_GE(count(masks[1]), 6);
}

TEST(OracleTest, SharesFollowClientWeights) {
  OracleInput in;
  in.num_subchannels = 12;
  in.clients_per_cell = {9, 3};
  in.conflicts = {{1}, {0}};
  EXPECT_EQ(OracleFairShare(in, 0), 9);
  EXPECT_EQ(OracleFairShare(in, 1), 3);
}

TEST(OracleTest, NonConflictingCellsReuseSpectrum) {
  // Chain: 0-1 conflict, 1-2 conflict, 0 and 2 independent.
  OracleInput in;
  in.num_subchannels = 13;
  in.clients_per_cell = {6, 6, 6};
  in.conflicts = {{1}, {0, 2}, {1}};
  const auto masks = OracleAllocate(in);
  const auto count = [](const std::vector<bool>& m) {
    int n = 0;
    for (bool b : m) n += b;
    return n;
  };
  // 0 and 2 may overlap; total granted exceeds the band size.
  EXPECT_GT(count(masks[0]) + count(masks[1]) + count(masks[2]), 13);
  for (int s = 0; s < 13; ++s) {
    EXPECT_FALSE(masks[0][static_cast<std::size_t>(s)] && masks[1][static_cast<std::size_t>(s)]);
    EXPECT_FALSE(masks[1][static_cast<std::size_t>(s)] && masks[2][static_cast<std::size_t>(s)]);
  }
}

TEST(HoppingGameTest, TrivialInstanceConvergesImmediately) {
  Rng rng(1);
  Graph g(3);  // no edges
  const auto result = RunHoppingGame(g, {2, 2, 2}, {.num_subchannels = 8}, rng);
  EXPECT_TRUE(result.converged);
  EXPECT_LE(result.rounds, 4);
}

TEST(HoppingGameTest, AllocationRespectsGraph) {
  Rng rng(2);
  Graph g = RandomGraph(12, 0.3, rng);
  std::vector<int> demands(12, 2);
  HoppingGameConfig cfg;
  cfg.num_subchannels = 50;  // generous slack
  const auto result = RunHoppingGame(g, demands, cfg, rng);
  ASSERT_TRUE(result.converged);
  for (std::size_t v = 0; v < g.size(); ++v) {
    EXPECT_EQ(result.allocation[v].size(), 2u);
    for (int u : g[v]) {
      for (int s : result.allocation[v]) {
        const auto& other = result.allocation[static_cast<std::size_t>(u)];
        EXPECT_EQ(std::count(other.begin(), other.end(), s), 0)
            << "neighbours " << v << " and " << u << " share subchannel " << s;
      }
    }
  }
}

TEST(HoppingGameTest, DemandSlackComputation) {
  Graph g(2);
  g[0] = {1};
  g[1] = {0};
  // Neighbourhood sums = 4 + 4 = 8; M = 10 -> gamma = 0.2.
  EXPECT_NEAR(DemandSlack(g, {4, 4}, 10), 0.2, 1e-12);
  EXPECT_LT(DemandSlack(g, {6, 6}, 10), 0.0);  // infeasible
}

TEST(HoppingGameTest, FadingSlowsButDoesNotPreventConvergence) {
  Rng rng(3);
  Graph g = RandomGraph(10, 0.3, rng);
  std::vector<int> demands(10, 1);
  HoppingGameConfig slow;
  slow.num_subchannels = 25;
  slow.fading_probability = 0.6;
  Summary rounds_fading, rounds_clean;
  for (int rep = 0; rep < 30; ++rep) {
    Rng r1(100 + rep), r2(100 + rep);
    auto with = RunHoppingGame(g, demands, slow, r1);
    HoppingGameConfig clean = slow;
    clean.fading_probability = 0.0;
    auto without = RunHoppingGame(g, demands, clean, r2);
    ASSERT_TRUE(with.converged);
    ASSERT_TRUE(without.converged);
    rounds_fading.Add(with.rounds);
    rounds_clean.Add(without.rounds);
  }
  EXPECT_GT(rounds_fading.mean(), rounds_clean.mean());
}

// Theorem 1: convergence rounds grow logarithmically with n for fixed M
// and gamma. Verify the growth from n = 8 to n = 64 is far slower than
// linear.
TEST(HoppingGameTest, ConvergenceScalesSubLinearly) {
  auto mean_rounds = [](int n) {
    Summary s;
    for (int rep = 0; rep < 20; ++rep) {
      Rng rng(static_cast<std::uint64_t>(n * 1000 + rep));
      // Ring graph: every node has 2 neighbours, demand 2 each ->
      // neighbourhood sum 6, M = 12 -> gamma = 0.5 independent of n.
      Graph g(static_cast<std::size_t>(n));
      for (int v = 0; v < n; ++v) {
        g[static_cast<std::size_t>(v)] = {(v + 1) % n, (v + n - 1) % n};
      }
      const auto result =
          RunHoppingGame(g, std::vector<int>(static_cast<std::size_t>(n), 2),
                         {.num_subchannels = 12}, rng);
      EXPECT_TRUE(result.converged);
      s.Add(result.rounds);
    }
    return s.mean();
  };
  const double r8 = mean_rounds(8);
  const double r64 = mean_rounds(64);
  EXPECT_LT(r64, r8 * 3.0);  // log growth: ~x2, linear would be x8
}

// Property sweep: the game always converges when the demand assumption
// holds, across graph densities and fading levels.
class HoppingGameSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(HoppingGameSweep, ConvergesUnderDemandAssumption) {
  const auto [edge_prob, fading] = GetParam();
  Rng rng(static_cast<std::uint64_t>(edge_prob * 100 + fading * 10 + 1));
  const int n = 16;
  Graph g = RandomGraph(n, edge_prob, rng);
  std::vector<int> demands(static_cast<std::size_t>(n), 1);
  HoppingGameConfig cfg;
  // Size M so gamma > 0 even for the densest neighbourhood.
  int max_neighbourhood = 0;
  for (const auto& adj : g) {
    max_neighbourhood = std::max(max_neighbourhood, static_cast<int>(adj.size()) + 1);
  }
  cfg.num_subchannels = 2 * max_neighbourhood;
  cfg.fading_probability = fading;
  ASSERT_GT(DemandSlack(g, demands, cfg.num_subchannels), 0.0);
  const auto result = RunHoppingGame(g, demands, cfg, rng);
  EXPECT_TRUE(result.converged);
}

INSTANTIATE_TEST_SUITE_P(
    DensityAndFading, HoppingGameSweep,
    ::testing::Combine(::testing::Values(0.1, 0.3, 0.6),
                       ::testing::Values(0.0, 0.3, 0.7)));

}  // namespace
}  // namespace cellfi::baseline
