#include "cellfi/phy/prach.h"

#include <algorithm>
#include <cmath>
#include <thread>

#include <gtest/gtest.h>

namespace cellfi {
namespace {

TEST(ZadoffChuTest, UnitModulus) {
  const auto seq = ZadoffChu(129, 839);
  for (const auto& v : seq) EXPECT_NEAR(std::abs(v), 1.0, 1e-12);
}

TEST(ZadoffChuTest, IdealPeriodicAutocorrelation) {
  // CAZAC property: autocorrelation is N at lag 0 and ~0 elsewhere.
  const auto seq = ZadoffChu(25, 839);
  const auto corr = CircularCorrelateAny(seq, seq);
  EXPECT_NEAR(std::abs(corr[0]), 839.0, 1e-6);
  for (std::size_t lag = 1; lag < corr.size(); ++lag) {
    EXPECT_LT(std::abs(corr[lag]), 1e-6) << "lag " << lag;
  }
}

TEST(ZadoffChuTest, DifferentRootsLowCrossCorrelation) {
  const auto a = ZadoffChu(25, 839);
  const auto b = ZadoffChu(129, 839);
  const auto corr = CircularCorrelateAny(a, b);
  // Cross-correlation of distinct ZC roots has magnitude sqrt(N).
  for (const auto& v : corr) EXPECT_LT(std::abs(v), 2.0 * std::sqrt(839.0));
}

TEST(PrachPreambleTest, CountAndDistinctness) {
  PrachConfig cfg;
  EXPECT_EQ(NumPreambles(cfg), 64);  // 839 / 13
  const auto p0 = GeneratePreamble(cfg, 0);
  const auto p1 = GeneratePreamble(cfg, 1);
  double diff = 0;
  for (std::size_t i = 0; i < p0.size(); ++i) diff += std::abs(p0[i] - p1[i]);
  EXPECT_GT(diff, 1.0);
}

TEST(PrachDetectorTest, DetectsCleanPreamble) {
  PrachConfig cfg;
  PrachDetector det(cfg);
  for (int idx : {0, 1, 31, 63}) {
    const auto d = det.Detect(GeneratePreamble(cfg, idx));
    EXPECT_TRUE(d.detected);
    EXPECT_EQ(d.preamble_estimate, idx);
  }
}

TEST(PrachDetectorTest, TimingOffsetShiftsPeakNotDetection) {
  PrachConfig cfg;
  PrachDetector det(cfg);
  Rng rng(17);
  const auto preamble = GeneratePreamble(cfg, 5);
  const auto rx = PassThroughAwgn(preamble, /*timing_offset=*/7, /*snr_db=*/20.0, rng);
  const auto d = det.Detect(rx);
  EXPECT_TRUE(d.detected);
  // Peak lands at shift + timing offset: 5*13 + 7 = 72.
  EXPECT_EQ(d.shift_estimate, 72);
}

TEST(PrachDetectorTest, DetectsAtMinus10dB) {
  // Paper Section 6.3.3: preambles are reliably detectable at -10 dB SNR.
  PrachConfig cfg;
  PrachDetector det(cfg);
  Rng rng(23);
  int detected = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    const auto preamble = GeneratePreamble(cfg, t % NumPreambles(cfg));
    const auto rx = PassThroughAwgn(preamble, t % 13, -10.0, rng);
    if (det.Detect(rx).detected) ++detected;
  }
  EXPECT_GE(detected, trials * 95 / 100);
}

TEST(PrachDetectorTest, LowFalseAlarmOnNoise) {
  PrachConfig cfg;
  PrachDetector det(cfg);
  Rng rng(29);
  int false_alarms = 0;
  for (int t = 0; t < 500; ++t) {
    if (det.Detect(NoiseOnly(cfg.sequence_length, rng)).detected) ++false_alarms;
  }
  EXPECT_LE(false_alarms, 1);
}

TEST(PrachDetectorTest, MissesAtVeryLowSnr) {
  PrachConfig cfg;
  PrachDetector det(cfg);
  Rng rng(31);
  int detected = 0;
  for (int t = 0; t < 100; ++t) {
    const auto rx = PassThroughAwgn(GeneratePreamble(cfg, 3), 0, -25.0, rng);
    if (det.Detect(rx).detected) ++detected;
  }
  EXPECT_LT(detected, 20);  // -25 dB is beyond the detector's design point
}


TEST(PrachDetectAllTest, FindsThreeSuperimposedPreambles) {
  PrachConfig cfg;
  PrachDetector det(cfg);
  Rng rng(41);
  const std::vector<int> indices = {3, 20, 47};
  std::vector<Complex> rx(static_cast<std::size_t>(cfg.sequence_length), Complex(0, 0));
  for (int idx : indices) {
    const auto p = PassThroughAwgn(GeneratePreamble(cfg, idx), idx % 7, 0.0, rng);
    for (std::size_t i = 0; i < rx.size(); ++i) rx[i] += p[i];
  }
  const auto found = det.DetectAll(rx);
  ASSERT_EQ(found.size(), indices.size());
  std::vector<int> got;
  for (const auto& d : found) got.push_back(d.preamble_estimate);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, indices);
}

TEST(PrachDetectAllTest, WeakPreambleNotMaskedByStrongOne) {
  PrachConfig cfg;
  PrachDetector det(cfg);
  Rng rng(43);
  // One preamble 15 dB stronger than the other.
  auto strong = GeneratePreamble(cfg, 10);
  auto weak = GeneratePreamble(cfg, 40);
  std::vector<Complex> rx(strong.size());
  const double weak_amp = std::pow(10.0, -15.0 / 20.0);
  for (std::size_t i = 0; i < rx.size(); ++i) {
    rx[i] = strong[i] + weak_amp * weak[i];
  }
  const auto noisy = PassThroughAwgn(rx, 0, 10.0, rng);  // mild noise on top
  const auto found = det.DetectAll(noisy);
  ASSERT_GE(found.size(), 2u);
  std::vector<int> got;
  for (const auto& d : found) got.push_back(d.preamble_estimate);
  EXPECT_NE(std::find(got.begin(), got.end(), 10), got.end());
  EXPECT_NE(std::find(got.begin(), got.end(), 40), got.end());
}

TEST(PrachDetectAllTest, SinglePreambleYieldsSingleDetection) {
  PrachConfig cfg;
  PrachDetector det(cfg);
  Rng rng(47);
  const auto rx = PassThroughAwgn(GeneratePreamble(cfg, 5), 2, 0.0, rng);
  const auto found = det.DetectAll(rx);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].preamble_estimate, 5);
}

TEST(PrachDetectAllTest, NoiseYieldsNothing) {
  PrachConfig cfg;
  PrachDetector det(cfg);
  Rng rng(53);
  for (int t = 0; t < 50; ++t) {
    EXPECT_TRUE(det.DetectAll(NoiseOnly(cfg.sequence_length, rng)).empty());
  }
}

// The detector's threading contract (prach.h): Detect/DetectAll mutate
// the instance's scratch buffers, so concurrency is achieved by giving
// every cell its OWN detector, never by sharing one. Each thread here owns
// a detector and must reproduce the serial reference bit-for-bit; a shared
// detector would race on the scratch and (under TSan or by corrupted
// peaks) fail.
TEST(PrachDetectorTest, PerCellDetectorOwnership) {
  PrachConfig cfg;
  constexpr int kCells = 4;
  constexpr int kOccasions = 8;

  // Fixed per-cell occasion inputs, generated serially.
  std::vector<std::vector<std::vector<Complex>>> rx(kCells);
  Rng rng(77);
  for (int c = 0; c < kCells; ++c) {
    for (int t = 0; t < kOccasions; ++t) {
      rx[static_cast<std::size_t>(c)].push_back(
          PassThroughAwgn(GeneratePreamble(cfg, 8 * c + t), c + t, -8.0, rng));
    }
  }

  // Serial reference: a fresh detector per cell.
  std::vector<std::vector<PrachDetection>> expected(kCells);
  for (int c = 0; c < kCells; ++c) {
    PrachDetector det(cfg);
    for (const auto& occasion : rx[static_cast<std::size_t>(c)]) {
      expected[static_cast<std::size_t>(c)].push_back(det.Detect(occasion));
    }
  }

  // Concurrent run, one detector per cell-thread.
  std::vector<std::vector<PrachDetection>> got(kCells);
  std::vector<std::thread> threads;
  for (int c = 0; c < kCells; ++c) {
    threads.emplace_back([&, c] {
      PrachDetector det(cfg);
      for (const auto& occasion : rx[static_cast<std::size_t>(c)]) {
        got[static_cast<std::size_t>(c)].push_back(det.Detect(occasion));
      }
    });
  }
  for (auto& t : threads) t.join();

  for (int c = 0; c < kCells; ++c) {
    ASSERT_EQ(got[static_cast<std::size_t>(c)].size(),
              expected[static_cast<std::size_t>(c)].size());
    for (int t = 0; t < kOccasions; ++t) {
      const auto& e = expected[static_cast<std::size_t>(c)][static_cast<std::size_t>(t)];
      const auto& g = got[static_cast<std::size_t>(c)][static_cast<std::size_t>(t)];
      EXPECT_EQ(g.detected, e.detected) << "cell " << c << " occasion " << t;
      EXPECT_EQ(g.shift_estimate, e.shift_estimate) << "cell " << c;
      EXPECT_EQ(g.peak_to_average, e.peak_to_average) << "cell " << c;
    }
  }
}

// Detection probability is monotone in SNR across the design range.
class PrachSnrSweep : public ::testing::TestWithParam<double> {};

TEST_P(PrachSnrSweep, ReasonableDetectionRate) {
  const double snr = GetParam();
  PrachConfig cfg;
  PrachDetector det(cfg);
  Rng rng(static_cast<std::uint64_t>(1000 + snr));
  int detected = 0;
  const int trials = 100;
  for (int t = 0; t < trials; ++t) {
    const auto rx = PassThroughAwgn(GeneratePreamble(cfg, t % 64), t % 5, snr, rng);
    if (det.Detect(rx).detected) ++detected;
  }
  if (snr >= -10.0) {
    EXPECT_GE(detected, 90);
  }
}

INSTANTIATE_TEST_SUITE_P(SnrPoints, PrachSnrSweep,
                         ::testing::Values(-14.0, -12.0, -10.0, -6.0, 0.0, 10.0));

}  // namespace
}  // namespace cellfi
