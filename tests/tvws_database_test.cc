#include "cellfi/tvws/database.h"

#include <gtest/gtest.h>

#include "cellfi/tvws/paws.h"

namespace cellfi::tvws {
namespace {

const GeoLocation kHere{.latitude = 47.64, .longitude = -122.13};
const GeoLocation kFarAway{.latitude = 48.64, .longitude = -120.13};

TEST(TvChannelTest, UsCentreFrequencies) {
  TvChannel ch14{.number = 14, .regulatory = Regulatory::kUs};
  TvChannel ch21{.number = 21, .regulatory = Regulatory::kUs};
  EXPECT_DOUBLE_EQ(ch14.CentreFrequencyHz(), 473e6);
  EXPECT_DOUBLE_EQ(ch21.CentreFrequencyHz(), 515e6);
  EXPECT_DOUBLE_EQ(ch14.LowEdgeHz(), 470e6);
  EXPECT_DOUBLE_EQ(ch14.HighEdgeHz(), 476e6);
}

TEST(TvChannelTest, EuCentreFrequencies) {
  TvChannel ch21{.number = 21, .regulatory = Regulatory::kEu};
  EXPECT_DOUBLE_EQ(ch21.CentreFrequencyHz(), 474e6);
  EXPECT_DOUBLE_EQ(TvChannelWidthHz(Regulatory::kEu), 8e6);
}

TEST(GeoTest, DistanceSanity) {
  EXPECT_NEAR(GeoDistanceM(kHere, kHere), 0.0, 1e-6);
  // One degree of latitude ~ 111 km.
  GeoLocation north = kHere;
  north.latitude += 1.0;
  EXPECT_NEAR(GeoDistanceM(kHere, north), 111'000.0, 500.0);
}

TEST(DatabaseTest, AllChannelsAvailableWithNoIncumbents) {
  SpectrumDatabase db;
  const auto channels = db.Query(kHere, 0);
  EXPECT_EQ(channels.size(), 38u);  // channels 14..51
  for (const auto& a : channels) {
    EXPECT_DOUBLE_EQ(a.max_eirp_dbm, 36.0);
    EXPECT_GT(a.lease_expiry, a.lease_start);
  }
}

TEST(DatabaseTest, ClientQueryUsesLowerPowerCap) {
  SpectrumDatabase db;
  const auto channels = db.Query(kHere, 0, /*master=*/false);
  ASSERT_FALSE(channels.empty());
  EXPECT_DOUBLE_EQ(channels.front().max_eirp_dbm, 20.0);
}

TEST(DatabaseTest, IncumbentBlocksChannelInsideContour) {
  SpectrumDatabase db;
  ASSERT_TRUE(db.AddIncumbent({.id = "mic-1", .channel = 21, .location = kHere,
                               .protection_radius_m = 5000.0}));
  EXPECT_FALSE(db.IsAvailable(21, kHere, 0));
  EXPECT_TRUE(db.IsAvailable(22, kHere, 0));
  EXPECT_TRUE(db.IsAvailable(21, kFarAway, 0));
}

TEST(DatabaseTest, DuplicateIncumbentIdRejected) {
  SpectrumDatabase db;
  EXPECT_TRUE(db.AddIncumbent({.id = "x", .channel = 20, .location = kHere}));
  EXPECT_FALSE(db.AddIncumbent({.id = "x", .channel = 25, .location = kHere}));
  EXPECT_EQ(db.incumbent_count(), 1u);
}

TEST(DatabaseTest, RemoveIncumbentRestoresChannel) {
  SpectrumDatabase db;
  db.AddIncumbent({.id = "mic", .channel = 30, .location = kHere});
  EXPECT_FALSE(db.IsAvailable(30, kHere, 0));
  EXPECT_TRUE(db.RemoveIncumbent("mic"));
  EXPECT_TRUE(db.IsAvailable(30, kHere, 0));
  EXPECT_FALSE(db.RemoveIncumbent("mic"));
}

TEST(DatabaseTest, TimeWindowedIncumbent) {
  SpectrumDatabase db;
  db.AddIncumbent({.id = "event-mic", .channel = 25, .location = kHere,
                   .protection_radius_m = 5000.0, .start = 100 * kSecond,
                   .stop = 200 * kSecond});
  EXPECT_TRUE(db.IsAvailable(25, kHere, 50 * kSecond));
  EXPECT_FALSE(db.IsAvailable(25, kHere, 150 * kSecond));
  EXPECT_TRUE(db.IsAvailable(25, kHere, 250 * kSecond));
}

TEST(DatabaseTest, LeaseShortenedByScheduledIncumbent) {
  SpectrumDatabase db;
  db.AddIncumbent({.id = "future", .channel = 25, .location = kHere,
                   .protection_radius_m = 5000.0, .start = 3600 * kSecond, .stop = 0});
  const auto channels = db.Query(kHere, 0);
  for (const auto& a : channels) {
    if (a.channel.number == 25) {
      EXPECT_EQ(a.lease_expiry, 3600 * kSecond);
    } else {
      EXPECT_GT(a.lease_expiry, 3600 * kSecond);
    }
  }
}

TEST(DatabaseTest, OutOfBandChannelUnavailable) {
  SpectrumDatabase db;
  EXPECT_FALSE(db.IsAvailable(2, kHere, 0));
  EXPECT_FALSE(db.IsAvailable(52, kHere, 0));
}

TEST(PawsTest, InitHandshake) {
  SpectrumDatabase db(DatabaseConfig{.regulatory = Regulatory::kEu,
                                     .first_channel = 21,
                                     .last_channel = 60});
  PawsServer server(db);
  PawsClient client({.serial_number = "ap-1"}, Regulatory::kEu);
  const auto resp = server.Handle(client.BuildInitRequest(kHere), 0);
  const auto ruleset = client.ParseInitResponse(resp);
  ASSERT_TRUE(ruleset.has_value());
  EXPECT_EQ(*ruleset, "EtsiEn301598-2014");
}

TEST(PawsTest, AvailSpectrumRoundTrip) {
  SpectrumDatabase db;
  db.AddIncumbent({.id = "tv", .channel = 14, .location = kHere,
                   .protection_radius_m = 50'000.0});
  PawsServer server(db);
  PawsClient client({.serial_number = "ap-1"}, Regulatory::kUs);
  server.Handle(client.BuildInitRequest(kHere), 0);

  const auto resp =
      server.Handle(client.BuildAvailSpectrumRequest(kHere, true), 5 * kSecond);
  const auto parsed = client.ParseAvailSpectrumResponse(resp);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->ruleset, "FccTvBandWhiteSpace-2010");
  EXPECT_EQ(parsed->channels.size(), 37u);  // 38 minus blocked ch14
  for (const auto& a : parsed->channels) {
    EXPECT_NE(a.channel.number, 14);
    EXPECT_EQ(a.lease_start, 5 * kSecond);
    EXPECT_GT(a.lease_expiry, 5 * kSecond);
  }
}

TEST(PawsTest, SlaveRequestGetsClientPowerCap) {
  SpectrumDatabase db;
  PawsServer server(db);
  PawsClient client({.serial_number = "ap-1"}, Regulatory::kUs);
  server.Handle(client.BuildInitRequest(kHere), 0);
  const auto resp = server.Handle(client.BuildAvailSpectrumRequest(kHere, false), 0);
  const auto parsed = client.ParseAvailSpectrumResponse(resp);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_FALSE(parsed->channels.empty());
  EXPECT_DOUBLE_EQ(parsed->channels.front().max_eirp_dbm, 20.0);
}

TEST(PawsTest, NotifyAccepted) {
  SpectrumDatabase db;
  PawsServer server(db);
  PawsClient client({.serial_number = "ap-1"}, Regulatory::kUs);
  server.Handle(client.BuildInitRequest(kHere), 0);
  ChannelAvailability a;
  a.channel = {.number = 21, .regulatory = Regulatory::kUs};
  const auto resp = server.Handle(client.BuildSpectrumUseNotify(kHere, a), 0);
  auto v = json::Parse(resp);
  ASSERT_TRUE(v.has_value());
  EXPECT_NE(v->Find("result"), nullptr);
}


TEST(PawsTest, SpectrumQueryRequiresInit) {
  SpectrumDatabase db;
  PawsServer server(db);
  PawsClient client({.serial_number = "rogue-ap"}, Regulatory::kUs);
  // No INIT: the server must refuse with error -201.
  const auto resp = server.Handle(client.BuildAvailSpectrumRequest(kHere, true), 0);
  auto v = json::Parse(resp);
  ASSERT_TRUE(v.has_value());
  const auto* err = v->Find("error");
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->Find("code")->as_int(), -201);
  EXPECT_FALSE(server.IsRegistered("rogue-ap"));
  // After INIT the same query succeeds.
  server.Handle(client.BuildInitRequest(kHere), 0);
  EXPECT_TRUE(server.IsRegistered("rogue-ap"));
  const auto ok = client.ParseAvailSpectrumResponse(
      server.Handle(client.BuildAvailSpectrumRequest(kHere, true), 0));
  EXPECT_TRUE(ok.has_value());
}

TEST(PawsTest, NotifyRecordsChannelsInUse) {
  SpectrumDatabase db;
  PawsServer server(db);
  PawsClient client({.serial_number = "ap-9"}, Regulatory::kUs);
  server.Handle(client.BuildInitRequest(kHere), 0);
  ChannelAvailability a;
  a.channel = {.number = 23, .regulatory = Regulatory::kUs};
  server.Handle(client.BuildSpectrumUseNotify(kHere, a), 0);
  const auto used = server.ReportedUse("ap-9");
  ASSERT_EQ(used.size(), 1u);
  EXPECT_EQ(used[0], 23);
  // A second notify replaces the record.
  a.channel.number = 31;
  server.Handle(client.BuildSpectrumUseNotify(kHere, a), 0);
  EXPECT_EQ(server.ReportedUse("ap-9"), std::vector<int>{31});
  EXPECT_TRUE(server.ReportedUse("unknown").empty());
}

TEST(PawsTest, MalformedRequestsGetJsonRpcErrors) {
  SpectrumDatabase db;
  PawsServer server(db);
  for (const char* bad :
       {"not json", "{}", R"({"jsonrpc":"2.0","method":"nope","params":{},"id":1})",
        R"({"jsonrpc":"2.0","method":"spectrum.paws.getSpectrum","params":{},"id":2})"}) {
    const auto resp = server.Handle(bad, 0);
    auto v = json::Parse(resp);
    ASSERT_TRUE(v.has_value()) << bad;
    EXPECT_NE(v->Find("error"), nullptr) << bad;
  }
}

TEST(PawsTest, GeoLocationJsonRoundTrip) {
  GeoLocation loc{.latitude = 1.25, .longitude = -3.5, .uncertainty_m = 12.0};
  const auto parsed = GeoLocationFromJson(GeoLocationToJson(loc));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_DOUBLE_EQ(parsed->latitude, 1.25);
  EXPECT_DOUBLE_EQ(parsed->longitude, -3.5);
  EXPECT_DOUBLE_EQ(parsed->uncertainty_m, 12.0);
}

}  // namespace
}  // namespace cellfi::tvws
