// End-to-end CellFi test: two interfering cells, live interference
// management over real PRACH/CQI sensing.
#include "cellfi/core/cellfi_controller.h"

#include <gtest/gtest.h>

#include "cellfi/radio/pathloss.h"

namespace cellfi::core {
namespace {

using lte::CellId;
using lte::LteMacConfig;
using lte::LteNetworkConfig;
using lte::UeId;

class ControllerFixture : public ::testing::Test {
 protected:
  ControllerFixture() : env_(pathloss_, EnvConfig()), net_(sim_, env_, NetConfig()) {}

  static RadioEnvironmentConfig EnvConfig() {
    RadioEnvironmentConfig c;
    c.carrier_freq_hz = 600e6;
    c.shadowing_sigma_db = 0.0;
    c.enable_fading = false;
    c.seed = 5;
    return c;
  }

  static LteNetworkConfig NetConfig() {
    LteNetworkConfig c;
    c.seed = 9;
    return c;
  }

  CellId AddCellAt(Point p) {
    const RadioNodeId r = env_.AddNode(
        {.position = p, .antenna = Antenna::Omni(6.0), .tx_power_dbm = 30.0});
    LteMacConfig mac;
    mac.bandwidth = LteBandwidth::k5MHz;
    return net_.AddCell(mac, r);
  }

  UeId AddUeAt(Point p) {
    const RadioNodeId r = env_.AddNode({.position = p, .tx_power_dbm = 20.0});
    return net_.AddUe(r);
  }

  HataUrbanPathLoss pathloss_;
  Simulator sim_;
  RadioEnvironment env_;
  lte::LteNetwork net_;
};

TEST_F(ControllerFixture, SharesConvergeAndOverlapDisappears) {
  // Two cells 700 m apart with cell-edge clients between them: heavy mutual
  // interference under plain LTE.
  const CellId c0 = AddCellAt({0, 0});
  const CellId c1 = AddCellAt({700, 0});
  std::vector<UeId> ues;
  ues.push_back(AddUeAt({310, 30}));   // c0, strongly exposed to c1
  ues.push_back(AddUeAt({-150, 0}));   // c0, protected
  ues.push_back(AddUeAt({390, -30}));  // c1, strongly exposed to c0
  ues.push_back(AddUeAt({850, 0}));    // c1, protected

  CellfiControllerConfig cfg;
  cfg.seed = 3;
  cfg.detection_probability = 0.8;
  cfg.false_positive_rate = 0.02;
  CellfiController controller(sim_, net_, cfg);
  controller.Start();
  net_.Start();

  sim_.RunUntil(500 * kMillisecond);
  for (UeId ue : ues) net_.OfferDownlink(ue, 256 << 20);
  sim_.RunUntil(30 * kSecond);

  // PRACH sensing with open-loop power control: each cell hears its own
  // two clients plus the neighbour's exposed midpoint client.
  EXPECT_GE(controller.sensor(c0).EstimateContenders(sim_.Now()), 3);
  EXPECT_GE(controller.sensor(c1).EstimateContenders(sim_.Now()), 3);
  EXPECT_EQ(controller.sensor(c0).OwnActive(sim_.Now()), 2);
  EXPECT_EQ(controller.sensor(c1).OwnActive(sim_.Now()), 2);

  // Shares follow S_i = N_i * S / NP_i.
  const int owned0 = controller.manager(c0).owned_count();
  const int owned1 = controller.manager(c1).owned_count();
  EXPECT_GE(owned0, 5);
  EXPECT_LE(owned0, 9);
  EXPECT_GE(owned1, 5);
  EXPECT_LE(owned1, 9);

  // With shares summing above S the masks cannot be fully disjoint; the
  // paper's Section 5.4 "incorrect share" case applies: the scheduler
  // routes exposed clients around contested subchannels and the system is
  // stable. What must hold: overlap is no more than the unavoidable
  // excess, and no cell keeps hopping.
  int overlap = 0;
  for (int s = 0; s < 13; ++s) {
    if (controller.manager(c0).mask()[static_cast<std::size_t>(s)] &&
        controller.manager(c1).mask()[static_cast<std::size_t>(s)]) {
      ++overlap;
    }
  }
  EXPECT_LE(overlap, std::max(0, owned0 + owned1 - 13) + 1);
  EXPECT_LE(controller.cells_hopping_recently(), 1);

  // The exposed clients must still receive service (the whole point of the
  // interference management): no starvation.
  for (UeId ue : {ues[0], ues[2]}) {
    const auto* ctx = net_.cell(net_.ue(ue).serving).FindUe(ue);
    ASSERT_NE(ctx, nullptr);
    EXPECT_GT(ctx->dl_delivered_bits, std::uint64_t{3} * 1000 * 1000 * 10);  // > 1 Mbps avg
  }
}

TEST_F(ControllerFixture, CellFiServesCellEdgeClientsPlainLteStarves) {
  const CellId c0 = AddCellAt({0, 0});
  const CellId c1 = AddCellAt({600, 0});
  (void)c0;
  (void)c1;
  // Both clients sit mid-way: catastrophic SINR when both cells transmit on
  // the same subchannels.
  const UeId edge0 = AddUeAt({280, 30});
  const UeId edge1 = AddUeAt({320, -30});

  auto run_and_measure = [&](bool with_cellfi) {
    Simulator sim;
    RadioEnvironment env(pathloss_, EnvConfig());
    lte::LteNetwork net(sim, env, NetConfig());
    const RadioNodeId r0 = env.AddNode(
        {.position = {0, 0}, .antenna = Antenna::Omni(6.0), .tx_power_dbm = 30.0});
    const RadioNodeId r1 = env.AddNode(
        {.position = {600, 0}, .antenna = Antenna::Omni(6.0), .tx_power_dbm = 30.0});
    LteMacConfig mac;
    mac.bandwidth = LteBandwidth::k5MHz;
    net.AddCell(mac, r0);
    net.AddCell(mac, r1);
    const RadioNodeId u0 = env.AddNode({.position = {280, 30}, .tx_power_dbm = 20.0});
    const RadioNodeId u1 = env.AddNode({.position = {320, -30}, .tx_power_dbm = 20.0});
    const UeId ue0 = net.AddUe(u0);
    const UeId ue1 = net.AddUe(u1);

    std::unique_ptr<CellfiController> controller;
    if (with_cellfi) {
      CellfiControllerConfig cfg;
      cfg.seed = 17;
      controller = std::make_unique<CellfiController>(sim, net, cfg);
      controller->Start();
    }
    net.Start();
    sim.RunUntil(500 * kMillisecond);
    net.OfferDownlink(ue0, 256 << 20);
    net.OfferDownlink(ue1, 256 << 20);
    sim.RunUntil(20 * kSecond);

    std::uint64_t bits = 0;
    for (std::size_t c = 0; c < net.cell_count(); ++c) {
      for (const auto& ctx : net.cell(static_cast<CellId>(c)).ues()) {
        if (ctx->id() == ue0 || ctx->id() == ue1) bits += ctx->dl_delivered_bits;
      }
    }
    return static_cast<double>(bits) / 19.5 / 1e6;  // Mbps total
  };

  const double plain = run_and_measure(false);
  const double cellfi = run_and_measure(true);
  // CellFi must clearly beat uncoordinated LTE for these edge clients.
  EXPECT_GT(cellfi, plain * 1.3);
  (void)edge0;
  (void)edge1;
}

}  // namespace
}  // namespace cellfi::core
