#include "cellfi/sim/event_queue.h"

#include <vector>

#include <gtest/gtest.h>

namespace cellfi {
namespace {

TEST(SimulatorTest, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(30, [&] { order.push_back(3); });
  sim.ScheduleAt(10, [&] { order.push_back(1); });
  sim.ScheduleAt(20, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30);
}

TEST(SimulatorTest, SameTimestampFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAt(5, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SimulatorTest, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  SimTime fired_at = -1;
  sim.ScheduleAt(100, [&] {
    sim.ScheduleAfter(50, [&] { fired_at = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(fired_at, 150);
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator sim;
  int count = 0;
  sim.ScheduleAt(10, [&] { ++count; });
  sim.ScheduleAt(20, [&] { ++count; });
  sim.ScheduleAt(30, [&] { ++count; });
  sim.RunUntil(20);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.Now(), 20);
  sim.RunUntil(100);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(sim.Now(), 100);  // advances even past the last event
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  EventId id = sim.ScheduleAt(10, [&] { fired = true; });
  sim.Cancel(id);
  sim.Run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.executed_events(), 0u);
}

TEST(SimulatorTest, CancelInvalidIdIsNoop) {
  Simulator sim;
  sim.Cancel(EventId{});
  bool fired = false;
  sim.ScheduleAt(1, [&] { fired = true; });
  sim.Run();
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, PeriodicFiresRepeatedly) {
  Simulator sim;
  int count = 0;
  sim.SchedulePeriodic(10, [&] { ++count; });
  sim.RunUntil(55);
  EXPECT_EQ(count, 5);  // t = 10, 20, 30, 40, 50
}

TEST(SimulatorTest, PeriodicCancelStopsChain) {
  Simulator sim;
  int count = 0;
  EventId id = sim.SchedulePeriodic(10, [&] { ++count; });
  sim.ScheduleAt(35, [&, id] { sim.Cancel(id); });
  sim.RunUntil(200);
  EXPECT_EQ(count, 3);
}

TEST(SimulatorTest, PeriodicCanCancelItself) {
  Simulator sim;
  int count = 0;
  EventId id;
  id = sim.SchedulePeriodic(10, [&] {
    if (++count == 4) sim.Cancel(id);
  });
  sim.RunUntil(1000);
  EXPECT_EQ(count, 4);
}

TEST(SimulatorTest, EventsScheduledFromEventsRun) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) sim.ScheduleAfter(1, recurse);
  };
  sim.ScheduleAt(0, recurse);
  sim.Run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.Now(), 99);
}

TEST(SimulatorTest, HasPendingReflectsQueue) {
  Simulator sim;
  EXPECT_FALSE(sim.HasPending());
  sim.ScheduleAt(5, [] {});
  EXPECT_TRUE(sim.HasPending());
  sim.Run();
  EXPECT_FALSE(sim.HasPending());
}

TEST(TimeTest, Conversions) {
  EXPECT_EQ(FromSeconds(1.5), 1'500'000'000);
  EXPECT_EQ(FromMilliseconds(2.0), 2'000'000);
  EXPECT_EQ(FromMicroseconds(3.0), 3'000);
  EXPECT_DOUBLE_EQ(ToSeconds(2 * kSecond), 2.0);
  EXPECT_DOUBLE_EQ(ToMilliseconds(kSecond), 1000.0);
}

}  // namespace
}  // namespace cellfi
