#include "cellfi/lte/enodeb.h"

#include <gtest/gtest.h>

#include "cellfi/phy/cqi_mcs.h"

namespace cellfi::lte {
namespace {

LteMacConfig Config5MHz() {
  LteMacConfig cfg;
  cfg.bandwidth = LteBandwidth::k5MHz;
  return cfg;
}

TEST(EnodebTest, AddFindRemoveUe) {
  EnodeB enb(0, Config5MHz());
  EXPECT_FALSE(enb.has_ues());
  enb.AddUe(7);
  EXPECT_NE(enb.FindUe(7), nullptr);
  EXPECT_EQ(enb.FindUe(8), nullptr);
  enb.RemoveUe(7);
  EXPECT_EQ(enb.FindUe(7), nullptr);
}

TEST(EnodebTest, PlanEmptyWithoutTraffic) {
  EnodeB enb(0, Config5MHz());
  enb.AddUe(1);
  const TxPlan plan = enb.PlanDownlink();
  EXPECT_TRUE(plan.transmissions.empty());
  for (bool b : plan.data_active) EXPECT_FALSE(b);
}

TEST(EnodebTest, BackloggedUeGetsFullBand) {
  EnodeB enb(0, Config5MHz());
  UeContext& ue = enb.AddUe(1);
  ue.EnqueueDownlink(1 << 20);
  ue.UpdateCqi(10, std::vector<int>(13, 10));
  const TxPlan plan = enb.PlanDownlink();
  ASSERT_EQ(plan.transmissions.size(), 1u);
  EXPECT_EQ(plan.transmissions[0].subchannels.size(), 13u);
  EXPECT_EQ(plan.transmissions[0].cqi, 10);
  EXPECT_GT(plan.transmissions[0].tb_bits, 0);
}

TEST(EnodebTest, AllowedMaskLimitsPlan) {
  EnodeB enb(0, Config5MHz());
  UeContext& ue = enb.AddUe(1);
  ue.EnqueueDownlink(1 << 20);
  ue.UpdateCqi(10, std::vector<int>(13, 10));
  std::vector<bool> mask(13, false);
  mask[0] = mask[1] = mask[2] = true;
  enb.SetAllowedMask(mask);
  EXPECT_EQ(enb.allowed_count(), 3);
  const TxPlan plan = enb.PlanDownlink();
  ASSERT_EQ(plan.transmissions.size(), 1u);
  EXPECT_EQ(plan.transmissions[0].subchannels.size(), 3u);
}

TEST(EnodebTest, SmallPayloadStillUsesWholeAllocation) {
  EnodeB enb(0, Config5MHz());
  UeContext& ue = enb.AddUe(1);
  ue.EnqueueDownlink(100);  // one small packet
  ue.UpdateCqi(10, std::vector<int>(13, 10));
  const TxPlan plan = enb.PlanDownlink();
  ASSERT_EQ(plan.transmissions.size(), 1u);
  EXPECT_EQ(plan.transmissions[0].payload_bytes, 100u);
}

TEST(EnodebTest, DeliverySuccessDrainsQueueAndCounts) {
  EnodeB enb(0, Config5MHz());
  UeContext& ue = enb.AddUe(1);
  ue.EnqueueDownlink(10000);
  ue.UpdateCqi(10, std::vector<int>(13, 10));
  Rng rng(1);
  const TxPlan plan = enb.PlanDownlink();
  const auto result = enb.CompleteDownlink(plan.transmissions[0], 30.0, rng);
  EXPECT_TRUE(result.delivered);
  EXPECT_EQ(result.attempts, 1);
  EXPECT_LT(ue.dl_queue_bytes(), 10000u);
  EXPECT_GT(ue.dl_delivered_bits, 0u);
  EXPECT_GT(enb.total_dl_bits(), 0u);
  EXPECT_FALSE(ue.harq_dl().active);
  ASSERT_EQ(ue.code_rate_log.size(), 1u);
  EXPECT_NEAR(ue.code_rate_log[0], CqiCodeRate(10), 1e-12);
}

TEST(EnodebTest, DeliveryFailureArmsHarq) {
  EnodeB enb(0, Config5MHz());
  UeContext& ue = enb.AddUe(1);
  ue.EnqueueDownlink(10000);
  ue.UpdateCqi(10, std::vector<int>(13, 10));
  Rng rng(1);
  const TxPlan plan = enb.PlanDownlink();
  // SINR 30 dB below the MCS: certain failure.
  const auto result = enb.CompleteDownlink(plan.transmissions[0], -20.0, rng);
  EXPECT_FALSE(result.delivered);
  EXPECT_FALSE(result.dropped);
  EXPECT_TRUE(ue.harq_dl().active);
  EXPECT_EQ(ue.harq_dl().attempts, 1);
  EXPECT_EQ(ue.dl_queue_bytes(), 10000u);  // nothing drained yet
}

TEST(EnodebTest, HarqDropsAfterMaxAttempts) {
  LteMacConfig cfg = Config5MHz();
  cfg.harq_max_transmissions = 4;
  EnodeB enb(0, cfg);
  UeContext& ue = enb.AddUe(1);
  ue.EnqueueDownlink(10000);
  ue.UpdateCqi(10, std::vector<int>(13, 10));
  Rng rng(1);
  for (int attempt = 1; attempt <= 4; ++attempt) {
    const TxPlan plan = enb.PlanDownlink();
    ASSERT_EQ(plan.transmissions.size(), 1u) << attempt;
    EXPECT_EQ(plan.transmissions[0].is_harq_retx, attempt > 1);
    const auto result = enb.CompleteDownlink(plan.transmissions[0], -30.0, rng);
    EXPECT_FALSE(result.delivered);
    EXPECT_EQ(result.dropped, attempt == 4);
  }
  EXPECT_FALSE(ue.harq_dl().active);  // reset after drop
  EXPECT_EQ(ue.dl_lost_blocks, 1u);
  EXPECT_EQ(ue.dl_queue_bytes(), 10000u);  // data still queued for retry
}

TEST(EnodebTest, HarqCombiningDeliversMarginalLink) {
  EnodeB enb(0, Config5MHz());
  UeContext& ue = enb.AddUe(1);
  ue.EnqueueDownlink(1 << 20);
  ue.UpdateCqi(7, std::vector<int>(13, 7));
  Rng rng(3);
  // 2.9 dB below CQI 7's threshold: first attempt nearly always fails, the
  // +3 dB chase gain on attempt 2 nearly always succeeds.
  const double sinr = CqiTable(7).sinr_threshold_db - 2.9;
  int delivered = 0, attempts_total = 0;
  for (int i = 0; i < 300; ++i) {
    ue.harq_dl().Clear();
    int attempts = 0;
    while (true) {
      const TxPlan plan = enb.PlanDownlink();
      const auto result = enb.CompleteDownlink(plan.transmissions[0], sinr, rng);
      ++attempts;
      if (result.delivered) {
        ++delivered;
        break;
      }
      if (result.dropped) break;
    }
    attempts_total += attempts;
  }
  EXPECT_GT(delivered, 290);
  EXPECT_GT(attempts_total, 450);  // retransmissions were actually needed
}

TEST(EnodebTest, RetxPlanKeepsTbsAndCqi) {
  EnodeB enb(0, Config5MHz());
  UeContext& ue = enb.AddUe(1);
  ue.EnqueueDownlink(1 << 20);
  ue.UpdateCqi(12, std::vector<int>(13, 12));
  Rng rng(1);
  const TxPlan first = enb.PlanDownlink();
  const int tb = first.transmissions[0].tb_bits;
  enb.CompleteDownlink(first.transmissions[0], -30.0, rng);
  // CQI change between attempts must not alter the in-flight block.
  ue.UpdateCqi(3, std::vector<int>(13, 3));
  const TxPlan second = enb.PlanDownlink();
  ASSERT_EQ(second.transmissions.size(), 1u);
  EXPECT_TRUE(second.transmissions[0].is_harq_retx);
  EXPECT_EQ(second.transmissions[0].tb_bits, tb);
  EXPECT_EQ(second.transmissions[0].cqi, 12);
}

TEST(EnodebTest, UplinkDeliveryDrainsUlQueue) {
  EnodeB enb(0, Config5MHz());
  UeContext& ue = enb.AddUe(1);
  ue.EnqueueUplink(66);
  ue.UpdateCqi(10, std::vector<int>(13, 10));
  Rng rng(1);
  const TxPlan plan = enb.PlanUplink();
  ASSERT_EQ(plan.transmissions.size(), 1u);
  EXPECT_EQ(plan.transmissions[0].subchannels.size(), 1u);
  const auto result = enb.CompleteUplink(plan.transmissions[0], 30.0, rng);
  EXPECT_TRUE(result.delivered);
  EXPECT_EQ(ue.ul_queue_bytes(), 0u);
  EXPECT_EQ(ue.ul_delivered_bits, 66u * 8u);
}

TEST(EnodebTest, FddConfigHasNoUplinkSubframes) {
  LteMacConfig cfg = Config5MHz();
  cfg.tdd_config = -1;
  EnodeB enb(0, cfg);
  EXPECT_EQ(enb.tdd().uplink_subframes_per_frame(), 0);
  EXPECT_EQ(enb.tdd().downlink_subframes_per_frame(), 10);
}

TEST(EnodebTest, UeWithoutCqiServedAtLowestMcs) {
  EnodeB enb(0, Config5MHz());
  UeContext& ue = enb.AddUe(1);
  ue.EnqueueDownlink(10000);
  const TxPlan plan = enb.PlanDownlink();
  ASSERT_EQ(plan.transmissions.size(), 1u);
  EXPECT_EQ(plan.transmissions[0].cqi, kMinCqi);
}

}  // namespace
}  // namespace cellfi::lte
