// Tests for the deterministic chaos engine (DESIGN.md §14): fault-plan
// JSON round-trips, the fault scheduler's dispatch/counters, the runtime
// invariant checker (including a PLANTED vacate-deadline violation the
// checker must catch), bit-reproducibility of full chaos campaigns across
// runs and thread counts, vacate-deadline compliance of thundering-herd
// reboot storms verified from the emitted trace by tools/trace_check.py,
// the harness-level CELLFI_CHAOS_PLAN knob, and the self-healing sweep
// supervisor (retry, quarantine, watchdog, checkpoint/resume).
#include <atomic>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cellfi/chaos/fault_plan.h"
#include "cellfi/chaos/fault_scheduler.h"
#include "cellfi/chaos/invariants.h"
#include "cellfi/obs/metrics.h"
#include "cellfi/obs/trace.h"
#include "cellfi/scenario/chaos_campaign.h"
#include "cellfi/scenario/report.h"
#include "cellfi/scenario/supervisor.h"
#include "cellfi/scenario/sweep.h"
#include "cellfi/sim/event_queue.h"

namespace cellfi {
namespace {

using chaos::FaultEvent;
using chaos::FaultKind;
using chaos::FaultPlan;
using chaos::InvariantChecker;
using chaos::InvariantCheckerConfig;
using chaos::InvariantKind;

// --- Fault plans -----------------------------------------------------------

FaultPlan AllKindsPlan() {
  FaultPlan plan;
  plan.name = "all-kinds";
  plan.seed = 0xABCDEF0123ull;
  plan.link.latency_base = 20 * kMillisecond;
  plan.link.latency_jitter = 5 * kMillisecond;
  plan.link.drop_probability = 0.05;
  plan.link.corrupt_probability = 0.01;
  plan.link.error_probability = 0.02;
  plan.link.wrong_id_probability = 0.005;
  plan.events.push_back({.kind = FaultKind::kApCrash, .time = 10 * kSecond,
                         .duration = 5 * kSecond, .target = 2});
  plan.events.push_back({.kind = FaultKind::kDbOutage, .time = 20 * kSecond,
                         .duration = 30 * kSecond});
  plan.events.push_back({.kind = FaultKind::kDbBrownout, .time = 60 * kSecond,
                         .duration = 10 * kSecond, .magnitude = 0.3,
                         .latency = 2 * kSecond});
  plan.events.push_back({.kind = FaultKind::kIncumbentArrive,
                         .time = 90 * kSecond, .duration = 40 * kSecond,
                         .channel = 21});
  plan.events.push_back({.kind = FaultKind::kIncumbentDepart,
                         .time = 200 * kSecond, .channel = 22});
  plan.events.push_back({.kind = FaultKind::kLoadShock, .time = 150 * kSecond,
                         .duration = 20 * kSecond, .target = 1,
                         .magnitude = 4.0});
  return plan;
}

TEST(FaultPlanTest, JsonRoundTripPreservesEveryKind) {
  const FaultPlan plan = AllKindsPlan().Normalized();
  const std::string text = plan.ToJsonText();
  const auto parsed = FaultPlan::FromJsonText(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->name, plan.name);
  EXPECT_EQ(parsed->seed, plan.seed);
  EXPECT_EQ(parsed->link.latency_base, plan.link.latency_base);
  EXPECT_EQ(parsed->link.drop_probability, plan.link.drop_probability);
  EXPECT_EQ(parsed->link.wrong_id_probability, plan.link.wrong_id_probability);
  ASSERT_EQ(parsed->events.size(), plan.events.size());
  for (std::size_t i = 0; i < plan.events.size(); ++i) {
    EXPECT_EQ(parsed->events[i], plan.events[i]) << "event " << i;
  }
  // Serialization is canonical: a second round trip is byte-identical.
  EXPECT_EQ(parsed->ToJsonText(), text);
}

TEST(FaultPlanTest, RejectsMalformedPlans) {
  EXPECT_FALSE(FaultPlan::FromJsonText("not json").has_value());
  EXPECT_FALSE(FaultPlan::FromJsonText("[1,2,3]").has_value());
  EXPECT_FALSE(FaultPlan::FromJsonText(
                   R"({"events":[{"kind":"warp_core_breach","t_us":1}]})")
                   .has_value());
  EXPECT_FALSE(FaultPlan::FromJsonText(
                   R"({"events":[{"kind":"ap_crash","t_us":-5}]})")
                   .has_value());
  EXPECT_FALSE(FaultPlan::FromJsonText(
                   R"({"link":{"drop_probability":1.5},"events":[]})")
                   .has_value());
}

TEST(FaultPlanTest, TransportSeedsAreStableAndDistinct) {
  const FaultPlan plan = AllKindsPlan();
  EXPECT_EQ(chaos::TransportSeed(plan, 0), chaos::TransportSeed(plan, 0));
  EXPECT_NE(chaos::TransportSeed(plan, 0), chaos::TransportSeed(plan, 1));
  const tvws::FaultProfile p0 = chaos::LinkProfileFor(plan, 0);
  EXPECT_EQ(p0.seed, chaos::TransportSeed(plan, 0));
  EXPECT_EQ(p0.drop_probability, plan.link.drop_probability);
}

// --- Fault scheduler -------------------------------------------------------

TEST(FaultSchedulerTest, DispatchesCountsAndAutoDeparture) {
  Simulator sim;
  FaultPlan plan;
  plan.events.push_back({.kind = FaultKind::kApCrash, .time = 1 * kSecond});
  plan.events.push_back({.kind = FaultKind::kIncumbentArrive,
                         .time = 2 * kSecond, .duration = 3 * kSecond,
                         .channel = 30});
  plan.events.push_back({.kind = FaultKind::kLoadShock, .time = 4 * kSecond,
                         .duration = 2 * kSecond, .target = 0,
                         .magnitude = 2.0});

  std::vector<int> crashed;
  int arrivals = 0, departures = 0, shocks_on = 0, shocks_off = 0;
  chaos::FaultHooks hooks;
  hooks.crash_ap = [&](int ap, const FaultEvent&) { crashed.push_back(ap); };
  hooks.incumbent_arrive = [&](const FaultEvent& e) {
    EXPECT_EQ(e.channel, 30);
    ++arrivals;
  };
  hooks.incumbent_depart = [&](const FaultEvent& e) {
    EXPECT_EQ(e.channel, 30);
    EXPECT_EQ(sim.Now(), 5 * kSecond);  // arrive + dwell
    ++departures;
  };
  hooks.load_shock_begin = [&](const FaultEvent&) { ++shocks_on; };
  hooks.load_shock_end = [&](const FaultEvent& e) {
    EXPECT_EQ(e.target, 0);
    ++shocks_off;
  };

  // target == -1 crash expands over the fleet.
  chaos::FaultScheduler scheduler(sim, plan, std::move(hooks), 3);
  scheduler.Arm();
  sim.RunUntil(10 * kSecond);

  EXPECT_EQ(crashed, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(arrivals, 1);
  EXPECT_EQ(departures, 1);
  EXPECT_EQ(shocks_on, 1);
  EXPECT_EQ(shocks_off, 1);
  EXPECT_EQ(scheduler.counters().ap_crashes, 3u);
  EXPECT_EQ(scheduler.counters().incumbent_arrivals, 1u);
  EXPECT_EQ(scheduler.counters().incumbent_departures, 1u);
  EXPECT_EQ(scheduler.counters().load_shocks, 1u);
  EXPECT_EQ(scheduler.counters().skipped, 0u);
  EXPECT_EQ(scheduler.injected(), 6u);
}

TEST(FaultSchedulerTest, UnboundHooksCountAsSkipped) {
  Simulator sim;
  FaultPlan plan;
  plan.events.push_back({.kind = FaultKind::kDbOutage, .time = 1 * kSecond,
                         .duration = 1 * kSecond});
  plan.events.push_back({.kind = FaultKind::kApCrash, .time = 2 * kSecond,
                         .target = 0});
  chaos::FaultScheduler scheduler(sim, plan, chaos::FaultHooks{}, 1);
  scheduler.Arm();
  sim.RunUntil(5 * kSecond);
  EXPECT_EQ(scheduler.injected(), 0u);
  EXPECT_EQ(scheduler.counters().skipped, 2u);
}

// --- Invariant checker -----------------------------------------------------

TEST(InvariantCheckerTest, VacateDeadlineArmsAndReportsOnce) {
  InvariantChecker checker;
  checker.OnApOnAir(0, 21, 0);
  checker.OnIncumbentArrival(21, 10 * kSecond);
  checker.AtBarrier(69 * kSecond);  // within the 60 s budget
  EXPECT_TRUE(checker.violations().empty());
  checker.AtBarrier(71 * kSecond);  // past 10 s + 60 s
  ASSERT_EQ(checker.violations().size(), 1u);
  EXPECT_EQ(checker.violations()[0].kind, InvariantKind::kVacateDeadline);
  EXPECT_EQ(checker.violations()[0].instance, 0);
  // Report-once: the expired deadline does not re-fire every barrier.
  checker.AtBarrier(80 * kSecond);
  EXPECT_EQ(checker.violations().size(), 1u);
}

TEST(InvariantCheckerTest, VacatingInTimeIsClean) {
  InvariantChecker checker;
  checker.OnApOnAir(0, 21, 0);
  checker.OnIncumbentArrival(21, 10 * kSecond);
  checker.OnApOffAir(0, 30 * kSecond);  // vacated well inside the budget
  checker.AtBarrier(200 * kSecond);
  EXPECT_TRUE(checker.violations().empty());
  // An arrival on a channel nobody transmits on arms nothing.
  checker.OnIncumbentArrival(45, 10 * kSecond);
  checker.AtBarrier(400 * kSecond);
  EXPECT_TRUE(checker.violations().empty());
}

TEST(InvariantCheckerTest, DirectChecksFlagViolations) {
  InvariantChecker checker;
  checker.CheckLeasedTransmit(3, true, 1 * kSecond);
  checker.CheckShareSum(0, 2, 1.0, 1 * kSecond);  // exactly 1.0 is legal
  checker.CheckPrbGrant(0, 25, 25, 1 * kSecond);
  EXPECT_TRUE(checker.violations().empty());
  EXPECT_EQ(checker.checks_run(), 3u);

  checker.CheckLeasedTransmit(3, false, 2 * kSecond);
  checker.CheckShareSum(0, 2, 1.5, 2 * kSecond);
  checker.CheckPrbGrant(0, 26, 25, 2 * kSecond);
  ASSERT_EQ(checker.violations().size(), 3u);
  EXPECT_EQ(checker.violations()[0].kind, InvariantKind::kLeasedTransmit);
  EXPECT_EQ(checker.violations()[1].kind, InvariantKind::kShareSum);
  EXPECT_EQ(checker.violations()[2].kind, InvariantKind::kPrbCapacity);
}

TEST(InvariantCheckerTest, AbortOnViolationThrows) {
  InvariantCheckerConfig cfg;
  cfg.abort_on_violation = true;
  InvariantChecker checker(cfg);
  EXPECT_THROW(checker.CheckPrbGrant(0, 30, 25, 0), std::runtime_error);
}

// --- Chaos campaigns -------------------------------------------------------

scenario::ChaosCampaignConfig HerdChurnCampaign() {
  scenario::ChaosCampaignConfig cfg;
  cfg.num_aps = 4;
  cfg.plan.name = "herd+churn";
  cfg.plan.events.push_back(
      {.kind = FaultKind::kApCrash, .time = 300 * kSecond});
  cfg.plan.events.push_back({.kind = FaultKind::kIncumbentArrive,
                             .time = 500 * kSecond,
                             .duration = 120 * kSecond, .channel = 14});
  cfg.run_until = 700 * kSecond;
  return cfg;
}

TEST(ChaosCampaignTest, FixedSeedCampaignIsBitIdentical) {
  const scenario::ChaosCampaignConfig cfg = HerdChurnCampaign();
  const auto a = scenario::RunChaosCampaign(cfg);
  const auto b = scenario::RunChaosCampaign(cfg);

  // The herd crash hit every AP; churn arrived and departed.
  EXPECT_EQ(a.faults.ap_crashes, 4u);
  EXPECT_EQ(a.faults.incumbent_arrivals, 1u);
  EXPECT_EQ(a.faults.incumbent_departures, 1u);
  EXPECT_EQ(a.faults_injected, 6u);
  ASSERT_EQ(a.aps.size(), 4u);
  for (const auto& ap : a.aps) {
    EXPECT_EQ(ap.crashes, 1u);
    EXPECT_FALSE(ap.lease_confirms.empty());
  }
  EXPECT_TRUE(a.violations.empty());
  EXPECT_GT(a.invariant_checks, 0u);
  EXPECT_EQ(a.Digest(), b.Digest());
}

TEST(ChaosCampaignTest, DigestIndependentOfThreadCount) {
  // Three campaigns with different plan flavors, run on a 1-thread pool
  // and a 4-thread pool: the digests must match element-wise.
  std::vector<scenario::ChaosCampaignConfig> cfgs;
  cfgs.push_back(HerdChurnCampaign());
  cfgs.push_back(HerdChurnCampaign());
  cfgs[1].plan.link.drop_probability = 0.1;
  cfgs[1].plan.link.latency_jitter = 50 * kMillisecond;
  cfgs.push_back(HerdChurnCampaign());
  cfgs[2].plan.events.push_back({.kind = FaultKind::kDbOutage,
                                 .time = 100 * kSecond,
                                 .duration = 80 * kSecond});

  auto run_all = [&cfgs](int threads) {
    std::vector<std::uint64_t> digests(cfgs.size(), 0);
    scenario::SweepRunner runner(scenario::SweepOptions{.threads = threads});
    runner.RunTasks(cfgs.size(), [&](std::size_t i) {
      digests[i] = scenario::RunChaosCampaign(cfgs[i]).Digest();
    });
    return digests;
  };
  EXPECT_EQ(run_all(1), run_all(4));
}

TEST(ChaosCampaignTest, PlantedVacateDeadlineViolationIsCaught) {
  // Negative test: an AP polling every 120 s with a (deliberately lax)
  // 300 s internal budget cannot notice an incumbent for up to 120 s.
  // Against the real ETSI 60 s budget in the checker that is a violation,
  // and the checker must catch it.
  scenario::ChaosCampaignConfig cfg;
  cfg.num_aps = 2;
  cfg.selector.db_poll_interval = 120 * kSecond;
  cfg.selector.etsi_vacate_budget = 300 * kSecond;
  cfg.plan.name = "planted-violation";
  cfg.plan.events.push_back({.kind = FaultKind::kIncumbentArrive,
                             .time = 150 * kSecond, .channel = 14});
  cfg.run_until = 400 * kSecond;

  const auto bad = scenario::RunChaosCampaign(cfg);
  ASSERT_FALSE(bad.violations.empty());
  for (const auto& v : bad.violations) {
    EXPECT_EQ(v.kind, InvariantKind::kVacateDeadline);
    EXPECT_GE(v.time, 210 * kSecond);  // arrival + 60 s
  }

  // Control: judged against the same 300 s budget the selector honors,
  // the identical campaign is clean.
  cfg.invariants.vacate_budget = 300 * kSecond;
  const auto ok = scenario::RunChaosCampaign(cfg);
  EXPECT_TRUE(ok.violations.empty());
}

// Run `python3 tools/trace_check.py <args>` against the source tree.
int RunTraceCheck(const std::string& args) {
  const std::string cmd =
      "python3 " CELLFI_SOURCE_DIR "/tools/trace_check.py " + args;
  return std::system(cmd.c_str());
}

TEST(ChaosCampaignTest, ThunderingHerdMeetsVacateDeadlines) {
  // Three reboot-storm fault plans; for each, every vacate_fired in the
  // emitted trace must sit within the ETSI 60 s budget of the latest
  // lease confirmation (vacate_armed), verified by trace_check.py.
  std::vector<scenario::ChaosCampaignConfig> cfgs(3);
  cfgs[0] = HerdChurnCampaign();  // herd crash, then incumbent churn
  // Herd crash, then a database outage long enough to expire leases: the
  // hard deadline path must fire at exactly last-confirm + budget.
  cfgs[1].num_aps = 4;
  cfgs[1].plan.name = "herd+outage";
  cfgs[1].plan.events.push_back(
      {.kind = FaultKind::kApCrash, .time = 200 * kSecond});
  cfgs[1].plan.events.push_back({.kind = FaultKind::kDbOutage,
                                 .time = 400 * kSecond,
                                 .duration = 120 * kSecond});
  cfgs[1].run_until = 700 * kSecond;
  // Staggered crashes with a brownout and churn.
  cfgs[2].num_aps = 3;
  cfgs[2].plan.name = "stagger+brownout+churn";
  for (int ap = 0; ap < 3; ++ap) {
    cfgs[2].plan.events.push_back({.kind = FaultKind::kApCrash,
                                   .time = (250 + 50 * ap) * kSecond,
                                   .target = ap});
  }
  cfgs[2].plan.events.push_back({.kind = FaultKind::kDbBrownout,
                                 .time = 420 * kSecond,
                                 .duration = 60 * kSecond, .magnitude = 0.4,
                                 .latency = 1 * kSecond});
  cfgs[2].plan.events.push_back({.kind = FaultKind::kIncumbentArrive,
                                 .time = 520 * kSecond,
                                 .duration = 90 * kSecond, .channel = 14});
  cfgs[2].run_until = 700 * kSecond;

  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    const std::string path = testing::TempDir() + "chaos_herd_trace_" +
                             std::to_string(i) + ".jsonl";
    std::remove(path.c_str());
    {
      obs::TraceSinkConfig sink_cfg;
      sink_cfg.jsonl_path = path;
      obs::TraceSink sink(sink_cfg);
      obs::MetricsRegistry metrics;
      obs::ObsScope scope(&sink, &metrics);
      const auto result = scenario::RunChaosCampaign(cfgs[i]);
      EXPECT_TRUE(result.violations.empty()) << cfgs[i].plan.name;
      sink.Flush();
    }
    EXPECT_EQ(RunTraceCheck("deadline " + path +
                            " --first channel_selector:vacate_armed"
                            " --second channel_selector:vacate_fired"
                            " --max-us 60000000 --require 1"
                            " >/dev/null"),
              0)
        << cfgs[i].plan.name;
  }
}

// --- Harness integration ---------------------------------------------------

scenario::ScenarioConfig SmallLteConfig(std::uint64_t seed) {
  scenario::ScenarioConfig cfg;
  cfg.tech = scenario::Technology::kCellFi;
  cfg.workload = scenario::WorkloadKind::kBacklogged;
  cfg.topology.area_m = 800.0;
  cfg.topology.num_aps = 2;
  cfg.topology.clients_per_ap = 2;
  cfg.warmup = 100 * kMillisecond;
  cfg.duration = 1 * kSecond;
  cfg.seed = seed;
  return cfg;
}

TEST(HarnessChaosTest, CrashAndLoadShockInjectDeterministically) {
  scenario::ScenarioConfig cfg = SmallLteConfig(42);
  FaultPlan plan;
  plan.name = "harness-smoke";
  plan.events.push_back({.kind = FaultKind::kApCrash, .time = 300 * kMillisecond,
                         .duration = 200 * kMillisecond, .target = 0});
  plan.events.push_back({.kind = FaultKind::kLoadShock, .time = 500 * kMillisecond,
                         .duration = 300 * kMillisecond, .magnitude = 2.0});
  cfg.chaos_plan = plan;

  const auto a = scenario::RunScenario(cfg);
  const auto b = scenario::RunScenario(cfg);
  EXPECT_EQ(a.chaos_faults_injected, 2u);
  EXPECT_EQ(b.chaos_faults_injected, 2u);
  ASSERT_EQ(a.clients.size(), b.clients.size());
  for (std::size_t c = 0; c < a.clients.size(); ++c) {
    EXPECT_EQ(a.clients[c].throughput_bps, b.clients[c].throughput_bps);
  }
  EXPECT_EQ(a.total_throughput_bps, b.total_throughput_bps);

  // Without a plan the run injects nothing.
  cfg.chaos_plan.reset();
  EXPECT_EQ(scenario::RunScenario(cfg).chaos_faults_injected, 0u);
}

TEST(HarnessChaosTest, EnvKnobLoadsPlanFromFile) {
  FaultPlan plan;
  plan.name = "env-knob";
  plan.events.push_back(
      {.kind = FaultKind::kApCrash, .time = 300 * kMillisecond, .target = 0});
  const std::string path = testing::TempDir() + "chaos_env_plan.json";
  {
    std::ofstream file(path);
    file << plan.ToJsonText() << "\n";
  }
  ASSERT_EQ(setenv("CELLFI_CHAOS_PLAN", path.c_str(), 1), 0);
  const auto result = scenario::RunScenario(SmallLteConfig(7));
  unsetenv("CELLFI_CHAOS_PLAN");
  EXPECT_EQ(result.chaos_faults_injected, 1u);
}

// --- Sweep supervisor ------------------------------------------------------

scenario::SupervisorOptions Opts(int threads, int max_attempts,
                                 double watchdog_seconds = 0.0,
                                 std::string resume_path = "") {
  scenario::SupervisorOptions o;
  o.threads = threads;
  o.max_attempts = max_attempts;
  o.watchdog_seconds = watchdog_seconds;
  o.resume_path = std::move(resume_path);
  return o;
}

std::vector<scenario::Replication> SupervisorJobs(int reps) {
  std::vector<scenario::Replication> jobs;
  for (int rep = 0; rep < reps; ++rep) {
    scenario::ScenarioConfig cfg;
    cfg.duration = 2 * kSecond;
    cfg.seed = scenario::SweepSeed(0xC4A05, 0, static_cast<std::uint64_t>(rep));
    jobs.push_back(scenario::Replication{cfg, nullptr, 0, rep});
  }
  return jobs;
}

// Deterministic pure-function body: result and metrics depend only on the
// replication's seed, never on threads or timing.
scenario::ScenarioResult SeedBody(const scenario::Replication& job) {
  scenario::ScenarioResult r;
  const std::uint64_t mod97 = job.config.seed % 97;
  const std::uint64_t mod1009 = job.config.seed % 1009;
  r.fraction_connected = static_cast<double>(mod97) / 97.0;
  r.total_throughput_bps = static_cast<double>(mod1009);
  auto metrics = std::make_shared<obs::MetricsRegistry>();
  metrics->Add(metrics->Counter("body.seed_mod"),
               job.config.seed % 31);
  r.metrics = metrics;
  return r;
}

TEST(SweepSupervisorTest, RetrySucceedsOnSecondAttempt) {
  const auto jobs = SupervisorJobs(3);
  std::atomic<int> rep1_attempts{0};
  scenario::SweepSupervisor sup(Opts(2, 3));
  const auto outcomes = sup.Run(jobs, [&](const scenario::Replication& job) {
    if (job.rep == 1 && rep1_attempts.fetch_add(1) == 0) {
      throw std::runtime_error("transient failure");
    }
    return SeedBody(job);
  });
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_EQ(outcomes[1].error, nullptr);
  EXPECT_EQ(outcomes[1].attempts, 2);
  EXPECT_FALSE(outcomes[1].quarantined);
  EXPECT_EQ(sup.retries(), 1u);
  EXPECT_EQ(sup.quarantined(), 0u);
  EXPECT_TRUE(sup.failures().empty());
}

TEST(SweepSupervisorTest, ExhaustedRetriesQuarantineWithRecord) {
  const auto jobs = SupervisorJobs(3);
  scenario::SweepSupervisor sup(Opts(2, 2));
  const auto outcomes = sup.Run(jobs, [&](const scenario::Replication& job) {
    if (job.rep == 2) throw std::runtime_error("hard failure in rep 2");
    return SeedBody(job);
  });
  EXPECT_NE(outcomes[2].error, nullptr);
  EXPECT_TRUE(outcomes[2].quarantined);
  EXPECT_EQ(outcomes[2].attempts, 2);
  EXPECT_EQ(sup.retries(), 1u);
  EXPECT_EQ(sup.quarantined(), 1u);
  ASSERT_EQ(sup.failures().size(), 1u);
  const scenario::FailureRecord& rec = sup.failures()[0];
  EXPECT_EQ(rec.rep, 2);
  EXPECT_EQ(rec.seed, jobs[2].config.seed);
  EXPECT_EQ(rec.attempts, 2);
  EXPECT_EQ(rec.error, "hard failure in rep 2");
  EXPECT_TRUE(rec.quarantined);
  const json::Value doc = sup.FailuresToJson();
  const json::Value* failures = doc.Find("failures");
  ASSERT_NE(failures, nullptr);
  ASSERT_EQ(failures->as_array().size(), 1u);
  EXPECT_EQ(failures->as_array()[0].Find("seed")->as_string(),
            std::to_string(jobs[2].config.seed));
}

TEST(SweepSupervisorTest, WatchdogConvertsOverDeadlineRunsToFailures) {
  const auto jobs = SupervisorJobs(2);
  scenario::SweepSupervisor sup(Opts(1, 1, 1e-12));
  const auto outcomes = sup.Run(
      jobs, [](const scenario::Replication& job) { return SeedBody(job); });
  EXPECT_EQ(sup.watchdog_expirations(), 2u);
  EXPECT_EQ(sup.quarantined(), 2u);
  for (const auto& out : outcomes) {
    EXPECT_NE(out.error, nullptr);
    EXPECT_EQ(out.error_text, "watchdog deadline exceeded");
  }
}

TEST(SweepSupervisorTest, FailureRecordLandsInBenchArtifact) {
  // Satellite: a replication that dies with an exception leaves the
  // failing seed and exception text in the BENCH_* artifact.
  const auto jobs = SupervisorJobs(2);
  scenario::SweepSupervisor sup(Opts(1, 1));
  const auto outcomes = sup.Run(jobs, [](const scenario::Replication& job) {
    if (job.rep == 1) throw std::runtime_error("exploded at subframe 7");
    return SeedBody(job);
  });

  ASSERT_EQ(setenv("CELLFI_BENCH_OUT", testing::TempDir().c_str(), 1), 0);
  scenario::BenchReport report("chaos_supervisor_test", 1, 2);
  report.AddPoint("p0", outcomes, 0);
  const std::string path = report.Write();
  unsetenv("CELLFI_BENCH_OUT");

  std::ifstream file(path);
  ASSERT_TRUE(file.is_open());
  std::ostringstream text;
  text << file.rdbuf();
  const auto doc = json::Parse(text.str());
  ASSERT_TRUE(doc.has_value());
  const json::Value& point = doc->Find("points")->as_array()[0];
  const json::Value* failures = point.Find("failures");
  ASSERT_NE(failures, nullptr);
  ASSERT_EQ(failures->as_array().size(), 1u);
  const json::Value& failure = failures->as_array()[0];
  EXPECT_EQ(failure.Find("rep")->as_int(), 1);
  EXPECT_EQ(failure.Find("seed")->as_string(),
            std::to_string(jobs[1].config.seed));
  EXPECT_EQ(failure.Find("error")->as_string(), "exploded at subframe 7");
  EXPECT_TRUE(failure.Find("quarantined")->as_bool());
}

TEST(SweepSupervisorTest, ResumeRestoresCompletedAndRetriesFailed) {
  const auto jobs = SupervisorJobs(4);
  const std::string resume = testing::TempDir() + "chaos_sweep_resume.jsonl";
  std::remove(resume.c_str());

  // "Interrupted" first run: reps 0 and 1 complete (rep 1 fails hard),
  // reps 2 and 3 never ran.
  {
    scenario::SweepSupervisor sup(Opts(1, 1, 0.0, resume));
    sup.Run({jobs[0], jobs[1]}, [](const scenario::Replication& job) {
      if (job.rep == 1) throw std::runtime_error("died before interruption");
      return SeedBody(job);
    });
  }

  // Resumed run over the full grid: rep 0 restores from the checkpoint,
  // the failed rep 1 gets a fresh chance, reps 2-3 run for the first time.
  std::atomic<int> bodies_run{0};
  scenario::SweepSupervisor sup(Opts(2, 1, 0.0, resume));
  const auto outcomes = sup.Run(jobs, [&](const scenario::Replication& job) {
    bodies_run.fetch_add(1);
    return SeedBody(job);
  });
  EXPECT_EQ(sup.restored(), 1u);
  EXPECT_EQ(bodies_run.load(), 3);
  ASSERT_EQ(outcomes.size(), 4u);
  EXPECT_TRUE(outcomes[0].restored);
  EXPECT_EQ(outcomes[0].seed, jobs[0].config.seed);
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_FALSE(outcomes[i].restored);
    EXPECT_EQ(outcomes[i].error, nullptr);
  }
}

TEST(SweepSupervisorTest, ResumePathResolvesFromEnv) {
  const std::string resume = testing::TempDir() + "chaos_env_resume.jsonl";
  ASSERT_EQ(setenv("CELLFI_SWEEP_RESUME", resume.c_str(), 1), 0);
  scenario::SweepSupervisor sup;
  unsetenv("CELLFI_SWEEP_RESUME");
  EXPECT_EQ(sup.resume_path(), resume);
  // Without the env knob (and no option), checkpointing is off.
  scenario::SweepSupervisor plain;
  EXPECT_TRUE(plain.resume_path().empty());
}

// Remove the wall-clock fields from a bench artifact: everything else
// must be byte-identical between an uninterrupted and a resumed sweep.
void StripWallClock(json::Value& doc) {
  doc.as_object().erase("wall_s");
  doc.as_object().erase("replication_wall_s");
  doc.as_object().erase("parallel_speedup");
  doc.as_object().erase("sim_per_wall");
  for (json::Value& point : doc["points"].as_array()) {
    point.as_object().erase("wall_s");
    point.as_object().erase("sim_per_wall");
  }
}

std::string ReadAll(const std::string& path) {
  std::ifstream file(path);
  std::ostringstream text;
  text << file.rdbuf();
  return text.str();
}

TEST(SweepSupervisorTest, ResumedArtifactByteIdenticalModuloWallClock) {
  const auto jobs = SupervisorJobs(4);
  ASSERT_EQ(setenv("CELLFI_BENCH_OUT", testing::TempDir().c_str(), 1), 0);

  // Uninterrupted reference sweep.
  const std::string resume_a = testing::TempDir() + "chaos_resume_a.jsonl";
  std::remove(resume_a.c_str());
  std::string path_a;
  {
    scenario::SweepSupervisor sup(Opts(2, 2, 0.0, resume_a));
    const auto outcomes = sup.Run(jobs, SeedBody);
    scenario::BenchReport report("chaos_resume_ref", 2, 4);
    report.AddPoint("p0", outcomes, 0);
    path_a = report.Write();
  }

  // Interrupted after two replications, then resumed over the full grid.
  const std::string resume_b = testing::TempDir() + "chaos_resume_b.jsonl";
  std::remove(resume_b.c_str());
  {
    scenario::SweepSupervisor sup(Opts(1, 2, 0.0, resume_b));
    sup.Run({jobs[0], jobs[1]}, SeedBody);
  }
  std::string path_b;
  {
    scenario::SweepSupervisor sup(Opts(2, 2, 0.0, resume_b));
    const auto outcomes = sup.Run(jobs, SeedBody);
    EXPECT_EQ(sup.restored(), 2u);
    scenario::BenchReport report("chaos_resume_resumed", 2, 4);
    report.AddPoint("p0", outcomes, 0);
    path_b = report.Write();
  }
  unsetenv("CELLFI_BENCH_OUT");

  auto a = json::Parse(ReadAll(path_a));
  auto b = json::Parse(ReadAll(path_b));
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  // The bench name is the only intended difference; align it.
  (*a)["bench"] = "chaos_resume";
  (*b)["bench"] = "chaos_resume";
  StripWallClock(*a);
  StripWallClock(*b);
  EXPECT_EQ(a->Dump(), b->Dump());
}

}  // namespace
}  // namespace cellfi
