// Listen-before-talk (LAA/MulteFire-style) channel access for LTE cells.
#include <gtest/gtest.h>

#include "cellfi/lte/network.h"
#include "cellfi/radio/pathloss.h"

namespace cellfi::lte {
namespace {

class LbtFixture : public ::testing::Test {
 protected:
  LbtFixture() : env_(pathloss_, EnvCfg()), net_(sim_, env_, NetCfg()) {}

  static RadioEnvironmentConfig EnvCfg() {
    RadioEnvironmentConfig c;
    c.carrier_freq_hz = 600e6;
    c.shadowing_sigma_db = 0.0;
    c.enable_fading = false;
    return c;
  }
  static LteNetworkConfig NetCfg() {
    LteNetworkConfig c;
    c.seed = 5;
    return c;
  }

  CellId AddLbtCellAt(Point p) {
    LteMacConfig mac;
    mac.access_mode = AccessMode::kListenBeforeTalk;
    return net_.AddCell(mac, env_.AddNode({.position = p, .tx_power_dbm = 30.0}));
  }

  UeId AddUeAt(Point p, CellId force) {
    return net_.AddUe(env_.AddNode({.position = p, .tx_power_dbm = 20.0}), force);
  }

  std::uint64_t Delivered(CellId c, UeId ue) {
    const auto* ctx = net_.cell(c).FindUe(ue);
    return ctx != nullptr ? ctx->dl_delivered_bits : 0;
  }

  HataUrbanPathLoss pathloss_;
  Simulator sim_;
  RadioEnvironment env_;
  LteNetwork net_;
};

TEST_F(LbtFixture, SingleLbtCellDeliversNormally) {
  const CellId c = AddLbtCellAt({0, 0});
  const UeId ue = AddUeAt({200, 0}, c);
  net_.Start();
  sim_.RunUntil(300 * kMillisecond);
  net_.OfferDownlink(ue, 8 << 20);
  sim_.RunUntil(2300 * kMillisecond);
  // No contender: LBT always finds the channel clear.
  EXPECT_GT(Delivered(c, ue), 8.0e6);
}

TEST_F(LbtFixture, TwoLbtCellsInRangeTimeShare) {
  // 300 m apart: each receives the other far above the -82 dBm ED
  // threshold, so they must alternate bursts.
  const CellId a = AddLbtCellAt({0, 0});
  const CellId b = AddLbtCellAt({300, 0});
  const UeId ua = AddUeAt({0, 60}, a);
  const UeId ub = AddUeAt({300, 60}, b);
  net_.Start();
  sim_.RunUntil(300 * kMillisecond);
  net_.OfferDownlink(ua, 64 << 20);
  net_.OfferDownlink(ub, 64 << 20);
  sim_.RunUntil(5300 * kMillisecond);

  const double mbps_a = static_cast<double>(Delivered(a, ua)) / 5e6;
  const double mbps_b = static_cast<double>(Delivered(b, ub)) / 5e6;
  // Both progress (no deadlock), neither gets the full isolated rate.
  EXPECT_GT(mbps_a, 1.0);
  EXPECT_GT(mbps_b, 1.0);
  EXPECT_LT(mbps_a, 8.0);
  EXPECT_LT(mbps_b, 8.0);
  // Rough fairness between identical contenders.
  EXPECT_LT(std::max(mbps_a, mbps_b) / std::min(mbps_a, mbps_b), 2.5);
}

TEST_F(LbtFixture, ScheduledCellIgnoresLbtNeighbour) {
  // A plain-LTE cell never defers: it transmits every subframe even with
  // an active LBT neighbour (the coexistence asymmetry LAA worries about).
  LteMacConfig scheduled;
  const CellId a =
      net_.AddCell(scheduled, env_.AddNode({.position = {0, 0}, .tx_power_dbm = 30.0}));
  const CellId b = AddLbtCellAt({300, 0});
  const UeId ua = AddUeAt({0, 60}, a);
  const UeId ub = AddUeAt({300, 60}, b);
  net_.Start();
  sim_.RunUntil(300 * kMillisecond);
  net_.OfferDownlink(ua, 64 << 20);
  net_.OfferDownlink(ub, 64 << 20);
  sim_.RunUntil(5300 * kMillisecond);
  // The scheduled cell keeps the channel busy; the polite LBT cell gets
  // almost nothing.
  EXPECT_GT(Delivered(a, ua), 4 * Delivered(b, ub));
}

TEST_F(LbtFixture, HiddenLbtCellsDoNotDefer) {
  // 3 km apart: below the ED threshold, both transmit continuously.
  const CellId a = AddLbtCellAt({0, 0});
  const CellId b = AddLbtCellAt({3000, 0});
  const UeId ua = AddUeAt({0, 60}, a);
  const UeId ub = AddUeAt({3000, 60}, b);
  net_.Start();
  sim_.RunUntil(300 * kMillisecond);
  net_.OfferDownlink(ua, 64 << 20);
  net_.OfferDownlink(ub, 64 << 20);
  sim_.RunUntil(5300 * kMillisecond);
  // Full spatial reuse: both near their isolated rate.
  EXPECT_GT(Delivered(a, ua), 30e6);
  EXPECT_GT(Delivered(b, ub), 30e6);
}

}  // namespace
}  // namespace cellfi::lte
