// Cross-module parameterized property sweeps: invariants that must hold
// across whole parameter ranges, not just at the defaults.
#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "cellfi/common/fft.h"
#include "cellfi/common/stats.h"
#include "cellfi/core/interference_manager.h"
#include "cellfi/lte/network.h"
#include "cellfi/phy/cqi_mcs.h"
#include "cellfi/phy/resource_grid.h"
#include "cellfi/radio/fading.h"
#include "cellfi/radio/pathloss.h"
#include "cellfi/wifi/phy_rates.h"

namespace cellfi {
namespace {

// ---------------------------------------------------------------- FFT ----
class FftSizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(FftSizeSweep, RoundTripAndParseval) {
  const auto n = static_cast<std::size_t>(GetParam());
  Rng rng(GetParam());
  std::vector<Complex> x(n);
  double energy = 0.0;
  for (auto& v : x) {
    v = Complex(rng.Normal(), rng.Normal());
    energy += std::norm(v);
  }
  const auto y = Idft(Dft(x));
  double freq_energy = 0.0;
  for (const auto& v : Dft(x)) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / static_cast<double>(n), energy, energy * 1e-9);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(y[i].real(), x[i].real(), 1e-7);
    EXPECT_NEAR(y[i].imag(), x[i].imag(), 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftSizeSweep,
                         ::testing::Values(2, 3, 5, 17, 64, 120, 839, 1024));

// --------------------------------------------------------------- PHY -----
class CqiSweep : public ::testing::TestWithParam<int> {};

TEST_P(CqiSweep, BlerMonotoneAndAnchored) {
  const int cqi = GetParam();
  // BLER decreases in SINR and equals 10 % at the table threshold.
  double prev = 1.0;
  for (double s = -20.0; s <= 30.0; s += 0.5) {
    const double b = BlerAt(cqi, s);
    EXPECT_LE(b, prev + 1e-12);
    prev = b;
  }
  EXPECT_NEAR(BlerAt(cqi, CqiTable(cqi).sinr_threshold_db), 0.1, 1e-9);
}

TEST_P(CqiSweep, TransportBlockScalesLinearly) {
  const int cqi = GetParam();
  const int one = TransportBlockBits(cqi, 1, 124);
  for (int rbs = 2; rbs <= 100; rbs *= 2) {
    EXPECT_NEAR(TransportBlockBits(cqi, rbs, 124), rbs * one, rbs);
  }
}

INSTANTIATE_TEST_SUITE_P(AllCqis, CqiSweep, ::testing::Range(1, 16));

class BandwidthSweep : public ::testing::TestWithParam<LteBandwidth> {};

TEST_P(BandwidthSweep, GridInvariants) {
  const ResourceGrid grid(GetParam());
  EXPECT_EQ(grid.num_subchannels(),
            (grid.num_rbs() + grid.rbg_size() - 1) / grid.rbg_size());
  int total_rbs = 0;
  for (int s = 0; s < grid.num_subchannels(); ++s) {
    EXPECT_EQ(grid.SubchannelOfRb(grid.SubchannelFirstRb(s)), s);
    total_rbs += grid.SubchannelRbCount(s);
  }
  EXPECT_EQ(total_rbs, grid.num_rbs());
  EXPECT_GT(grid.DataResourceElementsPerRb(), 0);
  EXPECT_LT(grid.DataResourceElementsPerRb(), grid.TotalResourceElementsPerRb());
}

INSTANTIATE_TEST_SUITE_P(AllBandwidths, BandwidthSweep,
                         ::testing::Values(LteBandwidth::k1_4MHz, LteBandwidth::k3MHz,
                                           LteBandwidth::k5MHz, LteBandwidth::k10MHz,
                                           LteBandwidth::k15MHz, LteBandwidth::k20MHz));

class TddSweep : public ::testing::TestWithParam<int> {};

TEST_P(TddSweep, PatternsPartitionTheFrame) {
  const TddConfig tdd(GetParam());
  int d = 0, u = 0, s = 0;
  for (int i = 0; i < 10; ++i) {
    switch (tdd.TypeOf(i)) {
      case SubframeType::kDownlink: ++d; break;
      case SubframeType::kUplink: ++u; break;
      case SubframeType::kSpecial: ++s; break;
    }
  }
  EXPECT_EQ(d + u + s, 10);
  EXPECT_EQ(d, tdd.downlink_subframes_per_frame());
  EXPECT_EQ(u, tdd.uplink_subframes_per_frame());
  EXPECT_GE(u, 1);  // every TDD config has uplink
  EXPECT_GE(s, 1);  // and at least one special subframe
  EXPECT_EQ(tdd.TypeOf(0), SubframeType::kDownlink);  // subframe 0 always DL
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, TddSweep, ::testing::Range(0, 7));

// -------------------------------------------------------------- radio ----
class RicianSweep : public ::testing::TestWithParam<double> {};

TEST_P(RicianSweep, UnitMeanAndShrinkingVariance) {
  const double k = GetParam();
  FadingProcess fading(11, 50 * kMillisecond, k);
  Summary s;
  for (std::uint32_t i = 0; i < 20000; ++i) {
    // Distinct (subchannel, coherence-block) pairs -> independent draws.
    s.Add(fading.PowerGain(1, 2, i % 13, static_cast<SimTime>(i / 13) * 50 * kMillisecond));
  }
  EXPECT_NEAR(s.mean(), 1.0, 0.05);
  // Rician power variance = (2K+1)/(K+1)^2: 1.0 at K=0, shrinking in K.
  const double expected_var = (2.0 * k + 1.0) / ((k + 1.0) * (k + 1.0));
  EXPECT_NEAR(s.variance(), expected_var, 0.15 * expected_var + 0.02);
}

INSTANTIATE_TEST_SUITE_P(KFactors, RicianSweep, ::testing::Values(0.0, 1.0, 4.0, 10.0));

class PathLossFreqSweep : public ::testing::TestWithParam<double> {};

TEST_P(PathLossFreqSweep, LossGrowsWithFrequency) {
  const double f = GetParam();
  FreeSpacePathLoss fs;
  HataUrbanPathLoss hata;
  EXPECT_GT(fs.LossDb(500.0, f * 1.5), fs.LossDb(500.0, f));
  EXPECT_GT(hata.LossDb(500.0, f * 1.5), hata.LossDb(500.0, f));
}

INSTANTIATE_TEST_SUITE_P(TvwsBand, PathLossFreqSweep,
                         ::testing::Values(470e6, 550e6, 650e6, 780e6));

// --------------------------------------------------------------- Wi-Fi ----
class WifiWidthSweep : public ::testing::TestWithParam<double> {};

TEST_P(WifiWidthSweep, RatesScaleWithWidth) {
  const double width = GetParam();
  for (int mcs = 0; mcs < wifi::kNumWifiMcs; ++mcs) {
    EXPECT_NEAR(wifi::PhyRateBps(mcs, width), wifi::PhyRateBps(mcs, 20e6) * width / 20e6, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(TvwsWidths, WifiWidthSweep, ::testing::Values(6e6, 8e6, 20e6, 40e6));

// ------------------------------------------------------ CellFi shares ----
// N symmetric, fully-coupled managers must converge to (near-)disjoint
// masks whose sizes track S / N, for any N and S.
class ShareSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ShareSweep, SymmetricContendersSplitTheBand) {
  const auto [num_cells, s_total] = GetParam();
  const int clients_each = 4;
  core::InterferenceManagerConfig cfg;
  cfg.num_subchannels = s_total;
  std::vector<core::InterferenceManager> managers;
  for (int c = 0; c < num_cells; ++c) {
    managers.emplace_back(cfg, 100 + static_cast<std::uint64_t>(c));
  }
  core::EpochInputs in;
  in.own_active_clients = clients_each;
  in.estimated_contenders = clients_each * num_cells;
  in.utility.assign(static_cast<std::size_t>(s_total), 1.0);
  in.free_for_reuse.assign(static_cast<std::size_t>(s_total), false);

  for (int epoch = 0; epoch < 150; ++epoch) {
    // Pressure on every multiply-owned subchannel.
    std::vector<int> owners(static_cast<std::size_t>(s_total), 0);
    for (const auto& m : managers) {
      for (int s = 0; s < s_total; ++s) owners[static_cast<std::size_t>(s)] += m.mask()[static_cast<std::size_t>(s)];
    }
    for (auto& m : managers) {
      in.interference_pressure.assign(static_cast<std::size_t>(s_total), 0.0);
      for (int s = 0; s < s_total; ++s) {
        if (m.mask()[static_cast<std::size_t>(s)] && owners[static_cast<std::size_t>(s)] > 1) {
          in.interference_pressure[static_cast<std::size_t>(s)] = 1.0;
        }
      }
      m.OnEpoch(in);
    }
  }

  const int expected_share = std::max(1, (clients_each * s_total) /
                                             (clients_each * num_cells));
  int overlap = 0;
  int total_owned = 0;
  std::vector<int> owners(static_cast<std::size_t>(s_total), 0);
  for (const auto& m : managers) {
    EXPECT_EQ(m.owned_count(), expected_share);
    total_owned += m.owned_count();
    for (int s = 0; s < s_total; ++s) owners[static_cast<std::size_t>(s)] += m.mask()[static_cast<std::size_t>(s)];
  }
  for (int o : owners) overlap += std::max(0, o - 1);
  // Overlap only where the shares cannot fit at all.
  EXPECT_LE(overlap, std::max(0, total_owned - s_total) + 1);
}

INSTANTIATE_TEST_SUITE_P(CellsTimesSubchannels, ShareSweep,
                         ::testing::Combine(::testing::Values(2, 3, 4, 6),
                                            ::testing::Values(13, 25)));

// -------------------------------------------------- LTE LA margin --------
class MarginSweep : public ::testing::TestWithParam<double> {};

TEST_P(MarginSweep, SingleLinkAlwaysDelivers) {
  const double margin = GetParam();
  Simulator sim;
  static const HataUrbanPathLoss pathloss;
  RadioEnvironmentConfig env_cfg;
  env_cfg.carrier_freq_hz = 600e6;
  env_cfg.shadowing_sigma_db = 0.0;
  RadioEnvironment env(pathloss, env_cfg);
  const RadioNodeId ap = env.AddNode({.position = {0, 0}, .tx_power_dbm = 30.0});
  const RadioNodeId cl = env.AddNode({.position = {400, 0}, .tx_power_dbm = 20.0});
  lte::LteNetwork net(sim, env, {});
  lte::LteMacConfig mac;
  mac.link_adaptation_margin_db = margin;
  net.AddCell(mac, ap);
  const lte::UeId ue = net.AddUe(cl);
  std::uint64_t bits = 0;
  net.on_dl_delivered = [&](lte::UeId, std::uint64_t b, SimTime) { bits += 8 * b; };
  sim.SchedulePeriodic(200 * kMillisecond, [&] { net.OfferDownlink(ue, 1 << 20); });
  net.Start();
  sim.RunUntil(2 * kSecond);
  EXPECT_GT(bits, 2e6) << "margin " << margin << " broke the link";
}

INSTANTIATE_TEST_SUITE_P(Margins, MarginSweep, ::testing::Values(0.0, 1.0, 3.0, 6.0));

}  // namespace
}  // namespace cellfi
