#include "cellfi/common/fft.h"

#include <cmath>

#include <gtest/gtest.h>

#include "cellfi/common/rng.h"

namespace cellfi {
namespace {

constexpr double kTol = 1e-9;

TEST(FftTest, PowerOfTwoPredicate) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_TRUE(IsPowerOfTwo(1024));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_FALSE(IsPowerOfTwo(839));
}

TEST(FftTest, NextPowerOfTwo) {
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(2), 2u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(839), 1024u);
  EXPECT_EQ(NextPowerOfTwo(1677), 2048u);
}

TEST(FftTest, DeltaTransformsToConstant) {
  std::vector<Complex> x(8, Complex(0, 0));
  x[0] = Complex(1, 0);
  Fft(x);
  for (const auto& v : x) {
    EXPECT_NEAR(v.real(), 1.0, kTol);
    EXPECT_NEAR(v.imag(), 0.0, kTol);
  }
}

TEST(FftTest, ForwardInverseRoundTrip) {
  Rng rng(7);
  std::vector<Complex> x(64);
  for (auto& v : x) v = Complex(rng.Normal(), rng.Normal());
  auto y = x;
  Fft(y);
  Ifft(y);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(y[i].real(), x[i].real(), 1e-9);
    EXPECT_NEAR(y[i].imag(), x[i].imag(), 1e-9);
  }
}

TEST(FftTest, ParsevalHolds) {
  Rng rng(3);
  std::vector<Complex> x(128);
  double time_energy = 0.0;
  for (auto& v : x) {
    v = Complex(rng.Normal(), rng.Normal());
    time_energy += std::norm(v);
  }
  Fft(x);
  double freq_energy = 0.0;
  for (const auto& v : x) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / static_cast<double>(x.size()), time_energy, 1e-6);
}

TEST(FftTest, MatchesNaiveDftOnPowerOfTwo) {
  Rng rng(11);
  const std::size_t n = 16;
  std::vector<Complex> x(n);
  for (auto& v : x) v = Complex(rng.Normal(), rng.Normal());

  std::vector<Complex> naive(n, Complex(0, 0));
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t m = 0; m < n; ++m) {
      const double ang = -2.0 * M_PI * static_cast<double>(k * m) / static_cast<double>(n);
      naive[k] += x[m] * Complex(std::cos(ang), std::sin(ang));
    }
  }

  auto fast = x;
  Fft(fast);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(fast[k].real(), naive[k].real(), 1e-8);
    EXPECT_NEAR(fast[k].imag(), naive[k].imag(), 1e-8);
  }
}

TEST(BluesteinTest, MatchesNaiveDftOnPrimeLength) {
  Rng rng(13);
  const std::size_t n = 17;
  std::vector<Complex> x(n);
  for (auto& v : x) v = Complex(rng.Normal(), rng.Normal());

  std::vector<Complex> naive(n, Complex(0, 0));
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t m = 0; m < n; ++m) {
      const double ang = -2.0 * M_PI * static_cast<double>(k * m) / static_cast<double>(n);
      naive[k] += x[m] * Complex(std::cos(ang), std::sin(ang));
    }
  }

  const auto fast = Dft(x);
  ASSERT_EQ(fast.size(), n);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(fast[k].real(), naive[k].real(), 1e-8);
    EXPECT_NEAR(fast[k].imag(), naive[k].imag(), 1e-8);
  }
}

TEST(BluesteinTest, RoundTripLength839) {
  Rng rng(5);
  std::vector<Complex> x(839);
  for (auto& v : x) v = Complex(rng.Normal(), rng.Normal());
  const auto y = Idft(Dft(x));
  ASSERT_EQ(y.size(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(y[i].real(), x[i].real(), 1e-7);
    EXPECT_NEAR(y[i].imag(), x[i].imag(), 1e-7);
  }
}

TEST(BluesteinTest, DftIntoMatchesDftAndReusesWorkspace) {
  Rng rng(11);
  DftWorkspace ws;
  std::vector<Complex> out;
  // Mixed power-of-two and Bluestein lengths through one reused workspace.
  for (std::size_t n : {64u, 839u, 100u, 839u, 128u}) {
    std::vector<Complex> x(n);
    for (auto& v : x) v = Complex(rng.Normal(), rng.Normal());
    const auto expected = Dft(x);
    DftInto(x, out, ws);
    ASSERT_EQ(out.size(), expected.size());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(out[i].real(), expected[i].real(), 1e-9);
      EXPECT_NEAR(out[i].imag(), expected[i].imag(), 1e-9);
    }
    const auto inv = Idft(expected);
    IdftInto(expected, out, ws);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(out[i].real(), inv[i].real(), 1e-9);
      EXPECT_NEAR(out[i].imag(), inv[i].imag(), 1e-9);
    }
  }
}

TEST(FftTest, RawPointerFftMatchesVectorFft) {
  Rng rng(12);
  std::vector<Complex> x(256);
  for (auto& v : x) v = Complex(rng.Normal(), rng.Normal());
  auto expected = x;
  Fft(expected);
  auto raw = x;
  Fft(raw.data(), raw.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_DOUBLE_EQ(raw[i].real(), expected[i].real());
    EXPECT_DOUBLE_EQ(raw[i].imag(), expected[i].imag());
  }
  Ifft(raw.data(), raw.size());
  auto round = expected;
  Ifft(round);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_DOUBLE_EQ(raw[i].real(), round[i].real());
    EXPECT_DOUBLE_EQ(raw[i].imag(), round[i].imag());
  }
}

TEST(CorrelateTest, FindsCyclicShift) {
  // Correlating a sequence with a shifted copy peaks at the shift.
  Rng rng(9);
  const std::size_t n = 64;
  std::vector<Complex> base(n);
  for (auto& v : base) v = Complex(rng.Normal(), rng.Normal());

  const std::size_t shift = 13;
  std::vector<Complex> shifted(n);
  for (std::size_t i = 0; i < n; ++i) shifted[i] = base[(i + n - shift) % n];

  const auto corr = CircularCorrelate(shifted, base);
  std::size_t peak = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (std::norm(corr[i]) > std::norm(corr[peak])) peak = i;
  }
  EXPECT_EQ(peak, shift);
}

TEST(CorrelateTest, AnyLengthAgreesWithPowerOfTwoVersion) {
  Rng rng(21);
  const std::size_t n = 32;
  std::vector<Complex> a(n), b(n);
  for (auto& v : a) v = Complex(rng.Normal(), rng.Normal());
  for (auto& v : b) v = Complex(rng.Normal(), rng.Normal());
  const auto c1 = CircularCorrelate(a, b);
  const auto c2 = CircularCorrelateAny(a, b);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(c1[i].real(), c2[i].real(), 1e-7);
    EXPECT_NEAR(c1[i].imag(), c2[i].imag(), 1e-7);
  }
}

TEST(CorrelateTest, IntoVariantsMatchAllocatingVariants) {
  Rng rng(23);
  DftWorkspace ws;
  std::vector<Complex> out;
  for (std::size_t n : {64u, 100u, 839u}) {
    std::vector<Complex> a(n), b(n);
    for (auto& v : a) v = Complex(rng.Normal(), rng.Normal());
    for (auto& v : b) v = Complex(rng.Normal(), rng.Normal());
    const auto expected = CircularCorrelateAny(a, b);
    CircularCorrelateAnyInto(a, b, out, ws);
    ASSERT_EQ(out.size(), expected.size());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_DOUBLE_EQ(out[i].real(), expected[i].real());
      EXPECT_DOUBLE_EQ(out[i].imag(), expected[i].imag());
    }
    if (IsPowerOfTwo(n)) {
      const auto pow2 = CircularCorrelate(a, b);
      CircularCorrelateInto(a, b, out, ws);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_DOUBLE_EQ(out[i].real(), pow2[i].real());
        EXPECT_DOUBLE_EQ(out[i].imag(), pow2[i].imag());
      }
    }
  }
}

}  // namespace
}  // namespace cellfi
