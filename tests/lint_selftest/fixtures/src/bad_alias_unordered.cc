// Fixture: range-for over variables whose type is an alias of an unordered
// container (alias declared in alias_types.h) must be flagged exactly like
// a direct std::unordered_* declaration.
#include "alias_types.h"

struct CellTable {
  CellMap cells_;
  double Sum() const {
    double total = 0.0;
    for (const auto& [id, w] : cells_) {
      total += w;
    }
    return total;
  }
};

int CountNames() {
  NameSet names;
  int n = 0;
  for (const auto& name : names) {
    n += static_cast<int>(name.size());
  }
  return n;
}
