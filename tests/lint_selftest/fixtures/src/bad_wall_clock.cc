// Fixture: no-wall-clock must flag time(), clock() and system_clock, but
// leave steady_clock and member-function calls like sim.time() alone.
// (Fixtures are lint inputs, not compiled code — sim needs no declaration.)
#include <chrono>
#include <ctime>

long WallSeconds() {
  return static_cast<long>(time(nullptr));
}

long CpuTicks() {
  return static_cast<long>(clock());
}

double Epoch() {
  const auto now = std::chrono::system_clock::now();
  return std::chrono::duration<double>(now.time_since_epoch()).count();
}

long Monotonic(const Sim& sim) {
  const auto t0 = std::chrono::steady_clock::now();  // clean: steady_clock ok
  (void)t0;
  return sim.time() + sim::clock_domain::time();  // clean: member/namespaced
}
