// Fixture: env-doc must flag CELLFI_* knobs missing from README.md and
// ignore documented knobs and non-CELLFI variables.
#include <cstdlib>

const char* ReadKnobs() {
  const char* undocumented = std::getenv("CELLFI_UNDOCUMENTED_KNOB");
  const char* documented = std::getenv("CELLFI_DOCUMENTED_KNOB");  // clean
  const char* other = std::getenv("HOME_DIR");  // clean: not CELLFI_*
  return undocumented ? undocumented : (documented ? documented : other);
}
