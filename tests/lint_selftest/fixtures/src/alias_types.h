// Fixture: type aliases resolving to unordered containers, declared in a
// DIFFERENT file from their uses — the linter must collect aliases
// cross-file before registering alias-typed declarations.
#pragma once
#include <string>
#include <unordered_map>
#include <unordered_set>

using CellMap = std::unordered_map<int, double>;
typedef std::unordered_set<std::string> NameSet;
