// Fixture: --strict-allow stale-suppression audit. The first allow() fires
// (used, not reported); the second suppresses nothing and must be reported
// as stale-allow.
#include <cstdlib>

int UsedAllow() {
  return rand();  // cellfi-lint: allow(no-libc-rand) — fixture: used
}

int StaleAllow() {
  return 7;  // cellfi-lint: allow(no-libc-rand) — fixture: nothing fires here
}
