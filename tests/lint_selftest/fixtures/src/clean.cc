// Fixture: a fully clean file. Mentions of banned identifiers in comments
// and string literals must not trip any rule.
//
// Comments may discuss rand(), srand(), std::random_device, time(nullptr)
// and std::chrono::system_clock freely.
#include <chrono>
#include <map>
#include <string>

std::string Describe() {
  return "do not call rand() or std::random_device from sim code";
}

double OrderedSum(const std::map<int, double>& xs) {
  double total = 0.0;
  for (const auto& [id, x] : xs) {  // clean: std::map iterates in key order
    total += x;
  }
  return total;
}

double WallClockMetric() {
  const auto t0 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}
