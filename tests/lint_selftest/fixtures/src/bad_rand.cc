// Fixture: no-libc-rand must flag both rand() and srand().
#include <cstdlib>

int DrawBad() {
  ::srand(42);
  return rand() % 6;
}
