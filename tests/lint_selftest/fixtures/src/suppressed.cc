// Fixture: suppression behavior.
//  - same-line allow() silences the finding
//  - a comment-only allow() line silences the next code line, carrying
//    through a multi-line justification comment
//  - an allow() naming a different rule does NOT silence the finding
#include <cstdlib>
#include <unordered_map>

int SameLineAllow() {
  return rand();  // cellfi-lint: allow(no-libc-rand) — fixture: deliberate
}

double NextLineAllow() {
  std::unordered_map<int, double> weights = {{1, 2.0}};
  double total = 0.0;
  // cellfi-lint: allow(no-unordered-iter) — fixture: commutative sum, and
  // this justification intentionally spans two comment lines.
  for (const auto& [id, w] : weights) {
    total += w;
  }
  return total;
}

int WrongRuleAllow() {
  return rand();  // cellfi-lint: allow(no-wall-clock) — wrong id: still flagged
}
