// Fixture: no-unordered-iter must flag range-for over unordered containers,
// including members declared in a different file (unordered_decl.h).
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "unordered_decl.h"

double SumScores(const CrossFileState& st) {
  double total = 0.0;
  for (const auto& [id, score] : st.cross_file_scores_) {
    total += score;
  }
  return total;
}

int CountLocal() {
  std::unordered_set<int> seen_ids;
  seen_ids.insert(3);
  int n = 0;
  for (int id : seen_ids) {
    n += id;
  }
  return n;
}

int SumVector(const std::vector<int>& xs) {
  int n = 0;
  for (int x : xs) {  // clean: vector iteration is ordered
    n += x;
  }
  return n;
}
