// Fixture: no-random-device must flag entropy-based seeding.
#include <random>

std::uint64_t EntropySeed() {
  std::random_device rd;
  return rd();
}
