// Fixture: declares an unordered member that another file iterates, to
// exercise the linter's cross-file declaration pass.
#pragma once
#include <unordered_map>

struct CrossFileState {
  std::unordered_map<int, double> cross_file_scores_;
};
