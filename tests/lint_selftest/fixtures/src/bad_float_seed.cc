// Fixture: no-float-seed must flag floating-point arithmetic feeding a seed
// (the bench_fig7 bug class) but leave integer derivations alone.
#include <cstdint>

std::uint64_t SeedFromAngle(double angle_deg) {
  const std::uint64_t seed = static_cast<std::uint64_t>(angle_deg * 10.5);
  return seed;
}

std::uint64_t SeedFromCast(double x) {
  std::uint64_t bad_seed = static_cast<std::uint64_t>(static_cast<float>(x));
  return bad_seed;
}

std::uint64_t GoodSeed(int index) {
  const std::uint64_t seed = 1000u + static_cast<std::uint64_t>(index) * 17u;
  return seed;  // clean: integer arithmetic only
}
