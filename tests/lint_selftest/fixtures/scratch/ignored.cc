// Fixture: lives outside the src/ bench/ tests/ examples/ prefixes every
// rule is scoped to, so its violations must NOT be reported.
#include <cstdlib>

int OutOfScope() { return rand(); }
