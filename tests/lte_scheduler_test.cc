#include "cellfi/lte/scheduler.h"

#include <gtest/gtest.h>

#include "cellfi/lte/enodeb.h"
#include "cellfi/phy/cqi_mcs.h"

namespace cellfi::lte {
namespace {

std::vector<int> Cqis(int n, int value) { return std::vector<int>(static_cast<std::size_t>(n), value); }

class SchedulerFixture : public ::testing::Test {
 protected:
  static constexpr int kSubchannels = 13;

  UeContext& MakeUe(UeId id, std::uint64_t dl_bytes, int cqi) {
    ues_.push_back(std::make_unique<UeContext>(id, kSubchannels));
    ues_.back()->EnqueueDownlink(dl_bytes);
    ues_.back()->UpdateCqi(cqi, Cqis(kSubchannels, cqi));
    ptrs_.push_back(ues_.back().get());
    return *ues_.back();
  }

  std::vector<bool> AllAllowed() { return std::vector<bool>(kSubchannels, true); }

  std::vector<std::unique_ptr<UeContext>> ues_;
  std::vector<UeContext*> ptrs_;
};

TEST_F(SchedulerFixture, PfUsesAllSubchannelsForOneBackloggedUe) {
  MakeUe(0, 1 << 20, 10);
  auto sched = MakeScheduler(SchedulerType::kProportionalFair);
  const auto a = sched->AssignDownlink(ptrs_, AllAllowed());
  for (int owner : a) EXPECT_EQ(owner, 0);
}

TEST_F(SchedulerFixture, PfRespectsAllowedMask) {
  MakeUe(0, 1 << 20, 10);
  std::vector<bool> mask(kSubchannels, false);
  mask[2] = mask[5] = true;
  auto sched = MakeScheduler(SchedulerType::kProportionalFair);
  const auto a = sched->AssignDownlink(ptrs_, mask);
  for (std::size_t s = 0; s < a.size(); ++s) {
    if (s == 2 || s == 5) {
      EXPECT_EQ(a[s], 0);
    } else {
      EXPECT_EQ(a[s], -1);
    }
  }
}

TEST_F(SchedulerFixture, PfSkipsUesWithoutData) {
  MakeUe(0, 0, 10);
  MakeUe(1, 1 << 20, 10);
  auto sched = MakeScheduler(SchedulerType::kProportionalFair);
  const auto a = sched->AssignDownlink(ptrs_, AllAllowed());
  for (int owner : a) EXPECT_EQ(owner, 1);
}

TEST_F(SchedulerFixture, PfFavoursUnderservedUe) {
  UeContext& a = MakeUe(0, 1 << 20, 10);
  UeContext& b = MakeUe(1, 1 << 20, 10);
  // UE 0 has been served heavily, UE 1 starved -> PF must pick UE 1.
  for (int i = 0; i < 200; ++i) {
    a.UpdatePfAverage(10000.0, 100.0);
    b.UpdatePfAverage(0.0, 100.0);
  }
  auto sched = MakeScheduler(SchedulerType::kProportionalFair);
  const auto assign = sched->AssignDownlink(ptrs_, AllAllowed());
  for (int owner : assign) EXPECT_EQ(owner, 1);
}

TEST_F(SchedulerFixture, PfPrefersPerSubchannelQuality) {
  // Two UEs with equal averages but complementary subband CQI: each should
  // win the subchannels where it is stronger (OFDMA frequency selectivity).
  UeContext& a = MakeUe(0, 1 << 20, 10);
  UeContext& b = MakeUe(1, 1 << 20, 10);
  std::vector<int> cq_a(kSubchannels, 4), cq_b(kSubchannels, 4);
  for (int s = 0; s < kSubchannels; ++s) (s < 6 ? cq_a : cq_b)[static_cast<std::size_t>(s)] = 14;
  a.UpdateCqi(9, cq_a);
  b.UpdateCqi(9, cq_b);
  auto sched = MakeScheduler(SchedulerType::kProportionalFair);
  const auto assign = sched->AssignDownlink(ptrs_, AllAllowed());
  for (int s = 0; s < 6; ++s) EXPECT_EQ(assign[static_cast<std::size_t>(s)], 0) << s;
  for (int s = 6; s < kSubchannels; ++s) EXPECT_EQ(assign[static_cast<std::size_t>(s)], 1) << s;
}

TEST_F(SchedulerFixture, HarqRetxClaimsOriginalWidth) {
  UeContext& a = MakeUe(0, 1 << 20, 10);
  MakeUe(1, 1 << 20, 15);
  a.harq_dl().active = true;
  a.harq_dl().num_subchannels = 4;
  a.harq_dl().cqi = 10;
  auto sched = MakeScheduler(SchedulerType::kProportionalFair);
  const auto assign = sched->AssignDownlink(ptrs_, AllAllowed());
  int ue0 = 0;
  for (int owner : assign) {
    if (owner == 0) ++ue0;
  }
  EXPECT_EQ(ue0, 4);  // exactly the retransmission width
}

TEST_F(SchedulerFixture, UplinkAckOnlyGetsSingleSubchannel) {
  // Fig. 1(c): a TCP-ACK uplink (66 bytes queued) fits one subchannel.
  UeContext& a = MakeUe(0, 0, 10);
  a.EnqueueUplink(66);
  auto sched = MakeScheduler(SchedulerType::kProportionalFair);
  const auto assign = sched->AssignUplink(ptrs_, AllAllowed(), 124, 2);
  int count = 0;
  for (int owner : assign) {
    if (owner == 0) ++count;
  }
  EXPECT_EQ(count, 1);
}

TEST_F(SchedulerFixture, UplinkPicksBestSubchannel) {
  UeContext& a = MakeUe(0, 0, 10);
  std::vector<int> cq(kSubchannels, 5);
  cq[7] = 14;
  a.UpdateCqi(6, cq);
  a.EnqueueUplink(66);
  auto sched = MakeScheduler(SchedulerType::kProportionalFair);
  const auto assign = sched->AssignUplink(ptrs_, AllAllowed(), 124, 2);
  EXPECT_EQ(assign[7], 0);
}

TEST_F(SchedulerFixture, UplinkBackloggedFillsBand) {
  UeContext& a = MakeUe(0, 0, 10);
  a.EnqueueUplink(1 << 20);
  auto sched = MakeScheduler(SchedulerType::kProportionalFair);
  const auto assign = sched->AssignUplink(ptrs_, AllAllowed(), 124, 2);
  for (int owner : assign) EXPECT_EQ(owner, 0);
}

TEST_F(SchedulerFixture, RoundRobinSharesAcrossUes) {
  MakeUe(0, 1 << 20, 10);
  MakeUe(1, 1 << 20, 10);
  MakeUe(2, 1 << 20, 10);
  auto sched = MakeScheduler(SchedulerType::kRoundRobin);
  std::vector<int> counts(3, 0);
  for (int round = 0; round < 3; ++round) {
    const auto assign = sched->AssignDownlink(ptrs_, AllAllowed());
    for (int owner : assign) {
      ASSERT_GE(owner, 0);
      ++counts[static_cast<std::size_t>(owner)];
    }
  }
  // 39 grants over 3 UEs: equal shares.
  EXPECT_EQ(counts[0], 13);
  EXPECT_EQ(counts[1], 13);
  EXPECT_EQ(counts[2], 13);
}


TEST_F(SchedulerFixture, MaxCqiGivesEverythingToBestUe) {
  UeContext& a = MakeUe(0, 1 << 20, 6);
  UeContext& b = MakeUe(1, 1 << 20, 14);
  (void)a;
  (void)b;
  auto sched = MakeScheduler(SchedulerType::kMaxCqi);
  const auto assign = sched->AssignDownlink(ptrs_, AllAllowed());
  for (int owner : assign) EXPECT_EQ(owner, 1);  // edge UE starves
}

TEST_F(SchedulerFixture, MaxCqiStillPicksPerSubchannelWinner) {
  UeContext& a = MakeUe(0, 1 << 20, 8);
  UeContext& b = MakeUe(1, 1 << 20, 8);
  std::vector<int> cq_a(kSubchannels, 4), cq_b(kSubchannels, 4);
  for (int s = 0; s < kSubchannels; ++s) (s % 2 == 0 ? cq_a : cq_b)[static_cast<std::size_t>(s)] = 13;
  a.UpdateCqi(8, cq_a);
  b.UpdateCqi(8, cq_b);
  auto sched = MakeScheduler(SchedulerType::kMaxCqi);
  const auto assign = sched->AssignDownlink(ptrs_, AllAllowed());
  for (int s = 0; s < kSubchannels; ++s) {
    EXPECT_EQ(assign[static_cast<std::size_t>(s)], s % 2 == 0 ? 0 : 1) << s;
  }
}

TEST_F(SchedulerFixture, MaxCqiFallsBackWhenBestHasNoData) {
  MakeUe(0, 0, 15);        // best channel, empty queue
  MakeUe(1, 1 << 20, 5);   // worse channel, has data
  auto sched = MakeScheduler(SchedulerType::kMaxCqi);
  const auto assign = sched->AssignDownlink(ptrs_, AllAllowed());
  for (int owner : assign) EXPECT_EQ(owner, 1);
}

TEST_F(SchedulerFixture, RankSubchannelsDescending) {
  UeContext& a = MakeUe(0, 100, 5);
  std::vector<int> cq(kSubchannels, 3);
  cq[4] = 15;
  cq[9] = 10;
  a.UpdateCqi(4, cq);
  const auto ranked = RankSubchannelsByCqi(a, AllAllowed());
  EXPECT_EQ(ranked[0], 4);
  EXPECT_EQ(ranked[1], 9);
}

TEST(AggregateCqiTest, MeanEfficiencyQuantizedDown) {
  std::vector<int> cq = {15, 1, 1, 1};
  // Mean efficiency of {15,1} over subchannels {0,1} = (5.55+0.15)/2 = 2.85
  // -> CQI 10 (2.73) is the largest not exceeding it.
  EXPECT_EQ(AggregateCqi(cq, {0, 1}), 10);
  EXPECT_EQ(AggregateCqi(cq, {0}), 15);
  EXPECT_EQ(AggregateCqi(cq, {1}), 1);
  EXPECT_EQ(AggregateCqi(cq, {}), 0);
}

TEST(AggregateCqiTest, ZeroCqiSubchannelDragsDown) {
  std::vector<int> cq = {0, 0, 0, 6};
  const int agg = AggregateCqi(cq, {0, 1, 2, 3});
  EXPECT_LT(agg, 6);
}

}  // namespace
}  // namespace cellfi::lte
