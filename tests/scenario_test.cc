// Scenario-harness tests: small topologies so the full comparison machinery
// stays fast; the benches run the paper-scale versions.
#include "cellfi/scenario/harness.h"

#include <gtest/gtest.h>

namespace cellfi::scenario {
namespace {

TEST(TopologyTest, GeneratesRequestedCounts) {
  Rng rng(1);
  TopologyConfig cfg;
  cfg.num_aps = 8;
  cfg.clients_per_ap = 5;
  const Topology topo = GenerateTopology(cfg, rng);
  EXPECT_EQ(topo.aps.size(), 8u);
  EXPECT_EQ(topo.clients.size(), 40u);
  for (const Point& p : topo.aps) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, cfg.area_m);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, cfg.area_m);
  }
}

TEST(TopologyTest, ClientsNearTheirHomeAp) {
  Rng rng(2);
  TopologyConfig cfg;
  cfg.client_radius_m = 300.0;
  const Topology topo = GenerateTopology(cfg, rng);
  for (std::size_t c = 0; c < topo.clients.size(); ++c) {
    const Point home = topo.aps[static_cast<std::size_t>(topo.client_home_ap[c])];
    // Clipping to the area can only bring clients closer.
    EXPECT_LE(Distance(topo.clients[c], home), cfg.client_radius_m * std::sqrt(2.0) + 1.0);
  }
}

TEST(TopologyTest, MinimumSeparationRespectedWhenFeasible) {
  Rng rng(3);
  TopologyConfig cfg;
  cfg.num_aps = 5;
  cfg.min_ap_separation_m = 400.0;
  const Topology topo = GenerateTopology(cfg, rng);
  for (std::size_t a = 0; a < topo.aps.size(); ++a) {
    for (std::size_t b = a + 1; b < topo.aps.size(); ++b) {
      EXPECT_GE(Distance(topo.aps[a], topo.aps[b]), cfg.min_ap_separation_m);
    }
  }
}

TEST(TopologyTest, ScalingPreservesShape) {
  Rng rng(4);
  const Topology topo = GenerateTopology(TopologyConfig{}, rng);
  const Topology scaled = ScaleTopology(topo, 0.1);
  const double d_orig = Distance(topo.aps[0], topo.aps[1]);
  const double d_scaled = Distance(scaled.aps[0], scaled.aps[1]);
  EXPECT_NEAR(d_scaled, d_orig * 0.1, 1e-9);
}

ScenarioConfig SmallConfig(Technology tech, std::uint64_t seed = 11) {
  ScenarioConfig cfg;
  cfg.tech = tech;
  cfg.topology.num_aps = 4;
  cfg.topology.clients_per_ap = 3;
  cfg.topology.area_m = 1200.0;
  cfg.topology.client_radius_m = 350.0;
  cfg.warmup = 2 * kSecond;
  cfg.duration = 10 * kSecond;
  cfg.seed = seed;
  return cfg;
}

TEST(HarnessTest, CellFiScenarioProducesService) {
  const auto result = RunScenario(SmallConfig(Technology::kCellFi));
  EXPECT_EQ(result.clients.size(), 12u);
  EXPECT_GT(result.fraction_connected, 0.5);
  EXPECT_GT(result.total_throughput_bps, 1e6);
}

TEST(HarnessTest, PlainLteScenarioRuns) {
  const auto result = RunScenario(SmallConfig(Technology::kLte));
  EXPECT_EQ(result.clients.size(), 12u);
  EXPECT_GT(result.total_throughput_bps, 0.0);
}

TEST(HarnessTest, OracleBeatsOrMatchesPlainLteOnConnectivity) {
  const auto lte = RunScenario(SmallConfig(Technology::kLte, 23));
  const auto oracle = RunScenario(SmallConfig(Technology::kOracle, 23));
  EXPECT_GE(oracle.fraction_connected + 1e-9, lte.fraction_connected);
}

TEST(HarnessTest, WifiScenarioRuns) {
  auto cfg = SmallConfig(Technology::kWifi80211af);
  const auto result = RunScenario(cfg);
  EXPECT_EQ(result.clients.size(), 12u);
  EXPECT_GT(result.total_throughput_bps, 0.0);
}

TEST(HarnessTest, SameSeedReproduces) {
  const auto a = RunScenario(SmallConfig(Technology::kCellFi, 31));
  const auto b = RunScenario(SmallConfig(Technology::kCellFi, 31));
  ASSERT_EQ(a.clients.size(), b.clients.size());
  for (std::size_t i = 0; i < a.clients.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.clients[i].throughput_bps, b.clients[i].throughput_bps);
  }
}

TEST(HarnessTest, WebWorkloadCompletesPages) {
  auto cfg = SmallConfig(Technology::kCellFi, 41);
  cfg.workload = WorkloadKind::kWeb;
  cfg.web.think_time_mean_s = 2.0;
  cfg.duration = 15 * kSecond;
  const auto result = RunScenario(cfg);
  int completed = 0;
  for (const auto& c : result.clients) completed += c.pages_completed;
  EXPECT_GT(completed, 0);
  EXPECT_GT(result.page_load_times_s.count(), 0u);
}

TEST(HarnessTest, IdenticalTopologyAcrossTechnologies) {
  // RunScenarioOn lets benches hold placement constant across techs.
  Rng rng(55);
  const Topology topo = GenerateTopology(SmallConfig(Technology::kLte).topology, rng);
  const auto a = RunScenarioOn(SmallConfig(Technology::kLte), topo);
  const auto b = RunScenarioOn(SmallConfig(Technology::kCellFi), topo);
  EXPECT_EQ(a.clients.size(), b.clients.size());
}

}  // namespace
}  // namespace cellfi::scenario
