#include <gtest/gtest.h>

#include "cellfi/common/stats.h"
#include "cellfi/traffic/flow_tracker.h"
#include "cellfi/traffic/web_workload.h"

namespace cellfi::traffic {
namespace {

TEST(FlowTrackerTest, SingleFlowLifecycle) {
  FlowTracker tracker;
  const FlowId id = tracker.StartFlow(1, 1000, 0);
  tracker.OnDelivered(1, 400, 10 * kMillisecond);
  EXPECT_FALSE(tracker.flow(id).done());
  tracker.OnDelivered(1, 600, 30 * kMillisecond);
  EXPECT_TRUE(tracker.flow(id).done());
  EXPECT_EQ(tracker.flow(id).completed, 30 * kMillisecond);
}

TEST(FlowTrackerTest, FifoAttributionAcrossFlows) {
  FlowTracker tracker;
  const FlowId a = tracker.StartFlow(1, 500, 0);
  const FlowId b = tracker.StartFlow(1, 500, 0);
  tracker.OnDelivered(1, 700, 5 * kMillisecond);
  EXPECT_TRUE(tracker.flow(a).done());
  EXPECT_FALSE(tracker.flow(b).done());
  EXPECT_EQ(tracker.flow(b).delivered, 200u);
}

TEST(FlowTrackerTest, ClientsIndependent) {
  FlowTracker tracker;
  const FlowId a = tracker.StartFlow(1, 100, 0);
  const FlowId b = tracker.StartFlow(2, 100, 0);
  tracker.OnDelivered(1, 100, kMillisecond);
  EXPECT_TRUE(tracker.flow(a).done());
  EXPECT_FALSE(tracker.flow(b).done());
}

TEST(FlowTrackerTest, ExcessBytesIgnored) {
  FlowTracker tracker;
  tracker.StartFlow(1, 100, 0);
  tracker.OnDelivered(1, 1000, kMillisecond);
  tracker.OnDelivered(1, 1000, 2 * kMillisecond);  // no outstanding flows
  EXPECT_EQ(tracker.flow_count(), 1u);
}

TEST(FlowTrackerTest, CompletionCallbackFires) {
  FlowTracker tracker;
  int completions = 0;
  tracker.on_flow_complete = [&](const FlowRecord& rec) {
    EXPECT_EQ(rec.client, 3);
    ++completions;
  };
  tracker.StartFlow(3, 10, 0);
  tracker.StartFlow(3, 10, 0);
  tracker.OnDelivered(3, 20, kMillisecond);
  EXPECT_EQ(completions, 2);
}

TEST(FlowTrackerTest, CompletionTimesAndStalls) {
  FlowTracker tracker;
  tracker.StartFlow(1, 100, 0);
  tracker.StartFlow(2, 100, 0);
  tracker.OnDelivered(1, 100, 2 * kSecond);
  const auto times = tracker.CompletionTimes();
  ASSERT_EQ(times.count(), 1u);
  EXPECT_NEAR(times.Mean(), 2.0, 1e-9);
  EXPECT_EQ(tracker.StalledFlows(10 * kSecond, 5 * kSecond), 1);
  EXPECT_EQ(tracker.StalledFlows(10 * kSecond, 20 * kSecond), 0);
}

TEST(WebWorkloadTest, PageShapeIsPlausible) {
  WebWorkloadConfig cfg;
  Rng rng(7);
  Summary objects, page_bytes;
  for (int i = 0; i < 500; ++i) {
    const auto page = DrawPage(cfg, rng);
    EXPECT_GE(page.size(), 1u);
    EXPECT_LE(page.size(), 100u);
    std::uint64_t total = 0;
    for (auto b : page) {
      EXPECT_GE(b, 200u);
      total += b;
    }
    objects.Add(static_cast<double>(page.size()));
    page_bytes.Add(static_cast<double>(total));
  }
  // Median ~10 objects, mean page in the hundreds of KB (heavy tailed).
  EXPECT_GT(objects.mean(), 5.0);
  EXPECT_LT(objects.mean(), 30.0);
  EXPECT_GT(page_bytes.mean(), 100e3);
  EXPECT_LT(page_bytes.mean(), 2e6);
}

TEST(WebSessionTest, PagesCompleteOverFastLink) {
  Simulator sim;
  FlowTracker tracker;
  // Fake network: deliver offered bytes 50 ms later.
  auto offer = [&](ClientId client, std::uint64_t bytes) {
    sim.ScheduleAfter(50 * kMillisecond,
                      [&tracker, client, bytes, &sim] {
                        tracker.OnDelivered(client, bytes, sim.Now());
                      });
  };
  WebWorkloadConfig cfg;
  cfg.think_time_mean_s = 0.5;
  cfg.initial_jitter_s = 0.1;
  WebSession session(sim, tracker, 1, cfg, offer, Rng(3));
  tracker.on_flow_complete = [&](const FlowRecord& rec) { session.OnFlowComplete(rec); };
  session.Start();
  sim.RunUntil(20 * kSecond);
  EXPECT_GE(session.pages_completed(), 5);
  for (double plt : session.page_load_times()) {
    EXPECT_NEAR(plt, 0.05, 1e-6);  // all objects arrive together
  }
}

TEST(WebSessionTest, StalledPageNeverCompletes) {
  Simulator sim;
  FlowTracker tracker;
  WebWorkloadConfig cfg;
  cfg.initial_jitter_s = 0.01;
  WebSession session(sim, tracker, 1, cfg, [](ClientId, std::uint64_t) {}, Rng(4));
  tracker.on_flow_complete = [&](const FlowRecord& rec) { session.OnFlowComplete(rec); };
  session.Start();
  sim.RunUntil(30 * kSecond);
  EXPECT_EQ(session.pages_started(), 1);
  EXPECT_EQ(session.pages_completed(), 0);
}

}  // namespace
}  // namespace cellfi::traffic
