// Full-stack integration: spectrum database -> channel selection -> LTE
// network + CellFi interference management -> traffic -> incumbent
// arrival -> vacate -> retune -> service resumes. The composition every
// deployment would run, end to end in one simulator.
#include <gtest/gtest.h>

#include "cellfi/cellfi.h"

namespace cellfi {
namespace {

TEST(FullStackTest, LeaseServeVacateRetuneResume) {
  Simulator sim;

  // --- Spectrum database: two usable channels ------------------------------
  const tvws::GeoLocation here{.latitude = 47.64, .longitude = -122.13};
  tvws::SpectrumDatabase db;
  for (int ch = 14; ch <= 51; ++ch) {
    if (ch == 21 || ch == 36) continue;
    db.AddIncumbent({.id = "tv-" + std::to_string(ch), .channel = ch, .location = here,
                     .protection_radius_m = 100'000});
  }
  tvws::PawsServer dbserver(db);
  tvws::InProcessTransport transport(sim, dbserver);
  tvws::PawsClient dbclient({.serial_number = "fullstack-ap"}, tvws::Regulatory::kUs);
  tvws::PawsSession session(sim, dbclient, transport);
  core::QuietScanner scanner;
  core::ChannelSelectorConfig sel_cfg;
  sel_cfg.location = here;
  core::ChannelSelector selector(sim, session, scanner, sel_cfg);

  // --- Radio + LTE + CellFi -------------------------------------------------
  HataUrbanPathLoss pathloss;
  RadioEnvironmentConfig env_cfg;
  env_cfg.carrier_freq_hz = 600e6;  // retuned below once leased
  env_cfg.shadowing_sigma_db = 0.0;
  RadioEnvironment env(pathloss, env_cfg);
  const RadioNodeId ap = env.AddNode({.position = {0, 0}, .tx_power_dbm = 30.0});
  const RadioNodeId phone = env.AddNode({.position = {250, 0}, .tx_power_dbm = 20.0});

  lte::LteNetwork net(sim, env, {});
  net.AddCell(lte::LteMacConfig{}, ap);
  const lte::UeId ue = net.AddUe(phone);
  core::CellfiController cellfi(sim, net, {});

  // Couple channel selection to the radio: lease gained -> cell on, lease
  // lost -> cell silent (the quickstart wiring).
  int acquisitions = 0;
  selector.on_channel_acquired = [&](const tvws::ChannelAvailability&) {
    ++acquisitions;
    net.SetCellActive(0, true);
  };
  selector.on_channel_lost = [&] { net.SetCellActive(0, false); };

  net.SetCellActive(0, false);  // off the air until a lease exists
  cellfi.Start();
  selector.Start();
  net.Start();
  sim.SchedulePeriodic(500 * kMillisecond, [&] { net.OfferDownlink(ue, 1 << 20); });

  // Phase 1: acquire + serve.
  sim.RunUntil(200 * kSecond);
  ASSERT_EQ(selector.state(), core::ApRadioState::kOn);
  const int first_channel = selector.current_channel()->channel.number;
  sim.RunUntil(215 * kSecond);
  const auto* ctx1 = net.ue(ue).serving != lte::kInvalidCell
                         ? net.cell(net.ue(ue).serving).FindUe(ue)
                         : nullptr;
  ASSERT_NE(ctx1, nullptr);
  const std::uint64_t served_before = ctx1->dl_delivered_bits;
  EXPECT_GT(served_before, std::uint64_t{20} * 1000 * 1000);

  // Phase 2: a wireless microphone takes the channel in use.
  db.AddIncumbent({.id = "mic", .channel = first_channel, .location = here,
                   .protection_radius_m = 1000, .start = sim.Now(), .stop = 0});
  sim.RunUntil(sim.Now() + 70 * kSecond);
  // ETSI: the AP must be off or already rebooting onto the other channel.
  EXPECT_NE(selector.current_channel().has_value() &&
                selector.current_channel()->channel.number == first_channel,
            true);

  // Phase 3: the selector retunes to the remaining channel and service
  // resumes (reboot 96 s + client reacquire 56 s + margin).
  sim.RunUntil(sim.Now() + 300 * kSecond);
  ASSERT_EQ(selector.state(), core::ApRadioState::kOn);
  EXPECT_NE(selector.current_channel()->channel.number, first_channel);
  EXPECT_EQ(acquisitions, 2);

  const std::uint64_t before_resume =
      net.cell(net.ue(ue).serving).FindUe(ue) != nullptr
          ? net.cell(net.ue(ue).serving).FindUe(ue)->dl_delivered_bits
          : 0;
  sim.RunUntil(sim.Now() + 10 * kSecond);
  const auto* ctx2 = net.ue(ue).serving != lte::kInvalidCell
                         ? net.cell(net.ue(ue).serving).FindUe(ue)
                         : nullptr;
  ASSERT_NE(ctx2, nullptr);
  EXPECT_GT(ctx2->dl_delivered_bits, before_resume)
      << "service did not resume on the new channel";
}

}  // namespace
}  // namespace cellfi
