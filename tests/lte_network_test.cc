// Integration tests: LteNetwork over a real RadioEnvironment.
#include "cellfi/lte/network.h"

#include <gtest/gtest.h>

#include "cellfi/radio/pathloss.h"

namespace cellfi::lte {
namespace {

class NetworkFixture : public ::testing::Test {
 protected:
  NetworkFixture() : env_(pathloss_, EnvConfig()), net_(sim_, env_, NetConfig()) {}

  static RadioEnvironmentConfig EnvConfig() {
    RadioEnvironmentConfig c;
    c.carrier_freq_hz = 600e6;
    c.shadowing_sigma_db = 0.0;
    c.enable_fading = false;
    c.seed = 7;
    return c;
  }

  static LteNetworkConfig NetConfig() {
    LteNetworkConfig c;
    c.seed = 11;
    return c;
  }

  CellId AddCellAt(Point p, double power_dbm = 30.0) {
    const RadioNodeId r = env_.AddNode(
        {.position = p, .antenna = Antenna::Omni(6.0), .tx_power_dbm = power_dbm});
    LteMacConfig mac;
    mac.bandwidth = LteBandwidth::k5MHz;
    mac.tdd_config = 4;
    return net_.AddCell(mac, r);
  }

  UeId AddUeAt(Point p) {
    const RadioNodeId r = env_.AddNode({.position = p, .tx_power_dbm = 20.0});
    return net_.AddUe(r);
  }

  double ThroughputMbps(UeId ue, SimTime duration) {
    std::uint64_t bits = 0;
    for (std::size_t c = 0; c < net_.cell_count(); ++c) {
      for (const auto& ctx : net_.cell(static_cast<CellId>(c)).ues()) {
        if (ctx->id() == ue) bits = ctx->dl_delivered_bits;
      }
    }
    return static_cast<double>(bits) / ToSeconds(duration) / 1e6;
  }

  HataUrbanPathLoss pathloss_;
  Simulator sim_;
  RadioEnvironment env_;
  LteNetwork net_;
};

TEST_F(NetworkFixture, SingleCellDeliversBackloggedTraffic) {
  AddCellAt({0, 0});
  const UeId ue = AddUeAt({200, 0});
  net_.OfferDownlink(ue, 1 << 24);  // dropped: not attached yet
  net_.Start();
  sim_.RunUntil(200 * kMillisecond);
  ASSERT_EQ(net_.ue(ue).state, UeState::kConnected);
  net_.OfferDownlink(ue, 32 << 20);
  sim_.RunUntil(1200 * kMillisecond);
  // 5 MHz TDD cfg 4 (7/10 DL), good link: several Mbps.
  const double mbps = ThroughputMbps(ue, kSecond);
  EXPECT_GT(mbps, 5.0);
  EXPECT_LT(mbps, 15.0);
}

TEST_F(NetworkFixture, NearUeFasterThanFarUe) {
  AddCellAt({0, 0});
  const UeId near = AddUeAt({100, 0});
  const UeId far = AddUeAt({1200, 0});
  net_.Start();
  sim_.RunUntil(200 * kMillisecond);
  net_.OfferDownlink(near, 64 << 20);
  net_.OfferDownlink(far, 64 << 20);
  sim_.RunUntil(2200 * kMillisecond);
  EXPECT_GT(ThroughputMbps(near, 2 * kSecond), ThroughputMbps(far, 2 * kSecond));
  EXPECT_GT(ThroughputMbps(far, 2 * kSecond), 0.1);  // still served (PF)
}

TEST_F(NetworkFixture, UeAttachesToStrongestCell) {
  const CellId c0 = AddCellAt({0, 0});
  const CellId c1 = AddCellAt({2000, 0});
  const UeId ue = AddUeAt({1900, 0});
  net_.Start();
  sim_.RunUntil(300 * kMillisecond);
  EXPECT_EQ(net_.ue(ue).serving, c1);
  EXPECT_EQ(net_.cell(c0).ues().size(), 0u);
  EXPECT_EQ(net_.cell(c1).ues().size(), 1u);
}

TEST_F(NetworkFixture, UnreachableUeStaysIdle) {
  AddCellAt({0, 0});
  const UeId ue = AddUeAt({30000, 0});
  net_.Start();
  sim_.RunUntil(500 * kMillisecond);
  EXPECT_NE(net_.ue(ue).state, UeState::kConnected);
}

TEST_F(NetworkFixture, CqiReportsArriveAndReflectDistance) {
  AddCellAt({0, 0});
  const UeId near = AddUeAt({100, 0});
  const UeId far = AddUeAt({1300, 0});
  int near_cqi = -1, far_cqi = -1;
  net_.on_cqi_report = [&](CellId, UeId ue, const CqiMeasurement& m) {
    if (ue == near) near_cqi = m.wideband_cqi;
    if (ue == far) far_cqi = m.wideband_cqi;
  };
  net_.Start();
  sim_.RunUntil(500 * kMillisecond);
  ASSERT_GE(near_cqi, 0);
  ASSERT_GE(far_cqi, 0);
  EXPECT_GT(near_cqi, far_cqi);
  EXPECT_EQ(near_cqi, 15);
}

TEST_F(NetworkFixture, PrachHeardByNeighbouringCell) {
  const CellId c0 = AddCellAt({0, 0});
  const CellId c1 = AddCellAt({800, 0});
  // Attaches to c0; with open-loop PRACH power control a neighbour hears
  // the preamble only if its path is within ~13 dB of the serving path —
  // here c1 is 2x farther (11 dB on the Hata slope), so it is counted.
  const UeId ue = AddUeAt({400, 0});
  std::vector<PrachObservation> observations;
  net_.on_prach = [&](const PrachObservation& o) { observations.push_back(o); };
  net_.Start();
  sim_.RunUntil(500 * kMillisecond);
  // Keep the client active: solicitation only covers clients with traffic.
  sim_.SchedulePeriodic(200 * kMillisecond, [&] { net_.OfferDownlink(ue, 1 << 20); });
  sim_.RunUntil(3500 * kMillisecond);
  bool c0_heard = false, c1_heard = false;
  for (const auto& o : observations) {
    EXPECT_EQ(o.ue, ue);
    EXPECT_GE(o.snr_db, -10.0);
    if (o.observer == c0) c0_heard = true;
    if (o.observer == c1) c1_heard = true;
  }
  EXPECT_TRUE(c0_heard);
  EXPECT_TRUE(c1_heard);
  // Solicitation refreshes observations every second while active.
  EXPECT_GE(observations.size(), 4u);
}

TEST_F(NetworkFixture, PrachPowerControlHidesDistantClients) {
  const CellId c1 = AddCellAt({3000, 0});
  AddCellAt({0, 0});
  const UeId ue = AddUeAt({100, 0});  // very close to c0, far from c1
  std::vector<PrachObservation> observations;
  net_.on_prach = [&](const PrachObservation& o) { observations.push_back(o); };
  net_.Start();
  sim_.SchedulePeriodic(200 * kMillisecond, [&] { net_.OfferDownlink(ue, 1 << 20); });
  sim_.RunUntil(2500 * kMillisecond);
  for (const auto& o : observations) {
    EXPECT_NE(o.observer, c1) << "power-controlled preamble must not reach c1";
  }
  EXPECT_FALSE(observations.empty());
}

TEST_F(NetworkFixture, IdleClientsNotSolicited) {
  AddCellAt({0, 0});
  const UeId ue = AddUeAt({200, 0});
  int preambles = 0;
  net_.on_prach = [&](const PrachObservation&) { ++preambles; };
  net_.Start();
  sim_.RunUntil(5 * kSecond);
  // Only the initial attach preamble: the client never had traffic.
  EXPECT_LE(preambles, 1);
  (void)ue;
}

TEST_F(NetworkFixture, UplinkAckTrafficFlowsAutomatically) {
  AddCellAt({0, 0});
  const UeId ue = AddUeAt({200, 0});
  net_.Start();
  sim_.RunUntil(200 * kMillisecond);
  net_.OfferDownlink(ue, 8 << 20);
  sim_.RunUntil(1200 * kMillisecond);
  std::uint64_t ul_bits = 0;
  for (const auto& ctx : net_.cell(net_.ue(ue).serving).ues()) {
    if (ctx->id() == ue) ul_bits = ctx->ul_delivered_bits;
  }
  EXPECT_GT(ul_bits, 0u);  // TCP ACK clocking produced uplink traffic
}

TEST_F(NetworkFixture, StrongInterferenceWithFullMasksDegradesThroughput) {
  // Two overlapping cells, both backlogged, full masks (plain LTE): the
  // cell-edge UE suffers heavy SINR degradation vs. the isolated case.
  AddCellAt({0, 0});
  const CellId c1 = AddCellAt({600, 0});
  const UeId victim = AddUeAt({250, 0});  // edge of c0, close to c1
  const UeId other = AddUeAt({620, 0});   // c1's own client
  net_.Start();
  sim_.RunUntil(200 * kMillisecond);
  net_.OfferDownlink(victim, 64 << 20);
  net_.OfferDownlink(other, 64 << 20);
  sim_.RunUntil(2200 * kMillisecond);
  const double with_interference = ThroughputMbps(victim, 2 * kSecond);

  // Disjoint subchannel masks (what CellFi IM would converge to) protect it.
  std::vector<bool> low(13, false), high(13, false);
  for (int s = 0; s < 13; ++s) (s < 6 ? low : high)[static_cast<std::size_t>(s)] = true;
  net_.SetAllowedMask(0, low);
  net_.SetAllowedMask(c1, high);
  const std::uint64_t before =
      net_.cell(net_.ue(victim).serving).FindUe(victim)->dl_delivered_bits;
  net_.OfferDownlink(victim, 64 << 20);
  net_.OfferDownlink(other, 64 << 20);
  sim_.RunUntil(4200 * kMillisecond);
  const std::uint64_t after =
      net_.cell(net_.ue(victim).serving).FindUe(victim)->dl_delivered_bits;
  const double with_masks = static_cast<double>(after - before) / 2.0 / 1e6;
  EXPECT_GT(with_masks, with_interference);
}

TEST_F(NetworkFixture, DisablingServingCellCausesRlf) {
  const CellId c0 = AddCellAt({0, 0});
  AddCellAt({1000, 0});
  const UeId ue = AddUeAt({100, 0});
  net_.Start();
  sim_.RunUntil(300 * kMillisecond);
  ASSERT_EQ(net_.ue(ue).serving, c0);
  net_.SetCellActive(c0, false);
  sim_.RunUntil(5 * kSecond);
  EXPECT_GE(net_.ue(ue).disconnections, 1u);
  // The UE eventually reattaches to the remaining cell if reachable.
  EXPECT_NE(net_.ue(ue).serving, c0);
}

TEST_F(NetworkFixture, ConnectedTimeAccumulates) {
  AddCellAt({0, 0});
  const UeId ue = AddUeAt({100, 0});
  net_.Start();
  sim_.RunUntil(1 * kSecond);
  EXPECT_GT(net_.ue(ue).connected_time, 800 * kMillisecond);
  EXPECT_LE(net_.ue(ue).connected_time, 1 * kSecond);
}

}  // namespace
}  // namespace cellfi::lte
