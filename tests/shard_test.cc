// The intra-replication shard layer (DESIGN.md §15): the WorkerPool and
// nested-parallelism guard, the NeighborGraph soundness bound, the
// ShardGrid partition, and — the contract everything else exists to keep —
// scenario-level bit-identity across shard counts: sharding may only
// change wall clock, never a single result byte.
#include "cellfi/radio/shard_grid.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "cellfi/lte/network.h"
#include "cellfi/radio/interference.h"
#include "cellfi/radio/pathloss.h"
#include "cellfi/scenario/harness.h"
#include "cellfi/sim/worker_pool.h"

namespace cellfi {
namespace {

// ---------------------------------------------------------------------------
// WorkerPool + nested-parallelism guard
// ---------------------------------------------------------------------------

TEST(WorkerPoolTest, RunIndexedCoversEveryIndexExactlyOnce) {
  WorkerPool pool(4);
  EXPECT_EQ(pool.threads(), 4);
  constexpr std::size_t kCount = 257;  // more tasks than threads
  std::vector<std::atomic<int>> hits(kCount);
  for (auto& h : hits) h.store(0);
  pool.RunIndexed(kCount, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(WorkerPoolTest, ReusableAcrossBatchesAndZeroCount) {
  WorkerPool pool(2);
  pool.RunIndexed(0, [](std::size_t) { FAIL() << "no tasks expected"; });
  std::atomic<int> sum{0};
  for (int batch = 0; batch < 3; ++batch) {
    pool.RunIndexed(10, [&](std::size_t i) {
      sum.fetch_add(static_cast<int>(i) + 1);
    });
  }
  EXPECT_EQ(sum.load(), 3 * 55);
}

TEST(WorkerPoolTest, RethrowsFirstExceptionByTaskIndex) {
  WorkerPool pool(3);
  // Multiple tasks throw; the pool must surface the LOWEST-index failure
  // regardless of completion order, so error reporting is deterministic.
  try {
    pool.RunIndexed(16, [](std::size_t i) {
      if (i == 11 || i == 4 || i == 9) {
        throw std::runtime_error("task " + std::to_string(i));
      }
    });
    FAIL() << "expected rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 4");
  }
  // The pool survives a throwing batch.
  std::atomic<int> ran{0};
  pool.RunIndexed(5, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 5);
}

TEST(ShardThreadsTest, ExplicitRequestWinsAndClampsToShardCount) {
  EXPECT_EQ(ResolveShardThreads(/*requested=*/3, /*shards=*/8), 3);
  EXPECT_EQ(ResolveShardThreads(/*requested=*/8, /*shards=*/4), 4);
  EXPECT_EQ(ResolveShardThreads(/*requested=*/1, /*shards=*/8), 1);
}

TEST(ShardThreadsTest, EnvKnobAppliesWhenConfigUnset) {
  ASSERT_EQ(setenv("CELLFI_SHARD_THREADS", "6", 1), 0);
  EXPECT_EQ(ResolveShardThreads(0, /*shards=*/8), 6);
  EXPECT_EQ(ResolveShardThreads(0, /*shards=*/2), 2);  // still clamped
  EXPECT_EQ(ResolveShardThreads(4, /*shards=*/8), 4);  // config beats env
  ASSERT_EQ(unsetenv("CELLFI_SHARD_THREADS"), 0);
}

TEST(ShardThreadsTest, DegenerateShardCountClampsToOne) {
  // shards < 1 is treated as a single shard, and the thread count can
  // never exceed it — regardless of how parallel the request is.
  EXPECT_EQ(ResolveShardThreads(/*requested=*/8, /*shards=*/0), 1);
  EXPECT_EQ(ResolveShardThreads(/*requested=*/8, /*shards=*/-5), 1);
  EXPECT_EQ(ResolveShardThreads(/*requested=*/0, /*shards=*/0), 1);
}

TEST(ShardThreadsTest, EnvGarbageAndNegativesFallThroughToDerivedDefault) {
  // Non-numeric, negative and zero env values are all rejected (only
  // strictly positive integers count), so resolution falls through to the
  // derived default — pin it with all hardware threads claimed by sweep
  // workers, where the default is exactly 1.
  const int hw = HardwareConcurrency();
  AddActiveSweepThreads(hw);
  for (const char* junk : {"garbage", "-3", "0", ""}) {
    ASSERT_EQ(setenv("CELLFI_SHARD_THREADS", junk, 1), 0);
    EXPECT_EQ(ResolveShardThreads(0, /*shards=*/8), 1) << "env=" << junk;
  }
  ASSERT_EQ(unsetenv("CELLFI_SHARD_THREADS"), 0);
  AddActiveSweepThreads(-hw);
}

TEST(ShardThreadsTest, NegativeRequestBehavesLikeUnset) {
  // requested <= 0 means "unset": the env knob (when valid) takes over,
  // and the [1, shards] clamp still applies to the env value.
  ASSERT_EQ(setenv("CELLFI_SHARD_THREADS", "6", 1), 0);
  EXPECT_EQ(ResolveShardThreads(-1, /*shards=*/8), 6);
  EXPECT_EQ(ResolveShardThreads(-7, /*shards=*/3), 3);
  ASSERT_EQ(unsetenv("CELLFI_SHARD_THREADS"), 0);
}

TEST(ShardThreadsTest, DerivedDefaultRespectsActiveSweepThreads) {
  // With every hardware thread claimed by sweep workers, the derived shard
  // default collapses to 1: sweep_threads x shard_threads never silently
  // oversubscribes the machine.
  const int hw = HardwareConcurrency();
  AddActiveSweepThreads(hw);
  EXPECT_EQ(ResolveShardThreads(0, /*shards=*/8), 1);
  // An explicit request is still honored verbatim.
  EXPECT_EQ(ResolveShardThreads(4, /*shards=*/8), 4);
  AddActiveSweepThreads(-hw);
  const int derived = ResolveShardThreads(0, /*shards=*/1024);
  EXPECT_GE(derived, 1);
  EXPECT_LE(derived, hw);
}

// ---------------------------------------------------------------------------
// NeighborGraph
// ---------------------------------------------------------------------------

struct GraphWorld {
  GraphWorld() : pathloss(3.5), env(pathloss, Config()) {
    Rng rng(23);
    // Two clusters 40 km apart: plenty of in-cluster neighbors, and
    // cross-cluster pairs far below any reasonable floor.
    for (int i = 0; i < 8; ++i) {
      nodes.push_back(env.AddNode({.position = {rng.Uniform(-1000, 1000),
                                                rng.Uniform(-1000, 1000)},
                                   .tx_power_dbm = 30}));
    }
    for (int i = 0; i < 8; ++i) {
      nodes.push_back(env.AddNode({.position = {40000.0 + rng.Uniform(-1000, 1000),
                                                rng.Uniform(-1000, 1000)},
                                   .tx_power_dbm = 30}));
    }
  }
  static RadioEnvironmentConfig Config() {
    RadioEnvironmentConfig c;
    c.carrier_freq_hz = 600e6;
    c.shadowing_sigma_db = 4.0;
    c.enable_fading = false;
    c.seed = 9;
    return c;
  }
  LogDistancePathLoss pathloss;
  RadioEnvironment env;
  std::vector<RadioNodeId> nodes;
};

constexpr double kFloorDb = 30.0;
constexpr double kBandwidthHz = 360e3;

TEST(NeighborGraphTest, SymmetricAndSelfFree) {
  GraphWorld w;
  NeighborGraph g;
  g.Build(w.env, kFloorDb, kBandwidthHz);
  ASSERT_TRUE(g.built());
  EXPECT_EQ(g.node_count(), w.env.node_count());
  EXPECT_EQ(g.build_position_epoch(), w.env.position_epoch());
  for (RadioNodeId a : w.nodes) {
    EXPECT_FALSE(g.Contains(a, a));
    for (RadioNodeId b : w.nodes) {
      EXPECT_EQ(g.Contains(a, b), g.Contains(b, a)) << a << "," << b;
    }
  }
  // In-cluster pairs connected, cross-cluster pairs culled.
  EXPECT_TRUE(g.Contains(w.nodes[0], w.nodes[1]));
  EXPECT_FALSE(g.Contains(w.nodes[0], w.nodes[8]));
  EXPECT_GT(g.edge_count(), 0u);
}

TEST(NeighborGraphTest, NoFalseNegativesAgainstDenseCullReference) {
  // Soundness bound: a non-neighbor pair must fail the InterferenceMap
  // cull survivor condition in BOTH directions at power_scale = 1 (the
  // strongest any transmission can radiate). A neighbor must pass it in at
  // least one direction. This is the exact dense O(n^2) predicate the
  // graph exists to precompute.
  GraphWorld w;
  NeighborGraph g;
  g.Build(w.env, kFloorDb, kBandwidthHz);
  const double scale = std::pow(10.0, -kFloorDb / 10.0);
  for (RadioNodeId a : w.nodes) {
    for (RadioNodeId b : w.nodes) {
      if (a == b) continue;
      const bool survives_at_b =
          w.env.MeanRxPowerMw(a, b) >= w.env.NoiseMw(b, kBandwidthHz) * scale;
      const bool survives_at_a =
          w.env.MeanRxPowerMw(b, a) >= w.env.NoiseMw(a, kBandwidthHz) * scale;
      EXPECT_EQ(g.Contains(a, b), survives_at_b || survives_at_a)
          << "pair " << a << "," << b;
    }
  }
}

TEST(NeighborGraphTest, DeterministicBuildAndSortedLists) {
  GraphWorld w;
  NeighborGraph g1, g2;
  g1.Build(w.env, kFloorDb, kBandwidthHz);
  g2.Build(w.env, kFloorDb, kBandwidthHz);
  EXPECT_EQ(g1.edge_count(), g2.edge_count());
  for (RadioNodeId n : w.nodes) {
    const auto& l1 = g1.neighbors(n);
    EXPECT_EQ(l1, g2.neighbors(n));
    for (std::size_t i = 1; i < l1.size(); ++i) EXPECT_LT(l1[i - 1], l1[i]);
  }
}

TEST(NeighborGraphTest, NonPositiveFloorConnectsEverything) {
  GraphWorld w;
  NeighborGraph g;
  g.Build(w.env, 0.0, kBandwidthHz);
  const std::size_t n = w.nodes.size();
  EXPECT_EQ(g.edge_count(), n * (n - 1) / 2);
}

// ---------------------------------------------------------------------------
// ShardGrid
// ---------------------------------------------------------------------------

TEST(ShardGridTest, PartitionCoversBalancedAndConsistent) {
  Rng rng(31);
  std::vector<Point> pos;
  for (int i = 0; i < 37; ++i) {
    pos.push_back({rng.Uniform(0, 5000), rng.Uniform(0, 5000)});
  }
  ShardGrid grid(pos, 4);
  ASSERT_EQ(grid.num_shards(), 4);
  std::vector<int> owner(pos.size(), -1);
  std::size_t min_size = pos.size(), max_size = 0;
  for (int s = 0; s < grid.num_shards(); ++s) {
    const auto& cells = grid.cells(s);
    min_size = std::min(min_size, cells.size());
    max_size = std::max(max_size, cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) {
        EXPECT_LT(cells[i - 1], cells[i]);  // ascending
      }
      ASSERT_GE(cells[i], 0);
      ASSERT_LT(cells[i], static_cast<int>(pos.size()));
      EXPECT_EQ(owner[static_cast<std::size_t>(cells[i])], -1)
          << "cell owned twice";
      owner[static_cast<std::size_t>(cells[i])] = s;
      EXPECT_EQ(grid.shard_of(cells[i]), s);
    }
  }
  for (std::size_t c = 0; c < pos.size(); ++c) {
    EXPECT_NE(owner[c], -1) << "cell " << c << " unowned";
  }
  EXPECT_LE(max_size - min_size, 1u);  // balanced to within one cell
}

TEST(ShardGridTest, ClampsShardCountToCells) {
  std::vector<Point> pos{{0, 0}, {10, 0}, {20, 0}};
  EXPECT_EQ(ShardGrid(pos, 8).num_shards(), 3);
  EXPECT_EQ(ShardGrid(pos, 0).num_shards(), 1);
  ShardGrid one(pos, 1);
  EXPECT_EQ(one.num_shards(), 1);
  EXPECT_EQ(one.cells(0).size(), 3u);
}

TEST(ShardGridTest, CrossShardEdgesCountsOnlyCellPairsAcrossShards) {
  GraphWorld w;  // 16 nodes, two clusters
  NeighborGraph g;
  g.Build(w.env, kFloorDb, kBandwidthHz);
  std::vector<Point> pos;
  for (RadioNodeId n : w.nodes) pos.push_back(w.env.node(n).position);
  // One shard: nothing crosses.
  EXPECT_EQ(CountCrossShardEdges(g, ShardGrid(pos, 1), w.nodes), 0u);
  // Two shards over two far-apart clusters: the spatial sort puts each
  // cluster in its own shard and no neighbor edge crosses them.
  EXPECT_EQ(CountCrossShardEdges(g, ShardGrid(pos, 2), w.nodes), 0u);
  // Four shards split each cluster in half: now in-cluster edges cross.
  EXPECT_GT(CountCrossShardEdges(g, ShardGrid(pos, 4), w.nodes), 0u);
}

// ---------------------------------------------------------------------------
// InterferenceMap epoch-freeze contract (release-build check)
// ---------------------------------------------------------------------------

TEST(InterferenceMapSealTest, AddTransmitterAfterSealThrows) {
  GraphWorld w;
  InterferenceMap imap(w.env);
  imap.BeginEpoch(13, kBandwidthHz);
  imap.AddTransmitter(0, w.nodes[0], 1.0);
  imap.Seal();
  EXPECT_THROW(imap.AddTransmitter(0, w.nodes[1], 1.0), std::logic_error);
  // BeginEpoch reopens the map.
  imap.BeginEpoch(13, kBandwidthHz);
  EXPECT_NO_THROW(imap.AddTransmitter(0, w.nodes[1], 1.0));
}

TEST(InterferenceMapSealTest, FirstQuerySealsImplicitly) {
  GraphWorld w;
  InterferenceMap imap(w.env);
  imap.BeginEpoch(13, kBandwidthHz);
  imap.AddTransmitter(0, w.nodes[0], 1.0);
  (void)imap.SinrDb(w.nodes[0], w.nodes[1], 0, 0, 1.0);
  EXPECT_THROW(imap.AddTransmitter(1, w.nodes[2], 1.0), std::logic_error);
}

// ---------------------------------------------------------------------------
// Scenario-level bit-identity across shard counts
// ---------------------------------------------------------------------------

scenario::ScenarioConfig ShardScenario(scenario::Technology tech, bool fading,
                                       bool engine, double floor_db, int shards) {
  scenario::ScenarioConfig cfg;
  cfg.tech = tech;
  cfg.workload = scenario::WorkloadKind::kBacklogged;
  cfg.propagation = scenario::PropagationKind::kSuburbanUhf;
  cfg.topology.area_m = 1500.0;
  cfg.topology.num_aps = 6;
  cfg.topology.clients_per_ap = 2;
  cfg.topology.client_radius_m = 250.0;
  cfg.ap_power_dbm = 30.0;
  cfg.lte_bandwidth = LteBandwidth::k5MHz;
  cfg.lte_tdd_config = 4;
  cfg.warmup = 1 * kSecond;
  cfg.duration = 3 * kSecond;
  cfg.enable_fading = fading;
  cfg.use_interference_engine = engine;
  cfg.interference_floor_db = floor_db;
  cfg.shards = shards;
  // Pin 4 worker threads so the sharded variants exercise REAL
  // multi-threading (and race under TSan if anything is wrong) even on
  // single-core CI machines, where the derived default would be 1.
  cfg.shard_threads = shards > 1 ? 4 : 0;
  cfg.seed = 47;
  return cfg;
}

void ExpectBitIdentical(const scenario::ScenarioResult& a,
                        const scenario::ScenarioResult& b, const char* what) {
  EXPECT_EQ(a.total_throughput_bps, b.total_throughput_bps) << what;
  EXPECT_EQ(a.fraction_connected, b.fraction_connected) << what;
  EXPECT_EQ(a.fraction_starved, b.fraction_starved) << what;
  ASSERT_EQ(a.clients.size(), b.clients.size()) << what;
  for (std::size_t i = 0; i < a.clients.size(); ++i) {
    EXPECT_EQ(a.clients[i].throughput_bps, b.clients[i].throughput_bps)
        << what << " client " << i;
    EXPECT_EQ(a.clients[i].attached, b.clients[i].attached)
        << what << " client " << i;
  }
}

TEST(ShardBitIdentityTest, AnyShardCountMatchesUnshardedNoFading) {
  const auto ref = scenario::RunScenario(
      ShardScenario(scenario::Technology::kLte, false, true, 0.0, 1));
  EXPECT_GT(ref.total_throughput_bps, 0.0);
  for (int shards : {2, 4, 8}) {
    const auto sharded = scenario::RunScenario(
        ShardScenario(scenario::Technology::kLte, false, true, 0.0, shards));
    ExpectBitIdentical(ref, sharded,
                       ("shards=" + std::to_string(shards)).c_str());
  }
}

TEST(ShardBitIdentityTest, ShardedMatchesLegacyPath) {
  // Transitivity made explicit: the sharded engine must still equal the
  // pre-engine per-link path, the original ground truth.
  const auto legacy = scenario::RunScenario(
      ShardScenario(scenario::Technology::kLte, false, false, 0.0, 1));
  const auto sharded = scenario::RunScenario(
      ShardScenario(scenario::Technology::kLte, false, true, 0.0, 4));
  ExpectBitIdentical(legacy, sharded, "legacy vs shards=4");
}

TEST(ShardBitIdentityTest, FadingPathStaysBitIdentical) {
  // Fading falls back to per-link SINR inside the engine; the staged
  // parallel queries must still commit in the identical order.
  const auto ref = scenario::RunScenario(
      ShardScenario(scenario::Technology::kLte, true, true, 0.0, 1));
  const auto sharded = scenario::RunScenario(
      ShardScenario(scenario::Technology::kLte, true, true, 0.0, 4));
  ExpectBitIdentical(ref, sharded, "fading shards=4");
}

TEST(ShardBitIdentityTest, CullFastPathStaysBitIdenticalAcrossShards) {
  // With the 30 dB floor the NeighborGraph fast path is active; sharding
  // must not change which interferers are culled (counters are summed
  // order-independently, results merged in cell order).
  const auto ref = scenario::RunScenario(
      ShardScenario(scenario::Technology::kLte, false, true, 30.0, 1));
  const auto sharded = scenario::RunScenario(
      ShardScenario(scenario::Technology::kLte, false, true, 30.0, 4));
  ExpectBitIdentical(ref, sharded, "cull30 shards=4");
}

TEST(ShardBitIdentityTest, LbtSerialGateUnaffectedByShards) {
  // LAA/LBT draws its carrier-sense gate from the shared RNG; the serial
  // phase-1a gate loop must keep the draw sequence identical for any K.
  const auto ref = scenario::RunScenario(
      ShardScenario(scenario::Technology::kLaaLte, false, true, 0.0, 1));
  const auto sharded = scenario::RunScenario(
      ShardScenario(scenario::Technology::kLaaLte, false, true, 0.0, 4));
  ExpectBitIdentical(ref, sharded, "laa shards=4");
}

TEST(ShardBitIdentityTest, CellFiControllerStackUnaffectedByShards) {
  const auto ref = scenario::RunScenario(
      ShardScenario(scenario::Technology::kCellFi, false, true, 0.0, 1));
  const auto sharded = scenario::RunScenario(
      ShardScenario(scenario::Technology::kCellFi, false, true, 0.0, 4));
  ExpectBitIdentical(ref, sharded, "cellfi shards=4");
}

TEST(ShardBitIdentityTest, AggregateLoadTierUnaffectedByShards) {
  // The aggregate background-load tier (DESIGN.md §18) is counter-drawn
  // and runs serially on the event loop: its PRB reservations and PRACH
  // injections must be invisible to the shard partition.
  auto with_agg = [](int shards) {
    auto cfg = ShardScenario(scenario::Technology::kCellFi, false, true, 0.0,
                             shards);
    cfg.aggregate_load.users_per_cell = 300;
    cfg.aggregate_load.activity_jitter = 0.2;
    cfg.aggregate_load.flash_rate_per_s = 0.05;
    return cfg;
  };
  const auto ref = scenario::RunScenario(with_agg(1));
  const auto sharded = scenario::RunScenario(with_agg(4));
  ExpectBitIdentical(ref, sharded, "agg-load shards=4");
}

}  // namespace
}  // namespace cellfi
