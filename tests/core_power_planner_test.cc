#include "cellfi/core/power_planner.h"

#include <gtest/gtest.h>

#include "cellfi/common/units.h"

namespace cellfi::core {
namespace {

constexpr double kFreq = 600e6;

TEST(PowerPlannerTest, RequiredEirpMatchesManualBudget) {
  HataUrbanPathLoss hata(15.0, 1.5);
  CoverageTarget t;
  t.range_m = 1000.0;
  t.edge_snr_db = -6.7;
  t.bandwidth_hz = 4.5e6;
  t.noise_figure_db = 7.0;
  t.shadowing_margin_db = 8.0;
  const double expected = -6.7 + NoisePowerDbm(4.5e6, 7.0) +
                          hata.LossDb(1000.0, kFreq) + 8.0;
  EXPECT_NEAR(RequiredEirpDbm(hata, kFreq, t), expected, 1e-9);
  // Sanity: a 1 km TVWS cell fits comfortably inside the 36 dBm cap.
  EXPECT_LT(expected, 36.0);
}

TEST(PowerPlannerTest, MonotoneInRangeAndSnr) {
  HataUrbanPathLoss hata;
  CoverageTarget t;
  double prev = -1e9;
  for (double r : {200.0, 500.0, 1000.0, 2000.0}) {
    t.range_m = r;
    const double p = RequiredEirpDbm(hata, kFreq, t);
    EXPECT_GT(p, prev);
    prev = p;
  }
  CoverageTarget lo = t, hi = t;
  lo.edge_snr_db = -6.7;
  hi.edge_snr_db = 10.0;
  EXPECT_GT(RequiredEirpDbm(hata, kFreq, hi), RequiredEirpDbm(hata, kFreq, lo));
}

TEST(PowerPlannerTest, ClampsToRegulatoryCap) {
  HataUrbanPathLoss hata;
  CoverageTarget t;
  t.range_m = 20'000.0;  // unreachable at TVWS power caps
  bool achievable = true;
  const double p = PlanTxPowerDbm(hata, kFreq, t, 36.0, &achievable);
  EXPECT_DOUBLE_EQ(p, 36.0);
  EXPECT_FALSE(achievable);

  t.range_m = 500.0;
  const double q = PlanTxPowerDbm(hata, kFreq, t, 36.0, &achievable);
  EXPECT_LT(q, 36.0);
  EXPECT_TRUE(achievable);
}

TEST(PowerPlannerTest, AchievableRangeInvertsRequiredPower) {
  HataUrbanPathLoss hata(15.0, 1.5);
  CoverageTarget t;
  t.range_m = 900.0;
  const double eirp = RequiredEirpDbm(hata, kFreq, t);
  EXPECT_NEAR(AchievableRangeM(hata, kFreq, t, eirp), 900.0, 2.0);
  // More power, more range; less power, less range.
  EXPECT_GT(AchievableRangeM(hata, kFreq, t, eirp + 6.0), 900.0);
  EXPECT_LT(AchievableRangeM(hata, kFreq, t, eirp - 6.0), 900.0);
}

TEST(PowerPlannerTest, ZeroRangeWhenBudgetHopeless) {
  FreeSpacePathLoss fs;
  CoverageTarget t;
  EXPECT_DOUBLE_EQ(AchievableRangeM(fs, kFreq, t, -100.0), 0.0);
}

TEST(PowerPlannerTest, MinimumPowerShrinksInterferenceFootprint) {
  // The point of power planning: serving 500 m instead of blasting 36 dBm
  // shrinks the distance at which a neighbour still hears you above its
  // noise floor.
  HataUrbanPathLoss hata(15.0, 1.5);
  CoverageTarget t;
  t.range_m = 500.0;
  const double planned = PlanTxPowerDbm(hata, kFreq, t, 36.0);
  CoverageTarget interference;  // where our PSD is still at noise level
  interference.edge_snr_db = 0.0;
  interference.shadowing_margin_db = 0.0;
  const double footprint_planned = AchievableRangeM(hata, kFreq, interference, planned);
  const double footprint_max = AchievableRangeM(hata, kFreq, interference, 36.0);
  EXPECT_LT(footprint_planned, footprint_max * 0.8);
}

}  // namespace
}  // namespace cellfi::core
