// Hybrid control plane: centralized within an operator, distributed across.
#include "cellfi/core/hybrid_controller.h"

#include <gtest/gtest.h>

#include "cellfi/obs/metrics.h"
#include "cellfi/obs/trace.h"
#include "cellfi/radio/pathloss.h"

namespace cellfi::core {
namespace {

using lte::CellId;
using lte::UeId;

class HybridFixture : public ::testing::Test {
 protected:
  HybridFixture() : env_(pathloss_, EnvCfg()), net_(sim_, env_, NetCfg()) {}

  static RadioEnvironmentConfig EnvCfg() {
    RadioEnvironmentConfig c;
    c.carrier_freq_hz = 600e6;
    c.shadowing_sigma_db = 0.0;
    c.enable_fading = false;
    c.seed = 13;
    return c;
  }
  static lte::LteNetworkConfig NetCfg() {
    lte::LteNetworkConfig c;
    c.seed = 13;
    return c;
  }

  CellId AddCellAt(Point p) {
    lte::LteMacConfig mac;
    return net_.AddCell(mac, env_.AddNode({.position = p, .tx_power_dbm = 30.0}));
  }
  UeId AddUeAt(Point p, CellId home) {
    return net_.AddUe(env_.AddNode({.position = p, .tx_power_dbm = 20.0}), home);
  }

  HataUrbanPathLoss pathloss_;
  Simulator sim_;
  RadioEnvironment env_;
  lte::LteNetwork net_;
};

TEST_F(HybridFixture, IntraOperatorConflictsResolvedImmediately) {
  // Operator 0 owns two nearby cells; operator 1 owns a distant one.
  const CellId a = AddCellAt({0, 0});
  const CellId b = AddCellAt({500, 0});
  const CellId far = AddCellAt({5000, 0});
  const UeId u1 = AddUeAt({150, 40}, a);
  const UeId u2 = AddUeAt({350, -40}, b);
  const UeId u3 = AddUeAt({380, 40}, b);
  const UeId u4 = AddUeAt({5100, 0}, far);

  HybridControllerConfig cfg;
  cfg.base.seed = 29;
  HybridController hybrid(sim_, net_, {0, 0, 1}, cfg);
  hybrid.Start();

  sim_.SchedulePeriodic(500 * kMillisecond, [&] {
    for (UeId ue : {u1, u2, u3, u4}) net_.OfferDownlink(ue, 2 << 20);
  });
  net_.Start();
  sim_.RunUntil(12 * kSecond);

  // The effective masks of the two same-operator cells are disjoint (the
  // central refinement guarantees it, regardless of what distributed
  // hopping has converged to).
  const auto& mask_a = net_.cell(a).allowed_mask();
  const auto& mask_b = net_.cell(b).allowed_mask();
  for (std::size_t s = 0; s < mask_a.size(); ++s) {
    EXPECT_FALSE(mask_a[s] && mask_b[s]) << "intra-operator overlap on " << s;
  }
  // All clients served.
  for (UeId ue : {u1, u2, u3, u4}) {
    const auto* ctx = net_.cell(net_.ue(ue).serving).FindUe(ue);
    ASSERT_NE(ctx, nullptr);
    EXPECT_GT(ctx->dl_delivered_bits, 1u << 20) << "ue " << ue;
  }
}

TEST_F(HybridFixture, DistantSameOperatorCellsMayReuse) {
  const CellId a = AddCellAt({0, 0});
  const CellId b = AddCellAt({5000, 0});  // far apart: reuse is fine
  const UeId u1 = AddUeAt({100, 0}, a);
  const UeId u2 = AddUeAt({5100, 0}, b);

  HybridControllerConfig cfg;
  cfg.base.seed = 31;
  HybridController hybrid(sim_, net_, {0, 0}, cfg);
  hybrid.Start();
  sim_.SchedulePeriodic(500 * kMillisecond, [&] {
    net_.OfferDownlink(u1, 2 << 20);
    net_.OfferDownlink(u2, 2 << 20);
  });
  net_.Start();
  sim_.RunUntil(8 * kSecond);

  EXPECT_EQ(hybrid.conflicts_resolved(), 0u);  // no intra-op conflicts at 5 km
  // Both isolated cells keep rich masks (each only hears its own client).
  EXPECT_GE(net_.cell(a).allowed_count(), 6);
  EXPECT_GE(net_.cell(b).allowed_count(), 6);
}

TEST_F(HybridFixture, CrossOperatorStaysDistributed) {
  // Two nearby cells of DIFFERENT operators: the hybrid layer must not
  // touch their conflict (no X2 across providers) - overlap resolution is
  // left to distributed hopping, so conflicts_resolved stays 0.
  const CellId a = AddCellAt({0, 0});
  const CellId b = AddCellAt({500, 0});
  const UeId u1 = AddUeAt({150, 40}, a);
  const UeId u2 = AddUeAt({350, -40}, b);
  HybridControllerConfig cfg;
  cfg.base.seed = 37;
  HybridController hybrid(sim_, net_, {0, 1}, cfg);
  hybrid.Start();
  sim_.SchedulePeriodic(500 * kMillisecond, [&] {
    net_.OfferDownlink(u1, 2 << 20);
    net_.OfferDownlink(u2, 2 << 20);
  });
  net_.Start();
  sim_.RunUntil(8 * kSecond);
  EXPECT_EQ(hybrid.conflicts_resolved(), 0u);
}

TEST_F(HybridFixture, TraceAndMetricsMirrorConflictResolution) {
  // Same contended intra-operator layout as the first test, observed
  // through the trace/metrics layer (DESIGN.md §13): every centrally
  // resolved conflict must appear as exactly one `hybrid:conflict_resolved`
  // event and one tick of the hybrid.conflicts_resolved counter.
  const CellId a = AddCellAt({0, 0});
  const CellId b = AddCellAt({500, 0});
  const UeId u1 = AddUeAt({150, 40}, a);
  const UeId u2 = AddUeAt({350, -40}, b);

  obs::TraceSink sink;
  obs::MetricsRegistry metrics;
  obs::ObsScope scope(&sink, &metrics);

  HybridControllerConfig cfg;
  cfg.base.seed = 29;
  HybridController hybrid(sim_, net_, {0, 0}, cfg);
  hybrid.Start();
  sim_.SchedulePeriodic(500 * kMillisecond, [&] {
    net_.OfferDownlink(u1, 2 << 20);
    net_.OfferDownlink(u2, 2 << 20);
  });
  net_.Start();
  sim_.RunUntil(8 * kSecond);

  ASSERT_GT(hybrid.conflicts_resolved(), 0u);
  const auto events = sink.Events("hybrid", "conflict_resolved");
  EXPECT_EQ(events.size(), hybrid.conflicts_resolved());
  EXPECT_EQ(metrics.counter("hybrid.conflicts_resolved"),
            hybrid.conflicts_resolved());
  for (const obs::TraceEvent& ev : events) {
    const obs::FieldValue* yielder = ev.Find("yielder");
    const obs::FieldValue* keeper = ev.Find("keeper");
    const obs::FieldValue* subchannel = ev.Find("subchannel");
    ASSERT_NE(yielder, nullptr);
    ASSERT_NE(keeper, nullptr);
    ASSERT_NE(subchannel, nullptr);
    EXPECT_NE(yielder->as_int(), keeper->as_int());
    EXPECT_GE(subchannel->as_int(), 0);
  }
}

TEST_F(HybridFixture, CrossOperatorEmitsNoConflictEvents) {
  const CellId a = AddCellAt({0, 0});
  const CellId b = AddCellAt({500, 0});
  const UeId u1 = AddUeAt({150, 40}, a);
  const UeId u2 = AddUeAt({350, -40}, b);

  obs::TraceSink sink;
  obs::MetricsRegistry metrics;
  obs::ObsScope scope(&sink, &metrics);

  HybridControllerConfig cfg;
  cfg.base.seed = 37;
  HybridController hybrid(sim_, net_, {0, 1}, cfg);
  hybrid.Start();
  sim_.SchedulePeriodic(500 * kMillisecond, [&] {
    net_.OfferDownlink(u1, 2 << 20);
    net_.OfferDownlink(u2, 2 << 20);
  });
  net_.Start();
  sim_.RunUntil(8 * kSecond);

  EXPECT_TRUE(sink.Events("hybrid", "conflict_resolved").empty());
  EXPECT_EQ(metrics.counter("hybrid.conflicts_resolved"), 0u);
}

}  // namespace
}  // namespace cellfi::core
