// Chaos regression for the PAWS transport/session layers and the ETSI
// vacate-deadline invariant (ISSUE 1):
//  * retry/backoff/timeout mechanics against a scripted lossy transport,
//  * JSON-RPC id validation, corruption and error injection,
//  * cached-last-good / degraded / lost session states,
//  * outage sweeps across the 60 s boundary: the AP timeline must never
//    show transmission more than `etsi_vacate_budget` past the last
//    successful lease confirmation, for every outage length and poll rate.
#include "cellfi/tvws/paws_session.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cellfi/obs/trace.h"
#include "cellfi/scenario/outage.h"
#include "cellfi/tvws/paws_transport.h"

namespace cellfi::tvws {
namespace {

const GeoLocation kHere{.latitude = 47.64, .longitude = -122.13};

/// Forwards to an in-process server, but drops the first `drop_first`
/// requests; records every send time.
class ScriptedTransport final : public PawsTransport {
 public:
  ScriptedTransport(Simulator& sim, PawsServer& server, int drop_first)
      : sim_(sim), inner_(sim, server), drop_first_(drop_first) {}

  void Send(const std::string& request, ResponseHandler on_response) override {
    send_times.push_back(sim_.Now());
    if (static_cast<int>(send_times.size()) <= drop_first_) return;
    inner_.Send(request, std::move(on_response));
  }

  std::vector<SimTime> send_times;

 private:
  Simulator& sim_;
  InProcessTransport inner_;
  int drop_first_;
};

class SessionFixture : public ::testing::Test {
 protected:
  PawsSessionConfig NoJitterConfig() {
    PawsSessionConfig cfg;
    cfg.request_timeout = 2 * kSecond;
    cfg.max_attempts = 4;
    cfg.backoff_base = 500 * kMillisecond;
    cfg.backoff_cap = 8 * kSecond;
    cfg.backoff_jitter = 0.0;
    return cfg;
  }

  Simulator sim_;
  SpectrumDatabase db_;
  PawsServer server_{db_};
};

TEST_F(SessionFixture, RetriesWithExponentialBackoffThenSucceeds) {
  ScriptedTransport transport(sim_, server_, /*drop_first=*/2);
  PawsClient client({.serial_number = "s1"}, Regulatory::kUs);
  PawsSession session(sim_, client, transport, NoJitterConfig());

  std::optional<std::string> got;
  int calls = 0;
  session.Init(kHere, [&](std::optional<std::string> ruleset) {
    ++calls;
    got = std::move(ruleset);
  });
  sim_.Run();

  EXPECT_EQ(calls, 1);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "FccTvBandWhiteSpace-2010");
  // Attempt 1 at t=0; timeout 2 s + backoff 0.5 s -> attempt 2 at 2.5 s;
  // timeout + backoff 1 s -> attempt 3 at 5.5 s (succeeds).
  ASSERT_EQ(transport.send_times.size(), 3u);
  EXPECT_EQ(transport.send_times[0], 0);
  EXPECT_EQ(transport.send_times[1], 2'500 * kMillisecond);
  EXPECT_EQ(transport.send_times[2], 5'500 * kMillisecond);
  EXPECT_EQ(session.counters().attempts, 3u);
  EXPECT_EQ(session.counters().retries, 2u);
  EXPECT_EQ(session.counters().timeouts, 2u);
  EXPECT_EQ(session.counters().successes, 1u);
  EXPECT_EQ(session.counters().failures, 0u);
}

TEST_F(SessionFixture, BackoffIsCappedAtConfiguredMaximum) {
  ScriptedTransport transport(sim_, server_, /*drop_first=*/1000);
  PawsClient client({.serial_number = "s2"}, Regulatory::kUs);
  auto cfg = NoJitterConfig();
  cfg.backoff_base = 1 * kSecond;
  cfg.backoff_cap = 2 * kSecond;
  cfg.max_attempts = 6;
  PawsSession session(sim_, client, transport, cfg);

  session.Init(kHere, [](std::optional<std::string>) {});
  sim_.Run();

  // Gaps: timeout + min(base * 2^k, cap) = 3, 4, 4, 4, 4 seconds.
  ASSERT_EQ(transport.send_times.size(), 6u);
  const std::vector<SimTime> expected_gaps = {3 * kSecond, 4 * kSecond, 4 * kSecond,
                                              4 * kSecond, 4 * kSecond};
  for (std::size_t i = 0; i + 1 < transport.send_times.size(); ++i) {
    EXPECT_EQ(transport.send_times[i + 1] - transport.send_times[i], expected_gaps[i])
        << "gap " << i;
  }
}

TEST_F(SessionFixture, BackoffJitterStaysWithinConfiguredBounds) {
  ScriptedTransport transport(sim_, server_, /*drop_first=*/1000);
  PawsClient client({.serial_number = "s3"}, Regulatory::kUs);
  auto cfg = NoJitterConfig();
  cfg.backoff_jitter = 0.25;
  cfg.max_attempts = 4;
  cfg.seed = 1234;  // deterministic jitter draw
  PawsSession session(sim_, client, transport, cfg);

  session.Init(kHere, [](std::optional<std::string>) {});
  sim_.Run();

  ASSERT_EQ(transport.send_times.size(), 4u);
  const std::vector<SimTime> nominal = {500 * kMillisecond, 1 * kSecond, 2 * kSecond};
  for (std::size_t i = 0; i + 1 < transport.send_times.size(); ++i) {
    const SimTime gap = transport.send_times[i + 1] - transport.send_times[i];
    const SimTime backoff = gap - cfg.request_timeout;
    EXPECT_GE(backoff, static_cast<SimTime>(0.75 * static_cast<double>(nominal[i])));
    EXPECT_LE(backoff, static_cast<SimTime>(1.25 * static_cast<double>(nominal[i])));
  }
}

TEST_F(SessionFixture, GivesUpAfterMaxAttemptsAndReportsLost) {
  ScriptedTransport transport(sim_, server_, /*drop_first=*/1000);
  PawsClient client({.serial_number = "s4"}, Regulatory::kUs);
  PawsSession session(sim_, client, transport, NoJitterConfig());

  std::optional<std::string> got = "sentinel";
  session.Init(kHere, [&](std::optional<std::string> ruleset) { got = std::move(ruleset); });
  sim_.Run();

  EXPECT_FALSE(got.has_value());
  EXPECT_EQ(session.counters().attempts, 4u);
  EXPECT_EQ(session.counters().failures, 1u);
  EXPECT_EQ(session.counters().successes, 0u);
  // No cached lease exists, so the session is lost, not merely degraded.
  EXPECT_EQ(session.state(), SessionState::kLost);
}

TEST_F(SessionFixture, ClientRejectsResponseIdMismatch) {
  PawsClient client({.serial_number = "s5"}, Regulatory::kUs);
  server_.Handle(client.BuildInitRequest(kHere), 0);
  const std::string request = client.BuildAvailSpectrumRequest(kHere, true);
  const auto id = PawsClient::RequestId(request);
  ASSERT_TRUE(id.has_value());
  const std::string response = server_.Handle(request, 0);

  EXPECT_TRUE(client.ParseAvailSpectrumResponse(response, *id).has_value());
  EXPECT_FALSE(client.ParseAvailSpectrumResponse(response, *id + 1).has_value());
  // Default (no expected id) keeps the lenient legacy behavior.
  EXPECT_TRUE(client.ParseAvailSpectrumResponse(response).has_value());
}

TEST_F(SessionFixture, SessionRejectsMangledResponseIds) {
  InProcessTransport wire(sim_, server_);
  FaultProfile profile;
  profile.wrong_id_probability = 1.0;
  FaultyTransport faulty(sim_, wire, profile);
  PawsClient client({.serial_number = "s6"}, Regulatory::kUs);
  PawsSession session(sim_, client, faulty, NoJitterConfig());

  std::optional<std::string> got = "sentinel";
  session.Init(kHere, [&](std::optional<std::string> ruleset) { got = std::move(ruleset); });
  sim_.Run();

  EXPECT_FALSE(got.has_value());
  EXPECT_EQ(session.counters().id_mismatches, 4u);
  EXPECT_EQ(faulty.counters().ids_mangled, 4u);
}

TEST_F(SessionFixture, SessionRejectsCorruptJson) {
  InProcessTransport wire(sim_, server_);
  FaultProfile profile;
  profile.corrupt_probability = 1.0;
  FaultyTransport faulty(sim_, wire, profile);
  PawsClient client({.serial_number = "s7"}, Regulatory::kUs);
  PawsSession session(sim_, client, faulty, NoJitterConfig());

  std::optional<std::string> got = "sentinel";
  session.Init(kHere, [&](std::optional<std::string> ruleset) { got = std::move(ruleset); });
  sim_.Run();

  EXPECT_FALSE(got.has_value());
  EXPECT_EQ(session.counters().parse_failures, 4u);
  EXPECT_EQ(faulty.counters().corrupted, 4u);
}

TEST_F(SessionFixture, SessionRetriesInjectedRpcErrors) {
  InProcessTransport wire(sim_, server_);
  FaultProfile profile;
  profile.error_probability = 1.0;
  FaultyTransport faulty(sim_, wire, profile);
  PawsClient client({.serial_number = "s8"}, Regulatory::kUs);
  PawsSession session(sim_, client, faulty, NoJitterConfig());

  std::optional<std::string> got = "sentinel";
  session.Init(kHere, [&](std::optional<std::string> ruleset) { got = std::move(ruleset); });
  sim_.Run();

  EXPECT_FALSE(got.has_value());
  EXPECT_EQ(session.counters().rpc_errors, 4u);
}

TEST_F(SessionFixture, DegradedWhileCachedLeaseValidThenLost) {
  DatabaseConfig db_cfg;
  db_cfg.lease_duration = 30 * kSecond;  // short lease to cross expiry
  SpectrumDatabase db(db_cfg);
  PawsServer server(db);
  InProcessTransport wire(sim_, server);
  FaultyTransport faulty(sim_, wire, {});
  faulty.AddOutage(10 * kSecond, 10'000 * kSecond);
  PawsClient client({.serial_number = "s9"}, Regulatory::kUs);
  PawsSession session(sim_, client, faulty, NoJitterConfig());

  session.Init(kHere, [](std::optional<std::string>) {});
  std::optional<AvailSpectrumResponse> first;
  session.GetSpectrum(kHere, true, [&](std::optional<AvailSpectrumResponse> r) {
    first = std::move(r);
  });
  sim_.RunUntil(1 * kSecond);
  ASSERT_TRUE(first.has_value());
  ASSERT_FALSE(first->channels.empty());
  EXPECT_EQ(session.state(), SessionState::kHealthy);
  ASSERT_TRUE(session.last_good(true).has_value());

  // Failure inside the cached lease window: degraded (grace), not lost.
  sim_.ScheduleAt(12 * kSecond, [&] {
    session.GetSpectrum(kHere, true, [](std::optional<AvailSpectrumResponse>) {});
  });
  sim_.RunUntil(29 * kSecond);
  EXPECT_EQ(session.state(), SessionState::kDegraded);
  EXPECT_TRUE(session.CacheHoldsLease(sim_.Now()));

  // Failure after the cached lease expired: lost.
  sim_.ScheduleAt(40 * kSecond, [&] {
    session.GetSpectrum(kHere, true, [](std::optional<AvailSpectrumResponse>) {});
  });
  sim_.RunUntil(60 * kSecond);
  EXPECT_FALSE(session.CacheHoldsLease(sim_.Now()));
  EXPECT_EQ(session.state(), SessionState::kLost);
}

// ---------------------------------------------------------------------------
// Outage chaos sweeps (via the scenario-layer runner).

using scenario::OutageScenarioConfig;
using scenario::OutageScenarioResult;
using scenario::RunDatabaseOutage;

/// ETSI EN 301 598 invariant over a full timeline: at no point may the AP
/// be on air more than `budget` past its latest lease confirmation.
void ExpectEtsiInvariant(const OutageScenarioResult& r, SimTime budget, SimTime run_end) {
  bool on = false;
  SimTime last_confirm = -1;
  std::size_t next_confirm = 0;
  auto advance_confirms = [&](SimTime until) {
    while (next_confirm < r.lease_confirms.size() &&
           r.lease_confirms[next_confirm] <= until) {
      if (on) {
        // While transmitting, consecutive confirmations may never be more
        // than the budget apart.
        EXPECT_LE(r.lease_confirms[next_confirm] - last_confirm, budget)
            << "confirmation gap while on air";
      }
      last_confirm = r.lease_confirms[next_confirm];
      ++next_confirm;
    }
  };
  for (const core::TimelineEvent& e : r.timeline) {
    advance_confirms(e.time);
    if (e.what == "ap_on") {
      on = true;
    } else if (e.what == "ap_off") {
      ASSERT_GE(last_confirm, 0);
      EXPECT_LE(e.time - last_confirm, budget)
          << "transmitted past the vacate budget before ap_off";
      on = false;
    }
  }
  advance_confirms(run_end);
  if (on) {
    EXPECT_LE(run_end - last_confirm, budget) << "still on air without fresh lease";
  }
}

TEST(OutageChaosTest, VacateInvariantAcrossOutageDurations) {
  for (const SimTime outage_s : {10, 30, 45, 55, 59, 61, 65, 90, 120, 300}) {
    SCOPED_TRACE("outage_s=" + std::to_string(outage_s));
    OutageScenarioConfig cfg;
    cfg.outage_start = 300 * kSecond;
    cfg.outage_duration = outage_s * kSecond;
    cfg.run_until = cfg.outage_start + cfg.outage_duration + 600 * kSecond;
    const OutageScenarioResult r = RunDatabaseOutage(cfg);

    ASSERT_GE(r.last_confirm_before_outage, 0) << "AP never came on air";
    ExpectEtsiInvariant(r, cfg.selector.etsi_vacate_budget, cfg.run_until);

    const SimTime budget = cfg.selector.etsi_vacate_budget;
    if (outage_s * kSecond > budget) {
      // Hard requirement: off no later than t_lastlease + 60 s, then
      // reacquired once the database came back.
      ASSERT_GE(r.ap_off_at, 0);
      EXPECT_LE(r.ap_off_at, r.last_confirm_before_outage + budget);
      ASSERT_GE(r.reacquired_at, 0) << "did not reacquire after outage";
      EXPECT_EQ(r.final_radio_state, core::ApRadioState::kOn);
      EXPECT_EQ(r.final_state, SessionState::kHealthy);
    }
    if (outage_s <= 45) {
      // Short blips ride on the lease-grace window without ever vacating.
      EXPECT_TRUE(r.rode_through) << "short outage should not cause a vacate";
      EXPECT_LT(r.ap_off_at, 0);
    }
  }
}

TEST(OutageChaosTest, VacateDeadlineIndependentOfPollInterval) {
  for (const SimTime poll_s : {1, 5, 10, 30}) {
    SCOPED_TRACE("poll_s=" + std::to_string(poll_s));
    OutageScenarioConfig cfg;
    cfg.selector.db_poll_interval = poll_s * kSecond;
    cfg.outage_start = 300 * kSecond;
    // 100 % request loss from outage_start to the end of the run.
    cfg.outage_duration = 10'000 * kSecond;
    cfg.run_until = 700 * kSecond;
    const OutageScenarioResult r = RunDatabaseOutage(cfg);

    ASSERT_GE(r.last_confirm_before_outage, 0);
    ASSERT_GE(r.ap_off_at, 0) << "AP kept transmitting through a dead database";
    EXPECT_LE(r.ap_off_at,
              r.last_confirm_before_outage + cfg.selector.etsi_vacate_budget);
    EXPECT_EQ(r.final_radio_state, core::ApRadioState::kOff);
  }
}

TEST(OutageChaosTest, ReacquiresPromptlyAfterOutageClears) {
  OutageScenarioConfig cfg;
  cfg.outage_start = 300 * kSecond;
  cfg.outage_duration = 90 * kSecond;
  cfg.run_until = 1000 * kSecond;
  const OutageScenarioResult r = RunDatabaseOutage(cfg);

  ASSERT_GE(r.ap_off_at, 0);
  ASSERT_GE(r.reacquired_at, 0);
  // Outage end + (in-flight retry drain + poll) + reboot, with slack.
  const SimTime latest = r.outage_end + 30 * kSecond + cfg.selector.reboot_duration;
  EXPECT_GE(r.reacquired_at, r.outage_end + cfg.selector.reboot_duration);
  EXPECT_LE(r.reacquired_at, latest);
  EXPECT_EQ(r.final_state, SessionState::kHealthy);
}

TEST(OutageChaosTest, SurvivesLossyLatentLinkWithoutViolations) {
  OutageScenarioConfig cfg;
  cfg.outage_duration = 0;  // no outage, just a bad link
  cfg.faults.latency_base = 100 * kMillisecond;
  cfg.faults.latency_jitter = 150 * kMillisecond;
  cfg.faults.drop_probability = 0.3;
  cfg.faults.corrupt_probability = 0.05;
  cfg.faults.error_probability = 0.05;
  cfg.run_until = 1200 * kSecond;
  const OutageScenarioResult r = RunDatabaseOutage(cfg);

  ExpectEtsiInvariant(r, cfg.selector.etsi_vacate_budget, cfg.run_until);
  EXPECT_EQ(r.final_radio_state, core::ApRadioState::kOn);
  EXPECT_GT(r.session.retries, 0u);
  EXPECT_GT(r.transport.dropped_random, 0u);
}

// ---------------------------------------------------------------------------
// Trace-level vacate checks (DESIGN.md §13): the same ETSI deadline the
// chaos sweeps assert from the result struct, re-derived purely from the
// emitted trace — which is what tools/trace_check.py `deadline` consumes
// offline.

/// Scan the channel_selector events: every vacate_fired must come at most
/// `budget` after the latest preceding vacate_armed (a fresh lease re-arms
/// the deadline). Returns the number of fired events checked.
int ExpectVacateDeadlineFromTrace(const obs::TraceSink& sink, SimTime budget) {
  const std::int64_t budget_us = budget / kMicrosecond;
  std::int64_t last_armed_us = -1;
  int fired = 0;
  for (const obs::TraceEvent& ev : sink.Events("channel_selector")) {
    if (ev.event == "vacate_armed") {
      last_armed_us = ev.sim_time_us;
      // The event self-describes its deadline; cross-check the field.
      const obs::FieldValue* deadline = ev.Find("deadline_us");
      if (deadline != nullptr) {
        EXPECT_EQ(deadline->as_int(), ev.sim_time_us + budget_us);
      }
    } else if (ev.event == "vacate_fired") {
      ++fired;
      if (last_armed_us < 0) {
        ADD_FAILURE() << "vacate_fired with no preceding arm";
        continue;
      }
      EXPECT_LE(ev.sim_time_us - last_armed_us, budget_us)
          << "vacated later than the ETSI budget allows";
    }
  }
  return fired;
}

TEST(VacateTraceTest, FiredWithinBudgetAcrossFaultSchedules) {
  struct Case {
    const char* name;
    OutageScenarioConfig cfg;
  };
  std::vector<Case> cases;
  {
    Case c{"dead_database", {}};
    c.cfg.outage_start = 300 * kSecond;
    c.cfg.outage_duration = 10'000 * kSecond;  // never recovers in-run
    c.cfg.run_until = 700 * kSecond;
    cases.push_back(c);
  }
  {
    Case c{"outage_with_lossy_link", {}};
    c.cfg.outage_start = 300 * kSecond;
    c.cfg.outage_duration = 90 * kSecond;
    c.cfg.faults.latency_base = 50 * kMillisecond;
    c.cfg.faults.latency_jitter = 100 * kMillisecond;
    c.cfg.faults.drop_probability = 0.2;
    c.cfg.faults.error_probability = 0.05;
    c.cfg.run_until = 1000 * kSecond;
    cases.push_back(c);
  }
  {
    Case c{"slow_poll", {}};
    c.cfg.selector.db_poll_interval = 30 * kSecond;
    c.cfg.outage_start = 300 * kSecond;
    c.cfg.outage_duration = 120 * kSecond;
    c.cfg.run_until = 1000 * kSecond;
    cases.push_back(c);
  }
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    obs::TraceSink sink;
    obs::ObsScope scope(&sink, nullptr);
    const OutageScenarioResult r = RunDatabaseOutage(c.cfg);
    ASSERT_GE(r.ap_off_at, 0) << "schedule was expected to force a vacate";
    const int fired =
        ExpectVacateDeadlineFromTrace(sink, c.cfg.selector.etsi_vacate_budget);
    EXPECT_GE(fired, 1);
    // Every lease confirmation re-armed the deadline in the trace.
    EXPECT_EQ(sink.Events("channel_selector", "vacate_armed").size(),
              r.lease_confirms.size());
  }
}

TEST(VacateTraceTest, OutageEventsBracketVacateAndReacquire) {
  OutageScenarioConfig cfg;
  cfg.outage_start = 300 * kSecond;
  cfg.outage_duration = 90 * kSecond;
  cfg.run_until = 1000 * kSecond;
  obs::TraceSink sink;
  obs::ObsScope scope(&sink, nullptr);
  const OutageScenarioResult r = RunDatabaseOutage(cfg);
  ASSERT_GE(r.reacquired_at, 0);

  // The combined trace must contain, in order: outage begins, the session
  // notices (a state_change away from healthy), the selector vacates,
  // the outage clears, and the AP comes back on air.
  const auto events = sink.Events();
  auto next = [&](std::size_t from, std::string_view component,
                  std::string_view event) {
    for (std::size_t i = from; i < events.size(); ++i) {
      if (events[i].component == component && events[i].event == event) {
        return i;
      }
    }
    return events.size();
  };
  const std::size_t begin = next(0, "outage", "outage_begin");
  ASSERT_LT(begin, events.size());
  const std::size_t degraded = next(begin, "paws_session", "state_change");
  ASSERT_LT(degraded, events.size());
  const std::size_t fired = next(degraded, "channel_selector", "vacate_fired");
  ASSERT_LT(fired, events.size());
  const std::size_t end = next(fired, "outage", "outage_end");
  ASSERT_LT(end, events.size());
  const std::size_t back_on = next(end, "channel_selector", "ap_on");
  ASSERT_LT(back_on, events.size());
  EXPECT_EQ(events[back_on].sim_time_us, r.reacquired_at / kMicrosecond);
}

}  // namespace
}  // namespace cellfi::tvws
