#include <cmath>

#include <gtest/gtest.h>

#include "cellfi/common/stats.h"
#include "cellfi/common/units.h"
#include "cellfi/radio/antenna.h"
#include "cellfi/radio/environment.h"
#include "cellfi/radio/fading.h"
#include "cellfi/radio/pathloss.h"

namespace cellfi {
namespace {

constexpr double kTvwsFreq = 600e6;

TEST(PathLossTest, FreeSpaceKnownValue) {
  FreeSpacePathLoss fs;
  // FSPL(dB) = 20 log10(d) + 20 log10(f) - 147.55; 1 km @ 600 MHz ~ 88.0 dB.
  EXPECT_NEAR(fs.LossDb(1000.0, kTvwsFreq), 88.0, 0.2);
}

TEST(PathLossTest, FreeSpaceSlope6dBPerOctave) {
  FreeSpacePathLoss fs;
  const double l1 = fs.LossDb(500.0, kTvwsFreq);
  const double l2 = fs.LossDb(1000.0, kTvwsFreq);
  EXPECT_NEAR(l2 - l1, 6.02, 0.05);
}

TEST(PathLossTest, MonotoneInDistance) {
  const HataUrbanPathLoss hata;
  const LogDistancePathLoss logd(3.5);
  const FreeSpacePathLoss fs;
  double prev_h = 0, prev_l = 0, prev_f = 0;
  for (double d = 10.0; d <= 3000.0; d *= 1.3) {
    const double h = hata.LossDb(d, kTvwsFreq);
    const double l = logd.LossDb(d, kTvwsFreq);
    const double f = fs.LossDb(d, kTvwsFreq);
    EXPECT_GT(h, prev_h);
    EXPECT_GE(l, prev_l);
    EXPECT_GT(f, prev_f);
    prev_h = h;
    prev_l = l;
    prev_f = f;
  }
}

TEST(PathLossTest, HataUrbanMatchesClosedForm) {
  // 600 MHz, hb = 15 m, hm = 1.5 m: L ~ 125.98 + 37.2 log10(d_km).
  HataUrbanPathLoss hata(15.0, 1.5, /*small_city=*/true);
  EXPECT_NEAR(hata.LossDb(1000.0, kTvwsFreq), 126.0, 0.5);
  EXPECT_NEAR(hata.LossDb(2000.0, kTvwsFreq) - hata.LossDb(1000.0, kTvwsFreq),
              37.2 * std::log10(2.0), 0.2);
}

TEST(PathLossTest, HataNeverBelowFreeSpace) {
  HataUrbanPathLoss hata;
  FreeSpacePathLoss fs;
  for (double d : {1.0, 5.0, 20.0, 100.0, 1000.0}) {
    EXPECT_GE(hata.LossDb(d, kTvwsFreq), fs.LossDb(d, kTvwsFreq) - 1e-9);
  }
}

TEST(PathLossTest, PaperRangeBudgetCloses) {
  // Fig. 1: 36 dBm EIRP reaches ~1.3 km urban with >= 1 Mbps. At 1.3 km the
  // received power must sit within a few dB of the 5 MHz noise floor.
  HataUrbanPathLoss hata(15.0, 1.5);
  const double rx_dbm = 36.0 - hata.LossDb(1300.0, kTvwsFreq);
  const double noise_dbm = NoisePowerDbm(4.5e6, 7.0);
  const double snr = rx_dbm - noise_dbm;
  EXPECT_GT(snr, 0.0);   // link still closes at the lowest MCS
  EXPECT_LT(snr, 20.0);  // but is clearly power-limited
}

TEST(AntennaTest, OmniUniform) {
  const Antenna a = Antenna::Omni(2.0);
  for (double b = -3.0; b <= 3.0; b += 0.5) EXPECT_DOUBLE_EQ(a.GainDbi(b), 2.0);
}

TEST(AntennaTest, SectorBoresightAndRolloff) {
  const double beam = 120.0 * M_PI / 180.0;
  const Antenna a = Antenna::Sector(6.0, 0.0, beam);
  EXPECT_DOUBLE_EQ(a.GainDbi(0.0), 6.0);
  // At the 3 dB half-beamwidth the pattern is 12*(0.5*beam / (0.5*beam))^2
  // = 12 dB down in the 3GPP parabolic form evaluated at the edge.
  EXPECT_NEAR(a.GainDbi(beam / 2.0), 6.0 - 12.0, 1e-9);
  // Behind the antenna the floor applies.
  EXPECT_NEAR(a.GainDbi(M_PI), 6.0 - 20.0, 1e-9);
}

TEST(AntennaTest, SectorSymmetric) {
  const Antenna a = Antenna::Sector(7.0, M_PI / 3.0, 2.0);
  EXPECT_NEAR(a.GainDbi(M_PI / 3.0 + 0.4), a.GainDbi(M_PI / 3.0 - 0.4), 1e-9);
}

TEST(FadingTest, ShadowingSymmetricAndStable) {
  ShadowingField f(99, 6.0);
  EXPECT_DOUBLE_EQ(f.ShadowDb(3, 8), f.ShadowDb(8, 3));
  EXPECT_DOUBLE_EQ(f.ShadowDb(3, 8), f.ShadowDb(3, 8));
  EXPECT_NE(f.ShadowDb(3, 8), f.ShadowDb(3, 9));
}

TEST(FadingTest, ShadowingStatisticsMatchSigma) {
  ShadowingField f(7, 6.0);
  Summary s;
  for (std::uint32_t i = 0; i < 2000; ++i) s.Add(f.ShadowDb(i, i + 10000));
  EXPECT_NEAR(s.mean(), 0.0, 0.5);
  EXPECT_NEAR(s.stddev(), 6.0, 0.5);
}

TEST(FadingTest, RayleighPowerMeanIsOne) {
  FadingProcess f(3);
  Summary s;
  for (std::uint32_t i = 0; i < 5000; ++i) s.Add(f.PowerGain(1, 2, i, 0));
  EXPECT_NEAR(s.mean(), 1.0, 0.05);
}

TEST(FadingTest, ConstantWithinCoherenceBlock) {
  FadingProcess f(3, 50 * kMillisecond);
  const double g1 = f.PowerGain(1, 2, 5, 0);
  const double g2 = f.PowerGain(1, 2, 5, 49 * kMillisecond);
  const double g3 = f.PowerGain(1, 2, 5, 51 * kMillisecond);
  EXPECT_DOUBLE_EQ(g1, g2);
  EXPECT_NE(g1, g3);
}

TEST(FadingTest, IndependentAcrossSubchannels) {
  FadingProcess f(3);
  EXPECT_NE(f.PowerGain(1, 2, 0, 0), f.PowerGain(1, 2, 1, 0));
}

class EnvironmentTest : public ::testing::Test {
 protected:
  EnvironmentTest() : env_(pathloss_, MakeConfig()) {
    ap_ = env_.AddNode({.position = {0, 0},
                        .antenna = Antenna::Omni(6.0),
                        .tx_power_dbm = 30.0});
    ue_near_ = env_.AddNode({.position = {100, 0}, .tx_power_dbm = 20.0});
    ue_far_ = env_.AddNode({.position = {1200, 0}, .tx_power_dbm = 20.0});
    interferer_ = env_.AddNode({.position = {300, 300}, .tx_power_dbm = 30.0});
  }

  static RadioEnvironmentConfig MakeConfig() {
    RadioEnvironmentConfig c;
    c.carrier_freq_hz = kTvwsFreq;
    c.shadowing_sigma_db = 0.0;  // deterministic for assertions
    c.enable_fading = false;
    return c;
  }

  FreeSpacePathLoss pathloss_;
  RadioEnvironment env_;
  RadioNodeId ap_ = 0, ue_near_ = 0, ue_far_ = 0, interferer_ = 0;
};

TEST_F(EnvironmentTest, LinkGainSymmetric) {
  EXPECT_DOUBLE_EQ(env_.LinkGainDb(ap_, ue_far_), env_.LinkGainDb(ue_far_, ap_));
}

TEST_F(EnvironmentTest, NearStrongerThanFar) {
  EXPECT_GT(env_.MeanRxPowerDbm(ap_, ue_near_), env_.MeanRxPowerDbm(ap_, ue_far_));
}

TEST_F(EnvironmentTest, SnrDropsWithInterference) {
  const double snr = env_.SinrDb(ap_, ue_near_, 0, 0, {}, 4.5e6);
  const double sinr =
      env_.SinrDb(ap_, ue_near_, 0, 0, {{.node = interferer_, .power_scale = 1.0}}, 4.5e6);
  EXPECT_GT(snr, sinr);
}

TEST_F(EnvironmentTest, PartialPowerScaleInterferesLess) {
  const double full =
      env_.SinrDb(ap_, ue_near_, 0, 0, {{.node = interferer_, .power_scale = 1.0}}, 4.5e6);
  const double partial =
      env_.SinrDb(ap_, ue_near_, 0, 0, {{.node = interferer_, .power_scale = 0.3}}, 4.5e6);
  EXPECT_GT(partial, full);
}

TEST_F(EnvironmentTest, InterferenceFromSelfOrSignalIgnored) {
  const double base = env_.SinrDb(ap_, ue_near_, 0, 0, {}, 4.5e6);
  const double with_self = env_.SinrDb(
      ap_, ue_near_, 0, 0,
      {{.node = ap_, .power_scale = 1.0}, {.node = ue_near_, .power_scale = 1.0}}, 4.5e6);
  EXPECT_DOUBLE_EQ(base, with_self);
}

TEST_F(EnvironmentTest, MeanSnrMatchesManualBudget) {
  const double expected = 30.0 + 6.0 - pathloss_.LossDb(100.0, kTvwsFreq) -
                          NoisePowerDbm(4.5e6, 7.0);
  EXPECT_NEAR(env_.MeanSnrDb(ap_, ue_near_, 4.5e6), expected, 1e-9);
}

// Regression: SinrDb caches per-receiver linear rx-power rows (and
// MeanRxPowerMw caches link gains). MoveNode must invalidate every cached
// value involving the moved node — both as signal source and interferer —
// or stale powers survive the move.
TEST_F(EnvironmentTest, MoveNodeInvalidatesSinrCaches) {
  const std::vector<ActiveTransmitter> interferers{
      {.node = interferer_, .power_scale = 1.0}};
  // Populate the caches at the original positions.
  (void)env_.SinrDb(ap_, ue_near_, 0, 0, interferers, 4.5e6);
  (void)env_.MeanRxPowerMw(ap_, ue_near_);

  // Moving the signal source must change the cached signal power.
  env_.MoveNode(ap_, {500, 0});
  RadioEnvironment fresh(pathloss_, MakeConfig());
  const RadioNodeId ap2 = fresh.AddNode({.position = {500, 0},
                                         .antenna = Antenna::Omni(6.0),
                                         .tx_power_dbm = 30.0});
  const RadioNodeId near2 = fresh.AddNode({.position = {100, 0}, .tx_power_dbm = 20.0});
  (void)fresh.AddNode({.position = {1200, 0}, .tx_power_dbm = 20.0});
  const RadioNodeId intf2 = fresh.AddNode({.position = {300, 300}, .tx_power_dbm = 30.0});
  const std::vector<ActiveTransmitter> interferers2{{.node = intf2, .power_scale = 1.0}};
  EXPECT_DOUBLE_EQ(env_.SinrDb(ap_, ue_near_, 0, 0, interferers, 4.5e6),
                   fresh.SinrDb(ap2, near2, 0, 0, interferers2, 4.5e6));
  EXPECT_DOUBLE_EQ(env_.MeanRxPowerMw(ap_, ue_near_),
                   fresh.MeanRxPowerMw(ap2, near2));

  // Moving an interferer must change the cached interference power too.
  (void)env_.SinrDb(ap_, ue_near_, 0, 0, interferers, 4.5e6);
  env_.MoveNode(interferer_, {50, 50});
  fresh.MoveNode(intf2, {50, 50});
  EXPECT_DOUBLE_EQ(env_.SinrDb(ap_, ue_near_, 0, 0, interferers, 4.5e6),
                   fresh.SinrDb(ap2, near2, 0, 0, interferers2, 4.5e6));

  // And moving the receiver invalidates its row (signal + noise memo keyed
  // by bandwidth stays valid; only geometry-dependent values change).
  env_.MoveNode(ue_near_, {700, 100});
  fresh.MoveNode(near2, {700, 100});
  EXPECT_DOUBLE_EQ(env_.SinrDb(ap_, ue_near_, 0, 0, interferers, 4.5e6),
                   fresh.SinrDb(ap2, near2, 0, 0, interferers2, 4.5e6));
}

// NoiseMw keeps a two-slot MRU memo per receiver: MAC layers alternate
// between subchannel and full-band noise at the same receiver, and the
// alternation must hit the memo without thrash (and, above all, stay
// exact — each value must equal the closed-form conversion every time).
TEST_F(EnvironmentTest, NoiseMwMemoSurvivesAlternatingBandwidths) {
  const double sub = DbmToMw(NoisePowerDbm(360e3, 7.0));
  const double full = DbmToMw(NoisePowerDbm(4.5e6, 7.0));
  for (int i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(env_.NoiseMw(ue_near_, 360e3), sub) << "iter " << i;
    EXPECT_DOUBLE_EQ(env_.NoiseMw(ue_near_, 4.5e6), full) << "iter " << i;
  }
  // A third bandwidth evicts the LRU slot but never corrupts the values.
  const double prach = DbmToMw(NoisePowerDbm(839 * 1250.0, 7.0));
  EXPECT_DOUBLE_EQ(env_.NoiseMw(ue_near_, 839 * 1250.0), prach);
  EXPECT_DOUBLE_EQ(env_.NoiseMw(ue_near_, 360e3), sub);
  EXPECT_DOUBLE_EQ(env_.NoiseMw(ue_near_, 4.5e6), full);
  // Per-receiver slots are independent.
  EXPECT_DOUBLE_EQ(env_.NoiseMw(ue_far_, 360e3), sub);
  // AddNode resizes the memo vector; values stay correct afterwards.
  (void)env_.AddNode({.position = {900, 900}});
  EXPECT_DOUBLE_EQ(env_.NoiseMw(ue_near_, 360e3), sub);
}

}  // namespace
}  // namespace cellfi
