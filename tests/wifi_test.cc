#include "cellfi/wifi/wifi_network.h"

#include <gtest/gtest.h>

#include "cellfi/radio/pathloss.h"

namespace cellfi::wifi {
namespace {

TEST(WifiPhyTest, McsTableMonotone) {
  for (int m = 1; m < kNumWifiMcs; ++m) {
    EXPECT_GT(WifiMcsTable(m).bits_per_hz, WifiMcsTable(m - 1).bits_per_hz);
    EXPECT_GT(WifiMcsTable(m).snr_threshold_db, WifiMcsTable(m - 1).snr_threshold_db);
  }
}

TEST(WifiPhyTest, KnownRates) {
  // 802.11ac 20 MHz single stream: MCS0 = 6.5 Mbps, MCS8 = 78 Mbps.
  EXPECT_NEAR(PhyRateBps(0, 20e6), 6.5e6, 1e5);
  EXPECT_NEAR(PhyRateBps(8, 20e6), 78e6, 1e6);
  // 802.11af 6 MHz channel scales linearly.
  EXPECT_NEAR(PhyRateBps(0, 6e6), 1.95e6, 5e4);
}

TEST(WifiPhyTest, MinimumCodeRateIsHalf) {
  // Table 1: Wi-Fi coding rate >= 0.5 -> MCS0 is BPSK 1/2 = 0.325 b/s/Hz,
  // usable only above ~2 dB (vs LTE's CQI 1 at -6.7 dB).
  EXPECT_GT(WifiMcsTable(0).snr_threshold_db, 0.0);
  EXPECT_EQ(SinrToMcs(-5.0), -1);
  EXPECT_EQ(SinrToMcs(2.0), 0);
  EXPECT_EQ(SinrToMcs(100.0), kNumWifiMcs - 1);
}

TEST(WifiPhyTest, IdealRateZeroBelowSensitivity) {
  EXPECT_DOUBLE_EQ(IdealRateBps(-10.0, 20e6), 0.0);
  EXPECT_GT(IdealRateBps(30.0, 20e6), IdealRateBps(10.0, 20e6));
}

class WifiFixture : public ::testing::Test {
 protected:
  WifiFixture() : env_(pathloss_, EnvConfig()) {}

  static RadioEnvironmentConfig EnvConfig() {
    RadioEnvironmentConfig c;
    c.carrier_freq_hz = 600e6;
    c.shadowing_sigma_db = 0.0;
    c.enable_fading = false;
    return c;
  }

  ApId AddApAt(Point p, WifiNetwork& net, double power = 30.0) {
    return net.AddAp(env_.AddNode({.position = p, .tx_power_dbm = power}));
  }
  // Paper Section 6.3.4: Wi-Fi runs with 30 dBm at both AP and client.
  StaId AddStaAt(Point p, WifiNetwork& net, double power = 30.0) {
    return net.AddSta(env_.AddNode({.position = p, .tx_power_dbm = power}));
  }

  HataUrbanPathLoss pathloss_;
  Simulator sim_;
  RadioEnvironment env_;
};

TEST_F(WifiFixture, SingleLinkDeliversTraffic) {
  WifiNetwork net(sim_, env_, WifiMacConfig{});
  const ApId ap = AddApAt({0, 0}, net);
  const StaId sta = AddStaAt({100, 0}, net);
  EXPECT_TRUE(net.sta_stats(sta).associated);
  net.OfferDownlink(sta, 4 << 20);
  net.Start();
  sim_.RunUntil(1 * kSecond);
  EXPECT_EQ(net.sta_stats(sta).delivered_bytes, 4u << 20);
  EXPECT_EQ(net.ap_stats(ap).collisions, 0u);
}

TEST_F(WifiFixture, FarStationUnassociated) {
  WifiNetwork net(sim_, env_, WifiMacConfig{});
  AddApAt({0, 0}, net);
  const StaId sta = AddStaAt({5000, 0}, net);
  EXPECT_FALSE(net.sta_stats(sta).associated);
  net.OfferDownlink(sta, 1 << 20);
  net.Start();
  sim_.RunUntil(500 * kMillisecond);
  EXPECT_EQ(net.sta_stats(sta).delivered_bytes, 0u);
}

TEST_F(WifiFixture, ThroughputDropsWithDistance) {
  WifiNetwork net(sim_, env_, WifiMacConfig{});
  AddApAt({0, 0}, net);
  const StaId near = AddStaAt({50, 0}, net);
  const StaId far = AddStaAt({400, 0}, net);
  net.OfferDownlink(near, 16 << 20);
  net.OfferDownlink(far, 16 << 20);
  net.Start();
  sim_.RunUntil(2 * kSecond);
  EXPECT_GT(net.sta_stats(near).delivered_bytes, net.sta_stats(far).delivered_bytes);
  EXPECT_GT(net.sta_stats(far).delivered_bytes, 0u);
}

TEST_F(WifiFixture, NeighbouringBssShareTheChannel) {
  // Two APs in carrier-sense range: CSMA serializes them; both make
  // progress and total utilization stays sane.
  WifiNetwork net(sim_, env_, WifiMacConfig{});
  const ApId a = AddApAt({0, 0}, net);
  const ApId b = AddApAt({200, 0}, net);
  const StaId sa = AddStaAt({0, 50}, net);
  const StaId sb = AddStaAt({200, 50}, net);
  ASSERT_EQ(net.sta_ap(sa), a);
  ASSERT_EQ(net.sta_ap(sb), b);
  net.OfferDownlink(sa, 64 << 20);
  net.OfferDownlink(sb, 64 << 20);
  net.Start();
  sim_.RunUntil(2 * kSecond);
  const auto da = net.sta_stats(sa).delivered_bytes;
  const auto db = net.sta_stats(sb).delivered_bytes;
  EXPECT_GT(da, 1u << 20);
  EXPECT_GT(db, 1u << 20);
  // Rough fairness between equal contenders.
  EXPECT_LT(static_cast<double>(std::max(da, db)) / static_cast<double>(std::min(da, db)),
            3.0);
}

TEST_F(WifiFixture, HiddenTerminalsCollideWithoutRtsCts) {
  // Two APs far apart (cannot sense each other) with stations in the
  // middle: classic hidden-terminal geometry.
  WifiMacConfig cfg;
  cfg.rts_cts = false;
  WifiNetwork net(sim_, env_, cfg);
  const ApId a = AddApAt({0, 0}, net);
  const ApId b = AddApAt({1400, 0}, net);
  const StaId sa = AddStaAt({650, 20}, net);
  const StaId sb = AddStaAt({750, -20}, net);
  ASSERT_EQ(net.sta_ap(sa), a);
  ASSERT_EQ(net.sta_ap(sb), b);
  net.OfferDownlink(sa, 64 << 20);
  net.OfferDownlink(sb, 64 << 20);
  net.Start();
  sim_.RunUntil(2 * kSecond);
  EXPECT_GT(net.ap_stats(a).collisions + net.ap_stats(b).collisions, 20u);
}

TEST_F(WifiFixture, RtsCtsReducesCollisionCost) {
  auto run = [&](bool rts) {
    Simulator sim;
    RadioEnvironment env(pathloss_, EnvConfig());
    WifiMacConfig cfg;
    cfg.rts_cts = rts;
    WifiNetwork net(sim, env, cfg, /*seed=*/3);
    const ApId a = net.AddAp(env.AddNode({.position = {0, 0}, .tx_power_dbm = 30.0}));
    const ApId b = net.AddAp(env.AddNode({.position = {1400, 0}, .tx_power_dbm = 30.0}));
    const StaId sa = net.AddSta(env.AddNode({.position = {650, 20}, .tx_power_dbm = 30.0}));
    const StaId sb = net.AddSta(env.AddNode({.position = {750, -20}, .tx_power_dbm = 30.0}));
    (void)a;
    (void)b;
    net.OfferDownlink(sa, 64 << 20);
    net.OfferDownlink(sb, 64 << 20);
    net.Start();
    sim.RunUntil(2 * kSecond);
    return net.sta_stats(sa).delivered_bytes + net.sta_stats(sb).delivered_bytes;
  };
  // With hidden terminals, RTS/CTS (NAV via the receiver + short collision
  // cost) must outperform plain CSMA. The paper enables RTS/CTS for the
  // same reason.
  EXPECT_GT(run(true), run(false));
}

TEST_F(WifiFixture, AggregationCapsAmpduAt64KB) {
  // Long TXOP so the byte cap (not the 4 ms duration cap) binds.
  WifiMacConfig cfg;
  cfg.max_tx_duration = 10 * kMillisecond;
  WifiNetwork net(sim_, env_, cfg);
  AddApAt({0, 0}, net);
  const StaId sta = AddStaAt({100, 0}, net);
  std::vector<std::uint64_t> deliveries;
  net.on_delivered = [&](StaId, std::uint64_t bytes, SimTime) {
    deliveries.push_back(bytes);
  };
  net.OfferDownlink(sta, 1 << 20);
  net.Start();
  sim_.RunUntil(1 * kSecond);
  ASSERT_FALSE(deliveries.empty());
  for (std::uint64_t d : deliveries) EXPECT_LE(d, 65'000u);
  EXPECT_EQ(deliveries[0], 65'000u);  // backlogged: full aggregation
}

TEST_F(WifiFixture, MaxTxDurationLimitsAmpduAtLowRate) {
  // At a low MCS over 6 MHz, the 4 ms TX cap fits only a few kilobytes.
  WifiMacConfig cfg;
  cfg.channel_width_hz = 6e6;
  WifiNetwork net(sim_, env_, cfg);
  AddApAt({0, 0}, net, 24.0);
  const StaId sta = AddStaAt({550, 0}, net);  // weak link -> low MCS
  ASSERT_TRUE(net.sta_stats(sta).associated);
  std::vector<std::uint64_t> deliveries;
  net.on_delivered = [&](StaId, std::uint64_t bytes, SimTime) {
    deliveries.push_back(bytes);
  };
  net.OfferDownlink(sta, 1 << 20);
  net.Start();
  sim_.RunUntil(1 * kSecond);
  ASSERT_FALSE(deliveries.empty());
  for (std::uint64_t d : deliveries) EXPECT_LE(d, 5000u);
}

}  // namespace
}  // namespace cellfi::wifi
