// Paper Fig. 5 / Section 5.4: the two canonical information-asymmetry
// cases of the distributed share calculation, reproduced end-to-end.
#include <gtest/gtest.h>

#include "cellfi/core/cellfi_controller.h"
#include "cellfi/radio/pathloss.h"

namespace cellfi::core {
namespace {

using lte::CellId;
using lte::UeId;

class AsymmetryFixture : public ::testing::Test {
 protected:
  AsymmetryFixture() : env_(pathloss_, EnvCfg()), net_(sim_, env_, NetCfg()) {}

  static RadioEnvironmentConfig EnvCfg() {
    RadioEnvironmentConfig c;
    c.carrier_freq_hz = 600e6;
    c.shadowing_sigma_db = 0.0;
    c.enable_fading = false;
    c.seed = 19;
    return c;
  }
  static lte::LteNetworkConfig NetCfg() {
    lte::LteNetworkConfig c;
    c.seed = 19;
    return c;
  }

  CellId AddCellAt(Point p) {
    lte::LteMacConfig mac;
    return net_.AddCell(mac, env_.AddNode({.position = p, .tx_power_dbm = 30.0}));
  }
  UeId AddUeAt(Point p, CellId home) {
    return net_.AddUe(env_.AddNode({.position = p, .tx_power_dbm = 20.0}), home);
  }

  HataUrbanPathLoss pathloss_;
  Simulator sim_;
  RadioEnvironment env_;
  lte::LteNetwork net_;
};

// Fig. 5(a) "incorrect share": eNodeB 1 cannot sense UE 2 (UE 2's PRACH is
// power-controlled toward its nearby serving cell), so eNodeB 1
// overestimates its own share. The paper's resolution: eNodeB 1's own
// client reports interference on the subchannels UE 2's cell uses, the
// scheduler routes around them, and the effective share becomes feasible —
// nobody starves.
TEST_F(AsymmetryFixture, IncorrectShareResolvedByScheduler) {
  const CellId enb1 = AddCellAt({0, 0});
  const CellId enb2 = AddCellAt({900, 0});
  // UE 1 between the cells (hears both); UE 2 tight against eNodeB 2:
  // eNodeB 1 never hears UE 2's preambles.
  const UeId ue1 = AddUeAt({420, 0}, enb1);
  const UeId ue2 = AddUeAt({930, 20}, enb2);

  CellfiControllerConfig cfg;
  cfg.seed = 23;
  CellfiController controller(sim_, net_, cfg);
  controller.Start();
  sim_.SchedulePeriodic(500 * kMillisecond, [&] {
    net_.OfferDownlink(ue1, 2 << 20);
    net_.OfferDownlink(ue2, 2 << 20);
  });
  net_.Start();
  sim_.RunUntil(15 * kSecond);

  // The asymmetry: eNodeB 2 hears both clients, eNodeB 1 only its own.
  EXPECT_EQ(controller.sensor(enb1).EstimateContenders(sim_.Now()), 1);
  EXPECT_EQ(controller.sensor(enb2).EstimateContenders(sim_.Now()), 2);
  // Hence eNodeB 1 claims everything (overestimate), eNodeB 2 claims half.
  EXPECT_EQ(controller.manager(enb1).owned_count(), 13);
  EXPECT_LE(controller.manager(enb2).owned_count(), 7);

  // Yet both clients get served: the schedulers adapt around the overlap.
  for (UeId ue : {ue1, ue2}) {
    const auto* ctx = net_.cell(net_.ue(ue).serving).FindUe(ue);
    ASSERT_NE(ctx, nullptr);
    EXPECT_GT(ctx->dl_delivered_bits, std::uint64_t{10} * 1000 * 1000) << "ue " << ue;
  }
}

// Fig. 5(b) "suboptimal share": eNodeB 2 serves three clients of its own
// plus the contested region; eNodeB 1, which could grab more spectrum
// (eNodeB 2 only needs a sliver), still reserves only its fair share
// because it cannot know how much eNodeB 2 actually uses. Conservative but
// stable.
TEST_F(AsymmetryFixture, SuboptimalShareStaysConservative) {
  const CellId enb1 = AddCellAt({0, 0});
  const CellId enb2 = AddCellAt({700, 0});
  // One client of eNodeB 1 in the contested middle; three clients of
  // eNodeB 2, all audible to both cells.
  const UeId u1 = AddUeAt({330, 20}, enb1);
  std::vector<UeId> others;
  others.push_back(AddUeAt({380, -20}, enb2));
  others.push_back(AddUeAt({420, 30}, enb2));
  others.push_back(AddUeAt({460, -30}, enb2));

  CellfiControllerConfig cfg;
  cfg.seed = 27;
  CellfiController controller(sim_, net_, cfg);
  controller.Start();
  sim_.SchedulePeriodic(500 * kMillisecond, [&] {
    net_.OfferDownlink(u1, 2 << 20);
    for (UeId ue : others) net_.OfferDownlink(ue, 2 << 20);
  });
  net_.Start();
  sim_.RunUntil(15 * kSecond);

  // eNodeB 1 hears all four contenders -> reserves ~1/4 of the band even
  // though more might be grabbable; that is the paper's point: it "could
  // increase his share ... but it only reserves his fair-share".
  EXPECT_EQ(controller.sensor(enb1).EstimateContenders(sim_.Now()), 4);
  const int share1 = controller.manager(enb1).owned_count();
  EXPECT_GE(share1, 1);
  EXPECT_LE(share1, 4);  // 1 * 13 / 4 = 3 (fair), never greedy
  // eNodeB 2 gets the complement for its three clients.
  EXPECT_GE(controller.manager(enb2).owned_count(), 7);
}

}  // namespace
}  // namespace cellfi::core
