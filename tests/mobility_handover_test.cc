// Mobility models, cache-correct node movement, and LTE handover.
#include <gtest/gtest.h>

#include "cellfi/lte/network.h"
#include "cellfi/radio/mobility.h"
#include "cellfi/radio/pathloss.h"

namespace cellfi {
namespace {

RadioEnvironmentConfig PlainEnv() {
  RadioEnvironmentConfig c;
  c.carrier_freq_hz = 600e6;
  c.shadowing_sigma_db = 0.0;
  c.enable_fading = false;
  return c;
}

TEST(MoveNodeTest, InvalidatesCachedGains) {
  FreeSpacePathLoss pl;
  RadioEnvironment env(pl, PlainEnv());
  const RadioNodeId a = env.AddNode({.position = {0, 0}, .tx_power_dbm = 30.0});
  const RadioNodeId b = env.AddNode({.position = {100, 0}});
  const double before = env.MeanRxPowerDbm(a, b);  // populates the cache
  env.MoveNode(b, {1000, 0});
  const double after = env.MeanRxPowerDbm(a, b);
  EXPECT_LT(after, before - 15.0);  // 10x distance = -20 dB free space
  EXPECT_DOUBLE_EQ(env.node(b).position.x, 1000.0);
}

TEST(LinearPathTest, ArrivesOnTime) {
  FreeSpacePathLoss pl;
  RadioEnvironment env(pl, PlainEnv());
  Simulator sim;
  const RadioNodeId n = env.AddNode({.position = {0, 0}});
  LinearPathMobility path(sim, env, n, {0, 0}, {100, 0}, /*speed=*/10.0);
  bool done = false;
  path.on_done = [&] { done = true; };
  path.Start();
  sim.RunUntil(5 * kSecond);
  EXPECT_FALSE(done);
  EXPECT_NEAR(env.node(n).position.x, 50.0, 2.0);
  sim.RunUntil(11 * kSecond);
  EXPECT_TRUE(done);
  EXPECT_DOUBLE_EQ(env.node(n).position.x, 100.0);
}

TEST(RandomWaypointTest, StaysInBoundsAndMoves) {
  FreeSpacePathLoss pl;
  RadioEnvironment env(pl, PlainEnv());
  Simulator sim;
  MobilityConfig cfg;
  cfg.area_min = 0.0;
  cfg.area_max = 500.0;
  cfg.min_speed_mps = 5.0;
  cfg.max_speed_mps = 10.0;
  cfg.pause_s = 0.1;
  RandomWaypointMobility mob(sim, env, cfg, 7);
  const RadioNodeId n = env.AddNode({.position = {250, 250}});
  int moves = 0;
  Point last{250, 250};
  double travelled = 0;
  mob.on_moved = [&](RadioNodeId, Point p) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 500.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 500.0);
    travelled += Distance(last, p);
    last = p;
    ++moves;
  };
  mob.Attach(n);
  sim.RunUntil(30 * kSecond);
  EXPECT_GT(moves, 100);
  EXPECT_GT(travelled, 100.0);
}

class HandoverFixture : public ::testing::Test {
 protected:
  HandoverFixture() : env_(pathloss_, PlainEnv()), net_(sim_, env_, NetCfg()) {}

  static lte::LteNetworkConfig NetCfg() {
    lte::LteNetworkConfig c;
    c.seed = 3;
    return c;
  }

  HataUrbanPathLoss pathloss_;
  Simulator sim_;
  RadioEnvironment env_;
  lte::LteNetwork net_;
};

TEST_F(HandoverFixture, WalkingUeHandsOverWithoutRlf) {
  lte::LteMacConfig mac;
  const auto c0 = net_.AddCell(mac, env_.AddNode({.position = {0, 0}, .tx_power_dbm = 30.0}));
  const auto c1 =
      net_.AddCell(mac, env_.AddNode({.position = {1200, 0}, .tx_power_dbm = 30.0}));
  const RadioNodeId walker = env_.AddNode({.position = {100, 0}, .tx_power_dbm = 20.0});
  const auto ue = net_.AddUe(walker);

  LinearPathMobility path(sim_, env_, walker, {100, 0}, {1100, 0}, /*speed=*/25.0);
  std::uint64_t delivered = 0;
  net_.on_dl_delivered = [&](lte::UeId, std::uint64_t bytes, SimTime) { delivered += bytes; };
  sim_.SchedulePeriodic(500 * kMillisecond, [&] { net_.OfferDownlink(ue, 1 << 20); });
  net_.Start();
  sim_.RunUntil(500 * kMillisecond);
  ASSERT_EQ(net_.ue(ue).serving, c0);
  path.Start();
  sim_.RunUntil(45 * kSecond);

  EXPECT_EQ(net_.ue(ue).serving, c1);          // roamed to the nearer cell
  EXPECT_GE(net_.ue(ue).handovers, 1u);
  EXPECT_EQ(net_.ue(ue).disconnections, 0u);   // seamless: no RLF on the way
  EXPECT_GT(delivered, 1u << 20);              // service continued throughout
}

TEST_F(HandoverFixture, HysteresisPreventsPingPong) {
  lte::LteMacConfig mac;
  net_.AddCell(mac, env_.AddNode({.position = {0, 0}, .tx_power_dbm = 30.0}));
  net_.AddCell(mac, env_.AddNode({.position = {600, 0}, .tx_power_dbm = 30.0}));
  // Exactly midway: neither neighbour ever exceeds serving + 3 dB.
  const auto ue = net_.AddUe(env_.AddNode({.position = {300, 0}, .tx_power_dbm = 20.0}));
  net_.Start();
  sim_.RunUntil(20 * kSecond);
  EXPECT_EQ(net_.ue(ue).handovers, 0u);
}

TEST_F(HandoverFixture, ForcedUeNeverHandsOver) {
  lte::LteMacConfig mac;
  const auto c0 = net_.AddCell(mac, env_.AddNode({.position = {0, 0}, .tx_power_dbm = 30.0}));
  net_.AddCell(mac, env_.AddNode({.position = {400, 0}, .tx_power_dbm = 30.0}));
  // Much closer to cell 1, but pinned to cell 0 (independent operators).
  const auto ue =
      net_.AddUe(env_.AddNode({.position = {350, 0}, .tx_power_dbm = 20.0}), c0);
  net_.Start();
  sim_.RunUntil(10 * kSecond);
  EXPECT_EQ(net_.ue(ue).serving, c0);
  EXPECT_EQ(net_.ue(ue).handovers, 0u);
}

TEST_F(HandoverFixture, QueueSurvivesHandover) {
  lte::LteMacConfig mac;
  const auto c0 = net_.AddCell(mac, env_.AddNode({.position = {0, 0}, .tx_power_dbm = 30.0}));
  const auto c1 =
      net_.AddCell(mac, env_.AddNode({.position = {800, 0}, .tx_power_dbm = 30.0}));
  const RadioNodeId walker = env_.AddNode({.position = {200, 0}, .tx_power_dbm = 20.0});
  const auto ue = net_.AddUe(walker);
  net_.Start();
  sim_.RunUntil(300 * kMillisecond);
  ASSERT_EQ(net_.ue(ue).serving, c0);
  // Big queue, then teleport next to the other cell: the handover must
  // forward the queued bytes.
  net_.OfferDownlink(ue, 4 << 20);
  const std::uint64_t queued = net_.cell(c0).FindUe(ue)->dl_queue_bytes();
  ASSERT_GT(queued, 0u);
  env_.MoveNode(walker, {790, 0});
  sim_.RunUntil(2 * kSecond);
  ASSERT_EQ(net_.ue(ue).serving, c1);
  const auto* ctx = net_.cell(c1).FindUe(ue);
  ASSERT_NE(ctx, nullptr);
  // Bytes are either still queued or already delivered; none vanished.
  EXPECT_GT(ctx->dl_delivered_bits / 8 + ctx->dl_queue_bytes(), queued / 2);
}

}  // namespace
}  // namespace cellfi
