// Tests for the parallel replication runner (scenario/sweep).
//
// The load-bearing property is the determinism contract: a replication's
// outcome depends only on its config and topology, never on the thread
// count or completion order. We check bit-identical results between a
// single-threaded and a 4-thread runner, exception isolation, seed
// derivation, and the env-var knobs.
#include <atomic>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include <gtest/gtest.h>

#include "cellfi/common/json.h"
#include "cellfi/scenario/report.h"
#include "cellfi/scenario/supervisor.h"
#include "cellfi/scenario/sweep.h"

namespace cellfi::scenario {
namespace {

ScenarioConfig SmallConfig(std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.tech = Technology::kCellFi;
  cfg.workload = WorkloadKind::kBacklogged;
  cfg.topology.area_m = 800.0;
  cfg.topology.num_aps = 2;
  cfg.topology.clients_per_ap = 2;
  cfg.warmup = 100 * kMillisecond;
  cfg.duration = 1 * kSecond;
  cfg.seed = seed;
  return cfg;
}

std::vector<Replication> SmallJobs() {
  std::vector<Replication> jobs;
  for (int rep = 0; rep < 4; ++rep) {
    jobs.push_back(Replication{SmallConfig(100 + static_cast<std::uint64_t>(rep)),
                               nullptr, 0, rep, {}});
  }
  return jobs;
}

TEST(SweepSeedTest, DeterministicAndDistinct) {
  EXPECT_EQ(SweepSeed(1, 2, 3), SweepSeed(1, 2, 3));
  EXPECT_NE(SweepSeed(1, 2, 3), SweepSeed(1, 2, 4));
  EXPECT_NE(SweepSeed(1, 2, 3), SweepSeed(1, 3, 3));
  EXPECT_NE(SweepSeed(1, 2, 3), SweepSeed(2, 2, 3));
  // Nearby (point, rep) pairs must not collide the way additive schemes do
  // (base + point + rep would alias (2,3) with (3,2)).
  EXPECT_NE(SweepSeed(1, 2, 3), SweepSeed(1, 3, 2));
}

TEST(SweepRunnerTest, ResultsIndependentOfThreadCount) {
  const auto jobs = SmallJobs();

  SweepOptions seq;
  seq.threads = 1;
  const auto a = SweepRunner(seq).Run(jobs);

  SweepOptions par;
  par.threads = 4;
  const auto b = SweepRunner(par).Run(jobs);

  ASSERT_EQ(a.size(), jobs.size());
  ASSERT_EQ(b.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    // Outcomes come back in job order regardless of completion order.
    EXPECT_EQ(a[i].rep, jobs[i].rep);
    EXPECT_EQ(b[i].rep, jobs[i].rep);
    EXPECT_EQ(a[i].error, nullptr);
    EXPECT_EQ(b[i].error, nullptr);
    // Bit-identical, not approximately equal: the contract is that thread
    // count never changes results.
    EXPECT_EQ(a[i].result.fraction_connected, b[i].result.fraction_connected);
    EXPECT_EQ(a[i].result.fraction_starved, b[i].result.fraction_starved);
    EXPECT_EQ(a[i].result.total_throughput_bps, b[i].result.total_throughput_bps);
    ASSERT_EQ(a[i].result.clients.size(), b[i].result.clients.size());
    for (std::size_t c = 0; c < a[i].result.clients.size(); ++c) {
      EXPECT_EQ(a[i].result.clients[c].throughput_bps,
                b[i].result.clients[c].throughput_bps);
    }
  }
}

TEST(SweepRunnerTest, ExceptionInOneReplicationDoesNotPoisonOthers) {
  const auto jobs = SmallJobs();
  std::atomic<int> bodies_run{0};

  SweepOptions opts;
  opts.threads = 2;
  SweepRunner runner(opts);
  const auto outcomes = runner.Run(jobs, [&](const Replication& job) {
    bodies_run.fetch_add(1);
    if (job.rep == 1) throw std::runtime_error("injected failure in rep 1");
    ScenarioResult r;
    r.fraction_connected = 1.0;
    return r;
  });

  // Every replication ran despite the failure in rep 1.
  EXPECT_EQ(bodies_run.load(), 4);
  ASSERT_EQ(outcomes.size(), jobs.size());
  for (const auto& out : outcomes) {
    if (out.rep == 1) {
      EXPECT_NE(out.error, nullptr);
    } else {
      EXPECT_EQ(out.error, nullptr);
      EXPECT_EQ(out.result.fraction_connected, 1.0);
    }
  }
  EXPECT_THROW(ThrowIfFailed(outcomes), std::runtime_error);
}

TEST(SweepRunnerTest, RunTasksRethrowsFirstFailureByIndex) {
  SweepOptions opts;
  opts.threads = 3;
  SweepRunner runner(opts);
  std::atomic<int> done{0};
  try {
    runner.RunTasks(8, [&](std::size_t i) {
      if (i == 2 || i == 5) throw std::runtime_error("task " + std::to_string(i));
      done.fetch_add(1);
    });
    FAIL() << "RunTasks should rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 2");
  }
  // The batch drains fully before the rethrow.
  EXPECT_EQ(done.load(), 6);
}

TEST(SweepRunnerTest, PointSummaryFiltersByPoint) {
  std::vector<ReplicationOutcome> outcomes(4);
  for (int i = 0; i < 4; ++i) {
    outcomes[static_cast<std::size_t>(i)].point = i % 2;
    outcomes[static_cast<std::size_t>(i)].result.fraction_connected = 0.25 * i;
  }
  const Summary s = PointSummary(outcomes, 1, [](const ScenarioResult& r) {
    return r.fraction_connected;
  });
  EXPECT_EQ(s.count(), 2u);
  EXPECT_DOUBLE_EQ(s.mean(), (0.25 + 0.75) / 2.0);
}

TEST(SweepEnvTest, ResolveThreadsAndRepsHonourEnv) {
  ::setenv("CELLFI_BENCH_THREADS", "3", 1);
  ::setenv("CELLFI_BENCH_REPS", "7", 1);
  EXPECT_EQ(ResolveThreads(0), 3);
  EXPECT_EQ(ResolveReps(20), 7);
  // An explicit request beats the env var.
  EXPECT_EQ(ResolveThreads(2), 2);
  ::unsetenv("CELLFI_BENCH_THREADS");
  ::unsetenv("CELLFI_BENCH_REPS");
  EXPECT_GE(ResolveThreads(0), 1);
  EXPECT_EQ(ResolveReps(20), 20);
}

// Observer-effect test (DESIGN.md §13): instrumentation is strictly
// passive, so running the identical replication set with tracing+metrics
// enabled must reproduce every report byte — under both the sequential
// and the multi-threaded runner (per-replication thread-local sinks).
TEST(ObserverEffectTest, TracingLeavesReportsBitIdentical) {
  auto jobs_with_obs = [](bool enabled) {
    auto jobs = SmallJobs();
    for (auto& job : jobs) job.config.obs.enabled = enabled;
    return jobs;
  };
  for (int threads : {1, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    SweepOptions opts;
    opts.threads = threads;
    const auto off = SweepRunner(opts).Run(jobs_with_obs(false));
    const auto on = SweepRunner(opts).Run(jobs_with_obs(true));
    ASSERT_EQ(off.size(), on.size());
    for (std::size_t i = 0; i < off.size(); ++i) {
      ASSERT_EQ(off[i].error, nullptr);
      ASSERT_EQ(on[i].error, nullptr);
      // Byte-compare the serialized reports, not individual fields: any
      // observer effect anywhere in the result surfaces here.
      EXPECT_EQ(ResultToJson(off[i].result).Dump(),
                ResultToJson(on[i].result).Dump());
      // The traced run really did observe something...
      ASSERT_NE(on[i].result.trace, nullptr);
      EXPECT_GT(on[i].result.trace->emitted(), 0u);
      ASSERT_NE(on[i].result.metrics, nullptr);
      EXPECT_GT(on[i].result.metrics->size(), 0u);
      // ...and the untraced run carried no observability state at all.
      EXPECT_EQ(off[i].result.trace, nullptr);
      EXPECT_EQ(off[i].result.metrics, nullptr);
    }
  }
}

TEST(BenchReportTest, WritesValidArtifact) {
  ::setenv("CELLFI_BENCH_OUT", ::testing::TempDir().c_str(), 1);
  BenchReport report("sweep_test", 2, 3);
  std::vector<ReplicationOutcome> outcomes(2);
  outcomes[0].point = 0;
  outcomes[0].wall_seconds = 0.5;
  outcomes[0].sim_seconds = 10.0;
  outcomes[1].point = 0;
  outcomes[1].wall_seconds = 0.25;
  outcomes[1].sim_seconds = 10.0;
  report.AddPoint("p0", outcomes, 0);
  const std::string path = report.Write();
  ::unsetenv("CELLFI_BENCH_OUT");

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream body;
  body << in.rdbuf();
  const auto parsed = json::Parse(body.str());
  ASSERT_TRUE(parsed.has_value());
  json::Value doc = *parsed;
  EXPECT_EQ(doc["bench"].as_string(), "sweep_test");
  EXPECT_EQ(doc["threads"].as_int(), 2);
  ASSERT_EQ(doc["points"].as_array().size(), 1u);
  json::Value p0 = doc["points"].as_array()[0];
  EXPECT_EQ(p0["label"].as_string(), "p0");
  EXPECT_DOUBLE_EQ(p0["wall_s"].as_number(), 0.75);
  EXPECT_DOUBLE_EQ(p0["sim_s"].as_number(), 20.0);
}

// Regression: failure records used to carry only the seed and the exception
// text. In a multi-scenario sweep that left the reader reverse-engineering
// which scenario died from the seed alone — Replication::label must survive
// into the plain runner's BENCH_* failure entries, the supervisor's
// FailureRecord, and FailuresToJson.
TEST(FailureRecordTest, LabelIdentifiesTheFailingScenario) {
  auto jobs = SmallJobs();
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].label = "scenario-" + std::to_string(i);
  }
  const ReplicationBody body = [](const Replication& job) -> ScenarioResult {
    if (job.rep == 2) throw std::runtime_error("died mid-epoch");
    return ScenarioResult{};
  };

  // Plain runner path: the label rides the outcome into the artifact.
  SweepOptions opts;
  opts.threads = 2;
  const auto outcomes = SweepRunner(opts).Run(jobs, body);
  ASSERT_EQ(outcomes.size(), 4u);
  EXPECT_EQ(outcomes[0].label, "scenario-0");
  EXPECT_EQ(outcomes[2].label, "scenario-2");
  ASSERT_NE(outcomes[2].error, nullptr);

  ::setenv("CELLFI_BENCH_OUT", ::testing::TempDir().c_str(), 1);
  BenchReport report("label_test", 2, 4);
  report.AddPoint("p0", outcomes, 0);
  const std::string path = report.Write();
  ::unsetenv("CELLFI_BENCH_OUT");
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream artifact;
  artifact << in.rdbuf();
  const auto parsed = json::Parse(artifact.str());
  ASSERT_TRUE(parsed.has_value());
  json::Value doc = *parsed;
  ASSERT_EQ(doc["points"].as_array().size(), 1u);
  json::Value p0 = doc["points"].as_array()[0];
  ASSERT_EQ(p0["failures"].as_array().size(), 1u);
  json::Value failure = p0["failures"].as_array()[0];
  EXPECT_EQ(failure["rep"].as_int(), 2);
  EXPECT_EQ(failure["label"].as_string(), "scenario-2");
  EXPECT_EQ(failure["error"].as_string(), "died mid-epoch");

  // Supervised path: the FailureRecord and its JSON form carry the label.
  SupervisorOptions sup_opts;
  sup_opts.threads = 2;
  sup_opts.max_attempts = 1;
  SweepSupervisor supervisor(sup_opts);
  const auto supervised = supervisor.Run(jobs, body);
  ASSERT_EQ(supervised.size(), 4u);
  EXPECT_EQ(supervised[1].label, "scenario-1");
  ASSERT_EQ(supervisor.failures().size(), 1u);
  EXPECT_EQ(supervisor.failures()[0].rep, 2);
  EXPECT_EQ(supervisor.failures()[0].label, "scenario-2");
  json::Value failures_doc = supervisor.FailuresToJson();
  ASSERT_EQ(failures_doc["failures"].as_array().size(), 1u);
  json::Value record = failures_doc["failures"].as_array()[0];
  EXPECT_EQ(record["label"].as_string(), "scenario-2");
  EXPECT_EQ(record["error"].as_string(), "died mid-epoch");
}

}  // namespace
}  // namespace cellfi::scenario
