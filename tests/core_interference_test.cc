#include <gtest/gtest.h>

#include "cellfi/core/cqi_detector.h"
#include "cellfi/core/interference_manager.h"
#include "cellfi/core/prach_sensor.h"

namespace cellfi::core {
namespace {

TEST(PrachSensorTest, CountsDistinctRecentClients) {
  PrachSensor sensor(/*self=*/0);
  sensor.OnPreamble(10, 0, 0);
  sensor.OnPreamble(11, 0, 0);
  sensor.OnPreamble(20, 1, 0);
  EXPECT_EQ(sensor.EstimateContenders(100 * kMillisecond), 3);
  EXPECT_EQ(sensor.OwnActive(100 * kMillisecond), 2);
}

TEST(PrachSensorTest, EstimatesExpireAfterOneSecond) {
  PrachSensor sensor(0);
  sensor.OnPreamble(10, 0, 0);
  sensor.OnPreamble(20, 1, 500 * kMillisecond);
  EXPECT_EQ(sensor.EstimateContenders(900 * kMillisecond), 2);
  EXPECT_EQ(sensor.EstimateContenders(1100 * kMillisecond), 1);  // 10 expired
  EXPECT_EQ(sensor.EstimateContenders(2 * kSecond), 0);
}

TEST(PrachSensorTest, RepeatedPreambleRefreshes) {
  PrachSensor sensor(0);
  sensor.OnPreamble(10, 0, 0);
  sensor.OnPreamble(10, 0, 900 * kMillisecond);
  EXPECT_EQ(sensor.EstimateContenders(1500 * kMillisecond), 1);
}

TEST(CqiDetectorTest, TriggersAfterTenConsecutiveLowSamples) {
  CqiInterferenceDetector det(2);
  // Establish a max of 10 on both subchannels.
  for (int i = 0; i < 20; ++i) det.AddReport({10, 10});
  EXPECT_FALSE(det.Detected(0));
  // Subchannel 0 drops below 60 % of max (10 * 0.6 = 6 -> 5 is low).
  for (int i = 0; i < 9; ++i) det.AddReport({5, 10});
  EXPECT_FALSE(det.Detected(0)) << "9 samples must not trigger";
  det.AddReport({5, 10});
  EXPECT_TRUE(det.Detected(0));
  EXPECT_FALSE(det.Detected(1));
}

TEST(CqiDetectorTest, RecoveryResetsStreak) {
  CqiInterferenceDetector det(1);
  for (int i = 0; i < 20; ++i) det.AddReport({10});
  for (int i = 0; i < 9; ++i) det.AddReport({4});
  det.AddReport({10});  // interference gone for one sample
  for (int i = 0; i < 9; ++i) det.AddReport({4});
  EXPECT_FALSE(det.Detected(0));
}

TEST(CqiDetectorTest, BorderlineCqiDoesNotTrigger) {
  // CQI exactly at 60 % of max is "good" (strictly below triggers).
  CqiInterferenceDetector det(1);
  for (int i = 0; i < 20; ++i) det.AddReport({10});
  for (int i = 0; i < 50; ++i) det.AddReport({6});
  EXPECT_FALSE(det.Detected(0));
}

TEST(CqiDetectorTest, MaxTracksWindow) {
  CqiInterferenceDetector det(1, {.ratio = 0.6, .consecutive = 10, .max_window = 5});
  det.AddReport({15});
  for (int i = 0; i < 10; ++i) det.AddReport({7});
  // 15 slid out of the 5-sample window; max is now 7, so 7 is not "low".
  EXPECT_EQ(det.MaxCqi(0), 7);
  EXPECT_FALSE(det.Detected(0));
}

InterferenceManagerConfig ImConfig(int subchannels = 13) {
  InterferenceManagerConfig cfg;
  cfg.num_subchannels = subchannels;
  return cfg;
}

EpochInputs QuietInputs(int subchannels, int own, int contenders) {
  EpochInputs in;
  in.own_active_clients = own;
  in.estimated_contenders = contenders;
  in.utility.assign(static_cast<std::size_t>(subchannels), 1.0);
  in.interference_pressure.assign(static_cast<std::size_t>(subchannels), 0.0);
  in.free_for_reuse.assign(static_cast<std::size_t>(subchannels), false);
  return in;
}

TEST(InterferenceManagerTest, TargetShareFormula) {
  InterferenceManager im(ImConfig(13), 1);
  // S_i = N_i * S / NP_i (paper Section 5.2).
  EXPECT_EQ(im.TargetShare(6, 12), 6);    // 6 * 13 / 12 = 6.5 -> 6
  EXPECT_EQ(im.TargetShare(6, 6), 13);    // alone: everything
  EXPECT_EQ(im.TargetShare(1, 13), 1);
  EXPECT_EQ(im.TargetShare(1, 26), 1);    // never below 1 with clients
  EXPECT_EQ(im.TargetShare(0, 10), 0);    // no clients: nothing
  EXPECT_EQ(im.TargetShare(4, 2), 13);    // contenders clamped to >= own
}

TEST(InterferenceManagerTest, GrowsToShareWhenQuiet) {
  InterferenceManager im(ImConfig(13), 2);
  const auto& mask = im.OnEpoch(QuietInputs(13, 3, 6));
  EXPECT_EQ(im.owned_count(), 6);  // 3 * 13 / 6 = 6.5 -> 6
  EXPECT_EQ(static_cast<int>(mask.size()), 13);
}

TEST(InterferenceManagerTest, ShrinksWhenContendersAppear) {
  InterferenceManager im(ImConfig(13), 3);
  im.OnEpoch(QuietInputs(13, 6, 6));
  EXPECT_EQ(im.owned_count(), 13);
  im.OnEpoch(QuietInputs(13, 6, 12));
  EXPECT_EQ(im.owned_count(), 6);
  EXPECT_EQ(im.last_stats().shrank, 7);
}

TEST(InterferenceManagerTest, StableWithoutInterference) {
  InterferenceManager im(ImConfig(13), 4);
  im.OnEpoch(QuietInputs(13, 2, 4));
  const auto mask_before = im.mask();
  for (int e = 0; e < 50; ++e) im.OnEpoch(QuietInputs(13, 2, 4));
  EXPECT_EQ(im.mask(), mask_before);  // no interference -> no hopping
  EXPECT_EQ(im.total_hops(), 0u);
}

TEST(InterferenceManagerTest, BucketPressureCausesHop) {
  InterferenceManager im(ImConfig(4), 5);
  auto in = QuietInputs(4, 1, 2);  // share = 2
  im.OnEpoch(in);
  ASSERT_EQ(im.owned_count(), 2);
  // Find an owned subchannel and press on it hard.
  int victim = -1;
  for (int s = 0; s < 4; ++s) {
    if (im.mask()[static_cast<std::size_t>(s)]) {
      victim = s;
      break;
    }
  }
  int epochs = 0;
  while (im.mask()[static_cast<std::size_t>(victim)] && epochs < 200) {
    in.interference_pressure.assign(4, 0.0);
    in.interference_pressure[static_cast<std::size_t>(victim)] = 1.0;
    im.OnEpoch(in);
    ++epochs;
  }
  EXPECT_FALSE(im.mask()[static_cast<std::size_t>(victim)]) << "never hopped away";
  EXPECT_GE(im.total_hops(), 1u);
  EXPECT_EQ(im.owned_count(), 2);  // hopped, not shrank
  // Exponential bucket with mean 10 drains at 1/epoch: expect ~10 epochs.
  EXPECT_LT(epochs, 100);
}

TEST(InterferenceManagerTest, HopTargetsMaxUtility) {
  InterferenceManager im(ImConfig(4), 6);
  auto in = QuietInputs(4, 1, 4);  // share = 1
  in.utility = {0.1, 0.1, 0.1, 0.1};
  im.OnEpoch(in);
  int owned = -1;
  for (int s = 0; s < 4; ++s) {
    if (im.mask()[static_cast<std::size_t>(s)]) owned = s;
  }
  // Make a specific other subchannel clearly best and drain the bucket.
  const int target = (owned + 1) % 4;
  in.utility[static_cast<std::size_t>(target)] = 5.0;
  for (int e = 0; e < 100 && im.mask()[static_cast<std::size_t>(owned)]; ++e) {
    in.interference_pressure.assign(4, 0.0);
    in.interference_pressure[static_cast<std::size_t>(owned)] = 2.0;
    im.OnEpoch(in);
  }
  EXPECT_TRUE(im.mask()[static_cast<std::size_t>(target)]);
}

TEST(InterferenceManagerTest, ReusePacksTowardLowerIndex) {
  InterferenceManager im(ImConfig(6), 7);
  auto in = QuietInputs(6, 1, 6);  // share = 1
  im.OnEpoch(in);
  // Force ownership away from subchannel 0 first.
  for (int e = 0; e < 100 && im.mask()[0]; ++e) {
    in.interference_pressure.assign(6, 0.0);
    in.interference_pressure[0] = 2.0;
    in.utility = {0.0, 0.0, 0.0, 0.0, 0.0, 1.0};
    im.OnEpoch(in);
  }
  ASSERT_FALSE(im.mask()[0]);
  // Now subchannel 0 is free for re-use: the AP should pack down onto it.
  in = QuietInputs(6, 1, 6);
  in.free_for_reuse[0] = true;
  im.OnEpoch(in);
  EXPECT_TRUE(im.mask()[0]);
  EXPECT_EQ(im.owned_count(), 1);
  EXPECT_GE(im.last_stats().reuse_moves, 1);
}

TEST(InterferenceManagerTest, ReuseDisabledByConfig) {
  auto cfg = ImConfig(6);
  cfg.enable_reuse = false;
  InterferenceManager im(cfg, 8);
  auto in = QuietInputs(6, 1, 6);
  in.free_for_reuse.assign(6, true);
  im.OnEpoch(in);
  const auto mask = im.mask();
  im.OnEpoch(in);
  EXPECT_EQ(im.mask(), mask);
  EXPECT_EQ(im.last_stats().reuse_moves, 0);
}

TEST(InterferenceManagerTest, NoClientsMeansEmptyMask) {
  InterferenceManager im(ImConfig(13), 9);
  const auto& mask = im.OnEpoch(QuietInputs(13, 0, 5));
  for (bool b : mask) EXPECT_FALSE(b);
}

// Two managers contending for the same spectrum via simulated cross
// detection: each sees pressure exactly on the overlap. They must converge
// to disjoint masks.
TEST(InterferenceManagerTest, TwoContendersConvergeToDisjointMasks) {
  const int s_total = 13;
  InterferenceManager a(ImConfig(s_total), 10);
  InterferenceManager b(ImConfig(s_total), 11);
  auto in_a = QuietInputs(s_total, 3, 6);  // each entitled to half
  auto in_b = QuietInputs(s_total, 3, 6);

  int epochs_to_converge = -1;
  for (int e = 0; e < 100; ++e) {
    // Cross interference: overlap drains both sides' buckets.
    in_a.interference_pressure.assign(s_total, 0.0);
    in_b.interference_pressure.assign(s_total, 0.0);
    for (int s = 0; s < s_total; ++s) {
      if (a.mask()[static_cast<std::size_t>(s)] && b.mask()[static_cast<std::size_t>(s)]) {
        in_a.interference_pressure[static_cast<std::size_t>(s)] = 1.0;
        in_b.interference_pressure[static_cast<std::size_t>(s)] = 1.0;
      }
    }
    a.OnEpoch(in_a);
    b.OnEpoch(in_b);
    bool overlap = false;
    for (int s = 0; s < s_total; ++s) {
      overlap |= a.mask()[static_cast<std::size_t>(s)] && b.mask()[static_cast<std::size_t>(s)];
    }
    if (!overlap && epochs_to_converge < 0) epochs_to_converge = e;
    if (!overlap) break;
  }
  ASSERT_GE(epochs_to_converge, 0) << "never converged";
  EXPECT_EQ(a.owned_count(), 6);
  EXPECT_EQ(b.owned_count(), 6);
  EXPECT_LT(epochs_to_converge, 60);
}

}  // namespace
}  // namespace cellfi::core
