// Channel aggregation (paper Section 7 extension): leasing multiple
// contiguous TV channels for a wider LTE carrier.
#include <gtest/gtest.h>

#include "cellfi/core/channel_selector.h"

namespace cellfi::core {
namespace {

using tvws::Incumbent;
using tvws::PawsClient;
using tvws::PawsServer;
using tvws::Regulatory;
using tvws::SpectrumDatabase;

const GeoLocation kHere{.latitude = 47.64, .longitude = -122.13};

class AggregationFixture : public ::testing::Test {
 protected:
  AggregationFixture()
      : server_(db_), transport_(sim_, server_),
        client_({.serial_number = "agg-ap"}, Regulatory::kUs),
        session_(sim_, client_, transport_) {}

  void BlockAllExcept(const std::vector<int>& keep) {
    for (int ch = 14; ch <= 51; ++ch) {
      if (std::find(keep.begin(), keep.end(), ch) != keep.end()) continue;
      db_.AddIncumbent({.id = "b" + std::to_string(ch), .channel = ch,
                        .location = kHere, .protection_radius_m = 10'000.0});
    }
  }

  ChannelSelector Make(int max_channels, const NetworkListenScanner& scanner) {
    ChannelSelectorConfig cfg;
    cfg.location = kHere;
    cfg.max_aggregated_channels = max_channels;
    return ChannelSelector(sim_, session_, scanner, cfg);
  }

  Simulator sim_;
  SpectrumDatabase db_;
  PawsServer server_;
  tvws::InProcessTransport transport_;
  PawsClient client_;
  tvws::PawsSession session_;
  QuietScanner quiet_;
};

TEST_F(AggregationFixture, AggregatesContiguousChannels) {
  BlockAllExcept({20, 21, 22, 30});
  auto sel = Make(2, quiet_);
  sel.Start();
  sim_.RunUntil(200 * kSecond);
  ASSERT_EQ(sel.state(), ApRadioState::kOn);
  ASSERT_EQ(sel.current_channels().size(), 2u);
  const int a = sel.current_channels()[0].channel.number;
  const int b = sel.current_channels()[1].channel.number;
  EXPECT_EQ(std::abs(a - b), 1);  // contiguous
  EXPECT_DOUBLE_EQ(sel.AggregatedBandwidthHz(), 12e6);  // two US channels
}

TEST_F(AggregationFixture, CapsAtConfiguredMaximum) {
  BlockAllExcept({20, 21, 22, 23, 24, 25});
  auto sel = Make(3, quiet_);
  sel.Start();
  sim_.RunUntil(200 * kSecond);
  EXPECT_EQ(sel.current_channels().size(), 3u);
}

TEST_F(AggregationFixture, FallsBackToSingleWhenNoNeighbourFree) {
  BlockAllExcept({20, 30, 40});  // nothing contiguous
  auto sel = Make(4, quiet_);
  sel.Start();
  sim_.RunUntil(200 * kSecond);
  ASSERT_EQ(sel.state(), ApRadioState::kOn);
  EXPECT_EQ(sel.current_channels().size(), 1u);
  EXPECT_DOUBLE_EQ(sel.AggregatedBandwidthHz(), 6e6);
}

TEST_F(AggregationFixture, DefaultIsSingleChannel) {
  auto sel = Make(1, quiet_);
  sel.Start();
  sim_.RunUntil(200 * kSecond);
  EXPECT_EQ(sel.current_channels().size(), 1u);
}

TEST_F(AggregationFixture, LosingSecondaryVacatesBlock) {
  BlockAllExcept({20, 21});
  auto sel = Make(2, quiet_);
  sel.Start();
  sim_.RunUntil(200 * kSecond);
  ASSERT_EQ(sel.current_channels().size(), 2u);
  const int secondary = sel.current_channels()[1].channel.number;
  db_.AddIncumbent({.id = "mic", .channel = secondary, .location = kHere,
                    .protection_radius_m = 10'000.0});
  sim_.RunUntil(210 * kSecond);
  // Conservative compliance: the whole block goes down, then the AP
  // reacquires whatever remains (the single surviving channel).
  EXPECT_TRUE(sel.current_channels().empty() || sel.current_channels().size() == 1u);
}

TEST_F(AggregationFixture, PowerCapIsMostRestrictive) {
  BlockAllExcept({20, 21});
  auto sel = Make(2, quiet_);
  sel.Start();
  sim_.RunUntil(200 * kSecond);
  ASSERT_EQ(sel.current_channels().size(), 2u);
  EXPECT_DOUBLE_EQ(sel.MaxPowerDbm(), 36.0);  // DB default for fixed devices
}

class BusyNeighbourScanner final : public NetworkListenScanner {
 public:
  double OccupancyScore(int channel) const override { return channel == 21 ? 0.9 : 0.0; }
  bool IsCellFiOccupied(int) const override { return false; }
};

TEST_F(AggregationFixture, SkipsBusySecondary) {
  BlockAllExcept({20, 21, 22});
  BusyNeighbourScanner scanner;
  auto sel = Make(2, scanner);
  sel.Start();
  sim_.RunUntil(200 * kSecond);
  ASSERT_EQ(sel.state(), ApRadioState::kOn);
  for (const auto& a : sel.current_channels()) {
    EXPECT_NE(a.channel.number, 21) << "must not aggregate a busy channel";
  }
}

}  // namespace
}  // namespace cellfi::core
