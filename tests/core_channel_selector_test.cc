#include "cellfi/core/channel_selector.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace cellfi::core {
namespace {

using tvws::DatabaseConfig;
using tvws::Incumbent;
using tvws::PawsClient;
using tvws::PawsServer;
using tvws::Regulatory;
using tvws::SpectrumDatabase;

const GeoLocation kHere{.latitude = 47.64, .longitude = -122.13};

SimTime TimeOf(const std::vector<TimelineEvent>& tl, const std::string& what,
               int occurrence = 0) {
  int seen = 0;
  for (const auto& e : tl) {
    if (e.what == what && seen++ == occurrence) return e.time;
  }
  return -1;
}

class SelectorFixture : public ::testing::Test {
 protected:
  SelectorFixture()
      : server_(db_), transport_(sim_, server_),
        client_({.serial_number = "ap"}, Regulatory::kUs),
        session_(sim_, client_, transport_) {}

  ChannelSelector MakeSelector(const NetworkListenScanner& scanner,
                               ChannelSelectorConfig cfg = {}) {
    cfg.location = kHere;
    return ChannelSelector(sim_, session_, scanner, cfg);
  }

  Simulator sim_;
  SpectrumDatabase db_;
  PawsServer server_;
  tvws::InProcessTransport transport_;
  PawsClient client_;
  tvws::PawsSession session_;
  QuietScanner quiet_;
};

TEST_F(SelectorFixture, AcquiresChannelAfterReboot) {
  auto sel = MakeSelector(quiet_);
  sel.Start();
  sim_.RunUntil(200 * kSecond);
  EXPECT_EQ(sel.state(), ApRadioState::kOn);
  ASSERT_TRUE(sel.current_channel().has_value());
  // Reboot takes 96 s from t = 0.
  EXPECT_EQ(TimeOf(sel.timeline(), "ap_on"), 96 * kSecond);
  // Clients reconnect 56 s later.
  EXPECT_EQ(TimeOf(sel.timeline(), "client_connected"), (96 + 56) * kSecond);
  EXPECT_TRUE(sel.clients_connected());
}

TEST_F(SelectorFixture, VacatesWithinEtsiBudgetOnLeaseLoss) {
  auto sel = MakeSelector(quiet_);
  sel.Start();
  sim_.RunUntil(200 * kSecond);
  ASSERT_EQ(sel.state(), ApRadioState::kOn);
  const int used = sel.current_channel()->channel.number;

  // Remove the channel from the database at t = 300 s (Fig. 6 scenario).
  sim_.ScheduleAt(300 * kSecond, [&] {
    db_.AddIncumbent({.id = "mic", .channel = used, .location = kHere,
                      .protection_radius_m = 10'000.0});
  });
  // Block all other channels too so the AP cannot simply retune.
  for (int ch = 14; ch <= 51; ++ch) {
    if (ch == used) continue;
    db_.AddIncumbent({.id = "blk" + std::to_string(ch), .channel = ch,
                      .location = kHere, .protection_radius_m = 10'000.0});
  }

  sim_.RunUntil(400 * kSecond);
  EXPECT_EQ(sel.state(), ApRadioState::kOff);
  const SimTime off_at = TimeOf(sel.timeline(), "ap_off");
  ASSERT_GT(off_at, 300 * kSecond);
  // ETSI EN 301 598: stop within 60 s. Testbed measured ~2 s.
  EXPECT_LE(off_at - 300 * kSecond, 60 * kSecond);
  EXPECT_LE(off_at - 300 * kSecond, 3 * kSecond);
  // Clients stop when the AP stops (grants cease).
  EXPECT_FALSE(sel.clients_connected());
  EXPECT_GE(TimeOf(sel.timeline(), "client_stopped"), off_at - kSecond);
}

TEST_F(SelectorFixture, ReacquiresAfterChannelRestored) {
  auto sel = MakeSelector(quiet_);
  sel.Start();
  sim_.RunUntil(200 * kSecond);
  const int used = sel.current_channel()->channel.number;
  for (int ch = 14; ch <= 51; ++ch) {
    db_.AddIncumbent({.id = "b" + std::to_string(ch), .channel = ch, .location = kHere,
                      .protection_radius_m = 10'000.0, .start = 300 * kSecond,
                      .stop = 600 * kSecond});
  }
  sim_.RunUntil(1000 * kSecond);
  EXPECT_EQ(sel.state(), ApRadioState::kOn);
  // The AP reboots once the channel returns at 600 s: on-air ~696 s,
  // clients ~752 s.
  const SimTime on_again = TimeOf(sel.timeline(), "ap_on", 1);
  EXPECT_GE(on_again, 600 * kSecond + 96 * kSecond);
  EXPECT_LE(on_again, 600 * kSecond + 96 * kSecond + 2 * kSecond);
  EXPECT_EQ(TimeOf(sel.timeline(), "client_connected", 1), on_again + 56 * kSecond);
  (void)used;
}

class ScriptedScanner final : public NetworkListenScanner {
 public:
  double OccupancyScore(int channel) const override {
    if (channel == 14) return 0.9;  // busy, non-CellFi
    if (channel == 15) return 0.5;  // busy, CellFi
    return 0.0;                     // idle
  }
  bool IsCellFiOccupied(int channel) const override { return channel == 15; }
};

TEST_F(SelectorFixture, PrefersIdleChannel) {
  ScriptedScanner scanner;
  auto sel = MakeSelector(scanner);
  sel.Start();
  sim_.RunUntil(200 * kSecond);
  ASSERT_TRUE(sel.current_channel().has_value());
  EXPECT_GE(sel.current_channel()->channel.number, 16);  // skips busy 14/15
}

TEST_F(SelectorFixture, PrefersCellFiOccupiedOverForeign) {
  // Leave only channels 14 (foreign-occupied) and 15 (CellFi-occupied).
  for (int ch = 16; ch <= 51; ++ch) {
    db_.AddIncumbent({.id = "b" + std::to_string(ch), .channel = ch, .location = kHere,
                      .protection_radius_m = 10'000.0});
  }
  ScriptedScanner scanner;
  auto sel = MakeSelector(scanner);
  sel.Start();
  sim_.RunUntil(200 * kSecond);
  ASSERT_TRUE(sel.current_channel().has_value());
  EXPECT_EQ(sel.current_channel()->channel.number, 15);
}

TEST_F(SelectorFixture, RequiresChannelValidForUplinkAndDownlink) {
  // Master sees everything; if the DB blocked clients (slave) everywhere,
  // no channel should be picked. Simulate by an all-blocking DB.
  for (int ch = 14; ch <= 51; ++ch) {
    db_.AddIncumbent({.id = "b" + std::to_string(ch), .channel = ch, .location = kHere,
                      .protection_radius_m = 10'000.0});
  }
  auto sel = MakeSelector(quiet_);
  sel.Start();
  sim_.RunUntil(300 * kSecond);
  EXPECT_EQ(sel.state(), ApRadioState::kOff);
  EXPECT_FALSE(sel.current_channel().has_value());
}

TEST_F(SelectorFixture, CallbacksFire) {
  auto sel = MakeSelector(quiet_);
  int acquired = 0, lost = 0;
  sel.on_channel_acquired = [&](const ChannelAvailability&) { ++acquired; };
  sel.on_channel_lost = [&] { ++lost; };
  sel.Start();
  sim_.RunUntil(200 * kSecond);
  EXPECT_EQ(acquired, 1);
  for (int ch = 14; ch <= 51; ++ch) {
    db_.AddIncumbent({.id = "b" + std::to_string(ch), .channel = ch, .location = kHere,
                      .protection_radius_m = 10'000.0});
  }
  sim_.RunUntil(300 * kSecond);
  EXPECT_EQ(lost, 1);
}

}  // namespace
}  // namespace cellfi::core
