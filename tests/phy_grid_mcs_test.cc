#include <gtest/gtest.h>

#include "cellfi/common/rng.h"
#include "cellfi/common/stats.h"
#include "cellfi/phy/cqi_mcs.h"
#include "cellfi/phy/cqi_report.h"
#include "cellfi/phy/harq.h"
#include "cellfi/phy/resource_grid.h"

namespace cellfi {
namespace {

TEST(ResourceGridTest, RbCountsPerBandwidth) {
  EXPECT_EQ(NumResourceBlocks(LteBandwidth::k1_4MHz), 6);
  EXPECT_EQ(NumResourceBlocks(LteBandwidth::k5MHz), 25);
  EXPECT_EQ(NumResourceBlocks(LteBandwidth::k10MHz), 50);
  EXPECT_EQ(NumResourceBlocks(LteBandwidth::k20MHz), 100);
}

TEST(ResourceGridTest, PaperSubchannelCounts) {
  // Section 5: "13 such subchannels on 5 MHz and 25 subchannels on 20 MHz".
  EXPECT_EQ(ResourceGrid(LteBandwidth::k5MHz).num_subchannels(), 13);
  EXPECT_EQ(ResourceGrid(LteBandwidth::k20MHz).num_subchannels(), 25);
}

TEST(ResourceGridTest, SubchannelRbsCoverGridExactly) {
  for (auto bw : {LteBandwidth::k1_4MHz, LteBandwidth::k3MHz, LteBandwidth::k5MHz,
                  LteBandwidth::k10MHz, LteBandwidth::k15MHz, LteBandwidth::k20MHz}) {
    ResourceGrid grid(bw);
    int total = 0;
    for (int s = 0; s < grid.num_subchannels(); ++s) {
      EXPECT_GE(grid.SubchannelRbCount(s), 1);
      EXPECT_LE(grid.SubchannelRbCount(s), grid.rbg_size());
      total += grid.SubchannelRbCount(s);
    }
    EXPECT_EQ(total, grid.num_rbs());
  }
}

TEST(ResourceGridTest, LastSubchannelTruncatedOn5MHz) {
  ResourceGrid grid(LteBandwidth::k5MHz);  // 25 RB, RBG = 2 -> 12*2 + 1
  EXPECT_EQ(grid.SubchannelRbCount(12), 1);
  EXPECT_EQ(grid.SubchannelRbCount(0), 2);
}

TEST(ResourceGridTest, SubchannelOfRbInvertsMapping) {
  ResourceGrid grid(LteBandwidth::k10MHz);
  for (int rb = 0; rb < grid.num_rbs(); ++rb) {
    const int s = grid.SubchannelOfRb(rb);
    EXPECT_GE(rb, grid.SubchannelFirstRb(s));
    EXPECT_LT(rb, grid.SubchannelFirstRb(s) + grid.SubchannelRbCount(s));
  }
}

TEST(ResourceGridTest, DataReBudgetSane) {
  ResourceGrid grid(LteBandwidth::k5MHz, /*pdcch_symbols=*/3);
  // 168 total, minus 36 PDCCH REs, minus 8 CRS = 124.
  EXPECT_EQ(grid.TotalResourceElementsPerRb(), 168);
  EXPECT_EQ(grid.DataResourceElementsPerRb(), 124);
  // Signalling-only interference is weak relative to data interference
  // (~ -12 dB): 8 CRS REs over the 132-RE data region.
  EXPECT_NEAR(grid.ControlPowerFraction(), 8.0 / 132.0, 1e-12);
}

TEST(TddConfigTest, Config4MatchesPaper) {
  // Paper Section 6.3.4: TDD configuration 4 = 7 DL + 2 UL subframes.
  TddConfig tdd(4);
  EXPECT_EQ(tdd.downlink_subframes_per_frame(), 7);
  EXPECT_EQ(tdd.uplink_subframes_per_frame(), 2);
  EXPECT_EQ(tdd.TypeOf(0), SubframeType::kDownlink);
  EXPECT_EQ(tdd.TypeOf(1), SubframeType::kSpecial);
  EXPECT_EQ(tdd.TypeOf(2), SubframeType::kUplink);
}

TEST(TddConfigTest, TypeAtWrapsFrames) {
  TddConfig tdd(4);
  EXPECT_EQ(tdd.TypeAt(0), SubframeType::kDownlink);
  EXPECT_EQ(tdd.TypeAt(2 * kMillisecond), SubframeType::kUplink);
  EXPECT_EQ(tdd.TypeAt(12 * kMillisecond), SubframeType::kUplink);
  EXPECT_EQ(tdd.TypeAt(19 * kMillisecond), SubframeType::kDownlink);
}

TEST(TddConfigTest, FddAllDownlink) {
  TddConfig fdd = TddConfig::FddDownlink();
  EXPECT_EQ(fdd.downlink_subframes_per_frame(), 10);
  EXPECT_EQ(fdd.uplink_subframes_per_frame(), 0);
}

TEST(CqiTableTest, MonotoneEfficiencyAndThresholds) {
  for (int c = kMinCqi + 1; c <= kMaxCqi; ++c) {
    EXPECT_GT(CqiTable(c).efficiency, CqiTable(c - 1).efficiency);
    EXPECT_GT(CqiTable(c).sinr_threshold_db, CqiTable(c - 1).sinr_threshold_db);
  }
}

TEST(CqiTableTest, PaperCodingRateRange) {
  // Table 1: LTE coding rate >= 0.1 (vs 802.11af's >= 0.5).
  EXPECT_LT(CqiCodeRate(1), 0.1);
  EXPECT_NEAR(CqiCodeRate(1), 78.0 / 1024.0, 1e-9);
  EXPECT_NEAR(CqiCodeRate(15), 948.0 / 1024.0, 1e-9);
}

TEST(SinrToCqiTest, ThresholdBehaviour) {
  EXPECT_EQ(SinrToCqi(-10.0), 0);   // below range: link unusable
  EXPECT_EQ(SinrToCqi(-6.7), 1);
  EXPECT_EQ(SinrToCqi(-5.0), 1);
  EXPECT_EQ(SinrToCqi(22.7), 15);
  EXPECT_EQ(SinrToCqi(40.0), 15);
}

TEST(SinrToCqiTest, MonotoneInSinr) {
  int prev = 0;
  for (double s = -12.0; s <= 30.0; s += 0.25) {
    const int c = SinrToCqi(s);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(BlerTest, TenPercentAtThreshold) {
  for (int c = kMinCqi; c <= kMaxCqi; ++c) {
    EXPECT_NEAR(BlerAt(c, CqiTable(c).sinr_threshold_db), 0.10, 1e-9);
  }
}

TEST(BlerTest, DecreasesWithSinr) {
  EXPECT_GT(BlerAt(7, 4.0), BlerAt(7, 6.0));
  EXPECT_GT(BlerAt(7, 6.0), BlerAt(7, 10.0));
  EXPECT_LT(BlerAt(7, 20.0), 1e-6);
  EXPECT_GT(BlerAt(7, -10.0), 0.999);
}

TEST(TransportBlockTest, ScalesWithRbsAndCqi) {
  const int re = 124;
  EXPECT_EQ(TransportBlockBits(0, 10, re), 0);
  EXPECT_EQ(TransportBlockBits(5, 0, re), 0);
  EXPECT_GT(TransportBlockBits(15, 25, re), TransportBlockBits(1, 25, re));
  EXPECT_NEAR(TransportBlockBits(10, 20, re), 2 * TransportBlockBits(10, 10, re), 1);
  // CQI 15 over a full 5 MHz DL subframe ~ 25 * 124 * 5.5547 ~ 17.2 kbit.
  EXPECT_NEAR(TransportBlockBits(15, 25, re), 17219, 10);
}

TEST(HarqTest, HighSinrDeliversFirstTry) {
  HarqProcess harq;
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const auto out = harq.Deliver(7, 30.0, rng);
    EXPECT_TRUE(out.delivered);
    EXPECT_EQ(out.transmissions, 1);
  }
}

TEST(HarqTest, CombiningRaisesEffectiveSinr) {
  HarqProcess harq(4);
  Rng rng(2);
  // At 3 dB below threshold a single attempt almost always fails, but chase
  // combining across 2 attempts doubles the energy (+3 dB).
  const double sinr = CqiTable(7).sinr_threshold_db - 3.0;
  int delivered = 0;
  Summary attempts;
  for (int i = 0; i < 2000; ++i) {
    const auto out = harq.Deliver(7, sinr, rng);
    if (out.delivered) ++delivered;
    attempts.Add(out.transmissions);
  }
  EXPECT_GT(delivered, 1800);       // HARQ rescues the link
  EXPECT_GT(attempts.mean(), 1.5);  // but needs retransmissions
}

TEST(HarqTest, StatsTrackRetransmissions) {
  HarqStats stats;
  stats.Record({.delivered = true, .transmissions = 1});
  stats.Record({.delivered = true, .transmissions = 3});
  stats.Record({.delivered = false, .transmissions = 4});
  EXPECT_EQ(stats.blocks, 3);
  EXPECT_NEAR(stats.RetransmissionFraction(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(stats.ResidualLossRate(), 1.0 / 3.0, 1e-12);
}

TEST(HarqTest, ZeroCqiNeverDelivers) {
  HarqProcess harq;
  Rng rng(3);
  EXPECT_FALSE(harq.Deliver(0, 30.0, rng).delivered);
}

TEST(CqiReportTest, Mode30RoundTripWithinQuantization) {
  CqiMeasurement m;
  m.wideband_cqi = 9;
  m.subband_cqi = {9, 10, 11, 12, 8, 3, 9, 9, 10, 11, 9, 7, 9};
  const auto decoded = DecodeMode30(EncodeMode30(m));
  EXPECT_EQ(decoded.wideband_cqi, 9);
  ASSERT_EQ(decoded.subband_cqi.size(), m.subband_cqi.size());
  // Offsets clamp to {-1, 0, +1, +2}.
  EXPECT_EQ(decoded.subband_cqi[0], 9);
  EXPECT_EQ(decoded.subband_cqi[1], 10);
  EXPECT_EQ(decoded.subband_cqi[2], 11);
  EXPECT_EQ(decoded.subband_cqi[3], 11);  // +3 clamps to +2
  EXPECT_EQ(decoded.subband_cqi[4], 8);
  EXPECT_EQ(decoded.subband_cqi[5], 8);   // -6 clamps to -1
}

TEST(CqiReportTest, PayloadSizeFor5MHz) {
  CqiMeasurement m;
  m.wideband_cqi = 10;
  m.subband_cqi.assign(13, 10);  // 13 subchannels on 5 MHz
  const auto r = EncodeMode30(m);
  EXPECT_EQ(PayloadBits(r), 4 + 13 * 2);
}

TEST(CqiReportTest, OverheadMatchesPaperOrder) {
  // Paper: ~10 kbps uplink overhead at a 2 ms reporting period. With our
  // exact encoding (4 + 13*2 = 30 bits) the overhead is 15 kbps - same
  // order; the paper's 20-bit figure appears to count fewer sub-bands.
  const double bps = SignallingOverheadBps(30, 2.0);
  EXPECT_NEAR(bps, 15000.0, 1e-9);
  EXPECT_NEAR(SignallingOverheadBps(20, 2.0), 10000.0, 1e-9);
}

}  // namespace
}  // namespace cellfi
