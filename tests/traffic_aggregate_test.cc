// Aggregate background-load tier (DESIGN.md §18).
//
// Three layers of coverage:
//  * generator units — the counter-based fluid process (steady arithmetic,
//    diurnal envelope, scripted + stochastic flash crowds, cluster split)
//    is a pure function of (config, cell, epoch);
//  * sensor bookkeeping — synthetic PRACH contender counts add to, expire
//    with, and never corrupt the per-UE estimates;
//  * cross-validation — the headline contract: at small scale a run using
//    the aggregate tier must reproduce the share trajectory of a reference
//    run that fully simulates the same population as real UEs, and the
//    tier must preserve every bit-identity gate (two-run, sweep thread
//    count; shard count lives in shard_test.cc).
//
// The golden diurnal trace pins the 4-AP agg_load event stream byte-for-
// byte; regenerate deliberately with
// `CELLFI_UPDATE_GOLDEN=1 ./build/tests/traffic_aggregate_test`.
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cellfi/core/prach_sensor.h"
#include "cellfi/scenario/harness.h"
#include "cellfi/scenario/report.h"
#include "cellfi/scenario/sweep.h"
#include "cellfi/traffic/aggregate_load.h"

namespace cellfi {
namespace {

using scenario::RunScenario;
using scenario::RunScenarioOn;
using scenario::ScenarioConfig;
using scenario::ScenarioResult;
using scenario::Technology;
using scenario::Topology;
using scenario::WorkloadKind;
using traffic::AggregateLoad;
using traffic::AggregateLoadConfig;
using traffic::CellLoadSample;
using traffic::FlashCrowdEvent;

// ---------------------------------------------------------------------------
// Generator units.

AggregateLoadConfig SteadyConfig() {
  AggregateLoadConfig cfg;
  cfg.users_per_cell = 1000;
  cfg.steady_activity = 0.5;
  cfg.per_user_demand_bps = 20e3;
  cfg.cell_capacity_bps = 12e6;
  cfg.seed = 42;
  return cfg;
}

TEST(AggregateLoadTest, DisabledTierSamplesZero) {
  AggregateLoadConfig cfg = SteadyConfig();
  cfg.users_per_cell = 0;
  const AggregateLoad gen(cfg);
  EXPECT_FALSE(gen.enabled());
  const CellLoadSample s = gen.Sample(0, 5);
  EXPECT_EQ(s.active_users, 0);
  EXPECT_EQ(s.offered_bps, 0.0);
  EXPECT_EQ(s.utilization, 0.0);
}

TEST(AggregateLoadTest, NegativeEpochSamplesZero) {
  const AggregateLoad gen(SteadyConfig());
  const CellLoadSample s = gen.Sample(0, -1);
  EXPECT_EQ(s.active_users, 0);
  EXPECT_EQ(s.utilization, 0.0);
}

TEST(AggregateLoadTest, SteadyStateArithmeticIsExact) {
  const AggregateLoad gen(SteadyConfig());
  const CellLoadSample s = gen.Sample(3, 17);
  // 1000 users x 0.5 active x 20 kbps = 10 Mbps over a 12 Mbps envelope.
  EXPECT_EQ(s.active_users, 500);
  EXPECT_DOUBLE_EQ(s.offered_bps, 10e6);
  EXPECT_DOUBLE_EQ(s.utilization, 10e6 / 12e6);
  EXPECT_DOUBLE_EQ(s.flash_multiplier, 1.0);
}

TEST(AggregateLoadTest, UtilizationClampsToOne) {
  AggregateLoadConfig cfg = SteadyConfig();
  cfg.per_user_demand_bps = 1e6;  // 500 Mbps offered over 12 Mbps
  const AggregateLoad gen(cfg);
  EXPECT_DOUBLE_EQ(gen.Sample(0, 0).utilization, 1.0);
}

TEST(AggregateLoadTest, SampleIsPureAndOrderFree) {
  AggregateLoadConfig cfg = SteadyConfig();
  cfg.activity_jitter = 0.3;
  cfg.diurnal_period_s = 60.0;
  cfg.diurnal_amplitude = 0.2;
  cfg.flash_rate_per_s = 0.02;
  const AggregateLoad a(cfg);
  const AggregateLoad b(cfg);
  // Sample b in reverse order: a stateless generator cannot notice.
  std::vector<CellLoadSample> forward;
  for (std::int64_t e = 0; e < 50; ++e) forward.push_back(a.Sample(2, e));
  for (std::int64_t e = 49; e >= 0; --e) {
    const CellLoadSample s = b.Sample(2, e);
    const CellLoadSample& f = forward[static_cast<std::size_t>(e)];
    EXPECT_EQ(s.active_users, f.active_users);
    EXPECT_DOUBLE_EQ(s.offered_bps, f.offered_bps);
    EXPECT_DOUBLE_EQ(s.utilization, f.utilization);
    EXPECT_DOUBLE_EQ(s.flash_multiplier, f.flash_multiplier);
  }
}

TEST(AggregateLoadTest, NormalizedDrawRepeatableAndSaltSensitive) {
  const double u = AggregateLoad::NormalizedDraw(1, 2, 3, 4);
  EXPECT_EQ(u, AggregateLoad::NormalizedDraw(1, 2, 3, 4));
  EXPECT_GE(u, 0.0);
  EXPECT_LT(u, 1.0);
  EXPECT_NE(u, AggregateLoad::NormalizedDraw(1, 2, 3, 5));
  EXPECT_NE(u, AggregateLoad::NormalizedDraw(1, 2, 4, 4));
  EXPECT_NE(u, AggregateLoad::NormalizedDraw(1, 3, 3, 4));
  EXPECT_NE(u, AggregateLoad::NormalizedDraw(2, 2, 3, 4));
}

TEST(AggregateLoadTest, ClusterSplitSumsExactly) {
  AggregateLoadConfig cfg = SteadyConfig();
  cfg.clusters_per_cell = 4;
  const AggregateLoad gen(cfg);
  for (int n : {0, 1, 3, 4, 7, 8, 100, 1001}) {
    const std::vector<int> split = gen.ClusterSplit(n);
    ASSERT_EQ(split.size(), 4u);
    int sum = 0;
    int lo = split[0];
    int hi = split[0];
    for (int v : split) {
      sum += v;
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    EXPECT_EQ(sum, n) << "n=" << n;
    EXPECT_LE(hi - lo, 1) << "n=" << n;  // largest-remainder balance
  }
}

TEST(AggregateLoadTest, DiurnalWaveStaysInsideItsEnvelope) {
  AggregateLoadConfig cfg = SteadyConfig();
  cfg.steady_activity = 0.3;
  cfg.diurnal_period_s = 8.0;
  cfg.diurnal_amplitude = 0.4;
  const AggregateLoad gen(cfg);
  int lo = cfg.users_per_cell;
  int hi = 0;
  for (std::int64_t e = 0; e < 16; ++e) {
    const CellLoadSample s = gen.Sample(0, e);
    // activity in [steady, steady + amplitude].
    EXPECT_GE(s.active_users, std::lround(0.3 * cfg.users_per_cell) - 1);
    EXPECT_LE(s.active_users, std::lround(0.7 * cfg.users_per_cell) + 1);
    lo = std::min(lo, s.active_users);
    hi = std::max(hi, s.active_users);
  }
  // A full period passed, so the wave actually moved the population.
  EXPECT_GT(hi - lo, cfg.users_per_cell / 10);
}

TEST(AggregateLoadTest, ScriptedFlashWindowIsHalfOpen) {
  AggregateLoadConfig cfg = SteadyConfig();
  cfg.flash_events = {FlashCrowdEvent{.cell = 1, .start_s = 3.0, .duration_s = 2.0, .multiplier = 4.0}};
  const AggregateLoad gen(cfg);
  EXPECT_DOUBLE_EQ(gen.Sample(1, 2).flash_multiplier, 1.0);
  EXPECT_DOUBLE_EQ(gen.Sample(1, 3).flash_multiplier, 4.0);
  EXPECT_DOUBLE_EQ(gen.Sample(1, 4).flash_multiplier, 4.0);
  EXPECT_DOUBLE_EQ(gen.Sample(1, 5).flash_multiplier, 1.0);  // end excluded
  // Other cells unaffected; cell = -1 would hit every cell.
  EXPECT_DOUBLE_EQ(gen.Sample(0, 3).flash_multiplier, 1.0);
  cfg.flash_events[0].cell = -1;
  const AggregateLoad all(cfg);
  EXPECT_DOUBLE_EQ(all.Sample(0, 3).flash_multiplier, 4.0);
  EXPECT_DOUBLE_EQ(all.Sample(7, 4).flash_multiplier, 4.0);
}

TEST(AggregateLoadTest, StochasticFlashEpisodesMergeNotCompound) {
  AggregateLoadConfig cfg = SteadyConfig();
  cfg.flash_rate_per_s = 1.0;  // an episode starts every single epoch
  cfg.flash_duration_s = 10.0;
  cfg.flash_multiplier = 3.0;
  const AggregateLoad gen(cfg);
  for (std::int64_t e = 0; e < 40; ++e) {
    // Ten overlapping episodes cover every epoch; they merge into one
    // multiplier, never 3^10.
    EXPECT_DOUBLE_EQ(gen.Sample(0, e).flash_multiplier, 3.0) << "epoch " << e;
  }
}

// ---------------------------------------------------------------------------
// Sensor bookkeeping: synthetic counts alongside real preambles.

TEST(PrachSensorAggregateTest, CountsAddToPreamblesExactly) {
  core::PrachSensor sensor(/*self=*/0);
  sensor.OnPreamble(/*ue=*/7, /*serving=*/0, /*now=*/0);
  sensor.SetAggregateContenders(/*serving=*/0, 40, /*now=*/0);
  sensor.SetAggregateContenders(/*serving=*/1, 25, /*now=*/0);
  // NP = 1 real + 40 own-cell aggregate + 25 foreign aggregate.
  EXPECT_EQ(sensor.EstimateContenders(0), 66);
  // N = 1 real own + the aggregate count reported for this cell itself.
  EXPECT_EQ(sensor.OwnActive(0), 41);
}

TEST(PrachSensorAggregateTest, LatestReportPerServingWins) {
  core::PrachSensor sensor(/*self=*/0);
  sensor.SetAggregateContenders(1, 25, 0);
  sensor.SetAggregateContenders(1, 10, kSecond / 2);
  EXPECT_EQ(sensor.EstimateContenders(kSecond / 2), 10);
}

TEST(PrachSensorAggregateTest, ReportsExpireLikePreambles) {
  core::PrachSensor sensor(/*self=*/0, /*expiry=*/1 * kSecond);
  sensor.SetAggregateContenders(0, 12, 0);
  EXPECT_EQ(sensor.EstimateContenders(0), 12);
  EXPECT_EQ(sensor.EstimateContenders(1 * kSecond), 12);  // fresh at expiry
  EXPECT_EQ(sensor.EstimateContenders(1 * kSecond + 1), 0);
  EXPECT_EQ(sensor.OwnActive(1 * kSecond + 1), 0);
}

TEST(PrachSensorAggregateTest, NegativeCountsClampToZero) {
  core::PrachSensor sensor(/*self=*/0);
  sensor.SetAggregateContenders(0, -5, 0);
  EXPECT_EQ(sensor.EstimateContenders(0), 0);
  EXPECT_EQ(sensor.OwnActive(0), 0);
}

// ---------------------------------------------------------------------------
// Cross-validation against the fully-simulated reference.

// Must match the harness's cluster-anchor placement exactly: salts 0xC1 /
// 0xC2 over the derived seed, uniform-in-disc via r = R * sqrt(u1).
constexpr double kTau = 6.283185307179586;
constexpr std::uint64_t kAggSeedSalt = 0xA66A;

Point ClusterPosition(std::uint64_t agg_seed, const Point& ap, double radius_m,
                      int cell, int k) {
  const double u1 = AggregateLoad::NormalizedDraw(
      agg_seed, static_cast<std::uint64_t>(cell), static_cast<std::uint64_t>(k),
      0xC1);
  const double u2 = AggregateLoad::NormalizedDraw(
      agg_seed, static_cast<std::uint64_t>(cell), static_cast<std::uint64_t>(k),
      0xC2);
  const double r = radius_m * std::sqrt(u1);
  return Point{ap.x + r * std::cos(kTau * u2), ap.y + r * std::sin(kTau * u2)};
}

struct CellShareState {
  std::int64_t share = -1;
  std::int64_t own = -1;
  std::int64_t contenders = -1;
};

std::vector<CellShareState> FinalShareState(const obs::TraceSink& trace,
                                            int num_cells) {
  std::vector<CellShareState> out(static_cast<std::size_t>(num_cells));
  for (const auto& ev : trace.Events("im", "share_recalc")) {
    const auto* cell = ev.Find("cell");
    if (cell == nullptr) continue;
    const auto c = static_cast<std::size_t>(cell->as_int());
    if (c >= out.size()) continue;
    out[c].share = ev.Find("share")->as_int();
    out[c].own = ev.Find("own")->as_int();
    out[c].contenders = ev.Find("contenders")->as_int();
  }
  return out;
}

constexpr std::uint64_t kXvalSeed = 404;
constexpr double kXvalClusterRadiusM = 150.0;

ScenarioConfig XvalBase() {
  ScenarioConfig cfg;
  cfg.tech = Technology::kCellFi;
  cfg.workload = WorkloadKind::kBacklogged;
  cfg.propagation = scenario::PropagationKind::kSuburbanUhf;
  cfg.topology.area_m = 800.0;
  cfg.topology.num_aps = 2;
  cfg.topology.clients_per_ap = 2;
  cfg.topology.client_radius_m = kXvalClusterRadiusM;
  // Fading off: the reference run adds radio nodes, and the comparison is
  // about contender counts and shares, not shadowing realizations.
  cfg.enable_fading = false;
  cfg.shadowing_sigma_db = 0.0;
  cfg.warmup = 500 * kMillisecond;
  cfg.duration = 10 * kSecond;
  cfg.seed = kXvalSeed;
  cfg.obs.enabled = true;
  return cfg;
}

Topology XvalTopology() {
  Topology topo;
  topo.aps = {Point{200.0, 400.0}, Point{600.0, 400.0}};
  // Two fully-simulated probe clients per AP, close in (clean links): their
  // outcomes ride identically through both runs.
  topo.clients = {Point{170.0, 400.0}, Point{230.0, 400.0},
                  Point{570.0, 400.0}, Point{630.0, 400.0}};
  topo.client_home_ap = {0, 0, 1, 1};
  return topo;
}

TEST(AggregateCrossValidationTest, SharesMatchFullySimulatedReference) {
  constexpr int kUsersPerCell = 8;
  constexpr int kClusters = 4;

  // Aggregate run: 8 background users per cell ride as synthetic PRACH
  // counts. Demand is kept tiny so the background PRB reservation rounds
  // to zero — both runs then radiate identically (the backlogged probes
  // fill the allowed mask either way) and the comparison isolates the
  // share calculation S_i = N_i * S / NP_i.
  ScenarioConfig agg_cfg = XvalBase();
  agg_cfg.aggregate_load.users_per_cell = kUsersPerCell;
  agg_cfg.aggregate_load.clusters_per_cell = kClusters;
  agg_cfg.aggregate_load.steady_activity = 1.0;
  agg_cfg.aggregate_load.per_user_demand_bps = 1e3;
  const ScenarioResult agg = RunScenarioOn(agg_cfg, XvalTopology());
  ASSERT_NE(agg.trace, nullptr);

  // Reference run: the tier is off; the same population is fully simulated
  // instead. Cluster anchors are a pure function of the derived seed, so
  // the reference can place its extra real UEs at exactly the aggregate
  // run's cluster positions — identical geometry, hence identical PRACH
  // audibility structure, is what makes the counts comparable.
  ScenarioConfig ref_cfg = XvalBase();
  Topology ref_topo = XvalTopology();
  const std::uint64_t agg_seed = kXvalSeed ^ kAggSeedSalt;
  for (int c = 0; c < 2; ++c) {
    for (int k = 0; k < kClusters; ++k) {
      const Point pos =
          ClusterPosition(agg_seed, ref_topo.aps[static_cast<std::size_t>(c)],
                          kXvalClusterRadiusM, c, k);
      for (int u = 0; u < kUsersPerCell / kClusters; ++u) {
        ref_topo.clients.push_back(pos);
        ref_topo.client_home_ap.push_back(c);
      }
    }
  }
  const ScenarioResult ref = RunScenarioOn(ref_cfg, ref_topo);
  ASSERT_NE(ref.trace, nullptr);

  // Every probe (and every reference UE) must have attached — a detached
  // population would trivialize the comparison.
  for (std::size_t i = 0; i < agg.clients.size(); ++i) {
    EXPECT_TRUE(agg.clients[i].attached) << "agg probe " << i;
  }
  for (std::size_t i = 0; i < ref.clients.size(); ++i) {
    EXPECT_TRUE(ref.clients[i].attached) << "ref client " << i;
  }

  const auto agg_state = FinalShareState(*agg.trace, 2);
  const auto ref_state = FinalShareState(*ref.trace, 2);
  for (int c = 0; c < 2; ++c) {
    SCOPED_TRACE("cell " + std::to_string(c));
    const auto& a = agg_state[static_cast<std::size_t>(c)];
    const auto& r = ref_state[static_cast<std::size_t>(c)];
    ASSERT_GE(a.share, 0) << "aggregate run emitted no share_recalc";
    ASSERT_GE(r.share, 0) << "reference run emitted no share_recalc";
    // The tier really injected its population: the serving cell hears its
    // own 8 background users plus the 2 probes.
    EXPECT_GE(a.own, kUsersPerCell);
    EXPECT_GE(a.contenders, kUsersPerCell);
    // Documented tolerances: real UEs refresh their PRACH estimate on a
    // solicitation clock while the tier reports on epoch boundaries, so
    // steady-state counts may sit one report apart around the 1 s expiry.
    EXPECT_NEAR(static_cast<double>(a.own), static_cast<double>(r.own), 2.0);
    EXPECT_NEAR(static_cast<double>(a.contenders),
                static_cast<double>(r.contenders), 2.0);
    // Shares are quantized subchannel counts of near-identical (N, NP):
    // at most one subchannel apart.
    EXPECT_NEAR(static_cast<double>(a.share), static_cast<double>(r.share), 1.0);
  }

  // Event-sequence envelope: the hop/grow/shrink dynamics of the two runs
  // track each other (identical radiated interference, near-identical
  // shares). Hop totals may differ slightly where bucket timing interacts
  // with the count flutter above.
  const auto agg_hops = agg.im_total_hops;
  const auto ref_hops = ref.im_total_hops;
  EXPECT_LE(agg_hops > ref_hops ? agg_hops - ref_hops : ref_hops - agg_hops, 4u);
}

// ---------------------------------------------------------------------------
// Flash crowd: a background surge triggers hops where the control does not.

TEST(AggregateFlashCrowdTest, FlashCrowdTriggersHopsControlDoesNot) {
  // Two suburban cells 600 m apart. Cell 0 serves one fully-simulated
  // victim 260 m out, near the cell edge toward cell 1 (340 m away): the
  // clean channel sits around CQI 12, and when cell 1 radiates the ~4 dB
  // SIR pushes it to CQI ~5 — far below the detector's 60 %-of-max rule.
  // Cell 1 has no real clients, only the aggregate tier. At steady load
  // the background reservation rounds to zero subchannels, so cell 1
  // stays silent and (with ideal sensing: no false positives) the
  // victim's cell never hops. The flash crowd pushes cell 1 to full
  // utilization: its background reservation radiates on-air across its
  // allowed mask, the victim's sub-band CQI collapses on the overlap
  // while cell 1's one unowned subchannel keeps the spectral rule's clean
  // reference alive, and sustained bucket pressure forces cell 0 to hop.
  auto base = [] {
    ScenarioConfig cfg;
    cfg.tech = Technology::kCellFi;
    cfg.workload = WorkloadKind::kBacklogged;
    cfg.propagation = scenario::PropagationKind::kSuburbanUhf;
    cfg.topology.area_m = 2000.0;
    cfg.topology.num_aps = 2;
    cfg.topology.clients_per_ap = 1;
    cfg.topology.client_radius_m = 100.0;  // clusters hug their AP
    cfg.enable_fading = false;
    cfg.shadowing_sigma_db = 0.0;
    // Ideal sensing isolates the mechanism under test: the control run
    // cannot hop on a false positive, and every real detection converts
    // to bucket pressure.
    cfg.cellfi.detection_probability = 1.0;
    cfg.cellfi.false_positive_rate = 0.0;
    cfg.warmup = 1 * kSecond;
    cfg.duration = 20 * kSecond;
    cfg.seed = 7;
    cfg.aggregate_load.users_per_cell = 100;
    cfg.aggregate_load.steady_activity = 0.3;
    cfg.aggregate_load.per_user_demand_bps = 10e3;  // util 0.025 -> 0 PRBs
    cfg.aggregate_load.cell_capacity_bps = 12e6;
    return cfg;
  };
  Topology topo;
  topo.aps = {Point{700.0, 1000.0}, Point{1300.0, 1000.0}};
  topo.clients = {Point{960.0, 1000.0}};
  topo.client_home_ap = {0};

  const ScenarioResult control_result = RunScenarioOn(base(), topo);

  ScenarioConfig flash = base();
  // x40 population on cell 1 from t = 2 s: utilization saturates at 1.0,
  // the full allowed mask radiates, and sustained pressure ~1 drains the
  // exponential(lambda = 10) buckets across the 12-subchannel overlap.
  flash.aggregate_load.flash_events = {
      FlashCrowdEvent{.cell = 1, .start_s = 2.0, .duration_s = 30.0, .multiplier = 40.0}};
  const ScenarioResult flash_result = RunScenarioOn(flash, topo);

  EXPECT_TRUE(control_result.clients[0].attached);
  EXPECT_TRUE(flash_result.clients[0].attached);
  EXPECT_EQ(control_result.im_total_hops, 0u)
      << "control run hopped with the background tier silent";
  EXPECT_GE(flash_result.im_total_hops, 1u)
      << "flash crowd failed to force a hop";
}

// ---------------------------------------------------------------------------
// Determinism: the tier preserves every bit-identity gate.

ScenarioConfig StressConfig(std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.tech = Technology::kCellFi;
  cfg.workload = WorkloadKind::kBacklogged;
  cfg.topology.area_m = 900.0;
  cfg.topology.num_aps = 4;
  cfg.topology.clients_per_ap = 2;
  cfg.warmup = 200 * kMillisecond;
  cfg.duration = 3 * kSecond;
  cfg.seed = seed;
  cfg.aggregate_load.users_per_cell = 500;
  cfg.aggregate_load.steady_activity = 0.5;
  cfg.aggregate_load.activity_jitter = 0.2;
  cfg.aggregate_load.flash_rate_per_s = 0.05;
  cfg.aggregate_load.flash_duration_s = 2.0;
  cfg.aggregate_load.flash_multiplier = 3.0;
  return cfg;
}

TEST(AggregateDeterminismTest, TwoRunsBitIdentical) {
  const ScenarioResult a = RunScenario(StressConfig(21));
  const ScenarioResult b = RunScenario(StressConfig(21));
  EXPECT_EQ(scenario::ResultToJson(a).Dump(), scenario::ResultToJson(b).Dump());
}

TEST(AggregateDeterminismTest, SweepThreadCountInvariant) {
  std::vector<scenario::Replication> jobs;
  for (int rep = 0; rep < 3; ++rep) {
    scenario::Replication job;
    job.config = StressConfig(900 + static_cast<std::uint64_t>(rep));
    job.rep = rep;
    jobs.push_back(std::move(job));
  }
  scenario::SweepOptions seq;
  seq.threads = 1;
  const auto a = scenario::SweepRunner(seq).Run(jobs);
  scenario::SweepOptions par;
  par.threads = 4;
  const auto b = scenario::SweepRunner(par).Run(jobs);
  ASSERT_EQ(a.size(), jobs.size());
  ASSERT_EQ(b.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    ASSERT_EQ(a[i].error, nullptr);
    ASSERT_EQ(b[i].error, nullptr);
    EXPECT_EQ(scenario::ResultToJson(a[i].result).Dump(),
              scenario::ResultToJson(b[i].result).Dump());
  }
}

TEST(AggregateTierTest, TierChangesOutcomesWhenEnabled) {
  ScenarioConfig off = StressConfig(33);
  off.aggregate_load.users_per_cell = 0;
  ScenarioConfig on = StressConfig(33);
  on.aggregate_load.per_user_demand_bps = 40e3;  // heavy background load
  const ScenarioResult without = RunScenario(off);
  const ScenarioResult with = RunScenario(on);
  // Guard against silent no-op wiring: a heavy background population must
  // move the probes' outcomes.
  EXPECT_NE(scenario::ResultToJson(without).Dump(),
            scenario::ResultToJson(with).Dump());
}

TEST(AggregateTierTest, ObsSurfacesAggregateActivity) {
  ScenarioConfig cfg = StressConfig(44);
  cfg.obs.enabled = true;
  const ScenarioResult result = RunScenario(cfg);
  ASSERT_NE(result.trace, nullptr);
  ASSERT_NE(result.metrics, nullptr);
  EXPECT_FALSE(result.trace->Events("traffic", "agg_load").empty());
  EXPECT_GT(result.metrics->gauge("traffic.agg.offered_bps.c0"), 0.0);
  const auto* hist = result.metrics->histogram("traffic.agg.utilization");
  ASSERT_NE(hist, nullptr);
  EXPECT_GT(hist->total, 0u);
}

TEST(AggregateTierTest, EnvKnobEnablesTheTier) {
  ScenarioConfig cfg = StressConfig(55);
  cfg.aggregate_load.users_per_cell = 0;  // config leaves the tier off
  cfg.obs.enabled = true;
  ::setenv("CELLFI_AGG_LOAD", "200", 1);
  const ScenarioResult result = RunScenario(cfg);
  ::unsetenv("CELLFI_AGG_LOAD");
  ASSERT_NE(result.trace, nullptr);
  EXPECT_FALSE(result.trace->Events("traffic", "agg_load").empty());
  // And a config-off, env-off run really has no tier.
  cfg.obs.enabled = true;
  const ScenarioResult off = RunScenario(cfg);
  ASSERT_NE(off.trace, nullptr);
  EXPECT_TRUE(off.trace->Events("traffic", "agg_load").empty());
}

// ---------------------------------------------------------------------------
// Golden diurnal trace.

ScenarioConfig GoldenAggConfig() {
  ScenarioConfig cfg;
  cfg.tech = Technology::kCellFi;
  cfg.workload = WorkloadKind::kBacklogged;
  cfg.topology.area_m = 600.0;
  cfg.topology.num_aps = 4;
  cfg.topology.clients_per_ap = 2;
  cfg.warmup = 100 * kMillisecond;
  cfg.duration = 10 * kSecond;
  cfg.seed = 13;
  cfg.obs.enabled = true;
  cfg.aggregate_load.users_per_cell = 400;
  cfg.aggregate_load.steady_activity = 0.3;
  cfg.aggregate_load.diurnal_period_s = 8.0;
  cfg.aggregate_load.diurnal_amplitude = 0.4;
  return cfg;
}

std::vector<std::string> GoldenAggLines(const ScenarioConfig& cfg) {
  const ScenarioResult result = RunScenario(cfg);
  std::vector<std::string> lines;
  if (result.trace == nullptr) {
    ADD_FAILURE() << "obs.enabled run returned no trace sink";
    return lines;
  }
  EXPECT_EQ(result.trace->dropped(), 0u)
      << "golden scenario overflowed the trace ring";
  for (const auto& ev : result.trace->Events("traffic", "agg_load")) {
    lines.push_back(obs::TraceSink::ToJsonl(ev));
  }
  return lines;
}

std::string Joined(const std::vector<std::string>& lines) {
  std::ostringstream out;
  for (const auto& line : lines) out << line << "\n";
  return out.str();
}

TEST(GoldenAggTraceTest, MatchesCheckedInGolden) {
  const std::string golden_path =
      std::string(CELLFI_SOURCE_DIR) + "/tests/golden/traffic_agg_4ap.jsonl";
  const auto lines = GoldenAggLines(GoldenAggConfig());
  ASSERT_FALSE(lines.empty())
      << "diurnal 4-AP scenario emitted no traffic/agg_load events";

  if (std::getenv("CELLFI_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path, std::ios::trunc);
    ASSERT_TRUE(out.is_open()) << "cannot write " << golden_path;
    out << Joined(lines);
    std::cout << "updated " << golden_path << " (" << lines.size()
              << " events)\n";
    return;
  }

  std::ifstream in(golden_path);
  ASSERT_TRUE(in.is_open())
      << "missing " << golden_path
      << " — regenerate with CELLFI_UPDATE_GOLDEN=1 "
         "./build/tests/traffic_aggregate_test";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(expected.str(), Joined(lines))
      << "golden aggregate trace drifted; if the change is intentional "
         "regenerate with CELLFI_UPDATE_GOLDEN=1 "
         "./build/tests/traffic_aggregate_test";
}

TEST(GoldenAggTraceTest, SensitiveToPopulationPerturbation) {
  auto cfg = GoldenAggConfig();
  cfg.aggregate_load.users_per_cell = 300;
  const auto perturbed = GoldenAggLines(cfg);
  const auto baseline = GoldenAggLines(GoldenAggConfig());
  // A tripwire, not a tautology: the trace must notice a population change.
  EXPECT_NE(baseline, perturbed);
}

}  // namespace
}  // namespace cellfi
