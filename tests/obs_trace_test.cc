// Observability layer (DESIGN.md §13): TraceSink / MetricsRegistry unit
// tests plus the golden-trace regression test.
//
// The golden test runs a fixed-seed 4-AP CellFi scenario with tracing
// enabled, serializes the interference-manager hop/share_recalc events
// (integer-only fields, so the lines are formatting-stable) and compares
// them byte-for-byte against tests/golden/obs_trace_4ap.jsonl. Any change
// to IM decision order, sim-time bookkeeping or trace formatting shows up
// as a diff here. Regenerate deliberately with
// `CELLFI_UPDATE_GOLDEN=1 ./build/tests/obs_trace_test`.
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cellfi/obs/metrics.h"
#include "cellfi/obs/trace.h"
#include "cellfi/scenario/harness.h"

namespace cellfi::obs {
namespace {

TEST(TraceSinkTest, ToJsonlRendersFieldsInEmissionOrder) {
  TraceEvent ev;
  ev.sim_time_us = 1234;
  ev.component = "im";
  ev.event = "hop";
  ev.fields = {{"cell", 3}, {"from", 1}, {"to", 5}};
  EXPECT_EQ(TraceSink::ToJsonl(ev),
            R"({"t_us":1234,"component":"im","event":"hop","cell":3,"from":1,"to":5})");
}

TEST(TraceSinkTest, ToJsonlRendersTypesDeterministically) {
  TraceEvent ev;
  ev.sim_time_us = 0;
  ev.component = "x";
  ev.event = "types";
  ev.fields = {{"i", -7},
               {"d", 0.5},
               {"s", "a\"b\\c\n"},
               {"b", true}};
  EXPECT_EQ(
      TraceSink::ToJsonl(ev),
      R"({"t_us":0,"component":"x","event":"types","i":-7,"d":0.5,"s":"a\"b\\c\n","b":1})");
}

TEST(TraceSinkTest, RingOverwritesOldestAndReportsDrops) {
  TraceSinkConfig cfg;
  cfg.ring_capacity = 4;
  TraceSink sink(cfg);
  for (int i = 0; i < 6; ++i) {
    sink.Emit(i * kMicrosecond, "c", "e", {{"i", i}});
  }
  EXPECT_EQ(sink.emitted(), 6u);
  EXPECT_EQ(sink.dropped(), 2u);
  const auto events = sink.Events();
  ASSERT_EQ(events.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    // Oldest-first: events 2..5 survive.
    EXPECT_EQ(events[static_cast<std::size_t>(i)].Find("i")->as_int(), i + 2);
  }
}

TEST(TraceSinkTest, EventsFilterByComponentAndEvent) {
  TraceSink sink;
  sink.Emit(kMicrosecond, "im", "hop", {{"cell", 0}});
  sink.Emit(2 * kMicrosecond, "im", "grow", {{"cell", 0}});
  sink.Emit(3 * kMicrosecond, "prach", "contention", {{"cell", 1}});
  sink.Emit(4 * kMicrosecond, "im", "hop", {{"cell", 1}});
  EXPECT_EQ(sink.Events("im").size(), 3u);
  EXPECT_EQ(sink.Events("im", "hop").size(), 2u);
  EXPECT_EQ(sink.Events("prach").size(), 1u);
  EXPECT_EQ(sink.Events("wifi").size(), 0u);
}

TEST(TraceSinkTest, JsonlFileMatchesToJsonl) {
  const std::string path = testing::TempDir() + "/obs_trace_test_out.jsonl";
  {
    TraceSinkConfig cfg;
    cfg.jsonl_path = path;
    TraceSink sink(cfg);
    sink.Emit(kMicrosecond, "im", "hop", {{"cell", 0}, {"from", 1}, {"to", 2}});
    sink.Emit(2 * kMicrosecond, "prach", "contention", {{"own", 3}});
    // Destructor flushes and closes.
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line,
            R"({"t_us":1,"component":"im","event":"hop","cell":0,"from":1,"to":2})");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line,
            R"({"t_us":2,"component":"prach","event":"contention","own":3})");
  EXPECT_FALSE(std::getline(in, line));
  std::remove(path.c_str());
}

TEST(AmbientContextTest, NullWithoutScopeAndNestsWithScopes) {
  EXPECT_EQ(ActiveTrace(), nullptr);
  EXPECT_EQ(ActiveMetrics(), nullptr);
  EXPECT_EQ(AmbientNow(), 0);

  TraceSink outer_sink;
  MetricsRegistry outer_metrics;
  {
    ObsScope outer(&outer_sink, &outer_metrics);
    EXPECT_EQ(ActiveTrace(), &outer_sink);
    EXPECT_EQ(ActiveMetrics(), &outer_metrics);
    TraceSink inner_sink;
    {
      ObsScope inner(&inner_sink, nullptr);
      EXPECT_EQ(ActiveTrace(), &inner_sink);
      EXPECT_EQ(ActiveMetrics(), nullptr);
    }
    EXPECT_EQ(ActiveTrace(), &outer_sink);
    EXPECT_EQ(ActiveMetrics(), &outer_metrics);
  }
  EXPECT_EQ(ActiveTrace(), nullptr);
  EXPECT_EQ(ActiveMetrics(), nullptr);
}

TEST(AmbientContextTest, ClockScopeSuppliesAmbientNow) {
  SimTime t = 42 * kMicrosecond;
  {
    ClockScope clock([&t] { return t; });
    EXPECT_EQ(AmbientNow(), 42 * kMicrosecond);
    t = 43 * kMicrosecond;
    EXPECT_EQ(AmbientNow(), 43 * kMicrosecond);
    {
      ClockScope inner([] { return SimTime{7}; });
      EXPECT_EQ(AmbientNow(), 7);
    }
    EXPECT_EQ(AmbientNow(), 43 * kMicrosecond);
  }
  EXPECT_EQ(AmbientNow(), 0);
}

TEST(MetricsRegistryTest, CountersGaugesAndGetOrCreate) {
  MetricsRegistry m;
  const auto c = m.Counter("a.count");
  m.Add(c);
  m.Add(c, 4);
  EXPECT_EQ(m.Counter("a.count"), c);  // same name -> same id
  EXPECT_EQ(m.counter("a.count"), 5u);
  EXPECT_EQ(m.counter("missing"), 0u);

  const auto g = m.Gauge("a.gauge");
  m.Set(g, 1.5);
  m.Set(g, -2.0);  // gauges keep the last value
  EXPECT_EQ(m.gauge("a.gauge"), -2.0);
  EXPECT_EQ(m.size(), 2u);
}

TEST(MetricsRegistryTest, HistogramBucketsAndOverflow) {
  MetricsRegistry m;
  const auto h = m.Histogram("sinr", SinrDbBounds());
  m.Observe(h, -20.0);  // first bucket (<= -10)
  m.Observe(h, -10.0);  // boundary lands in its own bucket
  m.Observe(h, 12.0);   // <= 15
  m.Observe(h, 100.0);  // overflow
  const auto* data = m.histogram("sinr");
  ASSERT_NE(data, nullptr);
  ASSERT_EQ(data->counts.size(), SinrDbBounds().size() + 1);
  EXPECT_EQ(data->counts[0], 2u);
  EXPECT_EQ(data->counts[5], 1u);  // bound 15
  EXPECT_EQ(data->counts.back(), 1u);
  EXPECT_EQ(data->total, 4u);
  EXPECT_DOUBLE_EQ(data->sum, -20.0 - 10.0 + 12.0 + 100.0);
  // Re-registration keeps the first bounds.
  const auto h2 = m.Histogram("sinr", FractionBounds());
  EXPECT_EQ(h2, h);
  EXPECT_EQ(m.histogram("sinr")->upper_bounds, SinrDbBounds());
}

TEST(MetricsRegistryTest, SnapshotSerializesInRegistrationOrder) {
  MetricsRegistry m;
  m.Add(m.Counter("z.second"));
  m.Add(m.Counter("a.first"));  // registered later despite sorting earlier
  m.Set(m.Gauge("g"), 2.5);
  m.Observe(m.Histogram("h", {1.0, 2.0}), 1.5);
  const auto snap = m.Snapshot();
  const auto& counters = snap.Find("counters")->as_array();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].Find("name")->as_string(), "z.second");
  EXPECT_EQ(counters[1].Find("name")->as_string(), "a.first");
  const auto& gauges = snap.Find("gauges")->as_array();
  ASSERT_EQ(gauges.size(), 1u);
  EXPECT_EQ(gauges[0].Find("name")->as_string(), "g");
  const auto& hists = snap.Find("histograms")->as_array();
  ASSERT_EQ(hists.size(), 1u);
  EXPECT_EQ(hists[0].Find("name")->as_string(), "h");
  const auto& counts = hists[0].Find("counts")->as_array();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[1].as_int(), 1);
  EXPECT_EQ(hists[0].Find("count")->as_int(), 1);
}

// ---------------------------------------------------------------------------
// Golden trace.

scenario::ScenarioConfig GoldenConfig() {
  scenario::ScenarioConfig cfg;
  cfg.tech = scenario::Technology::kCellFi;
  cfg.workload = scenario::WorkloadKind::kBacklogged;
  // Tight area so the four cells genuinely contend (hops occur), short
  // enough that the golden slice stays a few dozen lines.
  cfg.topology.area_m = 500.0;
  cfg.topology.num_aps = 4;
  cfg.topology.clients_per_ap = 2;
  cfg.warmup = 100 * kMillisecond;
  cfg.duration = 5 * kSecond;
  cfg.seed = 11;  // this seed exercises bucket-exhaustion hops, not just
                  // share recalculations
  cfg.obs.enabled = true;
  return cfg;
}

/// The golden slice: interference-manager hop + share_recalc events.
/// Both carry only integer fields, so the serialized lines are immune to
/// floating-point formatting concerns.
std::vector<std::string> GoldenLines(const scenario::ScenarioConfig& cfg) {
  const auto result = scenario::RunScenario(cfg);
  std::vector<std::string> lines;
  if (result.trace == nullptr) {
    ADD_FAILURE() << "obs.enabled run returned no trace sink";
    return lines;
  }
  EXPECT_EQ(result.trace->dropped(), 0u)
      << "golden scenario overflowed the trace ring";
  for (const auto& ev : result.trace->Events("im")) {
    if (ev.event == "hop" || ev.event == "share_recalc") {
      lines.push_back(TraceSink::ToJsonl(ev));
    }
  }
  return lines;
}

std::string Joined(const std::vector<std::string>& lines) {
  std::ostringstream out;
  for (const auto& line : lines) out << line << "\n";
  return out.str();
}

TEST(GoldenTraceTest, MatchesCheckedInGolden) {
  const std::string golden_path =
      std::string(CELLFI_SOURCE_DIR) + "/tests/golden/obs_trace_4ap.jsonl";
  const auto lines = GoldenLines(GoldenConfig());
  ASSERT_FALSE(lines.empty()) << "fixed-seed 4-AP scenario emitted no "
                                 "im hop/share_recalc events";

  if (std::getenv("CELLFI_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path, std::ios::trunc);
    ASSERT_TRUE(out.is_open()) << "cannot write " << golden_path;
    out << Joined(lines);
    std::cout << "updated " << golden_path << " (" << lines.size()
              << " events)\n";
    return;
  }

  std::ifstream in(golden_path);
  ASSERT_TRUE(in.is_open())
      << "missing " << golden_path
      << " — regenerate with CELLFI_UPDATE_GOLDEN=1 ./build/tests/obs_trace_test";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(expected.str(), Joined(lines))
      << "golden trace drifted; if the change is intentional regenerate "
         "with CELLFI_UPDATE_GOLDEN=1 ./build/tests/obs_trace_test";
}

TEST(GoldenTraceTest, IdenticalAcrossRuns) {
  const auto a = GoldenLines(GoldenConfig());
  const auto b = GoldenLines(GoldenConfig());
  EXPECT_EQ(a, b);
}

TEST(GoldenTraceTest, SensitiveToBucketLambdaPerturbation) {
  auto cfg = GoldenConfig();
  cfg.cellfi.im.bucket_lambda = 2.0;  // paper default is 10
  const auto perturbed = GoldenLines(cfg);
  const auto baseline = GoldenLines(GoldenConfig());
  // A harsher bucket distribution changes hop decisions; the trace must
  // notice (this is what makes the golden test a tripwire, not a tautology).
  EXPECT_NE(baseline, perturbed);
}

}  // namespace
}  // namespace cellfi::obs
