// The per-subframe interference engine's determinism contract (DESIGN.md
// §12): with culling off, every path through InterferenceMap must be
// BIT-identical to the legacy per-link summation — same doubles, not just
// close — across fading on/off, cell activity toggles and mobility. The
// negligible-interferer cull is opt-in and bounded: dropping terms >= 30 dB
// below the noise floor moves any SINR by less than 0.01 dB.
#include "cellfi/radio/interference.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "cellfi/lte/network.h"
#include "cellfi/radio/pathloss.h"
#include "cellfi/scenario/harness.h"

namespace cellfi {
namespace {

RadioEnvironmentConfig EnvConfig(bool fading, double floor_db = 0.0) {
  RadioEnvironmentConfig c;
  c.carrier_freq_hz = 600e6;
  c.shadowing_sigma_db = 4.0;
  c.enable_fading = fading;
  c.interference_floor_db = floor_db;
  c.seed = 21;
  return c;
}

/// A receiver, a signal source and `n` interferers scattered over a 2 km
/// square, full-band flat PSD on 13 subchannels.
struct World {
  explicit World(const RadioEnvironmentConfig& cfg) : env(pathloss, cfg) {
    Rng rng(17);
    rx = env.AddNode({.position = {0, 0}});
    tx = env.AddNode({.position = {300, 100}, .tx_power_dbm = 30});
    for (int i = 0; i < 12; ++i) {
      others.push_back(env.AddNode({.position = {rng.Uniform(-2000, 2000),
                                                 rng.Uniform(-2000, 2000)},
                                    .tx_power_dbm = 30}));
    }
  }
  HataUrbanPathLoss pathloss;
  RadioEnvironment env;
  RadioNodeId rx = 0;
  RadioNodeId tx = 0;
  std::vector<RadioNodeId> others;
};

class InterferenceMapTest : public ::testing::TestWithParam<bool> {};

TEST_P(InterferenceMapTest, MatchesPerLinkSinrExactly) {
  const bool fading = GetParam();
  World w(EnvConfig(fading));
  InterferenceMap imap(w.env);
  imap.BeginEpoch(13, 360e3);
  // The signal source itself is in the lists (as in a real subframe) and
  // must be excluded at query time exactly as env::SinrDb does.
  std::vector<ActiveTransmitter> legacy;
  legacy.push_back({w.tx, 1.0 / 13.0});
  for (RadioNodeId n : w.others) legacy.push_back({n, 1.0 / 13.0});
  for (int s = 0; s < 13; ++s) {
    for (const ActiveTransmitter& t : legacy) imap.AddTransmitter(s, t.node, t.power_scale);
  }
  for (SimTime now = 0; now <= 100 * kMillisecond; now += 20 * kMillisecond) {
    for (int s = 0; s < 13; ++s) {
      const double engine = imap.SinrDb(w.tx, w.rx, s, now, 1.0 / 13.0);
      const double perlink =
          w.env.SinrDb(w.tx, w.rx, static_cast<std::uint32_t>(s), now, legacy, 360e3,
                       1.0 / 13.0);
      EXPECT_EQ(engine, perlink) << "fading=" << fading << " s=" << s << " t=" << now;
    }
  }
  // All 13 lists are identical -> one aggregation group.
  EXPECT_EQ(imap.num_groups(), 1);
  EXPECT_EQ(imap.culled_total(), 0u);
}

TEST_P(InterferenceMapTest, DistinctListsPerSubchannelStayExact) {
  const bool fading = GetParam();
  World w(EnvConfig(fading));
  InterferenceMap imap(w.env);
  imap.BeginEpoch(13, 360e3);
  // Interferer i transmits only on subchannels s >= i. With 12 interferers
  // that makes subchannels 0..11 pairwise distinct while 11 and 12 share a
  // list — 12 aggregation groups, exercising dedup and distinctness both.
  std::vector<std::vector<ActiveTransmitter>> legacy(13);
  for (int s = 0; s < 13; ++s) {
    for (std::size_t i = 0; i <= static_cast<std::size_t>(s) && i < w.others.size(); ++i) {
      imap.AddTransmitter(s, w.others[i], 1.0 / 13.0);
      legacy[static_cast<std::size_t>(s)].push_back({w.others[i], 1.0 / 13.0});
    }
  }
  for (int s = 0; s < 13; ++s) {
    const double engine = imap.SinrDb(w.tx, w.rx, s, 5 * kMillisecond, 1.0 / 13.0);
    const double perlink =
        w.env.SinrDb(w.tx, w.rx, static_cast<std::uint32_t>(s), 5 * kMillisecond,
                     legacy[static_cast<std::size_t>(s)], 360e3, 1.0 / 13.0);
    EXPECT_EQ(engine, perlink) << "fading=" << fading << " s=" << s;
  }
  EXPECT_EQ(imap.num_groups(), 12);
}

INSTANTIATE_TEST_SUITE_P(FadingOnOff, InterferenceMapTest, ::testing::Bool());

TEST(InterferenceMapCullTest, DropsBelowFloorInterferersWithinEpsilon) {
  // Two clusters 50 km apart under log-distance n=3.5: cross-cluster rx
  // power lands ~50 dB below the subchannel noise floor, in-cluster power
  // far above it. A 30 dB floor culls exactly the far cluster.
  LogDistancePathLoss pathloss(3.5);
  RadioEnvironmentConfig cfg = EnvConfig(/*fading=*/false, /*floor_db=*/30.0);
  RadioEnvironment env(pathloss, cfg);
  RadioEnvironmentConfig nocull_cfg = EnvConfig(/*fading=*/false);
  RadioEnvironment ref_env(pathloss, nocull_cfg);

  std::vector<ActiveTransmitter> all;
  RadioNodeId rx = 0, tx = 0;
  for (RadioEnvironment* e : {&env, &ref_env}) {
    rx = e->AddNode({.position = {0, 0}});
    tx = e->AddNode({.position = {200, 0}, .tx_power_dbm = 30});
    all.clear();
    all.push_back({e->AddNode({.position = {-300, 100}, .tx_power_dbm = 30}), 1.0 / 13.0});
    all.push_back({e->AddNode({.position = {100, -250}, .tx_power_dbm = 30}), 1.0 / 13.0});
    for (int i = 0; i < 4; ++i) {  // far cluster: negligible at rx
      all.push_back({e->AddNode({.position = {50000.0 + 300.0 * i, 50000.0},
                                 .tx_power_dbm = 30}),
                     1.0 / 13.0});
    }
  }

  InterferenceMap imap(env);
  imap.BeginEpoch(13, 360e3);
  for (int s = 0; s < 13; ++s) {
    for (const ActiveTransmitter& t : all) imap.AddTransmitter(s, t.node, t.power_scale);
  }
  const double culled_sinr = imap.SinrDb(tx, rx, 0, 0, 1.0 / 13.0);
  const double exact_sinr =
      ref_env.SinrDb(tx, rx, 0, 0, all, 360e3, 1.0 / 13.0);
  // 4 far interferers culled once (one aggregation group shared by all 13
  // subchannels).
  EXPECT_EQ(imap.culled_this_epoch(), 4u);
  EXPECT_EQ(imap.culled_total(), 4u);
  // Epsilon contract: each culled term is >= 30 dB below the noise floor,
  // so the denominator shrinks by < 13 * 10^-3 relative — under 0.01 dB
  // for any realistic list (documented in DESIGN.md §12).
  EXPECT_NE(culled_sinr, exact_sinr);  // something was actually dropped
  EXPECT_NEAR(culled_sinr, exact_sinr, 0.01);
}

// ---------------------------------------------------------------------------
// Network-level bit-identity: two LteNetworks over identically seeded
// environments, one on the engine and one on the legacy path, stepped in
// lockstep through activity toggles and mobility.
// ---------------------------------------------------------------------------

class DualNetwork {
 public:
  explicit DualNetwork(bool engine)
      : env_(pathloss_, EnvConfig(/*fading=*/false)), net_(sim_, env_, NetConfig(engine)) {}

  static lte::LteNetworkConfig NetConfig(bool engine) {
    lte::LteNetworkConfig c;
    c.use_interference_engine = engine;
    c.seed = 11;
    return c;
  }

  lte::CellId AddCellAt(Point p) {
    const RadioNodeId r = env_.AddNode({.position = p, .tx_power_dbm = 30.0});
    lte::LteMacConfig mac;
    mac.bandwidth = LteBandwidth::k5MHz;
    mac.tdd_config = 4;
    return net_.AddCell(mac, r);
  }

  lte::UeId AddUeAt(Point p) {
    ue_radios_.push_back(env_.AddNode({.position = p, .tx_power_dbm = 20.0}));
    return net_.AddUe(ue_radios_.back());
  }

  HataUrbanPathLoss pathloss_;
  Simulator sim_;
  RadioEnvironment env_;
  lte::LteNetwork net_;
  std::vector<RadioNodeId> ue_radios_;
};

TEST(InterferenceEngineNetworkTest, LockstepBitIdentityAcrossActivityAndMobility) {
  DualNetwork engine(true);
  DualNetwork legacy(false);
  for (DualNetwork* d : {&engine, &legacy}) {
    d->AddCellAt({0, 0});
    d->AddCellAt({900, 0});
    d->AddCellAt({0, 900});
    for (int c = 0; c < 3; ++c) {
      for (int u = 0; u < 2; ++u) {
        d->AddUeAt({100.0 + 400.0 * c, 50.0 + 300.0 * u});
      }
    }
    d->net_.Start();
    d->sim_.RunUntil(300 * kMillisecond);
    for (lte::UeId u = 0; u < 6; ++u) d->net_.OfferDownlink(u, 8 << 20);
    d->sim_.RunUntil(500 * kMillisecond);
  }

  auto expect_identical = [&](const char* when) {
    for (lte::UeId u = 0; u < 6; ++u) {
      ASSERT_EQ(engine.net_.ue(u).serving, legacy.net_.ue(u).serving) << when;
      const std::vector<double> a = engine.net_.MeasureDownlinkSinr(u);
      const std::vector<double> b = legacy.net_.MeasureDownlinkSinr(u);
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t s = 0; s < a.size(); ++s) {
        EXPECT_EQ(a[s], b[s]) << when << " ue=" << u << " s=" << s;
      }
    }
    EXPECT_EQ(engine.net_.total_dl_bits(), legacy.net_.total_dl_bits()) << when;
  };
  expect_identical("steady state");

  // Activity toggle: the engine must invalidate its map and CRS cache.
  for (DualNetwork* d : {&engine, &legacy}) d->net_.SetCellActive(1, false);
  expect_identical("after deactivate");
  for (DualNetwork* d : {&engine, &legacy}) {
    d->net_.SetCellActive(1, true);
    d->sim_.RunUntil(700 * kMillisecond);
  }
  expect_identical("after reactivate + run");

  // Mobility: position_epoch must invalidate the aggregate rows.
  for (DualNetwork* d : {&engine, &legacy}) {
    d->env_.MoveNode(d->ue_radios_[0], {700, 120});
    d->sim_.RunUntil(900 * kMillisecond);
  }
  expect_identical("after mobility + run");
  EXPECT_EQ(engine.net_.interference_culled_total(), 0u);
}

// ---------------------------------------------------------------------------
// Scenario-level regression: full RunScenarioOn with the engine on vs off
// must produce bit-identical outcomes on fig9a-style topologies — fading
// off (exercising the aggregate cache + CellFi masks) and fading on (the
// per-link fallback), culling off in both.
// ---------------------------------------------------------------------------

scenario::ScenarioConfig ScenarioFor(scenario::Technology tech, bool fading,
                                     bool engine, double floor_db) {
  scenario::ScenarioConfig cfg;
  cfg.tech = tech;
  cfg.workload = scenario::WorkloadKind::kBacklogged;
  cfg.propagation = scenario::PropagationKind::kSuburbanUhf;
  cfg.topology.area_m = 1500.0;
  cfg.topology.num_aps = 5;
  cfg.topology.clients_per_ap = 2;
  cfg.topology.client_radius_m = 250.0;
  cfg.ap_power_dbm = 30.0;
  cfg.lte_bandwidth = LteBandwidth::k5MHz;
  cfg.lte_tdd_config = 4;
  cfg.warmup = 1 * kSecond;
  cfg.duration = 3 * kSecond;
  cfg.enable_fading = fading;
  cfg.use_interference_engine = engine;
  cfg.interference_floor_db = floor_db;
  cfg.seed = 41;
  return cfg;
}

void ExpectBitIdentical(const scenario::ScenarioResult& a,
                        const scenario::ScenarioResult& b) {
  EXPECT_EQ(a.total_throughput_bps, b.total_throughput_bps);
  EXPECT_EQ(a.fraction_connected, b.fraction_connected);
  EXPECT_EQ(a.fraction_starved, b.fraction_starved);
  ASSERT_EQ(a.clients.size(), b.clients.size());
  for (std::size_t i = 0; i < a.clients.size(); ++i) {
    EXPECT_EQ(a.clients[i].throughput_bps, b.clients[i].throughput_bps) << "client " << i;
    EXPECT_EQ(a.clients[i].attached, b.clients[i].attached) << "client " << i;
  }
}

TEST(InterferenceEngineScenarioTest, EngineOffOnBitIdenticalNoFading) {
  const auto on = scenario::RunScenario(
      ScenarioFor(scenario::Technology::kCellFi, false, true, 0.0));
  const auto off = scenario::RunScenario(
      ScenarioFor(scenario::Technology::kCellFi, false, false, 0.0));
  ExpectBitIdentical(on, off);
  EXPECT_GT(on.total_throughput_bps, 0.0);
}

TEST(InterferenceEngineScenarioTest, EngineOffOnBitIdenticalWithFading) {
  const auto on = scenario::RunScenario(
      ScenarioFor(scenario::Technology::kLte, true, true, 0.0));
  const auto off = scenario::RunScenario(
      ScenarioFor(scenario::Technology::kLte, true, false, 0.0));
  ExpectBitIdentical(on, off);
  EXPECT_GT(on.total_throughput_bps, 0.0);
}

TEST(InterferenceEngineScenarioTest, CullingStaysWithinTolerance) {
  // A 30 dB below-noise floor perturbs each SINR by < 0.01 dB; end-to-end
  // summaries must stay within a small relative band of the exact run
  // (CQI quantization usually absorbs the perturbation entirely).
  const auto exact = scenario::RunScenario(
      ScenarioFor(scenario::Technology::kLte, false, true, 0.0));
  const auto culled = scenario::RunScenario(
      ScenarioFor(scenario::Technology::kLte, false, true, 30.0));
  EXPECT_GT(exact.total_throughput_bps, 0.0);
  EXPECT_NEAR(culled.total_throughput_bps / exact.total_throughput_bps, 1.0, 0.02);
  EXPECT_NEAR(culled.fraction_connected, exact.fraction_connected, 0.11);
}

}  // namespace
}  // namespace cellfi
