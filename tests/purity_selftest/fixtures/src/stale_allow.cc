// Fixture: --strict-allow stale-suppression audit. Neither allow()
// suppresses anything: the first names a real effect that never fires on
// its line, the second names an effect that does not exist.
namespace cellfi {

int Plain() {
  return 42;  // cellfi-purity: allow(draws_rng) — fixture: nothing fires here
}

int Typo() {
  return 1;  // cellfi-purity: allow(no-such-effect) — fixture: unknown effect
}

}  // namespace cellfi
