// Fixture: planted schedules_event violation in an instrumentation path —
// the obs-instrumentation root TraceSink::Emit reaches Timer::Arm through
// MaybeRotate. TraceSink::Emit is deliberately NOT annotated with a
// contract-root comment, so the annotation-drift check fires too.
#include "timer.h"

namespace cellfi {

class TraceSink {
 public:
  void Emit(long now) { MaybeRotate(now); }

 private:
  void MaybeRotate(long now) { timer_.Arm(now + 10); }
  Timer timer_;
};

}  // namespace cellfi
