// Fixture: minimal stand-in for sim/timer.h. Timer::Arm is intrinsically
// schedules_event via the functions rule.
#pragma once

namespace cellfi {

class Timer {
 public:
  void Arm(long delay) { armed_at_ = delay; }

 private:
  long armed_at_ = 0;
};

}  // namespace cellfi
