// Fixture: planted violations in a parallel shard phase. The contract root
// EnodeB::PlanDownlink reaches
//   - a stateful RNG draw via ChooseOffset -> Rng::Uniform   (draws_rng)
//   - a lock acquisition via GuardedCount                    (takes_lock)
//   - a suppressed stateless mixer via SeedFold              (no finding)
#include "rng.h"

namespace cellfi {

unsigned long SeedFold(unsigned long x);

// cellfi-purity: contract-root(parallel-shard-phase) EnodeB::PlanDownlink
class EnodeB {
 public:
  int PlanDownlink() {
    int offset = ChooseOffset();
    return offset + GuardedCount() + static_cast<int>(SeedFold(7));
  }

 private:
  int ChooseOffset() { return static_cast<int>(rng_.Uniform() * 8.0); }
  int GuardedCount();
  Rng rng_;
};

}  // namespace cellfi
