// Fixture: annotation drift, source side — the contract-root annotation
// below names a root that is not registered in rules/contracts.json, so
// the two-way registration check reports it.
namespace cellfi {

// cellfi-purity: contract-root(parallel-shard-phase) LegacyPhase::Run
class LegacyPhase {
 public:
  int Run() { return 0; }
};

}  // namespace cellfi
