// Fixture: suppression. SeedFold is reached from EnodeB::PlanDownlink and
// textually matches the draws_rng SplitMix64 pattern, but the same-line
// allow() declares the stateless mixer deliberate — no finding, and the
// allow counts as used for --strict-allow.
namespace cellfi {

unsigned long SeedFold(unsigned long x) {
  return SplitMix64(x);  // cellfi-purity: allow(draws_rng) — stateless fixture mixer
}

}  // namespace cellfi
