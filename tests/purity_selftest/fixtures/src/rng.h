// Fixture: minimal stand-in for common/rng.h. Every Rng method is
// intrinsically draws_rng via the functions rule `Rng::[A-Za-z_]\w*`.
#pragma once

namespace cellfi {

class Rng {
 public:
  double Uniform() { return 0.5; }
};

}  // namespace cellfi
