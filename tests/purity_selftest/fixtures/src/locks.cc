// Fixture: planted takes_lock violation — a lock_guard inside a function
// reachable from the parallel-shard-phase root.
#include <mutex>

namespace cellfi {

std::mutex g_fixture_mu;

int EnodeB::GuardedCount() {
  std::lock_guard<std::mutex> g(g_fixture_mu);
  return 3;
}

}  // namespace cellfi
