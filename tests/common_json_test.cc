#include "cellfi/common/json.h"

#include <gtest/gtest.h>

namespace cellfi::json {
namespace {

TEST(JsonTest, ParsePrimitives) {
  EXPECT_TRUE(Parse("null")->is_null());
  EXPECT_TRUE(Parse("true")->as_bool());
  EXPECT_FALSE(Parse("false")->as_bool());
  EXPECT_DOUBLE_EQ(Parse("3.5")->as_number(), 3.5);
  EXPECT_DOUBLE_EQ(Parse("-17")->as_number(), -17.0);
  EXPECT_DOUBLE_EQ(Parse("1e3")->as_number(), 1000.0);
  EXPECT_EQ(Parse("\"hi\"")->as_string(), "hi");
}

TEST(JsonTest, ParseNestedStructure) {
  auto v = Parse(R"({"a": [1, 2, {"b": true}], "c": "x"})");
  ASSERT_TRUE(v.has_value());
  ASSERT_TRUE(v->is_object());
  const auto* a = v->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  EXPECT_EQ(a->as_array().size(), 3u);
  EXPECT_TRUE(a->as_array()[2].Find("b")->as_bool());
  EXPECT_EQ(v->Find("c")->as_string(), "x");
}

TEST(JsonTest, ParseStringEscapes) {
  auto v = Parse(R"("line\nbreak\t\"q\" \\ A")");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->as_string(), "line\nbreak\t\"q\" \\ A");
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(Parse("").has_value());
  EXPECT_FALSE(Parse("{").has_value());
  EXPECT_FALSE(Parse("[1,]").has_value());
  EXPECT_FALSE(Parse("{\"a\":}").has_value());
  EXPECT_FALSE(Parse("\"unterminated").has_value());
  EXPECT_FALSE(Parse("tru").has_value());
  EXPECT_FALSE(Parse("1 2").has_value());
  EXPECT_FALSE(Parse("{\"a\":1,}").has_value());
}

TEST(JsonTest, DumpParsesBack) {
  Value v;
  v["deviceDesc"]["serialNumber"] = "cellfi-ap-001";
  v["location"]["point"]["center"]["latitude"] = 47.64;
  v["location"]["point"]["center"]["longitude"] = -122.13;
  v["channels"] = Array{Value(21), Value(22), Value(23)};
  v["flag"] = true;

  auto round = Parse(v.Dump());
  ASSERT_TRUE(round.has_value());
  EXPECT_EQ(*round, v);
}

TEST(JsonTest, NumbersSerializeCompactly) {
  EXPECT_EQ(Value(42).Dump(), "42");
  EXPECT_EQ(Value(-7).Dump(), "-7");
  EXPECT_EQ(Value(2.5).Dump(), "2.5");
}

TEST(JsonTest, WhitespaceTolerated) {
  auto v = Parse("  {  \"a\"  :  [ 1 ,  2 ]  }  ");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->Find("a")->as_array().size(), 2u);
}

TEST(JsonTest, OperatorIndexCreatesObject) {
  Value v;
  v["x"] = 1;
  EXPECT_TRUE(v.is_object());
  EXPECT_DOUBLE_EQ(v.Find("x")->as_number(), 1.0);
  EXPECT_EQ(v.Find("missing"), nullptr);
}

}  // namespace
}  // namespace cellfi::json
