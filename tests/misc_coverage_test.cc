// Coverage for the smaller utilities and edge paths: umbrella header
// compiles, logging levels, table rendering, geometry corner cases, uplink
// HARQ at the eNodeB, Wi-Fi retry-limit drops.
#include "cellfi/cellfi.h"  // must compile standalone

#include <sstream>

#include <gtest/gtest.h>

namespace cellfi {
namespace {

TEST(LoggingTest, LevelFiltering) {
  const LogLevel old_level = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  CELLFI_DEBUG << "dropped";  // must not crash, must not emit
  CELLFI_ERROR << "emitted to stderr";
  SetLogLevel(LogLevel::kOff);
  CELLFI_ERROR << "also dropped";
  SetLogLevel(old_level);
}

TEST(TableTest, RendersAlignedRows) {
  Table t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"bb", "22222"});
  std::ostringstream out;
  t.Print(out, "title");
  const std::string s = out.str();
  EXPECT_NE(s.find("== title =="), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22222"), std::string::npos);
  // Column alignment: 'value' starts at the same offset in both rows.
  const auto header_pos = s.find("value");
  const auto row_pos = s.find("22222");
  const auto header_line_start = s.rfind('\n', header_pos);
  const auto row_line_start = s.rfind('\n', row_pos);
  // "22222" aligns under "1", which aligns under "value".
  EXPECT_EQ(s.find('1', s.find("alpha")) - s.rfind('\n', s.find("alpha")),
            header_pos - header_line_start);
  (void)row_line_start;
}

TEST(GeometryTest, AngleDiffWrapsCorrectly) {
  EXPECT_NEAR(AngleDiff(0.1, -0.1), 0.2, 1e-12);
  EXPECT_NEAR(AngleDiff(M_PI - 0.05, -M_PI + 0.05), 0.1, 1e-9);  // across the seam
  EXPECT_NEAR(AngleDiff(3 * M_PI, 0.0), M_PI, 1e-9);
  EXPECT_NEAR(AngleDiff(1.0, 1.0), 0.0, 1e-12);
}

TEST(GeometryTest, BearingQuadrants) {
  EXPECT_NEAR(Bearing({0, 0}, {1, 0}), 0.0, 1e-12);
  EXPECT_NEAR(Bearing({0, 0}, {0, 1}), M_PI / 2, 1e-12);
  EXPECT_NEAR(Bearing({0, 0}, {-1, 0}), M_PI, 1e-12);
  EXPECT_NEAR(Bearing({0, 0}, {0, -1}), -M_PI / 2, 1e-12);
}

TEST(EnodebUplinkTest, UplinkHarqRetransmitsAndDrops) {
  lte::EnodeB enb(0, lte::LteMacConfig{});
  lte::UeContext& ue = enb.AddUe(1);
  ue.EnqueueUplink(4000);
  ue.UpdateCqi(10, std::vector<int>(13, 10));
  Rng rng(1);
  for (int attempt = 1; attempt <= 4; ++attempt) {
    const lte::TxPlan plan = enb.PlanUplink();
    ASSERT_FALSE(plan.transmissions.empty()) << attempt;
    EXPECT_EQ(plan.transmissions[0].is_harq_retx, attempt > 1);
    const auto result = enb.CompleteUplink(plan.transmissions[0], -30.0, rng);
    EXPECT_FALSE(result.delivered);
    EXPECT_EQ(result.dropped, attempt == 4);
  }
  EXPECT_FALSE(ue.harq_ul().active);
  EXPECT_EQ(ue.ul_queue_bytes(), 4000u);  // bytes stay queued after a drop
}

TEST(EnodebUplinkTest, UplinkSucceedsAfterOneRetx) {
  lte::EnodeB enb(0, lte::LteMacConfig{});
  lte::UeContext& ue = enb.AddUe(1);
  ue.EnqueueUplink(500);
  ue.UpdateCqi(10, std::vector<int>(13, 10));
  Rng rng(2);
  auto plan = enb.PlanUplink();
  enb.CompleteUplink(plan.transmissions[0], -30.0, rng);  // fail
  ASSERT_TRUE(ue.harq_ul().active);
  plan = enb.PlanUplink();
  const auto result = enb.CompleteUplink(plan.transmissions[0], 40.0, rng);  // combine
  EXPECT_TRUE(result.delivered);
  EXPECT_EQ(result.attempts, 2);
  EXPECT_EQ(ue.ul_queue_bytes(), 0u);
}

TEST(WifiDropTest, RetryLimitDropsHeadAndRecovers) {
  // Two hidden APs without RTS/CTS grind each other down; retry limits
  // must fire (drops > 0) yet both queues keep draining.
  HataUrbanPathLoss pathloss;
  RadioEnvironmentConfig env_cfg;
  env_cfg.carrier_freq_hz = 600e6;
  env_cfg.shadowing_sigma_db = 0.0;
  env_cfg.enable_fading = false;
  Simulator sim;
  RadioEnvironment env(pathloss, env_cfg);
  wifi::WifiMacConfig mac;
  mac.rts_cts = false;
  mac.max_retries = 3;
  wifi::WifiNetwork net(sim, env, mac, 9);
  const auto a = net.AddAp(env.AddNode({.position = {0, 0}, .tx_power_dbm = 30.0}));
  const auto b = net.AddAp(env.AddNode({.position = {1600, 0}, .tx_power_dbm = 30.0}));
  const auto sa = net.AddSta(env.AddNode({.position = {780, 30}, .tx_power_dbm = 30.0}));
  const auto sb = net.AddSta(env.AddNode({.position = {820, -30}, .tx_power_dbm = 30.0}));
  ASSERT_TRUE(net.sta_stats(sa).associated);
  ASSERT_TRUE(net.sta_stats(sb).associated);
  net.OfferDownlink(sa, 8 << 20);
  net.OfferDownlink(sb, 8 << 20);
  net.Start();
  sim.RunUntil(4 * kSecond);
  EXPECT_GT(net.ap_stats(a).drops + net.ap_stats(b).drops, 0u);
  // Without RTS/CTS two backlogged hidden APs can starve each other
  // completely (full-duration collisions) - the MAC must keep cycling
  // (attempt, fail, drop, retry) rather than deadlock.
  EXPECT_GT(net.ap_stats(a).attempts, 100u);
  EXPECT_GT(net.ap_stats(b).attempts, 100u);
  EXPECT_GT(net.sta_stats(sa).exchanges_failed + net.sta_stats(sb).exchanges_failed, 50u);
}

TEST(SelectorConfigTest, EtsiBudgetEnforcedByConstruction) {
  // poll + vacate must fit the 60 s ETSI budget; the selector asserts it.
  core::ChannelSelectorConfig cfg;
  EXPECT_LE(cfg.db_poll_interval + cfg.vacate_delay, cfg.etsi_vacate_budget);
}

TEST(SummaryEdgeTest, EmptyAndSingle) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  s.Add(5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(HashTest, UnitIntervalNeverZeroOrOne) {
  for (std::uint64_t i = 0; i < 10000; ++i) {
    const double u = HashToUnitInterval(HashWords(i, i * 31));
    EXPECT_GT(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

}  // namespace
}  // namespace cellfi
