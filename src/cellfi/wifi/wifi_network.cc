#include "cellfi/wifi/wifi_network.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "cellfi/common/units.h"

namespace cellfi::wifi {

WifiNetwork::WifiNetwork(Simulator& sim, RadioEnvironment& env, WifiMacConfig config,
                         std::uint64_t seed)
    : sim_(sim), env_(env), config_(config), rng_(seed) {
  // Down-clocked PHY (802.11af): every fixed MAC/PHY duration stretches.
  config_.slot = static_cast<SimTime>(config_.slot * config_.clock_scale);
  config_.sifs = static_cast<SimTime>(config_.sifs * config_.clock_scale);
  config_.difs = static_cast<SimTime>(config_.difs * config_.clock_scale);
}

ApId WifiNetwork::AddAp(RadioNodeId radio) {
  Ap ap;
  ap.radio = radio;
  ap.cw = config_.cw_min;
  aps_.push_back(ap);
  return static_cast<ApId>(aps_.size() - 1);
}

StaId WifiNetwork::AddSta(RadioNodeId radio, ApId forced_ap) {
  Sta sta;
  sta.radio = radio;
  // Associate with the strongest permitted AP that closes the link budget
  // in BOTH directions: downlink data at MCS0 and the station's control
  // frames (CTS/BlockAck) at the basic rate. With a client transmit power
  // below the AP's, the uplink is the limiting direction — one reason
  // Wi-Fi range trails LTE, which reaches ~7 dB deeper with its lowest
  // code rate.
  double best_snr = WifiMcsTable(0).snr_threshold_db;
  for (std::size_t a = 0; a < aps_.size(); ++a) {
    if (forced_ap >= 0 && static_cast<ApId>(a) != forced_ap) continue;
    const double down =
        env_.MeanSnrDb(aps_[a].radio, radio, config_.channel_width_hz * 0.9);
    const double up =
        env_.MeanSnrDb(radio, aps_[a].radio, config_.channel_width_hz * 0.9);
    if (up < BasicRateSnrDb()) continue;
    if (down > best_snr) {
      best_snr = down;
      sta.ap = static_cast<ApId>(a);
    }
  }
  sta.stats.associated = sta.ap >= 0;
  const StaId id = static_cast<StaId>(stas_.size());
  if (sta.ap >= 0) aps_[static_cast<std::size_t>(sta.ap)].stas.push_back(id);
  stas_.push_back(sta);
  return id;
}

void WifiNetwork::OfferDownlink(StaId sta_id, std::uint64_t bytes) {
  Sta& sta = stas_[static_cast<std::size_t>(sta_id)];
  if (sta.ap < 0) return;  // unassociated: traffic undeliverable
  sta.queue_bytes += bytes;
  StartContention(sta.ap);
}

void WifiNetwork::Start() {
  for (std::size_t a = 0; a < aps_.size(); ++a) StartContention(static_cast<ApId>(a));
}

SimTime WifiNetwork::ControlFrameTime(int bytes) const {
  // Control frames go at the basic rate (MCS0) plus a PHY preamble; the
  // preamble is a fixed number of OFDM symbols, so it stretches with the
  // clock-down factor.
  const double rate = PhyRateBps(0, config_.channel_width_hz);
  const SimTime preamble =
      static_cast<SimTime>(FromMicroseconds(40) * config_.clock_scale);
  return preamble + FromSeconds(static_cast<double>(bytes) * 8.0 / rate);
}

bool WifiNetwork::MediumBusyFor(RadioNodeId node, SimTime* busy_until) const {
  const double threshold =
      config_.cs_threshold_dbm + 10.0 * std::log10(config_.channel_width_hz / 20e6);
  bool busy = false;
  SimTime until = 0;
  for (const Exchange& e : active_) {
    const RadioNodeId ap_radio = aps_[static_cast<std::size_t>(e.ap)].radio;
    const RadioNodeId sta_radio = stas_[static_cast<std::size_t>(e.sta)].radio;
    bool heard = ap_radio != node && env_.MeanRxPowerDbm(ap_radio, node) > threshold;
    if (!heard && config_.rts_cts && sta_radio != node) {
      // The CTS/BACK from the receiver sets NAV for nodes that hear it.
      heard = env_.MeanRxPowerDbm(sta_radio, node) > threshold;
    }
    if (heard) {
      busy = true;
      until = std::max(until, e.end);
    }
  }
  if (busy_until != nullptr) *busy_until = until;
  return busy;
}

void WifiNetwork::StartContention(ApId ap_id) {
  Ap& ap = aps_[static_cast<std::size_t>(ap_id)];
  if (ap.contending || ap.transmitting) return;
  if (!HasData(ap)) return;
  ap.contending = true;

  SimTime busy_until = 0;
  const SimTime base =
      MediumBusyFor(ap.radio, &busy_until) ? busy_until : sim_.Now();
  const SimTime backoff =
      config_.difs + rng_.UniformInt(0, ap.cw) * config_.slot;
  sim_.ScheduleAt(std::max(base, sim_.Now()) + backoff,
                  [this, ap_id] { AttemptTransmit(ap_id); });
}

bool WifiNetwork::HasData(const Ap& ap) const {
  for (StaId sta : ap.stas) {
    if (stas_[static_cast<std::size_t>(sta)].queue_bytes > 0) return true;
  }
  return false;
}

StaId WifiNetwork::NextStaWithData(Ap& ap) {
  for (std::size_t probe = 0; probe < ap.stas.size(); ++probe) {
    const StaId sta = ap.stas[(ap.rr_cursor + probe) % ap.stas.size()];
    if (stas_[static_cast<std::size_t>(sta)].queue_bytes > 0) {
      ap.rr_cursor = (ap.rr_cursor + probe + 1) % ap.stas.size();
      return sta;
    }
  }
  return -1;
}

double WifiNetwork::ExchangeSinr(RadioNodeId tx, RadioNodeId rx,
                                 std::size_t self_index) const {
  std::vector<ActiveTransmitter> interferers;
  for (std::size_t i = 0; i < active_.size(); ++i) {
    if (i == self_index) continue;
    interferers.push_back(ActiveTransmitter{
        .node = aps_[static_cast<std::size_t>(active_[i].ap)].radio, .power_scale = 1.0});
  }
  return env_.SinrDb(tx, rx, /*subchannel=*/0, sim_.Now(), interferers,
                     config_.channel_width_hz * 0.9);
}

void WifiNetwork::ResolveCollisions(std::size_t new_index) {
  Exchange& mine = active_[new_index];
  const RadioNodeId my_ap = aps_[static_cast<std::size_t>(mine.ap)].radio;
  const RadioNodeId my_sta = stas_[static_cast<std::size_t>(mine.sta)].radio;

  // Does the aggregate of everyone else break me?
  const double data_sinr = ExchangeSinr(my_ap, my_sta, new_index);
  const double ack_sinr = ExchangeSinr(my_sta, my_ap, new_index);
  if (data_sinr < WifiMcsTable(mine.mcs).snr_threshold_db ||
      ack_sinr < BasicRateSnrDb()) {
    mine.doomed = true;
  }

  // Does my arrival break an ongoing exchange?
  for (std::size_t i = 0; i < active_.size(); ++i) {
    if (i == new_index || active_[i].doomed) continue;
    Exchange& other = active_[i];
    const RadioNodeId o_ap = aps_[static_cast<std::size_t>(other.ap)].radio;
    const RadioNodeId o_sta = stas_[static_cast<std::size_t>(other.sta)].radio;
    const double o_data = ExchangeSinr(o_ap, o_sta, i);
    const double o_ack = ExchangeSinr(o_sta, o_ap, i);
    if (o_data < WifiMcsTable(other.mcs).snr_threshold_db || o_ack < BasicRateSnrDb()) {
      other.doomed = true;
    }
  }
}

void WifiNetwork::AttemptTransmit(ApId ap_id) {
  Ap& ap = aps_[static_cast<std::size_t>(ap_id)];
  ap.contending = false;
  if (ap.transmitting) return;
  if (MediumBusyFor(ap.radio, nullptr)) {
    StartContention(ap_id);  // deferral: re-contend after the medium clears
    return;
  }
  const StaId sta_id = NextStaWithData(ap);
  if (sta_id < 0) return;
  Sta& sta = stas_[static_cast<std::size_t>(sta_id)];

  const double snr = env_.MeanSnrDb(ap.radio, sta.radio, config_.channel_width_hz * 0.9);
  const int mcs = SinrToMcs(snr);
  if (mcs < 0) {
    // Link no longer closes; drop this station's queue.
    sta.queue_bytes = 0;
    StartContention(ap_id);
    return;
  }

  const double rate = PhyRateBps(mcs, config_.channel_width_hz);
  const std::uint64_t cap_by_time = static_cast<std::uint64_t>(
      rate * ToSeconds(config_.max_tx_duration) / 8.0);
  const std::uint64_t bytes =
      std::min({sta.queue_bytes, config_.max_ampdu_bytes, cap_by_time});

  const double dist = Distance(env_.node(ap.radio).position, env_.node(sta.radio).position);
  const SimTime prop = FromSeconds(dist / kSpeedOfLightMps);

  Exchange e;
  e.ap = ap_id;
  e.sta = sta_id;
  e.start = sim_.Now();
  e.bytes = bytes;
  e.mcs = mcs;
  SimTime handshake = 0;
  if (config_.rts_cts) {
    handshake = ControlFrameTime(config_.rts_bytes) + config_.sifs +
                ControlFrameTime(config_.cts_bytes) + config_.sifs + 2 * prop;
  }
  e.data_start = e.start + handshake;
  // A-MPDU payload time plus its PHY preamble (ControlFrameTime(0)).
  const SimTime data_time =
      ControlFrameTime(0) + FromSeconds(static_cast<double>(bytes) * 8.0 / rate);
  e.end = e.data_start + data_time + config_.sifs +
          ControlFrameTime(config_.back_bytes) + 2 * prop;

  ap.transmitting = true;
  ++ap.stats.attempts;
  active_.push_back(e);
  ResolveCollisions(active_.size() - 1);

  // A collision already present at the start fails the RTS handshake: only
  // the (short) handshake time is wasted. Without RTS/CTS the whole A-MPDU
  // burns.
  SimTime finish_at = active_.back().end;
  if (active_.back().doomed && config_.rts_cts) {
    finish_at = e.start + handshake + config_.slot;
    active_.back().end = finish_at;
  }
  sim_.ScheduleAt(finish_at, [this, ap_id, sta_id, start = e.start] {
    for (std::size_t i = 0; i < active_.size(); ++i) {
      if (active_[i].ap == ap_id && active_[i].sta == sta_id && active_[i].start == start) {
        FinishExchange(i);
        return;
      }
    }
  });
}

void WifiNetwork::FinishExchange(std::size_t exchange_index) {
  const Exchange e = active_[exchange_index];
  active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(exchange_index));

  Ap& ap = aps_[static_cast<std::size_t>(e.ap)];
  Sta& sta = stas_[static_cast<std::size_t>(e.sta)];
  ap.transmitting = false;
  ap.stats.airtime += e.end - e.start;

  if (!e.doomed) {
    sta.queue_bytes -= std::min(sta.queue_bytes, e.bytes);
    sta.stats.delivered_bytes += e.bytes;
    ++sta.stats.exchanges_ok;
    ap.cw = config_.cw_min;
    ap.retries = 0;
    if (on_delivered) on_delivered(e.sta, e.bytes, sim_.Now());
  } else {
    ++sta.stats.exchanges_failed;
    ++ap.stats.collisions;
    ++ap.retries;
    ap.cw = std::min(ap.cw * 2 + 1, config_.cw_max);
    if (ap.retries > config_.max_retries) {
      // Drop the head A-MPDU and reset contention state.
      sta.queue_bytes -= std::min(sta.queue_bytes, e.bytes);
      ++ap.stats.drops;
      ap.retries = 0;
      ap.cw = config_.cw_min;
    }
  }
  StartContention(e.ap);
}

}  // namespace cellfi::wifi
