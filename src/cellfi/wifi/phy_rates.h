// 802.11ac/af PHY rate model.
//
// Both standards share modulation and coding (Section 3.1 of the paper:
// 802.11af "has the same modulation and coding rates as 802.11ac"); they
// differ in channel width (6/8 MHz TVWS channels vs 20+ MHz) and radio
// band. Rates scale linearly with width for a fixed MCS. The lowest Wi-Fi
// code rate is 1/2 (Table 1) — visible here as MCS0's spectral efficiency,
// and the reason Wi-Fi's rate floor sits ~7 dB above LTE's.
#pragma once

namespace cellfi::wifi {

/// One VHT MCS (single spatial stream).
struct WifiMcs {
  int index;
  double bits_per_hz;        // spectral efficiency incl. coding
  double snr_threshold_db;   // minimum SINR to sustain ~10 % PER
};

inline constexpr int kNumWifiMcs = 9;

/// MCS table lookup (0..8).
const WifiMcs& WifiMcsTable(int index);

/// Highest MCS supported at `sinr_db`; -1 if below MCS0 (no link).
int SinrToMcs(double sinr_db);

/// PHY rate in bit/s for `mcs` over `width_hz`.
double PhyRateBps(int mcs, double width_hz);

/// Ideal rate adaptation: PHY rate at `sinr_db` over `width_hz` (0 = none).
double IdealRateBps(double sinr_db, double width_hz);

/// Minimum SINR for the basic (control) rate — RTS/CTS/ACK decodability.
double BasicRateSnrDb();

}  // namespace cellfi::wifi
