#include "cellfi/wifi/phy_rates.h"

#include <cassert>

namespace cellfi::wifi {

namespace {
// VHT single-stream MCS, efficiencies from 802.11ac 20 MHz rates
// (6.5..78 Mbps over 20 MHz) and SNR switching points from standard PER
// curves. Note the floor: BPSK 1/2 -> 0.325 b/s/Hz, code rate 1/2.
constexpr WifiMcs kTable[kNumWifiMcs] = {
    {0, 0.325, 2.0},   // BPSK 1/2
    {1, 0.650, 5.0},   // QPSK 1/2
    {2, 0.975, 9.0},   // QPSK 3/4
    {3, 1.300, 11.0},  // 16QAM 1/2
    {4, 1.950, 15.0},  // 16QAM 3/4
    {5, 2.600, 18.0},  // 64QAM 2/3
    {6, 2.925, 20.0},  // 64QAM 3/4
    {7, 3.250, 25.0},  // 64QAM 5/6
    {8, 3.900, 29.0},  // 256QAM 3/4
};
}  // namespace

const WifiMcs& WifiMcsTable(int index) {
  assert(index >= 0 && index < kNumWifiMcs);
  return kTable[index];
}

int SinrToMcs(double sinr_db) {
  int best = -1;
  for (const WifiMcs& m : kTable) {
    if (sinr_db >= m.snr_threshold_db) best = m.index;
  }
  return best;
}

double PhyRateBps(int mcs, double width_hz) {
  if (mcs < 0) return 0.0;
  return WifiMcsTable(mcs).bits_per_hz * width_hz;
}

double IdealRateBps(double sinr_db, double width_hz) {
  return PhyRateBps(SinrToMcs(sinr_db), width_hz);
}

double BasicRateSnrDb() { return kTable[0].snr_threshold_db; }

}  // namespace cellfi::wifi
