// Event-driven CSMA/CA (DCF) network for 802.11af / 802.11ac comparisons.
//
// Models the mechanisms the paper identifies as limiting for long-range
// Wi-Fi (Sections 3.2, 6.3.4):
//   * carrier sense + binary exponential backoff (channel-acquisition
//     overhead grows with range because more nodes share one collision
//     domain),
//   * hidden terminals: a transmitter outside carrier-sense range of an
//     ongoing exchange can still break it at the receiver; RTS/CTS
//     mitigates by making deferral depend on hearing *either* endpoint,
//   * exposed terminals: nodes defer to exchanges they could not actually
//     harm,
//   * A-MPDU aggregation up to 64 KB within a bounded TX duration,
//   * ideal SINR-based rate adaptation (as configured in the paper's ns-3).
//
// Simplifications (documented in DESIGN.md): an RTS/CTS-protected exchange
// is modelled as one atomic sequence whose endpoints both count for
// carrier sense; a collision detected at exchange start wastes only the
// RTS timeout, later-arriving colliders waste the full exchange.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "cellfi/common/rng.h"
#include "cellfi/radio/environment.h"
#include "cellfi/sim/event_queue.h"
#include "cellfi/wifi/phy_rates.h"

namespace cellfi::wifi {

using ApId = int;
using StaId = int;

struct WifiMacConfig {
  double channel_width_hz = 20e6;
  /// 802.11af is a down-clocked VHT PHY (6-8 MHz basic channel units run
  /// the 802.11ac waveform at ~1/4 clock), so slot, SIFS, DIFS and
  /// preamble durations all stretch by this factor. 1.0 = 802.11ac,
  /// ~4.0 = 802.11af. This is the "channel acquisition overhead" that the
  /// paper identifies as a core long-range CSMA cost.
  double clock_scale = 1.0;
  SimTime slot = FromMicroseconds(9);
  SimTime sifs = FromMicroseconds(16);
  SimTime difs = FromMicroseconds(34);
  int cw_min = 15;
  int cw_max = 1023;
  int max_retries = 7;
  bool rts_cts = true;
  std::uint64_t max_ampdu_bytes = 65'000;  // paper: 65 KB aggregation
  SimTime max_tx_duration = 4 * kMillisecond;  // 802.11af TX cap (Table 1)
  /// Preamble-detect carrier-sense threshold for 20 MHz (near MCS0
  /// sensitivity; -82 dBm is the OBSS energy-detect level); scaled with
  /// width.
  double cs_threshold_dbm = -92.0;
  /// Control frames sizes (bytes) sent at the basic rate.
  int rts_bytes = 20;
  int cts_bytes = 14;
  int back_bytes = 32;
};

struct StaStats {
  std::uint64_t delivered_bytes = 0;
  std::uint64_t exchanges_ok = 0;
  std::uint64_t exchanges_failed = 0;
  bool associated = false;
};

struct ApStats {
  std::uint64_t attempts = 0;
  std::uint64_t collisions = 0;
  std::uint64_t drops = 0;        // retry limit exceeded
  SimTime airtime = 0;
};

/// One BSS set + stations, contending on a shared channel.
class WifiNetwork {
 public:
  WifiNetwork(Simulator& sim, RadioEnvironment& env, WifiMacConfig config,
              std::uint64_t seed = 1);

  ApId AddAp(RadioNodeId radio);
  /// Adds a station. By default it associates with the strongest AP whose
  /// link budget closes in both directions; pass `forced_ap` to pin it to
  /// one AP (independent unplanned networks: clients cannot roam onto a
  /// stranger's AP even when it is stronger). Association result in
  /// stats().associated.
  StaId AddSta(RadioNodeId radio, ApId forced_ap = -1);

  /// Queue downlink bytes for a station at its AP.
  void OfferDownlink(StaId sta, std::uint64_t bytes);

  /// Fired per delivered A-MPDU.
  std::function<void(StaId, std::uint64_t bytes, SimTime now)> on_delivered;

  void Start();

  const StaStats& sta_stats(StaId sta) const { return stas_[static_cast<std::size_t>(sta)].stats; }
  const ApStats& ap_stats(ApId ap) const { return aps_[static_cast<std::size_t>(ap)].stats; }
  ApId sta_ap(StaId sta) const { return stas_[static_cast<std::size_t>(sta)].ap; }
  std::size_t ap_count() const { return aps_.size(); }
  std::size_t sta_count() const { return stas_.size(); }

 private:
  struct Sta {
    RadioNodeId radio = 0;
    ApId ap = -1;
    std::uint64_t queue_bytes = 0;
    StaStats stats;
  };

  struct Exchange {
    ApId ap = -1;
    StaId sta = -1;
    SimTime start = 0;
    SimTime end = 0;          // full-exchange end
    SimTime data_start = 0;   // after RTS/CTS
    std::uint64_t bytes = 0;
    int mcs = 0;
    bool doomed = false;
  };

  struct Ap {
    RadioNodeId radio = 0;
    std::vector<StaId> stas;
    std::size_t rr_cursor = 0;
    int cw = 15;
    int retries = 0;
    bool contending = false;   // a backoff attempt is scheduled
    bool transmitting = false;
    ApStats stats;
  };

  void StartContention(ApId ap);
  void AttemptTransmit(ApId ap);
  void FinishExchange(std::size_t exchange_index);
  StaId NextStaWithData(Ap& ap);
  bool HasData(const Ap& ap) const;

  /// True if `node` senses the medium busy; fills `busy_until`.
  bool MediumBusyFor(RadioNodeId node, SimTime* busy_until) const;

  /// SINR of `tx`->`rx` given the other currently active exchanges.
  double ExchangeSinr(RadioNodeId tx, RadioNodeId rx, std::size_t self_index) const;

  /// Can the new exchange `e` break active exchange `other` (and
  /// vice-versa)? Marks doomed flags.
  void ResolveCollisions(std::size_t new_index);

  SimTime ControlFrameTime(int bytes) const;

  Simulator& sim_;
  RadioEnvironment& env_;
  WifiMacConfig config_;
  Rng rng_;
  std::vector<Ap> aps_;
  std::vector<Sta> stas_;
  std::vector<Exchange> active_;  // compacted on completion
};

}  // namespace cellfi::wifi
