#include "cellfi/radio/pathloss.h"

#include <algorithm>
#include <cmath>

#include "cellfi/common/units.h"

namespace cellfi {

double FreeSpacePathLoss::LossDb(double distance_m, double freq_hz) const {
  const double d = std::max(distance_m, 1.0);
  // FSPL = 20 log10(4 pi d / lambda)
  return 20.0 * std::log10(4.0 * M_PI * d / WavelengthM(freq_hz));
}

LogDistancePathLoss::LogDistancePathLoss(double exponent, double reference_m)
    : exponent_(exponent), reference_m_(std::max(reference_m, 1.0)) {}

double LogDistancePathLoss::LossDb(double distance_m, double freq_hz) const {
  const double d = std::max(distance_m, reference_m_);
  return free_space_.LossDb(reference_m_, freq_hz) +
         10.0 * exponent_ * std::log10(d / reference_m_);
}

HataUrbanPathLoss::HataUrbanPathLoss(double base_height_m, double mobile_height_m,
                                     bool small_city)
    : base_height_m_(base_height_m),
      mobile_height_m_(mobile_height_m),
      small_city_(small_city) {}

double HataUrbanPathLoss::LossDb(double distance_m, double freq_hz) const {
  const double d_km = std::max(distance_m, 1.0) / 1000.0;
  const double f_mhz = freq_hz / 1e6;
  const double log_f = std::log10(f_mhz);
  const double log_hb = std::log10(base_height_m_);

  double a_hm;  // mobile antenna correction factor
  if (small_city_) {
    a_hm = (1.1 * log_f - 0.7) * mobile_height_m_ - (1.56 * log_f - 0.8);
  } else if (f_mhz <= 300.0) {
    const double t = std::log10(1.54 * mobile_height_m_);
    a_hm = 8.29 * t * t - 1.1;
  } else {
    const double t = std::log10(11.75 * mobile_height_m_);
    a_hm = 3.2 * t * t - 4.97;
  }

  const double loss = 69.55 + 26.16 * log_f - 13.82 * log_hb - a_hm +
                      (44.9 - 6.55 * log_hb) * std::log10(std::max(d_km, 0.01));
  // Below ~10 m the Hata formula under-predicts; never report less than
  // free-space loss.
  return std::max(loss, FreeSpacePathLoss().LossDb(distance_m, freq_hz));
}

}  // namespace cellfi
