#include "cellfi/radio/shard_grid.h"

#include <algorithm>
#include <numeric>

#include "cellfi/common/units.h"

namespace cellfi {

void NeighborGraph::Build(const RadioEnvironment& env, double floor_db,
                          double bandwidth_hz) {
  n_ = env.node_count();
  floor_db_ = floor_db;
  bandwidth_hz_ = bandwidth_hz;
  position_epoch_ = env.position_epoch();
  bits_.assign((n_ * n_ + 63) / 64, 0);
  lists_.assign(n_, {});
  edges_ = 0;
  if (n_ == 0) return;

  // Same survivor predicate as InterferenceMap::AggregateDenomMw at
  // power_scale = 1: mean rx power >= noise * 10^(-floor/10). floor <= 0
  // disables the cull, so everything is a neighbor.
  const double cull_scale = floor_db > 0.0 ? DbToLinear(-floor_db) : 0.0;
  std::vector<double> floor_mw(n_, 0.0);
  for (std::size_t rx = 0; rx < n_; ++rx) {
    floor_mw[rx] =
        env.NoiseMw(static_cast<RadioNodeId>(rx), bandwidth_hz) * cull_scale;
  }

  const auto set_bit = [this](std::size_t a, std::size_t b) {
    const std::size_t bit = a * n_ + b;
    bits_[bit >> 6] |= std::uint64_t{1} << (bit & 63);
  };
  for (std::size_t a = 0; a < n_; ++a) {
    for (std::size_t b = a + 1; b < n_; ++b) {
      const RadioNodeId na = static_cast<RadioNodeId>(a);
      const RadioNodeId nb = static_cast<RadioNodeId>(b);
      // Union-symmetrized: audible in either direction makes the pair
      // neighbors, so Contains(a, b) == Contains(b, a) by construction.
      const bool neighbor =
          env.MeanRxPowerMw(na, nb) >= floor_mw[b] ||
          env.MeanRxPowerMw(nb, na) >= floor_mw[a];
      if (!neighbor) continue;
      set_bit(a, b);
      set_bit(b, a);
      lists_[a].push_back(nb);
      lists_[b].push_back(na);
      ++edges_;
    }
  }
  // a < b insertion order already leaves each list ascending; keep the
  // guarantee explicit against future edits.
  for (std::vector<RadioNodeId>& list : lists_) {
    std::sort(list.begin(), list.end());
  }
}

ShardGrid::ShardGrid(const std::vector<Point>& cell_positions, int shards) {
  const std::size_t n = cell_positions.size();
  std::size_t k = shards < 1 ? 1 : static_cast<std::size_t>(shards);
  if (n > 0 && k > n) k = n;
  if (n == 0) k = 1;

  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const Point& pa = cell_positions[static_cast<std::size_t>(a)];
    const Point& pb = cell_positions[static_cast<std::size_t>(b)];
    if (pa.x != pb.x) return pa.x < pb.x;
    if (pa.y != pb.y) return pa.y < pb.y;
    return a < b;  // total order: ties (co-located cells) break by index
  });

  shard_of_.assign(n, 0);
  cells_.assign(k, {});
  const std::size_t base = n / k;
  const std::size_t rem = n % k;
  std::size_t pos = 0;
  for (std::size_t s = 0; s < k; ++s) {
    const std::size_t take = base + (s < rem ? 1 : 0);
    for (std::size_t i = 0; i < take; ++i) {
      const int cell = order[pos++];
      shard_of_[static_cast<std::size_t>(cell)] = static_cast<int>(s);
      cells_[s].push_back(cell);
    }
    std::sort(cells_[s].begin(), cells_[s].end());
  }
}

std::size_t CountCrossShardEdges(const NeighborGraph& graph, const ShardGrid& grid,
                                 const std::vector<RadioNodeId>& cell_radios) {
  std::size_t crossing = 0;
  for (std::size_t a = 0; a < cell_radios.size(); ++a) {
    for (std::size_t b = a + 1; b < cell_radios.size(); ++b) {
      if (grid.shard_of(static_cast<int>(a)) == grid.shard_of(static_cast<int>(b))) {
        continue;
      }
      if (graph.Contains(cell_radios[a], cell_radios[b])) ++crossing;
    }
  }
  return crossing;
}

}  // namespace cellfi
