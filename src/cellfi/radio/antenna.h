// Antenna gain patterns.
//
// The paper's access points use a 6-7 dBi directional antenna with ~120
// degree sector width (Sections 3.1, 6.1); clients are omnidirectional.
#pragma once

#include <cmath>

#include "cellfi/common/geometry.h"

namespace cellfi {

/// Antenna pattern: peak gain plus a 3GPP-style parabolic sector rolloff.
class Antenna {
 public:
  /// Omnidirectional antenna with `gain_dbi` in every direction.
  static Antenna Omni(double gain_dbi);

  /// Sector antenna: `gain_dbi` at boresight, parabolic rolloff with the
  /// given 3 dB beamwidth, floor at `gain_dbi - front_to_back_db`.
  static Antenna Sector(double gain_dbi, double boresight_rad,
                        double beamwidth_rad, double front_to_back_db = 20.0);

  /// Gain in dBi toward absolute bearing `bearing_rad`.
  double GainDbi(double bearing_rad) const;

  /// Gain toward another point, given this antenna's position.
  double GainTowards(Point self, Point other) const;

  double peak_gain_dbi() const { return gain_dbi_; }
  bool omni() const { return omni_; }

 private:
  Antenna() = default;
  bool omni_ = true;
  double gain_dbi_ = 0.0;
  double boresight_rad_ = 0.0;
  double beamwidth_rad_ = 2.0 * M_PI;
  double front_to_back_db_ = 0.0;
};

}  // namespace cellfi
