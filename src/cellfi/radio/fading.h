// Stateless, hash-derived shadowing and small-scale fading.
//
// Both processes are deterministic functions of (seed, link, ...) so that
// every component observing the same link at the same time sees the same
// channel, without the simulator having to store per-link state.
//
//  * Shadowing: log-normal, constant per link (static nodes).
//  * Fading: block Rayleigh, i.i.d. per (link, subchannel, coherence block).
#pragma once

#include <cstdint>

#include "cellfi/common/time.h"

namespace cellfi {

/// SplitMix64-based hash of an arbitrary number of 64-bit words.
std::uint64_t HashWords(std::uint64_t a, std::uint64_t b = 0, std::uint64_t c = 0,
                        std::uint64_t d = 0);

/// Map a hash to a uniform double in (0, 1).
double HashToUnitInterval(std::uint64_t h);

/// Map a hash to a standard normal sample (Box-Muller on two derived
/// uniforms).
double HashToStandardNormal(std::uint64_t h);

/// Log-normal shadowing, symmetric in (a, b) — the channel is reciprocal.
class ShadowingField {
 public:
  /// `sigma_db` is the log-normal standard deviation (typ. 6-8 dB outdoor).
  ShadowingField(std::uint64_t seed, double sigma_db);

  /// Shadowing in dB for the link between node ids `a` and `b`.
  double ShadowDb(std::uint32_t a, std::uint32_t b) const;

  double sigma_db() const { return sigma_db_; }

 private:
  std::uint64_t seed_;
  double sigma_db_;
};

/// Block fading: the power gain is constant within a coherence block and
/// independent across blocks and subchannels. With `rician_k` = 0 the
/// amplitude is Rayleigh (power gain Exp(1)); a positive K adds a fixed
/// line-of-sight component (typical for the static outdoor nodes of a
/// CellFi deployment), shrinking the fade depth while keeping unit mean
/// power.
class FadingProcess {
 public:
  FadingProcess(std::uint64_t seed, SimTime coherence_time = 50 * kMillisecond,
                double rician_k = 0.0);

  /// Linear power gain (mean 1.0) for (a,b) link, subchannel, time.
  double PowerGain(std::uint32_t a, std::uint32_t b, std::uint32_t subchannel,
                   SimTime now) const;

  /// Same in dB.
  double GainDb(std::uint32_t a, std::uint32_t b, std::uint32_t subchannel,
                SimTime now) const;

  SimTime coherence_time() const { return coherence_time_; }
  double rician_k() const { return rician_k_; }

 private:
  std::uint64_t seed_;
  SimTime coherence_time_;
  double rician_k_;
};

}  // namespace cellfi
