#include "cellfi/radio/mobility.h"

#include <algorithm>
#include <cmath>

namespace cellfi {

RandomWaypointMobility::RandomWaypointMobility(Simulator& sim, RadioEnvironment& env,
                                               MobilityConfig config, std::uint64_t seed)
    : sim_(sim), env_(env), config_(config), rng_(seed) {}

void RandomWaypointMobility::Attach(RadioNodeId node) {
  Walker w;
  w.node = node;
  PickWaypoint(w);
  walkers_.push_back(w);
  const std::size_t index = walkers_.size() - 1;
  sim_.SchedulePeriodic(config_.update_period, [this, index] { Step(index); });
}

void RandomWaypointMobility::PickWaypoint(Walker& w) {
  w.target = {rng_.Uniform(config_.area_min, config_.area_max),
              rng_.Uniform(config_.area_min, config_.area_max)};
  w.speed_mps = rng_.Uniform(config_.min_speed_mps, config_.max_speed_mps);
}

void RandomWaypointMobility::Step(std::size_t index) {
  Walker& w = walkers_[index];
  if (sim_.Now() < w.pause_until) return;
  const Point pos = env_.node(w.node).position;
  const double step = w.speed_mps * ToSeconds(config_.update_period);
  const double dist = Distance(pos, w.target);
  Point next;
  if (dist <= step) {
    next = w.target;
    w.pause_until = sim_.Now() + FromSeconds(config_.pause_s);
    PickWaypoint(w);
  } else {
    next = {pos.x + (w.target.x - pos.x) / dist * step,
            pos.y + (w.target.y - pos.y) / dist * step};
  }
  env_.MoveNode(w.node, next);
  if (on_moved) on_moved(w.node, next);
}

LinearPathMobility::LinearPathMobility(Simulator& sim, RadioEnvironment& env,
                                       RadioNodeId node, Point from, Point to,
                                       double speed_mps, SimTime update_period)
    : sim_(sim),
      env_(env),
      node_(node),
      from_(from),
      to_(to),
      speed_mps_(speed_mps),
      update_period_(update_period) {}

void LinearPathMobility::Start() {
  started_at_ = sim_.Now();
  env_.MoveNode(node_, from_);
  sim_.SchedulePeriodic(update_period_, [this] { Step(); });
}

void LinearPathMobility::Step() {
  if (done_) return;
  const double travelled = speed_mps_ * ToSeconds(sim_.Now() - started_at_);
  const double total = Distance(from_, to_);
  if (travelled >= total) {
    env_.MoveNode(node_, to_);
    done_ = true;
    if (on_done) on_done();
    return;
  }
  const double f = travelled / total;
  env_.MoveNode(node_, {from_.x + (to_.x - from_.x) * f, from_.y + (to_.y - from_.y) * f});
}

}  // namespace cellfi
