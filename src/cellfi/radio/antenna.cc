#include "cellfi/radio/antenna.h"

#include <algorithm>

namespace cellfi {

Antenna Antenna::Omni(double gain_dbi) {
  Antenna a;
  a.omni_ = true;
  a.gain_dbi_ = gain_dbi;
  return a;
}

Antenna Antenna::Sector(double gain_dbi, double boresight_rad, double beamwidth_rad,
                        double front_to_back_db) {
  Antenna a;
  a.omni_ = false;
  a.gain_dbi_ = gain_dbi;
  a.boresight_rad_ = boresight_rad;
  a.beamwidth_rad_ = beamwidth_rad;
  a.front_to_back_db_ = front_to_back_db;
  return a;
}

double Antenna::GainDbi(double bearing_rad) const {
  if (omni_) return gain_dbi_;
  const double theta = AngleDiff(bearing_rad, boresight_rad_);
  // 3GPP TR 36.814 horizontal pattern: -min(12*(theta/theta3dB)^2, Am).
  const double ratio = theta / (beamwidth_rad_ / 2.0);
  const double attenuation = std::min(12.0 * ratio * ratio, front_to_back_db_);
  return gain_dbi_ - attenuation;
}

double Antenna::GainTowards(Point self, Point other) const {
  if (omni_) return gain_dbi_;
  return GainDbi(Bearing(self, other));
}

}  // namespace cellfi
