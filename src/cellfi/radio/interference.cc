#include "cellfi/radio/interference.h"

#include <cassert>
#include <stdexcept>

#include "cellfi/common/simd.h"
#include "cellfi/common/units.h"
#include "cellfi/radio/shard_grid.h"

namespace cellfi {

namespace {

bool SameList(const std::vector<ActiveTransmitter>& a,
              const std::vector<ActiveTransmitter>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].node != b[i].node || a[i].power_scale != b[i].power_scale) return false;
  }
  return true;
}

}  // namespace

InterferenceMap::InterferenceMap(const RadioEnvironment& env) : env_(env) {}

void InterferenceMap::BeginEpoch(int num_subchannels, double bandwidth_hz) {
  ++epoch_;
  num_subchannels_ = num_subchannels;
  bandwidth_hz_ = bandwidth_hz;
  const double floor_db = env_.config().interference_floor_db;
  cull_scale_ = floor_db > 0.0 ? DbToLinear(-floor_db) : 0.0;
  if (per_subchannel_.size() < static_cast<std::size_t>(num_subchannels)) {
    per_subchannel_.resize(static_cast<std::size_t>(num_subchannels));
  }
  for (int s = 0; s < num_subchannels; ++s) {
    per_subchannel_[static_cast<std::size_t>(s)].clear();
  }
  sealed_ = false;
  num_groups_ = 0;
  culled_epoch_.store(0, std::memory_order_relaxed);
  graph_active_ = cull_scale_ > 0.0 && GraphMatchesEpoch();
}

bool InterferenceMap::GraphMatchesEpoch() const {
  return neighbor_graph_ != nullptr && neighbor_graph_->built() &&
         neighbor_graph_->node_count() == env_.node_count() &&
         neighbor_graph_->build_position_epoch() == env_.position_epoch() &&
         neighbor_graph_->floor_db() == env_.config().interference_floor_db &&
         neighbor_graph_->bandwidth_hz() == bandwidth_hz_;
}

void InterferenceMap::AddTransmitter(int subchannel, RadioNodeId node,
                                     double power_scale) {
  if (sealed_) {
    // Release-build CHECK, not an assert: sharded producers stage appends
    // off-thread and merge at the barrier, where an append-after-Seal slips
    // in easily and silently desynchronizes the aggregation groups from
    // the lists they were computed over.
    throw std::logic_error(
        "InterferenceMap::AddTransmitter called after Seal(): the epoch's "
        "transmitter lists are frozen once grouped (first SinrDb or explicit "
        "Seal); call BeginEpoch before appending to a new epoch");
  }
  assert(subchannel >= 0 && subchannel < num_subchannels_);
  per_subchannel_[static_cast<std::size_t>(subchannel)].push_back(
      ActiveTransmitter{.node = node, .power_scale = power_scale});
}

void InterferenceMap::Seal() const {
  if (sealed_) return;
  sealed_ = true;
  group_of_.assign(static_cast<std::size_t>(num_subchannels_), 0);
  group_rep_.clear();
  num_groups_ = 0;
  for (int s = 0; s < num_subchannels_; ++s) {
    int group = -1;
    for (int g = 0; g < num_groups_; ++g) {
      if (SameList(per_subchannel_[static_cast<std::size_t>(s)],
                   per_subchannel_[static_cast<std::size_t>(group_rep_[
                       static_cast<std::size_t>(g)])])) {
        group = g;
        break;
      }
    }
    if (group < 0) {
      group = num_groups_++;
      group_rep_.push_back(s);
    }
    group_of_[static_cast<std::size_t>(s)] = group;
  }
  // Flatten each group's representative list into structure-of-arrays term
  // rows. power_scale <= 0 entries are dropped here once — both query
  // paths skip them unconditionally, so the contributing-term sequence is
  // unchanged — leaving the aggregation two dense arrays to stream.
  if (group_terms_.size() < static_cast<std::size_t>(num_groups_)) {
    group_terms_.resize(static_cast<std::size_t>(num_groups_));
  }
  for (int g = 0; g < num_groups_; ++g) {
    GroupTerms& gt = group_terms_[static_cast<std::size_t>(g)];
    gt.node.clear();
    gt.scale.clear();
    for (const ActiveTransmitter& it : per_subchannel_[static_cast<std::size_t>(
             group_rep_[static_cast<std::size_t>(g)])]) {
      if (it.power_scale <= 0.0) continue;
      gt.node.push_back(it.node);
      gt.scale.push_back(it.power_scale);
    }
  }
  // Presize the receiver rows here, at the (serial) barrier, so concurrent
  // queries never see a resize — each worker then only writes the rows of
  // receivers it owns.
  if (rows_.size() < env_.node_count()) rows_.resize(env_.node_count());
}

double InterferenceMap::AggregateDenomMw(RadioNodeId tx, RadioNodeId rx,
                                         int group,
                                         std::vector<double>& terms) const {
  // Same contributing-term sequence as RadioEnvironment::SinrDb — the same
  // cached mean powers gathered in list order — compacted into `terms` and
  // summed in the fixed 8-lane blocked order (simd::BlockedSum8, DESIGN.md
  // §17). Keeping sequence and order identical is what makes the engine
  // bit-identical to the per-link path when the cull is off, in scalar and
  // SIMD builds alike.
  const double noise_mw = env_.NoiseMw(rx, bandwidth_hz_);
  const double cull_floor_mw = noise_mw * cull_scale_;
  const GroupTerms& gt = group_terms_[static_cast<std::size_t>(group)];
  const std::size_t count = gt.node.size();
  // Presized index stores, not push_back: no per-element capacity branch
  // in the hot loop (capacity persists across epochs in the receiver row).
  if (terms.size() < count) terms.resize(count);
  double* out = terms.data();
  std::size_t m = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const RadioNodeId node = gt.node[i];
    const double scale = gt.scale[i];
    if (node == tx || node == rx) continue;
    if (graph_active_ && scale <= 1.0 && !neighbor_graph_->Contains(node, rx)) {
      // Non-neighbor => mean rx power < floor, so power_scale <= 1 makes
      // this exactly a term the check below would cull — same result, same
      // counters, without touching the power cache.
      culled_epoch_.fetch_add(1, std::memory_order_relaxed);
      culled_total_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    const double p = env_.MeanRxPowerMw(node, rx) * scale;
    if (p < cull_floor_mw) {  // never true with the cull off (p > 0 >= floor)
      culled_epoch_.fetch_add(1, std::memory_order_relaxed);
      culled_total_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    out[m++] = p;
  }
  return noise_mw + simd::BlockedSum8(out, m);
}

double InterferenceMap::SinrDb(RadioNodeId tx, RadioNodeId rx, int subchannel,
                               SimTime now, double signal_scale,
                               std::vector<ActiveTransmitter>* scratch) const {
  assert(subchannel >= 0 && subchannel < num_subchannels_);
  Seal();
  const std::vector<ActiveTransmitter>& list =
      per_subchannel_[static_cast<std::size_t>(subchannel)];

  if (env_.config().enable_fading) {
    // Fading is per (link, subchannel, time): the mean-power aggregate
    // cannot stand in for it, so sum per link over the shared list.
    if (cull_scale_ <= 0.0) {
      return env_.SinrDb(tx, rx, static_cast<std::uint32_t>(subchannel), now, list,
                         bandwidth_hz_, signal_scale);
    }
    const double cull_floor_mw = env_.NoiseMw(rx, bandwidth_hz_) * cull_scale_;
    std::vector<ActiveTransmitter>& survivors =
        scratch != nullptr ? *scratch : cull_scratch_;
    survivors.clear();
    for (const ActiveTransmitter& it : list) {
      if (it.node == tx || it.node == rx || it.power_scale <= 0.0) continue;
      if (graph_active_ && it.power_scale <= 1.0 &&
          !neighbor_graph_->Contains(it.node, rx)) {
        culled_epoch_.fetch_add(1, std::memory_order_relaxed);
        culled_total_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (env_.MeanRxPowerMw(it.node, rx) * it.power_scale < cull_floor_mw) {
        culled_epoch_.fetch_add(1, std::memory_order_relaxed);
        culled_total_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      survivors.push_back(it);
    }
    return env_.SinrDb(tx, rx, static_cast<std::uint32_t>(subchannel), now,
                       survivors, bandwidth_hz_, signal_scale);
  }

  if (rows_.size() < env_.node_count()) rows_.resize(env_.node_count());
  ReceiverRow& row = rows_[rx];
  if (row.epoch != epoch_ || row.excluded != tx ||
      row.position_epoch != env_.position_epoch()) {
    row.epoch = epoch_;
    row.excluded = tx;
    row.position_epoch = env_.position_epoch();
    row.denom_mw.assign(static_cast<std::size_t>(num_groups_), 0.0);
    row.built.assign(static_cast<std::size_t>(num_groups_), 0);
  }
  const std::size_t g =
      static_cast<std::size_t>(group_of_[static_cast<std::size_t>(subchannel)]);
  if (!row.built[g]) {
    row.denom_mw[g] = AggregateDenomMw(tx, rx, static_cast<int>(g), row.terms);
    row.built[g] = 1;
  }
  const double signal_mw = env_.MeanRxPowerMw(tx, rx) * signal_scale;
  return LinearToDb(signal_mw / row.denom_mw[g]);
}

}  // namespace cellfi
