// RadioEnvironment: node registry + link budget + SINR computation.
//
// All MAC layers (LTE, Wi-Fi) query this one component so that coverage
// comparisons between technologies use identical propagation (Section 6.3.4
// of the paper: "We model loss propagation and noise floor based on our
// range measurements").
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "cellfi/common/geometry.h"
#include "cellfi/common/time.h"
#include "cellfi/common/units.h"
#include "cellfi/radio/antenna.h"
#include "cellfi/radio/fading.h"
#include "cellfi/radio/pathloss.h"

namespace cellfi {

/// Identifies a radio node within one RadioEnvironment.
using RadioNodeId = std::uint32_t;

/// Static radio configuration of a node.
struct RadioNode {
  Point position;
  Antenna antenna = Antenna::Omni(0.0);
  double tx_power_dbm = 20.0;
  double noise_figure_db = 7.0;
};

/// Configuration of the shared medium.
struct RadioEnvironmentConfig {
  double carrier_freq_hz = 600.0 * units::MHz;
  double shadowing_sigma_db = 6.0;
  SimTime fading_coherence_time = 50 * kMillisecond;
  bool enable_fading = true;
  /// Rician K-factor (linear). 0 = Rayleigh; ~6-10 for static outdoor
  /// nodes with a line-of-sight component.
  double rician_k = 0.0;
  /// Negligible-interferer cull for the interference engine
  /// (InterferenceMap): interferers whose mean rx power is at least this
  /// many dB below the receiver's noise floor are dropped from the
  /// precomputed interference lists. <= 0 disables the cull (the default:
  /// every interferer counts and the engine is bit-identical to the
  /// per-link path). See DESIGN.md §12 for when enabling it is safe.
  double interference_floor_db = 0.0;
  std::uint64_t seed = 1;
};

/// A transmission contributing interference at a receiver: who transmits
/// and with what fraction of its power in the measured band.
struct ActiveTransmitter {
  RadioNodeId node;
  double power_scale = 1.0;  // fraction of tx power in the observed band
};

/// Shared propagation environment for one simulation.
class RadioEnvironment {
 public:
  /// `pathloss` must outlive the environment.
  RadioEnvironment(const PathLossModel& pathloss, RadioEnvironmentConfig config);

  /// Register a node; returns its id.
  RadioNodeId AddNode(RadioNode node);

  /// Move a node (mobility). Invalidates the cached link gains involving
  /// it; O(n) per move, intended for coarse-grained position updates
  /// (hundreds of ms), not per-subframe motion.
  void MoveNode(RadioNodeId id, Point new_position);

  std::size_t node_count() const { return nodes_.size(); }
  const RadioNode& node(RadioNodeId id) const { return nodes_[id]; }

  /// Large-scale link gain (antenna gains - path loss - shadowing), dB.
  /// Symmetric. Cached after first computation.
  double LinkGainDb(RadioNodeId tx, RadioNodeId rx) const;

  /// Received power from `tx` at `rx` on `subchannel` at time `now`,
  /// including fading, dBm.
  double RxPowerDbm(RadioNodeId tx, RadioNodeId rx, std::uint32_t subchannel,
                    SimTime now) const;

  /// Average received power (no fading), dBm.
  double MeanRxPowerDbm(RadioNodeId tx, RadioNodeId rx) const;

  /// Average received power (no fading), mW — cached; the hot path for
  /// SINR aggregation works entirely in linear units.
  double MeanRxPowerMw(RadioNodeId tx, RadioNodeId rx) const;

  /// Thermal noise power at `rx` over `bandwidth_hz`, dBm.
  double NoiseDbm(RadioNodeId rx, double bandwidth_hz) const;

  /// Thermal noise power at `rx` over `bandwidth_hz`, mW — memoized per
  /// receiver for the last two bandwidths queried (MAC layers alternate
  /// between subchannel and full-band evaluations at the same receiver),
  /// so the SINR hot path pays no log/pow.
  double NoiseMw(RadioNodeId rx, double bandwidth_hz) const;

  /// Monotonic stamp bumped by every AddNode/MoveNode. Consumers that
  /// cache geometry-derived values (InterferenceMap rows, the LTE CRS
  /// penalty cache) compare it to detect mobility invalidation.
  std::uint64_t position_epoch() const { return position_epoch_; }

  /// SINR in dB at `rx` for the signal from `tx` on `subchannel`, given the
  /// set of concurrently active interferers (excluding `tx` itself) and the
  /// per-subchannel bandwidth. `signal_scale` is the fraction of the
  /// transmitter's total power radiated in the measured band (e.g. 1/13 for
  /// one of 13 subchannels under flat PSD, or 1/n_alloc for an uplink
  /// transmission concentrating full power into n_alloc subchannels).
  double SinrDb(RadioNodeId tx, RadioNodeId rx, std::uint32_t subchannel, SimTime now,
                const std::vector<ActiveTransmitter>& interferers,
                double bandwidth_hz, double signal_scale = 1.0) const;

  /// SNR in dB with no interference (wideband, no fading).
  double MeanSnrDb(RadioNodeId tx, RadioNodeId rx, double bandwidth_hz) const;

  const RadioEnvironmentConfig& config() const { return config_; }
  const FadingProcess& fading() const { return fading_; }

 private:
  const PathLossModel& pathloss_;
  RadioEnvironmentConfig config_;
  ShadowingField shadowing_;
  FadingProcess fading_;
  std::vector<RadioNode> nodes_;
  mutable std::vector<double> gain_cache_;  // n*n link gain dB, NaN = unset
  /// n*n mean rx power mW, NaN = unset. Receiver-major: row rx*n holds the
  /// power received at `rx` from every transmitter contiguously, so one
  /// SINR aggregation walks a single cache line run instead of striding.
  mutable std::vector<double> rx_mw_cache_;
  /// Per-receiver two-slot (bandwidth_hz, noise_mw) memo for NoiseMw,
  /// most-recently-used first. One slot thrashes when callers alternate
  /// between subchannel and full-band noise at the same receiver.
  struct NoiseMemo {
    double bandwidth_hz[2] = {0.0, 0.0};
    double noise_mw[2] = {0.0, 0.0};
  };
  mutable std::vector<NoiseMemo> noise_mw_cache_;
  std::uint64_t position_epoch_ = 1;
};

}  // namespace cellfi
