// Path-loss models for UHF/TVWS outdoor propagation.
//
// Fig. 1 of the paper measures ~1.3 km range at 36 dBm EIRP in an urban
// environment; `HataUrbanPathLoss` (Okumura-Hata, valid 150-1500 MHz, which
// covers the TVWS band) reproduces that profile. Free-space and log-distance
// models are provided for tests and indoor scenarios.
#pragma once

#include <memory>

namespace cellfi {

/// Interface: distance/frequency -> path loss in dB.
class PathLossModel {
 public:
  virtual ~PathLossModel() = default;

  /// Path loss in dB for a link of `distance_m` metres at `freq_hz`.
  /// Distances below 1 m are clamped to 1 m.
  virtual double LossDb(double distance_m, double freq_hz) const = 0;
};

/// Free-space (Friis) path loss.
class FreeSpacePathLoss final : public PathLossModel {
 public:
  double LossDb(double distance_m, double freq_hz) const override;
};

/// Log-distance model: loss at reference distance (free space) plus
/// 10*n*log10(d/d0).
class LogDistancePathLoss final : public PathLossModel {
 public:
  explicit LogDistancePathLoss(double exponent, double reference_m = 1.0);
  double LossDb(double distance_m, double freq_hz) const override;

 private:
  double exponent_;
  double reference_m_;
  FreeSpacePathLoss free_space_;
};

/// Okumura-Hata urban model for macro/small-cell UHF links.
/// Valid 150-1500 MHz, base height 10-200 m, mobile height 1-10 m.
class HataUrbanPathLoss final : public PathLossModel {
 public:
  /// Heights in metres; `small_city` selects the mobile-antenna correction.
  HataUrbanPathLoss(double base_height_m = 15.0, double mobile_height_m = 1.5,
                    bool small_city = true);
  double LossDb(double distance_m, double freq_hz) const override;

 private:
  double base_height_m_;
  double mobile_height_m_;
  bool small_city_;
};

}  // namespace cellfi
