// Spatial sharding primitives for intra-replication parallelism
// (DESIGN.md §15).
//
// NeighborGraph formalizes the PR 4 negligible-interferer cull into an
// explicit, reusable structure: node `a` and node `b` are neighbors iff at
// least one direction's mean received power clears the receiver's noise
// floor scaled down by `floor_db` — exactly the survivor condition of the
// InterferenceMap cull at power_scale = 1. Because every real transmission
// radiates with power_scale <= 1, a non-neighbor can never survive the
// cull, so the graph is a sound (no-false-negative) bound on which
// transmitters can matter to which receivers. InterferenceMap uses it as a
// provably result-identical fast path; the shard layer uses it to measure
// cross-shard coupling.
//
// ShardGrid partitions the cell grid into K spatially contiguous, balanced
// groups (sort by x, then y, then index; chunk). The partition only decides
// WHICH thread computes a cell's subframe work — merge order at the
// subframe barrier is always global cell-index order, so the partition has
// no effect on results.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cellfi/common/geometry.h"
#include "cellfi/radio/environment.h"

namespace cellfi {

class NeighborGraph {
 public:
  /// Build the graph over every node currently registered in `env`.
  /// `floor_db` mirrors RadioEnvironmentConfig::interference_floor_db
  /// (<= 0 makes every pair a neighbor — nothing is negligible);
  /// `bandwidth_hz` is the per-subchannel bandwidth the noise floors are
  /// evaluated over. Deterministic: fixed node-index iteration over cached
  /// pure link quantities. Building touches every (tx, rx) pair, which
  /// doubles as a prewarm of the environment's link caches.
  void Build(const RadioEnvironment& env, double floor_db, double bandwidth_hz);

  bool built() const { return n_ > 0; }
  std::size_t node_count() const { return n_; }
  double floor_db() const { return floor_db_; }
  double bandwidth_hz() const { return bandwidth_hz_; }
  /// env.position_epoch() at build time; a mismatch means node positions
  /// changed since and the graph must be rebuilt before reuse.
  std::uint64_t build_position_epoch() const { return position_epoch_; }

  /// Symmetric adjacency test. Self-pairs are never neighbors.
  bool Contains(RadioNodeId a, RadioNodeId b) const {
    const std::size_t bit =
        static_cast<std::size_t>(a) * n_ + static_cast<std::size_t>(b);
    return (bits_[bit >> 6] >> (bit & 63)) & 1u;
  }

  /// Ascending neighbor ids of `id`.
  const std::vector<RadioNodeId>& neighbors(RadioNodeId id) const {
    return lists_[static_cast<std::size_t>(id)];
  }

  /// Undirected edge count (self excluded).
  std::size_t edge_count() const { return edges_; }

 private:
  std::size_t n_ = 0;
  double floor_db_ = 0.0;
  double bandwidth_hz_ = 0.0;
  std::uint64_t position_epoch_ = 0;
  std::vector<std::uint64_t> bits_;  // n*n adjacency, symmetric
  std::vector<std::vector<RadioNodeId>> lists_;
  std::size_t edges_ = 0;
};

/// Balanced spatially contiguous partition of the cell grid.
class ShardGrid {
 public:
  /// Partition `cell_positions.size()` cells into at most `shards` groups
  /// (clamped to [1, cell count]). Deterministic for a given input.
  ShardGrid(const std::vector<Point>& cell_positions, int shards);

  int num_shards() const { return static_cast<int>(cells_.size()); }
  int shard_of(int cell) const { return shard_of_[static_cast<std::size_t>(cell)]; }
  /// Cell indices owned by `shard`, ascending.
  const std::vector<int>& cells(int shard) const {
    return cells_[static_cast<std::size_t>(shard)];
  }

 private:
  std::vector<int> shard_of_;
  std::vector<std::vector<int>> cells_;
};

/// Undirected neighbor edges between cells of different shards —
/// `cell_radios[i]` is cell i's radio node. The coupling the subframe
/// barrier has to exchange; a diagnostic for partition quality.
std::size_t CountCrossShardEdges(const NeighborGraph& graph, const ShardGrid& grid,
                                 const std::vector<RadioNodeId>& cell_radios);

}  // namespace cellfi
