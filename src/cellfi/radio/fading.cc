#include "cellfi/radio/fading.h"

#include <algorithm>
#include <cmath>

#include "cellfi/common/units.h"

namespace cellfi {

namespace {
// cellfi-purity: allow(draws_rng) — stateless mixing step: a pure function
// of its argument with no stream state, the DESIGN.md §13 sanctioned
// alternative to Rng inside parallel phases.
std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}
}  // namespace

std::uint64_t HashWords(std::uint64_t a, std::uint64_t b, std::uint64_t c,
                        std::uint64_t d) {
  // cellfi-purity: allow(draws_rng) — keyed purely by the four input words.
  std::uint64_t h = SplitMix64(a);
  h = SplitMix64(h ^ b);
  h = SplitMix64(h ^ c);
  h = SplitMix64(h ^ d);
  return h;
}

double HashToUnitInterval(std::uint64_t h) {
  // Use the top 53 bits; offset by half an ulp so the result is never 0.
  return (static_cast<double>(h >> 11) + 0.5) * (1.0 / 9007199254740992.0);
}

double HashToStandardNormal(std::uint64_t h) {
  // cellfi-purity: allow(draws_rng) — Box–Muller over hash-derived uniforms;
  // deterministic per input hash.
  const double u1 = HashToUnitInterval(SplitMix64(h));
  const double u2 = HashToUnitInterval(SplitMix64(h ^ 0xA5A5A5A5A5A5A5A5ull));
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

ShadowingField::ShadowingField(std::uint64_t seed, double sigma_db)
    : seed_(seed), sigma_db_(sigma_db) {}

double ShadowingField::ShadowDb(std::uint32_t a, std::uint32_t b) const {
  const std::uint32_t lo = std::min(a, b);
  const std::uint32_t hi = std::max(a, b);
  return sigma_db_ * HashToStandardNormal(HashWords(seed_, lo, hi));
}

FadingProcess::FadingProcess(std::uint64_t seed, SimTime coherence_time, double rician_k)
    : seed_(seed), coherence_time_(coherence_time), rician_k_(rician_k) {}

double FadingProcess::PowerGain(std::uint32_t a, std::uint32_t b,
                                std::uint32_t subchannel, SimTime now) const {
  const std::uint32_t lo = std::min(a, b);
  const std::uint32_t hi = std::max(a, b);
  const std::uint64_t block = static_cast<std::uint64_t>(now / coherence_time_);
  const std::uint64_t h = HashWords(seed_, (static_cast<std::uint64_t>(lo) << 32) | hi,
                                    subchannel, block);
  if (rician_k_ <= 0.0) {
    // Exp(1) power gain: Rayleigh amplitude fading.
    return -std::log(HashToUnitInterval(h));
  }
  // Rician: h = sqrt(K/(K+1)) + sqrt(1/(2(K+1))) * (x + jy), x,y ~ N(0,1);
  // E[|h|^2] = 1.
  const double los = std::sqrt(rician_k_ / (rician_k_ + 1.0));
  const double sigma = std::sqrt(1.0 / (2.0 * (rician_k_ + 1.0)));
  const double x = HashToStandardNormal(h);
  const double y = HashToStandardNormal(HashWords(h, 0x5EED5EED5EED5EEDull));
  const double re = los + sigma * x;
  const double im = sigma * y;
  return re * re + im * im;
}

double FadingProcess::GainDb(std::uint32_t a, std::uint32_t b, std::uint32_t subchannel,
                             SimTime now) const {
  return LinearToDb(std::max(PowerGain(a, b, subchannel, now), 1e-12));
}

}  // namespace cellfi
