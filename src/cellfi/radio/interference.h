// Per-epoch interference engine (DESIGN.md §12).
//
// One map is (re)built once per decision epoch — an LTE subframe, after
// every transmitter has committed its plan — and then answers every SINR
// query of that epoch from shared precomputed state instead of rebuilding a
// per-link interferer vector for each (receiver, subchannel):
//
//   * a per-subchannel list of active transmitters, appended in the
//     caller's (deterministic) iteration order and shared by all receivers;
//   * with fading disabled, a per-receiver aggregate denominator (noise +
//     mean interference power, mW) per distinct transmitter list, cached in
//     a lazily built receiver row;
//   * an optional negligible-interferer cull
//     (RadioEnvironmentConfig::interference_floor_db).
//
// Determinism contract: with culling off, SinrDb returns bit-identical
// values to RadioEnvironment::SinrDb over the same interferer sequence.
// Both paths gather contributing terms from the same receiver-major
// rx-power cache rows in append order and accumulate them in the fixed
// 8-lane blocked order of DESIGN.md §17 (contributing term i -> lane
// i mod 8, fixed lane-combine tree; here via simd::BlockedSum8 over a
// compacted structure-of-arrays term row, in the per-link path via inline
// lanes) — the same floating-point addition sequence, hence identical
// values, in scalar and SIMD builds alike. Subchannels whose transmitter
// lists compare equal share one aggregation (identical addition sequence,
// hence identical value).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "cellfi/common/time.h"
#include "cellfi/radio/environment.h"

namespace cellfi {

class NeighborGraph;

class InterferenceMap {
 public:
  /// `env` must outlive the map.
  explicit InterferenceMap(const RadioEnvironment& env);

  /// Start a new epoch: clears the transmitter lists and invalidates every
  /// receiver row. `bandwidth_hz` is the per-subchannel bandwidth used for
  /// the noise floor of every aggregate.
  void BeginEpoch(int num_subchannels, double bandwidth_hz);

  /// Append an active transmitter on `subchannel`. Call order defines the
  /// interference accumulation order; callers iterate their transmitter
  /// sets in a fixed order (cell index, then transmission, then
  /// subchannel) so results are reproducible. The signal source itself may
  /// be present — it is skipped at query time (node == tx), matching
  /// RadioEnvironment::SinrDb.
  ///
  /// Appending after Seal() is a programming error CHECKed in every build
  /// (throws std::logic_error): sharded producers stage appends on worker
  /// threads and merge them at the subframe barrier, which makes a
  /// late-append bug both easier to write and quietly corrupting — the
  /// sealed aggregation groups would no longer describe the lists.
  void AddTransmitter(int subchannel, RadioNodeId node, double power_scale);

  /// Deduplicate per-subchannel lists into aggregation groups and presize
  /// the receiver rows. Idempotent within an epoch. Serial callers may let
  /// the first SinrDb of the epoch invoke it lazily; sharded callers MUST
  /// call it at the barrier, before the first concurrent query, so no
  /// worker mutates shared group/row storage.
  void Seal() const;

  /// SINR in dB for the signal tx -> rx on `subchannel`, against every
  /// transmitter appended this epoch except tx and rx themselves.
  ///
  /// With fading disabled the denominator comes from the receiver's cached
  /// aggregate row (built lazily per aggregation group, invalidated by
  /// BeginEpoch, by a change of serving transmitter and by node mobility).
  /// With fading enabled the mean-power aggregate would be wrong — the
  /// per-subchannel fading term cannot be pre-aggregated — so the query
  /// falls back to per-link summation over the shared list.
  ///
  /// Thread safety (DESIGN.md §15): after a serial Seal(), concurrent
  /// SinrDb calls are safe as long as no two threads query the same
  /// receiver `rx` — all mutable state is receiver-indexed except the cull
  /// counters (relaxed atomics; their sums are order-independent) and the
  /// fading-path cull scratch, for which concurrent callers must pass a
  /// per-thread `scratch` buffer (nullptr = shared member, serial only).
  // cellfi-purity: contract-root(parallel-shard-phase) InterferenceMap::SinrDb
  // cellfi-purity: contract-root(imap-sealed-read) InterferenceMap::SinrDb
  double SinrDb(RadioNodeId tx, RadioNodeId rx, int subchannel, SimTime now,
                double signal_scale,
                std::vector<ActiveTransmitter>* scratch = nullptr) const;

  /// Attach a prebuilt NeighborGraph as a cull fast path (nullptr
  /// detaches). Checked at BeginEpoch and used only when it provably
  /// changes nothing: the cull must be enabled and the graph must match
  /// the environment's node count, floor and bandwidth and the current
  /// position epoch. A non-neighbor at power_scale <= 1 is, by the graph's
  /// construction, exactly a transmitter the cull would drop — so results
  /// and cull counters are bit-identical with or without the graph.
  void SetNeighborGraph(const NeighborGraph* graph) { neighbor_graph_ = graph; }
  /// True if the current epoch is using the attached graph (test hook).
  bool using_neighbor_graph() const { return graph_active_; }

  /// The shared transmitter list for one subchannel (bench/test hook).
  const std::vector<ActiveTransmitter>& transmitters(int subchannel) const {
    return per_subchannel_[static_cast<std::size_t>(subchannel)];
  }

  int num_subchannels() const { return num_subchannels_; }
  /// Distinct transmitter lists this epoch (valid once sealed).
  int num_groups() const { return num_groups_; }

  /// Interference terms dropped by the cull in the current epoch / since
  /// construction. With the cull disabled both stay 0. Relaxed atomics:
  /// concurrent shard queries bump them in arbitrary order, but the sums
  /// are order-independent, so the values read at the barrier are
  /// deterministic for any shard count.
  std::uint64_t culled_this_epoch() const {
    return culled_epoch_.load(std::memory_order_relaxed);
  }
  std::uint64_t culled_total() const {
    return culled_total_.load(std::memory_order_relaxed);
  }

 private:
  /// Per-receiver cache of aggregate denominators, one slot per
  /// aggregation group. A row is valid for one (epoch, excluded
  /// transmitter, mobility stamp) combination; its group slots fill
  /// lazily, so only queried subchannels pay for aggregation.
  struct ReceiverRow {
    std::uint64_t epoch = 0;           // InterferenceMap epoch at build
    std::uint64_t position_epoch = 0;  // RadioEnvironment mobility stamp
    RadioNodeId excluded = 0;          // signal source baked out of the sum
    std::vector<double> denom_mw;      // per aggregation group
    std::vector<std::uint8_t> built;   // per aggregation group
    /// Compacted contributing-term powers (mW) fed to simd::BlockedSum8.
    /// Receiver-owned, so concurrent queries of distinct receivers never
    /// share it (same ownership rule as the row itself).
    std::vector<double> terms;
  };

  /// Structure-of-arrays view of one aggregation group's transmitter list
  /// (power_scale <= 0 entries dropped at Seal — both query paths skip
  /// them unconditionally), so the aggregation walks two flat arrays
  /// instead of striding over ActiveTransmitter records.
  struct GroupTerms {
    std::vector<RadioNodeId> node;
    std::vector<double> scale;
  };

  /// Aggregate denominator for aggregation group `group`: noise floor plus
  /// the blocked-order sum (simd::BlockedSum8) of the surviving terms,
  /// compacted into `terms` (the querying receiver's row scratch).
  // cellfi-purity: contract-root(imap-sealed-read) InterferenceMap::AggregateDenomMw
  double AggregateDenomMw(RadioNodeId tx, RadioNodeId rx, int group,
                          std::vector<double>& terms) const;
  /// The graph-vs-cull equivalence only holds when the graph describes the
  /// current geometry and floor; recomputed each BeginEpoch.
  bool GraphMatchesEpoch() const;

  const RadioEnvironment& env_;
  int num_subchannels_ = 0;
  double bandwidth_hz_ = 0.0;
  /// Linear cull threshold relative to the receiver's noise floor:
  /// interferer mean power < noise * cull_scale_ is dropped. 0 = cull off.
  double cull_scale_ = 0.0;
  std::uint64_t epoch_ = 0;
  std::vector<std::vector<ActiveTransmitter>> per_subchannel_;
  const NeighborGraph* neighbor_graph_ = nullptr;
  bool graph_active_ = false;

  mutable bool sealed_ = false;
  mutable int num_groups_ = 0;
  mutable std::vector<int> group_of_;   // subchannel -> aggregation group
  mutable std::vector<int> group_rep_;  // group -> representative subchannel
  mutable std::vector<GroupTerms> group_terms_;  // group -> SoA term row
  mutable std::vector<ReceiverRow> rows_;
  mutable std::vector<ActiveTransmitter> cull_scratch_;
  mutable std::atomic<std::uint64_t> culled_epoch_{0};
  mutable std::atomic<std::uint64_t> culled_total_{0};
};

}  // namespace cellfi
