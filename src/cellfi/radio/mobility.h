// Node mobility models.
//
// Positions update at a coarse period (default 100 ms) through
// RadioEnvironment::MoveNode, which keeps the link-gain caches honest.
// Used for drive-test style experiments and the handover machinery
// (paper Section 7: "CellFi ... provides seamless roaming across access
// points").
#pragma once

#include <functional>
#include <vector>

#include "cellfi/common/geometry.h"
#include "cellfi/common/rng.h"
#include "cellfi/radio/environment.h"
#include "cellfi/sim/event_queue.h"

namespace cellfi {

struct MobilityConfig {
  double min_speed_mps = 0.5;   // pedestrian
  double max_speed_mps = 3.0;
  double pause_s = 2.0;         // dwell at each waypoint
  double area_min = 0.0;        // square area bounds for waypoints
  double area_max = 2000.0;
  SimTime update_period = 100 * kMillisecond;
};

/// Random-waypoint mobility: each attached node walks to a uniformly
/// random waypoint at a uniformly random speed, pauses, repeats.
class RandomWaypointMobility {
 public:
  RandomWaypointMobility(Simulator& sim, RadioEnvironment& env, MobilityConfig config,
                         std::uint64_t seed = 1);

  /// Start moving `node`. Call before or after Simulator::Run begins.
  void Attach(RadioNodeId node);

  /// Fired after every position update (for traces).
  std::function<void(RadioNodeId, Point)> on_moved;

  std::size_t attached_count() const { return walkers_.size(); }

 private:
  struct Walker {
    RadioNodeId node = 0;
    Point target;
    double speed_mps = 1.0;
    SimTime pause_until = 0;
  };
  void Step(std::size_t index);
  void PickWaypoint(Walker& w);

  Simulator& sim_;
  RadioEnvironment& env_;
  MobilityConfig config_;
  Rng rng_;
  std::vector<Walker> walkers_;
};

/// Scripted linear path: node moves from `from` to `to` at `speed_mps`
/// (drive-test / Fig. 1-style walks). Calls `on_done` at arrival.
class LinearPathMobility {
 public:
  LinearPathMobility(Simulator& sim, RadioEnvironment& env, RadioNodeId node,
                     Point from, Point to, double speed_mps,
                     SimTime update_period = 100 * kMillisecond);

  void Start();
  std::function<void()> on_done;

 private:
  void Step();

  Simulator& sim_;
  RadioEnvironment& env_;
  RadioNodeId node_;
  Point from_, to_;
  double speed_mps_;
  SimTime update_period_;
  SimTime started_at_ = 0;
  bool done_ = false;
};

}  // namespace cellfi
