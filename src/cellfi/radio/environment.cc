#include "cellfi/radio/environment.h"

#include <cassert>
#include <cmath>
#include <limits>
#include <utility>

#include "cellfi/common/simd.h"

namespace cellfi {

RadioEnvironment::RadioEnvironment(const PathLossModel& pathloss,
                                   RadioEnvironmentConfig config)
    : pathloss_(pathloss),
      config_(config),
      shadowing_(config.seed, config.shadowing_sigma_db),
      fading_(config.seed ^ 0xFAD1FAD1FAD1FAD1ull, config.fading_coherence_time,
              config.rician_k) {}

RadioNodeId RadioEnvironment::AddNode(RadioNode node) {
  nodes_.push_back(node);
  gain_cache_.assign(nodes_.size() * nodes_.size(),
                     std::numeric_limits<double>::quiet_NaN());
  rx_mw_cache_.assign(nodes_.size() * nodes_.size(),
                      std::numeric_limits<double>::quiet_NaN());
  noise_mw_cache_.assign(nodes_.size(), NoiseMemo{});
  ++position_epoch_;
  return static_cast<RadioNodeId>(nodes_.size() - 1);
}

void RadioEnvironment::MoveNode(RadioNodeId id, Point new_position) {
  assert(id < nodes_.size());
  nodes_[id].position = new_position;
  const std::size_t n = nodes_.size();
  for (std::size_t other = 0; other < n; ++other) {
    gain_cache_[id * n + other] = std::numeric_limits<double>::quiet_NaN();
    gain_cache_[other * n + id] = std::numeric_limits<double>::quiet_NaN();
    rx_mw_cache_[id * n + other] = std::numeric_limits<double>::quiet_NaN();
    rx_mw_cache_[other * n + id] = std::numeric_limits<double>::quiet_NaN();
  }
  ++position_epoch_;
}

double RadioEnvironment::LinkGainDb(RadioNodeId tx, RadioNodeId rx) const {
  assert(tx < nodes_.size() && rx < nodes_.size());
  assert(tx != rx);
  double& cached = gain_cache_[tx * nodes_.size() + rx];
  if (!std::isnan(cached)) return cached;

  const RadioNode& t = nodes_[tx];
  const RadioNode& r = nodes_[rx];
  const double dist = Distance(t.position, r.position);
  const double loss = pathloss_.LossDb(dist, config_.carrier_freq_hz);
  const double gain = t.antenna.GainTowards(t.position, r.position) +
                      r.antenna.GainTowards(r.position, t.position) - loss +
                      shadowing_.ShadowDb(tx, rx);
  cached = gain;
  gain_cache_[rx * nodes_.size() + tx] = gain;  // reciprocal channel
  return gain;
}

double RadioEnvironment::MeanRxPowerDbm(RadioNodeId tx, RadioNodeId rx) const {
  return nodes_[tx].tx_power_dbm + LinkGainDb(tx, rx);
}

double RadioEnvironment::MeanRxPowerMw(RadioNodeId tx, RadioNodeId rx) const {
  // Receiver-major: all powers arriving at `rx` share one contiguous row.
  double& cached = rx_mw_cache_[rx * nodes_.size() + tx];
  if (std::isnan(cached)) cached = DbmToMw(MeanRxPowerDbm(tx, rx));
  return cached;
}

double RadioEnvironment::RxPowerDbm(RadioNodeId tx, RadioNodeId rx,
                                    std::uint32_t subchannel, SimTime now) const {
  double p = MeanRxPowerDbm(tx, rx);
  if (config_.enable_fading) p += fading_.GainDb(tx, rx, subchannel, now);
  return p;
}

double RadioEnvironment::NoiseDbm(RadioNodeId rx, double bandwidth_hz) const {
  return NoisePowerDbm(bandwidth_hz, nodes_[rx].noise_figure_db);
}

double RadioEnvironment::NoiseMw(RadioNodeId rx, double bandwidth_hz) const {
  NoiseMemo& memo = noise_mw_cache_[rx];
  if (memo.bandwidth_hz[0] == bandwidth_hz) return memo.noise_mw[0];
  if (memo.bandwidth_hz[1] == bandwidth_hz) {
    // Promote to MRU so an alternating pair of bandwidths always hits.
    std::swap(memo.bandwidth_hz[0], memo.bandwidth_hz[1]);
    std::swap(memo.noise_mw[0], memo.noise_mw[1]);
    return memo.noise_mw[0];
  }
  memo.bandwidth_hz[1] = memo.bandwidth_hz[0];
  memo.noise_mw[1] = memo.noise_mw[0];
  memo.bandwidth_hz[0] = bandwidth_hz;
  memo.noise_mw[0] = DbmToMw(NoiseDbm(rx, bandwidth_hz));
  return memo.noise_mw[0];
}

double RadioEnvironment::SinrDb(RadioNodeId tx, RadioNodeId rx, std::uint32_t subchannel,
                                SimTime now,
                                const std::vector<ActiveTransmitter>& interferers,
                                double bandwidth_hz, double signal_scale) const {
  // Fully linear hot path: the receiver's contiguous mean-power row plus
  // the memoized noise floor leave only the fading hash per term.
  const std::size_t n = nodes_.size();
  double* row = &rx_mw_cache_[rx * n];
  double signal_mw = row[tx];
  if (std::isnan(signal_mw)) signal_mw = row[tx] = DbmToMw(MeanRxPowerDbm(tx, rx));
  signal_mw *= signal_scale;
  if (config_.enable_fading) signal_mw *= fading_.PowerGain(tx, rx, subchannel, now);
  // Blocked accumulation (DESIGN.md §17): contributing term i goes to lane
  // i mod 8, lanes combine with the fixed ReduceLanes8 tree. Skipped
  // entries are compacted out (they never occupy a lane), so the value
  // depends only on the contributing-term sequence — the same sequence
  // InterferenceMap::AggregateDenomMw feeds simd::BlockedSum8, keeping the
  // engine and this per-link path bit-identical.
  double lanes[8] = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  std::size_t m = 0;
  for (const ActiveTransmitter& it : interferers) {
    if (it.node == tx || it.node == rx || it.power_scale <= 0.0) continue;
    double p = row[it.node];
    if (std::isnan(p)) p = row[it.node] = DbmToMw(MeanRxPowerDbm(it.node, rx));
    p *= it.power_scale;
    if (config_.enable_fading) p *= fading_.PowerGain(it.node, rx, subchannel, now);
    lanes[m & 7] += p;
    ++m;
  }
  const double denom_mw = NoiseMw(rx, bandwidth_hz) + simd::ReduceLanes8(lanes);
  return LinearToDb(signal_mw / denom_mw);
}

double RadioEnvironment::MeanSnrDb(RadioNodeId tx, RadioNodeId rx,
                                   double bandwidth_hz) const {
  return MeanRxPowerDbm(tx, rx) - NoiseDbm(rx, bandwidth_hz);
}

}  // namespace cellfi
