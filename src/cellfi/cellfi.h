// Umbrella header: the full CellFi library surface.
//
// Layering (lower layers never include higher ones):
//
//   common   -- units, RNG, geometry, FFT, JSON, statistics
//   sim      -- discrete-event engine
//   radio    -- propagation, fading, antennas, SINR, mobility
//   phy      -- LTE resource grid, CQI/MCS, HARQ, PRACH, CQI reports
//   tvws     -- spectrum database + PAWS protocol
//   wifi     -- 802.11af/ac CSMA/CA MAC
//   lte      -- eNodeB MAC + LTE system simulator
//   core     -- CellFi: channel selection + interference management
//   baseline -- oracle allocator, Theorem-1 hopping game
//   traffic  -- flows and web workloads
//   scenario -- topologies, evaluation harness, JSON reports
//
// Include this for prototyping; production users should include the
// specific module headers they need.
#pragma once

#include "cellfi/common/fft.h"
#include "cellfi/common/geometry.h"
#include "cellfi/common/json.h"
#include "cellfi/common/logging.h"
#include "cellfi/common/rng.h"
#include "cellfi/common/stats.h"
#include "cellfi/common/table.h"
#include "cellfi/common/time.h"
#include "cellfi/common/units.h"

#include "cellfi/sim/event_queue.h"
#include "cellfi/sim/timer.h"

#include "cellfi/radio/antenna.h"
#include "cellfi/radio/environment.h"
#include "cellfi/radio/fading.h"
#include "cellfi/radio/mobility.h"
#include "cellfi/radio/pathloss.h"

#include "cellfi/phy/cqi_mcs.h"
#include "cellfi/phy/cqi_report.h"
#include "cellfi/phy/harq.h"
#include "cellfi/phy/ofdm.h"
#include "cellfi/phy/prach.h"
#include "cellfi/phy/resource_grid.h"

#include "cellfi/tvws/database.h"
#include "cellfi/tvws/paws.h"
#include "cellfi/tvws/paws_session.h"
#include "cellfi/tvws/paws_transport.h"
#include "cellfi/tvws/types.h"

#include "cellfi/wifi/phy_rates.h"
#include "cellfi/wifi/wifi_network.h"

#include "cellfi/lte/enodeb.h"
#include "cellfi/lte/network.h"
#include "cellfi/lte/scheduler.h"
#include "cellfi/lte/types.h"
#include "cellfi/lte/ue_context.h"

#include "cellfi/core/cellfi_controller.h"
#include "cellfi/core/channel_selector.h"
#include "cellfi/core/cqi_detector.h"
#include "cellfi/core/hybrid_controller.h"
#include "cellfi/core/interference_manager.h"
#include "cellfi/core/power_planner.h"
#include "cellfi/core/prach_sensor.h"

#include "cellfi/baseline/hopping_game.h"
#include "cellfi/baseline/oracle_allocator.h"

#include "cellfi/traffic/flow_tracker.h"
#include "cellfi/traffic/web_workload.h"

#include "cellfi/scenario/harness.h"
#include "cellfi/scenario/outage.h"
#include "cellfi/scenario/report.h"
#include "cellfi/scenario/topology.h"
