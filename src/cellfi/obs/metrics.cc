#include "cellfi/obs/metrics.h"

#include <algorithm>
#include <cassert>

namespace cellfi::obs {

MetricsRegistry::Id MetricsRegistry::GetOrCreate(std::string_view name,
                                                 Kind kind) {
  auto it = index_.find(name);
  if (it != index_.end()) {
    assert(entries_[it->second].kind == kind && "metric re-registered with a different kind");
    return it->second;
  }
  Entry e;
  e.kind = kind;
  e.name = std::string(name);
  entries_.push_back(std::move(e));
  const Id id = entries_.size() - 1;
  index_.emplace(entries_[id].name, id);
  return id;
}

MetricsRegistry::Id MetricsRegistry::Counter(std::string_view name) {
  return GetOrCreate(name, Kind::kCounter);
}

MetricsRegistry::Id MetricsRegistry::Gauge(std::string_view name) {
  return GetOrCreate(name, Kind::kGauge);
}

MetricsRegistry::Id MetricsRegistry::Histogram(
    std::string_view name, const std::vector<double>& upper_bounds) {
  const bool existed = index_.find(name) != index_.end();
  const Id id = GetOrCreate(name, Kind::kHistogram);
  if (!existed) {
    Entry& e = entries_[id];
    e.hist.upper_bounds = upper_bounds;
    assert(std::is_sorted(e.hist.upper_bounds.begin(), e.hist.upper_bounds.end()));
    e.hist.counts.assign(upper_bounds.size() + 1, 0);
  }
  return id;
}

void MetricsRegistry::Add(Id id, std::uint64_t delta) {
  entries_[id].count += delta;
}

void MetricsRegistry::Set(Id id, double value) { entries_[id].value = value; }

void MetricsRegistry::Observe(Id id, double value) {
  HistogramData& h = entries_[id].hist;
  const auto it = std::lower_bound(h.upper_bounds.begin(),
                                   h.upper_bounds.end(), value);
  ++h.counts[static_cast<std::size_t>(it - h.upper_bounds.begin())];
  ++h.total;
  h.sum += value;
}

const MetricsRegistry::Entry* MetricsRegistry::FindEntry(std::string_view name,
                                                         Kind kind) const {
  const auto it = index_.find(name);
  if (it == index_.end()) return nullptr;
  const Entry& e = entries_[it->second];
  return e.kind == kind ? &e : nullptr;
}

std::uint64_t MetricsRegistry::counter(std::string_view name) const {
  const Entry* e = FindEntry(name, Kind::kCounter);
  return e != nullptr ? e->count : 0;
}

double MetricsRegistry::gauge(std::string_view name) const {
  const Entry* e = FindEntry(name, Kind::kGauge);
  return e != nullptr ? e->value : 0.0;
}

const MetricsRegistry::HistogramData* MetricsRegistry::histogram(
    std::string_view name) const {
  const Entry* e = FindEntry(name, Kind::kHistogram);
  return e != nullptr ? &e->hist : nullptr;
}

json::Value MetricsRegistry::Snapshot() const {
  // reserve() + emplace_back keep GCC 12's -Wmaybe-uninitialized happy:
  // moving a Value temporary through the growth path trips a false
  // positive in the inlined variant relocation (same as report.cc).
  json::Array counters;
  json::Array gauges;
  json::Array histograms;
  counters.reserve(entries_.size());
  gauges.reserve(entries_.size());
  histograms.reserve(entries_.size());
  for (const Entry& e : entries_) {
    json::Value o;
    o["name"] = e.name;
    switch (e.kind) {
      case Kind::kCounter:
        o["value"] = static_cast<double>(e.count);
        counters.push_back(std::move(o));
        break;
      case Kind::kGauge:
        o["value"] = e.value;
        gauges.push_back(std::move(o));
        break;
      case Kind::kHistogram: {
        json::Array bounds;
        bounds.reserve(e.hist.upper_bounds.size());
        for (double b : e.hist.upper_bounds) bounds.emplace_back(b);
        json::Array counts;
        counts.reserve(e.hist.counts.size());
        for (std::uint64_t c : e.hist.counts) {
          counts.emplace_back(static_cast<double>(c));
        }
        o["bounds"] = std::move(bounds);
        o["counts"] = std::move(counts);
        o["count"] = static_cast<double>(e.hist.total);
        o["sum"] = e.hist.sum;
        histograms.push_back(std::move(o));
        break;
      }
    }
  }
  json::Value root;
  root["counters"] = std::move(counters);
  root["gauges"] = std::move(gauges);
  root["histograms"] = std::move(histograms);
  return root;
}

}  // namespace cellfi::obs
