// Deterministic metrics registry (DESIGN.md §13).
//
// Counters, gauges and fixed-bucket histograms, registered lazily by
// name at the instrumentation site:
//
//   if (obs::MetricsRegistry* m = obs::ActiveMetrics()) {
//     m->Observe(m->Histogram("lte.wideband_sinr_db", obs::kSinrDbBounds),
//                sinr_db);
//   }
//
// Snapshot() serializes in registration order, which is deterministic
// because the simulation itself is: the same (config, seed) visits the
// same instrumentation sites in the same order. Registries are
// per-replication (one per ObsScope), never shared across threads.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "cellfi/common/json.h"

namespace cellfi::obs {

/// Shared bucket layouts so every component bins compatibly.
inline const std::vector<double>& SinrDbBounds() {
  static const std::vector<double> b = {-10, -5, 0, 5, 10, 15, 20, 25, 30};
  return b;
}
inline const std::vector<double>& FractionBounds() {
  static const std::vector<double> b = {0.1, 0.2, 0.3, 0.4, 0.5,
                                        0.6, 0.7, 0.8, 0.9, 1.0};
  return b;
}

class MetricsRegistry {
 public:
  using Id = std::size_t;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create by name. A name keeps the kind (and, for histograms,
  /// the bucket bounds) of its first registration. The whole registration
  /// and update API is instrumentation: RNG-free and schedule-free,
  /// transitively (DESIGN.md §16).
  // cellfi-purity: contract-root(obs-instrumentation) MetricsRegistry::Counter
  Id Counter(std::string_view name);
  // cellfi-purity: contract-root(obs-instrumentation) MetricsRegistry::Gauge
  Id Gauge(std::string_view name);
  // cellfi-purity: contract-root(obs-instrumentation) MetricsRegistry::Histogram
  Id Histogram(std::string_view name, const std::vector<double>& upper_bounds);

  // cellfi-purity: contract-root(obs-instrumentation) MetricsRegistry::Add
  void Add(Id id, std::uint64_t delta = 1);
  // cellfi-purity: contract-root(obs-instrumentation) MetricsRegistry::Set
  void Set(Id id, double value);
  /// Bucket i counts values <= upper_bounds[i]; one overflow bucket past
  /// the last bound.
  // cellfi-purity: contract-root(obs-instrumentation) MetricsRegistry::Observe
  void Observe(Id id, double value);

  struct HistogramData {
    std::vector<double> upper_bounds;
    std::vector<std::uint64_t> counts;  // upper_bounds.size() + 1
    std::uint64_t total = 0;
    double sum = 0.0;
  };

  /// Read-side lookups by name; zero/null when absent.
  std::uint64_t counter(std::string_view name) const;
  double gauge(std::string_view name) const;
  const HistogramData* histogram(std::string_view name) const;

  std::size_t size() const { return entries_.size(); }

  /// {"counters":[{"name","value"}...],"gauges":[...],"histograms":
  ///  [{"name","bounds","counts","count","sum"}...]} — each section in
  /// registration order.
  // cellfi-purity: contract-root(obs-instrumentation) MetricsRegistry::Snapshot
  json::Value Snapshot() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string name;
    std::uint64_t count = 0;  // counter value
    double value = 0.0;       // gauge value
    HistogramData hist;
  };

  Id GetOrCreate(std::string_view name, Kind kind);
  const Entry* FindEntry(std::string_view name, Kind kind) const;

  std::vector<Entry> entries_;
  std::map<std::string, Id, std::less<>> index_;
};

}  // namespace cellfi::obs
