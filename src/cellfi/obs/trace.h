// Deterministic sim-time event tracing (DESIGN.md §13).
//
// A TraceSink records structured events `{sim_time_us, component, event,
// fields}` into a bounded in-memory ring and, optionally, a JSONL file.
// Instrumented components never hold a sink directly; they consult the
// ambient thread-local context:
//
//   if (obs::TraceSink* tr = obs::ActiveTrace()) {
//     tr->Emit(now, "im", "hop", {{"cell", 3}, {"from", 1}, {"to", 5}});
//   }
//
// When no ObsScope is installed the guard is a single thread-local load
// and branch — the disabled path allocates nothing and formats nothing.
//
// Determinism contract: instrumentation is strictly passive. It must not
// draw from any Rng, schedule events, or otherwise influence control
// flow; enabling tracing must leave every simulation outcome bit-identical
// (enforced by the observer-effect test in tests/scenario_sweep_test.cc).
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <initializer_list>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "cellfi/common/time.h"

namespace cellfi::obs {

class MetricsRegistry;  // metrics.h; scoped jointly with the trace sink.

/// One typed event field. Integers stay integers end-to-end so golden
/// traces never depend on floating-point formatting.
class FieldValue {
 public:
  FieldValue(std::int64_t v) : v_(v) {}                        // NOLINT
  FieldValue(int v) : v_(static_cast<std::int64_t>(v)) {}      // NOLINT
  FieldValue(unsigned v) : v_(static_cast<std::int64_t>(v)) {} // NOLINT
  FieldValue(std::uint64_t v) : v_(static_cast<std::int64_t>(v)) {} // NOLINT
  FieldValue(double v) : v_(v) {}                              // NOLINT
  FieldValue(bool v) : v_(static_cast<std::int64_t>(v)) {}     // NOLINT
  FieldValue(const char* v) : v_(std::string(v)) {}            // NOLINT
  FieldValue(std::string v) : v_(std::move(v)) {}              // NOLINT
  FieldValue(std::string_view v) : v_(std::string(v)) {}       // NOLINT

  bool is_int() const { return std::holds_alternative<std::int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  std::int64_t as_int() const { return std::get<std::int64_t>(v_); }
  double as_double() const { return std::get<double>(v_); }
  const std::string& as_string() const { return std::get<std::string>(v_); }

 private:
  std::variant<std::int64_t, double, std::string> v_;
};

struct TraceField {
  std::string key;
  FieldValue value;
};

struct TraceEvent {
  std::int64_t sim_time_us = 0;
  std::string component;
  std::string event;
  std::vector<TraceField> fields;

  /// First field with this key, or nullptr.
  const FieldValue* Find(std::string_view key) const;
};

struct TraceSinkConfig {
  /// Ring capacity in events; the oldest events are overwritten once
  /// `emitted() > ring_capacity` (dropped() counts the overwrites).
  std::size_t ring_capacity = 1 << 16;
  /// When non-empty, every event is also appended to this JSONL file
  /// (one `{"t_us":...,"component":...,"event":...,...}` object per line).
  std::string jsonl_path;
};

class TraceSink {
 public:
  explicit TraceSink(TraceSinkConfig config = {});
  ~TraceSink();
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// Record one event at `sim_time` (nanoseconds; stored in microseconds).
  /// Instrumentation must never perturb the simulation: RNG-free and
  /// schedule-free, transitively (DESIGN.md §16).
  // cellfi-purity: contract-root(obs-instrumentation) TraceSink::Emit
  void Emit(SimTime sim_time, std::string_view component,
            std::string_view event, std::initializer_list<TraceField> fields);
  void Emit(SimTime sim_time, std::string_view component,
            std::string_view event, std::vector<TraceField> fields);

  /// Ring contents, oldest first.
  std::vector<TraceEvent> Events() const;
  /// Events matching component (and event, when non-empty), oldest first.
  std::vector<TraceEvent> Events(std::string_view component,
                                 std::string_view event = {}) const;

  std::uint64_t emitted() const { return emitted_; }
  std::uint64_t dropped() const {
    return emitted_ > ring_.capacity() ? emitted_ - ring_.capacity() : 0;
  }

  // cellfi-purity: contract-root(obs-instrumentation) TraceSink::Flush
  void Flush();

  /// Deterministic one-line JSON rendering: fields in emission order,
  /// integers rendered exactly, doubles via shortest round-trip form.
  // cellfi-purity: contract-root(obs-instrumentation) TraceSink::ToJsonl
  static std::string ToJsonl(const TraceEvent& event);

 private:
  TraceSinkConfig config_;
  std::vector<TraceEvent> ring_;  // capacity == config_.ring_capacity
  std::size_t next_ = 0;          // ring slot for the next event
  std::uint64_t emitted_ = 0;
  std::unique_ptr<std::ofstream> file_;
};

/// Ambient thread-local observability context. Null (and therefore free
/// to check) unless an ObsScope is live on this thread. Per-thread
/// scoping is what keeps multi-threaded sweeps race-free: each
/// replication installs its own sink on its worker thread.
TraceSink* ActiveTrace();
MetricsRegistry* ActiveMetrics();

/// Sim time from the innermost ClockScope on this thread, or 0 when no
/// clock is installed (components that own a Simulator pass their own
/// `sim.Now()` instead and never need this).
SimTime AmbientNow();

/// RAII installer for the ambient trace sink + metrics registry. Nests:
/// the previous context is restored on destruction. Either pointer may
/// be null to scope only one half.
class ObsScope {
 public:
  ObsScope(TraceSink* trace, MetricsRegistry* metrics);
  ~ObsScope();
  ObsScope(const ObsScope&) = delete;
  ObsScope& operator=(const ObsScope&) = delete;

 private:
  TraceSink* prev_trace_;
  MetricsRegistry* prev_metrics_;
};

/// RAII installer for the ambient sim-time source, used by components
/// that have no Simulator handle of their own (InterferenceManager,
/// the hopping-game baseline). The obs module deliberately does not
/// depend on sim/, so callers pass a closure over their Simulator.
class ClockScope {
 public:
  explicit ClockScope(std::function<SimTime()> now);
  ~ClockScope();
  ClockScope(const ClockScope&) = delete;
  ClockScope& operator=(const ClockScope&) = delete;

 private:
  std::function<SimTime()> now_;
  const std::function<SimTime()>* prev_;
};

}  // namespace cellfi::obs
