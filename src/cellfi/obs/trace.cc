#include "cellfi/obs/trace.h"

#include <charconv>
#include <cstdio>
#include <utility>

namespace cellfi::obs {
namespace {

// Thread-local ambient context. Plain pointers: a TLS load + branch is
// the entire cost of the disabled path at every instrumentation site.
thread_local TraceSink* g_trace = nullptr;
thread_local MetricsRegistry* g_metrics = nullptr;
thread_local const std::function<SimTime()>* g_clock = nullptr;

void AppendEscaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void AppendValue(std::string& out, const FieldValue& v) {
  char buf[32];
  if (v.is_int()) {
    auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), v.as_int());
    static_cast<void>(ec);
    out.append(buf, p);
  } else if (v.is_double()) {
    // Shortest round-trip form: stable across runs on the same libc++/libstdc++
    // and re-parses to the exact same double.
    auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), v.as_double());
    static_cast<void>(ec);
    out.append(buf, p);
  } else {
    out += '"';
    AppendEscaped(out, v.as_string());
    out += '"';
  }
}

}  // namespace

const FieldValue* TraceEvent::Find(std::string_view key) const {
  for (const TraceField& f : fields) {
    if (f.key == key) return &f.value;
  }
  return nullptr;
}

TraceSink::TraceSink(TraceSinkConfig config) : config_(std::move(config)) {
  if (config_.ring_capacity == 0) config_.ring_capacity = 1;
  ring_.reserve(config_.ring_capacity);
  if (!config_.jsonl_path.empty()) {
    file_ = std::make_unique<std::ofstream>(config_.jsonl_path,
                                            std::ios::out | std::ios::trunc);
  }
}

TraceSink::~TraceSink() { Flush(); }

void TraceSink::Emit(SimTime sim_time, std::string_view component,
                     std::string_view event,
                     std::initializer_list<TraceField> fields) {
  Emit(sim_time, component, event, std::vector<TraceField>(fields));
}

void TraceSink::Emit(SimTime sim_time, std::string_view component,
                     std::string_view event, std::vector<TraceField> fields) {
  TraceEvent ev;
  ev.sim_time_us = sim_time / kMicrosecond;
  ev.component = std::string(component);
  ev.event = std::string(event);
  ev.fields = std::move(fields);
  if (file_ && file_->good()) *file_ << ToJsonl(ev) << '\n';
  if (ring_.size() < config_.ring_capacity) {
    ring_.push_back(std::move(ev));
  } else {
    ring_[next_] = std::move(ev);
  }
  next_ = (next_ + 1) % config_.ring_capacity;
  ++emitted_;
}

std::vector<TraceEvent> TraceSink::Events() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < config_.ring_capacity) {
    out = ring_;  // never wrapped: ring order is emission order
  } else {
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(next_ + i) % ring_.size()]);
    }
  }
  return out;
}

std::vector<TraceEvent> TraceSink::Events(std::string_view component,
                                          std::string_view event) const {
  std::vector<TraceEvent> out;
  for (TraceEvent& ev : Events()) {
    if (ev.component != component) continue;
    if (!event.empty() && ev.event != event) continue;
    out.push_back(std::move(ev));
  }
  return out;
}

void TraceSink::Flush() {
  if (file_) file_->flush();
}

std::string TraceSink::ToJsonl(const TraceEvent& event) {
  std::string out = "{\"t_us\":";
  AppendValue(out, FieldValue(event.sim_time_us));
  out += ",\"component\":\"";
  AppendEscaped(out, event.component);
  out += "\",\"event\":\"";
  AppendEscaped(out, event.event);
  out += '"';
  for (const TraceField& f : event.fields) {
    out += ",\"";
    AppendEscaped(out, f.key);
    out += "\":";
    AppendValue(out, f.value);
  }
  out += '}';
  return out;
}

TraceSink* ActiveTrace() { return g_trace; }
MetricsRegistry* ActiveMetrics() { return g_metrics; }

SimTime AmbientNow() { return g_clock != nullptr ? (*g_clock)() : 0; }

ObsScope::ObsScope(TraceSink* trace, MetricsRegistry* metrics)
    : prev_trace_(g_trace), prev_metrics_(g_metrics) {
  g_trace = trace;
  g_metrics = metrics;
}

ObsScope::~ObsScope() {
  g_trace = prev_trace_;
  g_metrics = prev_metrics_;
}

ClockScope::ClockScope(std::function<SimTime()> now)
    : now_(std::move(now)), prev_(g_clock) {
  g_clock = &now_;
}

ClockScope::~ClockScope() { g_clock = prev_; }

}  // namespace cellfi::obs
