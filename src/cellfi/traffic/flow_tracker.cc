#include "cellfi/traffic/flow_tracker.h"

#include <cassert>

namespace cellfi::traffic {

FlowId FlowTracker::StartFlow(ClientId client, std::uint64_t bytes, SimTime now) {
  assert(bytes > 0);
  FlowRecord record;
  record.id = flows_.size();
  record.client = client;
  record.bytes = bytes;
  record.started = now;
  flows_.push_back(record);
  outstanding_[client].push_back(record.id);
  return record.id;
}

void FlowTracker::OnDelivered(ClientId client, std::uint64_t bytes, SimTime now) {
  auto it = outstanding_.find(client);
  if (it == outstanding_.end()) return;
  auto& queue = it->second;
  while (bytes > 0 && !queue.empty()) {
    FlowRecord& flow = flows_[static_cast<std::size_t>(queue.front())];
    const std::uint64_t take = std::min(bytes, flow.bytes - flow.delivered);
    flow.delivered += take;
    bytes -= take;
    if (flow.delivered >= flow.bytes) {
      flow.completed = now;
      queue.pop_front();
      if (on_flow_complete) on_flow_complete(flow);
    }
  }
}

Distribution FlowTracker::CompletionTimes() const {
  Distribution d;
  for (const FlowRecord& f : flows_) {
    if (f.done()) d.Add(ToSeconds(f.completed - f.started));
  }
  return d;
}

int FlowTracker::StalledFlows(SimTime now, SimTime age) const {
  int n = 0;
  for (const FlowRecord& f : flows_) {
    if (!f.done() && now - f.started > age) ++n;
  }
  return n;
}

}  // namespace cellfi::traffic
