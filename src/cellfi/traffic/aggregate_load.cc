#include "cellfi/traffic/aggregate_load.h"

#include <algorithm>
#include <cmath>

#include "cellfi/radio/fading.h"

namespace cellfi::traffic {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

}  // namespace

AggregateLoad::AggregateLoad(AggregateLoadConfig config) : config_(config) {
  config_.users_per_cell = std::max(0, config_.users_per_cell);
  config_.clusters_per_cell = std::max(1, config_.clusters_per_cell);
  if (config_.epoch_s <= 0.0) config_.epoch_s = 1.0;
}

double AggregateLoad::NormalizedDraw(std::uint64_t seed, std::uint64_t cell,
                                     std::uint64_t epoch, std::uint64_t salt) {
  // The sanctioned stateless hash (radio/fading.h). Top 53 bits -> [0, 1),
  // the usual exact double construction (kept local instead of
  // HashToUnitInterval: that one offsets by half an ulp, and the tier's
  // goldens pin this exact mapping).
  const std::uint64_t h = HashWords(seed, cell, epoch, salt);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

double AggregateLoad::FlashMultiplierAt(int cell, std::int64_t epoch) const {
  double mult = 1.0;
  const double t = static_cast<double>(epoch) * config_.epoch_s;
  for (const FlashCrowdEvent& e : config_.flash_events) {
    if (e.cell >= 0 && e.cell != cell) continue;
    if (t >= e.start_s && t < e.start_s + e.duration_s) {
      mult *= e.multiplier > 0.0 ? e.multiplier : 1.0;
    }
  }
  if (config_.flash_rate_per_s > 0.0 && config_.flash_duration_s > 0.0) {
    // An episode starting at epoch e0 covers [e0, e0 + window). Whether any
    // episode covers `epoch` is a pure function of the Bernoulli start
    // draws in the bounded back-window — stateless, so any epoch can be
    // sampled in isolation and in any order.
    const auto window = static_cast<std::int64_t>(
        std::ceil(config_.flash_duration_s / config_.epoch_s));
    const double p =
        std::min(1.0, config_.flash_rate_per_s * config_.epoch_s);
    for (std::int64_t e0 = std::max<std::int64_t>(0, epoch - window + 1);
         e0 <= epoch; ++e0) {
      const double u =
          NormalizedDraw(config_.seed, static_cast<std::uint64_t>(cell),
                         static_cast<std::uint64_t>(e0), /*salt=*/0xF1A5);
      if (u < p) {
        mult *= config_.flash_multiplier > 0.0 ? config_.flash_multiplier : 1.0;
        break;  // overlapping episodes merge rather than compound
      }
    }
  }
  return mult;
}

CellLoadSample AggregateLoad::Sample(int cell, std::int64_t epoch) const {
  CellLoadSample sample;
  if (config_.users_per_cell <= 0 || epoch < 0) return sample;

  double activity = config_.steady_activity;
  if (config_.diurnal_period_s > 0.0 && config_.diurnal_amplitude != 0.0) {
    // Per-cell phase drawn once from the counter stream (epoch/salt pinned
    // so it is constant over the run).
    const double phase =
        config_.diurnal_phase_spread *
        NormalizedDraw(config_.seed, static_cast<std::uint64_t>(cell),
                       /*epoch=*/0, /*salt=*/0xD1);
    const double t = static_cast<double>(epoch) * config_.epoch_s;
    const double wave =
        0.5 * (1.0 - std::cos(kTwoPi * (t / config_.diurnal_period_s + phase)));
    activity += config_.diurnal_amplitude * wave;
  }
  if (config_.activity_jitter > 0.0) {
    const double u =
        NormalizedDraw(config_.seed, static_cast<std::uint64_t>(cell),
                       static_cast<std::uint64_t>(epoch), /*salt=*/0x717);
    activity *= 1.0 + config_.activity_jitter * (2.0 * u - 1.0);
  }
  activity = std::clamp(activity, 0.0, 1.0);

  sample.flash_multiplier = FlashMultiplierAt(cell, epoch);
  sample.active_users = static_cast<int>(std::lround(
      static_cast<double>(config_.users_per_cell) * activity *
      sample.flash_multiplier));
  sample.offered_bps =
      static_cast<double>(sample.active_users) * config_.per_user_demand_bps;
  sample.utilization =
      config_.cell_capacity_bps > 0.0
          ? std::clamp(sample.offered_bps / config_.cell_capacity_bps, 0.0, 1.0)
          : 0.0;
  return sample;
}

std::vector<int> AggregateLoad::ClusterSplit(int active_users) const {
  const int k = config_.clusters_per_cell;
  std::vector<int> split(static_cast<std::size_t>(k), 0);
  if (active_users <= 0) return split;
  const int base = active_users / k;
  const int remainder = active_users % k;
  // Largest remainder with equal quotas degenerates to "first `remainder`
  // clusters get one extra" — deterministic and exactly summing.
  for (int i = 0; i < k; ++i) {
    split[static_cast<std::size_t>(i)] = base + (i < remainder ? 1 : 0);
  }
  return split;
}

}  // namespace cellfi::traffic
