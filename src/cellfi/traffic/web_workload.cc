#include "cellfi/traffic/web_workload.h"

#include <algorithm>
#include <cmath>

namespace cellfi::traffic {

std::vector<std::uint64_t> DrawPage(const WebWorkloadConfig& config, Rng& rng) {
  const int objects = static_cast<int>(std::clamp(
      std::round(rng.LogNormal(config.objects_mu, config.objects_sigma)), 1.0, 100.0));
  std::vector<std::uint64_t> sizes;
  sizes.reserve(static_cast<std::size_t>(objects));
  for (int i = 0; i < objects; ++i) {
    const double bytes =
        std::clamp(rng.LogNormal(config.object_size_mu, config.object_size_sigma), 200.0,
                   8.0 * 1024 * 1024);
    sizes.push_back(static_cast<std::uint64_t>(bytes));
  }
  return sizes;
}

WebSession::WebSession(Simulator& sim, FlowTracker& tracker, ClientId client,
                       WebWorkloadConfig config,
                       std::function<void(ClientId, std::uint64_t)> offer, Rng rng)
    : sim_(sim),
      tracker_(tracker),
      client_(client),
      config_(config),
      offer_(std::move(offer)),
      rng_(rng) {}

void WebSession::Start() {
  const SimTime jitter = FromSeconds(rng_.Uniform(0.0, config_.initial_jitter_s));
  sim_.ScheduleAfter(jitter, [this] { StartPage(); });
}

void WebSession::StartPage() {
  const auto objects = DrawPage(config_, rng_);
  ++pages_started_;
  objects_pending_ = static_cast<int>(objects.size());
  page_started_at_ = sim_.Now();
  for (std::uint64_t bytes : objects) {
    tracker_.StartFlow(client_, bytes, sim_.Now());
    offer_(client_, bytes);
  }
}

void WebSession::OnFlowComplete(const FlowRecord& record) {
  if (record.client != client_ || objects_pending_ == 0) return;
  if (--objects_pending_ > 0) return;
  // Last object of the page: record PLT, think, browse on.
  page_load_times_.push_back(ToSeconds(sim_.Now() - page_started_at_));
  const SimTime think = FromSeconds(rng_.Exponential(config_.think_time_mean_s));
  sim_.ScheduleAfter(think, [this] { StartPage(); });
}

}  // namespace cellfi::traffic
