// Web-like traffic model (paper Section 6.3.4).
//
// Pages are composed of objects whose count and sizes follow heavy-tailed
// distributions from web measurement studies ([28] Lee & Gupta, [29]
// Butkiewicz et al.); think times between pages give flow inter-arrivals.
// A session fetches a page (all objects offered to the network at once,
// modelling parallel connections), waits for the last byte, thinks, and
// repeats. Page-load time = last-byte time - request time.
#pragma once

#include <functional>
#include <vector>

#include "cellfi/common/rng.h"
#include "cellfi/common/stats.h"
#include "cellfi/sim/event_queue.h"
#include "cellfi/traffic/flow_tracker.h"

namespace cellfi::traffic {

struct WebWorkloadConfig {
  /// Objects per page: lognormal, median ~10, heavy tail (cap at 100).
  double objects_mu = 2.3;
  double objects_sigma = 0.8;
  /// Object size in bytes: lognormal, median ~8 KB, tail into MBs.
  double object_size_mu = 9.0;
  double object_size_sigma = 1.3;
  /// Think time between pages: exponential (seconds).
  double think_time_mean_s = 10.0;
  /// First request jitter so sessions do not start synchronized.
  double initial_jitter_s = 5.0;
};

/// One client's browsing session.
class WebSession {
 public:
  /// `offer(client, bytes)` pushes bytes into the network layer for the
  /// client. Deliveries must be routed to `tracker.OnDelivered`.
  WebSession(Simulator& sim, FlowTracker& tracker, ClientId client,
             WebWorkloadConfig config, std::function<void(ClientId, std::uint64_t)> offer,
             Rng rng);

  void Start();

  /// Route completions of this client's flows here (e.g. from
  /// FlowTracker::on_flow_complete keyed by FlowRecord::client).
  void OnFlowComplete(const FlowRecord& record);

  /// Completed page-load times, seconds.
  const std::vector<double>& page_load_times() const { return page_load_times_; }
  int pages_completed() const { return static_cast<int>(page_load_times_.size()); }
  int pages_started() const { return pages_started_; }

 private:
  void StartPage();

  Simulator& sim_;
  FlowTracker& tracker_;
  ClientId client_;
  WebWorkloadConfig config_;
  std::function<void(ClientId, std::uint64_t)> offer_;
  Rng rng_;
  int pages_started_ = 0;
  int objects_pending_ = 0;
  SimTime page_started_at_ = 0;
  std::vector<double> page_load_times_;
};

/// Draw one page description (object sizes in bytes).
std::vector<std::uint64_t> DrawPage(const WebWorkloadConfig& config, Rng& rng);

}  // namespace cellfi::traffic
