// Flow accounting: maps byte deliveries back to application flows and
// records flow / page completion times.
//
// The MAC layers report deliveries per client; the tracker attributes them
// FIFO to that client's outstanding flows (a good model for an in-order
// bearer such as an LTE bearer or a Wi-Fi traffic stream).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "cellfi/common/stats.h"
#include "cellfi/common/time.h"

namespace cellfi::traffic {

using ClientId = int;
using FlowId = std::uint64_t;

struct FlowRecord {
  FlowId id = 0;
  ClientId client = 0;
  std::uint64_t bytes = 0;
  std::uint64_t delivered = 0;
  SimTime started = 0;
  SimTime completed = -1;  // -1 = in flight
  bool done() const { return completed >= 0; }
};

class FlowTracker {
 public:
  /// Register a new flow; bytes must be > 0.
  FlowId StartFlow(ClientId client, std::uint64_t bytes, SimTime now);

  /// Attribute `bytes` delivered to `client` (FIFO across its flows).
  void OnDelivered(ClientId client, std::uint64_t bytes, SimTime now);

  /// Fired whenever a flow completes.
  std::function<void(const FlowRecord&)> on_flow_complete;

  const FlowRecord& flow(FlowId id) const { return flows_[static_cast<std::size_t>(id)]; }
  std::size_t flow_count() const { return flows_.size(); }

  /// Completion times (seconds) of all completed flows.
  Distribution CompletionTimes() const;

  /// Flows still in flight at `now` older than `age` (stall detection).
  int StalledFlows(SimTime now, SimTime age) const;

 private:
  std::vector<FlowRecord> flows_;
  std::unordered_map<ClientId, std::deque<FlowId>> outstanding_;
};

}  // namespace cellfi::traffic
