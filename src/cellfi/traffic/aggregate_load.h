// Aggregate background-load tier (DESIGN.md §18).
//
// The paper's share calculation S_i = N_i * S / NP_i and the hopping
// dynamics are driven by per-UE discrete events, which caps realistic
// population sizes far below "heavy traffic from millions of users". This
// module is the fluid half of a two-tier traffic model: each cell carries a
// small set of fully-simulated UEs (HARQ/CQI/mobility untouched) plus an
// aggregate population whose only observable footprints are exactly the
// three quantities the CellFi control loop senses —
//   * PRB utilization (background subchannel occupancy, which both crowds
//     out the real scheduler and radiates real interference),
//   * PRACH contention counts NP_i (synthetic preamble counts injected
//     into the per-cell PrachSensors), and
//   * own-client demand N_i (the serving cell's share of those counts).
//
// Every draw is counter-based: sample(cell, epoch) is a pure function of
// (seed, cell, epoch) through a SplitMix64 chain — no stateful RNG, no
// wall clock, no mutation. That makes the tier trivially bit-identical
// across thread counts, shard counts and evaluation order, and lets the
// cross-validation suite replay any epoch in isolation. Per-epoch cost is
// O(cells x clusters), independent of the population size: one million
// background users cost the same as one thousand (bench_users measures
// exactly this).
//
// Load envelopes follow the TVWS secondary-network capacity analysis
// (PAPERS.md, arXiv 1304.1785): a per-cell capacity in bps bounds how much
// offered aggregate demand translates into PRB occupancy.
#pragma once

#include <cstdint>
#include <vector>

namespace cellfi::traffic {

/// One scripted flash-crowd episode: `multiplier` x the active population
/// on `cell` (every cell when < 0) for [start_s, start_s + duration_s).
struct FlashCrowdEvent {
  int cell = -1;
  double start_s = 0.0;
  double duration_s = 0.0;
  double multiplier = 1.0;
};

struct AggregateLoadConfig {
  /// Background users per cell; 0 disables the tier entirely (every hook
  /// in the stack reduces to the pre-tier behavior, byte-identical).
  int users_per_cell = 0;
  /// Mean downlink demand per active background user.
  double per_user_demand_bps = 25e3;
  /// Per-cell capacity envelope bounding offered load -> PRB occupancy
  /// (arXiv 1304.1785: ~2 bps/Hz over a TVWS channel; default 12 Mbps
  /// matches the 5/6 MHz setups used throughout the benches).
  double cell_capacity_bps = 12e6;

  /// Steady activity level: fraction of the population active with no
  /// diurnal wave and no flash crowd.
  double steady_activity = 0.5;
  /// Diurnal wave: adds amplitude * 0.5*(1 - cos(2*pi*(t/period + phase)))
  /// on top of steady_activity. period_s <= 0 disables the wave.
  double diurnal_period_s = 0.0;
  double diurnal_amplitude = 0.0;
  /// Per-cell phase offset, as a fraction of the period, drawn once per
  /// cell from the counter stream (cells need no mutual synchronization).
  double diurnal_phase_spread = 1.0;
  /// Multiplicative per-epoch activity jitter amplitude (0 = none):
  /// activity *= 1 + jitter * (2u - 1), u ~ U[0,1) counter-drawn.
  double activity_jitter = 0.0;

  /// Scripted flash crowds (deterministic, testable).
  std::vector<FlashCrowdEvent> flash_events;
  /// Stochastic flash-crowd generator: per-cell episode start probability
  /// per second (0 disables). Episodes last flash_duration_s and multiply
  /// the active population by flash_multiplier. Starts are counter-drawn
  /// Bernoulli trials, so whether an episode covers epoch e is recomputed
  /// statelessly by scanning the bounded back-window of start draws.
  double flash_rate_per_s = 0.0;
  double flash_duration_s = 10.0;
  double flash_multiplier = 4.0;

  /// Generator epoch (matches the CellFi control epoch of 1 s).
  double epoch_s = 1.0;
  /// Spatial clusters the population is split into for PRACH-audibility
  /// purposes (largest-remainder split, deterministic).
  int clusters_per_cell = 4;
  std::uint64_t seed = 1;
};

/// Load sample for one (cell, epoch).
struct CellLoadSample {
  int active_users = 0;
  double offered_bps = 0.0;
  /// offered / capacity, clamped to [0, 1]: the fraction of the cell's
  /// allowed subchannels the background tier occupies.
  double utilization = 0.0;
  /// Flash-crowd population multiplier in force this epoch (1 = none).
  double flash_multiplier = 1.0;
};

class AggregateLoad {
 public:
  explicit AggregateLoad(AggregateLoadConfig config);

  const AggregateLoadConfig& config() const { return config_; }
  bool enabled() const { return config_.users_per_cell > 0; }

  /// The load of `cell` during epoch index `epoch` (epoch e covers sim
  /// time [e * epoch_s, (e+1) * epoch_s)). Pure function of (config, cell,
  /// epoch): stateless, order-free, clock-free.
  // cellfi-purity: contract-root(aggregate-load-generator) AggregateLoad::Sample
  CellLoadSample Sample(int cell, std::int64_t epoch) const;

  /// Split `active_users` over the configured clusters by largest
  /// remainder (deterministic; entries sum to active_users exactly).
  // cellfi-purity: contract-root(aggregate-load-generator) AggregateLoad::ClusterSplit
  std::vector<int> ClusterSplit(int active_users) const;

  /// Counter-based uniform draw in [0, 1): SplitMix64 chain over
  /// (seed, cell, epoch, salt). Exposed so harness-side placement (e.g.
  /// cluster positions) shares the generator's determinism contract.
  // cellfi-purity: contract-root(aggregate-load-generator) AggregateLoad::NormalizedDraw
  static double NormalizedDraw(std::uint64_t seed, std::uint64_t cell,
                               std::uint64_t epoch, std::uint64_t salt);

 private:
  double FlashMultiplierAt(int cell, std::int64_t epoch) const;

  AggregateLoadConfig config_;
};

}  // namespace cellfi::traffic
