#include "cellfi/chaos/fault_scheduler.h"

#include <utility>

#include "cellfi/obs/trace.h"

namespace cellfi::chaos {

FaultScheduler::FaultScheduler(Simulator& sim, FaultPlan plan, FaultHooks hooks,
                               int num_aps)
    : sim_(sim),
      plan_(std::move(plan).Normalized()),
      hooks_(std::move(hooks)),
      num_aps_(num_aps) {}

void FaultScheduler::Arm() {
  if (armed_) return;
  armed_ = true;
  for (const FaultEvent& event : plan_.events) {
    sim_.ScheduleAt(event.time, [this, event] { Inject(event); });
  }
}

void FaultScheduler::Trace(const FaultEvent& event, const char* phase) {
  if (obs::TraceSink* tr = obs::ActiveTrace()) {
    std::vector<obs::TraceField> fields;
    fields.push_back({"kind", FaultKindName(event.kind)});
    fields.push_back({"phase", phase});
    if (event.target != -1) fields.push_back({"target", event.target});
    if (event.channel != -1) fields.push_back({"channel", event.channel});
    if (event.duration != 0) {
      fields.push_back({"duration_us", event.duration / kMicrosecond});
    }
    tr->Emit(sim_.Now(), "chaos", "inject", std::move(fields));
  }
}

void FaultScheduler::Inject(const FaultEvent& event) {
  switch (event.kind) {
    case FaultKind::kApCrash: {
      if (!hooks_.crash_ap) {
        ++counters_.skipped;
        return;
      }
      Trace(event, "begin");
      if (event.target >= 0) {
        ++counters_.ap_crashes;
        hooks_.crash_ap(event.target, event);
      } else {
        for (int ap = 0; ap < num_aps_; ++ap) {
          ++counters_.ap_crashes;
          hooks_.crash_ap(ap, event);
        }
      }
      return;
    }
    case FaultKind::kDbOutage: {
      if (!hooks_.db_outage) {
        ++counters_.skipped;
        return;
      }
      Trace(event, "begin");
      ++counters_.db_outages;
      hooks_.db_outage(event.time, event.time + event.duration);
      return;
    }
    case FaultKind::kDbBrownout: {
      if (!hooks_.db_brownout) {
        ++counters_.skipped;
        return;
      }
      Trace(event, "begin");
      ++counters_.db_brownouts;
      hooks_.db_brownout(event);
      return;
    }
    case FaultKind::kIncumbentArrive: {
      if (!hooks_.incumbent_arrive) {
        ++counters_.skipped;
        return;
      }
      Trace(event, "begin");
      ++counters_.incumbent_arrivals;
      hooks_.incumbent_arrive(event);
      // A dwell duration implies the matching departure; schedule it here
      // so plans do not have to pair arrive/depart events by hand.
      if (event.duration > 0 && hooks_.incumbent_depart) {
        FaultEvent depart = event;
        depart.kind = FaultKind::kIncumbentDepart;
        depart.time = event.time + event.duration;
        depart.duration = 0;
        sim_.ScheduleAt(depart.time, [this, depart] { Inject(depart); });
      }
      return;
    }
    case FaultKind::kIncumbentDepart: {
      if (!hooks_.incumbent_depart) {
        ++counters_.skipped;
        return;
      }
      Trace(event, "end");
      ++counters_.incumbent_departures;
      hooks_.incumbent_depart(event);
      return;
    }
    case FaultKind::kLoadShock: {
      if (!hooks_.load_shock_begin) {
        ++counters_.skipped;
        return;
      }
      Trace(event, "begin");
      ++counters_.load_shocks;
      hooks_.load_shock_begin(event);
      if (event.duration > 0 && hooks_.load_shock_end) {
        sim_.ScheduleAt(event.time + event.duration, [this, event] {
          Trace(event, "end");
          hooks_.load_shock_end(event);
        });
      }
      return;
    }
  }
}

}  // namespace cellfi::chaos
