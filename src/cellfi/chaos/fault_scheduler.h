// Sim-time fault injection driver (DESIGN.md §14).
//
// `FaultScheduler` arms every event of a `FaultPlan` on a Simulator and
// dispatches it to the host scenario through a `FaultHooks` table at the
// planned instant. The scheduler owns no scenario state itself — crashes,
// incumbents and load shocks are applied by the hooks — which keeps the
// injection schedule a pure function of the plan: the same plan against
// the same scenario seed reproduces the same campaign bit-for-bit.
//
// Every injection is traced (component "chaos") through the ambient obs
// sink, so trace_check.py can order component reactions against the
// faults that caused them.
#pragma once

#include <cstdint>
#include <functional>

#include "cellfi/chaos/fault_plan.h"
#include "cellfi/sim/event_queue.h"

namespace cellfi::chaos {

/// Host bindings for each fault kind. Unset hooks make the corresponding
/// events no-ops (still counted as skipped, never silently dropped from
/// the counters).
struct FaultHooks {
  /// Kill AP `target` (or every AP when target == -1 — the scheduler
  /// expands that into one call per AP via `num_aps`). The event carries
  /// the plan's reboot duration for hosts that model the reboot themselves.
  std::function<void(int ap, const FaultEvent& event)> crash_ap;
  /// Full database outage over [start, stop).
  std::function<void(SimTime start, SimTime stop)> db_outage;
  /// Database brownout window (extra latency + loss).
  std::function<void(const FaultEvent&)> db_brownout;
  /// Incumbent appears/disappears on a channel.
  std::function<void(const FaultEvent&)> incumbent_arrive;
  std::function<void(const FaultEvent&)> incumbent_depart;
  /// Load shock window begins/ends on a cell.
  std::function<void(const FaultEvent&)> load_shock_begin;
  std::function<void(const FaultEvent&)> load_shock_end;
};

class FaultScheduler {
 public:
  struct Counters {
    std::uint64_t ap_crashes = 0;
    std::uint64_t db_outages = 0;
    std::uint64_t db_brownouts = 0;
    std::uint64_t incumbent_arrivals = 0;
    std::uint64_t incumbent_departures = 0;
    std::uint64_t load_shocks = 0;
    std::uint64_t skipped = 0;  ///< events whose hook was unset
  };

  /// `num_aps` expands target == -1 crash events. All referenced objects
  /// must outlive the scheduler.
  FaultScheduler(Simulator& sim, FaultPlan plan, FaultHooks hooks, int num_aps);

  /// Schedule every plan event. Call once, before the simulation runs
  /// past the earliest event time.
  void Arm();

  const FaultPlan& plan() const { return plan_; }
  const Counters& counters() const { return counters_; }
  std::uint64_t injected() const {
    return counters_.ap_crashes + counters_.db_outages + counters_.db_brownouts +
           counters_.incumbent_arrivals + counters_.incumbent_departures +
           counters_.load_shocks;
  }

 private:
  void Inject(const FaultEvent& event);
  void Trace(const FaultEvent& event, const char* phase);

  Simulator& sim_;
  FaultPlan plan_;
  FaultHooks hooks_;
  int num_aps_;
  Counters counters_;
  bool armed_ = false;
};

}  // namespace cellfi::chaos
