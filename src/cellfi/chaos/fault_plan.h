// Deterministic fault plans (DESIGN.md §14).
//
// A `FaultPlan` is the single, serializable description of every fault a
// chaos campaign injects: AP process crashes, database outages and
// brownouts, incumbent churn and per-cell load shocks, plus the
// steady-state link-fault profile the PAWS transport applies between
// scheduled events. Because the plan (and the seed inside it) fully
// determines the injection schedule, any campaign is bit-reproducible:
// re-running the same plan against the same scenario seed yields the same
// event sequence, the same traces and the same violations.
//
// Plans round-trip through JSON (`ToJson`/`FromJson`, schema in README
// "Chaos engine") so campaigns can be checked into fixtures, attached to
// bug reports, and replayed byte-for-byte.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cellfi/common/json.h"
#include "cellfi/common/time.h"
#include "cellfi/tvws/paws_transport.h"

namespace cellfi::chaos {

enum class FaultKind {
  /// AP process dies at `time`: all in-RAM lease/session state is lost and
  /// the radio goes silent instantly (no clean vacate). The process
  /// restarts and re-registers after the AP's reboot duration — a plan
  /// crashing every AP at once produces a re-registration storm.
  kApCrash,
  /// Database unreachable over [time, time + duration): every request in
  /// the window is lost.
  kDbOutage,
  /// Database brownout over [time, time + duration): requests survive but
  /// suffer `latency` extra delay and are dropped with probability
  /// `magnitude` (on top of the steady-state link profile).
  kDbBrownout,
  /// Incumbent (id "chaos-<n>") appears on `channel` at `time`; with
  /// duration > 0 it departs automatically at time + duration. Leases on
  /// the channel are mass-invalidated: every AP using it must vacate
  /// within the ETSI budget.
  kIncumbentArrive,
  /// Incumbent on `channel` departs (pairs a duration-less arrival).
  kIncumbentDepart,
  /// Offered load on cell `target` is multiplied by `magnitude` over
  /// [time, time + duration) (harness-level injection).
  kLoadShock,
};

const char* FaultKindName(FaultKind kind);
std::optional<FaultKind> FaultKindFromName(const std::string& name);

/// One scheduled fault. Which fields are meaningful depends on `kind`;
/// unused fields keep their defaults and are omitted from the JSON form.
struct FaultEvent {
  FaultKind kind = FaultKind::kDbOutage;
  SimTime time = 0;          ///< injection instant (absolute sim time)
  SimTime duration = 0;      ///< window length for windowed kinds (0 = open)
  int target = -1;           ///< AP/cell index; -1 = every AP/cell
  int channel = -1;          ///< TV channel (incumbent kinds)
  double magnitude = 0.0;    ///< drop probability / load multiplier
  SimTime latency = 0;       ///< extra one-way latency (brownout)

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// A complete, self-contained fault campaign.
struct FaultPlan {
  /// Name recorded in artifacts/traces (free-form, defaults to "unnamed").
  std::string name = "unnamed";
  /// Base seed for every random draw the plan's faults require (link-fault
  /// Bernoulli trials, latency jitter). Per-AP transport streams are
  /// derived from it with SplitMix64 so adding an AP never perturbs the
  /// draws of another.
  std::uint64_t seed = 0xC4A05C4A05ull;
  /// Steady-state link faults applied between scheduled events (the
  /// FaultyTransport profile; its own seed field is ignored — the plan
  /// seed governs).
  tvws::FaultProfile link;
  /// Scheduled faults. Kept in the order given; `Normalized()` sorts by
  /// (time, kind, target, channel) for canonical serialization.
  std::vector<FaultEvent> events;

  /// Events of one kind, in plan order.
  std::vector<FaultEvent> EventsOfKind(FaultKind kind) const;

  /// Copy with events stably sorted by (time, kind, target, channel).
  FaultPlan Normalized() const;

  /// Deterministic JSON form (times in integer microseconds, matching the
  /// trace convention; unused per-event fields omitted).
  json::Value ToJson() const;
  std::string ToJsonText() const;

  /// Parse a plan; nullopt on malformed JSON, unknown kinds, negative
  /// times/durations or probabilities outside [0, 1].
  static std::optional<FaultPlan> FromJson(const json::Value& value);
  static std::optional<FaultPlan> FromJsonText(const std::string& text);
};

/// Per-AP transport seed: a pure SplitMix64 chain of (plan seed, ap), so
/// streams are stable under any injection or execution order.
std::uint64_t TransportSeed(const FaultPlan& plan, int ap);

/// The link profile for AP `ap`: the plan's steady-state profile with the
/// seed replaced by `TransportSeed(plan, ap)`.
tvws::FaultProfile LinkProfileFor(const FaultPlan& plan, int ap);

/// Pre-register the plan's database-side windows (kDbOutage → AddOutage,
/// kDbBrownout → AddBrownout) on a transport. This is the static half of
/// plan execution — no FaultScheduler needed; the transport checks the
/// windows against sim time on every Send.
void ApplyDbWindows(const FaultPlan& plan, tvws::FaultyTransport& transport);

// --- Canned campaign archetypes (used by tests and examples) ---------------

/// Every AP crashes at `crash_time`: a thundering-herd re-registration
/// storm once the reboots complete.
FaultPlan ThunderingHerdPlan(int num_aps, SimTime crash_time);

/// Incumbents arrive on each of `channels` at `start`, spaced
/// `stagger` apart, each staying for `dwell` (mass lease invalidation).
FaultPlan IncumbentChurnPlan(const std::vector<int>& channels, SimTime start,
                             SimTime stagger, SimTime dwell);

/// One database brownout (latency + loss) followed by a hard outage.
FaultPlan BrownoutPlan(SimTime brownout_start, SimTime brownout_duration,
                       SimTime extra_latency, double drop_probability,
                       SimTime outage_start, SimTime outage_duration);

}  // namespace cellfi::chaos
