#include "cellfi/chaos/fault_plan.h"

#include <algorithm>
#include <cstdlib>
#include <tuple>

namespace cellfi::chaos {

namespace {

std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Times serialize as integer microseconds (the trace convention); the
/// sub-microsecond remainder of a SimTime is never used by fault plans.
std::int64_t ToUs(SimTime t) { return t / kMicrosecond; }
SimTime FromUs(std::int64_t us) { return us * kMicrosecond; }

bool ReadTimeUs(const json::Value& obj, const std::string& key, SimTime* out) {
  if (const json::Value* v = obj.Find(key)) {
    if (!v->is_number() || v->as_number() < 0) return false;
    *out = FromUs(v->as_int());
  }
  return true;
}

bool ReadProbability(const json::Value& obj, const std::string& key, double* out) {
  if (const json::Value* v = obj.Find(key)) {
    if (!v->is_number() || v->as_number() < 0.0 || v->as_number() > 1.0) return false;
    *out = v->as_number();
  }
  return true;
}

bool ReadInt(const json::Value& obj, const std::string& key, int* out) {
  if (const json::Value* v = obj.Find(key)) {
    if (!v->is_number()) return false;
    *out = static_cast<int>(v->as_int());
  }
  return true;
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kApCrash: return "ap_crash";
    case FaultKind::kDbOutage: return "db_outage";
    case FaultKind::kDbBrownout: return "db_brownout";
    case FaultKind::kIncumbentArrive: return "incumbent_arrive";
    case FaultKind::kIncumbentDepart: return "incumbent_depart";
    case FaultKind::kLoadShock: return "load_shock";
  }
  return "unknown";
}

std::optional<FaultKind> FaultKindFromName(const std::string& name) {
  for (FaultKind kind :
       {FaultKind::kApCrash, FaultKind::kDbOutage, FaultKind::kDbBrownout,
        FaultKind::kIncumbentArrive, FaultKind::kIncumbentDepart,
        FaultKind::kLoadShock}) {
    if (name == FaultKindName(kind)) return kind;
  }
  return std::nullopt;
}

std::vector<FaultEvent> FaultPlan::EventsOfKind(FaultKind kind) const {
  std::vector<FaultEvent> out;
  for (const FaultEvent& e : events) {
    if (e.kind == kind) out.push_back(e);
  }
  return out;
}

FaultPlan FaultPlan::Normalized() const {
  FaultPlan plan = *this;
  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return std::tuple(a.time, static_cast<int>(a.kind), a.target,
                                       a.channel) <
                            std::tuple(b.time, static_cast<int>(b.kind), b.target,
                                       b.channel);
                   });
  return plan;
}

json::Value FaultPlan::ToJson() const {
  json::Value doc;
  doc["name"] = name;
  // The seed is emitted as a decimal string: JSON numbers are doubles and
  // cannot hold every 64-bit seed exactly.
  doc["seed"] = std::to_string(seed);
  json::Value link_v;
  link_v["latency_base_us"] = ToUs(link.latency_base);
  link_v["latency_jitter_us"] = ToUs(link.latency_jitter);
  link_v["drop_probability"] = link.drop_probability;
  link_v["corrupt_probability"] = link.corrupt_probability;
  link_v["error_probability"] = link.error_probability;
  link_v["wrong_id_probability"] = link.wrong_id_probability;
  doc["link"] = link_v;
  json::Array events_v;
  for (const FaultEvent& e : events) {
    json::Value ev;
    ev["kind"] = FaultKindName(e.kind);
    ev["t_us"] = ToUs(e.time);
    if (e.duration != 0) ev["duration_us"] = ToUs(e.duration);
    if (e.target != -1) ev["target"] = e.target;
    if (e.channel != -1) ev["channel"] = e.channel;
    if (e.magnitude != 0.0) ev["magnitude"] = e.magnitude;
    if (e.latency != 0) ev["latency_us"] = ToUs(e.latency);
    events_v.push_back(std::move(ev));
  }
  doc["events"] = std::move(events_v);
  return doc;
}

std::string FaultPlan::ToJsonText() const { return ToJson().Dump(); }

std::optional<FaultPlan> FaultPlan::FromJson(const json::Value& value) {
  if (!value.is_object()) return std::nullopt;
  FaultPlan plan;
  if (const json::Value* name = value.Find("name")) {
    if (!name->is_string()) return std::nullopt;
    plan.name = name->as_string();
  }
  if (const json::Value* seed = value.Find("seed")) {
    if (seed->is_string()) {
      char* end = nullptr;
      plan.seed = std::strtoull(seed->as_string().c_str(), &end, 10);
      if (end == nullptr || *end != '\0') return std::nullopt;
    } else if (seed->is_number() && seed->as_number() >= 0) {
      plan.seed = static_cast<std::uint64_t>(seed->as_int());
    } else {
      return std::nullopt;
    }
  }
  if (const json::Value* link = value.Find("link")) {
    if (!link->is_object()) return std::nullopt;
    if (!ReadTimeUs(*link, "latency_base_us", &plan.link.latency_base) ||
        !ReadTimeUs(*link, "latency_jitter_us", &plan.link.latency_jitter) ||
        !ReadProbability(*link, "drop_probability", &plan.link.drop_probability) ||
        !ReadProbability(*link, "corrupt_probability", &plan.link.corrupt_probability) ||
        !ReadProbability(*link, "error_probability", &plan.link.error_probability) ||
        !ReadProbability(*link, "wrong_id_probability",
                         &plan.link.wrong_id_probability)) {
      return std::nullopt;
    }
  }
  if (const json::Value* events = value.Find("events")) {
    if (!events->is_array()) return std::nullopt;
    for (const json::Value& ev : events->as_array()) {
      if (!ev.is_object()) return std::nullopt;
      const json::Value* kind = ev.Find("kind");
      if (kind == nullptr || !kind->is_string()) return std::nullopt;
      const auto parsed_kind = FaultKindFromName(kind->as_string());
      if (!parsed_kind) return std::nullopt;
      FaultEvent e;
      e.kind = *parsed_kind;
      if (!ReadTimeUs(ev, "t_us", &e.time) ||
          !ReadTimeUs(ev, "duration_us", &e.duration) ||
          !ReadTimeUs(ev, "latency_us", &e.latency) ||
          !ReadInt(ev, "target", &e.target) || !ReadInt(ev, "channel", &e.channel)) {
        return std::nullopt;
      }
      if (const json::Value* mag = ev.Find("magnitude")) {
        if (!mag->is_number() || mag->as_number() < 0.0) return std::nullopt;
        e.magnitude = mag->as_number();
      }
      plan.events.push_back(e);
    }
  }
  return plan;
}

std::optional<FaultPlan> FaultPlan::FromJsonText(const std::string& text) {
  const auto parsed = json::Parse(text);
  if (!parsed) return std::nullopt;
  return FromJson(*parsed);
}

std::uint64_t TransportSeed(const FaultPlan& plan, int ap) {
  std::uint64_t h = SplitMix64(plan.seed);
  return SplitMix64(h ^ static_cast<std::uint64_t>(ap + 1));
}

tvws::FaultProfile LinkProfileFor(const FaultPlan& plan, int ap) {
  tvws::FaultProfile profile = plan.link;
  profile.seed = TransportSeed(plan, ap);
  return profile;
}

void ApplyDbWindows(const FaultPlan& plan, tvws::FaultyTransport& transport) {
  for (const FaultEvent& e : plan.events) {
    if (e.kind == FaultKind::kDbOutage) {
      transport.AddOutage(e.time, e.time + e.duration);
    } else if (e.kind == FaultKind::kDbBrownout) {
      transport.AddBrownout({.start = e.time,
                             .stop = e.time + e.duration,
                             .extra_latency = e.latency,
                             .extra_drop_probability = e.magnitude});
    }
  }
}

FaultPlan ThunderingHerdPlan(int num_aps, SimTime crash_time) {
  FaultPlan plan;
  plan.name = "thundering_herd";
  for (int ap = 0; ap < num_aps; ++ap) {
    plan.events.push_back(
        {.kind = FaultKind::kApCrash, .time = crash_time, .target = ap});
  }
  return plan;
}

FaultPlan IncumbentChurnPlan(const std::vector<int>& channels, SimTime start,
                             SimTime stagger, SimTime dwell) {
  FaultPlan plan;
  plan.name = "incumbent_churn";
  SimTime t = start;
  for (int channel : channels) {
    plan.events.push_back({.kind = FaultKind::kIncumbentArrive,
                           .time = t,
                           .duration = dwell,
                           .channel = channel});
    t += stagger;
  }
  return plan;
}

FaultPlan BrownoutPlan(SimTime brownout_start, SimTime brownout_duration,
                       SimTime extra_latency, double drop_probability,
                       SimTime outage_start, SimTime outage_duration) {
  FaultPlan plan;
  plan.name = "brownout_then_outage";
  plan.events.push_back({.kind = FaultKind::kDbBrownout,
                         .time = brownout_start,
                         .duration = brownout_duration,
                         .magnitude = drop_probability,
                         .latency = extra_latency});
  plan.events.push_back({.kind = FaultKind::kDbOutage,
                         .time = outage_start,
                         .duration = outage_duration});
  return plan;
}

}  // namespace cellfi::chaos
