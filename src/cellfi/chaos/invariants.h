// Runtime invariant checker (DESIGN.md §14).
//
// The simulator's correctness claims — an AP never transmits on a channel
// it does not hold a lease for, vacate fires within the ETSI 60 s budget
// of an incumbent arrival, per-subchannel scheduled shares sum to at most
// one, and the scheduler never grants more PRBs than the grid holds — are
// enforced at runtime by an `InvariantChecker`. Instrumented components
// consult the ambient thread-local checker exactly like the obs layer:
//
//   if (chaos::InvariantChecker* ic = chaos::ActiveChecker()) {
//     ic->CheckPrbGrant(cell, granted, capacity, now);
//   }
//
// With no `InvariantScope` installed the guard is one thread-local load
// and branch — the disabled path computes nothing (bench_micro's
// BM_InvariantGuardDisabled pins that cost).
//
// Unlike the obs layer, the checker is an experiment component, not an
// observer: it may throw (abort_on_violation) to fail a replication, and
// the self-healing sweep supervisor then records the violation in the
// artifact. It still draws no randomness and schedules no events, so
// enabling it in record mode changes no simulation outcome bytes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cellfi/common/time.h"

namespace cellfi::chaos {

enum class InvariantKind {
  kLeasedTransmit,   ///< on air without a valid lease / outside the mask
  kVacateDeadline,   ///< still transmitting > budget after incumbent arrival
  kShareSum,         ///< per-subchannel scheduled shares sum > 1
  kPrbCapacity,      ///< scheduler granted more subchannels than exist
};

const char* InvariantKindName(InvariantKind kind);

struct InvariantViolation {
  SimTime time = 0;
  InvariantKind kind = InvariantKind::kLeasedTransmit;
  int instance = -1;  ///< AP/cell index the violation is attributed to
  std::string detail;
};

struct InvariantCheckerConfig {
  /// ETSI EN 301 598 vacate budget enforced against incumbent arrivals.
  SimTime vacate_budget = 60 * kSecond;
  /// Throw std::runtime_error on the first violation (fails the
  /// replication; the sweep supervisor turns that into a structured
  /// failure record). Off = record-and-continue.
  bool abort_on_violation = false;
  /// Tolerance for share sums (floating-point accumulation slack).
  double share_epsilon = 1e-9;
};

class InvariantChecker {
 public:
  explicit InvariantChecker(InvariantCheckerConfig config = {});

  // --- Event feeds (instrumented components) --------------------------------
  /// AP `ap` went on air on `channel` at `now` with a fresh lease.
  void OnApOnAir(int ap, int channel, SimTime now);
  /// AP `ap` stopped transmitting (vacate, crash, retune).
  void OnApOffAir(int ap, SimTime now);
  /// An incumbent arrived on `channel`: every AP currently on it must be
  /// off air within the vacate budget.
  void OnIncumbentArrival(int channel, SimTime now);
  /// An incumbent left `channel`; pending deadlines for it are void.
  void OnIncumbentDeparture(int channel, SimTime now);

  // --- Direct checks ----------------------------------------------------------
  /// AP transmitted while `leased` says whether its lease is valid.
  void CheckLeasedTransmit(int ap, bool leased, SimTime now);
  /// Scheduled share of one subchannel summed across users of a cell.
  void CheckShareSum(int cell, int subchannel, double share_sum, SimTime now);
  /// Subchannel grant count vs. grid capacity for one cell-subframe.
  void CheckPrbGrant(int cell, int granted, int capacity, SimTime now);

  /// Subframe-barrier evaluation: flags every armed vacate deadline that
  /// expired at or before `now`. Hosts call this at their own cadence
  /// (subframe loop, campaign barrier tick); the checker never schedules.
  void AtBarrier(SimTime now);

  const std::vector<InvariantViolation>& violations() const { return violations_; }
  std::uint64_t checks_run() const { return checks_run_; }
  const InvariantCheckerConfig& config() const { return config_; }

 private:
  struct ApState {
    int ap = -1;
    int channel = -1;          // -1 = off air
    SimTime vacate_deadline = -1;  // armed by an incumbent arrival
  };

  ApState& StateFor(int ap);
  void Report(InvariantKind kind, int instance, SimTime now, std::string detail);

  InvariantCheckerConfig config_;
  std::vector<ApState> aps_;  // ordered by first appearance (deterministic)
  std::vector<InvariantViolation> violations_;
  std::uint64_t checks_run_ = 0;
};

/// Ambient thread-local checker; null (one TLS load + branch) unless an
/// InvariantScope is live on this thread.
InvariantChecker* ActiveChecker();

/// RAII installer, nestable; the previous checker is restored on
/// destruction. Per-thread scoping keeps parallel sweeps race-free: each
/// replication installs its own checker on its worker thread.
class InvariantScope {
 public:
  explicit InvariantScope(InvariantChecker* checker);
  ~InvariantScope();
  InvariantScope(const InvariantScope&) = delete;
  InvariantScope& operator=(const InvariantScope&) = delete;

 private:
  InvariantChecker* prev_;
};

}  // namespace cellfi::chaos
