#include "cellfi/chaos/invariants.h"

#include <stdexcept>

#include "cellfi/obs/metrics.h"
#include "cellfi/obs/trace.h"

namespace cellfi::chaos {

namespace {
thread_local InvariantChecker* g_checker = nullptr;
}  // namespace

const char* InvariantKindName(InvariantKind kind) {
  switch (kind) {
    case InvariantKind::kLeasedTransmit: return "leased_transmit";
    case InvariantKind::kVacateDeadline: return "vacate_deadline";
    case InvariantKind::kShareSum: return "share_sum";
    case InvariantKind::kPrbCapacity: return "prb_capacity";
  }
  return "unknown";
}

InvariantChecker::InvariantChecker(InvariantCheckerConfig config)
    : config_(config) {}

InvariantChecker::ApState& InvariantChecker::StateFor(int ap) {
  for (ApState& s : aps_) {
    if (s.ap == ap) return s;
  }
  aps_.push_back(ApState{ap, -1, -1});
  return aps_.back();
}

void InvariantChecker::Report(InvariantKind kind, int instance, SimTime now,
                              std::string detail) {
  violations_.push_back({now, kind, instance, detail});
  if (obs::TraceSink* tr = obs::ActiveTrace()) {
    tr->Emit(now, "invariant", "violation",
             {{"kind", InvariantKindName(kind)}, {"instance", instance},
              {"detail", detail}});
  }
  if (obs::MetricsRegistry* m = obs::ActiveMetrics()) {
    m->Add(m->Counter("invariant.violations"));
    m->Add(m->Counter(std::string("invariant.violations.") +
                      InvariantKindName(kind)));
  }
  if (config_.abort_on_violation) {
    throw std::runtime_error(std::string("invariant violated: ") +
                             InvariantKindName(kind) + " instance=" +
                             std::to_string(instance) + " t_us=" +
                             std::to_string(now / kMicrosecond) + " (" +
                             std::move(detail) + ")");
  }
}

void InvariantChecker::OnApOnAir(int ap, int channel, SimTime now) {
  ++checks_run_;
  (void)now;
  ApState& s = StateFor(ap);
  // A fresh lease on a different channel voids a pending deadline — the AP
  // left the invalidated channel, which is what vacating means. Coming
  // back up on the SAME channel while the incumbent deadline is armed
  // keeps the clock running.
  if (s.vacate_deadline >= 0 && s.channel != channel) s.vacate_deadline = -1;
  s.channel = channel;
}

void InvariantChecker::OnApOffAir(int ap, SimTime now) {
  ++checks_run_;
  ApState& s = StateFor(ap);
  s.channel = -1;
  if (s.vacate_deadline >= 0) {
    // Vacated: compliant only if the radio went dark inside the budget.
    if (now > s.vacate_deadline) {
      Report(InvariantKind::kVacateDeadline, ap, now,
             "vacated " + std::to_string((now - s.vacate_deadline) / kMicrosecond) +
                 "us past the budget");
    }
    s.vacate_deadline = -1;
  }
}

void InvariantChecker::OnIncumbentArrival(int channel, SimTime now) {
  ++checks_run_;
  for (ApState& s : aps_) {
    if (s.channel == channel && s.vacate_deadline < 0) {
      s.vacate_deadline = now + config_.vacate_budget;
    }
  }
}

void InvariantChecker::OnIncumbentDeparture(int channel, SimTime now) {
  ++checks_run_;
  (void)now;
  for (ApState& s : aps_) {
    if (s.channel == channel) s.vacate_deadline = -1;
  }
}

void InvariantChecker::CheckLeasedTransmit(int ap, bool leased, SimTime now) {
  ++checks_run_;
  if (!leased) {
    Report(InvariantKind::kLeasedTransmit, ap, now,
           "transmission without a valid lease");
  }
}

void InvariantChecker::CheckShareSum(int cell, int subchannel, double share_sum,
                                     SimTime now) {
  ++checks_run_;
  if (share_sum > 1.0 + config_.share_epsilon) {
    Report(InvariantKind::kShareSum, cell, now,
           "subchannel " + std::to_string(subchannel) + " share sum " +
               std::to_string(share_sum));
  }
}

void InvariantChecker::CheckPrbGrant(int cell, int granted, int capacity,
                                     SimTime now) {
  ++checks_run_;
  if (granted > capacity) {
    Report(InvariantKind::kPrbCapacity, cell, now,
           "granted " + std::to_string(granted) + " of " +
               std::to_string(capacity) + " subchannels");
  }
}

void InvariantChecker::AtBarrier(SimTime now) {
  ++checks_run_;
  for (ApState& s : aps_) {
    if (s.vacate_deadline >= 0 && now > s.vacate_deadline) {
      const SimTime late = now - s.vacate_deadline;
      s.vacate_deadline = -1;  // report each violation once
      Report(InvariantKind::kVacateDeadline, s.ap, now,
             "still on channel " + std::to_string(s.channel) + " " +
                 std::to_string(late / kMicrosecond) + "us past the budget");
    }
  }
}

InvariantChecker* ActiveChecker() { return g_checker; }

InvariantScope::InvariantScope(InvariantChecker* checker) : prev_(g_checker) {
  g_checker = checker;
}

InvariantScope::~InvariantScope() { g_checker = prev_; }

}  // namespace cellfi::chaos
