#include "cellfi/lte/ue_context.h"

#include <algorithm>
#include <cassert>

namespace cellfi::lte {

UeContext::UeContext(UeId id, int num_subchannels)
    : id_(id), subband_cqi_(static_cast<std::size_t>(num_subchannels), 0) {}

void UeContext::DrainDownlink(std::uint64_t bytes) {
  dl_queue_bytes_ -= std::min(dl_queue_bytes_, bytes);
}

void UeContext::DrainUplink(std::uint64_t bytes) {
  ul_queue_bytes_ -= std::min(ul_queue_bytes_, bytes);
}

void UeContext::ImportOnHandover(const UeContext& old) {
  dl_queue_bytes_ = old.dl_queue_bytes_;
  ul_queue_bytes_ = old.ul_queue_bytes_;
  dl_delivered_bits = old.dl_delivered_bits;
  ul_delivered_bits = old.ul_delivered_bits;
  dl_lost_blocks = old.dl_lost_blocks;
  dl_total_blocks = old.dl_total_blocks;
  dl_harq_retx_blocks = old.dl_harq_retx_blocks;
  code_rate_log = old.code_rate_log;
  ul_code_rate_log = old.ul_code_rate_log;
  channel_fraction_log = old.channel_fraction_log;
  ul_channel_fraction_log = old.ul_channel_fraction_log;
}

void UeContext::UpdateCqi(int wideband, const std::vector<int>& subband) {
  has_cqi_ = true;
  wideband_cqi_ = wideband;
  const std::size_t n = std::min(subband.size(), subband_cqi_.size());
  std::copy_n(subband.begin(), n, subband_cqi_.begin());
}

void UeContext::UpdatePfAverage(double bits_served, double window_subframes) {
  assert(window_subframes >= 1.0);
  const double alpha = 1.0 / window_subframes;
  average_rate_ = (1.0 - alpha) * average_rate_ + alpha * bits_served;
  average_rate_ = std::max(average_rate_, 1e-3);
}

int AggregateCqi(const std::vector<int>& subband_cqi, const std::vector<int>& subchannels) {
  if (subchannels.empty()) return 0;
  double mean_eff = 0.0;
  for (int s : subchannels) {
    mean_eff += CqiEfficiency(subband_cqi[static_cast<std::size_t>(s)]);
  }
  mean_eff /= static_cast<double>(subchannels.size());
  if (mean_eff <= 0.0) return 0;
  // Round to the CQI whose efficiency is nearest the mean. Flooring here
  // would stack conservatism on top of the subband quantization and make
  // first-transmission errors (and therefore HARQ) vanish, which real
  // LTE link adaptation does not do.
  int best = 0;
  double best_gap = 1e9;
  for (int c = kMinCqi; c <= kMaxCqi; ++c) {
    const double gap = std::abs(CqiEfficiency(c) - mean_eff);
    if (gap < best_gap) {
      best_gap = gap;
      best = c;
    }
  }
  return best;
}

}  // namespace cellfi::lte
