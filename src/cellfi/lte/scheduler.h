// Subframe schedulers: proportional fair and round robin.
//
// The scheduler assigns CellFi subchannels (RBGs) to UEs within the set of
// subchannels the interference-management component has made available
// (paper Section 4.3: "The scheduler is free to schedule any client in any
// of the resource blocks made available by the interference management
// system"). Plain LTE runs with an all-true mask.
#pragma once

#include <memory>
#include <vector>

#include "cellfi/lte/types.h"
#include "cellfi/lte/ue_context.h"

namespace cellfi::lte {

/// Assignment output: subchannel -> index into the UE list (-1 = unused).
using SubchannelAssignment = std::vector<int>;

/// Scheduler interface. Implementations must be stateless across cells but
/// may keep per-cell cursors (e.g. round-robin position).
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Assign allowed subchannels to the UEs in `ues` that have downlink
  /// data. UEs with a pending HARQ retransmission take priority and must
  /// receive exactly their original allocation width (HARQ retransmits the
  /// same transport block).
  virtual SubchannelAssignment AssignDownlink(const std::vector<UeContext*>& ues,
                                              const std::vector<bool>& allowed_mask) = 0;

  /// Assign subchannels for uplink demand. Uplink allocations are sized to
  /// the demand: a UE with only TCP ACKs to send gets the single best
  /// subchannel rather than the whole band (Fig. 1(c)).
  virtual SubchannelAssignment AssignUplink(const std::vector<UeContext*>& ues,
                                            const std::vector<bool>& allowed_mask,
                                            int data_re_per_rb, int rbs_per_subchannel) = 0;
};

std::unique_ptr<Scheduler> MakeScheduler(SchedulerType type);

/// Shared helper: subchannels a UE would pick first (descending CQI).
std::vector<int> RankSubchannelsByCqi(const UeContext& ue,
                                      const std::vector<bool>& allowed_mask);

}  // namespace cellfi::lte
