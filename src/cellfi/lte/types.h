// Shared LTE MAC types and configuration.
#pragma once

#include <cstdint>

#include "cellfi/common/time.h"
#include "cellfi/phy/resource_grid.h"

namespace cellfi::lte {

using CellId = int;
using UeId = int;
inline constexpr CellId kInvalidCell = -1;

enum class SchedulerType {
  kProportionalFair,  // rate / average-rate metric (default)
  kRoundRobin,        // equal turns
  kMaxCqi,            // greedy throughput-maximizing, starves edge users
};

/// Channel-access discipline for a cell.
///  * kScheduled — stock LTE / CellFi: transmit whenever there is data
///    (CellFi constrains WHERE via the subchannel mask, never WHEN).
///  * kListenBeforeTalk — LAA / MulteFire style: clear-channel assessment
///    before a bounded burst, random backoff when busy. The paper (Section
///    8) argues this class inherits Wi-Fi's long-range MAC inefficiencies;
///    the ablation bench quantifies that.
enum class AccessMode { kScheduled, kListenBeforeTalk };

/// Listen-before-talk parameters (rough LAA Cat-4 shape).
struct LbtConfig {
  /// Energy-detect threshold over the occupied bandwidth.
  double ed_threshold_dbm = -82.0;
  /// Maximum channel-occupancy time, in subframes (LAA: 8-10 ms).
  int max_burst_subframes = 8;
  /// Contention window (slots are subframes here: CCA granularity 1 ms).
  int cw_min = 4;
  int cw_max = 64;
};

/// Per-cell MAC configuration.
struct LteMacConfig {
  LteBandwidth bandwidth = LteBandwidth::k5MHz;
  AccessMode access_mode = AccessMode::kScheduled;
  LbtConfig lbt;
  /// TDD UL/DL configuration index (paper uses 4); -1 = FDD downlink-only
  /// carrier (used to model the testbed's band-13 FDD cell).
  int tdd_config = 4;
  int pdcch_symbols = 3;
  SchedulerType scheduler = SchedulerType::kProportionalFair;
  int harq_max_transmissions = 4;
  /// Link-adaptation aggressiveness: dB added to the measured SINR before
  /// CQI quantization. Real eNodeBs run aggressive MCS selection and lean
  /// on HARQ (~10 % first-transmission BLER target); 0 disables errors on
  /// tracked channels entirely, which is unrealistically conservative.
  double link_adaptation_margin_db = 3.0;
  /// Aperiodic mode 3-0 sub-band CQI reporting period (paper: 2 ms).
  SimTime cqi_report_period = 2 * kMillisecond;
  /// If true, reports pass through the literal mode 3-0 wire format, whose
  /// 2-bit differential clamps sub-band CQI to [wideband-1, wideband+2].
  /// That clamp erases the cross-frequency contrast CellFi's interference
  /// detector relies on, so system simulations default to full-resolution
  /// (4-bit) sub-band values — matching the paper's ns-3 setup — while the
  /// wire format itself is exercised by the signalling-overhead bench.
  bool use_mode30_wire_format = false;
  /// EWMA window for the proportional-fair average rate, in subframes.
  double pf_window_subframes = 100.0;
};

/// UE radio-link state.
enum class UeState : std::uint8_t { kIdle, kAttaching, kConnected, kRadioLinkFailure };

/// Radio-link-failure model: a UE declares RLF after `rlf_window` of
/// consecutive out-of-range wideband CQI, then needs `reattach_delay` to
/// come back (cell search + RACH).
struct RlfConfig {
  SimTime rlf_window = 200 * kMillisecond;
  SimTime reattach_delay = 2 * kSecond;
};

}  // namespace cellfi::lte
