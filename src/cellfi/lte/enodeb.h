// eNodeB MAC: per-subframe transmission planning, HARQ bookkeeping and CQI
// intake for one cell.
//
// The eNodeB is deliberately unaware of the radio environment: it plans
// transmissions from reported CQI, and the LteNetwork (which owns
// propagation) feeds back the realized SINR per transport block. The
// interference-management component constrains it only through
// `SetAllowedMask` — exactly the interface the paper describes between
// CellFi's interference manager and the stock LTE scheduler.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "cellfi/common/rng.h"
#include "cellfi/lte/scheduler.h"
#include "cellfi/lte/types.h"
#include "cellfi/lte/ue_context.h"
#include "cellfi/phy/resource_grid.h"

namespace cellfi::lte {

/// One planned transport block in a subframe.
struct Transmission {
  UeId ue = -1;
  int ue_index = -1;              // index into the cell's UE list
  std::vector<int> subchannels;   // allocated subchannels
  int cqi = 0;                    // MCS for the block
  int tb_bits = 0;                // transport block capacity
  std::uint64_t payload_bytes = 0;  // actual queued bytes covered
  bool is_harq_retx = false;
};

/// All transmissions of one cell in one subframe.
struct TxPlan {
  std::vector<Transmission> transmissions;
  /// True where a subchannel carries data this subframe.
  std::vector<bool> data_active;
};

/// Result of resolving one transport block against the channel.
struct DeliveryResult {
  bool delivered = false;
  bool dropped = false;  // HARQ attempts exhausted
  std::uint64_t payload_bytes = 0;
  int attempts = 0;
};

class EnodeB {
 public:
  EnodeB(CellId id, LteMacConfig config);

  CellId id() const { return id_; }
  const LteMacConfig& config() const { return config_; }
  const ResourceGrid& grid() const { return grid_; }
  const TddConfig& tdd() const { return tdd_; }

  // --- UE management -------------------------------------------------------
  UeContext& AddUe(UeId ue);
  void RemoveUe(UeId ue);
  UeContext* FindUe(UeId ue);
  const std::vector<std::unique_ptr<UeContext>>& ues() const { return ues_; }
  bool has_ues() const { return !ues_.empty(); }

  // --- Interference-management interface ------------------------------------
  /// Restrict the scheduler to these subchannels (CellFi IM). Size must be
  /// num_subchannels.
  void SetAllowedMask(std::vector<bool> mask);
  const std::vector<bool>& allowed_mask() const { return allowed_mask_; }
  /// Number of subchannels currently allowed.
  int allowed_count() const;

  // --- Aggregate background load (DESIGN.md §18) -----------------------------
  /// Fraction of the allowed subchannels the aggregate traffic tier
  /// occupies each DL subframe, in [0, 1]. PlanDownlink reserves
  /// round(fraction * allowed) subchannels at a per-subframe rotating
  /// offset: they carry data on air (real interference toward neighbours)
  /// and are withheld from the real-UE scheduler (real scheduler
  /// pressure). The rotation spreads occupancy over every allowed
  /// subchannel so CQI probes of the fully-simulated UEs still sample all
  /// of them. 0 restores the pre-tier behavior byte-identically.
  void SetBackgroundPrbDemand(double fraction);
  double background_prb_demand() const { return background_prb_demand_; }
  /// True when the cell has anything to put on air: attached UEs or
  /// background demand from the aggregate tier.
  bool has_load() const { return !ues_.empty() || background_prb_demand_ > 0.0; }

  // --- Per-subframe MAC ------------------------------------------------------
  /// Build the downlink plan for this subframe (only meaningful on DL
  /// subframes). Runs on shard workers; everything it reaches must be
  /// RNG-free, schedule-free and lock-free (DESIGN.md §16).
  // cellfi-purity: contract-root(parallel-shard-phase) EnodeB::PlanDownlink
  TxPlan PlanDownlink();

  /// Build the uplink grant plan (UL subframes). Same purity contract as
  /// PlanDownlink.
  // cellfi-purity: contract-root(parallel-shard-phase) EnodeB::PlanUplink
  TxPlan PlanUplink();

  /// Resolve a downlink transport block given its realized SINR; updates
  /// HARQ state, queues and statistics.
  DeliveryResult CompleteDownlink(const Transmission& tx, double sinr_db, Rng& rng);

  /// Resolve an uplink transport block.
  DeliveryResult CompleteUplink(const Transmission& tx, double sinr_db, Rng& rng);

  /// Update proportional-fair averages after a DL subframe. `served_bits`
  /// is indexed like the UE list; unserved UEs decay toward zero.
  void UpdatePfAverages(const std::vector<double>& served_bits);

  // --- Cell-wide statistics ---------------------------------------------------
  std::uint64_t total_dl_bits() const { return total_dl_bits_; }
  std::uint64_t total_ul_bits() const { return total_ul_bits_; }

  // --- Epoch schedule statistics (CellFi IM input) -------------------------------
  /// Per-UE, per-subchannel count of DL subframes scheduled since the last
  /// reset; frac_j in the paper's bucket update is count / dl_subframes.
  struct ScheduleStats {
    int dl_subframes = 0;
    std::unordered_map<UeId, std::vector<int>> ue_subchannel_subframes;
  };
  const ScheduleStats& schedule_stats() const { return schedule_stats_; }
  void ResetScheduleStats();

 private:
  Transmission MakeNewBlock(UeContext& ue, int ue_index, std::vector<int> subchannels,
                            bool uplink) const;
  Transmission MakeRetxBlock(const UeContext& ue, int ue_index,
                             std::vector<int> subchannels, bool uplink) const;
  DeliveryResult Complete(const Transmission& tx, double sinr_db, Rng& rng, bool uplink);

  CellId id_;
  LteMacConfig config_;
  ResourceGrid grid_;
  TddConfig tdd_;
  std::unique_ptr<Scheduler> scheduler_;
  std::vector<std::unique_ptr<UeContext>> ues_;
  std::vector<bool> allowed_mask_;
  double background_prb_demand_ = 0.0;
  /// Rotating start offset for the background reservation. A plain
  /// counter, bumped once per planned DL subframe: cell-owned state, so
  /// PlanDownlink stays RNG-free and shard-deterministic (DESIGN.md §16).
  std::uint64_t background_rotation_ = 0;
  /// Scratch for the background-masked allowed set (avoids a per-subframe
  /// allocation on the hot path).
  std::vector<bool> background_mask_scratch_;
  std::uint64_t total_dl_bits_ = 0;
  std::uint64_t total_ul_bits_ = 0;
  ScheduleStats schedule_stats_;
};

}  // namespace cellfi::lte
