#include "cellfi/lte/enodeb.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "cellfi/common/units.h"
#include "cellfi/phy/cqi_mcs.h"

namespace cellfi::lte {

EnodeB::EnodeB(CellId id, LteMacConfig config)
    : id_(id),
      config_(config),
      grid_(config.bandwidth, config.pdcch_symbols),
      tdd_(config.tdd_config >= 0 ? TddConfig(config.tdd_config) : TddConfig::FddDownlink()),
      scheduler_(MakeScheduler(config.scheduler)),
      allowed_mask_(static_cast<std::size_t>(grid_.num_subchannels()), true) {}

UeContext& EnodeB::AddUe(UeId ue) {
  assert(FindUe(ue) == nullptr);
  ues_.push_back(std::make_unique<UeContext>(ue, grid_.num_subchannels()));
  return *ues_.back();
}

void EnodeB::RemoveUe(UeId ue) {
  const auto it = std::find_if(ues_.begin(), ues_.end(),
                               [&](const auto& u) { return u->id() == ue; });
  if (it != ues_.end()) ues_.erase(it);
}

UeContext* EnodeB::FindUe(UeId ue) {
  const auto it = std::find_if(ues_.begin(), ues_.end(),
                               [&](const auto& u) { return u->id() == ue; });
  return it != ues_.end() ? it->get() : nullptr;
}

void EnodeB::SetAllowedMask(std::vector<bool> mask) {
  assert(static_cast<int>(mask.size()) == grid_.num_subchannels());
  allowed_mask_ = std::move(mask);
}

int EnodeB::allowed_count() const {
  return static_cast<int>(std::count(allowed_mask_.begin(), allowed_mask_.end(), true));
}

void EnodeB::SetBackgroundPrbDemand(double fraction) {
  background_prb_demand_ = std::clamp(fraction, 0.0, 1.0);
}

Transmission EnodeB::MakeNewBlock(UeContext& ue, int ue_index,
                                  std::vector<int> subchannels, bool uplink) const {
  Transmission tx;
  tx.ue = ue.id();
  tx.ue_index = ue_index;
  tx.cqi = std::max(AggregateCqi(ue.subband_cqi(), subchannels),
                    ue.has_cqi() ? 0 : kMinCqi);
  int rbs = 0;
  for (int s : subchannels) rbs += grid_.SubchannelRbCount(s);
  tx.tb_bits = TransportBlockBits(tx.cqi, rbs, grid_.DataResourceElementsPerRb());
  const std::uint64_t queued = uplink ? ue.ul_queue_bytes() : ue.dl_queue_bytes();
  tx.payload_bytes = std::min<std::uint64_t>(queued, static_cast<std::uint64_t>(tx.tb_bits / 8));
  tx.subchannels = std::move(subchannels);
  return tx;
}

Transmission EnodeB::MakeRetxBlock(const UeContext& ue, int ue_index,
                                   std::vector<int> subchannels, bool uplink) const {
  const HarqState& h = uplink ? ue.harq_ul() : ue.harq_dl();
  Transmission tx;
  tx.ue = ue.id();
  tx.ue_index = ue_index;
  tx.cqi = h.cqi;
  tx.tb_bits = h.tb_bits;
  tx.payload_bytes = h.payload_bytes;
  tx.is_harq_retx = true;
  tx.subchannels = std::move(subchannels);
  return tx;
}

TxPlan EnodeB::PlanDownlink() {
  TxPlan plan;
  plan.data_active.assign(allowed_mask_.size(), false);

  // Aggregate background reservation (DESIGN.md §18): round(frac * allowed)
  // allowed subchannels go to the background tier — active on air, masked
  // from the real-UE scheduler. The start offset rotates by one allowed
  // subchannel per planned subframe (counter, not RNG: the purity contract
  // on this function forbids stateful draws), so over a control epoch the
  // occupancy spreads evenly and every allowed subchannel is still sampled
  // by real-UE CQI probes. With zero demand this block is skipped and the
  // plan is byte-identical to the pre-tier code.
  const std::vector<bool>* sched_mask = &allowed_mask_;
  if (background_prb_demand_ > 0.0) {
    background_mask_scratch_ = allowed_mask_;
    const int allowed =
        static_cast<int>(std::count(allowed_mask_.begin(), allowed_mask_.end(), true));
    const int reserve = std::min(
        allowed,
        static_cast<int>(std::lround(background_prb_demand_ * allowed)));
    if (allowed > 0 && reserve > 0) {
      const int offset = static_cast<int>(
          background_rotation_ % static_cast<std::uint64_t>(allowed));
      int ordinal = 0;  // position among the allowed subchannels
      for (std::size_t s = 0; s < allowed_mask_.size(); ++s) {
        if (!allowed_mask_[s]) continue;
        if ((ordinal - offset + allowed) % allowed < reserve) {
          background_mask_scratch_[s] = false;
          plan.data_active[s] = true;
        }
        ++ordinal;
      }
    }
    ++background_rotation_;
    sched_mask = &background_mask_scratch_;
  }

  std::vector<UeContext*> ue_ptrs;
  ue_ptrs.reserve(ues_.size());
  for (const auto& u : ues_) ue_ptrs.push_back(u.get());

  const SubchannelAssignment assignment =
      scheduler_->AssignDownlink(ue_ptrs, *sched_mask);

  // Group subchannels per UE.
  std::vector<std::vector<int>> per_ue(ues_.size());
  for (std::size_t s = 0; s < assignment.size(); ++s) {
    if (assignment[s] >= 0) {
      per_ue[static_cast<std::size_t>(assignment[s])].push_back(static_cast<int>(s));
      plan.data_active[s] = true;
    }
  }

  for (std::size_t u = 0; u < per_ue.size(); ++u) {
    if (per_ue[u].empty()) continue;
    UeContext& ue = *ues_[u];
    plan.transmissions.push_back(
        ue.harq_dl().active
            ? MakeRetxBlock(ue, static_cast<int>(u), std::move(per_ue[u]), false)
            : MakeNewBlock(ue, static_cast<int>(u), std::move(per_ue[u]), false));
  }

  ++schedule_stats_.dl_subframes;
  for (const Transmission& tx : plan.transmissions) {
    auto& counts = schedule_stats_.ue_subchannel_subframes[tx.ue];
    if (counts.empty()) counts.assign(static_cast<std::size_t>(grid_.num_subchannels()), 0);
    for (int s : tx.subchannels) ++counts[static_cast<std::size_t>(s)];
  }
  return plan;
}

void EnodeB::ResetScheduleStats() { schedule_stats_ = ScheduleStats{}; }

TxPlan EnodeB::PlanUplink() {
  TxPlan plan;
  plan.data_active.assign(allowed_mask_.size(), false);

  std::vector<UeContext*> ue_ptrs;
  ue_ptrs.reserve(ues_.size());
  for (const auto& u : ues_) ue_ptrs.push_back(u.get());

  const SubchannelAssignment assignment = scheduler_->AssignUplink(
      ue_ptrs, allowed_mask_, grid_.DataResourceElementsPerRb(), grid_.rbg_size());

  std::vector<std::vector<int>> per_ue(ues_.size());
  for (std::size_t s = 0; s < assignment.size(); ++s) {
    if (assignment[s] >= 0) {
      per_ue[static_cast<std::size_t>(assignment[s])].push_back(static_cast<int>(s));
      plan.data_active[s] = true;
    }
  }

  for (std::size_t u = 0; u < per_ue.size(); ++u) {
    if (per_ue[u].empty()) continue;
    UeContext& ue = *ues_[u];
    plan.transmissions.push_back(
        ue.harq_ul().active
            ? MakeRetxBlock(ue, static_cast<int>(u), std::move(per_ue[u]), true)
            : MakeNewBlock(ue, static_cast<int>(u), std::move(per_ue[u]), true));
  }
  return plan;
}

DeliveryResult EnodeB::Complete(const Transmission& tx, double sinr_db, Rng& rng,
                                bool uplink) {
  DeliveryResult result;
  UeContext* ue = FindUe(tx.ue);
  if (ue == nullptr) return result;
  HarqState& h = uplink ? ue->harq_ul() : ue->harq_dl();

  double combined = tx.is_harq_retx ? h.combined_sinr_linear : 0.0;
  combined += DbToLinear(sinr_db);
  const int attempts = (tx.is_harq_retx ? h.attempts : 0) + 1;
  result.attempts = attempts;

  if (!uplink) {
    if (!tx.is_harq_retx) ++ue->dl_total_blocks;
    if (attempts == 2) ++ue->dl_harq_retx_blocks;
  }

  const bool success =
      tx.cqi >= kMinCqi && !rng.Bernoulli(BlerAt(tx.cqi, LinearToDb(combined)));
  if (success) {
    result.delivered = true;
    result.payload_bytes = tx.payload_bytes;
    if (uplink) {
      ue->DrainUplink(tx.payload_bytes);
      ue->ul_delivered_bits += 8 * tx.payload_bytes;
      total_ul_bits_ += 8 * tx.payload_bytes;
      ue->ul_code_rate_log.push_back(CqiCodeRate(tx.cqi));
      ue->ul_channel_fraction_log.push_back(static_cast<double>(tx.subchannels.size()) /
                                            static_cast<double>(grid_.num_subchannels()));
    } else {
      ue->DrainDownlink(tx.payload_bytes);
      ue->dl_delivered_bits += 8 * tx.payload_bytes;
      total_dl_bits_ += 8 * tx.payload_bytes;
      ue->code_rate_log.push_back(CqiCodeRate(tx.cqi));
      ue->channel_fraction_log.push_back(static_cast<double>(tx.subchannels.size()) /
                                         static_cast<double>(grid_.num_subchannels()));
    }
    h.Clear();
    return result;
  }

  if (attempts >= config_.harq_max_transmissions) {
    result.dropped = true;
    if (!uplink) ++ue->dl_lost_blocks;
    h.Clear();  // data stays queued; a fresh block will carry it
    return result;
  }

  h.active = true;
  h.cqi = tx.cqi;
  h.tb_bits = tx.tb_bits;
  h.num_subchannels = static_cast<int>(tx.subchannels.size());
  h.payload_bytes = tx.payload_bytes;
  h.combined_sinr_linear = combined;
  h.attempts = attempts;
  return result;
}

DeliveryResult EnodeB::CompleteDownlink(const Transmission& tx, double sinr_db, Rng& rng) {
  return Complete(tx, sinr_db, rng, /*uplink=*/false);
}

DeliveryResult EnodeB::CompleteUplink(const Transmission& tx, double sinr_db, Rng& rng) {
  return Complete(tx, sinr_db, rng, /*uplink=*/true);
}

void EnodeB::UpdatePfAverages(const std::vector<double>& served_bits) {
  assert(served_bits.size() == ues_.size());
  for (std::size_t u = 0; u < ues_.size(); ++u) {
    ues_[u]->UpdatePfAverage(served_bits[u], config_.pf_window_subframes);
  }
}

}  // namespace cellfi::lte
