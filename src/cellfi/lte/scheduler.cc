#include "cellfi/lte/scheduler.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "cellfi/obs/metrics.h"
#include "cellfi/obs/trace.h"
#include "cellfi/phy/cqi_mcs.h"

namespace cellfi::lte {

namespace {

/// CQI used for a UE that has not reported yet (just attached): the most
/// robust MCS.
int EffectiveSubbandCqi(const UeContext& ue, int subchannel) {
  if (!ue.has_cqi()) return kMinCqi;
  return ue.SubbandCqi(subchannel);
}

/// Claim up to `count` of the UE's best allowed, unassigned subchannels.
int ClaimBest(const UeContext& ue, int count, const std::vector<bool>& allowed_mask,
              SubchannelAssignment& assignment, int ue_index) {
  const auto ranked = RankSubchannelsByCqi(ue, allowed_mask);
  int claimed = 0;
  for (int s : ranked) {
    if (claimed >= count) break;
    if (assignment[static_cast<std::size_t>(s)] != -1) continue;
    assignment[static_cast<std::size_t>(s)] = ue_index;
    ++claimed;
  }
  return claimed;
}

class ProportionalFairScheduler final : public Scheduler {
 public:
  SubchannelAssignment AssignDownlink(const std::vector<UeContext*>& ues,
                                      const std::vector<bool>& allowed_mask) override {
    SubchannelAssignment assignment(allowed_mask.size(), -1);

    // HARQ retransmissions first: same width as the original block.
    for (std::size_t u = 0; u < ues.size(); ++u) {
      const HarqState& h = ues[u]->harq_dl();
      if (h.active) {
        ClaimBest(*ues[u], h.num_subchannels, allowed_mask, assignment,
                  static_cast<int>(u));
      }
    }

    // PF metric per (subchannel, ue): instantaneous rate / average rate.
    for (std::size_t s = 0; s < allowed_mask.size(); ++s) {
      if (!allowed_mask[s] || assignment[s] != -1) continue;
      double best_metric = 0.0;
      int best_ue = -1;
      for (std::size_t u = 0; u < ues.size(); ++u) {
        const UeContext& ue = *ues[u];
        if (ue.harq_dl().active || ue.dl_queue_bytes() == 0) continue;
        const int cqi = EffectiveSubbandCqi(ue, static_cast<int>(s));
        if (cqi < kMinCqi) continue;
        const double metric = CqiEfficiency(cqi) / ue.average_rate();
        if (metric > best_metric) {
          best_metric = metric;
          best_ue = static_cast<int>(u);
        }
      }
      assignment[s] = best_ue;
    }
    return assignment;
  }

  SubchannelAssignment AssignUplink(const std::vector<UeContext*>& ues,
                                    const std::vector<bool>& allowed_mask,
                                    int data_re_per_rb, int rbs_per_subchannel) override {
    SubchannelAssignment assignment(allowed_mask.size(), -1);

    // Serve UEs in decreasing backlog; size each grant to the demand so a
    // TCP-ACK-only uplink occupies a single (best) subchannel.
    std::vector<std::size_t> order(ues.size());
    std::iota(order.begin(), order.end(), 0u);
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return ues[a]->ul_queue_bytes() > ues[b]->ul_queue_bytes();
    });

    for (std::size_t u : order) {
      UeContext& ue = *ues[u];
      std::uint64_t needed_bits = 8 * ue.ul_queue_bytes();
      if (ue.harq_ul().active) {
        ClaimBest(ue, ue.harq_ul().num_subchannels, allowed_mask, assignment,
                  static_cast<int>(u));
        continue;
      }
      if (needed_bits == 0) continue;
      for (int s : RankSubchannelsByCqi(ue, allowed_mask)) {
        if (needed_bits == 0) break;
        if (assignment[static_cast<std::size_t>(s)] != -1) continue;
        assignment[static_cast<std::size_t>(s)] = static_cast<int>(u);
        const int cqi = EffectiveSubbandCqi(ue, s);
        const std::uint64_t tb =
            static_cast<std::uint64_t>(TransportBlockBits(cqi, rbs_per_subchannel,
                                                          data_re_per_rb));
        needed_bits -= std::min(needed_bits, std::max<std::uint64_t>(tb, 1));
      }
    }
    return assignment;
  }
};

// Greedy: every subchannel to whoever can move the most bits through it.
// Maximizes cell throughput; cell-edge users starve whenever someone with
// better CQI wants the same subchannels (the classic fairness trade-off the
// PF scheduler exists to fix).
class MaxCqiScheduler final : public Scheduler {
 public:
  SubchannelAssignment AssignDownlink(const std::vector<UeContext*>& ues,
                                      const std::vector<bool>& allowed_mask) override {
    SubchannelAssignment assignment(allowed_mask.size(), -1);
    for (std::size_t u = 0; u < ues.size(); ++u) {
      const HarqState& h = ues[u]->harq_dl();
      if (h.active) {
        ClaimBest(*ues[u], h.num_subchannels, allowed_mask, assignment,
                  static_cast<int>(u));
      }
    }
    for (std::size_t s = 0; s < allowed_mask.size(); ++s) {
      if (!allowed_mask[s] || assignment[s] != -1) continue;
      int best_cqi = 0;
      int best_ue = -1;
      for (std::size_t u = 0; u < ues.size(); ++u) {
        const UeContext& ue = *ues[u];
        if (ue.harq_dl().active || ue.dl_queue_bytes() == 0) continue;
        const int cqi = EffectiveSubbandCqi(ue, static_cast<int>(s));
        if (cqi > best_cqi) {
          best_cqi = cqi;
          best_ue = static_cast<int>(u);
        }
      }
      assignment[s] = best_ue;
    }
    return assignment;
  }

  SubchannelAssignment AssignUplink(const std::vector<UeContext*>& ues,
                                    const std::vector<bool>& allowed_mask,
                                    int data_re_per_rb, int rbs_per_subchannel) override {
    ProportionalFairScheduler pf;
    return pf.AssignUplink(ues, allowed_mask, data_re_per_rb, rbs_per_subchannel);
  }
};

class RoundRobinScheduler final : public Scheduler {
 public:
  SubchannelAssignment AssignDownlink(const std::vector<UeContext*>& ues,
                                      const std::vector<bool>& allowed_mask) override {
    SubchannelAssignment assignment(allowed_mask.size(), -1);
    for (std::size_t u = 0; u < ues.size(); ++u) {
      const HarqState& h = ues[u]->harq_dl();
      if (h.active) {
        ClaimBest(*ues[u], h.num_subchannels, allowed_mask, assignment,
                  static_cast<int>(u));
      }
    }
    if (ues.empty()) return assignment;
    std::size_t cursor = cursor_++ % ues.size();
    for (std::size_t s = 0; s < allowed_mask.size(); ++s) {
      if (!allowed_mask[s] || assignment[s] != -1) continue;
      for (std::size_t probe = 0; probe < ues.size(); ++probe) {
        const UeContext& ue = *ues[cursor % ues.size()];
        if (!ue.harq_dl().active && ue.dl_queue_bytes() > 0 &&
            EffectiveSubbandCqi(ue, static_cast<int>(s)) >= kMinCqi) {
          assignment[s] = static_cast<int>(cursor % ues.size());
          ++cursor;
          break;
        }
        ++cursor;
      }
    }
    return assignment;
  }

  SubchannelAssignment AssignUplink(const std::vector<UeContext*>& ues,
                                    const std::vector<bool>& allowed_mask,
                                    int data_re_per_rb, int rbs_per_subchannel) override {
    // Uplink sizing is demand-driven either way; reuse the PF logic.
    ProportionalFairScheduler pf;
    return pf.AssignUplink(ues, allowed_mask, data_re_per_rb, rbs_per_subchannel);
  }

 private:
  std::size_t cursor_ = 0;
};

/// Decorator around any concrete scheduler: records the fraction of the
/// allowed subchannels each pass actually assigned into the ambient
/// MetricsRegistry (DESIGN.md §13). Pure pass-through when no registry is
/// scoped; never alters the assignment.
class ObservedScheduler final : public Scheduler {
 public:
  explicit ObservedScheduler(std::unique_ptr<Scheduler> inner)
      : inner_(std::move(inner)) {}

  SubchannelAssignment AssignDownlink(const std::vector<UeContext*>& ues,
                                      const std::vector<bool>& allowed_mask) override {
    return Observe("sched.dl_assigned_frac",
                   inner_->AssignDownlink(ues, allowed_mask), allowed_mask);
  }

  SubchannelAssignment AssignUplink(const std::vector<UeContext*>& ues,
                                    const std::vector<bool>& allowed_mask,
                                    int data_re_per_rb, int rbs_per_subchannel) override {
    return Observe("sched.ul_assigned_frac",
                   inner_->AssignUplink(ues, allowed_mask, data_re_per_rb,
                                        rbs_per_subchannel),
                   allowed_mask);
  }

 private:
  static SubchannelAssignment Observe(const char* name, SubchannelAssignment a,
                                      const std::vector<bool>& allowed_mask) {
    if (obs::MetricsRegistry* m = obs::ActiveMetrics()) {
      int assigned = 0;
      int allowed = 0;
      for (std::size_t s = 0; s < allowed_mask.size(); ++s) {
        if (!allowed_mask[s]) continue;
        ++allowed;
        if (a[s] >= 0) ++assigned;
      }
      if (allowed > 0) {
        m->Observe(m->Histogram(name, obs::FractionBounds()),
                   static_cast<double>(assigned) / static_cast<double>(allowed));
      }
    }
    return a;
  }

  std::unique_ptr<Scheduler> inner_;
};

}  // namespace

std::vector<int> RankSubchannelsByCqi(const UeContext& ue,
                                      const std::vector<bool>& allowed_mask) {
  std::vector<int> ranked;
  ranked.reserve(allowed_mask.size());
  for (std::size_t s = 0; s < allowed_mask.size(); ++s) {
    if (allowed_mask[s]) ranked.push_back(static_cast<int>(s));
  }
  std::stable_sort(ranked.begin(), ranked.end(), [&](int a, int b) {
    const int ca = ue.has_cqi() ? ue.SubbandCqi(a) : kMinCqi;
    const int cb = ue.has_cqi() ? ue.SubbandCqi(b) : kMinCqi;
    return ca > cb;
  });
  return ranked;
}

std::unique_ptr<Scheduler> MakeScheduler(SchedulerType type) {
  std::unique_ptr<Scheduler> inner;
  switch (type) {
    case SchedulerType::kRoundRobin:
      inner = std::make_unique<RoundRobinScheduler>();
      break;
    case SchedulerType::kMaxCqi:
      inner = std::make_unique<MaxCqiScheduler>();
      break;
    case SchedulerType::kProportionalFair:
    default:
      inner = std::make_unique<ProportionalFairScheduler>();
      break;
  }
  return std::make_unique<ObservedScheduler>(std::move(inner));
}

}  // namespace cellfi::lte
