#include "cellfi/lte/network.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "cellfi/chaos/invariants.h"
#include "cellfi/common/units.h"
#include "cellfi/obs/metrics.h"
#include "cellfi/obs/trace.h"
#include "cellfi/phy/cqi_mcs.h"

namespace cellfi::lte {

namespace {
/// PRACH format 0 occupies 839 subcarriers of 1.25 kHz.
constexpr double kPrachBandwidthHz = 839 * 1250.0;
}  // namespace

LteNetwork::LteNetwork(Simulator& sim, RadioEnvironment& env, LteNetworkConfig config)
    : sim_(sim), env_(env), config_(config), rng_(config.seed), imap_(env) {}

CellId LteNetwork::AddCell(const LteMacConfig& mac, RadioNodeId radio) {
  assert(!started_);
  const CellId id = static_cast<CellId>(cells_.size());
  CellRec rec;
  rec.mac = std::make_unique<EnodeB>(id, mac);
  rec.radio = radio;
  if (!cells_.empty()) {
    // GPS-synchronized frames: every cell must follow the same TDD pattern.
    assert(mac.tdd_config == cells_.front().mac->config().tdd_config);
    assert(mac.bandwidth == cells_.front().mac->config().bandwidth);
  }
  num_subchannels_ = rec.mac->grid().num_subchannels();
  subchannel_bandwidth_hz_ = rec.mac->grid().rbg_size() * kRbBandwidthHz;
  cells_.push_back(std::move(rec));
  return id;
}

UeId LteNetwork::AddUe(RadioNodeId radio, CellId force_cell) {
  const UeId id = static_cast<UeId>(ues_.size());
  UeInfo info;
  info.id = id;
  info.radio = radio;
  info.serving = kInvalidCell;  // set on successful attach
  info.forced_cell = force_cell;
  ues_.push_back(info);
  return id;
}

void LteNetwork::SetCellActive(CellId id, bool active) {
  cells_[static_cast<std::size_t>(id)].active = active;
  // The downlink map and the CRS-penalty cache both bake in the active
  // set; force a rebuild on the next query.
  dl_map_valid_ = false;
  ++activity_epoch_;
}

void LteNetwork::SetAllowedMask(CellId id, std::vector<bool> mask) {
  cells_[static_cast<std::size_t>(id)].mac->SetAllowedMask(std::move(mask));
}

void LteNetwork::SetBackgroundLoad(CellId id, double fraction) {
  cells_[static_cast<std::size_t>(id)].mac->SetBackgroundPrbDemand(fraction);
}

void LteNetwork::OfferDownlink(UeId ue_id, std::uint64_t bytes) {
  UeInfo& info = ues_[static_cast<std::size_t>(ue_id)];
  if (info.state != UeState::kConnected) return;  // flow stalls while detached
  UeContext* ctx = cell(info.serving).FindUe(ue_id);
  if (ctx != nullptr) {
    ctx->EnqueueDownlink(bytes);
    info.last_traffic = sim_.Now();
  }
}

void LteNetwork::OfferUplink(UeId ue_id, std::uint64_t bytes) {
  UeInfo& info = ues_[static_cast<std::size_t>(ue_id)];
  if (info.state != UeState::kConnected) return;
  UeContext* ctx = cell(info.serving).FindUe(ue_id);
  if (ctx != nullptr) ctx->EnqueueUplink(bytes);
}

void LteNetwork::ClearDownlinkQueue(UeId ue_id) {
  UeInfo& info = ues_[static_cast<std::size_t>(ue_id)];
  if (info.state != UeState::kConnected) return;
  UeContext* ctx = cell(info.serving).FindUe(ue_id);
  if (ctx != nullptr) ctx->DrainDownlink(ctx->dl_queue_bytes());
}

void LteNetwork::Start() {
  assert(!started_);
  started_ = true;
  // Stagger initial attaches over the first 50 ms so RACH isn't a
  // thundering herd; retries are periodic per-UE. A forced cell restricts
  // the candidate set inside PickServingCell but the attach procedure is
  // the same.
  for (const UeInfo& info : ues_) {
    const UeId id = info.id;
    sim_.ScheduleAfter(rng_.UniformInt(1, 50) * kMillisecond,
                       [this, id] { TryAttach(id); });
  }
  sim_.SchedulePeriodic(kSubframeDuration, [this] { StepSubframe(); });
  sim_.SchedulePeriodic(config_.prach_solicit_period, [this] { SolicitPrach(); });
  if (config_.enable_handover) {
    sim_.SchedulePeriodic(config_.handover_check_period, [this] { CheckHandovers(); });
  }
}

void LteNetwork::CheckHandovers() {
  // The candidate set (active cells) is the same for every UE: build it
  // once per check instead of rescanning all cells per UE.
  handover_cells_scratch_.clear();
  for (std::size_t c = 0; c < cells_.size(); ++c) {
    if (cells_[c].active) handover_cells_scratch_.push_back(static_cast<CellId>(c));
  }
  if (handover_cells_scratch_.empty()) return;
  for (UeInfo& info : ues_) {
    if (info.state != UeState::kConnected || info.forced_cell != kInvalidCell) continue;
    const CellRec& serving = cells_[static_cast<std::size_t>(info.serving)];
    const double serving_rsrp = env_.MeanRxPowerDbm(serving.radio, info.radio);
    CellId best = info.serving;
    double best_rsrp = serving_rsrp + config_.handover_hysteresis_db;
    // Detection floor: a neighbour whose cached mean rx power sits 6 dB or
    // more below the serving+hysteresis bar cannot win the dB comparison
    // (the 6 dB guard dwarfs any mW/dBm rounding), so it is skipped
    // straight off the receiver-major mW cache row. A UE with no active
    // neighbour above the floor does no dBm conversion at all.
    const double detect_floor_mw = DbmToMw(best_rsrp) * 0.25;
    for (CellId c : handover_cells_scratch_) {
      if (c == info.serving) continue;
      const CellRec& rec = cells_[static_cast<std::size_t>(c)];
      if (env_.MeanRxPowerMw(rec.radio, info.radio) < detect_floor_mw) continue;
      const double rsrp = env_.MeanRxPowerDbm(rec.radio, info.radio);
      if (rsrp > best_rsrp) {
        best_rsrp = rsrp;
        best = c;
      }
    }
    if (best != info.serving) ExecuteHandover(info.id, best);
  }
}

void LteNetwork::ExecuteHandover(UeId ue_id, CellId target) {
  UeInfo& info = ues_[static_cast<std::size_t>(ue_id)];
  EnodeB& source = cell(info.serving);
  const UeContext* old_ctx = source.FindUe(ue_id);
  if (old_ctx == nullptr) return;
  UeContext snapshot(*old_ctx);  // queues + stats forwarded over backhaul
  source.RemoveUe(ue_id);
  info.serving = target;
  info.bad_cqi_since = -1;
  ++info.handovers;
  UeContext& fresh = cell(target).AddUe(ue_id);
  fresh.ImportOnHandover(snapshot);
  if (obs::TraceSink* tr = obs::ActiveTrace()) {
    tr->Emit(sim_.Now(), "lte", "handover",
             {{"ue", ue_id}, {"from", source.id()}, {"to", target}});
  }
  // The RACH toward the new cell is what neighbours overhear.
  EmitPrach(ue_id, target);
}

CellId LteNetwork::PickServingCell(UeId ue_id) const {
  const UeInfo& info = ues_[static_cast<std::size_t>(ue_id)];
  CellId best = kInvalidCell;
  double best_snr = CqiTable(kMinCqi).sinr_threshold_db;  // must support CQI 1
  for (std::size_t c = 0; c < cells_.size(); ++c) {
    if (!cells_[c].active) continue;
    if (info.forced_cell != kInvalidCell && static_cast<CellId>(c) != info.forced_cell) {
      continue;
    }
    const double snr = env_.MeanSnrDb(cells_[c].radio, info.radio,
                                      OccupiedBandwidthHz(cells_[c].mac->config().bandwidth));
    if (snr > best_snr) {
      best_snr = snr;
      best = static_cast<CellId>(c);
    }
  }
  return best;
}

void LteNetwork::TryAttach(UeId ue_id) {
  UeInfo& info = ues_[static_cast<std::size_t>(ue_id)];
  if (info.state == UeState::kConnected) return;
  const CellId target = PickServingCell(ue_id);
  if (target == kInvalidCell) {
    info.state = UeState::kIdle;
    sim_.ScheduleAfter(config_.attach_retry_period, [this, ue_id] { TryAttach(ue_id); });
    return;
  }
  info.state = UeState::kAttaching;
  info.serving = target;
  EmitPrach(ue_id, target);
  sim_.ScheduleAfter(config_.attach_delay, [this, ue_id] {
    UeInfo& u = ues_[static_cast<std::size_t>(ue_id)];
    if (u.state != UeState::kAttaching) return;
    u.state = UeState::kConnected;
    u.bad_cqi_since = -1;
    cell(u.serving).AddUe(ue_id);
  });
}

void LteNetwork::Detach(UeId ue_id, bool count_disconnection) {
  UeInfo& info = ues_[static_cast<std::size_t>(ue_id)];
  if (info.state == UeState::kConnected && info.serving != kInvalidCell) {
    cell(info.serving).RemoveUe(ue_id);
  }
  info.state = UeState::kRadioLinkFailure;
  info.serving = kInvalidCell;
  info.bad_cqi_since = -1;
  if (count_disconnection) ++info.disconnections;
  sim_.ScheduleAfter(config_.rlf.reattach_delay, [this, ue_id] { TryAttach(ue_id); });
}

void LteNetwork::EmitPrach(UeId ue_id, CellId serving) {
  if (!on_prach) return;
  const UeInfo& info = ues_[static_cast<std::size_t>(ue_id)];
  const CellRec& srv = cells_[static_cast<std::size_t>(serving)];
  // Open-loop power control: transmit power set so the serving cell
  // receives prach_target_rx_dbm (capped at the client PA limit). Without
  // power control the preamble goes out at full client power.
  const double gain_to_serving = env_.LinkGainDb(info.radio, srv.radio);
  const double tx_dbm =
      config_.prach_power_control
          ? std::min(config_.prach_target_rx_dbm - gain_to_serving,
                     env_.node(info.radio).tx_power_dbm)
          : env_.node(info.radio).tx_power_dbm;
  for (std::size_t c = 0; c < cells_.size(); ++c) {
    if (!cells_[c].active) continue;
    const double rx_dbm = tx_dbm + env_.LinkGainDb(info.radio, cells_[c].radio);
    const double snr =
        rx_dbm - NoisePowerDbm(kPrachBandwidthHz, env_.node(cells_[c].radio).noise_figure_db);
    if (snr < config_.prach_detect_snr_db) continue;
    on_prach(PrachObservation{.observer = static_cast<CellId>(c),
                              .serving = serving,
                              .ue = ue_id,
                              .snr_db = snr});
  }
}

void LteNetwork::SolicitPrach() {
  // PDCCH-order RACH: every connected UE with recent traffic replays a
  // preamble so neighbour cells can refresh their contender estimates.
  // Idle clients are not solicited, so estimates expire within a second
  // and the spectrum shares track the instantaneous load.
  for (UeInfo& info : ues_) {
    if (info.state != UeState::kConnected) continue;
    bool active = sim_.Now() - info.last_traffic <= kSecond;
    if (!active) {
      UeContext* ctx = cell(info.serving).FindUe(info.id);
      active = ctx != nullptr && ctx->dl_queue_bytes() > 0;
    }
    if (active) EmitPrach(info.id, info.serving);
  }
}

void LteNetwork::CollectDownlinkInterferers(CellId except, int subchannel,
                                            std::vector<ActiveTransmitter>& out) const {
  out.clear();
  const double psd_share = 1.0 / static_cast<double>(num_subchannels_);
  for (std::size_t c = 0; c < cells_.size(); ++c) {
    if (static_cast<CellId>(c) == except || !cells_[c].active) continue;
    const CellRec& rec = cells_[c];
    if (rec.plan_is_data &&
        rec.current_plan.data_active[static_cast<std::size_t>(subchannel)]) {
      out.push_back(ActiveTransmitter{.node = rec.radio, .power_scale = psd_share});
    }
    // Cells idle on this subchannel still radiate CRS, handled as a coding
    // penalty by IdleCrsPenaltyDb (puncturing, not wideband noise).
  }
}

double LteNetwork::ComputeIdleCrsPenaltyDb(CellId serving, RadioNodeId rx) const {
  const CellRec& srv = cells_[static_cast<std::size_t>(serving)];
  const double signal_mw = env_.MeanRxPowerMw(srv.radio, rx);
  if (signal_mw <= 0.0) return 0.0;
  double penalty = 0.0;
  for (std::size_t c = 0; c < cells_.size(); ++c) {
    if (static_cast<CellId>(c) == serving || !cells_[c].active) continue;
    const double ratio = env_.MeanRxPowerMw(cells_[c].radio, rx) / signal_mw;
    penalty += std::min(1.0, ratio);  // ~1 dB per comparable-power idle cell
  }
  return std::min(penalty, 2.0);
}

double LteNetwork::IdleCrsPenaltyDb(CellId serving, RadioNodeId rx) const {
  if (!config_.use_interference_engine) return ComputeIdleCrsPenaltyDb(serving, rx);
  // Depends only on the active cell set and the mean link powers — not on
  // plans — so one entry per receiver radio survives whole stretches of
  // subframes until a SetCellActive or MoveNode bumps an epoch.
  if (crs_cache_.size() < env_.node_count()) crs_cache_.resize(env_.node_count());
  CrsCacheEntry& e = crs_cache_[rx];
  if (e.serving != serving || e.activity_epoch != activity_epoch_ ||
      e.position_epoch != env_.position_epoch()) {
    e.serving = serving;
    e.activity_epoch = activity_epoch_;
    e.position_epoch = env_.position_epoch();
    e.penalty_db = ComputeIdleCrsPenaltyDb(serving, rx);
  }
  return e.penalty_db;
}

void LteNetwork::BuildDownlinkMap() const {
  // Same iteration order as CollectDownlinkInterferers (cell index order)
  // so the engine's aggregates add terms in the legacy sequence. The
  // serving cell is included here and excluded per query by node identity,
  // which matches the legacy index-based `except` skip exactly.
  imap_.BeginEpoch(num_subchannels_, subchannel_bandwidth_hz_);
  const double psd_share = 1.0 / static_cast<double>(num_subchannels_);
  for (const CellRec& rec : cells_) {
    if (!rec.active || !rec.plan_is_data) continue;
    for (int s = 0; s < num_subchannels_; ++s) {
      if (rec.current_plan.data_active[static_cast<std::size_t>(s)]) {
        imap_.AddTransmitter(s, rec.radio, psd_share);
      }
    }
  }
  // The map is only ever built here, with every append above: sealing at
  // this (serial) point guarantees concurrent shard queries never mutate
  // the shared group/row storage lazily.
  imap_.Seal();
  dl_map_valid_ = true;
}

void LteNetwork::EnsureShardState() {
  if (shard_grid_ != nullptr && plan_pending_.size() == cells_.size()) {
    if (crs_cache_.size() < env_.node_count()) crs_cache_.resize(env_.node_count());
    return;
  }
  std::vector<Point> positions;
  positions.reserve(cells_.size());
  for (const CellRec& rec : cells_) {
    positions.push_back(env_.node(rec.radio).position);
  }
  shard_grid_ = std::make_unique<ShardGrid>(positions, config_.shards);
  const int k = shard_grid_->num_shards();
  shard_threads_ = ResolveShardThreads(config_.shard_threads, k);
  shard_pool_.reset();
  if (shard_threads_ > 1) shard_pool_ = std::make_unique<WorkerPool>(shard_threads_);
  shard_scratch_.assign(static_cast<std::size_t>(k), {});
  plan_pending_.assign(cells_.size(), 0);
  staged_tb_sinr_.assign(cells_.size(), {});
  // Per-receiver caches grow lazily on the serial paths; presize them here
  // so no worker thread ever sees a resize.
  if (crs_cache_.size() < env_.node_count()) crs_cache_.resize(env_.node_count());
  if (config_.use_interference_engine &&
      env_.config().interference_floor_db > 0.0) {
    neighbor_graph_.Build(env_, env_.config().interference_floor_db,
                          subchannel_bandwidth_hz_);
    imap_.SetNeighborGraph(&neighbor_graph_);
  }
  if (k > 1) {
    if (obs::TraceSink* tr = obs::ActiveTrace()) {
      std::vector<RadioNodeId> cell_radios;
      cell_radios.reserve(cells_.size());
      for (const CellRec& rec : cells_) cell_radios.push_back(rec.radio);
      const int cross =
          neighbor_graph_.built()
              ? static_cast<int>(
                    CountCrossShardEdges(neighbor_graph_, *shard_grid_, cell_radios))
              : -1;  // cull off: every pair couples, the count is vacuous
      tr->Emit(sim_.Now(), "lte", "shard_setup",
               {{"shards", k}, {"cross_edges", cross}});
    }
  }
}

void LteNetwork::RefreshNeighborGraph() {
  if (!neighbor_graph_.built()) return;
  if (neighbor_graph_.build_position_epoch() == env_.position_epoch()) return;
  neighbor_graph_.Build(env_, env_.config().interference_floor_db,
                        subchannel_bandwidth_hz_);
}

void LteNetwork::ForEachShard(const std::function<void(int)>& task) {
  const int k = shard_grid_->num_shards();
  if (shard_pool_ != nullptr && k > 1) {
    shard_pool_->RunIndexed(static_cast<std::size_t>(k),
                            [&task](std::size_t s) { task(static_cast<int>(s)); });
  } else {
    for (int s = 0; s < k; ++s) task(s);
  }
}

void LteNetwork::EmitShardMetrics() {
  if (shard_grid_ == nullptr || shard_grid_->num_shards() <= 1) return;
  obs::MetricsRegistry* m = obs::ActiveMetrics();
  if (m == nullptr) return;
  m->Add(m->Counter("lte.shard.barriers"));
  // Imbalance from the staged work-item counts (transmissions resolved per
  // shard this subframe): a pure function of the committed plans, so the
  // histogram is identical for every thread count and never reads a clock.
  std::size_t max_items = 0;
  std::size_t min_items = std::numeric_limits<std::size_t>::max();
  for (int s = 0; s < shard_grid_->num_shards(); ++s) {
    std::size_t items = 0;
    for (int c : shard_grid_->cells(s)) {
      items += staged_tb_sinr_[static_cast<std::size_t>(c)].size();
    }
    max_items = std::max(max_items, items);
    min_items = std::min(min_items, items);
  }
  if (max_items > 0) {
    m->Observe(m->Histogram("lte.shard.imbalance", obs::FractionBounds()),
               static_cast<double>(max_items - min_items) /
                   static_cast<double>(max_items));
  }
}

void LteNetwork::EnsureDownlinkMap() const {
  if (!dl_map_valid_) BuildDownlinkMap();
}

void LteNetwork::MeasureDownlinkSinrInto(
    UeId ue_id, std::vector<double>& out,
    std::vector<ActiveTransmitter>* scratch) const {
  const UeInfo& info = ues_[static_cast<std::size_t>(ue_id)];
  out.assign(static_cast<std::size_t>(num_subchannels_), -40.0);
  if (info.serving == kInvalidCell) return;
  const CellRec& serving = cells_[static_cast<std::size_t>(info.serving)];
  if (!serving.active) return;
  const double signal_scale = 1.0 / static_cast<double>(num_subchannels_);
  const double crs_penalty = IdleCrsPenaltyDb(info.serving, info.radio);
  if (config_.use_interference_engine) {
    EnsureDownlinkMap();
    for (int s = 0; s < num_subchannels_; ++s) {
      out[static_cast<std::size_t>(s)] =
          imap_.SinrDb(serving.radio, info.radio, s, sim_.Now(), signal_scale,
                       scratch) -
          crs_penalty;
    }
    return;
  }
  std::vector<ActiveTransmitter> interferers;
  for (int s = 0; s < num_subchannels_; ++s) {
    CollectDownlinkInterferers(info.serving, s, interferers);
    out[static_cast<std::size_t>(s)] =
        env_.SinrDb(serving.radio, info.radio, static_cast<std::uint32_t>(s), sim_.Now(),
                    interferers, subchannel_bandwidth_hz_, signal_scale) -
        crs_penalty;
  }
}

std::vector<double> LteNetwork::MeasureDownlinkSinr(UeId ue_id) const {
  std::vector<double> sinr;
  MeasureDownlinkSinrInto(ue_id, sinr, nullptr);
  return sinr;
}

double LteNetwork::ServingSnrDb(UeId ue_id) const {
  const UeInfo& info = ues_[static_cast<std::size_t>(ue_id)];
  if (info.serving == kInvalidCell) return -99.0;
  const CellRec& serving = cells_[static_cast<std::size_t>(info.serving)];
  return env_.MeanSnrDb(serving.radio, info.radio,
                        OccupiedBandwidthHz(serving.mac->config().bandwidth));
}

bool LteNetwork::CellsWithinDistance(CellId a, CellId b, double distance_m) const {
  const Point pa = env_.node(cells_[static_cast<std::size_t>(a)].radio).position;
  const Point pb = env_.node(cells_[static_cast<std::size_t>(b)].radio).position;
  return Distance(pa, pb) <= distance_m;
}

std::uint64_t LteNetwork::total_dl_bits() const {
  std::uint64_t total = 0;
  for (const CellRec& rec : cells_) total += rec.mac->total_dl_bits();
  return total;
}

void LteNetwork::StepSubframe() {
  if (cells_.empty()) return;
  const SubframeType type = cells_.front().mac->tdd().TypeAt(sim_.Now());

  for (UeInfo& info : ues_) {
    if (info.state == UeState::kConnected) info.connected_time += kSubframeDuration;
  }

  switch (type) {
    case SubframeType::kDownlink:
      RunDownlinkSubframe();
      break;
    case SubframeType::kUplink:
      RunUplinkSubframe();
      break;
    case SubframeType::kSpecial:
      break;  // guard/pilot subframe: no data in this model
  }

  // Subframe barrier: every committed plan has been resolved, so this is
  // the consistent instant to evaluate time-based invariants.
  if (chaos::InvariantChecker* ic = chaos::ActiveChecker()) {
    ic->AtBarrier(sim_.Now());
  }
}

bool LteNetwork::LbtMayTransmit(CellRec& rec) {
  // Mid-burst: keep going until the channel-occupancy budget runs out.
  if (rec.lbt_burst_remaining > 0) {
    --rec.lbt_burst_remaining;
    if (rec.lbt_burst_remaining == 0) rec.lbt_backoff = -1;  // fresh draw next time
    return true;
  }

  // Clear-channel assessment against the PREVIOUS subframe's transmitters
  // (carrier sense is inherently one decision epoch stale).
  const LbtConfig& lbt = rec.mac->config().lbt;
  double energy_mw = 0.0;
  for (const CellRec& other : cells_) {
    if (&other == &rec || !other.active || !other.transmitted_last_subframe) continue;
    energy_mw += env_.MeanRxPowerMw(other.radio, rec.radio);
  }
  const bool busy = energy_mw > DbmToMw(lbt.ed_threshold_dbm);

  if (busy) {
    // Freeze the backoff counter while the medium is occupied; a fresh
    // draw happens only once the medium clears.
    ++rec.lbt_deferrals;
    return false;
  }
  if (rec.lbt_backoff < 0) {
    // Every burst (and every arrival after an idle period) pays a full
    // random backoff, which is what gives contenders their turns.
    rec.lbt_backoff = static_cast<int>(rng_.UniformInt(0, rec.lbt_cw));
  }
  if (rec.lbt_backoff > 0) {
    --rec.lbt_backoff;  // count down idle subframes
    return false;
  }
  rec.lbt_backoff = -1;
  rec.lbt_burst_remaining = lbt.max_burst_subframes - 1;
  return true;
}

void LteNetwork::RunDownlinkSubframe() {
  EnsureShardState();
  RefreshNeighborGraph();

  // Phase 1a (serial): reset every cell and run the access gate. LBT draws
  // from the shared Rng, so the gate stays serial in cell-index order —
  // the exact legacy draw sequence for any shard count.
  for (CellRec& rec : cells_) {
    rec.current_plan = TxPlan{};
    rec.current_plan.data_active.assign(static_cast<std::size_t>(num_subchannels_), false);
    rec.plan_is_data = false;
  }
  std::fill(plan_pending_.begin(), plan_pending_.end(), 0);
  for (std::size_t c = 0; c < cells_.size(); ++c) {
    CellRec& rec = cells_[c];
    if (!rec.active || !rec.mac->has_load()) continue;
    if (rec.mac->config().access_mode == AccessMode::kListenBeforeTalk) {
      // Background demand keeps the cell contending even with every real
      // queue empty (the aggregate tier always has data to move).
      bool has_data = rec.mac->background_prb_demand() > 0.0;
      for (const auto& ue : rec.mac->ues()) {
        has_data |= ue->dl_queue_bytes() > 0 || ue->harq_dl().active;
      }
      if (!has_data) {
        rec.lbt_burst_remaining = 0;
        continue;
      }
      if (!LbtMayTransmit(rec)) continue;
    }
    plan_pending_[c] = 1;
  }

  // Phase 1b (parallel): every gated cell commits to a plan. PlanDownlink
  // is RNG-free and touches only the cell's own scheduler/UE state, so
  // shards are independent and the partition cannot affect values.
  ForEachShard([this](int s) {
    for (int c : shard_grid_->cells(s)) {
      if (!plan_pending_[static_cast<std::size_t>(c)]) continue;
      CellRec& rec = cells_[static_cast<std::size_t>(c)];
      rec.current_plan = rec.mac->PlanDownlink();
      rec.plan_is_data = true;
    }
  });
  if (chaos::InvariantChecker* ic = chaos::ActiveChecker()) {
    // Committed plans are the ground truth of what goes on air this
    // subframe: check grant counts against grid capacity and data
    // subchannels against the interference-management mask (a masked
    // subchannel is one this cell holds no right to transmit on).
    for (std::size_t c = 0; c < cells_.size(); ++c) {
      const CellRec& rec = cells_[c];
      if (!rec.plan_is_data) continue;
      const std::vector<bool>& mask = rec.mac->allowed_mask();
      int granted = 0;
      bool mask_ok = true;
      for (std::size_t s = 0; s < rec.current_plan.data_active.size(); ++s) {
        if (!rec.current_plan.data_active[s]) continue;
        ++granted;
        if (!mask.empty() && !mask[s]) mask_ok = false;
      }
      ic->CheckPrbGrant(static_cast<int>(c), granted, num_subchannels_, sim_.Now());
      ic->CheckLeasedTransmit(static_cast<int>(c), mask_ok, sim_.Now());
    }
  }
  if (obs::MetricsRegistry* m = obs::ActiveMetrics()) {
    // Fraction of the allowed subchannels each transmitting cell actually
    // scheduled this subframe.
    const auto id = m->Histogram("lte.prb_utilization", obs::FractionBounds());
    for (const CellRec& rec : cells_) {
      if (!rec.plan_is_data) continue;
      int active = 0;
      int allowed = 0;
      for (std::size_t s = 0; s < rec.current_plan.data_active.size(); ++s) {
        if (rec.mac->allowed_mask().empty() || rec.mac->allowed_mask()[s]) ++allowed;
        if (rec.current_plan.data_active[s]) ++active;
      }
      if (allowed > 0) {
        m->Observe(id, static_cast<double>(active) / static_cast<double>(allowed));
      }
    }
  }

  // Phase 2: resolve each transport block. With the engine on, every
  // receiver shares the per-subchannel transmitter lists built once at the
  // (serial) barrier below; the SINR of a committed plan is a pure function
  // of those lists, so shards evaluate their own cells' transmissions
  // concurrently and stage the values. Everything that mutates shared
  // state — HARQ completion (which draws from the shared Rng), ACK
  // coupling, callbacks, metrics — commits serially afterwards in global
  // cell-index order: the staged values are merged in a fixed order, never
  // in shard completion order, which is what makes results bit-identical
  // for any shard count (including 1, and including the pre-shard fused
  // loop this replaces).
  const double signal_scale = 1.0 / static_cast<double>(num_subchannels_);
  if (config_.use_interference_engine) {
    BuildDownlinkMap();  // appends in cell-index order, then seals

    // Parallel stage: receiver ownership keeps it race-free. Every mutable
    // cache row (engine receiver rows, rx-power rows, noise memo, CRS
    // penalty cache) is indexed by receiver, and each UE is only queried
    // by the shard owning its serving cell.
    ForEachShard([this, signal_scale](int s) {
      std::vector<ActiveTransmitter>* scratch =
          &shard_scratch_[static_cast<std::size_t>(s)];
      for (int c : shard_grid_->cells(s)) {
        CellRec& rec = cells_[static_cast<std::size_t>(c)];
        std::vector<double>& staged = staged_tb_sinr_[static_cast<std::size_t>(c)];
        staged.clear();
        if (!rec.plan_is_data) continue;
        staged.reserve(rec.current_plan.transmissions.size());
        for (const Transmission& tx : rec.current_plan.transmissions) {
          const UeInfo& info = ues_[static_cast<std::size_t>(tx.ue)];
          const double crs_penalty =
              IdleCrsPenaltyDb(static_cast<CellId>(c), info.radio);
          double sinr_linear_sum = 0.0;
          for (int sub : tx.subchannels) {
            sinr_linear_sum += DbToLinear(imap_.SinrDb(
                rec.radio, info.radio, sub, sim_.Now(), signal_scale, scratch));
          }
          staged.push_back(
              LinearToDb(sinr_linear_sum /
                         static_cast<double>(tx.subchannels.size())) -
              crs_penalty);
        }
      }
    });

    // Serial commit, global cell-index order.
    for (std::size_t c = 0; c < cells_.size(); ++c) {
      CellRec& rec = cells_[c];
      if (!rec.plan_is_data) continue;
      std::vector<double> served_bits(rec.mac->ues().size(), 0.0);
      for (std::size_t i = 0; i < rec.current_plan.transmissions.size(); ++i) {
        const Transmission& tx = rec.current_plan.transmissions[i];
        const UeInfo& info = ues_[static_cast<std::size_t>(tx.ue)];
        const double tb_sinr_db = staged_tb_sinr_[c][i];
        const DeliveryResult result = rec.mac->CompleteDownlink(tx, tb_sinr_db, rng_);
        if (result.delivered) {
          if (tx.ue_index >= 0 && tx.ue_index < static_cast<int>(served_bits.size())) {
            served_bits[static_cast<std::size_t>(tx.ue_index)] +=
                8.0 * static_cast<double>(result.payload_bytes);
          }
          // TCP ACK clocking: delivered downlink generates uplink demand.
          UeContext* ctx = rec.mac->FindUe(tx.ue);
          if (ctx != nullptr) {
            ctx->EnqueueUplink(static_cast<std::uint64_t>(
                static_cast<double>(result.payload_bytes) * info.ul_ack_ratio));
          }
          if (on_dl_delivered) on_dl_delivered(tx.ue, result.payload_bytes, sim_.Now());
          if (obs::MetricsRegistry* mr = obs::ActiveMetrics()) {
            mr->Add(mr->Counter("lte.dl_delivered_bytes"), result.payload_bytes);
          }
        } else if (obs::MetricsRegistry* mr = obs::ActiveMetrics()) {
          mr->Add(mr->Counter("lte.dl_harq_failures"));
        }
      }
      rec.mac->UpdatePfAverages(served_bits);
    }
    EmitShardMetrics();
  } else {
    // Legacy per-link path: single-threaded fused loop, kept verbatim for
    // the regression tests and the bench_scale comparison.
    std::vector<ActiveTransmitter> interferers;
    for (std::size_t c = 0; c < cells_.size(); ++c) {
      CellRec& rec = cells_[c];
      if (!rec.plan_is_data) continue;
      std::vector<double> served_bits(rec.mac->ues().size(), 0.0);
      for (const Transmission& tx : rec.current_plan.transmissions) {
        const UeInfo& info = ues_[static_cast<std::size_t>(tx.ue)];
        const double crs_penalty = IdleCrsPenaltyDb(static_cast<CellId>(c), info.radio);
        double sinr_linear_sum = 0.0;
        for (int s : tx.subchannels) {
          CollectDownlinkInterferers(static_cast<CellId>(c), s, interferers);
          const double sinr_db =
              env_.SinrDb(rec.radio, info.radio, static_cast<std::uint32_t>(s), sim_.Now(),
                          interferers, subchannel_bandwidth_hz_, signal_scale);
          sinr_linear_sum += DbToLinear(sinr_db);
        }
        const double tb_sinr_db =
            LinearToDb(sinr_linear_sum / static_cast<double>(tx.subchannels.size())) -
            crs_penalty;
        const DeliveryResult result = rec.mac->CompleteDownlink(tx, tb_sinr_db, rng_);
        if (result.delivered) {
          if (tx.ue_index >= 0 && tx.ue_index < static_cast<int>(served_bits.size())) {
            served_bits[static_cast<std::size_t>(tx.ue_index)] +=
                8.0 * static_cast<double>(result.payload_bytes);
          }
          // TCP ACK clocking: delivered downlink generates uplink demand.
          UeContext* ctx = rec.mac->FindUe(tx.ue);
          if (ctx != nullptr) {
            ctx->EnqueueUplink(static_cast<std::uint64_t>(
                static_cast<double>(result.payload_bytes) * info.ul_ack_ratio));
          }
          if (on_dl_delivered) on_dl_delivered(tx.ue, result.payload_bytes, sim_.Now());
          if (obs::MetricsRegistry* mr = obs::ActiveMetrics()) {
            mr->Add(mr->Counter("lte.dl_delivered_bytes"), result.payload_bytes);
          }
        } else if (obs::MetricsRegistry* mr = obs::ActiveMetrics()) {
          mr->Add(mr->Counter("lte.dl_harq_failures"));
        }
      }
      rec.mac->UpdatePfAverages(served_bits);
    }
  }

  // Update LBT carrier-sense state for the next subframe.
  for (CellRec& rec : cells_) {
    bool any_data = false;
    if (rec.plan_is_data) {
      for (bool b : rec.current_plan.data_active) any_data |= b;
    }
    rec.transmitted_last_subframe = any_data;
  }

  // Phase 3: CQI reporting on this subframe's realized interference.
  const auto period_subframes =
      std::max<SimTime>(1, cells_.front().mac->config().cqi_report_period / kSubframeDuration);
  if ((sim_.Now() / kSubframeDuration) % period_subframes == 0) GenerateCqiReports();
}

void LteNetwork::RunUplinkSubframe() {
  const bool engine = config_.use_interference_engine;
  if (engine) {
    EnsureShardState();
    RefreshNeighborGraph();

    // Phase 1a (serial): reset. Phase 1b (parallel): plans — PlanUplink is
    // RNG-free and per-cell, so shards are independent.
    for (CellRec& rec : cells_) {
      rec.current_plan = TxPlan{};
      rec.current_plan.data_active.assign(static_cast<std::size_t>(num_subchannels_),
                                          false);
      rec.plan_is_data = false;
    }
    ForEachShard([this](int s) {
      for (int c : shard_grid_->cells(s)) {
        CellRec& rec = cells_[static_cast<std::size_t>(c)];
        if (!rec.active || !rec.mac->has_ues()) continue;
        rec.current_plan = rec.mac->PlanUplink();
      }
    });

    // Phase 1c (serial): the barrier exchange. Merge every shard's
    // transmitter appends into the engine in global cell-index order —
    // cells -> transmissions -> subchannels, the exact legacy insertion
    // sequence, never shard completion order — then seal before the first
    // concurrent query. The transmitting UE is excluded per query by radio
    // node, equivalent to the legacy `act.ue == tx.ue` skip (one radio per
    // UE).
    imap_.BeginEpoch(num_subchannels_, subchannel_bandwidth_hz_);
    for (const CellRec& rec : cells_) {
      for (const Transmission& tx : rec.current_plan.transmissions) {
        const UeInfo& info = ues_[static_cast<std::size_t>(tx.ue)];
        const double ul_scale = 1.0 / static_cast<double>(tx.subchannels.size());
        for (int s : tx.subchannels) imap_.AddTransmitter(s, info.radio, ul_scale);
      }
    }
    imap_.Seal();

    // Phase 2 (parallel): stage each transmission's tb SINR. The receiver
    // of uplink is the cell's own radio, owned by its shard.
    ForEachShard([this](int s) {
      std::vector<ActiveTransmitter>* scratch =
          &shard_scratch_[static_cast<std::size_t>(s)];
      for (int c : shard_grid_->cells(s)) {
        CellRec& rec = cells_[static_cast<std::size_t>(c)];
        std::vector<double>& staged = staged_tb_sinr_[static_cast<std::size_t>(c)];
        staged.clear();
        if (!rec.active) continue;
        staged.reserve(rec.current_plan.transmissions.size());
        for (const Transmission& tx : rec.current_plan.transmissions) {
          const UeInfo& info = ues_[static_cast<std::size_t>(tx.ue)];
          const double signal_scale = 1.0 / static_cast<double>(tx.subchannels.size());
          double sinr_linear_sum = 0.0;
          for (int sub : tx.subchannels) {
            sinr_linear_sum += DbToLinear(imap_.SinrDb(
                info.radio, rec.radio, sub, sim_.Now(), signal_scale, scratch));
          }
          staged.push_back(LinearToDb(
              sinr_linear_sum / static_cast<double>(tx.subchannels.size())));
        }
      }
    });

    // Phase 2c (serial): commit in global cell-index order (HARQ draws
    // from the shared Rng).
    for (std::size_t c = 0; c < cells_.size(); ++c) {
      CellRec& rec = cells_[c];
      if (!rec.active) continue;
      for (std::size_t i = 0; i < rec.current_plan.transmissions.size(); ++i) {
        rec.mac->CompleteUplink(rec.current_plan.transmissions[i],
                                staged_tb_sinr_[c][i], rng_);
      }
    }
    EmitShardMetrics();

    // The engine now holds uplink lists and the cells' plans were
    // overwritten with UL grants: any later MeasureDownlinkSinr must
    // rebuild.
    dl_map_valid_ = false;
    return;
  }

  // Legacy per-link path (single-threaded, kept verbatim).
  // Phase 1: plans + per-cell allocation width per UE (for power scaling).
  struct UlActivity {
    UeId ue;
    RadioNodeId radio;
    int alloc_count;
  };
  std::vector<std::vector<UlActivity>> active_per_subchannel(
      static_cast<std::size_t>(num_subchannels_));

  for (CellRec& rec : cells_) {
    rec.current_plan = TxPlan{};
    rec.current_plan.data_active.assign(static_cast<std::size_t>(num_subchannels_), false);
    rec.plan_is_data = false;
    if (!rec.active || !rec.mac->has_ues()) continue;
    rec.current_plan = rec.mac->PlanUplink();
    for (const Transmission& tx : rec.current_plan.transmissions) {
      const UeInfo& info = ues_[static_cast<std::size_t>(tx.ue)];
      for (int s : tx.subchannels) {
        active_per_subchannel[static_cast<std::size_t>(s)].push_back(
            UlActivity{tx.ue, info.radio, static_cast<int>(tx.subchannels.size())});
      }
    }
  }

  // Phase 2: resolve. Signal: UE concentrates its full power in its grant.
  std::vector<ActiveTransmitter> interferers;
  for (CellRec& rec : cells_) {
    if (!rec.active) continue;
    for (const Transmission& tx : rec.current_plan.transmissions) {
      const UeInfo& info = ues_[static_cast<std::size_t>(tx.ue)];
      const double signal_scale = 1.0 / static_cast<double>(tx.subchannels.size());
      double sinr_linear_sum = 0.0;
      for (int s : tx.subchannels) {
        interferers.clear();
        for (const UlActivity& act : active_per_subchannel[static_cast<std::size_t>(s)]) {
          if (act.ue == tx.ue) continue;
          interferers.push_back(ActiveTransmitter{
              .node = act.radio,
              .power_scale = 1.0 / static_cast<double>(act.alloc_count)});
        }
        const double sinr_db =
            env_.SinrDb(info.radio, rec.radio, static_cast<std::uint32_t>(s), sim_.Now(),
                        interferers, subchannel_bandwidth_hz_, signal_scale);
        sinr_linear_sum += DbToLinear(sinr_db);
      }
      const double tb_sinr_db =
          LinearToDb(sinr_linear_sum / static_cast<double>(tx.subchannels.size()));
      rec.mac->CompleteUplink(tx, tb_sinr_db, rng_);
    }
  }

  dl_map_valid_ = false;
}

void LteNetwork::GenerateCqiReports() {
  const bool staged = config_.use_interference_engine;
  if (staged) {
    // Parallel stage: the expensive per-subchannel measurement, computed by
    // the shard owning each UE's serving cell (receiver ownership again —
    // only that shard touches the UE's cache rows). The serial apply below
    // then walks UEs in id order, so CQI updates, callbacks and RLF
    // detach scheduling happen in the exact legacy sequence.
    EnsureShardState();
    EnsureDownlinkMap();  // serial build + seal before concurrent queries
    if (cqi_pending_.size() != ues_.size()) cqi_pending_.assign(ues_.size(), 0);
    if (staged_cqi_sinr_.size() != ues_.size()) staged_cqi_sinr_.resize(ues_.size());
    for (const UeInfo& info : ues_) {
      cqi_pending_[static_cast<std::size_t>(info.id)] =
          info.state == UeState::kConnected &&
          cell(info.serving).FindUe(info.id) != nullptr;
    }
    ForEachShard([this](int s) {
      std::vector<ActiveTransmitter>* scratch =
          &shard_scratch_[static_cast<std::size_t>(s)];
      for (const UeInfo& info : ues_) {
        if (!cqi_pending_[static_cast<std::size_t>(info.id)]) continue;
        if (shard_grid_->shard_of(info.serving) != s) continue;
        MeasureDownlinkSinrInto(
            info.id, staged_cqi_sinr_[static_cast<std::size_t>(info.id)], scratch);
      }
    });
    EmitShardMetrics();
  }

  for (UeInfo& info : ues_) {
    if (info.state != UeState::kConnected) continue;
    UeContext* ctx = cell(info.serving).FindUe(info.id);
    if (ctx == nullptr) continue;

    const double margin = cell(info.serving).config().link_adaptation_margin_db;
    std::vector<double> sinr_local;
    if (!staged) sinr_local = MeasureDownlinkSinr(info.id);
    const std::vector<double>& sinr =
        staged ? staged_cqi_sinr_[static_cast<std::size_t>(info.id)] : sinr_local;
    CqiMeasurement m;
    m.subband_cqi.reserve(sinr.size());
    double wideband_linear = 0.0;
    for (double s : sinr) {
      m.subband_cqi.push_back(SinrToCqi(s + margin));
      wideband_linear += DbToLinear(s);
    }
    wideband_linear /= static_cast<double>(sinr.size());
    m.wideband_cqi = SinrToCqi(LinearToDb(wideband_linear) + margin);
    if (obs::MetricsRegistry* mr = obs::ActiveMetrics()) {
      mr->Observe(mr->Histogram("lte.wideband_sinr_db", obs::SinrDbBounds()),
                  LinearToDb(wideband_linear));
    }

    CqiMeasurement decoded = m;
    if (cell(info.serving).config().use_mode30_wire_format) {
      // Literal wire format: the 2-bit differential clamp applies.
      decoded = DecodeMode30(EncodeMode30(m));
    }
    ctx->UpdateCqi(decoded.wideband_cqi, decoded.subband_cqi);
    if (on_cqi_report) on_cqi_report(info.serving, info.id, decoded);

    // Radio-link failure: sustained out-of-range CQI.
    if (m.wideband_cqi == 0) {
      if (info.bad_cqi_since < 0) info.bad_cqi_since = sim_.Now();
      if (sim_.Now() - info.bad_cqi_since >= config_.rlf.rlf_window) {
        Detach(info.id, /*count_disconnection=*/true);
      }
    } else {
      info.bad_cqi_since = -1;
    }
  }
}

}  // namespace cellfi::lte
