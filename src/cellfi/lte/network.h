// LteNetwork: binds cells, UEs, the radio environment and the subframe
// clock into a running system simulation.
//
// Every 1 ms subframe the network
//   1. asks each cell for its transmission plan (DL or UL per the
//      GPS-synchronized TDD pattern),
//   2. resolves each transport block against the realized SINR — with all
//      concurrently transmitting cells/UEs as interferers, idle cells still
//      contributing their control/reference-symbol power (Fig. 7's
//      "signalling interference"),
//   3. generates sub-band CQI reports from what UEs actually measured, and
//   4. emits PRACH observations to every cell that can hear an attaching or
//      solicited client (CellFi's contender-counting input).
//
// CellFi's interference manager attaches via the observer callbacks and
// `SetAllowedMask`; plain LTE simply never restricts the mask.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "cellfi/lte/enodeb.h"
#include "cellfi/lte/types.h"
#include "cellfi/phy/cqi_report.h"
#include "cellfi/radio/environment.h"
#include "cellfi/radio/interference.h"
#include "cellfi/radio/shard_grid.h"
#include "cellfi/sim/event_queue.h"
#include "cellfi/sim/worker_pool.h"

namespace cellfi::lte {

/// Network-level record of one UE.
struct UeInfo {
  UeId id = -1;
  RadioNodeId radio = 0;
  CellId serving = kInvalidCell;
  /// When set, the UE only ever attaches to this cell (controlled
  /// experiments); kInvalidCell = normal strongest-cell selection.
  CellId forced_cell = kInvalidCell;
  UeState state = UeState::kIdle;
  SimTime bad_cqi_since = -1;   // RLF tracking
  std::uint64_t disconnections = 0;
  SimTime connected_time = 0;   // accumulated while kConnected
  std::uint64_t handovers = 0;
  /// Last time this UE had downlink traffic (offered or delivered). PDCCH-
  /// order PRACH solicitation only covers clients active within the last
  /// second, so contender estimates track instantaneous load (paper
  /// Section 5.1: estimates expire and "account for nodes that become
  /// inactive").
  SimTime last_traffic = -kSecond;
  /// Uplink bytes enqueued per delivered downlink byte (TCP ACK coupling;
  /// ~66 B ACK per 2 x 1500 B segments).
  double ul_ack_ratio = 66.0 / 3000.0;
};

/// A PRACH preamble heard by a (possibly non-serving) cell.
struct PrachObservation {
  CellId observer = kInvalidCell;
  CellId serving = kInvalidCell;  // cell the UE is attaching/attached to
  UeId ue = -1;
  double snr_db = 0.0;
};

struct LteNetworkConfig {
  RlfConfig rlf;
  /// PDCCH-order PRACH solicitation period (paper: every second).
  SimTime prach_solicit_period = 1 * kSecond;
  /// Minimum PRACH SNR for a neighbour cell to count the client
  /// (paper Section 6.3.4: "we count only users whose PRACH can be heard
  /// at -10 dB").
  double prach_detect_snr_db = -10.0;
  /// Open-loop PRACH power control (36.213 Section 6): the client sets its
  /// preamble power so the SERVING cell receives `prach_target_rx_dbm`
  /// (-104 dBm is the standard's typical initial target). This confines
  /// contender counting to cells within ~13 dB of the serving path — the
  /// "clients likely affected" neighbourhood the share formula needs.
  /// Disabling it sends full-power preambles (audible across a whole 2 km
  /// map, driving every share to its floor); see DESIGN.md.
  bool prach_power_control = true;
  double prach_target_rx_dbm = -104.0;
  /// Retry period for UEs that find no cell.
  SimTime attach_retry_period = 5 * kSecond;
  /// Time from PRACH to connected.
  SimTime attach_delay = 100 * kMillisecond;
  /// Measurement-based handover (A3-style): hand over when a neighbour's
  /// RSRP exceeds serving by `handover_hysteresis_db` at a periodic check.
  /// UEs pinned to a forced cell never hand over. Paper Section 7: CellFi
  /// inherits seamless roaming from the LTE architecture.
  bool enable_handover = true;
  double handover_hysteresis_db = 3.0;
  SimTime handover_check_period = 200 * kMillisecond;
  /// Resolve subframes through the per-epoch interference engine
  /// (InterferenceMap, DESIGN.md §12): per-subchannel transmitter lists
  /// are built once per subframe and shared by every receiver, aggregate
  /// denominators and the idle-CRS penalty are cached. Bit-identical to
  /// the legacy per-link path (which `false` restores — kept for the
  /// regression test and the bench_scale comparison) as long as
  /// RadioEnvironmentConfig::interference_floor_db is off.
  bool use_interference_engine = true;
  /// Intra-replication spatial sharding (DESIGN.md §15). Partition the
  /// cell grid into this many spatially contiguous shards and compute each
  /// shard's RNG-free subframe work (plan building, SINR evaluation, CQI
  /// measurement) concurrently; everything that draws from the shared Rng
  /// or mutates cross-cell state (LBT gating, HARQ completion, callbacks)
  /// runs serially at the subframe barrier in global cell-index order.
  /// Results are bit-identical for ANY value, including 1 — the shard
  /// count only decides which thread computes a value, never the order
  /// values are merged in. Requires use_interference_engine; the legacy
  /// per-link path stays single-threaded.
  int shards = 1;
  /// Worker threads for the shard pool. 0 derives a default:
  /// CELLFI_SHARD_THREADS env if set, else hardware concurrency divided by
  /// the active replication-sweep workers (never silently oversubscribes
  /// when PR 2's sweep pool is also running). An explicit value is honored
  /// as given, clamped to `shards`.
  int shard_threads = 0;
  std::uint64_t seed = 1;
};

class LteNetwork {
 public:
  /// `env` must outlive the network; all cells must share one TDD config
  /// (GPS-synchronized frames, as CellFi requires).
  LteNetwork(Simulator& sim, RadioEnvironment& env, LteNetworkConfig config);

  // --- Topology ---------------------------------------------------------------
  CellId AddCell(const LteMacConfig& mac, RadioNodeId radio);
  /// Adds a UE. If `force_cell` is set, cell selection is skipped.
  UeId AddUe(RadioNodeId radio, CellId force_cell = kInvalidCell);

  EnodeB& cell(CellId id) { return *cells_[static_cast<std::size_t>(id)].mac; }
  const EnodeB& cell(CellId id) const { return *cells_[static_cast<std::size_t>(id)].mac; }
  std::size_t cell_count() const { return cells_.size(); }
  const UeInfo& ue(UeId id) const { return ues_[static_cast<std::size_t>(id)]; }
  std::size_t ue_count() const { return ues_.size(); }

  /// Enable/disable a cell's radio entirely (channel selection / Fig. 8
  /// style scripted interferers).
  void SetCellActive(CellId id, bool active);
  bool cell_active(CellId id) const { return cells_[static_cast<std::size_t>(id)].active; }

  // --- Traffic ----------------------------------------------------------------
  /// Offer downlink bytes for a UE (queued at its serving cell; dropped if
  /// unattached).
  void OfferDownlink(UeId ue, std::uint64_t bytes);
  /// Offer uplink bytes (beyond the automatic TCP-ACK coupling).
  void OfferUplink(UeId ue, std::uint64_t bytes);

  /// Drop any queued downlink bytes for a UE (scripted traffic gating).
  void ClearDownlinkQueue(UeId ue);

  /// Fired on every delivered downlink transport block.
  std::function<void(UeId, std::uint64_t bytes, SimTime now)> on_dl_delivered;

  // --- CellFi observer hooks -----------------------------------------------------
  std::function<void(const PrachObservation&)> on_prach;
  std::function<void(CellId, UeId, const CqiMeasurement&)> on_cqi_report;

  /// Restrict a cell's scheduler (CellFi interference management).
  void SetAllowedMask(CellId id, std::vector<bool> mask);

  /// Aggregate background PRB demand for a cell (DESIGN.md §18): fraction
  /// of its allowed subchannels occupied by unmodelled background users
  /// each DL subframe. A cell with background demand transmits (and
  /// interferes, and contends for LBT) even with no fully-simulated UEs
  /// attached; 0 restores the pre-tier gates byte-identically.
  void SetBackgroundLoad(CellId id, double fraction);

  // --- Run ----------------------------------------------------------------------
  /// Schedule the subframe loop and attach procedures. Call once.
  void Start();

  // --- Measurement -----------------------------------------------------------------
  /// Realized per-subchannel downlink SINR for a UE in the *current*
  /// subframe (what a CQI measurement would see).
  std::vector<double> MeasureDownlinkSinr(UeId ue) const;

  /// Mean (no-fading) SNR from a UE's serving cell.
  double ServingSnrDb(UeId ue) const;

  /// Distance between two cells' radios (an operator knows its own sites).
  bool CellsWithinDistance(CellId a, CellId b, double distance_m) const;

  std::uint64_t total_dl_bits() const;

  /// Interference terms dropped by the negligible-interferer cull
  /// (RadioEnvironmentConfig::interference_floor_db) — 0 unless the cull
  /// is enabled and the engine is on.
  std::uint64_t interference_culled_total() const { return imap_.culled_total(); }
  /// Drops discovered while resolving the most recent subframe.
  std::uint64_t interference_culled_last_subframe() const {
    return imap_.culled_this_epoch();
  }

  /// Resolved shard partition size / worker threads (1 before the first
  /// subframe builds the shard state). Test/bench introspection.
  int shard_count() const { return shard_grid_ ? shard_grid_->num_shards() : 1; }
  int shard_thread_count() const { return shard_threads_; }
  /// The cull-derived neighbor graph, or nullptr when the cull is off
  /// (every pair would be a neighbor) or no subframe has run yet.
  const NeighborGraph* neighbor_graph() const {
    return neighbor_graph_.built() ? &neighbor_graph_ : nullptr;
  }

 private:
  struct CellRec {
    std::unique_ptr<EnodeB> mac;
    RadioNodeId radio = 0;
    bool active = true;
    TxPlan current_plan;          // plan for the in-progress subframe
    bool plan_is_data = false;    // true if current_plan carries DL data
    // Listen-before-talk state (AccessMode::kListenBeforeTalk only).
    bool transmitted_last_subframe = false;
    int lbt_burst_remaining = 0;
    int lbt_backoff = -1;         // -1 = no backoff pending
    int lbt_cw = 4;
    std::uint64_t lbt_deferrals = 0;
  };

  /// LBT gate: may this cell transmit data in the current subframe?
  bool LbtMayTransmit(CellRec& rec);

  void StepSubframe();
  void RunDownlinkSubframe();
  void RunUplinkSubframe();
  void GenerateCqiReports();

  // --- Intra-replication sharding (DESIGN.md §15) -------------------------------
  /// Build (once) the spatial partition, worker pool, neighbor graph and
  /// staging buffers; presize every lazily grown per-receiver cache at a
  /// serial point so no worker ever triggers a resize.
  void EnsureShardState();
  /// Rebuild the neighbor graph when node mobility invalidated it. Called
  /// at serial subframe entry; correctness never depends on it (a stale
  /// graph is simply ignored by the engine), only cull speed does.
  void RefreshNeighborGraph();
  /// Run task(shard) for every shard — on the worker pool when one exists,
  /// inline otherwise. Returns only after all shards finish: this IS the
  /// subframe barrier between a parallel phase and the serial merge.
  void ForEachShard(const std::function<void(int)>& task);
  /// Deterministic barrier instrumentation: barrier counter + work-item
  /// imbalance histogram from per-shard staged transmission counts (never
  /// wall time — obs must not perturb determinism).
  void EmitShardMetrics();
  /// MeasureDownlinkSinr body writing into a caller buffer; `scratch` is
  /// the per-thread cull scratch for concurrent staging (nullptr = serial).
  /// Runs on shard workers during staged SINR/CQI phases (DESIGN.md §16).
  // cellfi-purity: contract-root(parallel-shard-phase) LteNetwork::MeasureDownlinkSinrInto
  void MeasureDownlinkSinrInto(UeId ue, std::vector<double>& out,
                               std::vector<ActiveTransmitter>* scratch) const;
  void SolicitPrach();
  void TryAttach(UeId ue);
  void Detach(UeId ue, bool count_disconnection);
  void CheckHandovers();
  void ExecuteHandover(UeId ue, CellId target);
  void EmitPrach(UeId ue, CellId serving);
  CellId PickServingCell(UeId ue) const;

  /// Interference contribution of every cell except `except` on
  /// `subchannel` in the current DL subframe. Only cells actively sending
  /// data on the subchannel contribute power; idle cells' always-on CRS is
  /// modelled as a small coding penalty instead (see IdleCrsPenaltyDb).
  void CollectDownlinkInterferers(CellId except, int subchannel,
                                  std::vector<ActiveTransmitter>& out) const;

  /// Effective SINR penalty (dB) from idle neighbouring cells whose
  /// reference symbols puncture ~6 % of the victim's data REs. Measured in
  /// the paper's Fig. 7(b) as at most ~20 % goodput loss, i.e. a coding
  /// penalty of roughly 1 dB per strong idle interferer, capped at 2 dB.
  /// With the engine on the value is served from a per-receiver cache
  /// invalidated on serving-cell, cell-activity and mobility changes (it
  /// depends only on the active set and mean powers, never on plans).
  /// Queried from shard workers during staged measurement (DESIGN.md §16).
  // cellfi-purity: contract-root(parallel-shard-phase) LteNetwork::IdleCrsPenaltyDb
  double IdleCrsPenaltyDb(CellId serving, RadioNodeId rx) const;
  /// Uncached scan behind IdleCrsPenaltyDb (the legacy path calls it
  /// directly every time).
  double ComputeIdleCrsPenaltyDb(CellId serving, RadioNodeId rx) const;

  /// Rebuild the engine's downlink transmitter lists from the cells'
  /// committed plans. Runs after plan commit in RunDownlinkSubframe;
  /// EnsureDownlinkMap re-runs it lazily when SetCellActive or an uplink
  /// subframe invalidated the map since (MeasureDownlinkSinr may be called
  /// between subframes).
  void BuildDownlinkMap() const;
  void EnsureDownlinkMap() const;

  Simulator& sim_;
  RadioEnvironment& env_;
  LteNetworkConfig config_;
  Rng rng_;
  std::vector<CellRec> cells_;
  std::vector<UeInfo> ues_;
  double subchannel_bandwidth_hz_ = 360e3;
  int num_subchannels_ = 13;
  bool started_ = false;

  /// Per-epoch interference engine state (mutable: MeasureDownlinkSinr is
  /// const but may need to lazily rebuild the map and its caches).
  mutable InterferenceMap imap_;
  mutable bool dl_map_valid_ = false;
  /// Bumped by SetCellActive; versions the CRS-penalty cache.
  std::uint64_t activity_epoch_ = 1;
  struct CrsCacheEntry {
    CellId serving = kInvalidCell;
    std::uint64_t activity_epoch = 0;
    std::uint64_t position_epoch = 0;
    double penalty_db = 0.0;
  };
  mutable std::vector<CrsCacheEntry> crs_cache_;  // indexed by rx radio id
  /// CheckHandovers scratch: active cells, hoisted out of the per-UE loop.
  std::vector<CellId> handover_cells_scratch_;

  // --- Sharding state (DESIGN.md §15). Parallel phases are RNG-free and
  // write only receiver-owned or shard-owned storage; every merge runs
  // serially in global cell-index (or UE-id) order, so results are
  // bit-identical for any shard or thread count.
  std::unique_ptr<ShardGrid> shard_grid_;
  std::unique_ptr<WorkerPool> shard_pool_;  // only when shard_threads_ > 1
  NeighborGraph neighbor_graph_;            // built when the cull is on
  int shard_threads_ = 1;
  std::vector<std::uint8_t> plan_pending_;  // cells gated into DL planning
  /// Per cell: tb SINR (dB) of each planned transmission, staged by the
  /// parallel phase, consumed by the serial commit.
  std::vector<std::vector<double>> staged_tb_sinr_;
  /// Per shard: cull-survivor scratch handed to InterferenceMap::SinrDb.
  std::vector<std::vector<ActiveTransmitter>> shard_scratch_;
  std::vector<std::uint8_t> cqi_pending_;             // UEs reporting this round
  std::vector<std::vector<double>> staged_cqi_sinr_;  // per UE
};

}  // namespace cellfi::lte
