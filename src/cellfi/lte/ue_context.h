// Per-UE state kept at the serving eNodeB: RLC queues, CQI, HARQ, and the
// proportional-fair average rate.
#pragma once

#include <cstdint>
#include <vector>

#include "cellfi/lte/types.h"
#include "cellfi/phy/cqi_mcs.h"

namespace cellfi::lte {

/// One in-flight HARQ transport block awaiting retransmission.
struct HarqState {
  bool active = false;
  int cqi = 0;               // MCS locked at first transmission
  int tb_bits = 0;           // transport block size
  int num_subchannels = 0;   // allocation width to reproduce on retx
  std::uint64_t payload_bytes = 0;  // queued bytes covered by the block
  double combined_sinr_linear = 0.0;
  int attempts = 0;

  void Clear() { *this = HarqState{}; }
};

/// eNodeB-side context for one connected UE.
class UeContext {
 public:
  UeContext(UeId id, int num_subchannels);

  UeId id() const { return id_; }

  // --- RLC queues (bytes) -------------------------------------------------
  void EnqueueDownlink(std::uint64_t bytes) { dl_queue_bytes_ += bytes; }
  void EnqueueUplink(std::uint64_t bytes) { ul_queue_bytes_ += bytes; }
  std::uint64_t dl_queue_bytes() const { return dl_queue_bytes_; }
  std::uint64_t ul_queue_bytes() const { return ul_queue_bytes_; }
  void DrainDownlink(std::uint64_t bytes);
  void DrainUplink(std::uint64_t bytes);

  // --- CQI ----------------------------------------------------------------
  /// Store a decoded mode 3-0 report (wideband + per-subchannel).
  void UpdateCqi(int wideband, const std::vector<int>& subband);
  int wideband_cqi() const { return wideband_cqi_; }
  int SubbandCqi(int subchannel) const { return subband_cqi_[static_cast<std::size_t>(subchannel)]; }
  const std::vector<int>& subband_cqi() const { return subband_cqi_; }
  bool has_cqi() const { return has_cqi_; }

  // --- Proportional fair --------------------------------------------------
  /// EWMA of the served rate, bits per subframe.
  double average_rate() const { return average_rate_; }
  /// Update the EWMA with the bits served this subframe (0 if unserved).
  void UpdatePfAverage(double bits_served, double window_subframes);

  /// Carry state across a handover: pending queue bytes (data forwarding
  /// over the backhaul) and cumulative statistics move to the new cell's
  /// context; CQI and HARQ state do not (new radio link).
  void ImportOnHandover(const UeContext& old);

  // --- HARQ ---------------------------------------------------------------
  HarqState& harq_dl() { return harq_dl_; }
  HarqState& harq_ul() { return harq_ul_; }
  const HarqState& harq_dl() const { return harq_dl_; }
  const HarqState& harq_ul() const { return harq_ul_; }

  // --- Statistics ---------------------------------------------------------
  std::uint64_t dl_delivered_bits = 0;
  std::uint64_t ul_delivered_bits = 0;
  std::uint64_t dl_lost_blocks = 0;
  std::uint64_t dl_total_blocks = 0;
  std::uint64_t dl_harq_retx_blocks = 0;
  /// Histogram of code rates used, one entry per delivered block (for
  /// Fig. 1(b)), split by direction.
  std::vector<double> code_rate_log;
  std::vector<double> ul_code_rate_log;
  /// Fraction of the channel used per scheduled subframe (Fig. 1(c)).
  std::vector<double> channel_fraction_log;
  std::vector<double> ul_channel_fraction_log;

 private:
  UeId id_;
  std::uint64_t dl_queue_bytes_ = 0;
  std::uint64_t ul_queue_bytes_ = 0;
  bool has_cqi_ = false;
  int wideband_cqi_ = 0;
  std::vector<int> subband_cqi_;
  double average_rate_ = 1.0;  // avoid div-by-zero in PF metric
  HarqState harq_dl_;
  HarqState harq_ul_;
};

/// Aggregate CQI for a multi-subchannel allocation: the CQI whose spectral
/// efficiency best matches the mean efficiency of the allocated
/// subchannels (one MCS covers the whole transport block in LTE).
int AggregateCqi(const std::vector<int>& subband_cqi, const std::vector<int>& subchannels);

}  // namespace cellfi::lte
