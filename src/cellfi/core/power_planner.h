// Transmit-power planning (paper Section 7: "a more flexible channel
// allocation that will allow channel aggregation and optimization for
// power").
//
// Given a coverage target (range + SNR at the edge), compute the minimum
// EIRP that closes the link budget, clamped to the channel's regulatory
// cap from the spectrum lease. Running at minimum power shrinks the AP's
// interference footprint, which directly reduces the contender counts that
// drive CellFi's spectrum shares.
#pragma once

#include "cellfi/radio/pathloss.h"

namespace cellfi::core {

struct CoverageTarget {
  double range_m = 1000.0;        // paper Section 2: 1 km cells
  double edge_snr_db = -6.7;      // lowest LTE MCS by default
  double bandwidth_hz = 4.5e6;    // occupied bandwidth at the receiver
  double noise_figure_db = 7.0;
  double shadowing_margin_db = 8.0;  // log-normal fade margin (~90 % edge)
};

/// Minimum EIRP (dBm) meeting `target` under `pathloss` at `freq_hz`.
double RequiredEirpDbm(const PathLossModel& pathloss, double freq_hz,
                       const CoverageTarget& target);

/// RequiredEirpDbm clamped to the regulatory cap; returns the cap when the
/// target is unreachable (and sets *achievable to false).
double PlanTxPowerDbm(const PathLossModel& pathloss, double freq_hz,
                      const CoverageTarget& target, double cap_dbm,
                      bool* achievable = nullptr);

/// Range achieved (metres) at `eirp_dbm` for the same target parameters
/// (bisection over the monotone path-loss model; range cap 100 km).
double AchievableRangeM(const PathLossModel& pathloss, double freq_hz,
                        const CoverageTarget& target, double eirp_dbm);

}  // namespace cellfi::core
