#include "cellfi/core/power_planner.h"

#include <algorithm>

#include "cellfi/common/units.h"

namespace cellfi::core {

double RequiredEirpDbm(const PathLossModel& pathloss, double freq_hz,
                       const CoverageTarget& target) {
  const double noise_dbm = NoisePowerDbm(target.bandwidth_hz, target.noise_figure_db);
  return target.edge_snr_db + noise_dbm + pathloss.LossDb(target.range_m, freq_hz) +
         target.shadowing_margin_db;
}

double PlanTxPowerDbm(const PathLossModel& pathloss, double freq_hz,
                      const CoverageTarget& target, double cap_dbm, bool* achievable) {
  const double required = RequiredEirpDbm(pathloss, freq_hz, target);
  if (achievable != nullptr) *achievable = required <= cap_dbm;
  return std::min(required, cap_dbm);
}

double AchievableRangeM(const PathLossModel& pathloss, double freq_hz,
                        const CoverageTarget& target, double eirp_dbm) {
  const double noise_dbm = NoisePowerDbm(target.bandwidth_hz, target.noise_figure_db);
  const double budget_db =
      eirp_dbm - target.edge_snr_db - noise_dbm - target.shadowing_margin_db;
  double lo = 1.0, hi = 100'000.0;
  if (pathloss.LossDb(lo, freq_hz) > budget_db) return 0.0;
  if (pathloss.LossDb(hi, freq_hz) <= budget_db) return hi;
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    (pathloss.LossDb(mid, freq_hz) <= budget_db ? lo : hi) = mid;
  }
  return lo;
}

}  // namespace cellfi::core
