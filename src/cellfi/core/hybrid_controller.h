// Hybrid control plane (paper Section 7): "CellFi can be extended to
// include centralized coordination among nodes from one provider, and
// distributed coordination across multiple providers."
//
// Cells are grouped by operator. ACROSS operators everything stays
// CellFi-distributed: each cell senses PRACH and client CQI and runs its
// own InterferenceManager — no inter-operator communication. WITHIN an
// operator, cells additionally exchange their masks over the operator's
// own backhaul (X2-like, which a single provider does have) and run a
// conflict-free refinement: when two same-operator cells that interfere
// hold the same subchannel, the one whose clients value it less yields and
// picks a substitute from its own sensing — resolving intra-operator
// contention in one step instead of waiting for bucket drains.
#pragma once

#include <memory>
#include <vector>

#include "cellfi/core/cellfi_controller.h"

namespace cellfi::core {

struct HybridControllerConfig {
  CellfiControllerConfig base;
  /// Same-operator cells closer than this conflict (the operator knows its
  /// own deployment geometry).
  double intra_operator_conflict_m = 900.0;
};

class HybridController {
 public:
  /// `operator_of[c]` assigns each cell of `net` to an operator id.
  HybridController(Simulator& sim, lte::LteNetwork& net, std::vector<int> operator_of,
                   HybridControllerConfig config);

  void Start();

  const CellfiController& distributed() const { return *distributed_; }
  int operator_of(lte::CellId cell) const {
    return operator_of_[static_cast<std::size_t>(cell)];
  }
  /// Intra-operator conflicts resolved centrally so far.
  std::uint64_t conflicts_resolved() const { return conflicts_resolved_; }

 private:
  void Refine();

  Simulator& sim_;
  lte::LteNetwork& net_;
  std::vector<int> operator_of_;
  HybridControllerConfig config_;
  std::unique_ptr<CellfiController> distributed_;
  std::uint64_t conflicts_resolved_ = 0;
};

}  // namespace cellfi::core
