#include "cellfi/core/interference_manager.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "cellfi/obs/trace.h"

namespace cellfi::core {

InterferenceManager::InterferenceManager(InterferenceManagerConfig config,
                                         std::uint64_t seed)
    : config_(config),
      rng_(seed),
      owned_(static_cast<std::size_t>(config.num_subchannels), false),
      buckets_(static_cast<std::size_t>(config.num_subchannels), 0.0) {
  assert(config.num_subchannels > 0);
}

int InterferenceManager::owned_count() const {
  return static_cast<int>(std::count(owned_.begin(), owned_.end(), true));
}

int InterferenceManager::TargetShare(int own_clients, int contenders) const {
  if (own_clients <= 0) return 0;
  const int s = config_.num_subchannels;
  contenders = std::max(contenders, own_clients);
  const int share = (own_clients * s) / contenders;
  return std::clamp(share, 1, s);
}

void InterferenceManager::Acquire(int s) {
  owned_[static_cast<std::size_t>(s)] = true;
  buckets_[static_cast<std::size_t>(s)] = rng_.Exponential(config_.bucket_lambda);
}

void InterferenceManager::Release(int s) {
  owned_[static_cast<std::size_t>(s)] = false;
  buckets_[static_cast<std::size_t>(s)] = 0.0;
}

int InterferenceManager::PickNewSubchannel(const std::vector<double>& utility) {
  double best_utility = -1.0;
  int best = -1;
  int ties = 0;
  for (int s = 0; s < config_.num_subchannels; ++s) {
    if (owned_[static_cast<std::size_t>(s)]) continue;
    const double u = utility.empty() ? 0.0 : utility[static_cast<std::size_t>(s)];
    if (u > best_utility) {
      best_utility = u;
      best = s;
      ties = 1;
    } else if (u == best_utility) {
      // Reservoir-sample among equal-utility candidates: randomized hopping.
      ++ties;
      if (rng_.Uniform() < 1.0 / static_cast<double>(ties)) best = s;
    }
  }
  return best;
}

const std::vector<bool>& InterferenceManager::OnEpoch(const EpochInputs& in) {
  ++epochs_;
  stats_ = EpochStats{};
  const int s_total = config_.num_subchannels;
  // Strictly passive observation: no Rng use, no control-flow influence
  // (determinism contract, DESIGN.md §13).
  obs::TraceSink* tr = obs::ActiveTrace();

  // --- Phase 1: distributed share calculation -----------------------------
  const int share = TargetShare(in.own_active_clients, in.estimated_contenders);
  stats_.share = share;
  if (tr != nullptr && share != last_traced_share_) {
    tr->Emit(obs::AmbientNow(), "im", "share_recalc",
             {{"cell", config_.instance},
              {"epoch", epochs_},
              {"share", share},
              {"own", in.own_active_clients},
              {"contenders", in.estimated_contenders}});
  }
  last_traced_share_ = share;

  // Shrink if over target (release lowest-utility owned subchannels).
  while (owned_count() > share) {
    int worst = -1;
    double worst_utility = 0.0;
    for (int s = 0; s < s_total; ++s) {
      if (!owned_[static_cast<std::size_t>(s)]) continue;
      const double u = in.utility.empty() ? 0.0 : in.utility[static_cast<std::size_t>(s)];
      if (worst == -1 || u < worst_utility) {
        worst = s;
        worst_utility = u;
      }
    }
    Release(worst);
    ++stats_.shrank;
    if (tr != nullptr) {
      tr->Emit(obs::AmbientNow(), "im", "shrink",
               {{"cell", config_.instance}, {"epoch", epochs_}, {"subchannel", worst}});
    }
  }

  // --- Phase 2: bucket updates -------------------------------------------
  for (int s = 0; s < s_total; ++s) {
    if (!owned_[static_cast<std::size_t>(s)]) continue;
    const double pressure =
        in.interference_pressure.empty() ? 0.0
                                         : in.interference_pressure[static_cast<std::size_t>(s)];
    if (pressure > 0.0) {
      buckets_[static_cast<std::size_t>(s)] -= pressure;
      if (tr != nullptr) {
        tr->Emit(obs::AmbientNow(), "im", "bucket_decrement",
                 {{"cell", config_.instance},
                  {"epoch", epochs_},
                  {"subchannel", s},
                  {"pressure", pressure},
                  {"bucket", buckets_[static_cast<std::size_t>(s)]}});
      }
    }
  }

  // --- Phase 3: hopping on bucket exhaustion ------------------------------
  for (int s = 0; s < s_total; ++s) {
    if (!owned_[static_cast<std::size_t>(s)] || buckets_[static_cast<std::size_t>(s)] > 0.0) {
      continue;
    }
    Release(s);
    const int next = PickNewSubchannel(in.utility);
    if (next >= 0) Acquire(next);
    ++stats_.hops;
    ++total_hops_;
    if (tr != nullptr) {
      tr->Emit(obs::AmbientNow(), "im", "hop",
               {{"cell", config_.instance},
                {"epoch", epochs_},
                {"from", s},
                {"to", next}});
    }
  }

  // --- Phase 4: grow toward the share -------------------------------------
  while (owned_count() < share) {
    const int next = PickNewSubchannel(in.utility);
    if (next < 0) break;  // everything owned already
    Acquire(next);
    ++stats_.grew;
    if (tr != nullptr) {
      tr->Emit(obs::AmbientNow(), "im", "grow",
               {{"cell", config_.instance}, {"epoch", epochs_}, {"subchannel", next}});
    }
  }

  // --- Phase 5: channel re-use packing ------------------------------------
  if (config_.enable_reuse && !in.free_for_reuse.empty()) {
    for (int s = s_total - 1; s >= 0; --s) {
      if (!owned_[static_cast<std::size_t>(s)]) continue;
      for (int lower = 0; lower < s; ++lower) {
        if (owned_[static_cast<std::size_t>(lower)]) continue;
        if (!in.free_for_reuse[static_cast<std::size_t>(lower)]) continue;
        Release(s);
        Acquire(lower);
        ++stats_.reuse_moves;
        if (tr != nullptr) {
          tr->Emit(obs::AmbientNow(), "im", "reuse_move",
                   {{"cell", config_.instance},
                    {"epoch", epochs_},
                    {"from", s},
                    {"to", lower}});
        }
        break;
      }
    }
  }

  return owned_;
}

}  // namespace cellfi::core
