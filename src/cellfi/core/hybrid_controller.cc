#include "cellfi/core/hybrid_controller.h"

#include <cassert>

#include "cellfi/obs/metrics.h"
#include "cellfi/obs/trace.h"

namespace cellfi::core {

using lte::CellId;

HybridController::HybridController(Simulator& sim, lte::LteNetwork& net,
                                   std::vector<int> operator_of,
                                   HybridControllerConfig config)
    : sim_(sim), net_(net), operator_of_(std::move(operator_of)), config_(config) {
  assert(operator_of_.size() == net.cell_count());
  distributed_ = std::make_unique<CellfiController>(sim, net, config.base);
}

void HybridController::Start() {
  distributed_->Start();
  // Refinement runs more often than the IM epoch so a cell's own epoch
  // push is corrected quickly; it is a pure post-pass over the distributed
  // masks (the IM state stays canonical).
  sim_.SchedulePeriodic(config_.base.epoch / 4, [this] { Refine(); });
}

void HybridController::Refine() {
  const std::size_t cells = net_.cell_count();
  // Current masks as the distributed layer computed them.
  std::vector<std::vector<bool>> masks(cells);
  for (std::size_t c = 0; c < cells; ++c) {
    masks[c] = distributed_->manager(static_cast<CellId>(c)).mask();
    if (distributed_->manager(static_cast<CellId>(c)).owned_count() == 0) {
      // Mirror the controller's idle-cell fallback.
      masks[c].assign(masks[c].size(), true);
    }
  }

  // Resolve conflicts with the information the operator actually has: its
  // own cells' geometry, masks and client counts.
  for (std::size_t i = 0; i < cells; ++i) {
    for (std::size_t j = i + 1; j < cells; ++j) {
      if (operator_of_[i] != operator_of_[j]) continue;
      if (!net_.CellsWithinDistance(static_cast<CellId>(i), static_cast<CellId>(j),
                                    config_.intra_operator_conflict_m)) {
        continue;
      }
      // Resolve every shared subchannel: the cell with fewer attached
      // clients yields and substitutes a subchannel unused by either.
      const std::size_t yielder =
          net_.cell(static_cast<CellId>(i)).ues().size() <=
                  net_.cell(static_cast<CellId>(j)).ues().size()
              ? i
              : j;
      const std::size_t keeper = yielder == i ? j : i;
      for (std::size_t s = 0; s < masks[i].size(); ++s) {
        if (!masks[i][s] || !masks[j][s]) continue;
        masks[yielder][s] = false;
        ++conflicts_resolved_;
        int substitute = -1;
        for (std::size_t alt = 0; alt < masks[yielder].size(); ++alt) {
          if (!masks[yielder][alt] && !masks[keeper][alt]) {
            masks[yielder][alt] = true;
            substitute = static_cast<int>(alt);
            break;
          }
        }
        if (obs::TraceSink* tr = obs::ActiveTrace()) {
          tr->Emit(sim_.Now(), "hybrid", "conflict_resolved",
                   {{"yielder", yielder},
                    {"keeper", keeper},
                    {"subchannel", s},
                    {"substitute", substitute}});
        }
        if (obs::MetricsRegistry* m = obs::ActiveMetrics()) {
          m->Add(m->Counter("hybrid.conflicts_resolved"));
        }
      }
    }
  }

  for (std::size_t c = 0; c < cells; ++c) {
    net_.SetAllowedMask(static_cast<CellId>(c), masks[c]);
  }
}

}  // namespace cellfi::core
