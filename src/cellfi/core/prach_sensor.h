// PRACH-based contender counting (paper Section 5.1).
//
// Each CellFi access point overhears PRACH preambles — its own clients'
// and those of neighbouring cells' clients (solicited every second via
// PDCCH-order RACH). Estimates expire after one second, so clients that go
// inactive stop being counted.
#pragma once

#include <unordered_map>

#include "cellfi/common/time.h"
#include "cellfi/lte/types.h"

namespace cellfi::core {

class PrachSensor {
 public:
  explicit PrachSensor(lte::CellId self, SimTime expiry = 1 * kSecond)
      : self_(self), expiry_(expiry) {}

  /// Record a detected preamble from `ue` (attached to `serving`).
  void OnPreamble(lte::UeId ue, lte::CellId serving, SimTime now);

  /// NP_i: number of distinct active clients heard recently (own + foreign).
  int EstimateContenders(SimTime now) const;

  /// N_i: own active clients among the recent preambles.
  int OwnActive(SimTime now) const;

  lte::CellId self() const { return self_; }

 private:
  struct Entry {
    SimTime last_heard = 0;
    lte::CellId serving = lte::kInvalidCell;
  };
  lte::CellId self_;
  SimTime expiry_;
  std::unordered_map<lte::UeId, Entry> heard_;
};

}  // namespace cellfi::core
