// PRACH-based contender counting (paper Section 5.1).
//
// Each CellFi access point overhears PRACH preambles — its own clients'
// and those of neighbouring cells' clients (solicited every second via
// PDCCH-order RACH). Estimates expire after one second, so clients that go
// inactive stop being counted.
#pragma once

#include <unordered_map>

#include "cellfi/common/time.h"
#include "cellfi/lte/types.h"

namespace cellfi::core {

class PrachSensor {
 public:
  explicit PrachSensor(lte::CellId self, SimTime expiry = 1 * kSecond)
      : self_(self), expiry_(expiry) {}

  /// Record a detected preamble from `ue` (attached to `serving`).
  void OnPreamble(lte::UeId ue, lte::CellId serving, SimTime now);

  /// Aggregate-tier injection (DESIGN.md §18): this sensor currently hears
  /// `count` synthetic background clients attached to `serving`. The
  /// latest report per serving cell wins and expires exactly like an
  /// individual preamble, so a tier that stops reporting stops being
  /// counted within one epoch — the same staleness contract the paper
  /// gives per-UE estimates.
  void SetAggregateContenders(lte::CellId serving, int count, SimTime now);

  /// NP_i: number of distinct active clients heard recently (own + foreign),
  /// including non-expired aggregate-tier counts.
  int EstimateContenders(SimTime now) const;

  /// N_i: own active clients among the recent preambles, including the
  /// aggregate-tier count reported for this cell itself.
  int OwnActive(SimTime now) const;

  lte::CellId self() const { return self_; }

 private:
  struct Entry {
    SimTime last_heard = 0;
    lte::CellId serving = lte::kInvalidCell;
  };
  struct AggregateEntry {
    SimTime last_reported = 0;
    int count = 0;
  };
  lte::CellId self_;
  SimTime expiry_;
  std::unordered_map<lte::UeId, Entry> heard_;
  /// Synthetic background contenders keyed by serving cell.
  std::unordered_map<lte::CellId, AggregateEntry> aggregate_;
};

}  // namespace cellfi::core
