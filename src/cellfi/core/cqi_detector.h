// CQI-based interference detector (paper Section 6.3.2).
//
// Two complementary rules, both requiring 10 consecutive low reports:
//
//  * Temporal: the AP tracks, per client and sub-band, the maximum CQI
//    observed within a sliding window as the interference-free estimate,
//    and flags samples below 60 % of that maximum. This is the paper's
//    measured rule; it catches an interferer that *arrives* on a
//    previously clean sub-band.
//  * Spectral: a sub-band whose smoothed CQI sits below 60 % of the
//    client's best smoothed sub-band is flagged. Sub-band reports make the
//    across-frequency contrast directly observable, and this closes the
//    cold-start case where a sub-band has been interfered for the entire
//    window (the temporal max never saw it clean).
//
// The paper measured <2 % false positives and ~80 % detection probability
// on real hardware; large-scale runs inject those imperfections on top
// (see CellfiControllerConfig).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

namespace cellfi::core {

struct CqiDetectorConfig {
  double ratio = 0.6;     // "below 60 % of the maximum"
  int consecutive = 10;   // consecutive low samples to trigger
  int max_window = 500;   // samples kept for the running max (1 s at 2 ms)
  double smoothing = 0.1; // EWMA weight for the spectral rule
  bool enable_spectral_rule = true;
};

/// Detector state for one client (all sub-bands).
class CqiInterferenceDetector {
 public:
  CqiInterferenceDetector(int num_subchannels, CqiDetectorConfig config = {});

  /// Feed one decoded report (per-subchannel CQI).
  void AddReport(const std::vector<int>& subband_cqi);

  /// True if subchannel `s` currently triggers the interference rule.
  bool Detected(int s) const;

  /// Interference-free CQI estimate (window max) for subchannel `s`.
  int MaxCqi(int s) const;

  /// Number of consecutive low samples on `s` (temporal rule).
  int LowStreak(int s) const { return bands_[static_cast<std::size_t>(s)].low_streak; }

  /// Smoothed CQI on subchannel `s` (spectral rule input).
  double SmoothedCqi(int s) const { return bands_[static_cast<std::size_t>(s)].smoothed; }

  int num_subchannels() const { return static_cast<int>(bands_.size()); }

 private:
  struct Band {
    std::deque<int> window;  // recent samples for the running max
    int low_streak = 0;      // temporal rule
    double smoothed = -1.0;  // EWMA; -1 = no samples yet
    int spectral_streak = 0; // spectral rule
  };
  CqiDetectorConfig config_;
  std::vector<Band> bands_;
};

}  // namespace cellfi::core
