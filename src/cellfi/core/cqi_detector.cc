#include "cellfi/core/cqi_detector.h"

#include <algorithm>
#include <cassert>

namespace cellfi::core {

CqiInterferenceDetector::CqiInterferenceDetector(int num_subchannels,
                                                 CqiDetectorConfig config)
    : config_(config), bands_(static_cast<std::size_t>(num_subchannels)) {}

void CqiInterferenceDetector::AddReport(const std::vector<int>& subband_cqi) {
  const std::size_t n = std::min(subband_cqi.size(), bands_.size());
  for (std::size_t s = 0; s < n; ++s) {
    Band& band = bands_[s];
    band.window.push_back(subband_cqi[s]);
    if (static_cast<int>(band.window.size()) > config_.max_window) {
      band.window.pop_front();
    }
    const int max_cqi = *std::max_element(band.window.begin(), band.window.end());
    const double threshold = config_.ratio * static_cast<double>(max_cqi);
    if (static_cast<double>(subband_cqi[s]) < threshold) {
      ++band.low_streak;
    } else {
      band.low_streak = 0;
    }
    band.smoothed = band.smoothed < 0.0
                        ? static_cast<double>(subband_cqi[s])
                        : (1.0 - config_.smoothing) * band.smoothed +
                              config_.smoothing * static_cast<double>(subband_cqi[s]);
  }

  if (config_.enable_spectral_rule) {
    double best = 0.0;
    for (std::size_t s = 0; s < n; ++s) best = std::max(best, bands_[s].smoothed);
    for (std::size_t s = 0; s < n; ++s) {
      Band& band = bands_[s];
      if (band.smoothed < config_.ratio * best) {
        ++band.spectral_streak;
      } else {
        band.spectral_streak = 0;
      }
    }
  }
}

bool CqiInterferenceDetector::Detected(int s) const {
  const Band& band = bands_[static_cast<std::size_t>(s)];
  return band.low_streak >= config_.consecutive ||
         band.spectral_streak >= config_.consecutive;
}

int CqiInterferenceDetector::MaxCqi(int s) const {
  const Band& band = bands_[static_cast<std::size_t>(s)];
  if (band.window.empty()) return 0;
  return *std::max_element(band.window.begin(), band.window.end());
}

}  // namespace cellfi::core
