#include "cellfi/core/prach_sensor.h"

#include "cellfi/obs/trace.h"

namespace cellfi::core {

void PrachSensor::OnPreamble(lte::UeId ue, lte::CellId serving, SimTime now) {
  heard_[ue] = Entry{now, serving};
  if (obs::TraceSink* tr = obs::ActiveTrace()) {
    tr->Emit(now, "prach", "preamble",
             {{"cell", self_}, {"ue", ue}, {"serving", serving}});
  }
}

int PrachSensor::EstimateContenders(SimTime now) const {
  int n = 0;
  // cellfi-lint: allow(no-unordered-iter) — commutative integer count, order-free
  for (const auto& [ue, e] : heard_) {
    if (now - e.last_heard <= expiry_) ++n;
  }
  return n;
}

int PrachSensor::OwnActive(SimTime now) const {
  int n = 0;
  // cellfi-lint: allow(no-unordered-iter) — commutative integer count, order-free
  for (const auto& [ue, e] : heard_) {
    if (e.serving == self_ && now - e.last_heard <= expiry_) ++n;
  }
  return n;
}

}  // namespace cellfi::core
