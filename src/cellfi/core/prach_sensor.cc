#include "cellfi/core/prach_sensor.h"

#include "cellfi/obs/trace.h"

namespace cellfi::core {

void PrachSensor::OnPreamble(lte::UeId ue, lte::CellId serving, SimTime now) {
  heard_[ue] = Entry{now, serving};
  if (obs::TraceSink* tr = obs::ActiveTrace()) {
    tr->Emit(now, "prach", "preamble",
             {{"cell", self_}, {"ue", ue}, {"serving", serving}});
  }
}

void PrachSensor::SetAggregateContenders(lte::CellId serving, int count,
                                         SimTime now) {
  aggregate_[serving] = AggregateEntry{now, count < 0 ? 0 : count};
  if (obs::TraceSink* tr = obs::ActiveTrace()) {
    tr->Emit(now, "prach", "aggregate",
             {{"cell", self_}, {"serving", serving}, {"count", count}});
  }
}

int PrachSensor::EstimateContenders(SimTime now) const {
  int n = 0;
  // cellfi-lint: allow(no-unordered-iter) — commutative integer count, order-free
  for (const auto& [ue, e] : heard_) {
    if (now - e.last_heard <= expiry_) ++n;
  }
  // cellfi-lint: allow(no-unordered-iter) — commutative integer count, order-free
  for (const auto& [serving, e] : aggregate_) {
    if (now - e.last_reported <= expiry_) n += e.count;
  }
  return n;
}

int PrachSensor::OwnActive(SimTime now) const {
  int n = 0;
  // cellfi-lint: allow(no-unordered-iter) — commutative integer count, order-free
  for (const auto& [ue, e] : heard_) {
    if (e.serving == self_ && now - e.last_heard <= expiry_) ++n;
  }
  const auto it = aggregate_.find(self_);
  if (it != aggregate_.end() && now - it->second.last_reported <= expiry_) {
    n += it->second.count;
  }
  return n;
}

}  // namespace cellfi::core
