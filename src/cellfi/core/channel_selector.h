// CellFi channel-selection component (paper Section 4.2, evaluated in
// Section 6.2 / Fig. 6).
//
// Responsibilities:
//  * keep a list of available channels fresh by polling the spectrum
//    database over PAWS;
//  * vacate the channel within the ETSI 60 s budget once the lease is lost
//    (measured: ~2 s in the paper's testbed);
//  * select the best channel available for BOTH downlink and uplink,
//    preferring channels that network-listen finds idle, then channels
//    occupied by other CellFi cells (whose interference management can
//    share), then anything else;
//  * model the AP radio lifecycle: retuning requires a reboot (1 m 36 s on
//    the paper's E40), after which clients need a cell search (~56 s) to
//    reconnect.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "cellfi/sim/event_queue.h"
#include "cellfi/tvws/paws.h"

namespace cellfi::core {

using tvws::ChannelAvailability;
using tvws::GeoLocation;

/// What network-listen hears on each candidate channel.
class NetworkListenScanner {
 public:
  virtual ~NetworkListenScanner() = default;

  /// Received energy from other networks on `channel`, normalized to
  /// [0, 1] (0 = idle). Idle threshold is 0.05.
  virtual double OccupancyScore(int channel) const = 0;

  /// True if the occupant was identified as a CellFi/LTE cell (via PSS/SSS
  /// detection during network listen).
  virtual bool IsCellFiOccupied(int channel) const = 0;
};

/// Scanner for environments with no other transmitters.
class QuietScanner final : public NetworkListenScanner {
 public:
  double OccupancyScore(int) const override { return 0.0; }
  bool IsCellFiOccupied(int) const override { return false; }
};

struct ChannelSelectorConfig {
  GeoLocation location;
  /// Channel aggregation (paper Section 7, "future work"): lease up to
  /// this many CONTIGUOUS TV channels when available, widening the LTE
  /// carrier (two 6 MHz channels fit a 10 MHz carrier). All aggregated
  /// channels must be valid for both downlink and uplink; losing any of
  /// them vacates the whole block (conservative compliance).
  int max_aggregated_channels = 1;
  SimTime db_poll_interval = 1 * kSecond;
  SimTime vacate_delay = 1 * kSecond;          // radio-off latency after loss
  SimTime reboot_duration = 96 * kSecond;      // E40: 1 min 36 s
  SimTime client_reacquire = 56 * kSecond;     // cell search on the client
  double idle_occupancy_threshold = 0.05;
  // ETSI EN 301 598: transmissions must stop within 60 s of losing the
  // channel; db_poll_interval + vacate_delay must stay below this.
  SimTime etsi_vacate_budget = 60 * kSecond;
};

enum class ApRadioState { kOff, kRebooting, kOn };

/// One timeline entry for the Fig. 6 style report.
struct TimelineEvent {
  SimTime time = 0;
  std::string what;  // "ap_on", "ap_off", "client_connected", ...
  int channel = -1;
};

/// Channel-selection state machine for one access point.
class ChannelSelector {
 public:
  /// All referenced objects must outlive the selector.
  ChannelSelector(Simulator& sim, tvws::PawsClient& client, const tvws::PawsServer& server,
                  const NetworkListenScanner& scanner, ChannelSelectorConfig config);

  /// Begin polling the database and bring the radio up on the best channel.
  void Start();

  ApRadioState state() const { return state_; }

  /// Primary channel currently transmitted on (only when state == kOn).
  std::optional<ChannelAvailability> current_channel() const { return current_; }

  /// All channels in use (primary first); size > 1 under aggregation.
  const std::vector<ChannelAvailability>& current_channels() const { return aggregated_; }

  /// Total leased bandwidth in Hz (0 when off the air).
  double AggregatedBandwidthHz() const;

  /// Most restrictive EIRP cap across the aggregated channels, dBm
  /// (power optimization must respect every channel's limit).
  double MaxPowerDbm() const;

  /// True while attached clients may transmit (AP on + cell search done).
  bool clients_connected() const { return clients_connected_; }

  /// Ordered record of every state change.
  const std::vector<TimelineEvent>& timeline() const { return timeline_; }

  /// Invoked on acquiring / losing a channel (optional).
  std::function<void(const ChannelAvailability&)> on_channel_acquired;
  std::function<void()> on_channel_lost;

 private:
  void Poll();
  void RadioOff(const char* reason);
  void BeginReboot(const ChannelAvailability& target);
  void Record(const std::string& what, int channel);

  /// Rank candidates: idle first, then CellFi-occupied, then the rest;
  /// ties broken by lower occupancy, then lower channel number.
  std::optional<ChannelAvailability> PickBest(
      const std::vector<ChannelAvailability>& downlink,
      const std::vector<ChannelAvailability>& uplink) const;

  /// Channels valid for both directions (lease not expired).
  std::vector<ChannelAvailability> UsableBoth(
      const std::vector<ChannelAvailability>& downlink,
      const std::vector<ChannelAvailability>& uplink) const;

  /// Extend `primary` with contiguous usable channels up to the
  /// aggregation cap.
  std::vector<ChannelAvailability> BuildAggregate(
      const ChannelAvailability& primary,
      const std::vector<ChannelAvailability>& usable) const;

  Simulator& sim_;
  tvws::PawsClient& client_;
  const tvws::PawsServer& server_;
  const NetworkListenScanner& scanner_;
  ChannelSelectorConfig config_;

  ApRadioState state_ = ApRadioState::kOff;
  bool clients_connected_ = false;
  std::optional<ChannelAvailability> current_;
  std::vector<ChannelAvailability> aggregated_;
  std::vector<TimelineEvent> timeline_;
  EventId poll_event_;
  EventId pending_transition_;
};

}  // namespace cellfi::core
