// CellFi channel-selection component (paper Section 4.2, evaluated in
// Section 6.2 / Fig. 6).
//
// Responsibilities:
//  * keep a list of available channels fresh by polling the spectrum
//    database over PAWS — through a `PawsSession`, so database slowness,
//    loss and outages are survived with retries and bounded staleness;
//  * vacate the channel within the ETSI 60 s budget once the lease is lost.
//    The budget is a HARD deadline armed at the last successful lease
//    confirmation (not at poll time): if the database becomes unreachable,
//    the radio still goes dark no later than t_lastconfirm + budget;
//  * select the best channel available for BOTH downlink and uplink,
//    preferring channels that network-listen finds idle, then channels
//    occupied by other CellFi cells (whose interference management can
//    share), then anything else;
//  * model the AP radio lifecycle: retuning requires a reboot (1 m 36 s on
//    the paper's E40), after which clients need a cell search (~56 s) to
//    reconnect. The AP never goes on air on stale data: reboot completion
//    re-validates the lease with a fresh database exchange.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cellfi/sim/event_queue.h"
#include "cellfi/sim/timer.h"
#include "cellfi/tvws/paws_session.h"

namespace cellfi::core {

using tvws::ChannelAvailability;
using tvws::GeoLocation;

/// What network-listen hears on each candidate channel.
class NetworkListenScanner {
 public:
  virtual ~NetworkListenScanner() = default;

  /// Received energy from other networks on `channel`, normalized to
  /// [0, 1] (0 = idle). Idle threshold is 0.05.
  virtual double OccupancyScore(int channel) const = 0;

  /// True if the occupant was identified as a CellFi/LTE cell (via PSS/SSS
  /// detection during network listen).
  virtual bool IsCellFiOccupied(int channel) const = 0;
};

/// Scanner for environments with no other transmitters.
class QuietScanner final : public NetworkListenScanner {
 public:
  double OccupancyScore(int) const override { return 0.0; }
  bool IsCellFiOccupied(int) const override { return false; }
};

struct ChannelSelectorConfig {
  GeoLocation location;
  /// AP index reported to the ambient trace sink / invariant checker so
  /// fleet campaigns can attribute events per AP.
  int instance = 0;
  /// Channel aggregation (paper Section 7, "future work"): lease up to
  /// this many CONTIGUOUS TV channels when available, widening the LTE
  /// carrier (two 6 MHz channels fit a 10 MHz carrier). All aggregated
  /// channels must be valid for both downlink and uplink; losing any of
  /// them vacates the whole block (conservative compliance).
  int max_aggregated_channels = 1;
  SimTime db_poll_interval = 1 * kSecond;
  SimTime vacate_delay = 1 * kSecond;          // radio-off latency after loss
  SimTime reboot_duration = 96 * kSecond;      // E40: 1 min 36 s
  SimTime client_reacquire = 56 * kSecond;     // cell search on the client
  double idle_occupancy_threshold = 0.05;
  // ETSI EN 301 598: transmissions must stop within 60 s of losing the
  // channel; db_poll_interval + vacate_delay must stay below this.
  SimTime etsi_vacate_budget = 60 * kSecond;
};

enum class ApRadioState { kOff, kRebooting, kOn };

/// One timeline entry for the Fig. 6 style report.
struct TimelineEvent {
  SimTime time = 0;
  std::string what;  // "ap_on", "ap_off", "client_connected", ...
  int channel = -1;
};

/// Channel-selection state machine for one access point.
class ChannelSelector {
 public:
  /// All referenced objects must outlive the selector.
  ChannelSelector(Simulator& sim, tvws::PawsSession& session,
                  const NetworkListenScanner& scanner, ChannelSelectorConfig config);

  /// Begin polling the database and bring the radio up on the best channel.
  void Start();

  /// Model an AP process crash: the radio dies instantly (no clean vacate),
  /// all in-RAM lease state is lost, every pending timer and in-flight
  /// query is abandoned, and the process restarts — full PAWS INIT
  /// re-registration — after `config.reboot_duration`. The caller is
  /// responsible for resetting the shared PawsSession (its state is also
  /// process RAM) via `PawsSession::Reset()`.
  void Crash();

  /// Times the process crashed (for reports).
  std::uint64_t crash_count() const { return crash_count_; }

  ApRadioState state() const { return state_; }

  /// Primary channel currently transmitted on (only when state == kOn).
  std::optional<ChannelAvailability> current_channel() const { return current_; }

  /// All channels in use (primary first); size > 1 under aggregation.
  const std::vector<ChannelAvailability>& current_channels() const { return aggregated_; }

  /// Total leased bandwidth in Hz (0 when off the air).
  double AggregatedBandwidthHz() const;

  /// Most restrictive EIRP cap across the aggregated channels, dBm
  /// (power optimization must respect every channel's limit).
  double MaxPowerDbm() const;

  /// True while attached clients may transmit (AP on + cell search done).
  bool clients_connected() const { return clients_connected_; }

  /// Ordered record of every state change.
  const std::vector<TimelineEvent>& timeline() const { return timeline_; }

  /// Times of every successful lease confirmation while on air (the
  /// instants the ETSI vacate deadline was re-armed).
  const std::vector<SimTime>& lease_confirms() const { return lease_confirms_; }

  /// Last successful lease confirmation (-1 before the first one).
  SimTime last_lease_confirm() const { return last_lease_confirm_; }

  /// Polls that ended without a usable response (database unreachable).
  std::uint64_t failed_polls() const { return failed_polls_; }

  /// Invoked on acquiring / losing a channel (optional).
  std::function<void(const ChannelAvailability&)> on_channel_acquired;
  std::function<void()> on_channel_lost;

 private:
  /// In-flight downlink + uplink query pair (one poll or reboot check).
  struct PollContext {
    std::optional<tvws::AvailSpectrumResponse> dl, ul;
    bool dl_done = false, ul_done = false;
    bool complete() const { return dl_done && ul_done; }
  };

  void TryInit();
  void Poll();
  void QueryBoth(const std::function<void(PollContext&)>& done);
  void OnPollComplete(PollContext& ctx);
  void ConfirmLease();
  void OnVacateDeadline();
  void ScheduleVacate(std::string reason);
  void RadioOff(const std::string& reason);
  void BeginReboot(const ChannelAvailability& target);
  void CompleteReboot(const ChannelAvailability& target, PollContext& ctx);
  void Record(const std::string& what, int channel);

  /// Rank candidates: idle first, then CellFi-occupied, then the rest;
  /// ties broken by lower occupancy, then lower channel number.
  std::optional<ChannelAvailability> PickBest(
      const std::vector<ChannelAvailability>& downlink,
      const std::vector<ChannelAvailability>& uplink) const;

  /// Channels valid for both directions (lease not expired).
  std::vector<ChannelAvailability> UsableBoth(
      const std::vector<ChannelAvailability>& downlink,
      const std::vector<ChannelAvailability>& uplink) const;

  /// Extend `primary` with contiguous usable channels up to the
  /// aggregation cap.
  std::vector<ChannelAvailability> BuildAggregate(
      const ChannelAvailability& primary,
      const std::vector<ChannelAvailability>& usable) const;

  Simulator& sim_;
  tvws::PawsSession& session_;
  const NetworkListenScanner& scanner_;
  ChannelSelectorConfig config_;

  ApRadioState state_ = ApRadioState::kOff;
  bool clients_connected_ = false;
  bool poll_in_flight_ = false;
  /// Bumped on every crash; callbacks captured before the crash carry the
  /// old value and become no-ops (a dead process's replies must not steer
  /// the restarted one).
  std::uint64_t generation_ = 0;
  std::uint64_t crash_count_ = 0;
  std::optional<ChannelAvailability> current_;
  std::vector<ChannelAvailability> aggregated_;
  std::vector<TimelineEvent> timeline_;
  std::vector<SimTime> lease_confirms_;
  SimTime last_lease_confirm_ = -1;
  std::uint64_t failed_polls_ = 0;
  EventId poll_event_;
  EventId pending_transition_;
  Timer init_retry_timer_;
  Timer deadline_timer_;  // fires at last confirm + budget - vacate_delay
  Timer vacate_timer_;    // models the radio-off latency
};

}  // namespace cellfi::core
