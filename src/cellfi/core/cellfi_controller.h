// CellfiController: wires one InterferenceManager per cell into a live
// LteNetwork.
//
// The controller is the glue the paper describes in Fig. 3: it consumes the
// network's PRACH observations and CQI reports (the only sensing CellFi
// allows itself — no X2, no inter-AP messages), builds each cell's
// EpochInputs once a second, and pushes the resulting subchannel mask into
// the standard scheduler. Measurement imperfections from Section 6.3
// (80 % interference-detection probability, 2 % false positives) are
// injected here, exactly as in the paper's ns-3 setup.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "cellfi/core/cqi_detector.h"
#include "cellfi/core/interference_manager.h"
#include "cellfi/core/prach_sensor.h"
#include "cellfi/lte/network.h"

namespace cellfi::core {

struct CellfiControllerConfig {
  InterferenceManagerConfig im;  // num_subchannels filled from the network
  CqiDetectorConfig detector;
  SimTime epoch = 1 * kSecond;
  /// Probability that real interference on a subchannel is detected in an
  /// epoch (paper Section 6.3.2: ~80 %). 1.0 = ideal sensing.
  double detection_probability = 0.8;
  /// Probability of a spurious detection per (client, subchannel) epoch
  /// (paper: <2 %).
  double false_positive_rate = 0.02;
  std::uint64_t seed = 1;
};

class CellfiController {
 public:
  /// Attaches to `net`'s observer hooks. Call before net.Start().
  CellfiController(Simulator& sim, lte::LteNetwork& net, CellfiControllerConfig config);

  /// Schedule the per-cell epochs (randomly staggered: APs need no mutual
  /// synchronization).
  void Start();

  const InterferenceManager& manager(lte::CellId cell) const {
    return *managers_[static_cast<std::size_t>(cell)];
  }
  const PrachSensor& sensor(lte::CellId cell) const {
    return sensors_[static_cast<std::size_t>(cell)];
  }

  /// Aggregate traffic tier (DESIGN.md §18): `observer` currently hears
  /// `count` synthetic background clients attached to `serving`. Counts
  /// flow into the observer's PrachSensor with the standard one-epoch
  /// expiry, so NP_i / N_i bookkeeping is exact: each injected client is
  /// one contender, own clients are those with serving == observer.
  void SetAggregateContenders(lte::CellId observer, lte::CellId serving, int count);

  /// Total bucket-exhaustion hops across all cells (convergence metric).
  std::uint64_t total_hops() const;

  /// Cells that hopped in their most recent epoch (non-convergence probe).
  int cells_hopping_recently() const;

 private:
  void RunEpoch(lte::CellId cell);
  EpochInputs BuildInputs(lte::CellId cell);

  Simulator& sim_;
  lte::LteNetwork& net_;
  CellfiControllerConfig config_;
  Rng rng_;
  std::vector<std::unique_ptr<InterferenceManager>> managers_;
  std::vector<PrachSensor> sensors_;
  /// Detector per (cell, ue): fed from that cell's CQI reports.
  std::vector<std::unordered_map<lte::UeId, CqiInterferenceDetector>> detectors_;
  /// Per-cell, per-subchannel epochs since last detection (re-use packing).
  std::vector<std::vector<int>> free_streak_;
  std::vector<int> last_epoch_hops_;
  int num_subchannels_ = 0;
};

}  // namespace cellfi::core
