#include "cellfi/core/cellfi_controller.h"

#include <cassert>

#include "cellfi/chaos/invariants.h"
#include "cellfi/obs/trace.h"
#include "cellfi/phy/cqi_mcs.h"

namespace cellfi::core {

using lte::CellId;
using lte::UeId;

CellfiController::CellfiController(Simulator& sim, lte::LteNetwork& net,
                                   CellfiControllerConfig config)
    : sim_(sim), net_(net), config_(config), rng_(config.seed) {
  assert(net.cell_count() > 0);
  num_subchannels_ = net.cell(0).grid().num_subchannels();
  config_.im.num_subchannels = num_subchannels_;

  for (std::size_t c = 0; c < net.cell_count(); ++c) {
    InterferenceManagerConfig im_config = config_.im;
    im_config.instance = static_cast<int>(c);
    managers_.push_back(std::make_unique<InterferenceManager>(
        im_config, config_.seed ^ (0x1000 + c)));
    sensors_.emplace_back(static_cast<CellId>(c), config_.epoch);
    detectors_.emplace_back();
    free_streak_.emplace_back(static_cast<std::size_t>(num_subchannels_), 0);
    last_epoch_hops_.push_back(0);
  }

  net_.on_prach = [this](const lte::PrachObservation& o) {
    sensors_[static_cast<std::size_t>(o.observer)].OnPreamble(o.ue, o.serving, sim_.Now());
  };
  net_.on_cqi_report = [this](CellId cell, UeId ue, const CqiMeasurement& m) {
    auto& per_cell = detectors_[static_cast<std::size_t>(cell)];
    auto it = per_cell.find(ue);
    if (it == per_cell.end()) {
      it = per_cell
               .emplace(ue, CqiInterferenceDetector(num_subchannels_, config_.detector))
               .first;
    }
    it->second.AddReport(m.subband_cqi);
  };
}

void CellfiController::SetAggregateContenders(CellId observer, CellId serving,
                                              int count) {
  sensors_[static_cast<std::size_t>(observer)].SetAggregateContenders(
      serving, count, sim_.Now());
}

void CellfiController::Start() {
  for (std::size_t c = 0; c < managers_.size(); ++c) {
    const CellId cell = static_cast<CellId>(c);
    // Epochs need no cross-AP synchronization: stagger randomly.
    const SimTime offset = rng_.UniformInt(100, 999) * kMillisecond;
    sim_.ScheduleAfter(offset, [this, cell] {
      RunEpoch(cell);
      sim_.SchedulePeriodic(config_.epoch, [this, cell] { RunEpoch(cell); });
    });
  }
}

EpochInputs CellfiController::BuildInputs(CellId cell) {
  EpochInputs in;
  const SimTime now = sim_.Now();
  const PrachSensor& sensor = sensors_[static_cast<std::size_t>(cell)];
  in.own_active_clients = sensor.OwnActive(now);
  in.estimated_contenders = sensor.EstimateContenders(now);
  in.utility.assign(static_cast<std::size_t>(num_subchannels_), 0.0);
  in.interference_pressure.assign(static_cast<std::size_t>(num_subchannels_), 0.0);
  in.free_for_reuse.assign(static_cast<std::size_t>(num_subchannels_), false);

  lte::EnodeB& enb = net_.cell(cell);
  const auto& stats = enb.schedule_stats();
  const double dl_subframes = std::max(stats.dl_subframes, 1);
  auto& per_cell_detectors = detectors_[static_cast<std::size_t>(cell)];

  std::vector<bool> any_detection(static_cast<std::size_t>(num_subchannels_), false);

  for (const auto& ue_ptr : enb.ues()) {
    const UeId ue = ue_ptr->id();
    // Scheduled-time fraction per subchannel for this client.
    const auto sched_it = stats.ue_subchannel_subframes.find(ue);
    double total_sched_frac = 0.0;
    if (sched_it != stats.ue_subchannel_subframes.end()) {
      for (int count : sched_it->second) {
        total_sched_frac += static_cast<double>(count) / dl_subframes;
      }
    }

    const auto det_it = per_cell_detectors.find(ue);
    for (int s = 0; s < num_subchannels_; ++s) {
      // Utility: achievable throughput from the last CQI reading, scaled by
      // how much this client was actually scheduled (Section 5.3).
      in.utility[static_cast<std::size_t>(s)] +=
          CqiEfficiency(ue_ptr->SubbandCqi(s)) * std::max(total_sched_frac, 0.05);

      // Interference pressure with the measured detector imperfections.
      // Only clients actually scheduled on the subchannel contribute
      // (Section 5.3: the decrement is frac_j, their scheduled-time share).
      const bool truly_detected =
          det_it != per_cell_detectors.end() && det_it->second.Detected(s);
      if (truly_detected) any_detection[static_cast<std::size_t>(s)] = true;
      double frac_j = 0.0;
      if (sched_it != stats.ue_subchannel_subframes.end()) {
        frac_j = static_cast<double>(sched_it->second[static_cast<std::size_t>(s)]) /
                 dl_subframes;
      }
      if (frac_j <= 0.0) continue;
      const bool effective = truly_detected
                                 ? rng_.Bernoulli(config_.detection_probability)
                                 : rng_.Bernoulli(config_.false_positive_rate);
      if (effective) in.interference_pressure[static_cast<std::size_t>(s)] += frac_j;
    }
  }

  // Channel re-use: a subchannel is a packing target after being observed
  // free for `reuse_free_epochs` contiguous epochs by every client.
  auto& streaks = free_streak_[static_cast<std::size_t>(cell)];
  for (int s = 0; s < num_subchannels_; ++s) {
    if (any_detection[static_cast<std::size_t>(s)]) {
      streaks[static_cast<std::size_t>(s)] = 0;
    } else {
      ++streaks[static_cast<std::size_t>(s)];
    }
    in.free_for_reuse[static_cast<std::size_t>(s)] =
        streaks[static_cast<std::size_t>(s)] >= config_.im.reuse_free_epochs;
  }

  if (chaos::InvariantChecker* ic = chaos::ActiveChecker()) {
    // Scheduled-time shares per subchannel must sum to at most one across
    // the cell's clients: a sum above one means the epoch scheduled
    // overlapping grants. Accumulate in UE-list order (deterministic), not
    // map order.
    std::vector<double> share(static_cast<std::size_t>(num_subchannels_), 0.0);
    for (const auto& ue_ptr : enb.ues()) {
      const auto it = stats.ue_subchannel_subframes.find(ue_ptr->id());
      if (it == stats.ue_subchannel_subframes.end()) continue;
      for (int s = 0; s < num_subchannels_; ++s) {
        share[static_cast<std::size_t>(s)] +=
            static_cast<double>(it->second[static_cast<std::size_t>(s)]) / dl_subframes;
      }
    }
    for (int s = 0; s < num_subchannels_; ++s) {
      ic->CheckShareSum(static_cast<int>(cell), s, share[static_cast<std::size_t>(s)],
                        now);
    }
  }

  enb.ResetScheduleStats();
  return in;
}

void CellfiController::RunEpoch(CellId cell) {
  const EpochInputs in = BuildInputs(cell);
  if (obs::TraceSink* tr = obs::ActiveTrace()) {
    tr->Emit(sim_.Now(), "prach", "contention",
             {{"cell", cell},
              {"own", in.own_active_clients},
              {"contenders", in.estimated_contenders}});
  }
  InterferenceManager& im = *managers_[static_cast<std::size_t>(cell)];
  std::vector<bool> mask = im.OnEpoch(in);
  last_epoch_hops_[static_cast<std::size_t>(cell)] = im.last_stats().hops;
  if (im.owned_count() == 0) {
    // An AP with no sensed clients yet keeps the full mask so that newly
    // attaching clients can be served; shares kick in once PRACH estimates
    // exist.
    mask.assign(static_cast<std::size_t>(num_subchannels_), true);
  }
  net_.SetAllowedMask(cell, std::move(mask));
}

std::uint64_t CellfiController::total_hops() const {
  std::uint64_t total = 0;
  for (const auto& m : managers_) total += m->total_hops();
  return total;
}

int CellfiController::cells_hopping_recently() const {
  int n = 0;
  for (int hops : last_epoch_hops_) {
    if (hops > 0) ++n;
  }
  return n;
}

}  // namespace cellfi::core
