#include "cellfi/core/channel_selector.h"

#include <algorithm>
#include <cassert>

#include "cellfi/chaos/invariants.h"
#include "cellfi/obs/trace.h"

namespace cellfi::core {

ChannelSelector::ChannelSelector(Simulator& sim, tvws::PawsSession& session,
                                 const NetworkListenScanner& scanner,
                                 ChannelSelectorConfig config)
    : sim_(sim), session_(session), scanner_(scanner), config_(config),
      init_retry_timer_(sim), deadline_timer_(sim), vacate_timer_(sim) {
  assert(config_.db_poll_interval + config_.vacate_delay <= config_.etsi_vacate_budget);
}

void ChannelSelector::Start() {
  Record("selector_started", -1);
  // Surface database-session health transitions on the timeline so outage
  // reports show when the AP entered/left the lease-grace window.
  session_.on_state_change = [this](tvws::SessionState s) {
    Record(std::string("db_session_") + tvws::SessionStateName(s),
           current_ ? current_->channel.number : -1);
  };
  TryInit();
}

void ChannelSelector::TryInit() {
  // PAWS INIT handshake: required before the database answers spectrum
  // queries (RFC 7545); also tells us the regulatory ruleset in force.
  session_.Init(config_.location, [this, gen = generation_](
                                      std::optional<std::string> ruleset) {
    if (gen != generation_) return;  // process crashed while registering
    if (!ruleset) {
      // Registration failed (database unreachable); keep trying at the
      // poll cadence — nothing transmits until the handshake succeeds.
      Record("init_failed", -1);
      init_retry_timer_.Arm(config_.db_poll_interval, [this] { TryInit(); });
      return;
    }
    Record("registered_" + *ruleset, -1);
    Poll();
    poll_event_ = sim_.SchedulePeriodic(config_.db_poll_interval, [this] { Poll(); });
  });
}

void ChannelSelector::Record(const std::string& what, int channel) {
  timeline_.push_back({sim_.Now(), what, channel});
  if (obs::TraceSink* tr = obs::ActiveTrace()) {
    tr->Emit(sim_.Now(), "channel_selector", what, {{"channel", channel}});
  }
}

void ChannelSelector::QueryBoth(const std::function<void(PollContext&)>& done) {
  // The paper queries downlink and uplink availability independently
  // (master device for the AP, generic slave parameters for all clients)
  // and uses a channel valid for both. Both queries run concurrently.
  auto ctx = std::make_shared<PollContext>();
  // Both closures carry the generation at query time: replies addressed to
  // a process incarnation that has since crashed are dead letters.
  const std::uint64_t gen = generation_;
  session_.GetSpectrum(config_.location, /*master=*/true,
                       [this, gen, ctx, done](std::optional<tvws::AvailSpectrumResponse> dl) {
                         if (gen != generation_) return;
                         ctx->dl = std::move(dl);
                         ctx->dl_done = true;
                         if (ctx->complete()) done(*ctx);
                       });
  session_.GetSpectrum(config_.location, /*master=*/false,
                       [this, gen, ctx, done](std::optional<tvws::AvailSpectrumResponse> ul) {
                         if (gen != generation_) return;
                         ctx->ul = std::move(ul);
                         ctx->ul_done = true;
                         if (ctx->complete()) done(*ctx);
                       });
}

void ChannelSelector::Poll() {
  if (poll_in_flight_) return;  // previous poll still retrying; don't pile up
  if (state_ == ApRadioState::kRebooting) return;  // revalidated at reboot end
  poll_in_flight_ = true;
  QueryBoth([this](PollContext& ctx) { OnPollComplete(ctx); });
}

void ChannelSelector::OnPollComplete(PollContext& ctx) {
  poll_in_flight_ = false;
  const auto& dl = ctx.dl;
  const auto& ul = ctx.ul;
  if (!dl || !ul) {
    // Database unreachable even after the session's retries. While on air
    // we stay inside the lease-grace window: the vacate deadline armed at
    // the last successful confirmation still guarantees ETSI compliance.
    ++failed_polls_;
    return;
  }

  // Every channel of the aggregate must stay leased in both directions.
  bool current_still_valid = current_.has_value();
  if (current_still_valid) {
    for (const ChannelAvailability& used : aggregated_) {
      const bool dl_ok = std::any_of(dl->channels.begin(), dl->channels.end(),
                                     [&](const ChannelAvailability& a) {
                                       return a.channel == used.channel &&
                                              a.lease_expiry > sim_.Now();
                                     });
      const bool ul_ok = std::any_of(ul->channels.begin(), ul->channels.end(),
                                     [&](const ChannelAvailability& a) {
                                       return a.channel == used.channel;
                                     });
      if (!dl_ok || !ul_ok) {
        current_still_valid = false;
        break;
      }
    }
  }

  switch (state_) {
    case ApRadioState::kOn:
      if (!current_still_valid) {
        // Lease lost: stop transmitting. Clients stop with the AP because
        // uplink needs per-transmission grants (paper Section 4.2).
        deadline_timer_.Cancel();
        ScheduleVacate("lease_lost");
      } else {
        // Stay compliant: refresh the lease bookkeeping and re-arm the
        // vacate deadline from this confirmation.
        current_->lease_expiry = std::max(current_->lease_expiry, sim_.Now());
        ConfirmLease();
      }
      break;
    case ApRadioState::kOff: {
      const auto best = PickBest(dl->channels, ul->channels);
      if (best.has_value()) BeginReboot(*best);
      break;
    }
    case ApRadioState::kRebooting:
      break;  // finish the reboot first; validity is rechecked after
  }
}

void ChannelSelector::ConfirmLease() {
  last_lease_confirm_ = sim_.Now();
  lease_confirms_.push_back(last_lease_confirm_);
  if (obs::TraceSink* tr = obs::ActiveTrace()) {
    // Every confirmation re-arms the ETSI clock: a later `vacate_fired`
    // must sit within budget of the latest preceding `vacate_armed`.
    tr->Emit(sim_.Now(), "channel_selector", "vacate_armed",
             {{"channel", current_ ? current_->channel.number : -1},
              {"deadline_us",
               (sim_.Now() + config_.etsi_vacate_budget) / kMicrosecond}});
  }
  // Hard ETSI deadline: if no further confirmation arrives, the radio-off
  // command fires early enough that transmissions stop at exactly
  // last confirm + budget, regardless of poll cadence or retry state.
  deadline_timer_.Arm(config_.etsi_vacate_budget - config_.vacate_delay,
                      [this] { OnVacateDeadline(); });
}

void ChannelSelector::OnVacateDeadline() {
  if (state_ != ApRadioState::kOn) return;
  Record("vacate_deadline_reached", current_ ? current_->channel.number : -1);
  ScheduleVacate("lease_confirmation_overdue");
}

void ChannelSelector::ScheduleVacate(std::string reason) {
  if (vacate_timer_.armed()) return;  // a vacate is already committed
  vacate_timer_.Arm(config_.vacate_delay,
                    [this, reason = std::move(reason)] { RadioOff(reason); });
}

void ChannelSelector::RadioOff(const std::string& reason) {
  if (state_ == ApRadioState::kOff) return;
  if (obs::TraceSink* tr = obs::ActiveTrace()) {
    tr->Emit(sim_.Now(), "channel_selector", "vacate_fired",
             {{"channel", current_ ? current_->channel.number : -1},
              {"reason", reason}});
  }
  state_ = ApRadioState::kOff;
  if (clients_connected_) {
    clients_connected_ = false;
    Record("client_stopped", current_ ? current_->channel.number : -1);
  }
  Record(reason, current_ ? current_->channel.number : -1);
  Record("ap_off", current_ ? current_->channel.number : -1);
  if (chaos::InvariantChecker* ic = chaos::ActiveChecker()) {
    ic->OnApOffAir(config_.instance, sim_.Now());
  }
  current_.reset();
  aggregated_.clear();
  deadline_timer_.Cancel();
  vacate_timer_.Cancel();
  sim_.Cancel(pending_transition_);
  pending_transition_ = EventId{};
  if (on_channel_lost) on_channel_lost();
}

void ChannelSelector::Crash() {
  ++generation_;
  ++crash_count_;
  const int channel = current_ ? current_->channel.number : -1;
  const bool was_on = state_ == ApRadioState::kOn;
  // The process dies mid-instruction: the radio is simply gone, with none
  // of the clean-vacate bookkeeping. Off air is off air, though — a dead
  // transmitter cannot violate the vacate budget.
  Record("ap_crash", channel);
  if (chaos::InvariantChecker* ic = chaos::ActiveChecker()) {
    ic->OnApOffAir(config_.instance, sim_.Now());
  }
  state_ = ApRadioState::kOff;
  clients_connected_ = false;
  poll_in_flight_ = false;
  current_.reset();
  aggregated_.clear();
  deadline_timer_.Cancel();
  vacate_timer_.Cancel();
  init_retry_timer_.Cancel();
  sim_.Cancel(poll_event_);
  poll_event_ = EventId{};
  sim_.Cancel(pending_transition_);
  pending_transition_ = EventId{};
  if (was_on && on_channel_lost) on_channel_lost();
  // Process restart: the lease table is gone, so the new incarnation goes
  // through the full INIT handshake again. Every AP of a fleet crashing at
  // once turns this into a re-registration storm against the database.
  pending_transition_ =
      sim_.ScheduleAfter(config_.reboot_duration, [this, gen = generation_] {
        if (gen != generation_) return;  // crashed again while down
        Record("ap_restarted", -1);
        TryInit();
      });
}

void ChannelSelector::BeginReboot(const ChannelAvailability& target) {
  state_ = ApRadioState::kRebooting;
  Record("ap_rebooting", target.channel.number);
  pending_transition_ = sim_.ScheduleAfter(config_.reboot_duration, [this, target] {
    // Never go on air on stale data: the authorization that started this
    // reboot is reboot_duration old (> ETSI budget). Re-validate with a
    // fresh exchange; the database may be down or the lease gone.
    QueryBoth([this, target](PollContext& ctx) { CompleteReboot(target, ctx); });
  });
}

void ChannelSelector::CompleteReboot(const ChannelAvailability& target,
                                     PollContext& ctx) {
  if (state_ != ApRadioState::kRebooting) return;
  const auto& dl = ctx.dl;
  const auto& ul = ctx.ul;
  if (!dl || !ul) {
    state_ = ApRadioState::kOff;
    Record("reboot_abandoned_db_unreachable", target.channel.number);
    return;
  }
  const auto fresh = std::find_if(dl->channels.begin(), dl->channels.end(),
                                  [&](const ChannelAvailability& a) {
                                    return a.channel == target.channel &&
                                           a.lease_expiry > sim_.Now();
                                  });
  const bool ul_ok = std::any_of(ul->channels.begin(), ul->channels.end(),
                                 [&](const ChannelAvailability& a) {
                                   return a.channel == target.channel;
                                 });
  if (fresh == dl->channels.end() || !ul_ok) {
    state_ = ApRadioState::kOff;
    Record("reboot_abandoned_lease_expired", target.channel.number);
    return;
  }

  state_ = ApRadioState::kOn;
  current_ = *fresh;
  Record("ap_on", fresh->channel.number);
  if (chaos::InvariantChecker* ic = chaos::ActiveChecker()) {
    ic->OnApOnAir(config_.instance, fresh->channel.number, sim_.Now());
  }
  ConfirmLease();
  // Derive the aggregate from the same fresh query (leases may have moved
  // during the reboot).
  aggregated_ = {*fresh};
  if (config_.max_aggregated_channels > 1) {
    aggregated_ = BuildAggregate(*fresh, UsableBoth(dl->channels, ul->channels));
    if (aggregated_.size() > 1) {
      Record("aggregated_" + std::to_string(aggregated_.size()) + "_channels",
             fresh->channel.number);
    }
  }
  // Notify the database of actual use (SPECTRUM_USE_NOTIFY).
  for (const ChannelAvailability& used : aggregated_) {
    session_.NotifyUse(config_.location, used);
  }
  if (on_channel_acquired) on_channel_acquired(*fresh);
  pending_transition_ = sim_.ScheduleAfter(config_.client_reacquire, [this] {
    if (state_ == ApRadioState::kOn) {
      clients_connected_ = true;
      Record("client_connected", current_ ? current_->channel.number : -1);
    }
  });
}

double ChannelSelector::AggregatedBandwidthHz() const {
  double total = 0.0;
  for (const ChannelAvailability& a : aggregated_) {
    total += tvws::TvChannelWidthHz(a.channel.regulatory);
  }
  return total;
}

double ChannelSelector::MaxPowerDbm() const {
  double cap = 1e9;
  for (const ChannelAvailability& a : aggregated_) cap = std::min(cap, a.max_eirp_dbm);
  return aggregated_.empty() ? 0.0 : cap;
}

std::vector<ChannelAvailability> ChannelSelector::UsableBoth(
    const std::vector<ChannelAvailability>& downlink,
    const std::vector<ChannelAvailability>& uplink) const {
  std::vector<ChannelAvailability> usable;
  for (const ChannelAvailability& a : downlink) {
    if (a.lease_expiry <= sim_.Now()) continue;
    const bool in_uplink =
        std::any_of(uplink.begin(), uplink.end(), [&](const ChannelAvailability& u) {
          return u.channel == a.channel;
        });
    if (in_uplink) usable.push_back(a);
  }
  return usable;
}

std::vector<ChannelAvailability> ChannelSelector::BuildAggregate(
    const ChannelAvailability& primary,
    const std::vector<ChannelAvailability>& usable) const {
  std::vector<ChannelAvailability> block{primary};
  auto find = [&](int number) -> const ChannelAvailability* {
    for (const ChannelAvailability& a : usable) {
      if (a.channel.number == number &&
          scanner_.OccupancyScore(number) <= config_.idle_occupancy_threshold) {
        return &a;
      }
    }
    return nullptr;
  };
  // Grow upward then downward from the primary, keeping the block
  // contiguous in channel numbers.
  int up = primary.channel.number + 1;
  int down = primary.channel.number - 1;
  while (static_cast<int>(block.size()) < config_.max_aggregated_channels) {
    if (const ChannelAvailability* a = find(up)) {
      block.push_back(*a);
      ++up;
      continue;
    }
    if (const ChannelAvailability* a = find(down)) {
      block.push_back(*a);
      --down;
      continue;
    }
    break;
  }
  return block;
}

std::optional<ChannelAvailability> ChannelSelector::PickBest(
    const std::vector<ChannelAvailability>& downlink,
    const std::vector<ChannelAvailability>& uplink) const {
  std::optional<ChannelAvailability> best;
  int best_rank = 3;
  double best_occupancy = 2.0;
  for (const ChannelAvailability& a : downlink) {
    if (a.lease_expiry <= sim_.Now()) continue;
    const bool in_uplink =
        std::any_of(uplink.begin(), uplink.end(), [&](const ChannelAvailability& u) {
          return u.channel == a.channel;
        });
    if (!in_uplink) continue;

    const double occupancy = scanner_.OccupancyScore(a.channel.number);
    int rank;
    if (occupancy <= config_.idle_occupancy_threshold) {
      rank = 0;  // idle
    } else if (scanner_.IsCellFiOccupied(a.channel.number)) {
      rank = 1;  // sharable with CellFi interference management
    } else {
      rank = 2;  // occupied by another technology
    }
    const bool better =
        rank < best_rank ||
        (rank == best_rank &&
         (occupancy < best_occupancy ||
          (occupancy == best_occupancy && best.has_value() &&
           a.channel.number < best->channel.number)));
    if (!best.has_value() || better) {
      best = a;
      best_rank = rank;
      best_occupancy = occupancy;
    }
  }
  return best;
}

}  // namespace cellfi::core
