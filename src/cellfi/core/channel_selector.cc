#include "cellfi/core/channel_selector.h"

#include <algorithm>
#include <cassert>

namespace cellfi::core {

ChannelSelector::ChannelSelector(Simulator& sim, tvws::PawsClient& client,
                                 const tvws::PawsServer& server,
                                 const NetworkListenScanner& scanner,
                                 ChannelSelectorConfig config)
    : sim_(sim), client_(client), server_(server), scanner_(scanner), config_(config) {
  assert(config_.db_poll_interval + config_.vacate_delay <= config_.etsi_vacate_budget);
}

void ChannelSelector::Start() {
  Record("selector_started", -1);
  // PAWS INIT handshake: required before the database answers spectrum
  // queries (RFC 7545); also tells us the regulatory ruleset in force.
  const auto init_resp =
      server_.Handle(client_.BuildInitRequest(config_.location), sim_.Now());
  if (const auto ruleset = client_.ParseInitResponse(init_resp); ruleset.has_value()) {
    Record("registered_" + *ruleset, -1);
  }
  Poll();
  poll_event_ = sim_.SchedulePeriodic(config_.db_poll_interval, [this] { Poll(); });
}

void ChannelSelector::Record(const std::string& what, int channel) {
  timeline_.push_back({sim_.Now(), what, channel});
}

void ChannelSelector::Poll() {
  // The paper queries downlink and uplink availability independently
  // (master device for the AP, generic slave parameters for all clients)
  // and uses a channel valid for both.
  const auto dl_body =
      server_.Handle(client_.BuildAvailSpectrumRequest(config_.location, /*master=*/true),
                     sim_.Now());
  const auto ul_body =
      server_.Handle(client_.BuildAvailSpectrumRequest(config_.location, /*master=*/false),
                     sim_.Now());
  const auto dl = client_.ParseAvailSpectrumResponse(dl_body);
  const auto ul = client_.ParseAvailSpectrumResponse(ul_body);

  // Every channel of the aggregate must stay leased in both directions.
  bool current_still_valid = current_.has_value() && dl.has_value() && ul.has_value();
  if (current_still_valid) {
    for (const ChannelAvailability& used : aggregated_) {
      const bool dl_ok = std::any_of(dl->channels.begin(), dl->channels.end(),
                                     [&](const ChannelAvailability& a) {
                                       return a.channel == used.channel &&
                                              a.lease_expiry > sim_.Now();
                                     });
      const bool ul_ok = std::any_of(ul->channels.begin(), ul->channels.end(),
                                     [&](const ChannelAvailability& a) {
                                       return a.channel == used.channel;
                                     });
      if (!dl_ok || !ul_ok) {
        current_still_valid = false;
        break;
      }
    }
  }

  switch (state_) {
    case ApRadioState::kOn:
      if (!current_still_valid) {
        // Lease lost: stop transmitting. Clients stop with the AP because
        // uplink needs per-transmission grants (paper Section 4.2).
        sim_.ScheduleAfter(config_.vacate_delay, [this] { RadioOff("lease_lost"); });
      } else {
        // Stay compliant: refresh the lease bookkeeping.
        current_->lease_expiry = std::max(current_->lease_expiry, sim_.Now());
      }
      break;
    case ApRadioState::kOff: {
      if (!dl || !ul) break;
      const auto best = PickBest(dl->channels, ul->channels);
      if (best.has_value()) BeginReboot(*best);
      break;
    }
    case ApRadioState::kRebooting:
      break;  // finish the reboot first; validity is rechecked after
  }
}

void ChannelSelector::RadioOff(const char* reason) {
  if (state_ == ApRadioState::kOff) return;
  state_ = ApRadioState::kOff;
  if (clients_connected_) {
    clients_connected_ = false;
    Record("client_stopped", current_ ? current_->channel.number : -1);
  }
  Record(reason, current_ ? current_->channel.number : -1);
  Record("ap_off", current_ ? current_->channel.number : -1);
  current_.reset();
  aggregated_.clear();
  sim_.Cancel(pending_transition_);
  pending_transition_ = EventId{};
  if (on_channel_lost) on_channel_lost();
}

void ChannelSelector::BeginReboot(const ChannelAvailability& target) {
  state_ = ApRadioState::kRebooting;
  Record("ap_rebooting", target.channel.number);
  pending_transition_ = sim_.ScheduleAfter(config_.reboot_duration, [this, target] {
    // Re-validate the lease after the reboot (it may have expired).
    if (target.lease_expiry <= sim_.Now()) {
      state_ = ApRadioState::kOff;
      Record("reboot_abandoned_lease_expired", target.channel.number);
      return;
    }
    state_ = ApRadioState::kOn;
    current_ = target;
    Record("ap_on", target.channel.number);
    // Re-derive the aggregate from a fresh query (leases may have moved
    // during the reboot).
    aggregated_ = {target};
    const auto dl_body = server_.Handle(
        client_.BuildAvailSpectrumRequest(config_.location, /*master=*/true), sim_.Now());
    const auto ul_body = server_.Handle(
        client_.BuildAvailSpectrumRequest(config_.location, /*master=*/false), sim_.Now());
    const auto dl = client_.ParseAvailSpectrumResponse(dl_body);
    const auto ul = client_.ParseAvailSpectrumResponse(ul_body);
    if (dl && ul && config_.max_aggregated_channels > 1) {
      aggregated_ = BuildAggregate(target, UsableBoth(dl->channels, ul->channels));
      if (aggregated_.size() > 1) {
        Record("aggregated_" + std::to_string(aggregated_.size()) + "_channels",
               target.channel.number);
      }
    }
    // Notify the database of actual use (SPECTRUM_USE_NOTIFY).
    for (const ChannelAvailability& used : aggregated_) {
      server_.Handle(client_.BuildSpectrumUseNotify(config_.location, used), sim_.Now());
    }
    if (on_channel_acquired) on_channel_acquired(target);
    pending_transition_ = sim_.ScheduleAfter(config_.client_reacquire, [this] {
      if (state_ == ApRadioState::kOn) {
        clients_connected_ = true;
        Record("client_connected", current_ ? current_->channel.number : -1);
      }
    });
  });
}

double ChannelSelector::AggregatedBandwidthHz() const {
  double total = 0.0;
  for (const ChannelAvailability& a : aggregated_) {
    total += tvws::TvChannelWidthHz(a.channel.regulatory);
  }
  return total;
}

double ChannelSelector::MaxPowerDbm() const {
  double cap = 1e9;
  for (const ChannelAvailability& a : aggregated_) cap = std::min(cap, a.max_eirp_dbm);
  return aggregated_.empty() ? 0.0 : cap;
}

std::vector<ChannelAvailability> ChannelSelector::UsableBoth(
    const std::vector<ChannelAvailability>& downlink,
    const std::vector<ChannelAvailability>& uplink) const {
  std::vector<ChannelAvailability> usable;
  for (const ChannelAvailability& a : downlink) {
    if (a.lease_expiry <= sim_.Now()) continue;
    const bool in_uplink =
        std::any_of(uplink.begin(), uplink.end(), [&](const ChannelAvailability& u) {
          return u.channel == a.channel;
        });
    if (in_uplink) usable.push_back(a);
  }
  return usable;
}

std::vector<ChannelAvailability> ChannelSelector::BuildAggregate(
    const ChannelAvailability& primary,
    const std::vector<ChannelAvailability>& usable) const {
  std::vector<ChannelAvailability> block{primary};
  auto find = [&](int number) -> const ChannelAvailability* {
    for (const ChannelAvailability& a : usable) {
      if (a.channel.number == number &&
          scanner_.OccupancyScore(number) <= config_.idle_occupancy_threshold) {
        return &a;
      }
    }
    return nullptr;
  };
  // Grow upward then downward from the primary, keeping the block
  // contiguous in channel numbers.
  int up = primary.channel.number + 1;
  int down = primary.channel.number - 1;
  while (static_cast<int>(block.size()) < config_.max_aggregated_channels) {
    if (const ChannelAvailability* a = find(up)) {
      block.push_back(*a);
      ++up;
      continue;
    }
    if (const ChannelAvailability* a = find(down)) {
      block.push_back(*a);
      --down;
      continue;
    }
    break;
  }
  return block;
}

std::optional<ChannelAvailability> ChannelSelector::PickBest(
    const std::vector<ChannelAvailability>& downlink,
    const std::vector<ChannelAvailability>& uplink) const {
  std::optional<ChannelAvailability> best;
  int best_rank = 3;
  double best_occupancy = 2.0;
  for (const ChannelAvailability& a : downlink) {
    if (a.lease_expiry <= sim_.Now()) continue;
    const bool in_uplink =
        std::any_of(uplink.begin(), uplink.end(), [&](const ChannelAvailability& u) {
          return u.channel == a.channel;
        });
    if (!in_uplink) continue;

    const double occupancy = scanner_.OccupancyScore(a.channel.number);
    int rank;
    if (occupancy <= config_.idle_occupancy_threshold) {
      rank = 0;  // idle
    } else if (scanner_.IsCellFiOccupied(a.channel.number)) {
      rank = 1;  // sharable with CellFi interference management
    } else {
      rank = 2;  // occupied by another technology
    }
    const bool better =
        rank < best_rank ||
        (rank == best_rank &&
         (occupancy < best_occupancy ||
          (occupancy == best_occupancy && best.has_value() &&
           a.channel.number < best->channel.number)));
    if (!best.has_value() || better) {
      best = a;
      best_rank = rank;
      best_occupancy = occupancy;
    }
  }
  return best;
}

}  // namespace cellfi::core
