// CellFi distributed interference management (paper Section 5).
//
// Once per epoch (1 s) each access point independently:
//   1. computes its conservative spectrum share S_i = N_i * S / NP_i
//      (distributed share calculation, Section 5.2),
//   2. updates the exponential "bucket" of each owned subchannel: for every
//      client that observed the subchannel as bad, the bucket drops by that
//      client's scheduled-time fraction (Section 5.3, "Bucket Updates"),
//   3. gives up subchannels whose bucket reached zero and hops to the
//      unowned subchannel with maximum utility (Section 5.3, "Subchannel
//      Hopping"), and
//   4. packs toward lower-index subchannels that have been sensed free for
//      a contiguous period (Section 5.3, "Channel re-use").
//
// The component is deliberately pure: all sensing arrives via EpochInputs,
// making it drivable by the live CellfiController, by unit tests, and by
// the Theorem-1 convergence bench.
#pragma once

#include <cstdint>
#include <vector>

#include "cellfi/common/rng.h"
#include "cellfi/common/time.h"

namespace cellfi::core {

struct InterferenceManagerConfig {
  int num_subchannels = 13;
  /// Mean of the exponential bucket distribution (paper: lambda = 10).
  double bucket_lambda = 10.0;
  /// Epochs a lower-index subchannel must look free before packing onto it.
  int reuse_free_epochs = 3;
  /// Enable the channel re-use packing heuristic.
  bool enable_reuse = true;
  /// Identity stamped on trace events (DESIGN.md §13); the controller sets
  /// it to the cell index. Purely observational.
  int instance = -1;
};

/// Sensing inputs for one epoch.
struct EpochInputs {
  int own_active_clients = 0;    // N_i (PRACH: own preambles)
  int estimated_contenders = 0;  // NP_i (PRACH: all preambles heard)
  /// Utility estimate per subchannel: sum over clients of achievable
  /// throughput from CQI, scaled by their scheduled-time share.
  std::vector<double> utility;
  /// Bucket pressure per subchannel: sum over clients that reported the
  /// subchannel bad of frac_j (their scheduled-time fraction on it).
  std::vector<double> interference_pressure;
  /// Subchannels sensed free for >= reuse_free_epochs contiguous epochs.
  std::vector<bool> free_for_reuse;
};

/// Per-epoch statistics (for convergence reporting, Fig. 9 discussion).
struct EpochStats {
  int share = 0;       // S_i this epoch
  int hops = 0;        // bucket-exhaustion hops
  int reuse_moves = 0; // packing moves
  int grew = 0;        // subchannels added to meet the share
  int shrank = 0;      // subchannels released (share decrease)
};

class InterferenceManager {
 public:
  InterferenceManager(InterferenceManagerConfig config, std::uint64_t seed);

  /// Run one epoch; returns the subchannel mask for the scheduler.
  const std::vector<bool>& OnEpoch(const EpochInputs& in);

  const std::vector<bool>& mask() const { return owned_; }
  int owned_count() const;
  double bucket(int s) const { return buckets_[static_cast<std::size_t>(s)]; }
  const EpochStats& last_stats() const { return stats_; }
  std::uint64_t total_hops() const { return total_hops_; }
  std::uint64_t epochs() const { return epochs_; }

  /// Target share for the given sensing counts (exposed for tests):
  /// S_i = N_i * S / NP_i, at least 1 when N_i > 0 (an AP with clients
  /// never fully silences itself), capped at S.
  int TargetShare(int own_clients, int contenders) const;

 private:
  void Acquire(int s);
  void Release(int s);
  /// Best unowned subchannel by utility (ties: random among best).
  int PickNewSubchannel(const std::vector<double>& utility);

  InterferenceManagerConfig config_;
  Rng rng_;
  std::vector<bool> owned_;
  std::vector<double> buckets_;
  EpochStats stats_;
  std::uint64_t total_hops_ = 0;
  std::uint64_t epochs_ = 0;
  int last_traced_share_ = -1;
};

}  // namespace cellfi::core
