// Abstract hopping game for Theorem 1 (paper Section 5.5).
//
// Vertices are access points with integer subchannel demands d_i on an
// interference graph G; M subchannels are shared. Each round, every node
// with unmet demand hops onto a uniformly random subchannel it senses free
// in its neighbourhood; the acquisition fails if another contender chose
// the same subchannel this round (clash) or the subchannel is faded
// (independent probability p). Theorem 1: under the demand-slack
// assumption (sum of neighbourhood demands <= (1-gamma) M), the game
// converges in O(M log n / ((1-p) gamma)) rounds w.h.p.
#pragma once

#include <cstdint>
#include <vector>

#include "cellfi/common/rng.h"

namespace cellfi::baseline {

/// Undirected interference graph as adjacency lists (symmetric).
using Graph = std::vector<std::vector<int>>;

struct HoppingGameConfig {
  int num_subchannels = 25;
  double fading_probability = 0.0;  // p in the theorem
  int max_rounds = 100'000;
};

struct HoppingGameResult {
  bool converged = false;
  int rounds = 0;  // rounds until every demand was met
  /// Final allocation: per node, owned subchannels.
  std::vector<std::vector<int>> allocation;
};

/// Validity check for the Demand Assumption: returns the largest gamma such
/// that every neighbourhood satisfies sum(d) <= (1-gamma) M, or a negative
/// value if the instance is infeasible under the assumption.
double DemandSlack(const Graph& graph, const std::vector<int>& demands,
                   int num_subchannels);

/// Run the game until convergence or max_rounds.
HoppingGameResult RunHoppingGame(const Graph& graph, const std::vector<int>& demands,
                                 const HoppingGameConfig& config, Rng& rng);

/// Random G(n, p) interference graph generator for benches/tests.
Graph RandomGraph(int nodes, double edge_probability, Rng& rng);

}  // namespace cellfi::baseline
