#include "cellfi/baseline/oracle_allocator.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace cellfi::baseline {

int OracleFairShare(const OracleInput& input, int cell) {
  const int own = input.clients_per_cell[static_cast<std::size_t>(cell)];
  if (own <= 0) return 0;
  int total = own;
  for (int n : input.conflicts[static_cast<std::size_t>(cell)]) {
    total += input.clients_per_cell[static_cast<std::size_t>(n)];
  }
  const int share = (own * input.num_subchannels) / std::max(total, 1);
  return std::clamp(share, 1, input.num_subchannels);
}

std::vector<std::vector<bool>> OracleAllocate(const OracleInput& input) {
  const int cells = static_cast<int>(input.clients_per_cell.size());
  const int s_total = input.num_subchannels;
  std::vector<std::vector<bool>> masks(
      static_cast<std::size_t>(cells),
      std::vector<bool>(static_cast<std::size_t>(s_total), false));

  // Greedy multicoloring: most-constrained (highest weighted degree) first.
  std::vector<int> order(static_cast<std::size_t>(cells));
  std::iota(order.begin(), order.end(), 0);
  auto degree = [&](int c) {
    int d = input.clients_per_cell[static_cast<std::size_t>(c)];
    for (int n : input.conflicts[static_cast<std::size_t>(c)]) {
      d += input.clients_per_cell[static_cast<std::size_t>(n)];
    }
    return d;
  };
  std::stable_sort(order.begin(), order.end(),
                   [&](int a, int b) { return degree(a) > degree(b); });

  for (int c : order) {
    const int share = OracleFairShare(input, c);
    if (share == 0) continue;
    // Subchannels already taken in this cell's neighbourhood.
    std::vector<bool> blocked(static_cast<std::size_t>(s_total), false);
    for (int n : input.conflicts[static_cast<std::size_t>(c)]) {
      for (int s = 0; s < s_total; ++s) {
        if (masks[static_cast<std::size_t>(n)][static_cast<std::size_t>(s)]) {
          blocked[static_cast<std::size_t>(s)] = true;
        }
      }
    }
    int granted = 0;
    for (int s = 0; s < s_total && granted < share; ++s) {
      if (blocked[static_cast<std::size_t>(s)]) continue;
      masks[static_cast<std::size_t>(c)][static_cast<std::size_t>(s)] = true;
      ++granted;
    }
  }

  // Spatial reuse: grow every mask into subchannels its neighbourhood
  // leaves idle (round-robin so growth stays fair).
  bool grew = true;
  while (grew) {
    grew = false;
    for (int c : order) {
      if (input.clients_per_cell[static_cast<std::size_t>(c)] <= 0) continue;
      for (int s = 0; s < s_total; ++s) {
        if (masks[static_cast<std::size_t>(c)][static_cast<std::size_t>(s)]) continue;
        bool neighbour_uses = false;
        for (int n : input.conflicts[static_cast<std::size_t>(c)]) {
          neighbour_uses |= masks[static_cast<std::size_t>(n)][static_cast<std::size_t>(s)];
        }
        if (!neighbour_uses) {
          masks[static_cast<std::size_t>(c)][static_cast<std::size_t>(s)] = true;
          grew = true;
          break;  // one per pass
        }
      }
    }
  }
  return masks;
}

}  // namespace cellfi::baseline
