// Centralized oracle subchannel allocation (the paper's upper-bound
// comparator, standing in for FERMI [20]).
//
// Unlike CellFi, the oracle sees the exact interference conflict graph and
// every cell's client count. It computes per-cell fair shares on each
// neighbourhood and assigns subchannels by greedy weighted multicoloring so
// that conflicting cells never share a subchannel, then hands out any
// subchannels left unused in a cell's neighbourhood (spatial reuse).
#pragma once

#include <vector>

namespace cellfi::baseline {

struct OracleInput {
  int num_subchannels = 13;
  /// Active clients per cell (weights).
  std::vector<int> clients_per_cell;
  /// conflicts[i] = cells that interfere with cell i (symmetric).
  std::vector<std::vector<int>> conflicts;
};

/// Per-cell subchannel masks. Guarantees: conflicting cells receive
/// disjoint masks; every cell with clients receives at least one
/// subchannel when its neighbourhood size permits.
std::vector<std::vector<bool>> OracleAllocate(const OracleInput& input);

/// Fair share of cell `i`: S * N_i / (N_i + sum of neighbour N_j),
/// at least 1 when the cell has clients.
int OracleFairShare(const OracleInput& input, int cell);

}  // namespace cellfi::baseline
