#include "cellfi/baseline/hopping_game.h"

#include <algorithm>
#include <cassert>

#include "cellfi/obs/trace.h"

namespace cellfi::baseline {

double DemandSlack(const Graph& graph, const std::vector<int>& demands,
                   int num_subchannels) {
  double gamma = 1.0;
  for (std::size_t v = 0; v < graph.size(); ++v) {
    int sum = demands[v];
    for (int n : graph[v]) sum += demands[static_cast<std::size_t>(n)];
    gamma = std::min(gamma, 1.0 - static_cast<double>(sum) /
                                      static_cast<double>(num_subchannels));
  }
  return gamma;
}

HoppingGameResult RunHoppingGame(const Graph& graph, const std::vector<int>& demands,
                                 const HoppingGameConfig& config, Rng& rng) {
  const int n = static_cast<int>(graph.size());
  const int m = config.num_subchannels;
  assert(static_cast<int>(demands.size()) == n);

  // owner[v][s]: node v holds subchannel s.
  std::vector<std::vector<bool>> owned(static_cast<std::size_t>(n),
                                       std::vector<bool>(static_cast<std::size_t>(m), false));
  std::vector<int> held(static_cast<std::size_t>(n), 0);

  auto neighbourhood_free = [&](int v, int s) {
    if (owned[static_cast<std::size_t>(v)][static_cast<std::size_t>(s)]) return false;
    for (int u : graph[static_cast<std::size_t>(v)]) {
      if (owned[static_cast<std::size_t>(u)][static_cast<std::size_t>(s)]) return false;
    }
    return true;
  };

  HoppingGameResult result;
  std::vector<int> choice(static_cast<std::size_t>(n), -1);
  // Passive observation only (DESIGN.md §13): the game has no simulator, so
  // events carry the round number and the ambient clock (0 when unscoped).
  obs::TraceSink* tr = obs::ActiveTrace();
  for (int round = 1; round <= config.max_rounds; ++round) {
    bool anyone_unsatisfied = false;

    // Phase 1: simultaneous random choices among sensed-free subchannels.
    for (int v = 0; v < n; ++v) {
      choice[static_cast<std::size_t>(v)] = -1;
      if (held[static_cast<std::size_t>(v)] >= demands[static_cast<std::size_t>(v)]) continue;
      anyone_unsatisfied = true;
      int free_count = 0;
      int picked = -1;
      for (int s = 0; s < m; ++s) {
        if (!neighbourhood_free(v, s)) continue;
        ++free_count;
        if (rng.Uniform() < 1.0 / static_cast<double>(free_count)) picked = s;
      }
      choice[static_cast<std::size_t>(v)] = picked;
    }

    if (!anyone_unsatisfied) {
      result.converged = true;
      result.rounds = round - 1;
      if (tr != nullptr) {
        tr->Emit(obs::AmbientNow(), "hopping_game", "converged",
                 {{"rounds", result.rounds}});
      }
      break;
    }

    // Phase 2: resolve clashes (same choice within a neighbourhood) and
    // fading; survivors acquire.
    for (int v = 0; v < n; ++v) {
      const int s = choice[static_cast<std::size_t>(v)];
      if (s < 0) continue;
      bool clash = false;
      for (int u : graph[static_cast<std::size_t>(v)]) {
        if (choice[static_cast<std::size_t>(u)] == s) clash = true;
      }
      if (clash) {
        if (tr != nullptr) {
          tr->Emit(obs::AmbientNow(), "hopping_game", "clash",
                   {{"round", round}, {"node", v}, {"subchannel", s}});
        }
        continue;
      }
      if (rng.Uniform() < config.fading_probability) {  // faded
        if (tr != nullptr) {
          tr->Emit(obs::AmbientNow(), "hopping_game", "faded",
                   {{"round", round}, {"node", v}, {"subchannel", s}});
        }
        continue;
      }
      owned[static_cast<std::size_t>(v)][static_cast<std::size_t>(s)] = true;
      ++held[static_cast<std::size_t>(v)];
      if (tr != nullptr) {
        tr->Emit(obs::AmbientNow(), "hopping_game", "acquired",
                 {{"round", round}, {"node", v}, {"subchannel", s}});
      }
    }
    result.rounds = round;
  }

  if (result.converged) {
    result.allocation.resize(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v) {
      for (int s = 0; s < m; ++s) {
        if (owned[static_cast<std::size_t>(v)][static_cast<std::size_t>(s)]) {
          result.allocation[static_cast<std::size_t>(v)].push_back(s);
        }
      }
    }
  }
  return result;
}

Graph RandomGraph(int nodes, double edge_probability, Rng& rng) {
  Graph g(static_cast<std::size_t>(nodes));
  for (int a = 0; a < nodes; ++a) {
    for (int b = a + 1; b < nodes; ++b) {
      if (rng.Bernoulli(edge_probability)) {
        g[static_cast<std::size_t>(a)].push_back(b);
        g[static_cast<std::size_t>(b)].push_back(a);
      }
    }
  }
  return g;
}

}  // namespace cellfi::baseline
