// Random topology generation for large-scale evaluation (paper Section
// 6.3.4: 2 km x 2 km area, randomly placed APs, clients per AP).
#pragma once

#include <vector>

#include "cellfi/common/geometry.h"
#include "cellfi/common/rng.h"

namespace cellfi::scenario {

struct TopologyConfig {
  double area_m = 2000.0;
  int num_aps = 10;
  int clients_per_ap = 6;
  /// Clients are placed uniformly within this radius of their AP.
  double client_radius_m = 450.0;
  /// Minimum AP separation (rejection sampling; relaxed if infeasible).
  double min_ap_separation_m = 200.0;
};

struct Topology {
  std::vector<Point> aps;
  std::vector<Point> clients;      // num_aps * clients_per_ap
  std::vector<int> client_home_ap; // intended AP (placement only)
};

/// Generate a random topology. Deterministic for a given rng state.
Topology GenerateTopology(const TopologyConfig& config, Rng& rng);

/// Scale every coordinate by `factor` around the area centre (used to map
/// an outdoor 802.11af layout to an indoor 802.11ac one with the same
/// geometry, Fig. 2).
Topology ScaleTopology(const Topology& topo, double factor);

}  // namespace cellfi::scenario
