#include "cellfi/scenario/supervisor.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>

#include "cellfi/scenario/report.h"

namespace cellfi::scenario {

/// One line of the checkpoint file: the durable outcome of a finished
/// replication, keyed by (point, rep).
struct SweepSupervisor::Checkpoint {
  int point = 0;
  int rep = 0;
  std::uint64_t seed = 0;
  bool ok = false;
  int attempts = 0;
  double sim_seconds = 0.0;
  std::string error;
  json::Value obs;  // snapshot at completion; null when obs was off
};

SweepSupervisor::SweepSupervisor(SupervisorOptions options)
    : options_(std::move(options)) {
  resume_path_ = options_.resume_path;
  if (resume_path_.empty()) {
    if (const char* env = std::getenv("CELLFI_SWEEP_RESUME")) {
      if (env[0] != '\0') resume_path_ = env;
    }
  }
  options_.max_attempts = std::max(1, options_.max_attempts);
  runner_ = std::make_unique<SweepRunner>(
      SweepOptions{.threads = options_.threads, .progress = options_.progress});
  LoadCheckpoints();
}

SweepSupervisor::~SweepSupervisor() = default;

void SweepSupervisor::LoadCheckpoints() {
  if (resume_path_.empty()) return;
  std::ifstream file(resume_path_);
  if (!file.is_open()) return;  // fresh sweep: the file appears as reps finish
  std::string line;
  while (std::getline(file, line)) {
    if (line.empty()) continue;
    const auto parsed = json::Parse(line);
    if (!parsed || !parsed->is_object()) continue;  // torn tail write
    Checkpoint cp;
    if (const json::Value* v = parsed->Find("point"); v != nullptr && v->is_number()) {
      cp.point = static_cast<int>(v->as_int());
    }
    if (const json::Value* v = parsed->Find("rep"); v != nullptr && v->is_number()) {
      cp.rep = static_cast<int>(v->as_int());
    }
    if (const json::Value* v = parsed->Find("seed"); v != nullptr && v->is_string()) {
      cp.seed = std::strtoull(v->as_string().c_str(), nullptr, 10);
    }
    if (const json::Value* v = parsed->Find("ok"); v != nullptr && v->is_bool()) {
      cp.ok = v->as_bool();
    }
    if (const json::Value* v = parsed->Find("attempts"); v != nullptr && v->is_number()) {
      cp.attempts = static_cast<int>(v->as_int());
    }
    if (const json::Value* v = parsed->Find("sim_s"); v != nullptr && v->is_number()) {
      cp.sim_seconds = v->as_number();
    }
    if (const json::Value* v = parsed->Find("error"); v != nullptr && v->is_string()) {
      cp.error = v->as_string();
    }
    if (const json::Value* v = parsed->Find("obs")) cp.obs = *v;
    checkpoints_.push_back(std::move(cp));
  }
}

void SweepSupervisor::AppendCheckpoint(const ReplicationOutcome& out) {
  if (resume_path_.empty()) return;
  json::Value doc;
  doc["point"] = out.point;
  doc["rep"] = out.rep;
  doc["seed"] = std::to_string(out.seed);
  doc["ok"] = out.error == nullptr;
  doc["attempts"] = out.attempts;
  doc["sim_s"] = out.sim_seconds;
  if (out.error != nullptr) {
    doc["error"] = out.error_text.empty() ? "unknown exception" : out.error_text;
  } else {
    json::Value snap = out.restored ? out.restored_obs : ObsSnapshotToJson(out.result);
    if (!snap.is_null()) doc["obs"] = std::move(snap);
  }
  std::lock_guard<std::mutex> lock(mu_);
  // Append + flush per record: an interrupted sweep keeps every line
  // written before the interruption (a torn final line is skipped on load).
  std::ofstream file(resume_path_, std::ios::app);
  file << doc.Dump() << "\n" << std::flush;
}

std::vector<ReplicationOutcome> SweepSupervisor::Run(
    const std::vector<Replication>& jobs, const ReplicationBody& body) {
  failures_.clear();
  retries_ = 0;
  quarantined_ = 0;
  watchdog_expirations_ = 0;
  restored_ = 0;

  std::vector<ReplicationOutcome> outcomes(jobs.size());
  runner_->RunTasks(jobs.size(), [&](std::size_t i) {
    const Replication& job = jobs[i];

    // Resume: a successful checkpoint stands in for the run. Failed
    // checkpoints are retried from scratch — a resumed sweep gets another
    // chance at transient failures.
    const Checkpoint* resumed = nullptr;
    for (const Checkpoint& cp : checkpoints_) {
      if (cp.point == job.point && cp.rep == job.rep && cp.ok) {
        resumed = &cp;
        break;
      }
    }
    if (resumed != nullptr) {
      ReplicationOutcome out;
      out.point = job.point;
      out.rep = job.rep;
      out.seed = resumed->seed;
      out.sim_seconds = resumed->sim_seconds;
      out.attempts = resumed->attempts;
      out.restored = true;
      out.restored_obs = resumed->obs;
      outcomes[i] = std::move(out);
      std::lock_guard<std::mutex> lock(mu_);
      ++restored_;
      return;
    }

    ReplicationOutcome out;
    for (int attempt = 1; attempt <= options_.max_attempts; ++attempt) {
      if (body) {
        out = ReplicationOutcome{};
        out.point = job.point;
        out.rep = job.rep;
        out.seed = job.config.seed;
        out.label = job.label;
        out.sim_seconds = ToSeconds(job.config.duration);
        const auto start = std::chrono::steady_clock::now();
        try {
          out.result = body(job);
        } catch (const std::exception& e) {
          out.error = std::current_exception();
          out.error_text = e.what();
        } catch (...) {
          out.error = std::current_exception();
          out.error_text = "unknown exception";
        }
        out.wall_seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
      } else {
        out = RunOneReplication(job);
      }
      out.attempts = attempt;
      if (out.error == nullptr && options_.watchdog_seconds > 0.0 &&
          out.wall_seconds > options_.watchdog_seconds) {
        // Over the deadline: the result is suspect (runaway convergence,
        // event-loop livelock, overloaded host) — treat as a failure.
        out.result = ScenarioResult{};
        out.error_text = "watchdog deadline exceeded";
        try {
          throw std::runtime_error(out.error_text);
        } catch (...) {
          out.error = std::current_exception();
        }
        std::lock_guard<std::mutex> lock(mu_);
        ++watchdog_expirations_;
      }
      if (out.error == nullptr) break;
      if (attempt < options_.max_attempts) {
        std::lock_guard<std::mutex> lock(mu_);
        ++retries_;
      }
    }

    if (out.error != nullptr) {
      out.quarantined = true;
      std::lock_guard<std::mutex> lock(mu_);
      ++quarantined_;
      failures_.push_back({job.point, job.rep, out.seed, out.attempts,
                           job.label,
                           out.error_text.empty() ? "unknown exception"
                                                  : out.error_text,
                           true});
    }
    AppendCheckpoint(out);
    outcomes[i] = std::move(out);
  });

  // Completion order is thread-dependent; the record order must not be.
  std::sort(failures_.begin(), failures_.end(),
            [](const FailureRecord& a, const FailureRecord& b) {
              return a.point != b.point ? a.point < b.point : a.rep < b.rep;
            });
  return outcomes;
}

json::Value SweepSupervisor::FailuresToJson() const {
  json::Array records;
  for (const FailureRecord& f : failures_) {
    json::Value v;
    v["point"] = f.point;
    v["rep"] = f.rep;
    v["seed"] = std::to_string(f.seed);
    if (!f.label.empty()) v["label"] = f.label;
    v["attempts"] = f.attempts;
    v["error"] = f.error;
    v["quarantined"] = f.quarantined;
    records.push_back(std::move(v));
  }
  json::Value doc;
  doc["failures"] = std::move(records);
  return doc;
}

}  // namespace cellfi::scenario
