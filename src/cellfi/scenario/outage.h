// Database-outage scenario: the Fig. 6 machinery under an unreachable
// spectrum database.
//
// Builds the full chain — SpectrumDatabase → PawsServer → InProcessTransport
// → FaultyTransport → PawsSession → ChannelSelector — brings the AP on air,
// then takes the database down for a configured window. The result captures
// the vacate/reacquire timeline and the session health counters, and is the
// shared engine behind `examples/database_outage` and the chaos regression
// tests.
#pragma once

#include <vector>

#include "cellfi/core/channel_selector.h"
#include "cellfi/tvws/database.h"
#include "cellfi/tvws/paws_session.h"
#include "cellfi/tvws/paws_transport.h"

namespace cellfi::scenario {

struct OutageScenarioConfig {
  tvws::DatabaseConfig database;
  core::ChannelSelectorConfig selector;   // location filled from here
  tvws::PawsSessionConfig session;
  tvws::FaultProfile faults;              // steady-state link faults
  tvws::GeoLocation location{.latitude = 47.64, .longitude = -122.13};

  /// Full-database outage window (absolute sim time). A zero-length window
  /// disables the outage.
  SimTime outage_start = 300 * kSecond;
  SimTime outage_duration = 90 * kSecond;

  SimTime run_until = 1200 * kSecond;
};

struct OutageScenarioResult {
  std::vector<core::TimelineEvent> timeline;
  std::vector<SimTime> lease_confirms;
  tvws::SessionCounters session;
  tvws::FaultyTransport::Counters transport;
  tvws::SessionState final_state = tvws::SessionState::kHealthy;
  core::ApRadioState final_radio_state = core::ApRadioState::kOff;

  SimTime outage_start = 0;
  SimTime outage_end = 0;
  /// Last successful lease confirmation at or before outage_start
  /// (t_lastlease for the ETSI budget check; -1 if never on air).
  SimTime last_confirm_before_outage = -1;
  /// First ap_off at/after outage_start (-1 if the AP rode the outage out).
  SimTime ap_off_at = -1;
  /// First ap_on at/after outage_end (-1 if never reacquired).
  SimTime reacquired_at = -1;
  /// On air for the whole outage (no ap_off between start and end).
  bool rode_through = false;
};

/// Run one database-outage scenario end to end.
OutageScenarioResult RunDatabaseOutage(const OutageScenarioConfig& config);

}  // namespace cellfi::scenario
