#include "cellfi/scenario/outage.h"

#include "cellfi/obs/trace.h"

namespace cellfi::scenario {

OutageScenarioResult RunDatabaseOutage(const OutageScenarioConfig& config) {
  Simulator sim;
  // Any ambient trace sink installed by the caller sees correctly
  // sim-timed events from components without their own Simulator handle.
  obs::ClockScope obs_clock([&sim] { return sim.Now(); });
  tvws::SpectrumDatabase db(config.database);
  tvws::PawsServer server(db);
  tvws::InProcessTransport wire(sim, server);
  tvws::FaultyTransport transport(sim, wire, config.faults);
  tvws::PawsClient client({.serial_number = "outage-ap"}, config.database.regulatory);
  tvws::PawsSession session(sim, client, transport, config.session);

  core::QuietScanner scanner;
  core::ChannelSelectorConfig sel_cfg = config.selector;
  sel_cfg.location = config.location;
  core::ChannelSelector selector(sim, session, scanner, sel_cfg);

  OutageScenarioResult result;
  result.outage_start = config.outage_start;
  result.outage_end = config.outage_start + config.outage_duration;
  if (config.outage_duration > 0) {
    transport.AddOutage(result.outage_start, result.outage_end);
    // Trace the fault-injection window itself so trace assertions can
    // order component reactions against the outage bounds. The sink is
    // looked up at fire time; with none installed these are no-ops.
    sim.ScheduleAt(result.outage_start, [&sim] {
      if (obs::TraceSink* tr = obs::ActiveTrace()) {
        tr->Emit(sim.Now(), "outage", "outage_begin", {});
      }
    });
    sim.ScheduleAt(result.outage_end, [&sim] {
      if (obs::TraceSink* tr = obs::ActiveTrace()) {
        tr->Emit(sim.Now(), "outage", "outage_end", {});
      }
    });
  }

  selector.Start();
  sim.RunUntil(config.run_until);

  result.timeline = selector.timeline();
  result.lease_confirms = selector.lease_confirms();
  result.session = session.counters();
  result.transport = transport.counters();
  result.final_state = session.state();
  result.final_radio_state = selector.state();

  for (SimTime t : result.lease_confirms) {
    if (t <= result.outage_start) result.last_confirm_before_outage = t;
  }
  bool off_during_outage = false;
  for (const core::TimelineEvent& e : result.timeline) {
    if (e.what == "ap_off" && e.time >= result.outage_start) {
      if (result.ap_off_at < 0) result.ap_off_at = e.time;
      if (e.time < result.outage_end) off_during_outage = true;
    }
    if (e.what == "ap_on" && e.time >= result.outage_end && result.reacquired_at < 0) {
      result.reacquired_at = e.time;
    }
  }
  // "Rode through" additionally requires being on air when the outage hit.
  result.rode_through = result.last_confirm_before_outage >= 0 && !off_during_outage &&
                        (result.ap_off_at < 0 || result.ap_off_at >= result.outage_end);
  return result;
}

}  // namespace cellfi::scenario
