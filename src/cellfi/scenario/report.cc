#include "cellfi/scenario/report.h"

namespace cellfi::scenario {

using json::Array;
using json::Value;

const char* TechnologyName(Technology tech) {
  switch (tech) {
    case Technology::kCellFi: return "cellfi";
    case Technology::kLte: return "lte";
    case Technology::kOracle: return "oracle";
    case Technology::kLaaLte: return "laa-lte";
    case Technology::kWifi80211af: return "80211af";
    case Technology::kWifi80211ac: return "80211ac";
  }
  return "?";
}

std::optional<Technology> TechnologyFromName(const std::string& name) {
  for (Technology t : {Technology::kCellFi, Technology::kLte, Technology::kOracle,
                       Technology::kLaaLte, Technology::kWifi80211af,
                       Technology::kWifi80211ac}) {
    if (name == TechnologyName(t)) return t;
  }
  return std::nullopt;
}

const char* WorkloadName(WorkloadKind kind) {
  return kind == WorkloadKind::kWeb ? "web" : "backlogged";
}

const char* PropagationName(PropagationKind kind) {
  switch (kind) {
    case PropagationKind::kHataUrbanUhf: return "hata-urban";
    case PropagationKind::kSuburbanUhf: return "suburban";
    case PropagationKind::kIndoor5GHz: return "indoor-5ghz";
  }
  return "?";
}

json::Value ObsSnapshotToJson(const ScenarioResult& result) {
  if (result.metrics == nullptr && result.trace == nullptr) return Value();
  Value v;
  if (result.metrics != nullptr) v["metrics"] = result.metrics->Snapshot();
  if (result.trace != nullptr) {
    v["trace_emitted"] = static_cast<std::int64_t>(result.trace->emitted());
    v["trace_dropped"] = static_cast<std::int64_t>(result.trace->dropped());
  }
  return v;
}

json::Value ConfigToJson(const ScenarioConfig& c) {
  Value v;
  v["tech"] = TechnologyName(c.tech);
  v["workload"] = WorkloadName(c.workload);
  v["propagation"] = PropagationName(c.propagation);
  v["topology"]["area_m"] = c.topology.area_m;
  v["topology"]["num_aps"] = c.topology.num_aps;
  v["topology"]["clients_per_ap"] = c.topology.clients_per_ap;
  v["topology"]["client_radius_m"] = c.topology.client_radius_m;
  v["ap_power_dbm"] = c.ap_power_dbm;
  v["client_power_dbm"] = c.client_power_dbm;
  v["wifi_client_power_dbm"] = c.wifi_client_power_dbm;
  v["wifi_channel_width_hz"] = c.wifi_channel_width_hz;
  v["wifi_clock_scale"] = c.wifi_clock_scale;
  v["warmup_s"] = ToSeconds(c.warmup);
  v["duration_s"] = ToSeconds(c.duration);
  v["enable_fading"] = c.enable_fading;
  v["shadowing_sigma_db"] = c.shadowing_sigma_db;
  v["starvation_threshold_bps"] = c.starvation_threshold_bps;
  v["home_ap_association"] = c.home_ap_association;
  v["web"]["think_time_mean_s"] = c.web.think_time_mean_s;
  v["seed"] = static_cast<std::int64_t>(c.seed);
  v["obs"]["enabled"] = c.obs.enabled;
  v["obs"]["trace_path"] = c.obs.trace_path;
  v["obs"]["ring_capacity"] = c.obs.ring_capacity;
  return v;
}

namespace {
double NumOr(const Value& v, const std::string& key, double fallback) {
  const Value* f = v.Find(key);
  return f != nullptr && f->is_number() ? f->as_number() : fallback;
}
bool BoolOr(const Value& v, const std::string& key, bool fallback) {
  const Value* f = v.Find(key);
  return f != nullptr && f->is_bool() ? f->as_bool() : fallback;
}
}  // namespace

std::optional<ScenarioConfig> ConfigFromJson(const Value& v) {
  if (!v.is_object()) return std::nullopt;
  ScenarioConfig c;

  if (const Value* t = v.Find("tech"); t != nullptr) {
    if (!t->is_string()) return std::nullopt;
    const auto tech = TechnologyFromName(t->as_string());
    if (!tech) return std::nullopt;
    c.tech = *tech;
  }
  if (const Value* w = v.Find("workload"); w != nullptr && w->is_string()) {
    if (w->as_string() == "web") {
      c.workload = WorkloadKind::kWeb;
    } else if (w->as_string() == "backlogged") {
      c.workload = WorkloadKind::kBacklogged;
    } else {
      return std::nullopt;
    }
  }
  if (const Value* p = v.Find("propagation"); p != nullptr && p->is_string()) {
    const std::string& name = p->as_string();
    if (name == "hata-urban") {
      c.propagation = PropagationKind::kHataUrbanUhf;
    } else if (name == "suburban") {
      c.propagation = PropagationKind::kSuburbanUhf;
    } else if (name == "indoor-5ghz") {
      c.propagation = PropagationKind::kIndoor5GHz;
    } else {
      return std::nullopt;
    }
  }
  if (const Value* topo = v.Find("topology"); topo != nullptr && topo->is_object()) {
    c.topology.area_m = NumOr(*topo, "area_m", c.topology.area_m);
    c.topology.num_aps = static_cast<int>(NumOr(*topo, "num_aps", c.topology.num_aps));
    c.topology.clients_per_ap =
        static_cast<int>(NumOr(*topo, "clients_per_ap", c.topology.clients_per_ap));
    c.topology.client_radius_m =
        NumOr(*topo, "client_radius_m", c.topology.client_radius_m);
  }
  c.ap_power_dbm = NumOr(v, "ap_power_dbm", c.ap_power_dbm);
  c.client_power_dbm = NumOr(v, "client_power_dbm", c.client_power_dbm);
  c.wifi_client_power_dbm = NumOr(v, "wifi_client_power_dbm", c.wifi_client_power_dbm);
  c.wifi_channel_width_hz = NumOr(v, "wifi_channel_width_hz", c.wifi_channel_width_hz);
  c.wifi_clock_scale = NumOr(v, "wifi_clock_scale", c.wifi_clock_scale);
  c.warmup = FromSeconds(NumOr(v, "warmup_s", ToSeconds(c.warmup)));
  c.duration = FromSeconds(NumOr(v, "duration_s", ToSeconds(c.duration)));
  c.enable_fading = BoolOr(v, "enable_fading", c.enable_fading);
  c.shadowing_sigma_db = NumOr(v, "shadowing_sigma_db", c.shadowing_sigma_db);
  c.starvation_threshold_bps =
      NumOr(v, "starvation_threshold_bps", c.starvation_threshold_bps);
  c.home_ap_association = BoolOr(v, "home_ap_association", c.home_ap_association);
  if (const Value* web = v.Find("web"); web != nullptr && web->is_object()) {
    c.web.think_time_mean_s = NumOr(*web, "think_time_mean_s", c.web.think_time_mean_s);
  }
  // cellfi-lint: allow(no-float-seed) — JSON numbers are IEEE doubles by
  // schema; config seeds are exact below 2^53 and the round-trip is lossless.
  c.seed = static_cast<std::uint64_t>(NumOr(v, "seed", static_cast<double>(c.seed)));
  if (const Value* o = v.Find("obs"); o != nullptr && o->is_object()) {
    c.obs.enabled = BoolOr(*o, "enabled", c.obs.enabled);
    if (const Value* p = o->Find("trace_path"); p != nullptr && p->is_string()) {
      c.obs.trace_path = p->as_string();
    }
    c.obs.ring_capacity =
        static_cast<int>(NumOr(*o, "ring_capacity", c.obs.ring_capacity));
  }
  if (c.duration <= c.warmup) return std::nullopt;
  if (c.topology.num_aps <= 0 || c.topology.clients_per_ap < 0) return std::nullopt;
  return c;
}

std::optional<ScenarioConfig> ConfigFromJsonText(const std::string& text) {
  const auto parsed = json::Parse(text);
  if (!parsed) return std::nullopt;
  return ConfigFromJson(*parsed);
}

json::Value ResultToJson(const ScenarioResult& result) {
  Value v;
  v["fraction_connected"] = result.fraction_connected;
  v["fraction_starved"] = result.fraction_starved;
  v["total_throughput_bps"] = result.total_throughput_bps;
  v["im_total_hops"] = static_cast<std::int64_t>(result.im_total_hops);
  v["im_cells_still_hopping"] = result.im_cells_still_hopping;

  Array clients;
  clients.reserve(result.clients.size());
  for (const ClientOutcome& c : result.clients) {
    Value cv;
    cv["throughput_bps"] = c.throughput_bps;
    cv["attached"] = c.attached;
    cv["starved"] = c.starved;
    cv["pages_started"] = c.pages_started;
    cv["pages_completed"] = c.pages_completed;
    // reserve() + emplace_back keep GCC 12's -Wmaybe-uninitialized happy:
    // moving a Value temporary through the growth path trips a false
    // positive in the inlined variant relocation.
    Array plts;
    plts.reserve(c.page_load_times_s.size());
    for (double p : c.page_load_times_s) plts.emplace_back(p);
    cv["page_load_times_s"] = std::move(plts);
    clients.push_back(std::move(cv));
  }
  v["clients"] = std::move(clients);

  if (!result.clients.empty()) {
    Distribution d = result.client_throughput_mbps;
    v["throughput_mbps"]["p10"] = d.Percentile(0.10);
    v["throughput_mbps"]["p50"] = d.Percentile(0.50);
    v["throughput_mbps"]["p90"] = d.Percentile(0.90);
  }
  return v;
}

}  // namespace cellfi::scenario
