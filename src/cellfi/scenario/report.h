// JSON bindings for scenario configs and results: load experiment
// definitions from files and emit machine-readable reports (plotting,
// regression tracking).
#pragma once

#include <optional>
#include <string>

#include "cellfi/common/json.h"
#include "cellfi/scenario/harness.h"

namespace cellfi::scenario {

/// Serialize a result (per-client outcomes + aggregates). Deliberately
/// ignores ScenarioResult::trace/metrics: report bytes are identical with
/// observability on or off (determinism contract, DESIGN.md §13).
json::Value ResultToJson(const ScenarioResult& result);

/// Serialize the run's observability state: `{"metrics": <registry
/// snapshot>, "trace_emitted": N, "trace_dropped": N}`. Null when the run
/// had observability disabled. Kept separate from ResultToJson so sweep
/// artifacts can embed per-replication snapshots without touching report
/// bytes.
json::Value ObsSnapshotToJson(const ScenarioResult& result);

/// Serialize a config (round-trips through ConfigFromJson).
json::Value ConfigToJson(const ScenarioConfig& config);

/// Parse a config. Unknown keys are ignored; missing keys keep defaults.
/// Returns nullopt on malformed JSON or invalid enum values.
std::optional<ScenarioConfig> ConfigFromJson(const json::Value& value);

/// Convenience: parse a config from JSON text.
std::optional<ScenarioConfig> ConfigFromJsonText(const std::string& text);

/// Enum name helpers (shared with benches/CLIs).
const char* TechnologyName(Technology tech);
std::optional<Technology> TechnologyFromName(const std::string& name);
const char* WorkloadName(WorkloadKind kind);
const char* PropagationName(PropagationKind kind);

}  // namespace cellfi::scenario
