#include "cellfi/scenario/topology.h"

#include <algorithm>
#include <cmath>

namespace cellfi::scenario {

Topology GenerateTopology(const TopologyConfig& config, Rng& rng) {
  Topology topo;
  topo.aps.reserve(static_cast<std::size_t>(config.num_aps));

  for (int a = 0; a < config.num_aps; ++a) {
    Point p;
    bool placed = false;
    for (int attempt = 0; attempt < 200 && !placed; ++attempt) {
      p = {rng.Uniform(0.0, config.area_m), rng.Uniform(0.0, config.area_m)};
      placed = true;
      for (const Point& other : topo.aps) {
        if (Distance(p, other) < config.min_ap_separation_m) {
          placed = false;
          break;
        }
      }
    }
    topo.aps.push_back(p);  // falls back to the last draw if crowded
  }

  for (int a = 0; a < config.num_aps; ++a) {
    for (int c = 0; c < config.clients_per_ap; ++c) {
      // Uniform over the disc: radius ~ sqrt(U).
      const double r = config.client_radius_m * std::sqrt(rng.Uniform());
      const double theta = rng.Uniform(0.0, 2.0 * M_PI);
      Point p = topo.aps[static_cast<std::size_t>(a)] +
                Point{r * std::cos(theta), r * std::sin(theta)};
      p.x = std::clamp(p.x, 0.0, config.area_m);
      p.y = std::clamp(p.y, 0.0, config.area_m);
      topo.clients.push_back(p);
      topo.client_home_ap.push_back(a);
    }
  }
  return topo;
}

Topology ScaleTopology(const Topology& topo, double factor) {
  // Determine the centre from the AP bounding box.
  double cx = 0.0, cy = 0.0;
  for (const Point& p : topo.aps) {
    cx += p.x;
    cy += p.y;
  }
  cx /= static_cast<double>(topo.aps.size());
  cy /= static_cast<double>(topo.aps.size());

  auto scale = [&](Point p) {
    return Point{cx + (p.x - cx) * factor, cy + (p.y - cy) * factor};
  };
  Topology out = topo;
  for (Point& p : out.aps) p = scale(p);
  for (Point& p : out.clients) p = scale(p);
  return out;
}

}  // namespace cellfi::scenario
