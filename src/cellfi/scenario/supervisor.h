// Self-healing sweep supervisor (DESIGN.md §14).
//
// `SweepSupervisor` wraps the SweepRunner worker pool with a recovery
// state machine per replication:
//
//   run → ok                    → checkpoint, done
//   run → failed / over deadline → bounded same-seed retry
//   retries exhausted            → quarantine (structured failure record,
//                                  excluded from statistics, present in
//                                  the artifact)
//
// and with checkpoint/resume for long sweeps: every finished replication
// appends one JSONL record to the checkpoint file, and a later run with
// the same file (CELLFI_SWEEP_RESUME or SupervisorOptions::resume_path)
// restores completed replications instead of re-running them. Because a
// replication is a pure function of its config, a resumed sweep's
// artifact is byte-identical to an uninterrupted run's, modulo the
// wall-clock fields.
//
// Determinism: retries reuse the original seed (the point is detecting
// non-deterministic or environment-induced failures, not reshuffling the
// dice), outcomes land in input order, and failure records are sorted by
// (point, rep) — none of it depends on thread count or completion order.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cellfi/common/json.h"
#include "cellfi/scenario/sweep.h"

namespace cellfi::scenario {

struct SupervisorOptions {
  /// Worker threads; <= 0 resolves via ResolveThreads.
  int threads = 0;
  /// Total same-seed attempts per replication (1 = no retry).
  int max_attempts = 2;
  /// Cooperative per-replication deadline, seconds of wall clock; a
  /// replication exceeding it counts as failed (and is retried /
  /// quarantined like any failure). 0 disables the watchdog. Cooperative:
  /// the replication is not killed mid-run — the deadline is evaluated
  /// when it returns, which bounds damage from runaway reps without
  /// needing thread cancellation.
  double watchdog_seconds = 0.0;
  /// Checkpoint/resume file (JSONL). Empty resolves from the
  /// CELLFI_SWEEP_RESUME env knob; still empty disables checkpointing.
  std::string resume_path;
  bool progress = false;
};

/// One quarantined or failed replication, as recorded in artifacts.
struct FailureRecord {
  int point = 0;
  int rep = 0;
  std::uint64_t seed = 0;
  int attempts = 0;
  /// Scenario label of the failing replication (Replication::label) —
  /// a failure record identifies WHICH scenario died, not just its seed.
  std::string label;
  std::string error;
  bool quarantined = false;
};

class SweepSupervisor {
 public:
  explicit SweepSupervisor(SupervisorOptions options = {});
  ~SweepSupervisor();

  SweepSupervisor(const SweepSupervisor&) = delete;
  SweepSupervisor& operator=(const SweepSupervisor&) = delete;

  /// Run every replication under supervision. Outcomes are in input order;
  /// quarantined replications keep their error (so PointSummary and
  /// friends skip them) plus a failure record here and in the artifact.
  std::vector<ReplicationOutcome> Run(const std::vector<Replication>& jobs,
                                      const ReplicationBody& body = nullptr);

  /// Failure records of the last Run, sorted by (point, rep).
  const std::vector<FailureRecord>& failures() const { return failures_; }
  /// JSON form of `failures()` for embedding in sweep artifacts.
  json::Value FailuresToJson() const;

  std::uint64_t retries() const { return retries_; }
  std::uint64_t quarantined() const { return quarantined_; }
  std::uint64_t watchdog_expirations() const { return watchdog_expirations_; }
  /// Replications restored from the checkpoint instead of re-run.
  std::uint64_t restored() const { return restored_; }

  const std::string& resume_path() const { return resume_path_; }

 private:
  struct Checkpoint;

  void LoadCheckpoints();
  void AppendCheckpoint(const ReplicationOutcome& out);

  SupervisorOptions options_;
  std::string resume_path_;
  std::unique_ptr<SweepRunner> runner_;

  std::mutex mu_;  // guards failures_ and the checkpoint file
  std::vector<FailureRecord> failures_;
  std::vector<Checkpoint> checkpoints_;
  std::uint64_t retries_ = 0;
  std::uint64_t quarantined_ = 0;
  std::uint64_t watchdog_expirations_ = 0;
  std::uint64_t restored_ = 0;
};

}  // namespace cellfi::scenario
