#include "cellfi/scenario/harness.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>
#include <optional>
#include <sstream>
#include <string>

#include "cellfi/baseline/oracle_allocator.h"
#include "cellfi/chaos/fault_scheduler.h"
#include "cellfi/common/units.h"
#include "cellfi/core/cellfi_controller.h"
#include "cellfi/lte/network.h"
#include "cellfi/radio/pathloss.h"
#include "cellfi/sim/event_queue.h"
#include "cellfi/traffic/flow_tracker.h"
#include "cellfi/wifi/wifi_network.h"

namespace cellfi::scenario {

namespace {

/// PRACH format 0 bandwidth — must match the constant LteNetwork::EmitPrach
/// uses so the aggregate tier's audibility precomputation applies the exact
/// detection rule real UEs face.
constexpr double kPrachBandwidthHz = 839 * 1250.0;
constexpr double kTau = 6.283185307179586;

const PathLossModel& PathLossFor(PropagationKind kind) {
  static const HataUrbanPathLoss hata(15.0, 1.5);
  static const LogDistancePathLoss suburban(3.5, 1.0);
  static const LogDistancePathLoss indoor(3.0, 1.0);
  switch (kind) {
    case PropagationKind::kIndoor5GHz: return indoor;
    case PropagationKind::kSuburbanUhf: return suburban;
    case PropagationKind::kHataUrbanUhf:
    default: return hata;
  }
}

/// Per-run observability scope (DESIGN.md §13). Owns the sink + registry
/// for one replication and installs them (plus a sim clock for components
/// without a Simulator handle) on the current thread for the run's
/// lifetime. Observation is strictly passive, so enabling it cannot
/// perturb the simulation.
struct ObsSession {
  std::shared_ptr<obs::TraceSink> trace;
  std::shared_ptr<obs::MetricsRegistry> metrics;
  std::optional<obs::ObsScope> scope;
  std::optional<obs::ClockScope> clock;

  ObsSession(const ScenarioConfig& cfg, Simulator& sim) {
    ObsOptions opt = cfg.obs;
    if (!opt.enabled) {
      // Env knobs for ad-hoc runs (see README "Observability").
      if (std::getenv("CELLFI_TRACE") != nullptr) opt.enabled = true;
      if (const char* path = std::getenv("CELLFI_TRACE_OUT")) {
        opt.enabled = true;
        if (opt.trace_path.empty()) opt.trace_path = path;
      }
      if (const char* ring = std::getenv("CELLFI_TRACE_RING")) {
        opt.ring_capacity = std::max(1, std::atoi(ring));
      }
    }
    if (opt.enabled) {
      obs::TraceSinkConfig sink_cfg;
      sink_cfg.ring_capacity = static_cast<std::size_t>(std::max(1, opt.ring_capacity));
      sink_cfg.jsonl_path = opt.trace_path;
      trace = std::make_shared<obs::TraceSink>(sink_cfg);
      metrics = std::make_shared<obs::MetricsRegistry>();
      scope.emplace(trace.get(), metrics.get());
    }
    // Install the clock whenever any sink is reachable (ours or one the
    // caller scoped in) so ambient emits carry real sim time.
    if (obs::ActiveTrace() != nullptr || obs::ActiveMetrics() != nullptr) {
      clock.emplace([&sim] { return sim.Now(); });
    }
  }

  void Export(ScenarioResult& result) const {
    result.trace = trace;
    result.metrics = metrics;
  }
};

/// Effective fault plan for the run: the config's, or one loaded from the
/// CELLFI_CHAOS_PLAN env knob (path of a fault-plan JSON file — see README
/// "Chaos engine"). A malformed or unreadable file yields no plan rather
/// than a half-applied one.
std::optional<chaos::FaultPlan> ResolveChaosPlan(const ScenarioConfig& cfg) {
  if (cfg.chaos_plan.has_value()) return cfg.chaos_plan;
  if (const char* path = std::getenv("CELLFI_CHAOS_PLAN")) {
    if (path[0] != '\0') {
      std::ifstream file(path);
      if (file.is_open()) {
        std::ostringstream text;
        text << file.rdbuf();
        return chaos::FaultPlan::FromJsonText(text.str());
      }
    }
  }
  return std::nullopt;
}

double CarrierFor(PropagationKind kind) {
  return kind == PropagationKind::kIndoor5GHz ? 5.2e9 : 600e6;
}

RadioEnvironmentConfig EnvConfigFor(const ScenarioConfig& cfg) {
  RadioEnvironmentConfig c;
  c.carrier_freq_hz = CarrierFor(cfg.propagation);
  c.shadowing_sigma_db = cfg.shadowing_sigma_db;
  c.enable_fading = cfg.enable_fading;
  c.interference_floor_db = cfg.interference_floor_db;
  c.seed = cfg.seed ^ 0xE17E17E17ull;
  return c;
}

void Finalize(ScenarioResult& result, const ScenarioConfig& cfg) {
  int connected = 0;
  int starved = 0;
  double total = 0.0;
  for (ClientOutcome& c : result.clients) {
    c.starved = c.throughput_bps < cfg.starvation_threshold_bps;
    if (c.attached && !c.starved) ++connected;
    if (c.starved) ++starved;
    total += c.throughput_bps;
    result.client_throughput_mbps.Add(c.throughput_bps / 1e6);
    for (double plt : c.page_load_times_s) result.page_load_times_s.Add(plt);
  }
  const double n = std::max<std::size_t>(result.clients.size(), 1);
  result.fraction_connected = connected / n;
  result.fraction_starved = starved / n;
  result.total_throughput_bps = total;
}

ScenarioResult RunLteBased(const ScenarioConfig& cfg, const Topology& topo) {
  Simulator sim;
  ObsSession obs_session(cfg, sim);
  RadioEnvironment env(PathLossFor(cfg.propagation), EnvConfigFor(cfg));
  lte::LteNetworkConfig net_cfg;
  net_cfg.use_interference_engine = cfg.use_interference_engine;
  net_cfg.shards = cfg.shards;
  net_cfg.shard_threads = cfg.shard_threads;
  net_cfg.seed = cfg.seed ^ 0x17;
  lte::LteNetwork net(sim, env, net_cfg);

  lte::LteMacConfig mac;
  mac.bandwidth = cfg.lte_bandwidth;
  mac.tdd_config = cfg.lte_tdd_config;
  if (cfg.tech == Technology::kLaaLte) {
    mac.access_mode = lte::AccessMode::kListenBeforeTalk;
  }

  std::vector<RadioNodeId> ap_radios;
  for (const Point& p : topo.aps) {
    const RadioNodeId r = env.AddNode({.position = p, .tx_power_dbm = cfg.ap_power_dbm});
    net.AddCell(mac, r);
    ap_radios.push_back(r);
  }
  std::vector<RadioNodeId> ue_radios;
  std::vector<lte::UeId> ues;
  for (std::size_t u = 0; u < topo.clients.size(); ++u) {
    const RadioNodeId r =
        env.AddNode({.position = topo.clients[u], .tx_power_dbm = cfg.client_power_dbm});
    ue_radios.push_back(r);
    const lte::CellId home =
        cfg.home_ap_association ? static_cast<lte::CellId>(topo.client_home_ap[u])
                                : lte::kInvalidCell;
    ues.push_back(net.AddUe(r, home));
  }

  // Oracle: centralized allocation from perfect topology knowledge.
  if (cfg.tech == Technology::kOracle) {
    const int s_total = lte::EnodeB(0, mac).grid().num_subchannels();
    const double subch_bw = lte::EnodeB(0, mac).grid().rbg_size() * kRbBandwidthHz;
    // Predict attachment (home AP, or strongest-cell when roaming is on).
    std::vector<int> clients_per_cell(topo.aps.size(), 0);
    std::vector<int> client_cell(ue_radios.size(), -1);
    for (std::size_t u = 0; u < ue_radios.size(); ++u) {
      if (cfg.home_ap_association) {
        client_cell[u] = topo.client_home_ap[u];
      } else {
        double best = -1e9;
        for (std::size_t a = 0; a < ap_radios.size(); ++a) {
          const double rsrp = env.MeanRxPowerDbm(ap_radios[a], ue_radios[u]);
          if (rsrp > best) {
            best = rsrp;
            client_cell[u] = static_cast<int>(a);
          }
        }
      }
      if (env.MeanSnrDb(ap_radios[static_cast<std::size_t>(client_cell[u])], ue_radios[u],
                        OccupiedBandwidthHz(cfg.lte_bandwidth)) < -6.7) {
        client_cell[u] = -1;  // out of range
      } else {
        ++clients_per_cell[static_cast<std::size_t>(client_cell[u])];
      }
    }
    // Conflict graph: cells i != j conflict if some client of i receives
    // cell j within 7 dB of its serving power (interference-limited link:
    // co-scheduling them on a subchannel would badly degrade the client).
    baseline::OracleInput oracle;
    oracle.num_subchannels = s_total;
    oracle.clients_per_cell = clients_per_cell;
    oracle.conflicts.assign(topo.aps.size(), {});
    (void)subch_bw;
    for (std::size_t i = 0; i < topo.aps.size(); ++i) {
      for (std::size_t j = 0; j < topo.aps.size(); ++j) {
        if (i == j) continue;
        bool conflict = false;
        for (std::size_t u = 0; u < ue_radios.size(); ++u) {
          if (client_cell[u] != static_cast<int>(i)) continue;
          const double sir = env.MeanRxPowerDbm(ap_radios[i], ue_radios[u]) -
                             env.MeanRxPowerDbm(ap_radios[j], ue_radios[u]);
          if (sir < 7.0) {
            conflict = true;
            break;
          }
        }
        if (conflict) oracle.conflicts[i].push_back(static_cast<int>(j));
      }
    }
    // Symmetrize.
    for (std::size_t i = 0; i < oracle.conflicts.size(); ++i) {
      for (int j : oracle.conflicts[i]) {
        auto& back = oracle.conflicts[static_cast<std::size_t>(j)];
        if (std::find(back.begin(), back.end(), static_cast<int>(i)) == back.end()) {
          back.push_back(static_cast<int>(i));
        }
      }
    }
    const auto masks = baseline::OracleAllocate(oracle);
    for (std::size_t c = 0; c < masks.size(); ++c) {
      net.SetAllowedMask(static_cast<lte::CellId>(c), masks[c]);
    }
  }

  std::unique_ptr<core::CellfiController> controller;
  if (cfg.tech == Technology::kCellFi) {
    core::CellfiControllerConfig ctl = cfg.cellfi;
    ctl.seed = cfg.seed ^ 0x51;
    controller = std::make_unique<core::CellfiController>(sim, net, ctl);
    controller->Start();
  }

  // --- Aggregate background-load tier (DESIGN.md §18) ------------------------
  // A fluid per-cell population rides alongside the fully-simulated UEs:
  // PRB occupancy enters through SetBackgroundLoad (real on-air
  // interference plus real scheduler pressure), PRACH contention through
  // the controller's aggregate sensor input. Every quantity below is
  // counter-drawn from the derived seed — no stateful RNG and no events
  // beyond the serial epoch tick — so enabling the tier preserves all
  // bit-identity gates (threads, shards, SIMD).
  traffic::AggregateLoadConfig agg_cfg = cfg.aggregate_load;
  if (agg_cfg.users_per_cell <= 0) {
    if (const char* users = std::getenv("CELLFI_AGG_LOAD")) {
      agg_cfg.users_per_cell = std::max(0, std::atoi(users));
    }
  }
  std::optional<traffic::AggregateLoad> agg;
  if (agg_cfg.users_per_cell > 0 && !topo.aps.empty()) {
    agg_cfg.seed = cfg.seed ^ 0xA66A;
    agg.emplace(agg_cfg);
    const int num_cells = static_cast<int>(topo.aps.size());
    const int clusters = std::max(1, agg_cfg.clusters_per_cell);

    // Cluster anchors stand in for the population's spatial mass: placed
    // uniformly in the client disc of their AP, they never transmit — the
    // environment only answers link-gain queries here, once, to decide
    // which observer cells would hear each cluster's preambles under the
    // same open-loop power control + detection threshold
    // LteNetwork::EmitPrach applies to real UEs.
    std::vector<std::vector<int>> audible(
        static_cast<std::size_t>(num_cells) * static_cast<std::size_t>(clusters));
    std::vector<std::uint8_t> pair_audible(
        static_cast<std::size_t>(num_cells) * static_cast<std::size_t>(num_cells), 0);
    for (int c = 0; c < num_cells; ++c) {
      for (int k = 0; k < clusters; ++k) {
        const double u1 = traffic::AggregateLoad::NormalizedDraw(
            agg_cfg.seed, static_cast<std::uint64_t>(c),
            static_cast<std::uint64_t>(k), 0xC1);
        const double u2 = traffic::AggregateLoad::NormalizedDraw(
            agg_cfg.seed, static_cast<std::uint64_t>(c),
            static_cast<std::uint64_t>(k), 0xC2);
        const double r = cfg.topology.client_radius_m * std::sqrt(u1);
        const Point ap = topo.aps[static_cast<std::size_t>(c)];
        const RadioNodeId cluster_radio = env.AddNode(
            {.position = Point{ap.x + r * std::cos(kTau * u2),
                               ap.y + r * std::sin(kTau * u2)},
             .tx_power_dbm = cfg.client_power_dbm});
        const double gain_to_serving =
            env.LinkGainDb(cluster_radio, ap_radios[static_cast<std::size_t>(c)]);
        const double tx_dbm =
            net_cfg.prach_power_control
                ? std::min(net_cfg.prach_target_rx_dbm - gain_to_serving,
                           cfg.client_power_dbm)
                : cfg.client_power_dbm;
        for (int o = 0; o < num_cells; ++o) {
          const double rx_dbm =
              tx_dbm + env.LinkGainDb(cluster_radio,
                                      ap_radios[static_cast<std::size_t>(o)]);
          const double snr =
              rx_dbm -
              NoisePowerDbm(kPrachBandwidthHz,
                            env.node(ap_radios[static_cast<std::size_t>(o)])
                                .noise_figure_db);
          if (snr < net_cfg.prach_detect_snr_db) continue;
          audible[static_cast<std::size_t>(c * clusters + k)].push_back(o);
          pair_audible[static_cast<std::size_t>(o * num_cells + c)] = 1;
        }
      }
    }

    const SimTime agg_period =
        static_cast<SimTime>(std::llround(agg_cfg.epoch_s * kSecond));
    // One tick per generator epoch, run serially on the event loop: push
    // each cell's utilization into the MAC, refresh every audible
    // (observer, serving) contender count (zeros included, so loads that
    // fall expire into fresh zeros instead of lingering), and emit the
    // per-cell offered-load gauge / utilization histogram / trace event.
    auto agg_step = std::make_shared<std::function<void()>>(
        [&sim, &net, &controller, &agg, num_cells, clusters,
         audible = std::move(audible), pair_audible = std::move(pair_audible),
         counts = std::vector<int>(
             static_cast<std::size_t>(num_cells) * static_cast<std::size_t>(num_cells),
             0),
         epoch = std::int64_t{0}]() mutable {
          std::fill(counts.begin(), counts.end(), 0);
          for (int c = 0; c < num_cells; ++c) {
            const traffic::CellLoadSample s = agg->Sample(c, epoch);
            net.SetBackgroundLoad(static_cast<lte::CellId>(c), s.utilization);
            if (controller != nullptr) {
              const std::vector<int> split = agg->ClusterSplit(s.active_users);
              for (int k = 0; k < clusters; ++k) {
                if (split[static_cast<std::size_t>(k)] == 0) continue;
                for (int o : audible[static_cast<std::size_t>(c * clusters + k)]) {
                  counts[static_cast<std::size_t>(o * num_cells + c)] +=
                      split[static_cast<std::size_t>(k)];
                }
              }
            }
            if (obs::MetricsRegistry* m = obs::ActiveMetrics()) {
              m->Set(m->Gauge("traffic.agg.offered_bps.c" + std::to_string(c)),
                     s.offered_bps);
              m->Observe(m->Histogram("traffic.agg.utilization",
                                      obs::FractionBounds()),
                         s.utilization);
            }
            if (obs::TraceSink* tr = obs::ActiveTrace()) {
              // Integer fields only (rounded percent for utilization) so
              // the golden diurnal trace stays byte-stable.
              tr->Emit(sim.Now(), "traffic", "agg_load",
                       {{"cell", c},
                        {"epoch", epoch},
                        {"active", s.active_users},
                        {"util_pct",
                         static_cast<int>(std::lround(s.utilization * 100.0))}});
            }
          }
          if (controller != nullptr) {
            for (int o = 0; o < num_cells; ++o) {
              for (int c = 0; c < num_cells; ++c) {
                if (!pair_audible[static_cast<std::size_t>(o * num_cells + c)]) continue;
                controller->SetAggregateContenders(
                    static_cast<lte::CellId>(o), static_cast<lte::CellId>(c),
                    counts[static_cast<std::size_t>(o * num_cells + c)]);
              }
            }
          }
          ++epoch;
        });
    // Epoch 0 applies at t = 0 (the tier is live from the first subframe),
    // then once per generator epoch.
    sim.ScheduleAfter(0, [&sim, agg_step, agg_period] {
      (*agg_step)();
      sim.SchedulePeriodic(agg_period, [agg_step] { (*agg_step)(); });
    });
  }

  // --- Chaos injection (DESIGN.md §14) ---------------------------------------
  // Crash events deactivate the cell (instant off-air) and reactivate it
  // after the event's reboot duration; load shocks scale the backlogged
  // offered load per cell. Without a plan the scale stays 1.0 and the
  // schedule below is byte-identical to a chaos-free run.
  std::vector<double> cell_load_scale(topo.aps.size(), 1.0);
  const std::optional<chaos::FaultPlan> chaos_plan = ResolveChaosPlan(cfg);
  std::optional<chaos::FaultScheduler> chaos_sched;
  if (chaos_plan.has_value()) {
    const int num_cells = static_cast<int>(topo.aps.size());
    chaos::FaultHooks hooks;
    hooks.crash_ap = [&sim, &net, num_cells](int ap, const chaos::FaultEvent& e) {
      if (ap < 0 || ap >= num_cells) return;
      const lte::CellId cell = static_cast<lte::CellId>(ap);
      net.SetCellActive(cell, false);
      const SimTime reboot = e.duration > 0 ? e.duration : 2 * kSecond;
      sim.ScheduleAfter(reboot, [&net, cell] { net.SetCellActive(cell, true); });
    };
    hooks.load_shock_begin = [&cell_load_scale](const chaos::FaultEvent& e) {
      const double scale = e.magnitude > 0.0 ? e.magnitude : 1.0;
      if (e.target < 0) {
        std::fill(cell_load_scale.begin(), cell_load_scale.end(), scale);
      } else if (e.target < static_cast<int>(cell_load_scale.size())) {
        cell_load_scale[static_cast<std::size_t>(e.target)] = scale;
      }
    };
    hooks.load_shock_end = [&cell_load_scale](const chaos::FaultEvent& e) {
      if (e.target < 0) {
        std::fill(cell_load_scale.begin(), cell_load_scale.end(), 1.0);
      } else if (e.target < static_cast<int>(cell_load_scale.size())) {
        cell_load_scale[static_cast<std::size_t>(e.target)] = 1.0;
      }
    };
    chaos_sched.emplace(sim, *chaos_plan, std::move(hooks), num_cells);
    chaos_sched->Arm();
  }

  // --- Traffic and accounting ------------------------------------------------
  std::vector<std::uint64_t> measured_bits(ues.size(), 0);
  traffic::FlowTracker tracker;
  std::vector<std::unique_ptr<traffic::WebSession>> sessions;

  net.on_dl_delivered = [&](lte::UeId ue, std::uint64_t bytes, SimTime now) {
    if (now >= cfg.warmup) measured_bits[static_cast<std::size_t>(ue)] += 8 * bytes;
    tracker.OnDelivered(static_cast<traffic::ClientId>(ue), bytes, now);
  };

  Rng traffic_rng(cfg.seed ^ 0x7EB);
  if (cfg.workload == WorkloadKind::kBacklogged) {
    // Keep every connected client's queue topped up; a load shock on the
    // client's home cell scales the offered bytes.
    sim.SchedulePeriodic(500 * kMillisecond, [&] {
      for (std::size_t u = 0; u < ues.size(); ++u) {
        const auto cell = static_cast<std::size_t>(topo.client_home_ap[u]);
        const double scale =
            cell < cell_load_scale.size() ? cell_load_scale[cell] : 1.0;
        net.OfferDownlink(ues[u],
                          static_cast<std::uint64_t>((4 << 20) * scale));
      }
    });
  } else {
    tracker.on_flow_complete = [&](const traffic::FlowRecord& rec) {
      sessions[static_cast<std::size_t>(rec.client)]->OnFlowComplete(rec);
    };
    for (std::size_t u = 0; u < ues.size(); ++u) {
      sessions.push_back(std::make_unique<traffic::WebSession>(
          sim, tracker, static_cast<traffic::ClientId>(ues[u]), cfg.web,
          [&](traffic::ClientId client, std::uint64_t bytes) {
            net.OfferDownlink(static_cast<lte::UeId>(client), bytes);
          },
          traffic_rng.Fork()));
      sessions.back()->Start();
    }
  }

  net.Start();
  sim.RunUntil(cfg.duration);

  ScenarioResult result;
  const double window_s = ToSeconds(cfg.duration - cfg.warmup);
  for (std::size_t u = 0; u < ues.size(); ++u) {
    ClientOutcome outcome;
    outcome.throughput_bps = static_cast<double>(measured_bits[u]) / window_s;
    outcome.attached = net.ue(ues[u]).connected_time > 0;
    if (!sessions.empty()) {
      outcome.pages_completed = sessions[u]->pages_completed();
      outcome.pages_started = sessions[u]->pages_started();
      outcome.page_load_times_s = sessions[u]->page_load_times();
    }
    result.clients.push_back(std::move(outcome));
  }
  if (controller != nullptr) {
    result.im_total_hops = controller->total_hops();
    result.im_cells_still_hopping = controller->cells_hopping_recently();
  }
  if (chaos_sched.has_value()) {
    result.chaos_faults_injected = chaos_sched->injected();
  }
  Finalize(result, cfg);
  obs_session.Export(result);
  return result;
}

ScenarioResult RunWifi(const ScenarioConfig& cfg, const Topology& topo) {
  Simulator sim;
  ObsSession obs_session(cfg, sim);
  RadioEnvironment env(PathLossFor(cfg.propagation), EnvConfigFor(cfg));
  wifi::WifiMacConfig mac;
  mac.channel_width_hz = cfg.wifi_channel_width_hz;
  mac.clock_scale =
      cfg.tech == Technology::kWifi80211af ? cfg.wifi_clock_scale : 1.0;
  wifi::WifiNetwork net(sim, env, mac, cfg.seed ^ 0x3F);

  for (const Point& p : topo.aps) {
    net.AddAp(env.AddNode({.position = p, .tx_power_dbm = cfg.ap_power_dbm}));
  }
  std::vector<wifi::StaId> stas;
  for (std::size_t u = 0; u < topo.clients.size(); ++u) {
    const wifi::ApId home =
        cfg.home_ap_association ? static_cast<wifi::ApId>(topo.client_home_ap[u]) : -1;
    stas.push_back(net.AddSta(
        env.AddNode({.position = topo.clients[u], .tx_power_dbm = cfg.wifi_client_power_dbm}),
        home));
  }

  std::vector<std::uint64_t> measured_bits(stas.size(), 0);
  traffic::FlowTracker tracker;
  std::vector<std::unique_ptr<traffic::WebSession>> sessions;

  net.on_delivered = [&](wifi::StaId sta, std::uint64_t bytes, SimTime now) {
    if (now >= cfg.warmup) measured_bits[static_cast<std::size_t>(sta)] += 8 * bytes;
    tracker.OnDelivered(static_cast<traffic::ClientId>(sta), bytes, now);
  };

  Rng traffic_rng(cfg.seed ^ 0x7EB);
  if (cfg.workload == WorkloadKind::kBacklogged) {
    sim.SchedulePeriodic(500 * kMillisecond, [&] {
      for (wifi::StaId sta : stas) {
        net.OfferDownlink(sta, 4 << 20);
      }
    });
  } else {
    tracker.on_flow_complete = [&](const traffic::FlowRecord& rec) {
      sessions[static_cast<std::size_t>(rec.client)]->OnFlowComplete(rec);
    };
    for (std::size_t s = 0; s < stas.size(); ++s) {
      sessions.push_back(std::make_unique<traffic::WebSession>(
          sim, tracker, static_cast<traffic::ClientId>(stas[s]), cfg.web,
          [&](traffic::ClientId client, std::uint64_t bytes) {
            net.OfferDownlink(static_cast<wifi::StaId>(client), bytes);
          },
          traffic_rng.Fork()));
      sessions.back()->Start();
    }
  }

  net.Start();
  sim.RunUntil(cfg.duration);

  ScenarioResult result;
  const double window_s = ToSeconds(cfg.duration - cfg.warmup);
  for (std::size_t s = 0; s < stas.size(); ++s) {
    ClientOutcome outcome;
    outcome.throughput_bps = static_cast<double>(measured_bits[s]) / window_s;
    outcome.attached = net.sta_stats(stas[s]).associated;
    if (!sessions.empty()) {
      outcome.pages_completed = sessions[s]->pages_completed();
      outcome.pages_started = sessions[s]->pages_started();
      outcome.page_load_times_s = sessions[s]->page_load_times();
    }
    result.clients.push_back(std::move(outcome));
  }
  Finalize(result, cfg);
  obs_session.Export(result);
  return result;
}

}  // namespace

ScenarioResult RunScenarioOn(const ScenarioConfig& cfg, const Topology& topo) {
  switch (cfg.tech) {
    case Technology::kWifi80211af:
    case Technology::kWifi80211ac:
      return RunWifi(cfg, topo);
    default:
      return RunLteBased(cfg, topo);
  }
}

ScenarioResult RunScenario(const ScenarioConfig& cfg) {
  Rng rng(cfg.seed);
  const Topology topo = GenerateTopology(cfg.topology, rng);
  return RunScenarioOn(cfg, topo);
}

}  // namespace cellfi::scenario
