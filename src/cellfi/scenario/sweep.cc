#include "cellfi/scenario/sweep.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "cellfi/common/json.h"
#include "cellfi/common/simd.h"
#include "cellfi/scenario/report.h"
#include "cellfi/sim/worker_pool.h"

namespace cellfi::scenario {

namespace {

std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

int EnvInt(const char* name) {
  if (const char* env = std::getenv(name)) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 0;
}

}  // namespace

std::uint64_t SweepSeed(std::uint64_t base, std::uint64_t point, std::uint64_t rep) {
  std::uint64_t h = SplitMix64(base);
  h = SplitMix64(h ^ point);
  h = SplitMix64(h ^ rep);
  return h;
}

int ResolveThreads(int requested) {
  if (requested > 0) return requested;
  if (const int env = EnvInt("CELLFI_BENCH_THREADS"); env > 0) return env;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

int ResolveReps(int default_reps) {
  if (const int env = EnvInt("CELLFI_BENCH_REPS"); env > 0) return env;
  return default_reps;
}

SweepRunner::SweepRunner(SweepOptions options) : progress_(options.progress) {
  const int n = ResolveThreads(options.threads);
  // Register with the nested-parallelism guard: while this pool is alive,
  // intra-replication shard pools (sim/worker_pool) derive their default
  // thread count as hardware / active sweep threads, so
  // sweep_threads x shard_threads never silently oversubscribes.
  AddActiveSweepThreads(n);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

SweepRunner::~SweepRunner() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  AddActiveSweepThreads(-static_cast<int>(workers_.size()));
}

void SweepRunner::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || next_ < count_; });
    if (stop_) return;
    const std::size_t index = next_++;
    lock.unlock();
    (*task_)(index);
    lock.lock();
    if (++completed_ == count_) done_cv_.notify_all();
  }
}

void SweepRunner::RunTasks(std::size_t count,
                           const std::function<void(std::size_t)>& task) {
  if (count == 0) return;

  // Exceptions never unwind through the pool: capture the first (by task
  // index, for determinism) and rethrow after the batch has drained.
  std::mutex error_mu;
  std::size_t error_index = count;
  std::exception_ptr error;
  const std::function<void(std::size_t)> guarded = [&](std::size_t i) {
    try {
      task(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mu);
      if (i < error_index) {
        error_index = i;
        error = std::current_exception();
      }
    }
  };

  {
    std::lock_guard<std::mutex> lock(mu_);
    task_ = &guarded;
    count_ = count;
    next_ = 0;
    completed_ = 0;
  }
  work_cv_.notify_all();
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return completed_ == count_; });
    task_ = nullptr;
    count_ = 0;
    next_ = 0;
    completed_ = 0;
  }
  if (error) std::rethrow_exception(error);
}

ReplicationOutcome RunOneReplication(const Replication& job) {
  ReplicationOutcome out;
  out.point = job.point;
  out.rep = job.rep;
  out.seed = job.config.seed;
  out.label = job.label;
  out.sim_seconds = ToSeconds(job.config.duration);
  const auto start = std::chrono::steady_clock::now();
  try {
    if (job.topology != nullptr) {
      out.result = RunScenarioOn(job.config, *job.topology);
    } else {
      out.result = RunScenario(job.config);
    }
  } catch (const std::exception& e) {
    out.error = std::current_exception();
    out.error_text = e.what();
  } catch (...) {
    out.error = std::current_exception();
    out.error_text = "unknown exception";
  }
  out.wall_seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return out;
}

std::vector<ReplicationOutcome> SweepRunner::Run(const std::vector<Replication>& jobs,
                                                const ReplicationBody& body) {
  std::vector<ReplicationOutcome> outcomes(jobs.size());
  std::mutex progress_mu;
  std::size_t finished = 0;
  RunTasks(jobs.size(), [&](std::size_t i) {
    const Replication& job = jobs[i];
    if (body) {
      ReplicationOutcome out;
      out.point = job.point;
      out.rep = job.rep;
      out.seed = job.config.seed;
      out.label = job.label;
      out.sim_seconds = ToSeconds(job.config.duration);
      const auto start = std::chrono::steady_clock::now();
      try {
        out.result = body(job);
      } catch (const std::exception& e) {
        out.error = std::current_exception();
        out.error_text = e.what();
      } catch (...) {
        out.error = std::current_exception();
        out.error_text = "unknown exception";
      }
      out.wall_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
      outcomes[i] = std::move(out);
    } else {
      outcomes[i] = RunOneReplication(job);
    }
    if (progress_) {
      std::lock_guard<std::mutex> lock(progress_mu);
      ++finished;
      std::fprintf(stderr, "[sweep] %zu/%zu point=%d rep=%d %.1fs%s\n", finished,
                   jobs.size(), job.point, job.rep, outcomes[i].wall_seconds,
                   outcomes[i].error ? " FAILED" : "");
    }
  });
  return outcomes;
}

void ThrowIfFailed(const std::vector<ReplicationOutcome>& outcomes) {
  for (const ReplicationOutcome& out : outcomes) {
    if (out.error) std::rethrow_exception(out.error);
  }
}

Summary PointSummary(const std::vector<ReplicationOutcome>& outcomes, int point,
                     const std::function<double(const ScenarioResult&)>& metric) {
  Summary s;
  for (const ReplicationOutcome& out : outcomes) {
    if (out.point == point && !out.error) s.Add(metric(out.result));
  }
  return s;
}

Distribution PointDistribution(
    const std::vector<ReplicationOutcome>& outcomes, int point,
    const std::function<void(const ScenarioResult&, Distribution&)>& add) {
  Distribution d;
  for (const ReplicationOutcome& out : outcomes) {
    if (out.point == point && !out.error) add(out.result, d);
  }
  return d;
}

BenchReport::BenchReport(std::string name, int threads, int reps)
    : name_(std::move(name)),
      threads_(threads),
      reps_(reps),
      start_(std::chrono::steady_clock::now()) {}

void BenchReport::AddPoint(const std::string& label,
                           const std::vector<ReplicationOutcome>& outcomes, int point) {
  Point p;
  p.label = label;
  for (const ReplicationOutcome& out : outcomes) {
    if (out.point != point) continue;
    ++p.reps;
    p.wall_seconds += out.wall_seconds;
    p.sim_seconds += out.sim_seconds;
    if (out.error == nullptr) {
      // Restored outcomes carry their snapshot through the checkpoint (no
      // live ScenarioResult to snapshot from); live outcomes snapshot here.
      json::Value snap =
          out.restored ? out.restored_obs : ObsSnapshotToJson(out.result);
      if (!snap.is_null()) {
        json::Value entry;
        entry["rep"] = out.rep;
        entry["obs"] = std::move(snap);
        p.obs.push_back(std::move(entry));
      }
    } else {
      // A failing replication leaves a structured record in the artifact —
      // the failing seed and exception text — never a silent hole in the
      // rep count.
      json::Value failure;
      failure["rep"] = out.rep;
      failure["seed"] = std::to_string(out.seed);
      if (!out.label.empty()) failure["label"] = out.label;
      failure["error"] = out.error_text.empty() ? "unknown exception" : out.error_text;
      if (out.attempts > 0) failure["attempts"] = out.attempts;
      if (out.quarantined) failure["quarantined"] = true;
      p.failures.push_back(std::move(failure));
    }
  }
  points_.push_back(std::move(p));
}

void BenchReport::AddPoint(const std::string& label, int reps, double wall_seconds,
                           double sim_seconds) {
  points_.push_back(Point{label, reps, wall_seconds, sim_seconds, {}, {}});
}

std::string BenchReport::Write() const {
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  double total_sim = 0.0;
  double total_rep_wall = 0.0;
  json::Array points;
  for (const Point& p : points_) {
    json::Value v;
    v["label"] = p.label;
    v["reps"] = p.reps;
    v["wall_s"] = p.wall_seconds;
    v["sim_s"] = p.sim_seconds;
    v["sim_per_wall"] = p.wall_seconds > 0.0 ? p.sim_seconds / p.wall_seconds : 0.0;
    if (!p.obs.empty()) v["obs"] = p.obs;
    if (!p.failures.empty()) v["failures"] = p.failures;
    points.push_back(v);
    total_sim += p.sim_seconds;
    total_rep_wall += p.wall_seconds;
  }

  json::Value doc;
  doc["bench"] = name_;
  doc["threads"] = threads_;
  doc["reps"] = reps_;
  // Which simd.h kernel variant produced these numbers ("avx2", "sse2",
  // "neon" or "scalar") — recorded so baselines are only compared against
  // runs of the same kernel.
  doc["simd_kernel"] = simd::ActiveKernelName();
  doc["points"] = points;
  // `wall_s` is the bench's elapsed wall clock; `replication_wall_s` sums
  // the per-replication clocks, so their ratio is the achieved parallelism.
  doc["wall_s"] = elapsed;
  doc["replication_wall_s"] = total_rep_wall;
  doc["parallel_speedup"] = elapsed > 0.0 ? total_rep_wall / elapsed : 0.0;
  doc["sim_s"] = total_sim;
  doc["sim_per_wall"] = elapsed > 0.0 ? total_sim / elapsed : 0.0;

  std::string dir = ".";
  if (const char* env = std::getenv("CELLFI_BENCH_OUT")) {
    if (env[0] != '\0') dir = env;
  }
  const std::string path = dir + "/BENCH_" + name_ + ".json";
  std::ofstream file(path);
  file << doc.Dump() << "\n";
  return path;
}

}  // namespace cellfi::scenario
