// Chaos campaign: a fleet of PAWS-governed APs under a deterministic
// fault plan (DESIGN.md §14).
//
// Builds `num_aps` full AP chains — one shared SpectrumDatabase/PawsServer,
// per-AP FaultyTransport (seeded from the plan, so adding an AP never
// perturbs another's draws), PawsSession and ChannelSelector — then arms a
// `FaultScheduler` over the plan: AP process crashes (lease state lost,
// re-registration storms), database outages and brownouts, and incumbent
// churn that mass-invalidates leases. A runtime `InvariantChecker` is
// scoped around the run and evaluated at a periodic barrier tick; its
// violations ship in the result.
//
// Determinism: the outcome is a pure function of (config, plan). The
// result's `Digest()` hashes every timeline, violation and counter so
// bit-reproducibility can be asserted across runs and thread counts.
#pragma once

#include <cstdint>
#include <vector>

#include "cellfi/chaos/fault_plan.h"
#include "cellfi/chaos/fault_scheduler.h"
#include "cellfi/chaos/invariants.h"
#include "cellfi/core/channel_selector.h"
#include "cellfi/tvws/database.h"
#include "cellfi/tvws/paws_session.h"
#include "cellfi/tvws/paws_transport.h"

namespace cellfi::scenario {

struct ChaosCampaignConfig {
  int num_aps = 4;
  tvws::DatabaseConfig database;
  core::ChannelSelectorConfig selector;  // instance/location overridden per AP
  tvws::PawsSessionConfig session;
  chaos::FaultPlan plan;
  chaos::InvariantCheckerConfig invariants;
  /// All APs share one location so every injected incumbent's protection
  /// contour covers the whole fleet (mass lease invalidation).
  tvws::GeoLocation location{.latitude = 47.64, .longitude = -122.13};
  /// Barrier cadence for the invariant checker's time-based checks.
  SimTime barrier_period = 100 * kMillisecond;
  SimTime run_until = 1200 * kSecond;
};

/// Per-AP outcome of one campaign.
struct ApOutcome {
  std::vector<core::TimelineEvent> timeline;
  std::vector<SimTime> lease_confirms;
  tvws::SessionCounters session;
  tvws::FaultyTransport::Counters transport;
  std::uint64_t crashes = 0;
  tvws::SessionState final_state = tvws::SessionState::kHealthy;
  core::ApRadioState final_radio_state = core::ApRadioState::kOff;
};

struct ChaosCampaignResult {
  std::vector<ApOutcome> aps;
  std::vector<chaos::InvariantViolation> violations;
  chaos::FaultScheduler::Counters faults;
  std::uint64_t faults_injected = 0;
  std::uint64_t invariant_checks = 0;

  /// FNV-1a hash over every timeline, lease confirmation, violation and
  /// counter — two campaigns are bit-identical iff digests match.
  std::uint64_t Digest() const;
};

/// Run one chaos campaign end to end.
ChaosCampaignResult RunChaosCampaign(const ChaosCampaignConfig& config);

}  // namespace cellfi::scenario
