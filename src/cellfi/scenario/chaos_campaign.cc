#include "cellfi/scenario/chaos_campaign.h"

#include <memory>
#include <string>

#include "cellfi/obs/trace.h"
#include "cellfi/tvws/paws.h"

namespace cellfi::scenario {

namespace {

constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001B3ull;

void HashU64(std::uint64_t v, std::uint64_t& h) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFFull;
    h *= kFnvPrime;
  }
}

void HashStr(const std::string& s, std::uint64_t& h) {
  for (const char c : s) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= kFnvPrime;
  }
  HashU64(s.size(), h);
}

}  // namespace

std::uint64_t ChaosCampaignResult::Digest() const {
  std::uint64_t h = kFnvOffset;
  for (const ApOutcome& ap : aps) {
    for (const core::TimelineEvent& e : ap.timeline) {
      HashU64(static_cast<std::uint64_t>(e.time), h);
      HashStr(e.what, h);
      HashU64(static_cast<std::uint64_t>(e.channel), h);
    }
    for (const SimTime t : ap.lease_confirms) HashU64(static_cast<std::uint64_t>(t), h);
    HashU64(ap.session.successes, h);
    HashU64(ap.session.failures, h);
    HashU64(ap.session.retries, h);
    HashU64(ap.transport.delivered, h);
    HashU64(ap.transport.dropped_outage, h);
    HashU64(ap.transport.dropped_random, h);
    HashU64(ap.transport.dropped_brownout, h);
    HashU64(ap.crashes, h);
    HashU64(static_cast<std::uint64_t>(ap.final_state), h);
    HashU64(static_cast<std::uint64_t>(ap.final_radio_state), h);
  }
  for (const chaos::InvariantViolation& v : violations) {
    HashU64(static_cast<std::uint64_t>(v.time), h);
    HashU64(static_cast<std::uint64_t>(v.kind), h);
    HashU64(static_cast<std::uint64_t>(v.instance), h);
    HashStr(v.detail, h);
  }
  HashU64(faults_injected, h);
  HashU64(invariant_checks, h);
  return h;
}

ChaosCampaignResult RunChaosCampaign(const ChaosCampaignConfig& config) {
  Simulator sim;
  obs::ClockScope obs_clock([&sim] { return sim.Now(); });

  tvws::SpectrumDatabase db(config.database);
  tvws::PawsServer server(db);
  tvws::InProcessTransport wire(sim, server);

  chaos::InvariantChecker checker(config.invariants);
  chaos::InvariantScope checker_scope(&checker);

  core::QuietScanner scanner;  // campaign models the PAWS fleet, not RF

  // Per-AP chains. unique_ptr keeps addresses stable across construction.
  struct ApChain {
    std::unique_ptr<tvws::FaultyTransport> transport;
    std::unique_ptr<tvws::PawsClient> client;
    std::unique_ptr<tvws::PawsSession> session;
    std::unique_ptr<core::ChannelSelector> selector;
  };
  std::vector<ApChain> chains;
  chains.reserve(static_cast<std::size_t>(config.num_aps));
  for (int ap = 0; ap < config.num_aps; ++ap) {
    ApChain chain;
    chain.transport = std::make_unique<tvws::FaultyTransport>(
        sim, wire, chaos::LinkProfileFor(config.plan, ap));
    // Outage/brownout windows are part of the plan's database model: every
    // AP's link to the database degrades over the same wall of time.
    chaos::ApplyDbWindows(config.plan, *chain.transport);
    chain.client = std::make_unique<tvws::PawsClient>(
        tvws::DeviceDescriptor{.serial_number = "chaos-ap-" + std::to_string(ap)},
        config.database.regulatory);
    chain.session = std::make_unique<tvws::PawsSession>(sim, *chain.client,
                                                        *chain.transport, config.session);
    core::ChannelSelectorConfig sel_cfg = config.selector;
    sel_cfg.instance = ap;
    sel_cfg.location = config.location;
    chain.selector = std::make_unique<core::ChannelSelector>(sim, *chain.session,
                                                             scanner, sel_cfg);
    chains.push_back(std::move(chain));
  }

  chaos::FaultHooks hooks;
  hooks.crash_ap = [&chains](int ap, const chaos::FaultEvent&) {
    if (ap < 0 || ap >= static_cast<int>(chains.size())) return;
    // The session's caches and in-flight requests are process RAM too.
    chains[static_cast<std::size_t>(ap)].session->Reset();
    chains[static_cast<std::size_t>(ap)].selector->Crash();
  };
  // Outage/brownout windows were pre-registered on every transport above;
  // the scheduler's events just mark the boundaries in the trace.
  hooks.db_outage = [](SimTime, SimTime) {};
  hooks.db_brownout = [](const chaos::FaultEvent&) {};
  hooks.incumbent_arrive = [&db, &checker, &config, &sim](const chaos::FaultEvent& e) {
    db.AddIncumbent({.id = "chaos-" + std::to_string(e.channel),
                     .channel = e.channel,
                     .location = config.location,
                     .protection_radius_m = 50'000.0,
                     .start = sim.Now(),
                     .stop = 0});
    checker.OnIncumbentArrival(e.channel, sim.Now());
  };
  hooks.incumbent_depart = [&db, &checker, &sim](const chaos::FaultEvent& e) {
    db.RemoveIncumbent("chaos-" + std::to_string(e.channel));
    checker.OnIncumbentDeparture(e.channel, sim.Now());
  };
  chaos::FaultScheduler scheduler(sim, config.plan, std::move(hooks), config.num_aps);
  scheduler.Arm();

  // Barrier tick: evaluate the time-based invariants against the whole
  // fleet. The tick runs regardless of checker scope or trace sinks so
  // observability toggles never change the event schedule.
  sim.SchedulePeriodic(config.barrier_period, [&chains, &checker, &config, &sim] {
    const SimTime now = sim.Now();
    for (std::size_t ap = 0; ap < chains.size(); ++ap) {
      const core::ChannelSelector& sel = *chains[ap].selector;
      if (sel.state() != core::ApRadioState::kOn) continue;
      // An AP on air must be inside its own configured confirmation
      // budget: being past it means the vacate machinery failed.
      const bool leased =
          sel.last_lease_confirm() >= 0 &&
          now <= sel.last_lease_confirm() + config.selector.etsi_vacate_budget;
      checker.CheckLeasedTransmit(static_cast<int>(ap), leased, now);
    }
    checker.AtBarrier(now);
  });

  for (ApChain& chain : chains) chain.selector->Start();
  sim.RunUntil(config.run_until);

  ChaosCampaignResult result;
  result.aps.reserve(chains.size());
  for (const ApChain& chain : chains) {
    ApOutcome out;
    out.timeline = chain.selector->timeline();
    out.lease_confirms = chain.selector->lease_confirms();
    out.session = chain.session->counters();
    out.transport = chain.transport->counters();
    out.crashes = chain.selector->crash_count();
    out.final_state = chain.session->state();
    out.final_radio_state = chain.selector->state();
    result.aps.push_back(std::move(out));
  }
  result.violations = checker.violations();
  result.faults = scheduler.counters();
  result.faults_injected = scheduler.injected();
  result.invariant_checks = checker.checks_run();
  return result;
}

}  // namespace cellfi::scenario
