// Parallel replication runner for simulation sweeps.
//
// The Fig. 9 / Table 1 / ablation benches are Monte-Carlo sweeps over
// (point, replication) grids where every replication is an independent
// simulation: it builds its own Simulator, Rng and RadioEnvironment from a
// ScenarioConfig whose seed is a pure function of (point, rep). That makes
// the sweep embarrassingly parallel, and this subsystem exploits it with a
// fixed-size std::thread worker pool.
//
// Determinism contract: a replication's outcome depends only on its
// ScenarioConfig (and optional pre-built Topology), never on the thread
// that ran it, the number of workers, or completion order. Outcomes are
// collected into the input order, so per-point aggregation (whose
// floating-point results depend on summation order) is also independent of
// the thread count: results are bit-identical between threads=1 and
// threads=N.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cellfi/common/json.h"
#include "cellfi/common/stats.h"
#include "cellfi/scenario/harness.h"

namespace cellfi::scenario {

/// Seed for replication `rep` of sweep point `point`, derived from a
/// bench-level base seed with a pure integer hash (SplitMix64 chain):
/// identical on every platform and independent of execution order.
std::uint64_t SweepSeed(std::uint64_t base, std::uint64_t point, std::uint64_t rep);

/// Effective worker count: `requested` if > 0, else CELLFI_BENCH_THREADS,
/// else std::thread::hardware_concurrency() (min 1).
int ResolveThreads(int requested = 0);

/// Effective replication count: CELLFI_BENCH_REPS overrides `default_reps`
/// (quick runs, smoke tests).
int ResolveReps(int default_reps);

struct SweepOptions {
  /// Worker threads; <= 0 resolves via ResolveThreads.
  int threads = 0;
  /// Print one line per completed replication to stderr.
  bool progress = false;
};

/// One independent replication: a scenario plus its aggregation key.
struct Replication {
  ScenarioConfig config;
  /// Pre-built placement shared across technologies at the same
  /// (point, rep); when null the topology is generated from config.seed
  /// exactly as RunScenario does.
  std::shared_ptr<const Topology> topology;
  int point = 0;  ///< sweep-point index (aggregation key)
  int rep = 0;    ///< replication index within the point
  /// Human-readable scenario label (the bench point's name). Carried into
  /// failure records so a failing replication identifies its scenario, not
  /// just its seed.
  std::string label;
};

struct ReplicationOutcome {
  ScenarioResult result;     ///< valid only when error == nullptr
  std::exception_ptr error;  ///< exception thrown by the replication, if any
  /// what() of the thrown exception ("unknown exception" for non-standard
  /// throws); recorded in the bench artifact so a failing replication is
  /// never silently dropped.
  std::string error_text;
  double wall_seconds = 0.0;
  double sim_seconds = 0.0;  ///< simulated time covered by the run
  int point = 0;
  int rep = 0;
  /// Seed the replication ran with (for reproducing failures).
  std::uint64_t seed = 0;
  /// Scenario label copied from the Replication (failure forensics).
  std::string label;
  /// Attempts the supervisor spent on this replication (0 = plain runner).
  int attempts = 0;
  /// Failed every supervised attempt; recorded and excluded from stats.
  bool quarantined = false;
  /// Outcome restored from a sweep checkpoint instead of re-running.
  bool restored = false;
  /// Obs snapshot carried through the checkpoint (restored outcomes have
  /// no live ScenarioResult to snapshot from).
  json::Value restored_obs;
};

/// Body executed for one replication; the default runs the standard
/// topology-generation + RunScenarioOn path. Injectable for tests
/// (exception isolation) and non-standard per-replication work.
using ReplicationBody = std::function<ScenarioResult(const Replication&)>;

/// Fixed-size std::thread worker pool executing independent replications.
/// Workers are spawned once at construction and joined at destruction;
/// batches are handed to the pool via Run()/RunTasks(). One batch at a
/// time: the runner itself is not thread-safe.
class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {});
  ~SweepRunner();

  SweepRunner(const SweepRunner&) = delete;
  SweepRunner& operator=(const SweepRunner&) = delete;

  int threads() const { return static_cast<int>(workers_.size()); }

  /// Run every replication on the pool; blocks until all complete and
  /// returns outcomes in input order regardless of completion order. An
  /// exception inside one replication is captured in its outcome and does
  /// not disturb the others (see ThrowIfFailed).
  std::vector<ReplicationOutcome> Run(const std::vector<Replication>& jobs,
                                      const ReplicationBody& body = nullptr);

  /// Generic escape hatch for benches whose unit of work is not a
  /// ScenarioConfig (e.g. the hopping-game convergence sweeps): run
  /// `count` independent tasks, task(i) for i in [0, count). Tasks must
  /// not depend on execution order. The first exception (by task index) is
  /// rethrown after the whole batch has drained.
  void RunTasks(std::size_t count, const std::function<void(std::size_t)>& task);

 private:
  void WorkerLoop();

  // Batch state, guarded by mu_. `next_` is the pull cursor; workers take
  // indices with it and report completion through `completed_`.
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* task_ = nullptr;
  std::size_t count_ = 0;
  std::size_t next_ = 0;
  std::size_t completed_ = 0;
  bool stop_ = false;
  bool progress_ = false;
  std::vector<std::thread> workers_;
};

/// Run one replication exactly as the pool does (topology generation,
/// RunScenarioOn, wall/sim timing). Sequential fallback and test hook.
ReplicationOutcome RunOneReplication(const Replication& job);

/// Rethrow the first captured replication error, if any.
void ThrowIfFailed(const std::vector<ReplicationOutcome>& outcomes);

/// Mean/stddev/min/max of a per-replication scalar over the successful
/// replications of `point`, accumulated in replication order (bit-stable
/// across thread counts).
Summary PointSummary(const std::vector<ReplicationOutcome>& outcomes, int point,
                     const std::function<double(const ScenarioResult&)>& metric);

/// Percentile-capable sample collection over the successful replications
/// of `point`; `add` appends whatever per-client samples it wants.
Distribution PointDistribution(
    const std::vector<ReplicationOutcome>& outcomes, int point,
    const std::function<void(const ScenarioResult&, Distribution&)>& add);

/// Machine-readable bench artifact: accumulates per-point wall-clock and
/// simulated-time totals and writes BENCH_<name>.json so the performance
/// trajectory of every sweep bench is tracked across PRs.
class BenchReport {
 public:
  /// `threads` / `reps` are recorded verbatim in the artifact.
  BenchReport(std::string name, int threads, int reps);

  /// Record one sweep point from the outcomes whose point index matches.
  /// Replications run with observability enabled additionally embed their
  /// metrics snapshot (ObsSnapshotToJson) into the artifact point.
  void AddPoint(const std::string& label,
                const std::vector<ReplicationOutcome>& outcomes, int point);

  /// Record a manually timed point (benches not built on ScenarioConfig).
  void AddPoint(const std::string& label, int reps, double wall_seconds,
                double sim_seconds);

  /// Write BENCH_<name>.json into $CELLFI_BENCH_OUT (default: the current
  /// directory). Returns the path written.
  std::string Write() const;

 private:
  struct Point {
    std::string label;
    int reps = 0;
    double wall_seconds = 0.0;
    double sim_seconds = 0.0;
    /// Per-replication obs snapshots ({"rep": i, "obs": ...}); empty
    /// unless the replications ran with observability enabled.
    json::Array obs;
    /// Structured records of failed replications ({"rep", "seed",
    /// "error", ...}); a failure is part of the artifact, not a hole.
    json::Array failures;
  };
  std::string name_;
  int threads_;
  int reps_;
  std::chrono::steady_clock::time_point start_;
  std::vector<Point> points_;
};

}  // namespace cellfi::scenario
