// End-to-end evaluation harness: runs one technology over one topology and
// workload, and reports per-client outcomes.
//
// This is the engine behind the Fig. 2 / Fig. 9 benches: it binds
// propagation, the chosen MAC (CellFi / plain LTE / oracle-allocated LTE /
// 802.11af / 802.11ac), a traffic workload and the statistics collection,
// using identical placement and propagation across technologies so that
// differences are attributable to the MAC (paper Section 6.3.4).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "cellfi/chaos/fault_plan.h"
#include "cellfi/common/stats.h"
#include "cellfi/common/time.h"
#include "cellfi/core/cellfi_controller.h"
#include "cellfi/obs/metrics.h"
#include "cellfi/obs/trace.h"
#include "cellfi/phy/resource_grid.h"
#include "cellfi/scenario/topology.h"
#include "cellfi/traffic/aggregate_load.h"
#include "cellfi/traffic/web_workload.h"

namespace cellfi::scenario {

enum class Technology {
  kCellFi,       // LTE + distributed interference management
  kLte,          // plain LTE, no coordination
  kOracle,       // LTE + centralized oracle allocation (FERMI-like bound)
  kLaaLte,       // LTE + listen-before-talk (LAA/MulteFire style, Section 8)
  kWifi80211af,  // CSMA in TVWS
  kWifi80211ac,  // CSMA indoor (Fig. 2 comparison)
};

enum class WorkloadKind { kBacklogged, kWeb };

/// Per-run observability (DESIGN.md §13). When enabled the harness scopes
/// a fresh TraceSink + MetricsRegistry around the replication (thread-local,
/// so parallel sweeps stay race-free) and hands both back on the result.
/// The determinism contract guarantees enabling this changes no simulation
/// outcome bytes.
struct ObsOptions {
  bool enabled = false;
  /// Stream events to this JSONL file as well (single-run use: parallel
  /// replications sharing one path would interleave arbitrarily).
  std::string trace_path;
  /// In-memory event ring capacity.
  int ring_capacity = 1 << 16;
};

enum class PropagationKind {
  kHataUrbanUhf,   // outdoor TVWS (600 MHz), gentle slope: long links
  kSuburbanUhf,    // log-distance n = 3.5 at 600 MHz: the Fig. 9 regime,
                   // where cell, interference and PRACH-hearing radii are
                   // comparable (a few hundred metres)
  kIndoor5GHz,     // log-distance n = 3.0 at 5.2 GHz (802.11ac)
};

struct ScenarioConfig {
  Technology tech = Technology::kCellFi;
  WorkloadKind workload = WorkloadKind::kBacklogged;
  TopologyConfig topology;
  PropagationKind propagation = PropagationKind::kHataUrbanUhf;

  double ap_power_dbm = 30.0;
  double client_power_dbm = 20.0;     // LTE clients (TVWS cap)
  double wifi_client_power_dbm = 30.0;  // paper: Wi-Fi runs 30/30

  LteBandwidth lte_bandwidth = LteBandwidth::k5MHz;
  int lte_tdd_config = 4;
  double wifi_channel_width_hz = 6e6;  // Fig. 9 setting; Fig. 2 uses 20 MHz
  /// MAC/PHY clock-down factor; 802.11af (TVHT) ~4x slower than 802.11ac.
  double wifi_clock_scale = 4.0;

  SimTime warmup = 3 * kSecond;
  SimTime duration = 23 * kSecond;  // measurement = duration - warmup

  bool enable_fading = true;
  double shadowing_sigma_db = 6.0;

  /// Resolve LTE subframes through the per-epoch interference engine
  /// (DESIGN.md §12). `false` restores the legacy per-link path — kept for
  /// the bit-identity regression test and the bench_scale comparison.
  bool use_interference_engine = true;
  /// Negligible-interferer cull threshold (dB below the noise floor);
  /// <= 0 keeps every interferer (exact legacy arithmetic).
  double interference_floor_db = 0.0;
  /// Intra-replication spatial shards (DESIGN.md §15): the LTE cell grid
  /// is partitioned into this many groups whose subframe work can run on
  /// the shard worker pool. Bit-identical results for any value; only wall
  /// clock changes. Requires the interference engine.
  int shards = 1;
  /// Shard worker threads; 0 derives a default from CELLFI_SHARD_THREADS
  /// or hardware concurrency divided by active sweep workers.
  int shard_threads = 0;

  /// A client below this average rate counts as starved (10 % of the
  /// 1 Mbps per-user service floor from paper Section 2).
  double starvation_threshold_bps = 100e3;

  /// Clients attach only to their own network's AP (independent unplanned
  /// deployments: no cross-operator roaming). Disable to allow
  /// strongest-cell association, which models a single-operator network.
  bool home_ap_association = true;

  /// CellFi interference-management knobs (ablation studies); the seed is
  /// overridden per run.
  core::CellfiControllerConfig cellfi;

  traffic::WebWorkloadConfig web;

  /// Aggregate background-load tier (DESIGN.md §18): a fluid per-cell
  /// population riding alongside the fully-simulated UEs. Drives PRB
  /// occupancy (LteNetwork::SetBackgroundLoad) and synthetic PRACH
  /// contender counts (CellfiController::SetAggregateContenders) on every
  /// generator epoch. users_per_cell == 0 disables the tier; the
  /// CELLFI_AGG_LOAD env knob (background users per cell) provides an
  /// ad-hoc fallback when unset. The generator seed is derived from the
  /// scenario seed per run. LTE-based technologies only.
  traffic::AggregateLoadConfig aggregate_load;

  std::uint64_t seed = 1;

  /// Observability; defaults to fully off (and to the CELLFI_TRACE env
  /// knobs when unset — see README "Observability").
  ObsOptions obs;

  /// Chaos fault plan for the run (DESIGN.md §14). The LTE-based harness
  /// binds kApCrash (cell deactivated for the event's duration, default
  /// 2 s, then reactivated) and kLoadShock (backlogged offered load scaled
  /// by `magnitude` on the target cell); PAWS-level faults need the PAWS
  /// chain and are exercised by RunChaosCampaign. Unset falls back to the
  /// CELLFI_CHAOS_PLAN env knob (path of a fault-plan JSON file).
  std::optional<chaos::FaultPlan> chaos_plan;
};

struct ClientOutcome {
  double throughput_bps = 0.0;
  bool attached = false;  // associated / RRC-connected at any point
  bool starved = true;    // throughput below threshold
  int pages_completed = 0;
  int pages_started = 0;
  std::vector<double> page_load_times_s;
};

struct ScenarioResult {
  std::vector<ClientOutcome> clients;
  double fraction_connected = 0.0;  // attached and not starved
  double fraction_starved = 0.0;
  double total_throughput_bps = 0.0;
  Distribution client_throughput_mbps;
  Distribution page_load_times_s;
  /// CellFi-only convergence metrics.
  std::uint64_t im_total_hops = 0;
  int im_cells_still_hopping = 0;
  /// Faults the chaos scheduler actually injected (0 when no plan ran).
  /// Excluded from ResultToJson, like the obs handles below.
  std::uint64_t chaos_faults_injected = 0;
  /// Populated only when ScenarioConfig::obs (or CELLFI_TRACE) enabled
  /// observability for the run. Deliberately excluded from ResultToJson so
  /// report bytes stay identical with observability on or off.
  std::shared_ptr<obs::TraceSink> trace;
  std::shared_ptr<obs::MetricsRegistry> metrics;
};

/// Run one scenario (builds everything, runs, tears down).
ScenarioResult RunScenario(const ScenarioConfig& config);

/// Run one scenario on a pre-built topology (for cross-technology
/// comparisons over identical placements).
ScenarioResult RunScenarioOn(const ScenarioConfig& config, const Topology& topo);

}  // namespace cellfi::scenario
