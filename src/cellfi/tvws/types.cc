#include "cellfi/tvws/types.h"

#include <cmath>

namespace cellfi::tvws {

double TvChannel::CentreFrequencyHz() const {
  if (regulatory == Regulatory::kUs) {
    // US UHF: channel 14 spans 470-476 MHz, 6 MHz raster upward.
    return 470.0 * units::MHz + (number - 14) * 6.0 * units::MHz + 3.0 * units::MHz;
  }
  // EU UHF: channel 21 spans 470-478 MHz, 8 MHz raster upward.
  return 470.0 * units::MHz + (number - 21) * 8.0 * units::MHz + 4.0 * units::MHz;
}

double GeoDistanceM(const GeoLocation& a, const GeoLocation& b) {
  constexpr double kEarthRadiusM = 6'371'000.0;
  const double to_rad = M_PI / 180.0;
  const double lat1 = a.latitude * to_rad;
  const double lat2 = b.latitude * to_rad;
  const double dlat = (b.latitude - a.latitude) * to_rad;
  const double dlon = (b.longitude - a.longitude) * to_rad;
  const double h = std::sin(dlat / 2) * std::sin(dlat / 2) +
                   std::cos(lat1) * std::cos(lat2) * std::sin(dlon / 2) * std::sin(dlon / 2);
  return 2.0 * kEarthRadiusM * std::asin(std::sqrt(h));
}

}  // namespace cellfi::tvws
