#include "cellfi/tvws/database.h"

#include <algorithm>

namespace cellfi::tvws {

SpectrumDatabase::SpectrumDatabase(DatabaseConfig config) : config_(config) {}

bool SpectrumDatabase::AddIncumbent(Incumbent incumbent) {
  const bool exists = std::any_of(incumbents_.begin(), incumbents_.end(),
                                  [&](const Incumbent& i) { return i.id == incumbent.id; });
  if (exists) return false;
  incumbents_.push_back(std::move(incumbent));
  return true;
}

bool SpectrumDatabase::RemoveIncumbent(const std::string& id) {
  const auto it = std::remove_if(incumbents_.begin(), incumbents_.end(),
                                 [&](const Incumbent& i) { return i.id == id; });
  if (it == incumbents_.end()) return false;
  incumbents_.erase(it, incumbents_.end());
  return true;
}

bool SpectrumDatabase::IsAvailable(int channel, const GeoLocation& location,
                                   SimTime now) const {
  if (channel < config_.first_channel || channel > config_.last_channel) return false;
  for (const Incumbent& inc : incumbents_) {
    if (inc.channel != channel || !inc.ActiveAt(now)) continue;
    if (GeoDistanceM(inc.location, location) <= inc.protection_radius_m) return false;
  }
  return true;
}

std::vector<ChannelAvailability> SpectrumDatabase::Query(const GeoLocation& location,
                                                         SimTime now, bool master) const {
  std::vector<ChannelAvailability> out;
  for (int ch = config_.first_channel; ch <= config_.last_channel; ++ch) {
    if (!IsAvailable(ch, location, now)) continue;
    ChannelAvailability a;
    a.channel = TvChannel{.number = ch, .regulatory = config_.regulatory};
    a.max_eirp_dbm = master ? config_.default_max_eirp_dbm : config_.client_max_eirp_dbm;
    a.lease_start = now;
    a.lease_expiry = now + config_.lease_duration;
    // The lease never outlives a scheduled incumbent on this channel.
    for (const Incumbent& inc : incumbents_) {
      if (inc.channel != ch || inc.start <= now) continue;
      if (GeoDistanceM(inc.location, location) > inc.protection_radius_m) continue;
      a.lease_expiry = std::min(a.lease_expiry, inc.start);
    }
    out.push_back(a);
  }
  return out;
}

}  // namespace cellfi::tvws
