// PAWS protocol (RFC 7545 subset) between CellFi access points and the
// spectrum database (paper Section 4.2: "an ETSI-compliant TVWS database
// client using the PAWS protocol").
//
// Implemented methods, all JSON-RPC framed:
//   spectrum.paws.init              -> capabilities / ruleset handshake
//   spectrum.paws.getSpectrum       -> AVAIL_SPECTRUM_REQ / RESP
//   spectrum.paws.notifySpectrumUse -> SPECTRUM_USE_NOTIFY
//
// `PawsServer` answers requests against a `SpectrumDatabase`; `PawsClient`
// builds requests and parses responses. Both sides speak JSON strings, so
// the wire format is real even though transport is in-process.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "cellfi/common/json.h"
#include "cellfi/tvws/database.h"
#include "cellfi/tvws/types.h"

namespace cellfi::tvws {

/// Parsed AVAIL_SPECTRUM_RESP.
struct AvailSpectrumResponse {
  std::vector<ChannelAvailability> channels;
  std::string ruleset;  // e.g. "EtsiEn301598"
};

/// Serializes PAWS requests and parses responses. Stateless apart from the
/// device identity and the JSON-RPC id counter.
class PawsClient {
 public:
  /// Sentinel for the parse functions: accept any response id.
  static constexpr int kAnyRequestId = -1;

  PawsClient(DeviceDescriptor device, Regulatory regulatory);

  /// Build the INIT_REQ JSON for this device at `location`.
  std::string BuildInitRequest(const GeoLocation& location);

  /// Build the AVAIL_SPECTRUM_REQ JSON.
  std::string BuildAvailSpectrumRequest(const GeoLocation& location, bool master);

  /// Build a SPECTRUM_USE_NOTIFY for the channel in use.
  std::string BuildSpectrumUseNotify(const GeoLocation& location,
                                     const ChannelAvailability& channel);

  /// JSON-RPC id of a request built by this client (nullopt if malformed).
  static std::optional<int> RequestId(const std::string& request);

  /// Parse an AVAIL_SPECTRUM_RESP; nullopt on malformed/error responses.
  /// When `expected_id` is given, a response whose JSON-RPC id is missing or
  /// different is rejected (stale/misrouted reply) with a logged warning.
  std::optional<AvailSpectrumResponse> ParseAvailSpectrumResponse(
      const std::string& body, int expected_id = kAnyRequestId);

  /// Parse the INIT_RESP; returns the ruleset authority or nullopt. Same
  /// `expected_id` semantics as `ParseAvailSpectrumResponse`.
  std::optional<std::string> ParseInitResponse(const std::string& body,
                                               int expected_id = kAnyRequestId);

  const DeviceDescriptor& device() const { return device_; }

 private:
  DeviceDescriptor device_;
  Regulatory regulatory_;
  int next_id_ = 1;
};

/// Answers PAWS JSON requests against a SpectrumDatabase. `now` is passed
/// per call so the server stays clock-agnostic.
///
/// Protocol state (RFC 7545 Section 4.3): a device must complete the INIT
/// handshake before the server answers its AVAIL_SPECTRUM_REQ; unregistered
/// devices get error -201. SPECTRUM_USE_NOTIFY messages are recorded per
/// device for audit.
class PawsServer {
 public:
  explicit PawsServer(const SpectrumDatabase& db);

  /// Handle any supported request; returns a JSON-RPC response (including
  /// JSON-RPC error responses for malformed or unsupported input). Mutates
  /// server state: registration on INIT, the SPECTRUM_USE audit trail, and
  /// the served-request counter.
  std::string Handle(const std::string& request, SimTime now);

  /// Number of requests served (diagnostics).
  int requests_served() const { return served_; }

  /// Has this device completed INIT?
  bool IsRegistered(const std::string& serial) const;

  /// Channels the device last reported in use (SPECTRUM_USE_NOTIFY).
  std::vector<int> ReportedUse(const std::string& serial) const;

 private:
  json::Value HandleInit(const json::Value& params);
  json::Value HandleGetSpectrum(const json::Value& params, SimTime now) const;
  json::Value HandleNotify(const json::Value& params);
  static std::string SerialOf(const json::Value& params);

  const SpectrumDatabase& db_;
  int served_ = 0;
  std::vector<std::string> registered_;
  std::vector<std::pair<std::string, std::vector<int>>> reported_use_;
};

/// Helpers shared by client/server (exposed for tests).
json::Value GeoLocationToJson(const GeoLocation& loc);
std::optional<GeoLocation> GeoLocationFromJson(const json::Value& v);

}  // namespace cellfi::tvws
