#include "cellfi/tvws/paws.h"

#include <algorithm>
#include <cmath>

#include "cellfi/common/logging.h"

namespace cellfi::tvws {

using json::Array;
using json::Object;
using json::Value;

namespace {

constexpr const char* kPawsVersion = "1.0";

const char* RulesetFor(Regulatory reg) {
  return reg == Regulatory::kUs ? "FccTvBandWhiteSpace-2010" : "EtsiEn301598-2014";
}

Value DeviceToJson(const DeviceDescriptor& d) {
  Value v;
  v["serialNumber"] = d.serial_number;
  v["manufacturerId"] = d.manufacturer;
  v["modelId"] = d.model;
  v["etsiEnDeviceType"] = d.etsi_device_type;
  return v;
}

Value MakeRequest(int id, const std::string& method, Value params) {
  Value v;
  v["jsonrpc"] = "2.0";
  v["method"] = method;
  params["type"] = method == "spectrum.paws.init" ? "INIT_REQ"
                   : method == "spectrum.paws.getSpectrum"
                       ? "AVAIL_SPECTRUM_REQ"
                       : "SPECTRUM_USE_NOTIFY";
  params["version"] = kPawsVersion;
  v["params"] = params;
  v["id"] = id;
  return v;
}

Value MakeResult(const Value& id, Value result) {
  Value v;
  v["jsonrpc"] = "2.0";
  v["result"] = std::move(result);
  v["id"] = id;
  return v;
}

Value MakeError(const Value& id, int code, const std::string& message) {
  Value v;
  v["jsonrpc"] = "2.0";
  v["error"]["code"] = code;
  v["error"]["message"] = message;
  v["id"] = id;
  return v;
}

// True when the response's JSON-RPC id is present and equals `expected_id`.
// A missing or different id marks a stale or misrouted reply (RFC 7545
// responses must echo the request id).
bool ResponseIdMatches(const Value& response, int expected_id) {
  const Value* id = response.Find("id");
  return id != nullptr && id->is_number() &&
         static_cast<int>(id->as_number()) == expected_id;
}

}  // namespace

Value GeoLocationToJson(const GeoLocation& loc) {
  Value v;
  v["point"]["center"]["latitude"] = loc.latitude;
  v["point"]["center"]["longitude"] = loc.longitude;
  v["confidence"] = 95;
  v["point"]["uncertainty"] = loc.uncertainty_m;
  return v;
}

std::optional<GeoLocation> GeoLocationFromJson(const Value& v) {
  const Value* point = v.Find("point");
  if (point == nullptr) return std::nullopt;
  const Value* center = point->Find("center");
  if (center == nullptr) return std::nullopt;
  const Value* lat = center->Find("latitude");
  const Value* lon = center->Find("longitude");
  if (lat == nullptr || lon == nullptr || !lat->is_number() || !lon->is_number()) {
    return std::nullopt;
  }
  GeoLocation loc;
  loc.latitude = lat->as_number();
  loc.longitude = lon->as_number();
  if (const Value* u = point->Find("uncertainty"); u != nullptr && u->is_number()) {
    loc.uncertainty_m = u->as_number();
  }
  return loc;
}

PawsClient::PawsClient(DeviceDescriptor device, Regulatory regulatory)
    : device_(std::move(device)), regulatory_(regulatory) {}

std::string PawsClient::BuildInitRequest(const GeoLocation& location) {
  Value params;
  params["deviceDesc"] = DeviceToJson(device_);
  params["location"] = GeoLocationToJson(location);
  return MakeRequest(next_id_++, "spectrum.paws.init", std::move(params)).Dump();
}

std::string PawsClient::BuildAvailSpectrumRequest(const GeoLocation& location,
                                                  bool master) {
  Value params;
  params["deviceDesc"] = DeviceToJson(device_);
  params["location"] = GeoLocationToJson(location);
  params["requestType"] = master ? "" : "SLAVE_DEVICE";
  return MakeRequest(next_id_++, "spectrum.paws.getSpectrum", std::move(params)).Dump();
}

std::string PawsClient::BuildSpectrumUseNotify(const GeoLocation& location,
                                               const ChannelAvailability& channel) {
  Value params;
  params["deviceDesc"] = DeviceToJson(device_);
  params["location"] = GeoLocationToJson(location);
  Value spectrum;
  spectrum["resolutionBwHz"] = TvChannelWidthHz(channel.channel.regulatory);
  Value profile;
  profile["hz"] = channel.channel.CentreFrequencyHz();
  profile["dbm"] = channel.max_eirp_dbm;
  spectrum["profiles"] = Array{profile};
  params["spectra"] = Array{spectrum};
  return MakeRequest(next_id_++, "spectrum.paws.notifySpectrumUse", std::move(params))
      .Dump();
}

std::optional<int> PawsClient::RequestId(const std::string& request) {
  auto v = json::Parse(request);
  if (!v || !v->is_object()) return std::nullopt;
  const Value* id = v->Find("id");
  if (id == nullptr || !id->is_number()) return std::nullopt;
  return static_cast<int>(id->as_number());
}

std::optional<std::string> PawsClient::ParseInitResponse(const std::string& body,
                                                         int expected_id) {
  auto v = json::Parse(body);
  if (!v) return std::nullopt;
  if (expected_id != kAnyRequestId && !ResponseIdMatches(*v, expected_id)) {
    CELLFI_WARN << "PAWS INIT_RESP id mismatch (expected " << expected_id
                << "); rejecting response";
    return std::nullopt;
  }
  const Value* result = v->Find("result");
  if (result == nullptr) return std::nullopt;
  const Value* ruleset = result->Find("rulesetInfos");
  if (ruleset == nullptr || !ruleset->is_array() || ruleset->as_array().empty()) {
    return std::nullopt;
  }
  const Value* authority = ruleset->as_array()[0].Find("authority");
  if (authority == nullptr || !authority->is_string()) return std::nullopt;
  return authority->as_string();
}

std::optional<AvailSpectrumResponse> PawsClient::ParseAvailSpectrumResponse(
    const std::string& body, int expected_id) {
  auto v = json::Parse(body);
  if (!v) return std::nullopt;
  if (expected_id != kAnyRequestId && !ResponseIdMatches(*v, expected_id)) {
    CELLFI_WARN << "PAWS AVAIL_SPECTRUM_RESP id mismatch (expected " << expected_id
                << "); rejecting response";
    return std::nullopt;
  }
  const Value* result = v->Find("result");
  if (result == nullptr) return std::nullopt;

  AvailSpectrumResponse out;
  if (const Value* rs = result->Find("rulesetInfo"); rs != nullptr) {
    if (const Value* auth = rs->Find("authority"); auth != nullptr && auth->is_string()) {
      out.ruleset = auth->as_string();
    }
  }

  const Value* schedules = result->Find("spectrumSchedules");
  if (schedules == nullptr || !schedules->is_array()) return std::nullopt;
  for (const Value& sched : schedules->as_array()) {
    const Value* event = sched.Find("eventTime");
    const Value* spectra = sched.Find("spectra");
    if (event == nullptr || spectra == nullptr || !spectra->is_array()) continue;
    ChannelAvailability avail;
    if (const Value* st = event->Find("startTimeNs"); st != nullptr && st->is_number()) {
      avail.lease_start = st->as_int();
    }
    if (const Value* et = event->Find("stopTimeNs"); et != nullptr && et->is_number()) {
      avail.lease_expiry = et->as_int();
    }
    for (const Value& spectrum : spectra->as_array()) {
      const Value* profiles = spectrum.Find("profiles");
      if (profiles == nullptr || !profiles->is_array()) continue;
      for (const Value& profile : profiles->as_array()) {
        const Value* hz = profile.Find("hz");
        const Value* dbm = profile.Find("dbm");
        const Value* ch = profile.Find("channelNumber");
        if (hz == nullptr || dbm == nullptr || ch == nullptr) continue;
        ChannelAvailability a = avail;
        a.channel.number = static_cast<int>(ch->as_number());
        a.channel.regulatory = regulatory_;
        a.max_eirp_dbm = dbm->as_number();
        out.channels.push_back(a);
      }
    }
  }
  return out;
}

PawsServer::PawsServer(const SpectrumDatabase& db) : db_(db) {}

std::string PawsServer::Handle(const std::string& request, SimTime now) {
  ++served_;
  auto v = json::Parse(request);
  if (!v || !v->is_object()) {
    return MakeError(Value(nullptr), -32700, "parse error").Dump();
  }
  const Value* id = v->Find("id");
  const Value id_val = id != nullptr ? *id : Value(nullptr);
  const Value* method = v->Find("method");
  const Value* params = v->Find("params");
  if (method == nullptr || !method->is_string() || params == nullptr) {
    return MakeError(id_val, -32600, "invalid request").Dump();
  }

  const std::string& m = method->as_string();
  if (m == "spectrum.paws.init") {
    return MakeResult(id_val, HandleInit(*params)).Dump();
  }
  if (m == "spectrum.paws.getSpectrum") {
    if (!IsRegistered(SerialOf(*params))) {
      return MakeError(id_val, -201, "device not registered (INIT required)").Dump();
    }
    const Value result = HandleGetSpectrum(*params, now);
    if (result.is_null()) return MakeError(id_val, -202, "missing location").Dump();
    return MakeResult(id_val, result).Dump();
  }
  if (m == "spectrum.paws.notifySpectrumUse") {
    if (!IsRegistered(SerialOf(*params))) {
      return MakeError(id_val, -201, "device not registered (INIT required)").Dump();
    }
    return MakeResult(id_val, HandleNotify(*params)).Dump();
  }
  return MakeError(id_val, -32601, "method not found").Dump();
}

std::string PawsServer::SerialOf(const Value& params) {
  const Value* desc = params.Find("deviceDesc");
  if (desc == nullptr) return {};
  const Value* serial = desc->Find("serialNumber");
  return serial != nullptr && serial->is_string() ? serial->as_string() : std::string{};
}

bool PawsServer::IsRegistered(const std::string& serial) const {
  if (serial.empty()) return false;
  return std::find(registered_.begin(), registered_.end(), serial) != registered_.end();
}

std::vector<int> PawsServer::ReportedUse(const std::string& serial) const {
  for (const auto& [s, channels] : reported_use_) {
    if (s == serial) return channels;
  }
  return {};
}

json::Value PawsServer::HandleInit(const Value& params) {
  const std::string serial = SerialOf(params);
  if (!serial.empty() && !IsRegistered(serial)) registered_.push_back(serial);
  Value result;
  result["type"] = "INIT_RESP";
  result["version"] = kPawsVersion;
  Value ruleset;
  ruleset["authority"] = RulesetFor(db_.config().regulatory);
  ruleset["maxLocationChange"] = 100;
  ruleset["maxPollingSecs"] = 86400;
  result["rulesetInfos"] = Array{ruleset};
  return result;
}

json::Value PawsServer::HandleGetSpectrum(const Value& params, SimTime now) const {
  const Value* loc_json = params.Find("location");
  if (loc_json == nullptr) return Value(nullptr);
  const auto loc = GeoLocationFromJson(*loc_json);
  if (!loc) return Value(nullptr);

  bool master = true;
  if (const Value* rt = params.Find("requestType");
      rt != nullptr && rt->is_string() && rt->as_string() == "SLAVE_DEVICE") {
    master = false;
  }

  Value result;
  result["type"] = "AVAIL_SPECTRUM_RESP";
  result["version"] = kPawsVersion;
  result["rulesetInfo"]["authority"] = RulesetFor(db_.config().regulatory);

  Array schedules;
  for (const ChannelAvailability& a : db_.Query(*loc, now, master)) {
    Value sched;
    sched["eventTime"]["startTimeNs"] = static_cast<std::int64_t>(a.lease_start);
    sched["eventTime"]["stopTimeNs"] = static_cast<std::int64_t>(a.lease_expiry);
    Value profile;
    profile["hz"] = a.channel.CentreFrequencyHz();
    profile["dbm"] = a.max_eirp_dbm;
    profile["channelNumber"] = a.channel.number;
    Value spectrum;
    spectrum["resolutionBwHz"] = TvChannelWidthHz(a.channel.regulatory);
    spectrum["profiles"] = Array{profile};
    sched["spectra"] = Array{spectrum};
    schedules.push_back(sched);
  }
  result["spectrumSchedules"] = std::move(schedules);
  return result;
}

json::Value PawsServer::HandleNotify(const Value& params) {
  // Record which channels the device reports using (audit trail).
  const std::string serial = SerialOf(params);
  std::vector<int> channels;
  if (const Value* spectra = params.Find("spectra");
      spectra != nullptr && spectra->is_array()) {
    for (const Value& spectrum : spectra->as_array()) {
      const Value* profiles = spectrum.Find("profiles");
      if (profiles == nullptr || !profiles->is_array()) continue;
      for (const Value& profile : profiles->as_array()) {
        if (const Value* hz = profile.Find("hz"); hz != nullptr && hz->is_number()) {
          // Recover the channel number from the centre frequency.
          const double f = hz->as_number();
          const double width = TvChannelWidthHz(db_.config().regulatory);
          const int first = db_.config().first_channel;
          const TvChannel ref{.number = first, .regulatory = db_.config().regulatory};
          channels.push_back(
              first + static_cast<int>(std::lround((f - ref.CentreFrequencyHz()) / width)));
        }
      }
    }
  }
  bool updated = false;
  for (auto& [s, chs] : reported_use_) {
    if (s == serial) {
      chs = channels;
      updated = true;
      break;
    }
  }
  if (!updated && !serial.empty()) reported_use_.emplace_back(serial, channels);

  Value result;
  result["type"] = "SPECTRUM_USE_NOTIFY_RESP";
  result["version"] = kPawsVersion;
  return result;
}

}  // namespace cellfi::tvws
