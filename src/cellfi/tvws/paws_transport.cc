#include "cellfi/tvws/paws_transport.h"

#include <utility>

#include "cellfi/common/json.h"

namespace cellfi::tvws {

void InProcessTransport::Send(const std::string& request, ResponseHandler on_response) {
  // The server is clock-agnostic; it sees the request at send time. The
  // response is delivered as a fresh event so callers never observe a
  // synchronous reply (matching any real transport).
  std::string response = server_.Handle(request, sim_.Now());
  sim_.ScheduleAfter(0, [on_response = std::move(on_response),
                         response = std::move(response)] { on_response(response); });
}

void FaultyTransport::AddOutage(SimTime start, SimTime stop) {
  outages_.emplace_back(start, stop);
}

void FaultyTransport::AddBrownout(const BrownoutWindow& window) {
  brownouts_.push_back(window);
}

bool FaultyTransport::InOutage(SimTime t) const {
  for (const auto& [start, stop] : outages_) {
    if (t >= start && t < stop) return true;
  }
  return false;
}

const BrownoutWindow* FaultyTransport::InBrownout(SimTime t) const {
  for (const BrownoutWindow& w : brownouts_) {
    if (t >= w.start && t < w.stop) return &w;
  }
  return nullptr;
}

std::string FaultyTransport::ApplyResponseFaults(const std::string& response) {
  if (profile_.error_probability > 0.0 &&
      response_rng_.Bernoulli(profile_.error_probability)) {
    // Replace the server's answer with a JSON-RPC error, keeping the id so
    // the reply still correlates with the request (an overloaded database).
    ++counters_.errors_injected;
    json::Value err;
    err["jsonrpc"] = "2.0";
    err["error"]["code"] = profile_.injected_error_code;
    err["error"]["message"] = "database overloaded (injected)";
    if (auto parsed = json::Parse(response); parsed && parsed->is_object()) {
      if (const json::Value* id = parsed->Find("id")) err["id"] = *id;
    }
    return err.Dump();
  }
  if (profile_.wrong_id_probability > 0.0 &&
      response_rng_.Bernoulli(profile_.wrong_id_probability)) {
    // A stale or misrouted reply: valid JSON, wrong correlation id.
    if (auto parsed = json::Parse(response); parsed && parsed->is_object()) {
      ++counters_.ids_mangled;
      const json::Value* id = parsed->Find("id");
      const int old_id = id != nullptr && id->is_number() ? static_cast<int>(id->as_number()) : 0;
      (*parsed)["id"] = old_id + 1'000'000;
      return parsed->Dump();
    }
  }
  if (profile_.corrupt_probability > 0.0 &&
      response_rng_.Bernoulli(profile_.corrupt_probability)) {
    // Mangle the body into something no JSON parser accepts.
    ++counters_.corrupted;
    return "!corrupt!" + response.substr(0, response.size() / 2);
  }
  return response;
}

void FaultyTransport::Send(const std::string& request, ResponseHandler on_response) {
  ++counters_.requests;
  if (InOutage(sim_.Now())) {
    ++counters_.dropped_outage;
    return;  // the database is down: the request vanishes
  }
  const BrownoutWindow* brownout = InBrownout(sim_.Now());
  if (profile_.drop_probability > 0.0 &&
      drop_rng_.Bernoulli(profile_.drop_probability)) {
    ++counters_.dropped_random;
    return;
  }
  if (brownout != nullptr && brownout->extra_drop_probability > 0.0 &&
      drop_rng_.Bernoulli(brownout->extra_drop_probability)) {
    ++counters_.dropped_brownout;
    return;
  }
  // Only requests that survive every drop gate draw a delay: a lost
  // request must not consume a delay slot, or the latency sequence seen by
  // delivered requests would depend on which requests happened to be lost.
  SimTime latency = profile_.latency_base;
  if (profile_.latency_jitter > 0) {
    latency += static_cast<SimTime>(
        delay_rng_.Uniform(0.0, static_cast<double>(profile_.latency_jitter)));
  }
  if (brownout != nullptr) {
    ++counters_.browned_out;
    latency += brownout->extra_latency;
  }
  inner_.Send(request, [this, latency, on_response = std::move(on_response)](
                           const std::string& response) {
    std::string body = ApplyResponseFaults(response);
    ++counters_.delivered;
    sim_.ScheduleAfter(latency, [on_response, body = std::move(body)] {
      on_response(body);
    });
  });
}

}  // namespace cellfi::tvws
