// TVWS spectrum database (the role of the certified Nominet database in the
// paper's testbed).
//
// The database protects incumbents only — it does NOT coordinate secondary
// users (paper Section 4.2). A query returns, for the given location and
// time, every managed channel with no active incumbent whose protection
// contour covers the device, together with the allowed EIRP and a lease
// window.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "cellfi/tvws/types.h"

namespace cellfi::tvws {

/// Configuration of the managed band.
struct DatabaseConfig {
  Regulatory regulatory = Regulatory::kUs;
  int first_channel = 14;
  int last_channel = 51;
  double default_max_eirp_dbm = 36.0;   // fixed device cap
  double client_max_eirp_dbm = 20.0;    // portable/client device cap
  SimTime lease_duration = 12 * 3600 * kSecond;  // granularity: hours-days
};

/// In-memory authoritative spectrum database.
class SpectrumDatabase {
 public:
  explicit SpectrumDatabase(DatabaseConfig config = {});

  /// Register / remove incumbents (e.g. a wireless-microphone event).
  /// Returns false if an incumbent with the same id exists / is missing.
  bool AddIncumbent(Incumbent incumbent);
  bool RemoveIncumbent(const std::string& id);
  std::size_t incumbent_count() const { return incumbents_.size(); }

  /// Channels available at `location` at time `now`. `master` selects the
  /// fixed-device power cap vs the client cap.
  std::vector<ChannelAvailability> Query(const GeoLocation& location, SimTime now,
                                         bool master = true) const;

  /// Is a specific channel available (no covering incumbent) right now?
  bool IsAvailable(int channel, const GeoLocation& location, SimTime now) const;

  const DatabaseConfig& config() const { return config_; }

 private:
  DatabaseConfig config_;
  std::vector<Incumbent> incumbents_;
};

}  // namespace cellfi::tvws
