#include "cellfi/tvws/paws_session.h"

#include <algorithm>
#include <utility>

#include "cellfi/common/json.h"
#include "cellfi/common/logging.h"
#include "cellfi/obs/trace.h"

namespace cellfi::tvws {

const char* SessionStateName(SessionState s) {
  switch (s) {
    case SessionState::kHealthy:
      return "healthy";
    case SessionState::kDegraded:
      return "degraded";
    case SessionState::kLost:
      return "lost";
  }
  return "?";
}

PawsSession::PawsSession(Simulator& sim, PawsClient& client, PawsTransport& transport,
                         PawsSessionConfig config)
    : sim_(sim), client_(client), transport_(transport), config_(config),
      rng_(config.seed) {}

void PawsSession::Init(const GeoLocation& location, InitHandler done) {
  auto r = std::make_unique<Request>();
  r->kind = Kind::kInit;
  r->location = location;
  r->on_init = std::move(done);
  Submit(std::move(r));
}

void PawsSession::GetSpectrum(const GeoLocation& location, bool master,
                              SpectrumHandler done) {
  auto r = std::make_unique<Request>();
  r->kind = Kind::kGetSpectrum;
  r->location = location;
  r->master = master;
  r->on_spectrum = std::move(done);
  Submit(std::move(r));
}

void PawsSession::NotifyUse(const GeoLocation& location,
                            const ChannelAvailability& channel) {
  auto r = std::make_unique<Request>();
  r->kind = Kind::kNotify;
  r->location = location;
  r->channel = channel;
  Submit(std::move(r));
}

void PawsSession::Reset() {
  const std::uint64_t abandoned = inflight_.size();
  // Destroying the requests cancels their timers; transport callbacks that
  // later arrive for these ids find no in-flight entry and are dropped.
  inflight_.clear();
  last_good_master_.reset();
  last_good_slave_.reset();
  last_success_time_ = -1;
  state_ = SessionState::kHealthy;  // a fresh process starts optimistic
  if (obs::TraceSink* tr = obs::ActiveTrace()) {
    tr->Emit(sim_.Now(), "paws_session", "reset", {{"abandoned", abandoned}});
  }
}

bool PawsSession::CacheHoldsLease(SimTime now) const {
  if (!last_good_master_) return false;
  return std::any_of(last_good_master_->channels.begin(),
                     last_good_master_->channels.end(),
                     [now](const ChannelAvailability& a) { return a.lease_expiry > now; });
}

void PawsSession::Submit(std::unique_ptr<Request> request) {
  ++counters_.requests;
  request->id = next_request_id_++;
  request->timer = std::make_unique<Timer>(sim_);
  Request* r = request.get();
  inflight_[r->id] = std::move(request);
  StartAttempt(r);
}

void PawsSession::StartAttempt(Request* r) {
  ++r->attempts;
  ++r->generation;
  ++counters_.attempts;
  if (r->attempts > 1) ++counters_.retries;

  std::string body;
  switch (r->kind) {
    case Kind::kInit:
      body = client_.BuildInitRequest(r->location);
      break;
    case Kind::kGetSpectrum:
      body = client_.BuildAvailSpectrumRequest(r->location, r->master);
      break;
    case Kind::kNotify:
      body = client_.BuildSpectrumUseNotify(r->location, r->channel);
      break;
  }
  const int expected_id = PawsClient::RequestId(body).value_or(PawsClient::kAnyRequestId);

  const std::uint64_t id = r->id;
  const std::uint64_t generation = r->generation;
  transport_.Send(body, [this, id, generation, expected_id](const std::string& response) {
    OnResponse(id, generation, expected_id, response);
  });
  r->timer->Arm(config_.request_timeout, [this, id, generation] {
    auto it = inflight_.find(id);
    if (it == inflight_.end() || it->second->generation != generation) return;
    ++counters_.timeouts;
    OnAttemptFailed(it->second.get());
  });
}

void PawsSession::OnResponse(std::uint64_t id, std::uint64_t generation,
                             int expected_id, const std::string& body) {
  auto it = inflight_.find(id);
  if (it == inflight_.end() || it->second->generation != generation) {
    ++counters_.late_responses;  // timed out (or finished) before arrival
    return;
  }
  Request* r = it->second.get();
  r->timer->Cancel();

  // Classify the response for diagnostics before the typed parse.
  const auto parsed = json::Parse(body);
  if (!parsed || !parsed->is_object()) {
    ++counters_.parse_failures;
    OnAttemptFailed(r);
    return;
  }
  if (parsed->Find("error") != nullptr) {
    ++counters_.rpc_errors;
    OnAttemptFailed(r);
    return;
  }
  if (expected_id != PawsClient::kAnyRequestId) {
    const json::Value* rid = parsed->Find("id");
    if (rid == nullptr || !rid->is_number() ||
        static_cast<int>(rid->as_number()) != expected_id) {
      ++counters_.id_mismatches;
      OnAttemptFailed(r);
      return;
    }
  }

  switch (r->kind) {
    case Kind::kInit: {
      auto ruleset = client_.ParseInitResponse(body, expected_id);
      if (!ruleset) {
        ++counters_.parse_failures;
        OnAttemptFailed(r);
        return;
      }
      Finish(r, /*success=*/true, std::move(ruleset), std::nullopt);
      return;
    }
    case Kind::kGetSpectrum: {
      auto spectrum = client_.ParseAvailSpectrumResponse(body, expected_id);
      if (!spectrum) {
        ++counters_.parse_failures;
        OnAttemptFailed(r);
        return;
      }
      Finish(r, /*success=*/true, std::nullopt, std::move(spectrum));
      return;
    }
    case Kind::kNotify:
      // Any well-formed non-error result acknowledges the notify.
      Finish(r, /*success=*/true, std::nullopt, std::nullopt);
      return;
  }
}

SimTime PawsSession::BackoffDelay(int attempt) {
  // attempt = number of attempts already made; exponent grows per retry.
  SimTime delay = config_.backoff_base;
  for (int i = 1; i < attempt && delay < config_.backoff_cap; ++i) delay *= 2;
  delay = std::min(delay, config_.backoff_cap);
  if (config_.backoff_jitter > 0.0) {
    const double factor =
        rng_.Uniform(1.0 - config_.backoff_jitter, 1.0 + config_.backoff_jitter);
    delay = static_cast<SimTime>(static_cast<double>(delay) * factor);
  }
  return std::max<SimTime>(delay, 1);
}

void PawsSession::OnAttemptFailed(Request* r) {
  if (r->attempts >= config_.max_attempts) {
    Finish(r, /*success=*/false, std::nullopt, std::nullopt);
    return;
  }
  r->timer->Arm(BackoffDelay(r->attempts), [this, id = r->id] {
    auto it = inflight_.find(id);
    if (it == inflight_.end()) return;
    StartAttempt(it->second.get());
  });
}

void PawsSession::Finish(Request* r, bool success, std::optional<std::string> ruleset,
                         std::optional<AvailSpectrumResponse> spectrum) {
  // Detach before delivering: the handler may submit follow-up requests.
  auto it = inflight_.find(r->id);
  std::unique_ptr<Request> owned = std::move(it->second);
  inflight_.erase(it);
  owned->timer->Cancel();

  if (obs::TraceSink* tr = obs::ActiveTrace()) {
    const char* kind = owned->kind == Kind::kInit           ? "init"
                       : owned->kind == Kind::kGetSpectrum ? "spectrum"
                                                           : "notify";
    tr->Emit(sim_.Now(), "paws_session",
             success ? "request_ok" : "request_failed",
             {{"kind", kind}, {"attempts", owned->attempts}});
  }

  if (success) {
    ++counters_.successes;
    last_success_time_ = sim_.Now();
    if (owned->kind == Kind::kGetSpectrum) {
      (owned->master ? last_good_master_ : last_good_slave_) = spectrum;
    }
    SetState(SessionState::kHealthy);
  } else {
    ++counters_.failures;
    CELLFI_WARN << "PAWS request failed after " << owned->attempts << " attempts at t="
                << ToSeconds(sim_.Now()) << " s";
    SetState(CacheHoldsLease(sim_.Now()) ? SessionState::kDegraded : SessionState::kLost);
  }

  if (owned->kind == Kind::kInit && owned->on_init) {
    owned->on_init(success ? std::move(ruleset) : std::nullopt);
  } else if (owned->kind == Kind::kGetSpectrum && owned->on_spectrum) {
    owned->on_spectrum(success ? std::move(spectrum) : std::nullopt);
  }
}

void PawsSession::SetState(SessionState next) {
  if (next == state_) return;
  if (obs::TraceSink* tr = obs::ActiveTrace()) {
    tr->Emit(sim_.Now(), "paws_session", "state_change",
             {{"from", SessionStateName(state_)}, {"to", SessionStateName(next)}});
  }
  state_ = next;
  ++counters_.state_changes;
  if (on_state_change) on_state_change(next);
}

}  // namespace cellfi::tvws
