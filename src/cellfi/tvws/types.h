// TV-white-space domain types: TV channels, geolocations, incumbents and
// channel availability records.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cellfi/common/time.h"
#include "cellfi/common/units.h"

namespace cellfi::tvws {

/// Regulatory domain: sets TV channel width and numbering.
enum class Regulatory { kUs, kEu };

/// TV channel raster width in Hz.
inline double TvChannelWidthHz(Regulatory reg) {
  return reg == Regulatory::kUs ? 6.0 * units::MHz : 8.0 * units::MHz;
}

/// UHF TV channel (e.g. US channels 14-51 cover 470-698 MHz).
struct TvChannel {
  int number = 0;
  Regulatory regulatory = Regulatory::kUs;

  /// Centre frequency in Hz (US: ch14 = 473 MHz; EU: ch21 = 474 MHz).
  double CentreFrequencyHz() const;
  double LowEdgeHz() const { return CentreFrequencyHz() - TvChannelWidthHz(regulatory) / 2; }
  double HighEdgeHz() const { return CentreFrequencyHz() + TvChannelWidthHz(regulatory) / 2; }

  friend bool operator==(const TvChannel&, const TvChannel&) = default;
};

/// WGS-84 geolocation (degrees) with an optional uncertainty radius.
struct GeoLocation {
  double latitude = 0.0;
  double longitude = 0.0;
  double uncertainty_m = 50.0;
};

/// Great-circle distance between two locations (haversine), metres.
double GeoDistanceM(const GeoLocation& a, const GeoLocation& b);

/// Protected primary user: a TV transmitter or wireless microphone that
/// blocks a channel inside its protection contour during [start, stop).
struct Incumbent {
  std::string id;
  int channel = 0;
  GeoLocation location;
  double protection_radius_m = 10'000.0;
  SimTime start = 0;
  SimTime stop = 0;  // 0 = forever
  bool ActiveAt(SimTime t) const { return t >= start && (stop == 0 || t < stop); }
};

/// One channel a device may use: power cap and lease validity window.
struct ChannelAvailability {
  TvChannel channel;
  double max_eirp_dbm = 36.0;
  SimTime lease_start = 0;
  SimTime lease_expiry = 0;
};

/// Device identity per ETSI EN 301 598 / PAWS.
struct DeviceDescriptor {
  std::string serial_number;
  std::string manufacturer = "cellfi";
  std::string model = "ap-e40";
  // ETSI device emission class / type ("A" = fixed outdoor, master).
  std::string etsi_device_type = "A";
};

}  // namespace cellfi::tvws
