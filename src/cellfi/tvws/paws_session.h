// Database-session layer owning the PAWS request lifecycle.
//
// `PawsSession` sits between channel selection and the transport. Every
// logical request (INIT, AVAIL_SPECTRUM_REQ, SPECTRUM_USE_NOTIFY) gets:
//   * a per-attempt timeout,
//   * bounded retries with exponential backoff + jitter,
//   * JSON-RPC response-id validation (stale/misrouted replies rejected),
// and the session tracks a health state machine for reporting:
//   kHealthy  -- last logical request succeeded
//   kDegraded -- requests failing, but the cached last-good spectrum
//                response still holds an unexpired lease (grace window:
//                the AP may remain on air until the ETSI vacate deadline)
//   kLost     -- requests failing and no unexpired cached lease remains
//
// The session caches the last good AVAIL_SPECTRUM_RESP per request type so
// reports can show what the AP believed during an outage; consumers must
// never *act* on the cache to acquire spectrum — only fresh responses
// authorize transmission.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "cellfi/common/rng.h"
#include "cellfi/sim/event_queue.h"
#include "cellfi/sim/timer.h"
#include "cellfi/tvws/paws.h"
#include "cellfi/tvws/paws_transport.h"

namespace cellfi::tvws {

enum class SessionState { kHealthy, kDegraded, kLost };

const char* SessionStateName(SessionState s);

struct PawsSessionConfig {
  /// Per-attempt timeout: a response not received within this window counts
  /// as lost and triggers the retry path.
  SimTime request_timeout = 2 * kSecond;
  /// Wire attempts per logical request (1 = no retries).
  int max_attempts = 4;
  /// Backoff before attempt k+1 is `backoff_base * 2^(k-1)`, capped at
  /// `backoff_cap`, scaled by a uniform factor in [1-jitter, 1+jitter].
  SimTime backoff_base = 500 * kMillisecond;
  SimTime backoff_cap = 8 * kSecond;
  double backoff_jitter = 0.2;
  std::uint64_t seed = 0x5041575353455353ull;
};

struct SessionCounters {
  std::uint64_t requests = 0;        // logical requests issued
  std::uint64_t attempts = 0;        // wire attempts (includes retries)
  std::uint64_t retries = 0;
  std::uint64_t successes = 0;       // logical successes
  std::uint64_t failures = 0;        // logical failures (attempts exhausted)
  std::uint64_t timeouts = 0;
  std::uint64_t parse_failures = 0;  // malformed / corrupt responses
  std::uint64_t rpc_errors = 0;
  std::uint64_t id_mismatches = 0;
  std::uint64_t late_responses = 0;  // arrived after timeout; ignored
  std::uint64_t state_changes = 0;
};

/// Resilient PAWS request pipeline over an unreliable transport.
class PawsSession {
 public:
  using InitHandler = std::function<void(std::optional<std::string> ruleset)>;
  using SpectrumHandler = std::function<void(std::optional<AvailSpectrumResponse>)>;

  /// All referenced objects must outlive the session.
  PawsSession(Simulator& sim, PawsClient& client, PawsTransport& transport,
              PawsSessionConfig config = {});

  /// INIT handshake. `done` receives the ruleset authority, or nullopt once
  /// every attempt has been exhausted.
  void Init(const GeoLocation& location, InitHandler done);

  /// AVAIL_SPECTRUM_REQ (master or slave parameters).
  void GetSpectrum(const GeoLocation& location, bool master, SpectrumHandler done);

  /// SPECTRUM_USE_NOTIFY; fire-and-forget but still retried.
  void NotifyUse(const GeoLocation& location, const ChannelAvailability& channel);

  /// Model a process crash: every in-flight request (timers included) and
  /// all cached in-RAM state — last-good responses, health, last-success
  /// time — is lost, as a freshly booted process would have none of it.
  /// Wire responses still in transit are dropped on arrival (counted as
  /// late_responses). Lifetime counters survive: they model the
  /// experimenter's ledger, not the process's RAM.
  void Reset();

  SessionState state() const { return state_; }
  const SessionCounters& counters() const { return counters_; }

  /// Sim time of the last logical success (-1 before the first one).
  SimTime last_success_time() const { return last_success_time_; }

  /// Last good AVAIL_SPECTRUM_RESP for the master/slave query type.
  const std::optional<AvailSpectrumResponse>& last_good(bool master) const {
    return master ? last_good_master_ : last_good_slave_;
  }

  /// True while the cached master response still holds an unexpired lease
  /// (the grace window backing the kDegraded state).
  bool CacheHoldsLease(SimTime now) const;

  /// Invoked on every state transition (optional).
  std::function<void(SessionState)> on_state_change;

 private:
  enum class Kind { kInit, kGetSpectrum, kNotify };

  struct Request {
    std::uint64_t id = 0;
    Kind kind = Kind::kInit;
    GeoLocation location;
    bool master = true;               // kGetSpectrum only
    ChannelAvailability channel;      // kNotify only
    int attempts = 0;
    std::uint64_t generation = 0;     // bumped per attempt; stale replies ignored
    InitHandler on_init;
    SpectrumHandler on_spectrum;
    std::unique_ptr<Timer> timer;     // timeout / backoff (one at a time)
  };

  void Submit(std::unique_ptr<Request> request);
  void StartAttempt(Request* r);
  void OnResponse(std::uint64_t id, std::uint64_t generation, int expected_id,
                  const std::string& body);
  void OnAttemptFailed(Request* r);
  void Finish(Request* r, bool success, std::optional<std::string> ruleset,
              std::optional<AvailSpectrumResponse> spectrum);
  void SetState(SessionState next);
  SimTime BackoffDelay(int attempt);

  Simulator& sim_;
  PawsClient& client_;
  PawsTransport& transport_;
  PawsSessionConfig config_;
  Rng rng_;

  std::map<std::uint64_t, std::unique_ptr<Request>> inflight_;
  std::uint64_t next_request_id_ = 1;

  SessionState state_ = SessionState::kHealthy;
  SessionCounters counters_;
  SimTime last_success_time_ = -1;
  std::optional<AvailSpectrumResponse> last_good_master_;
  std::optional<AvailSpectrumResponse> last_good_slave_;
};

}  // namespace cellfi::tvws
