// Transport layer between PAWS clients and the spectrum database.
//
// The paper's testbed talks to the certified Nominet database over HTTPS —
// a link that can be slow, lossy, or down. `PawsTransport` abstracts that
// link: `InProcessTransport` is the ideal in-process path used by default,
// and `FaultyTransport` is a decorator that injects latency, request loss,
// response corruption, JSON-RPC errors and scheduled full-database outages,
// so the ETSI vacate machinery can be exercised under adverse conditions.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cellfi/common/rng.h"
#include "cellfi/sim/event_queue.h"
#include "cellfi/tvws/paws.h"

namespace cellfi::tvws {

/// Asynchronous request/response link to a PAWS server.
///
/// `Send` never invokes the handler synchronously: responses arrive as
/// simulator events (possibly at the same sim time). A lost request never
/// invokes the handler at all — callers must run their own timeout.
class PawsTransport {
 public:
  using ResponseHandler = std::function<void(const std::string& response)>;

  virtual ~PawsTransport() = default;

  virtual void Send(const std::string& request, ResponseHandler on_response) = 0;
};

/// Ideal transport: hands the request to an in-process `PawsServer` and
/// delivers the response at the current sim time (zero latency, no loss).
class InProcessTransport final : public PawsTransport {
 public:
  InProcessTransport(Simulator& sim, PawsServer& server) : sim_(sim), server_(server) {}

  void Send(const std::string& request, ResponseHandler on_response) override;

 private:
  Simulator& sim_;
  PawsServer& server_;
};

/// Fault model for one simulated database link.
struct FaultProfile {
  /// Fixed one-way-trip latency added to every delivered response.
  SimTime latency_base = 0;
  /// Additional uniform random latency in [0, latency_jitter).
  SimTime latency_jitter = 0;
  /// Probability that a request is lost (no response, ever).
  double drop_probability = 0.0;
  /// Probability that the response body is mangled into invalid JSON.
  double corrupt_probability = 0.0;
  /// Probability that the server's answer is replaced by a JSON-RPC error
  /// (code `injected_error_code`), as an overloaded database would return.
  double error_probability = 0.0;
  int injected_error_code = -32000;
  /// Probability that the response carries a wrong JSON-RPC id (a stale or
  /// misrouted reply).
  double wrong_id_probability = 0.0;
  std::uint64_t seed = 0x7475727374696C65ull;
};

/// Database brownout window: the link stays up but suffers extra one-way
/// latency and extra request loss over [start, stop).
struct BrownoutWindow {
  SimTime start = 0;
  SimTime stop = 0;
  SimTime extra_latency = 0;
  double extra_drop_probability = 0.0;
};

/// Decorator injecting the `FaultProfile` plus scheduled outages and
/// brownouts into any underlying transport. During an outage window every
/// request is dropped — the database is unreachable; during a brownout the
/// link degrades (latency + loss) but stays up.
///
/// Loss, delay and response faults draw from three independent streams
/// forked from `profile.seed`, so whether a request is dropped never
/// perturbs the latency seen by the requests that do get through — the
/// k-th delivered request sees the k-th delay draw regardless of how many
/// drops preceded it.
class FaultyTransport final : public PawsTransport {
 public:
  struct Counters {
    std::uint64_t requests = 0;
    std::uint64_t delivered = 0;
    std::uint64_t dropped_outage = 0;
    std::uint64_t dropped_random = 0;
    std::uint64_t dropped_brownout = 0;
    std::uint64_t browned_out = 0;  ///< delivered through a brownout window
    std::uint64_t corrupted = 0;
    std::uint64_t errors_injected = 0;
    std::uint64_t ids_mangled = 0;
  };

  FaultyTransport(Simulator& sim, PawsTransport& inner, FaultProfile profile)
      : sim_(sim), inner_(inner), profile_(profile), seed_rng_(profile.seed),
        drop_rng_(seed_rng_.Fork()), delay_rng_(seed_rng_.Fork()),
        response_rng_(seed_rng_.Fork()) {}

  void Send(const std::string& request, ResponseHandler on_response) override;

  /// Schedule a full-database outage over [start, stop) (absolute sim time).
  void AddOutage(SimTime start, SimTime stop);

  /// Schedule a brownout (degraded, not dead) over [start, stop).
  void AddBrownout(const BrownoutWindow& window);

  /// Is the database unreachable at `t`?
  bool InOutage(SimTime t) const;

  /// Brownout window active at `t`, or nullptr.
  const BrownoutWindow* InBrownout(SimTime t) const;

  const Counters& counters() const { return counters_; }
  const FaultProfile& profile() const { return profile_; }

 private:
  std::string ApplyResponseFaults(const std::string& response);

  Simulator& sim_;
  PawsTransport& inner_;
  FaultProfile profile_;
  Rng seed_rng_;      // only forks the three streams below
  Rng drop_rng_;      // request-loss Bernoulli trials (incl. brownout loss)
  Rng delay_rng_;     // latency jitter — advanced only for delivered requests
  Rng response_rng_;  // corruption / injected-error / wrong-id trials
  std::vector<std::pair<SimTime, SimTime>> outages_;
  std::vector<BrownoutWindow> brownouts_;
  Counters counters_;
};

}  // namespace cellfi::tvws
