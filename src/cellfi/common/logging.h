// Leveled logging with a process-wide minimum level.
//
// Intended for examples and debugging; hot simulation paths should not log.
#pragma once

#include <sstream>
#include <string>

namespace cellfi {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Set the global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Emit one log line (used by the CELLFI_LOG macro).
void LogMessage(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace cellfi

#define CELLFI_LOG(level)                                   \
  if (static_cast<int>(level) < static_cast<int>(::cellfi::GetLogLevel())) { \
  } else                                                    \
    ::cellfi::detail::LogLine(level)

#define CELLFI_DEBUG CELLFI_LOG(::cellfi::LogLevel::kDebug)
#define CELLFI_INFO CELLFI_LOG(::cellfi::LogLevel::kInfo)
#define CELLFI_WARN CELLFI_LOG(::cellfi::LogLevel::kWarn)
#define CELLFI_ERROR CELLFI_LOG(::cellfi::LogLevel::kError)
