// Portable SIMD kernel layer (DESIGN.md §17).
//
// Small fixed-contract numeric kernels shared by the SINR hot path
// (blocked denominator accumulation), the split-complex FFT butterflies
// (`common/fft.cc`) and the PRACH spectrum correlator (`phy/prach.cc`).
// Every kernel comes in two forms:
//
//   *Scalar   the reference implementation. Defines the semantics — in
//             particular the FIXED 8-lane blocked accumulation order for
//             reductions — and is compiled identically whether or not
//             SIMD is enabled.
//   (plain)   the dispatching entry point. With CELLFI_SIMD=ON (the
//             default, compile definition CELLFI_SIMD_ENABLED) it selects
//             AVX2 or SSE2 on x86-64 (runtime cpuid check) or NEON on
//             aarch64; otherwise, and with CELLFI_SIMD=OFF, it calls the
//             scalar reference.
//
// Bit-identity contract: for every kernel, the vector variants perform
// exactly the same IEEE-754 operations per element in exactly the same
// order as the scalar reference — reductions use the 8-lane blocked order
// below in all variants, and no variant uses FMA contraction (the AVX2
// functions are compiled with target("avx2"), which does not enable FMA).
// Scalar and SIMD builds are therefore bit-identical by construction;
// `ctest -L simd` (check.sh --simd) verifies it on the host, including a
// cross-build digest comparison between CELLFI_SIMD=OFF and ON trees.
//
// Blocked accumulation order (the §17 contract, shared verbatim by
// RadioEnvironment::SinrDb, InterferenceMap::AggregateDenomMw and
// BlockedSum8*): a sequence x[0..n) is accumulated into 8 lanes, element
// i into lane (i mod 8), each lane summing its elements in increasing
// index order; lanes then combine with the fixed tree
//   ((l0+l1) + (l2+l3)) + ((l4+l5) + (l6+l7)).
//
// Thread safety: all kernels are pure functions of their arguments.
// ForceScalar()/CELLFI_SIMD_DISABLE flip a process-global dispatch switch
// and must only be called/read single-threaded (bench and test setup),
// never between parallel shard phases.
#pragma once

#include <cstdlib>
#include <cstddef>

#if defined(CELLFI_SIMD_ENABLED) && (defined(__x86_64__) || defined(_M_X64))
#define CELLFI_SIMD_X86 1
#include <immintrin.h>
#elif defined(CELLFI_SIMD_ENABLED) && defined(__aarch64__)
#define CELLFI_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace cellfi::simd {

namespace detail {

/// Dispatch override: true = every dispatching kernel takes the scalar
/// path. Seeded once from CELLFI_SIMD_DISABLE; ForceScalar() flips it for
/// in-binary A/B benches and the scalar-vs-SIMD parity tests.
inline bool& ForceScalarFlag() {
  static bool flag = [] {
    const char* env = std::getenv("CELLFI_SIMD_DISABLE");
    return env != nullptr && *env != '\0';
  }();
  return flag;
}

#if defined(CELLFI_SIMD_X86)
inline bool HaveAvx2() {
  static const bool have = __builtin_cpu_supports("avx2") != 0;
  return have;
}
#endif

}  // namespace detail

/// Force the scalar reference path at runtime (single-threaded use only;
/// see the header comment). Returns the previous value.
inline bool ForceScalar(bool force) {
  const bool prev = detail::ForceScalarFlag();
  detail::ForceScalarFlag() = force;
  return prev;
}

/// Kernel the dispatching entry points select right now:
/// "avx2", "sse2", "neon" or "scalar". Stamped into BENCH_*.json
/// artifacts (BenchReport::Write) so recorded numbers name their kernel.
inline const char* ActiveKernelName() {
#if defined(CELLFI_SIMD_X86)
  if (detail::ForceScalarFlag()) return "scalar";
  return detail::HaveAvx2() ? "avx2" : "sse2";
#elif defined(CELLFI_SIMD_NEON)
  return detail::ForceScalarFlag() ? "scalar" : "neon";
#else
  return "scalar";
#endif
}

/// The fixed lane-combine tree of the blocked accumulation order. Shared
/// by every reduction variant AND by callers that accumulate lanes inline
/// (RadioEnvironment::SinrDb), so the tree can never drift between them.
inline double ReduceLanes8(const double* l) {
  return ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]));
}

/// Reference blocked sum: element i -> lane (i mod 8), ReduceLanes8 tree.
// cellfi-purity: contract-root(imap-sealed-read) simd::BlockedSum8Scalar
// cellfi-purity: contract-root(parallel-shard-phase) simd::BlockedSum8Scalar
inline double BlockedSum8Scalar(const double* x, std::size_t n) {
  double l[8] = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    l[0] += x[i + 0];
    l[1] += x[i + 1];
    l[2] += x[i + 2];
    l[3] += x[i + 3];
    l[4] += x[i + 4];
    l[5] += x[i + 5];
    l[6] += x[i + 6];
    l[7] += x[i + 7];
  }
  for (std::size_t j = 0; i < n; ++i, ++j) l[j] += x[i];
  return ReduceLanes8(l);
}

/// Reference split-complex butterfly block: for k in [0, half),
///   (u, v) = (a[k], a[k+half]);  x = v * w[k];
///   a[k] = u + x;  a[k+half] = u - x;
/// with the complex product expanded as
///   x_re = v_re*w_re - v_im*w_im;  x_im = v_re*w_im + v_im*w_re.
inline void ButterflyBlockScalar(double* re, double* im, const double* tw_re,
                                 const double* tw_im, std::size_t half) {
  for (std::size_t k = 0; k < half; ++k) {
    const double ur = re[k];
    const double ui = im[k];
    const double vr = re[k + half];
    const double vi = im[k + half];
    const double tr = tw_re[k];
    const double ti = tw_im[k];
    const double xr = vr * tr - vi * ti;
    const double xi = vr * ti + vi * tr;
    re[k] = ur + xr;
    im[k] = ui + xi;
    re[k + half] = ur - xr;
    im[k + half] = ui - xi;
  }
}

/// Reference split-complex pointwise product a[i] *= b[i] (Bluestein's
/// chirp-filter multiply).
inline void CMulSplitScalar(double* a_re, double* a_im, const double* b_re,
                            const double* b_im, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const double ar = a_re[i];
    const double ai = a_im[i];
    const double br = b_re[i];
    const double bi = b_im[i];
    a_re[i] = ar * br - ai * bi;
    a_im[i] = ar * bi + ai * br;
  }
}

/// Reference interleaved conjugate product dst[i] = a[i] * conj(b[i]) over
/// n complex values stored as [re0, im0, re1, im1, ...] (the PRACH
/// frequency-domain correlation multiply; dst may alias a).
inline void ConjMulInterleavedScalar(double* dst, const double* a,
                                     const double* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const double ar = a[2 * i];
    const double ai = a[2 * i + 1];
    const double br = b[2 * i];
    const double bi = b[2 * i + 1];
    dst[2 * i] = ar * br + ai * bi;
    dst[2 * i + 1] = ai * br - ar * bi;
  }
}

/// Reference in-place scale x[i] *= s (inverse-FFT 1/N normalization).
inline void ScaleScalar(double* x, std::size_t n, double s) {
  for (std::size_t i = 0; i < n; ++i) x[i] *= s;
}

#if defined(CELLFI_SIMD_X86)

namespace detail {

[[gnu::target("avx2")]] inline double BlockedSum8Avx2(const double* x,
                                                      std::size_t n) {
  // Lanes 0-3 in acc_lo, 4-7 in acc_hi; per-lane add order matches the
  // scalar reference exactly (increasing index within each lane).
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc_lo = _mm256_add_pd(acc_lo, _mm256_loadu_pd(x + i));
    acc_hi = _mm256_add_pd(acc_hi, _mm256_loadu_pd(x + i + 4));
  }
  double l[8];
  _mm256_storeu_pd(l, acc_lo);
  _mm256_storeu_pd(l + 4, acc_hi);
  for (std::size_t j = 0; i < n; ++i, ++j) l[j] += x[i];
  return ReduceLanes8(l);
}

inline double BlockedSum8Sse2(const double* x, std::size_t n) {
  __m128d a01 = _mm_setzero_pd();
  __m128d a23 = _mm_setzero_pd();
  __m128d a45 = _mm_setzero_pd();
  __m128d a67 = _mm_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    a01 = _mm_add_pd(a01, _mm_loadu_pd(x + i));
    a23 = _mm_add_pd(a23, _mm_loadu_pd(x + i + 2));
    a45 = _mm_add_pd(a45, _mm_loadu_pd(x + i + 4));
    a67 = _mm_add_pd(a67, _mm_loadu_pd(x + i + 6));
  }
  double l[8];
  _mm_storeu_pd(l + 0, a01);
  _mm_storeu_pd(l + 2, a23);
  _mm_storeu_pd(l + 4, a45);
  _mm_storeu_pd(l + 6, a67);
  for (std::size_t j = 0; i < n; ++i, ++j) l[j] += x[i];
  return ReduceLanes8(l);
}

[[gnu::target("avx2")]] inline void ButterflyBlockAvx2(double* re, double* im,
                                                       const double* tw_re,
                                                       const double* tw_im,
                                                       std::size_t half) {
  std::size_t k = 0;
  for (; k + 4 <= half; k += 4) {
    const __m256d ur = _mm256_loadu_pd(re + k);
    const __m256d ui = _mm256_loadu_pd(im + k);
    const __m256d vr = _mm256_loadu_pd(re + k + half);
    const __m256d vi = _mm256_loadu_pd(im + k + half);
    const __m256d tr = _mm256_loadu_pd(tw_re + k);
    const __m256d ti = _mm256_loadu_pd(tw_im + k);
    const __m256d xr = _mm256_sub_pd(_mm256_mul_pd(vr, tr), _mm256_mul_pd(vi, ti));
    const __m256d xi = _mm256_add_pd(_mm256_mul_pd(vr, ti), _mm256_mul_pd(vi, tr));
    _mm256_storeu_pd(re + k, _mm256_add_pd(ur, xr));
    _mm256_storeu_pd(im + k, _mm256_add_pd(ui, xi));
    _mm256_storeu_pd(re + k + half, _mm256_sub_pd(ur, xr));
    _mm256_storeu_pd(im + k + half, _mm256_sub_pd(ui, xi));
  }
  for (; k < half; ++k) {
    const double ur = re[k];
    const double ui = im[k];
    const double vr = re[k + half];
    const double vi = im[k + half];
    const double xr = vr * tw_re[k] - vi * tw_im[k];
    const double xi = vr * tw_im[k] + vi * tw_re[k];
    re[k] = ur + xr;
    im[k] = ui + xi;
    re[k + half] = ur - xr;
    im[k + half] = ui - xi;
  }
}

inline void ButterflyBlockSse2(double* re, double* im, const double* tw_re,
                               const double* tw_im, std::size_t half) {
  std::size_t k = 0;
  for (; k + 2 <= half; k += 2) {
    const __m128d ur = _mm_loadu_pd(re + k);
    const __m128d ui = _mm_loadu_pd(im + k);
    const __m128d vr = _mm_loadu_pd(re + k + half);
    const __m128d vi = _mm_loadu_pd(im + k + half);
    const __m128d tr = _mm_loadu_pd(tw_re + k);
    const __m128d ti = _mm_loadu_pd(tw_im + k);
    const __m128d xr = _mm_sub_pd(_mm_mul_pd(vr, tr), _mm_mul_pd(vi, ti));
    const __m128d xi = _mm_add_pd(_mm_mul_pd(vr, ti), _mm_mul_pd(vi, tr));
    _mm_storeu_pd(re + k, _mm_add_pd(ur, xr));
    _mm_storeu_pd(im + k, _mm_add_pd(ui, xi));
    _mm_storeu_pd(re + k + half, _mm_sub_pd(ur, xr));
    _mm_storeu_pd(im + k + half, _mm_sub_pd(ui, xi));
  }
  for (; k < half; ++k) {
    const double ur = re[k];
    const double ui = im[k];
    const double vr = re[k + half];
    const double vi = im[k + half];
    const double xr = vr * tw_re[k] - vi * tw_im[k];
    const double xi = vr * tw_im[k] + vi * tw_re[k];
    re[k] = ur + xr;
    im[k] = ui + xi;
    re[k + half] = ur - xr;
    im[k + half] = ui - xi;
  }
}

[[gnu::target("avx2")]] inline void CMulSplitAvx2(double* a_re, double* a_im,
                                                  const double* b_re,
                                                  const double* b_im,
                                                  std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d ar = _mm256_loadu_pd(a_re + i);
    const __m256d ai = _mm256_loadu_pd(a_im + i);
    const __m256d br = _mm256_loadu_pd(b_re + i);
    const __m256d bi = _mm256_loadu_pd(b_im + i);
    _mm256_storeu_pd(a_re + i,
                     _mm256_sub_pd(_mm256_mul_pd(ar, br), _mm256_mul_pd(ai, bi)));
    _mm256_storeu_pd(a_im + i,
                     _mm256_add_pd(_mm256_mul_pd(ar, bi), _mm256_mul_pd(ai, br)));
  }
  for (; i < n; ++i) {
    const double ar = a_re[i];
    const double ai = a_im[i];
    const double br = b_re[i];
    const double bi = b_im[i];
    a_re[i] = ar * br - ai * bi;
    a_im[i] = ar * bi + ai * br;
  }
}

[[gnu::target("avx2")]] inline void ConjMulInterleavedAvx2(double* dst,
                                                           const double* a,
                                                           const double* b,
                                                           std::size_t n) {
  // Two complex values per __m256d: [re0 im0 re1 im1].
  //   dst_re = ar*br + ai*bi        (hadd pair order == scalar formula)
  //   dst_im = ar*(-bi) + ai*br     (bitwise == ai*br - ar*bi)
  const __m256d neg_even =
      _mm256_castsi256_pd(_mm256_set_epi64x(0, static_cast<long long>(0x8000000000000000ull),
                                            0, static_cast<long long>(0x8000000000000000ull)));
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m256d va = _mm256_loadu_pd(a + 2 * i);
    const __m256d vb = _mm256_loadu_pd(b + 2 * i);
    const __m256d t0 = _mm256_mul_pd(va, vb);  // [ar*br, ai*bi, ...]
    // [-bi, br, ...]: swap within pairs then negate the even slots.
    const __m256d vb_sw = _mm256_xor_pd(_mm256_permute_pd(vb, 0x5), neg_even);
    const __m256d t1 = _mm256_mul_pd(va, vb_sw);  // [ar*(-bi), ai*br, ...]
    _mm256_storeu_pd(dst + 2 * i, _mm256_hadd_pd(t0, t1));
  }
  for (; i < n; ++i) {
    const double ar = a[2 * i];
    const double ai = a[2 * i + 1];
    const double br = b[2 * i];
    const double bi = b[2 * i + 1];
    dst[2 * i] = ar * br + ai * bi;
    dst[2 * i + 1] = ai * br - ar * bi;
  }
}

[[gnu::target("avx2")]] inline void ScaleAvx2(double* x, std::size_t n, double s) {
  const __m256d vs = _mm256_set1_pd(s);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(x + i, _mm256_mul_pd(_mm256_loadu_pd(x + i), vs));
  }
  for (; i < n; ++i) x[i] *= s;
}

inline void ScaleSse2(double* x, std::size_t n, double s) {
  const __m128d vs = _mm_set1_pd(s);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    _mm_storeu_pd(x + i, _mm_mul_pd(_mm_loadu_pd(x + i), vs));
  }
  for (; i < n; ++i) x[i] *= s;
}

}  // namespace detail

#elif defined(CELLFI_SIMD_NEON)

namespace detail {

inline double BlockedSum8Neon(const double* x, std::size_t n) {
  float64x2_t a01 = vdupq_n_f64(0.0);
  float64x2_t a23 = vdupq_n_f64(0.0);
  float64x2_t a45 = vdupq_n_f64(0.0);
  float64x2_t a67 = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    a01 = vaddq_f64(a01, vld1q_f64(x + i));
    a23 = vaddq_f64(a23, vld1q_f64(x + i + 2));
    a45 = vaddq_f64(a45, vld1q_f64(x + i + 4));
    a67 = vaddq_f64(a67, vld1q_f64(x + i + 6));
  }
  double l[8];
  vst1q_f64(l + 0, a01);
  vst1q_f64(l + 2, a23);
  vst1q_f64(l + 4, a45);
  vst1q_f64(l + 6, a67);
  for (std::size_t j = 0; i < n; ++i, ++j) l[j] += x[i];
  return ReduceLanes8(l);
}

inline void ButterflyBlockNeon(double* re, double* im, const double* tw_re,
                               const double* tw_im, std::size_t half) {
  std::size_t k = 0;
  for (; k + 2 <= half; k += 2) {
    const float64x2_t ur = vld1q_f64(re + k);
    const float64x2_t ui = vld1q_f64(im + k);
    const float64x2_t vr = vld1q_f64(re + k + half);
    const float64x2_t vi = vld1q_f64(im + k + half);
    const float64x2_t tr = vld1q_f64(tw_re + k);
    const float64x2_t ti = vld1q_f64(tw_im + k);
    const float64x2_t xr = vsubq_f64(vmulq_f64(vr, tr), vmulq_f64(vi, ti));
    const float64x2_t xi = vaddq_f64(vmulq_f64(vr, ti), vmulq_f64(vi, tr));
    vst1q_f64(re + k, vaddq_f64(ur, xr));
    vst1q_f64(im + k, vaddq_f64(ui, xi));
    vst1q_f64(re + k + half, vsubq_f64(ur, xr));
    vst1q_f64(im + k + half, vsubq_f64(ui, xi));
  }
  for (; k < half; ++k) {
    const double ur = re[k];
    const double ui = im[k];
    const double vr = re[k + half];
    const double vi = im[k + half];
    const double xr = vr * tw_re[k] - vi * tw_im[k];
    const double xi = vr * tw_im[k] + vi * tw_re[k];
    re[k] = ur + xr;
    im[k] = ui + xi;
    re[k + half] = ur - xr;
    im[k + half] = ui - xi;
  }
}

inline void CMulSplitNeon(double* a_re, double* a_im, const double* b_re,
                          const double* b_im, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t ar = vld1q_f64(a_re + i);
    const float64x2_t ai = vld1q_f64(a_im + i);
    const float64x2_t br = vld1q_f64(b_re + i);
    const float64x2_t bi = vld1q_f64(b_im + i);
    vst1q_f64(a_re + i, vsubq_f64(vmulq_f64(ar, br), vmulq_f64(ai, bi)));
    vst1q_f64(a_im + i, vaddq_f64(vmulq_f64(ar, bi), vmulq_f64(ai, br)));
  }
  for (; i < n; ++i) {
    const double ar = a_re[i];
    const double ai = a_im[i];
    const double br = b_re[i];
    const double bi = b_im[i];
    a_re[i] = ar * br - ai * bi;
    a_im[i] = ar * bi + ai * br;
  }
}

inline void ScaleNeon(double* x, std::size_t n, double s) {
  const float64x2_t vs = vdupq_n_f64(s);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) vst1q_f64(x + i, vmulq_f64(vld1q_f64(x + i), vs));
  for (; i < n; ++i) x[i] *= s;
}

}  // namespace detail

#endif  // CELLFI_SIMD_NEON

/// Blocked sum of x[0..n) in the §17 fixed 8-lane order. This is the SINR
/// aggregate-denominator accumulation kernel; it runs inside sealed
/// InterferenceMap reads on shard workers, so it must stay a pure
/// function of its arguments (see tools/purity_rules/contracts.json).
// cellfi-purity: contract-root(imap-sealed-read) simd::BlockedSum8
// cellfi-purity: contract-root(parallel-shard-phase) simd::BlockedSum8
inline double BlockedSum8(const double* x, std::size_t n) {
#if defined(CELLFI_SIMD_X86)
  if (!detail::ForceScalarFlag()) {
    if (detail::HaveAvx2()) return detail::BlockedSum8Avx2(x, n);
    return detail::BlockedSum8Sse2(x, n);
  }
#elif defined(CELLFI_SIMD_NEON)
  if (!detail::ForceScalarFlag()) return detail::BlockedSum8Neon(x, n);
#endif
  return BlockedSum8Scalar(x, n);
}

/// One split-complex butterfly block (see ButterflyBlockScalar).
inline void ButterflyBlock(double* re, double* im, const double* tw_re,
                           const double* tw_im, std::size_t half) {
#if defined(CELLFI_SIMD_X86)
  if (!detail::ForceScalarFlag()) {
    if (detail::HaveAvx2()) {
      detail::ButterflyBlockAvx2(re, im, tw_re, tw_im, half);
    } else {
      detail::ButterflyBlockSse2(re, im, tw_re, tw_im, half);
    }
    return;
  }
#elif defined(CELLFI_SIMD_NEON)
  if (!detail::ForceScalarFlag()) {
    detail::ButterflyBlockNeon(re, im, tw_re, tw_im, half);
    return;
  }
#endif
  ButterflyBlockScalar(re, im, tw_re, tw_im, half);
}

/// Split-complex pointwise product a[i] *= b[i].
inline void CMulSplit(double* a_re, double* a_im, const double* b_re,
                      const double* b_im, std::size_t n) {
#if defined(CELLFI_SIMD_X86)
  if (!detail::ForceScalarFlag() && detail::HaveAvx2()) {
    detail::CMulSplitAvx2(a_re, a_im, b_re, b_im, n);
    return;
  }
#elif defined(CELLFI_SIMD_NEON)
  if (!detail::ForceScalarFlag()) {
    detail::CMulSplitNeon(a_re, a_im, b_re, b_im, n);
    return;
  }
#endif
  CMulSplitScalar(a_re, a_im, b_re, b_im, n);
}

/// Interleaved conjugate product dst[i] = a[i] * conj(b[i]) (dst may
/// alias a). SSE2 has no hadd; non-AVX2 x86 takes the scalar path.
inline void ConjMulInterleaved(double* dst, const double* a, const double* b,
                               std::size_t n) {
#if defined(CELLFI_SIMD_X86)
  if (!detail::ForceScalarFlag() && detail::HaveAvx2()) {
    detail::ConjMulInterleavedAvx2(dst, a, b, n);
    return;
  }
#endif
  ConjMulInterleavedScalar(dst, a, b, n);
}

/// In-place x[i] *= s.
inline void Scale(double* x, std::size_t n, double s) {
#if defined(CELLFI_SIMD_X86)
  if (!detail::ForceScalarFlag()) {
    if (detail::HaveAvx2()) {
      detail::ScaleAvx2(x, n, s);
    } else {
      detail::ScaleSse2(x, n, s);
    }
    return;
  }
#elif defined(CELLFI_SIMD_NEON)
  if (!detail::ForceScalarFlag()) {
    detail::ScaleNeon(x, n, s);
    return;
  }
#endif
  ScaleScalar(x, n, s);
}

}  // namespace cellfi::simd
