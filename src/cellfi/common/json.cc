#include "cellfi/common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace cellfi::json {

Value& Value::operator[](const std::string& key) {
  if (!is_object()) data_ = Object{};
  return as_object()[key];
}

const Value* Value::Find(const std::string& key) const {
  if (!is_object()) return nullptr;
  auto it = as_object().find(key);
  return it == as_object().end() ? nullptr : &it->second;
}

namespace {

void DumpString(const std::string& s, std::ostringstream& out) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

void DumpNumber(double d, std::ostringstream& out) {
  if (d == std::floor(d) && std::fabs(d) < 1e15) {
    out << static_cast<std::int64_t>(d);
  } else {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", d);
    out << buf;
  }
}

void DumpValue(const Value& v, std::ostringstream& out) {
  if (v.is_null()) {
    out << "null";
  } else if (v.is_bool()) {
    out << (v.as_bool() ? "true" : "false");
  } else if (v.is_number()) {
    DumpNumber(v.as_number(), out);
  } else if (v.is_string()) {
    DumpString(v.as_string(), out);
  } else if (v.is_array()) {
    out << '[';
    bool first = true;
    for (const auto& e : v.as_array()) {
      if (!first) out << ',';
      first = false;
      DumpValue(e, out);
    }
    out << ']';
  } else {
    out << '{';
    bool first = true;
    for (const auto& [k, e] : v.as_object()) {
      if (!first) out << ',';
      first = false;
      DumpString(k, out);
      out << ':';
      DumpValue(e, out);
    }
    out << '}';
  }
}

// Recursive-descent parser.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  std::optional<Value> Run() {
    auto v = ParseValue();
    if (!v) return std::nullopt;
    SkipWs();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* lit) {
    std::size_t n = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  std::optional<Value> ParseValue() {
    SkipWs();
    if (pos_ >= text_.size()) return std::nullopt;
    char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      auto s = ParseString();
      if (!s) return std::nullopt;
      return Value(*s);
    }
    if (ConsumeLiteral("true")) return Value(true);
    if (ConsumeLiteral("false")) return Value(false);
    if (ConsumeLiteral("null")) return Value(nullptr);
    return ParseNumber();
  }

  std::optional<std::string> ParseString() {
    if (!Consume('"')) return std::nullopt;
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return std::nullopt;
        char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return std::nullopt;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code += h - '0';
              else if (h >= 'a' && h <= 'f') code += h - 'a' + 10;
              else if (h >= 'A' && h <= 'F') code += h - 'A' + 10;
              else return std::nullopt;
            }
            // Encode as UTF-8 (BMP only; surrogate pairs unsupported).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: return std::nullopt;
        }
      } else {
        out += c;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<Value> ParseNumber() {
    std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    bool digits = false;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '-' ||
            text_[pos_] == '+')) {
      if (std::isdigit(static_cast<unsigned char>(text_[pos_]))) digits = true;
      ++pos_;
    }
    if (!digits) return std::nullopt;
    try {
      return Value(std::stod(text_.substr(start, pos_ - start)));
    } catch (...) {
      return std::nullopt;
    }
  }

  std::optional<Value> ParseArray() {
    if (!Consume('[')) return std::nullopt;
    Array arr;
    SkipWs();
    if (Consume(']')) return Value(std::move(arr));
    while (true) {
      auto v = ParseValue();
      if (!v) return std::nullopt;
      arr.push_back(std::move(*v));
      if (Consume(']')) return Value(std::move(arr));
      if (!Consume(',')) return std::nullopt;
    }
  }

  std::optional<Value> ParseObject() {
    if (!Consume('{')) return std::nullopt;
    Object obj;
    SkipWs();
    if (Consume('}')) return Value(std::move(obj));
    while (true) {
      SkipWs();
      auto key = ParseString();
      if (!key) return std::nullopt;
      if (!Consume(':')) return std::nullopt;
      auto v = ParseValue();
      if (!v) return std::nullopt;
      obj[*key] = std::move(*v);
      if (Consume('}')) return Value(std::move(obj));
      if (!Consume(',')) return std::nullopt;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string Value::Dump() const {
  std::ostringstream out;
  DumpValue(*this, out);
  return out.str();
}

std::optional<Value> Parse(const std::string& text) { return Parser(text).Run(); }

}  // namespace cellfi::json
