#include "cellfi/common/stats.h"

#include <cassert>

namespace cellfi {

void Summary::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void Distribution::AddAll(const std::vector<double>& xs) {
  samples_.insert(samples_.end(), xs.begin(), xs.end());
  sorted_ = false;
}

void Distribution::Sort() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Distribution::Percentile(double q) const {
  assert(!samples_.empty());
  Sort();
  if (q <= 0.0) return samples_.front();
  if (q >= 1.0) return samples_.back();
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

double Distribution::Mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double Distribution::CdfAt(double x) const {
  if (samples_.empty()) return 0.0;
  Sort();
  auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) / static_cast<double>(samples_.size());
}

double Distribution::FractionBelow(double x) const {
  if (samples_.empty()) return 0.0;
  Sort();
  auto it = std::lower_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) / static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>> Distribution::CdfSeries(std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || points < 2) return out;
  Sort();
  const double lo = samples_.front();
  const double hi = samples_.back();
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double x = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    out.emplace_back(x, CdfAt(x));
  }
  return out;
}

}  // namespace cellfi
