// Aligned plain-text table printer used by benches to emit the rows/series
// of each paper table and figure.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace cellfi {

/// Accumulates rows of string cells and prints them column-aligned.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Add a row; must have the same arity as the header.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: format a double with `precision` digits after the point.
  static std::string Num(double v, int precision = 2);

  /// Render to the stream with a title, header, separator and rows.
  void Print(std::ostream& out, const std::string& title) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cellfi
