#include "cellfi/common/table.h"

#include <cassert>
#include <cstdio>
#include <ostream>

namespace cellfi {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> cells) {
  assert(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

void Table::Print(std::ostream& out, const std::string& title) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    out << "  ";
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c];
      if (c + 1 < row.size()) out << std::string(width[c] - row[c].size() + 2, ' ');
    }
    out << '\n';
  };

  out << "== " << title << " ==\n";
  print_row(header_);
  std::size_t total = 2;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c + 1 < width.size() ? 2 : 0);
  out << "  " << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
  out << '\n';
}

}  // namespace cellfi
