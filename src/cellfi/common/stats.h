// Small statistics helpers used by benches and the evaluation harness:
// running summaries, empirical CDFs and percentiles.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace cellfi {

/// Online mean / variance / min / max accumulator (Welford).
class Summary {
 public:
  void Add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const { return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Collects samples and answers percentile / CDF queries.
class Distribution {
 public:
  void Add(double x) { samples_.push_back(x); sorted_ = false; }
  void AddAll(const std::vector<double>& xs);

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// q in [0, 1]; linear interpolation between order statistics.
  double Percentile(double q) const;
  double Median() const { return Percentile(0.5); }
  double Mean() const;

  /// Empirical CDF evaluated at `x`: fraction of samples <= x.
  double CdfAt(double x) const;

  /// Fraction of samples strictly below `x` (e.g. starvation threshold).
  double FractionBelow(double x) const;

  /// `points` evenly spaced (value, cdf) pairs spanning the sample range,
  /// suitable for plotting a CDF series.
  std::vector<std::pair<double, double>> CdfSeries(std::size_t points = 50) const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  void Sort() const;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

}  // namespace cellfi
