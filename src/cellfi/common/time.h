// Simulation time: integer nanoseconds since simulation start.
//
// An integer time base keeps event ordering exact; helpers below convert to
// and from seconds/milliseconds for configuration and reporting.
#pragma once

#include <cstdint>

namespace cellfi {

/// Simulation timestamp or duration in nanoseconds.
using SimTime = std::int64_t;

inline constexpr SimTime kNanosecond = 1;
inline constexpr SimTime kMicrosecond = 1'000;
inline constexpr SimTime kMillisecond = 1'000'000;
inline constexpr SimTime kSecond = 1'000'000'000;

/// Build a SimTime from fractional seconds (rounded to nearest ns).
inline constexpr SimTime FromSeconds(double s) {
  return static_cast<SimTime>(s * 1e9 + (s >= 0 ? 0.5 : -0.5));
}

/// Build a SimTime from fractional milliseconds.
inline constexpr SimTime FromMilliseconds(double ms) {
  return FromSeconds(ms * 1e-3);
}

/// Build a SimTime from fractional microseconds.
inline constexpr SimTime FromMicroseconds(double us) {
  return FromSeconds(us * 1e-6);
}

/// SimTime to fractional seconds.
inline constexpr double ToSeconds(SimTime t) { return static_cast<double>(t) * 1e-9; }

/// SimTime to fractional milliseconds.
inline constexpr double ToMilliseconds(SimTime t) { return static_cast<double>(t) * 1e-6; }

}  // namespace cellfi
