// Random number generation for simulations.
//
// Every stochastic component takes a `Rng&` so runs are reproducible from a
// single seed and independent streams can be derived per component.
#pragma once

#include <cstdint>
#include <random>

namespace cellfi {

/// Seedable random source with the distributions used across the library.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) : engine_(seed) {}

  /// Derive an independent child stream (for per-node/per-link RNGs).
  Rng Fork() { return Rng(engine_() ^ 0xD1B54A32D192ED03ull); }

  /// Uniform real in [0, 1).
  double Uniform() { return uniform_(engine_); }

  /// Uniform real in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Standard normal sample.
  double Normal() { return normal_(engine_); }

  /// Normal with given mean / stddev.
  double Normal(double mean, double stddev) { return mean + stddev * Normal(); }

  /// Exponential with the given mean (not rate).
  double Exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Log-normal parameterized by the underlying normal's mu/sigma.
  double LogNormal(double mu, double sigma) {
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
  }

  /// Pareto with shape `alpha` and scale `xm` (mean exists for alpha > 1).
  double Pareto(double alpha, double xm) {
    return xm / std::pow(1.0 - Uniform(), 1.0 / alpha);
  }

  /// Bernoulli trial with success probability `p`.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Geometrically distributed count of failures before first success.
  std::int64_t Geometric(double p) {
    return std::geometric_distribution<std::int64_t>(p)(engine_);
  }

  /// Access the underlying engine (for std::shuffle etc.).
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> uniform_{0.0, 1.0};
  std::normal_distribution<double> normal_{0.0, 1.0};
};

}  // namespace cellfi
