// Power, frequency and bandwidth unit helpers.
//
// All link-budget arithmetic in the library is done in dB / dBm where
// possible; conversions to linear (mW / W) happen only where powers must be
// summed (interference aggregation).
#pragma once

#include <cmath>
#include <cstdint>

namespace cellfi {

/// Convert a power in dBm to milliwatts.
inline double DbmToMw(double dbm) { return std::pow(10.0, dbm / 10.0); }

/// Convert a power in milliwatts to dBm. `mw` must be > 0.
inline double MwToDbm(double mw) { return 10.0 * std::log10(mw); }

/// Convert a dB ratio to a linear ratio.
inline double DbToLinear(double db) { return std::pow(10.0, db / 10.0); }

/// Convert a linear ratio to dB. `linear` must be > 0.
inline double LinearToDb(double linear) { return 10.0 * std::log10(linear); }

/// Thermal noise power spectral density at 290 K, in dBm/Hz.
inline constexpr double kThermalNoiseDbmPerHz = -174.0;

/// Thermal noise power over `bandwidth_hz`, with receiver `noise_figure_db`.
inline double NoisePowerDbm(double bandwidth_hz, double noise_figure_db) {
  return kThermalNoiseDbmPerHz + 10.0 * std::log10(bandwidth_hz) +
         noise_figure_db;
}

/// Speed of light, m/s.
inline constexpr double kSpeedOfLightMps = 299'792'458.0;

/// Wavelength in metres for a carrier frequency in Hz.
inline double WavelengthM(double freq_hz) { return kSpeedOfLightMps / freq_hz; }

namespace units {
inline constexpr double kHz = 1e3;
inline constexpr double MHz = 1e6;
inline constexpr double GHz = 1e9;
}  // namespace units

}  // namespace cellfi
