// Minimal JSON value, parser and serializer.
//
// This exists to encode/decode the PAWS (RFC 7545) message subset used by
// the TVWS spectrum-database client (`cellfi/tvws`). It supports the full
// JSON data model except that numbers are always stored as double.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace cellfi::json {

class Value;

using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

/// A JSON value: null, bool, number, string, array or object.
class Value {
 public:
  Value() : data_(nullptr) {}
  Value(std::nullptr_t) : data_(nullptr) {}
  Value(bool b) : data_(b) {}
  Value(double d) : data_(d) {}
  Value(int i) : data_(static_cast<double>(i)) {}
  Value(std::int64_t i) : data_(static_cast<double>(i)) {}
  Value(const char* s) : data_(std::string(s)) {}
  Value(std::string s) : data_(std::move(s)) {}
  Value(Array a) : data_(std::move(a)) {}
  Value(Object o) : data_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(data_); }
  bool is_bool() const { return std::holds_alternative<bool>(data_); }
  bool is_number() const { return std::holds_alternative<double>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }
  bool is_array() const { return std::holds_alternative<Array>(data_); }
  bool is_object() const { return std::holds_alternative<Object>(data_); }

  bool as_bool() const { return std::get<bool>(data_); }
  double as_number() const { return std::get<double>(data_); }
  std::int64_t as_int() const { return static_cast<std::int64_t>(std::get<double>(data_)); }
  const std::string& as_string() const { return std::get<std::string>(data_); }
  const Array& as_array() const { return std::get<Array>(data_); }
  Array& as_array() { return std::get<Array>(data_); }
  const Object& as_object() const { return std::get<Object>(data_); }
  Object& as_object() { return std::get<Object>(data_); }

  /// Object member access; inserts null for missing keys (object only).
  Value& operator[](const std::string& key);

  /// Lookup without insertion; nullptr when absent or not an object.
  const Value* Find(const std::string& key) const;

  /// Serialize to a compact JSON string.
  std::string Dump() const;

  friend bool operator==(const Value& a, const Value& b) { return a.data_ == b.data_; }

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> data_;
};

/// Parse a JSON document. Returns nullopt on malformed input.
std::optional<Value> Parse(const std::string& text);

}  // namespace cellfi::json
