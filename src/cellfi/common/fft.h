// Iterative radix-2 FFT with precomputed per-stage twiddle tables and
// split-complex (separate re/im arrays) butterfly kernels (DESIGN.md §17).
//
// Used by the PRACH generator/detector (`cellfi/phy/prach*`) and the OFDM
// modem. Sizes must be powers of two; PRACH sequences of prime length go
// through the Bluestein chirp-z path (Dft/DftInto). Twiddles are tabulated
// per stage with a direct cos/sin evaluation per index — the previous
// `w *= wlen` recurrence accumulated rounding error across a stage — and
// the butterflies run on the cellfi::simd kernel layer, so scalar and SIMD
// builds produce bit-identical transforms.
#pragma once

#include <complex>
#include <vector>

namespace cellfi {

using Complex = std::complex<double>;

/// Returns true if n is a power of two (n >= 1).
bool IsPowerOfTwo(std::size_t n);

/// Smallest power of two >= n.
std::size_t NextPowerOfTwo(std::size_t n);

/// In-place forward FFT. `data.size()` must be a power of two.
void Fft(std::vector<Complex>& data);

/// In-place inverse FFT (includes the 1/N normalization).
void Ifft(std::vector<Complex>& data);

/// Raw in-place variants over `n` (power of two) samples, for callers that
/// manage their own buffers. These borrow a thread-local workspace for the
/// split-complex deinterleave scratch.
void Fft(Complex* data, std::size_t n);
void Ifft(Complex* data, std::size_t n);

struct DftWorkspace;

/// Workspace variants of the raw in-place transforms: reuse `ws` instead
/// of the thread-local scratch (symbol-rate modem paths).
void Fft(Complex* data, std::size_t n, DftWorkspace& ws);
void Ifft(Complex* data, std::size_t n, DftWorkspace& ws);

/// Reusable workspace for the transform paths. Holding one across calls
/// makes DftInto/IdftInto/CircularCorrelate*Into allocation-free after the
/// first call at a given length; the twiddle tables and Bluestein chirp
/// tables are planned and cached per thread independently of this buffer.
/// A workspace is cheap to default-construct and must not be shared
/// between threads.
struct DftWorkspace {
  // Split-complex deinterleave / Bluestein convolution scratch.
  std::vector<double> re;
  std::vector<double> im;
  // Spectrum scratch for the *Into correlation variants.
  std::vector<Complex> fa;
  std::vector<Complex> fb;
};

/// Forward DFT of `in` into `out` (resized to in.size()), reusing `ws`.
/// `in` and `out` must be distinct vectors.
void DftInto(const std::vector<Complex>& in, std::vector<Complex>& out,
             DftWorkspace& ws);

/// Inverse DFT (includes the 1/N normalization), reusing `ws`.
void IdftInto(const std::vector<Complex>& in, std::vector<Complex>& out,
              DftWorkspace& ws);

/// Circular cross-correlation of `a` against `b` (both same power-of-two
/// length): result[k] = sum_n a[n] * conj(b[n-k mod N]).
std::vector<Complex> CircularCorrelate(const std::vector<Complex>& a,
                                       const std::vector<Complex>& b);

/// Scratch-buffer variant of CircularCorrelate: writes into `out` (resized)
/// reusing `ws`, allocation-free once the workspace is warm. `out` must be
/// distinct from `a`, `b` and the workspace vectors.
void CircularCorrelateInto(const std::vector<Complex>& a,
                           const std::vector<Complex>& b,
                           std::vector<Complex>& out, DftWorkspace& ws);

/// Forward DFT of arbitrary length via Bluestein's chirp-z algorithm
/// (O(N log N) using the radix-2 FFT above). Needed for LTE PRACH
/// sequences, whose length (839) is prime.
std::vector<Complex> Dft(const std::vector<Complex>& data);

/// Inverse DFT of arbitrary length (includes the 1/N normalization).
std::vector<Complex> Idft(const std::vector<Complex>& data);

/// Circular cross-correlation for arbitrary (equal) lengths via Dft/Idft.
std::vector<Complex> CircularCorrelateAny(const std::vector<Complex>& a,
                                          const std::vector<Complex>& b);

/// Scratch-buffer variant of CircularCorrelateAny (same contract as
/// CircularCorrelateInto, any equal length).
void CircularCorrelateAnyInto(const std::vector<Complex>& a,
                              const std::vector<Complex>& b,
                              std::vector<Complex>& out, DftWorkspace& ws);

}  // namespace cellfi
