// In-place iterative radix-2 FFT.
//
// Used by the PRACH generator/detector (`cellfi/phy/prach*`). Sizes must be
// powers of two; PRACH sequences of prime length are zero-padded by callers.
#pragma once

#include <complex>
#include <vector>

namespace cellfi {

using Complex = std::complex<double>;

/// Returns true if n is a power of two (n >= 1).
bool IsPowerOfTwo(std::size_t n);

/// Smallest power of two >= n.
std::size_t NextPowerOfTwo(std::size_t n);

/// In-place forward FFT. `data.size()` must be a power of two.
void Fft(std::vector<Complex>& data);

/// In-place inverse FFT (includes the 1/N normalization).
void Ifft(std::vector<Complex>& data);

/// Raw in-place variants over `n` (power of two) samples, for callers that
/// manage their own buffers.
void Fft(Complex* data, std::size_t n);
void Ifft(Complex* data, std::size_t n);

/// Reusable workspace for the arbitrary-length DFT path. Holding one
/// across calls makes DftInto/IdftInto allocation-free after the first
/// call at a given length; the Bluestein chirp tables are planned and
/// cached per thread independently of this buffer. A workspace is cheap to
/// default-construct and must not be shared between threads.
struct DftWorkspace {
  std::vector<Complex> padded;  // power-of-two convolution buffer
};

/// Forward DFT of `in` into `out` (resized to in.size()), reusing `ws`.
/// `in` and `out` must be distinct vectors.
void DftInto(const std::vector<Complex>& in, std::vector<Complex>& out,
             DftWorkspace& ws);

/// Inverse DFT (includes the 1/N normalization), reusing `ws`.
void IdftInto(const std::vector<Complex>& in, std::vector<Complex>& out,
              DftWorkspace& ws);

/// Circular cross-correlation of `a` against `b` (both same power-of-two
/// length): result[k] = sum_n a[n] * conj(b[n-k mod N]).
std::vector<Complex> CircularCorrelate(const std::vector<Complex>& a,
                                       const std::vector<Complex>& b);

/// Forward DFT of arbitrary length via Bluestein's chirp-z algorithm
/// (O(N log N) using the radix-2 FFT above). Needed for LTE PRACH
/// sequences, whose length (839) is prime.
std::vector<Complex> Dft(const std::vector<Complex>& data);

/// Inverse DFT of arbitrary length (includes the 1/N normalization).
std::vector<Complex> Idft(const std::vector<Complex>& data);

/// Circular cross-correlation for arbitrary (equal) lengths via Dft/Idft.
std::vector<Complex> CircularCorrelateAny(const std::vector<Complex>& a,
                                          const std::vector<Complex>& b);

}  // namespace cellfi
