#include "cellfi/common/fft.h"

#include <cassert>
#include <cmath>
#include <utility>

#include "cellfi/common/simd.h"

namespace cellfi {

bool IsPowerOfTwo(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

std::size_t NextPowerOfTwo(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

namespace {

// Per-size radix-2 plan: bit-reversal permutation plus per-stage twiddle
// tables. Stage with half-length h (h = 1, 2, ..., n/2) owns h entries at
// offset h-1 (the halves sum to h-1), each evaluated directly as
// cos/sin(-pi k / h) — no w *= wlen recurrence, so the last butterfly of a
// stage is as accurate as the first. Inverse twiddles are the exact
// negation of the forward imaginary parts.
struct FftPlan {
  std::size_t n = 0;
  std::vector<std::size_t> bitrev;
  std::vector<double> tw_re;
  std::vector<double> tw_im;      // forward: sin(-pi k / h)
  std::vector<double> tw_im_inv;  // inverse: -tw_im (exact)
};

FftPlan BuildPlan(std::size_t n) {
  assert(IsPowerOfTwo(n));
  FftPlan plan;
  plan.n = n;
  plan.bitrev.assign(n, 0);
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    plan.bitrev[i] = j;
  }
  const std::size_t tw_total = n - 1;
  plan.tw_re.resize(tw_total);
  plan.tw_im.resize(tw_total);
  plan.tw_im_inv.resize(tw_total);
  for (std::size_t half = 1; half < n; half <<= 1) {
    const std::size_t off = half - 1;
    for (std::size_t k = 0; k < half; ++k) {
      const double ang = -M_PI * static_cast<double>(k) / static_cast<double>(half);
      plan.tw_re[off + k] = std::cos(ang);
      plan.tw_im[off + k] = std::sin(ang);
      plan.tw_im_inv[off + k] = -plan.tw_im[off + k];
    }
  }
  return plan;
}

const FftPlan& PlanPow2(std::size_t n) {
  thread_local std::vector<std::pair<std::size_t, FftPlan>> cache;
  for (auto& entry : cache) {
    if (entry.first == n) return entry.second;
  }
  cache.emplace_back(n, BuildPlan(n));
  return cache.back().second;
}

// Split-complex in-place transform. All arithmetic runs through the
// cellfi::simd kernels, whose scalar reference defines the op order, so
// CELLFI_SIMD=OFF and =ON builds are bit-identical.
void FftSplit(double* re, double* im, std::size_t n, bool inverse) {
  const FftPlan& plan = PlanPow2(n);
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t j = plan.bitrev[i];
    if (i < j) {
      std::swap(re[i], re[j]);
      std::swap(im[i], im[j]);
    }
  }
  for (std::size_t half = 1; half < n; half <<= 1) {
    const std::size_t off = half - 1;
    const double* twr = plan.tw_re.data() + off;
    const double* twi =
        (inverse ? plan.tw_im_inv : plan.tw_im).data() + off;
    for (std::size_t i = 0; i < n; i += 2 * half) {
      simd::ButterflyBlock(re + i, im + i, twr, twi, half);
    }
  }
  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    simd::Scale(re, n, inv_n);
    simd::Scale(im, n, inv_n);
  }
}

// Interleaved entry point: deinterleave into the workspace, transform
// split, reinterleave.
void FftInterleaved(Complex* data, std::size_t n, bool inverse,
                    DftWorkspace& ws) {
  assert(IsPowerOfTwo(n));
  ws.re.resize(n);
  ws.im.resize(n);
  const double* src = reinterpret_cast<const double*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    ws.re[i] = src[2 * i];
    ws.im[i] = src[2 * i + 1];
  }
  FftSplit(ws.re.data(), ws.im.data(), n, inverse);
  double* dst = reinterpret_cast<double*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    dst[2 * i] = ws.re[i];
    dst[2 * i + 1] = ws.im[i];
  }
}

DftWorkspace& LocalWorkspace() {
  thread_local DftWorkspace ws;
  return ws;
}

}  // namespace

void Fft(std::vector<Complex>& data) {
  FftInterleaved(data.data(), data.size(), /*inverse=*/false, LocalWorkspace());
}

void Ifft(std::vector<Complex>& data) {
  FftInterleaved(data.data(), data.size(), /*inverse=*/true, LocalWorkspace());
}

void Fft(Complex* data, std::size_t n) {
  FftInterleaved(data, n, /*inverse=*/false, LocalWorkspace());
}

void Ifft(Complex* data, std::size_t n) {
  FftInterleaved(data, n, /*inverse=*/true, LocalWorkspace());
}

void Fft(Complex* data, std::size_t n, DftWorkspace& ws) {
  FftInterleaved(data, n, /*inverse=*/false, ws);
}

void Ifft(Complex* data, std::size_t n, DftWorkspace& ws) {
  FftInterleaved(data, n, /*inverse=*/true, ws);
}

namespace {

// Bluestein: X[k] = conj(w[k]) * sum_n (x[n] conj(w[n])) w[k-n],
// with w[n] = exp(-i pi n^2 / N); the convolution runs over a padded
// power-of-two FFT, entirely in split-complex form. The chirp and the
// chirp-filter spectrum depend only on (n, direction), so they are planned
// once and cached — the PRACH detector calls this at line rate.
struct BluesteinPlan {
  std::vector<double> w_re, w_im;  // chirp
  std::vector<double> b_re, b_im;  // spectrum of the symmetric conj-chirp filter
  std::size_t m = 0;               // padded length
};

const BluesteinPlan& PlanFor(std::size_t n, bool inverse) {
  thread_local std::vector<std::pair<std::size_t, BluesteinPlan>> cache[2];
  auto& entries = cache[inverse ? 1 : 0];
  for (auto& entry : entries) {
    if (entry.first == n) return entry.second;
  }
  BluesteinPlan plan;
  const double sign = inverse ? 1.0 : -1.0;
  plan.w_re.resize(n);
  plan.w_im.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    // i^2 mod 2n avoids precision loss for large i.
    const std::size_t sq = (i * i) % (2 * n);
    const double ang = sign * M_PI * static_cast<double>(sq) / static_cast<double>(n);
    plan.w_re[i] = std::cos(ang);
    plan.w_im[i] = std::sin(ang);
  }
  plan.m = NextPowerOfTwo(2 * n - 1);
  plan.b_re.assign(plan.m, 0.0);
  plan.b_im.assign(plan.m, 0.0);
  plan.b_re[0] = plan.w_re[0];
  plan.b_im[0] = -plan.w_im[0];
  for (std::size_t i = 1; i < n; ++i) {
    plan.b_re[i] = plan.b_re[plan.m - i] = plan.w_re[i];
    plan.b_im[i] = plan.b_im[plan.m - i] = -plan.w_im[i];
  }
  FftSplit(plan.b_re.data(), plan.b_im.data(), plan.m, /*inverse=*/false);
  entries.emplace_back(n, std::move(plan));
  return entries.back().second;
}

void BluesteinInto(const std::vector<Complex>& x, std::vector<Complex>& out,
                   DftWorkspace& ws, bool inverse) {
  const std::size_t n = x.size();
  assert(n >= 1);
  assert(&x != &out);
  if (IsPowerOfTwo(n)) {
    out = x;
    FftInterleaved(out.data(), n, inverse, ws);
    return;
  }

  const BluesteinPlan& plan = PlanFor(n, inverse);
  const std::size_t m = plan.m;
  ws.re.assign(m, 0.0);
  ws.im.assign(m, 0.0);
  const double* src = reinterpret_cast<const double*>(x.data());
  for (std::size_t i = 0; i < n; ++i) {
    const double xr = src[2 * i];
    const double xi = src[2 * i + 1];
    ws.re[i] = xr * plan.w_re[i] - xi * plan.w_im[i];
    ws.im[i] = xr * plan.w_im[i] + xi * plan.w_re[i];
  }
  FftSplit(ws.re.data(), ws.im.data(), m, /*inverse=*/false);
  simd::CMulSplit(ws.re.data(), ws.im.data(), plan.b_re.data(),
                  plan.b_im.data(), m);
  FftSplit(ws.re.data(), ws.im.data(), m, /*inverse=*/true);

  out.resize(n);
  double* dst = reinterpret_cast<double*>(out.data());
  for (std::size_t i = 0; i < n; ++i) {
    const double ar = ws.re[i];
    const double ai = ws.im[i];
    dst[2 * i] = ar * plan.w_re[i] - ai * plan.w_im[i];
    dst[2 * i + 1] = ar * plan.w_im[i] + ai * plan.w_re[i];
  }
  if (inverse) {
    simd::Scale(dst, 2 * n, 1.0 / static_cast<double>(n));
  }
}

}  // namespace

void DftInto(const std::vector<Complex>& in, std::vector<Complex>& out,
             DftWorkspace& ws) {
  BluesteinInto(in, out, ws, /*inverse=*/false);
}

void IdftInto(const std::vector<Complex>& in, std::vector<Complex>& out,
              DftWorkspace& ws) {
  BluesteinInto(in, out, ws, /*inverse=*/true);
}

std::vector<Complex> Dft(const std::vector<Complex>& data) {
  std::vector<Complex> out;
  DftInto(data, out, LocalWorkspace());
  return out;
}

std::vector<Complex> Idft(const std::vector<Complex>& data) {
  std::vector<Complex> out;
  IdftInto(data, out, LocalWorkspace());
  return out;
}

void CircularCorrelateAnyInto(const std::vector<Complex>& a,
                              const std::vector<Complex>& b,
                              std::vector<Complex>& out, DftWorkspace& ws) {
  assert(a.size() == b.size());
  assert(&out != &a && &out != &b);
  DftInto(a, ws.fa, ws);
  DftInto(b, ws.fb, ws);
  simd::ConjMulInterleaved(reinterpret_cast<double*>(ws.fa.data()),
                           reinterpret_cast<const double*>(ws.fa.data()),
                           reinterpret_cast<const double*>(ws.fb.data()),
                           ws.fa.size());
  IdftInto(ws.fa, out, ws);
}

void CircularCorrelateInto(const std::vector<Complex>& a,
                           const std::vector<Complex>& b,
                           std::vector<Complex>& out, DftWorkspace& ws) {
  assert(IsPowerOfTwo(a.size()));
  CircularCorrelateAnyInto(a, b, out, ws);
}

std::vector<Complex> CircularCorrelate(const std::vector<Complex>& a,
                                       const std::vector<Complex>& b) {
  std::vector<Complex> out;
  CircularCorrelateInto(a, b, out, LocalWorkspace());
  return out;
}

std::vector<Complex> CircularCorrelateAny(const std::vector<Complex>& a,
                                          const std::vector<Complex>& b) {
  std::vector<Complex> out;
  CircularCorrelateAnyInto(a, b, out, LocalWorkspace());
  return out;
}

}  // namespace cellfi
