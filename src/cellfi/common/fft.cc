#include "cellfi/common/fft.h"

#include <cassert>
#include <cmath>

namespace cellfi {

bool IsPowerOfTwo(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

std::size_t NextPowerOfTwo(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

namespace {

void FftImpl(Complex* a, std::size_t n, bool inverse) {
  assert(IsPowerOfTwo(n));

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = 2.0 * M_PI / static_cast<double>(len) * (inverse ? 1 : -1);
    const Complex wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = a[i + k];
        const Complex v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (std::size_t i = 0; i < n; ++i) a[i] *= inv_n;
  }
}

}  // namespace

void Fft(std::vector<Complex>& data) { FftImpl(data.data(), data.size(), /*inverse=*/false); }

void Ifft(std::vector<Complex>& data) { FftImpl(data.data(), data.size(), /*inverse=*/true); }

void Fft(Complex* data, std::size_t n) { FftImpl(data, n, /*inverse=*/false); }

void Ifft(Complex* data, std::size_t n) { FftImpl(data, n, /*inverse=*/true); }

std::vector<Complex> CircularCorrelate(const std::vector<Complex>& a,
                                       const std::vector<Complex>& b) {
  assert(a.size() == b.size());
  std::vector<Complex> fa = a;
  std::vector<Complex> fb = b;
  Fft(fa);
  Fft(fb);
  for (std::size_t i = 0; i < fa.size(); ++i) fa[i] *= std::conj(fb[i]);
  Ifft(fa);
  return fa;
}

namespace {

// Bluestein: X[k] = conj(w[k]) * sum_n (x[n] conj(w[n])) w[k-n],
// with w[n] = exp(-i pi n^2 / N); the convolution runs over a padded
// power-of-two FFT. The chirp and the chirp-filter spectrum depend only on
// (n, direction), so they are planned once and cached — the PRACH detector
// calls this at line rate.
struct BluesteinPlan {
  std::vector<Complex> w;       // chirp
  std::vector<Complex> b_freq;  // FFT of the symmetric conj-chirp filter
  std::size_t m = 0;            // padded length
};

const BluesteinPlan& PlanFor(std::size_t n, bool inverse) {
  thread_local std::vector<std::pair<std::size_t, BluesteinPlan>> cache[2];
  auto& entries = cache[inverse ? 1 : 0];
  for (auto& entry : entries) {
    if (entry.first == n) return entry.second;
  }
  BluesteinPlan plan;
  const double sign = inverse ? 1.0 : -1.0;
  plan.w.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    // i^2 mod 2n avoids precision loss for large i.
    const std::size_t sq = (i * i) % (2 * n);
    const double ang = sign * M_PI * static_cast<double>(sq) / static_cast<double>(n);
    plan.w[i] = Complex(std::cos(ang), std::sin(ang));
  }
  plan.m = NextPowerOfTwo(2 * n - 1);
  plan.b_freq.assign(plan.m, Complex(0, 0));
  plan.b_freq[0] = std::conj(plan.w[0]);
  for (std::size_t i = 1; i < n; ++i) {
    plan.b_freq[i] = plan.b_freq[plan.m - i] = std::conj(plan.w[i]);
  }
  Fft(plan.b_freq);
  entries.emplace_back(n, std::move(plan));
  return entries.back().second;
}

void BluesteinInto(const std::vector<Complex>& x, std::vector<Complex>& out,
                   DftWorkspace& ws, bool inverse) {
  const std::size_t n = x.size();
  assert(n >= 1);
  assert(&x != &out);
  if (IsPowerOfTwo(n)) {
    out = x;
    FftImpl(out.data(), n, inverse);
    return;
  }

  const BluesteinPlan& plan = PlanFor(n, inverse);
  std::vector<Complex>& a = ws.padded;
  a.assign(plan.m, Complex(0, 0));
  for (std::size_t i = 0; i < n; ++i) a[i] = x[i] * plan.w[i];
  FftImpl(a.data(), plan.m, /*inverse=*/false);
  for (std::size_t i = 0; i < plan.m; ++i) a[i] *= plan.b_freq[i];
  FftImpl(a.data(), plan.m, /*inverse=*/true);

  out.resize(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] * plan.w[i];
  if (inverse) {
    for (auto& v : out) v /= static_cast<double>(n);
  }
}

}  // namespace

void DftInto(const std::vector<Complex>& in, std::vector<Complex>& out,
             DftWorkspace& ws) {
  BluesteinInto(in, out, ws, /*inverse=*/false);
}

void IdftInto(const std::vector<Complex>& in, std::vector<Complex>& out,
              DftWorkspace& ws) {
  BluesteinInto(in, out, ws, /*inverse=*/true);
}

std::vector<Complex> Dft(const std::vector<Complex>& data) {
  DftWorkspace ws;
  std::vector<Complex> out;
  DftInto(data, out, ws);
  return out;
}

std::vector<Complex> Idft(const std::vector<Complex>& data) {
  DftWorkspace ws;
  std::vector<Complex> out;
  IdftInto(data, out, ws);
  return out;
}

std::vector<Complex> CircularCorrelateAny(const std::vector<Complex>& a,
                                          const std::vector<Complex>& b) {
  assert(a.size() == b.size());
  std::vector<Complex> fa = Dft(a);
  std::vector<Complex> fb = Dft(b);
  for (std::size_t i = 0; i < fa.size(); ++i) fa[i] *= std::conj(fb[i]);
  return Idft(fa);
}

}  // namespace cellfi
