// Minimal 2-D geometry for node placement and antenna sectors.
#pragma once

#include <cmath>

namespace cellfi {

/// A point (or vector) in the simulation plane, metres.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend Point operator+(Point a, Point b) { return {a.x + b.x, a.y + b.y}; }
  friend Point operator-(Point a, Point b) { return {a.x - b.x, a.y - b.y}; }
  friend bool operator==(Point a, Point b) { return a.x == b.x && a.y == b.y; }
};

/// Euclidean distance between two points, metres.
inline double Distance(Point a, Point b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

/// Bearing from `from` to `to` in radians, in (-pi, pi], 0 = +x axis.
inline double Bearing(Point from, Point to) {
  return std::atan2(to.y - from.y, to.x - from.x);
}

/// Smallest absolute angular difference between two bearings, radians.
inline double AngleDiff(double a, double b) {
  double d = std::fmod(a - b, 2.0 * M_PI);
  if (d > M_PI) d -= 2.0 * M_PI;
  if (d < -M_PI) d += 2.0 * M_PI;
  return std::fabs(d);
}

}  // namespace cellfi
