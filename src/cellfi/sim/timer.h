// Cancellable one-shot timer on top of the Simulator event queue.
//
// A `Timer` owns at most one pending event: re-arming cancels the previous
// occurrence, and the destructor cancels whatever is pending, so callbacks
// can safely capture the owner of the timer.
#pragma once

#include <memory>
#include <utility>

#include "cellfi/sim/event_queue.h"

namespace cellfi {

/// One-shot timer owning a single cancellable event.
class Timer {
 public:
  explicit Timer(Simulator& sim) : sim_(sim) {}
  ~Timer() { Cancel(); }

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;
  Timer(Timer&& other) noexcept
      : sim_(other.sim_), id_(other.id_), armed_(std::move(other.armed_)) {
    other.id_ = EventId{};
    other.armed_.reset();
  }

  /// Arm (or re-arm) the timer to fire `delay` after Now().
  void Arm(SimTime delay, Simulator::Callback cb) { ArmAt(sim_.Now() + delay, std::move(cb)); }

  /// Arm (or re-arm) the timer to fire at absolute time `when`.
  void ArmAt(SimTime when, Simulator::Callback cb) {
    Cancel();
    auto armed = std::make_shared<bool>(true);
    armed_ = armed;
    id_ = sim_.ScheduleAt(when, [armed, cb = std::move(cb)] {
      *armed = false;
      cb();
    });
  }

  /// Cancel the pending occurrence, if any. Safe when not armed.
  void Cancel() {
    if (armed_ && *armed_) sim_.Cancel(id_);
    armed_.reset();
    id_ = EventId{};
  }

  /// True while an occurrence is scheduled and has not yet fired.
  bool armed() const { return armed_ && *armed_; }

 private:
  Simulator& sim_;
  EventId id_;
  std::shared_ptr<bool> armed_;
};

}  // namespace cellfi
