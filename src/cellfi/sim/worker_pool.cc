#include "cellfi/sim/worker_pool.h"

#include <atomic>
#include <cstdlib>
#include <exception>

namespace cellfi {

namespace {

std::atomic<int> g_active_sweep_threads{0};

int EnvInt(const char* name) {
  if (const char* env = std::getenv(name)) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 0;
}

}  // namespace

int HardwareConcurrency() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

void AddActiveSweepThreads(int delta) {
  g_active_sweep_threads.fetch_add(delta, std::memory_order_relaxed);
}

int ActiveSweepThreads() {
  const int n = g_active_sweep_threads.load(std::memory_order_relaxed);
  return n > 0 ? n : 0;
}

int ResolveShardThreads(int requested, int shards) {
  if (shards < 1) shards = 1;
  int threads = requested;
  if (threads <= 0) threads = EnvInt("CELLFI_SHARD_THREADS");
  if (threads <= 0) {
    // Derived default: never let sweep_threads x shard_threads exceed the
    // machine. With 8 sweep workers on an 8-core box this resolves to 1 —
    // replication-level parallelism already owns the cores.
    const int sweep = ActiveSweepThreads();
    threads = HardwareConcurrency() / (sweep > 0 ? sweep : 1);
  }
  if (threads < 1) threads = 1;
  if (threads > shards) threads = shards;
  return threads;
}

WorkerPool::WorkerPool(int threads) {
  if (threads < 1) threads = 1;
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void WorkerPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || next_ < count_; });
    if (stop_) return;
    const std::size_t index = next_++;
    lock.unlock();
    (*task_)(index);
    lock.lock();
    if (++completed_ == count_) done_cv_.notify_all();
  }
}

void WorkerPool::RunIndexed(std::size_t count,
                            const std::function<void(std::size_t)>& task) {
  if (count == 0) return;

  // Mirror SweepRunner: exceptions never unwind through the pool. Capture
  // the first by task index (deterministic regardless of thread timing) and
  // rethrow once the batch has drained.
  std::mutex error_mu;
  std::size_t error_index = count;
  std::exception_ptr error;
  const std::function<void(std::size_t)> guarded = [&](std::size_t i) {
    try {
      task(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mu);
      if (i < error_index) {
        error_index = i;
        error = std::current_exception();
      }
    }
  };

  {
    std::lock_guard<std::mutex> lock(mu_);
    task_ = &guarded;
    count_ = count;
    next_ = 0;
    completed_ = 0;
  }
  work_cv_.notify_all();
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return completed_ == count_; });
    task_ = nullptr;
    count_ = 0;
    next_ = 0;
    completed_ = 0;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace cellfi
