// Discrete-event simulation engine.
//
// A `Simulator` owns a priority queue of (time, sequence, callback) events.
// Events scheduled for the same timestamp execute in scheduling order, which
// makes runs deterministic for a fixed seed.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cellfi/common/time.h"

namespace cellfi {

/// Handle used to cancel a scheduled event.
class EventId {
 public:
  EventId() = default;
  bool valid() const { return seq_ != 0; }

 private:
  friend class Simulator;
  explicit EventId(std::uint64_t seq) : seq_(seq) {}
  std::uint64_t seq_ = 0;
};

/// Single-threaded discrete-event simulator.
class Simulator {
 public:
  using Callback = std::function<void()>;

  /// Current simulation time.
  SimTime Now() const { return now_; }

  /// Schedule `cb` to run at absolute time `when` (>= Now()).
  EventId ScheduleAt(SimTime when, Callback cb);

  /// Schedule `cb` to run `delay` after Now().
  EventId ScheduleAfter(SimTime delay, Callback cb) {
    return ScheduleAt(now_ + delay, std::move(cb));
  }

  /// Schedule `cb` every `period`, starting at Now() + `period`.
  /// Returns the id of the *first* occurrence; cancelling it stops the chain.
  EventId SchedulePeriodic(SimTime period, Callback cb);

  /// Cancel a pending event. Safe to call for already-fired events (no-op).
  void Cancel(EventId id);

  /// Run until the event queue drains or `until` is reached (whichever is
  /// first). Events at exactly `until` do run.
  void RunUntil(SimTime until);

  /// Run until the queue is empty.
  void Run();

  /// Number of events executed so far (for tests / diagnostics).
  std::uint64_t executed_events() const { return executed_; }

  /// True if any event is pending.
  bool HasPending() const;

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    }
  };

  void ExecuteNext();

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<std::uint64_t> cancelled_;
  std::unordered_map<std::uint64_t, std::shared_ptr<bool>> periodic_alive_;
};

}  // namespace cellfi
