#include "cellfi/sim/event_queue.h"

#include <cassert>

namespace cellfi {

EventId Simulator::ScheduleAt(SimTime when, Callback cb) {
  assert(when >= now_);
  const std::uint64_t seq = next_seq_++;
  queue_.push(Event{when, seq, std::move(cb)});
  return EventId(seq);
}

EventId Simulator::SchedulePeriodic(SimTime period, Callback cb) {
  assert(period > 0);
  auto alive = std::make_shared<bool>(true);
  auto tick = std::make_shared<std::function<void()>>();
  // The tick function holds only a weak reference to itself; the strong
  // reference lives in the pending queue event. Otherwise the cycle
  // tick -> lambda -> tick would keep every periodic closure alive forever.
  *tick = [this, period, cb = std::move(cb), alive,
           weak = std::weak_ptr<std::function<void()>>(tick)]() {
    if (!*alive) return;
    cb();
    if (*alive) {
      if (auto self = weak.lock()) ScheduleAfter(period, [self]() { (*self)(); });
    }
  };
  EventId first = ScheduleAfter(period, [tick]() { (*tick)(); });
  periodic_alive_[first.seq_] = alive;
  return first;
}

void Simulator::Cancel(EventId id) {
  if (!id.valid()) return;
  auto it = periodic_alive_.find(id.seq_);
  if (it != periodic_alive_.end()) {
    *it->second = false;
    periodic_alive_.erase(it);
  }
  cancelled_.insert(id.seq_);
}

bool Simulator::HasPending() const { return !queue_.empty(); }

void Simulator::ExecuteNext() {
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.when;
  auto it = cancelled_.find(ev.seq);
  if (it != cancelled_.end()) {
    cancelled_.erase(it);
    return;
  }
  ++executed_;
  ev.cb();
}

void Simulator::RunUntil(SimTime until) {
  while (!queue_.empty() && queue_.top().when <= until) ExecuteNext();
  now_ = std::max(now_, until);
}

void Simulator::Run() {
  while (!queue_.empty()) ExecuteNext();
}

}  // namespace cellfi
