// Persistent worker pool for intra-replication parallelism (DESIGN.md §15).
//
// SweepRunner (scenario/sweep) parallelizes ACROSS replications; this pool
// parallelizes WITHIN one replication — per-subframe shard work in
// LteNetwork. It is deliberately tiny: a fixed set of threads spawned once,
// fed index ranges through RunIndexed, joined at destruction. Tasks must be
// pure with respect to each other (the caller guarantees disjoint write
// sets); the pool adds no ordering of its own, so any result that depends
// on task completion order is a caller bug.
//
// Nested-parallelism guard: when the replication runner's pool and shard
// pools are both active, the product of their thread counts must not
// silently oversubscribe the machine. SweepRunner registers its workers via
// AddActiveSweepThreads; ResolveShardThreads derives the default shard
// thread count as hardware_concurrency / active_sweep_threads. An EXPLICIT
// request (config value > 0 or the CELLFI_SHARD_THREADS env knob) is
// honored verbatim (clamped to the shard count) — explicit is not silent,
// and tests rely on it to exercise real concurrency on small machines.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cellfi {

/// max(1, std::thread::hardware_concurrency()).
int HardwareConcurrency();

/// Registration of replication-runner worker threads (SweepRunner
/// construction adds, destruction subtracts). Used by ResolveShardThreads
/// to derive a non-oversubscribing default.
void AddActiveSweepThreads(int delta);
int ActiveSweepThreads();

/// Effective shard worker count for a network configured with `shards`
/// partitions. Precedence: `requested` (config) > CELLFI_SHARD_THREADS env
/// > hardware_concurrency / active_sweep_threads. The result is always in
/// [1, shards]; only the derived default is capped by the nested-
/// parallelism guard.
int ResolveShardThreads(int requested, int shards);

/// Fixed-size persistent thread pool. One batch at a time; not thread-safe
/// across concurrent RunIndexed calls.
class WorkerPool {
 public:
  /// Spawns `threads` workers (minimum 1).
  explicit WorkerPool(int threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int threads() const { return static_cast<int>(workers_.size()); }

  /// Run task(i) for every i in [0, count); blocks until all complete.
  /// Exceptions are captured per task and the first (by task index, for
  /// determinism) is rethrown after the batch drains.
  void RunIndexed(std::size_t count, const std::function<void(std::size_t)>& task);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* task_ = nullptr;
  std::size_t count_ = 0;
  std::size_t next_ = 0;
  std::size_t completed_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace cellfi
