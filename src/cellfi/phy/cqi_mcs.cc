#include "cellfi/phy/cqi_mcs.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace cellfi {

namespace {
// 36.213 Table 7.2.3-1 with SINR switching thresholds from standard
// link-level AWGN curves (10 % BLER).
constexpr CqiEntry kTable[kMaxCqi] = {
    {1, Modulation::kQpsk, 78.0 / 1024.0, 0.1523, -6.7},
    {2, Modulation::kQpsk, 120.0 / 1024.0, 0.2344, -4.7},
    {3, Modulation::kQpsk, 193.0 / 1024.0, 0.3770, -2.3},
    {4, Modulation::kQpsk, 308.0 / 1024.0, 0.6016, 0.2},
    {5, Modulation::kQpsk, 449.0 / 1024.0, 0.8770, 2.4},
    {6, Modulation::kQpsk, 602.0 / 1024.0, 1.1758, 4.3},
    {7, Modulation::kQam16, 378.0 / 1024.0, 1.4766, 5.9},
    {8, Modulation::kQam16, 490.0 / 1024.0, 1.9141, 8.1},
    {9, Modulation::kQam16, 616.0 / 1024.0, 2.4063, 10.3},
    {10, Modulation::kQam64, 466.0 / 1024.0, 2.7305, 11.7},
    {11, Modulation::kQam64, 567.0 / 1024.0, 3.3223, 14.1},
    {12, Modulation::kQam64, 666.0 / 1024.0, 3.9023, 16.3},
    {13, Modulation::kQam64, 772.0 / 1024.0, 4.5234, 18.7},
    {14, Modulation::kQam64, 873.0 / 1024.0, 5.1152, 21.0},
    {15, Modulation::kQam64, 948.0 / 1024.0, 5.5547, 22.7},
};
}  // namespace

const CqiEntry& CqiTable(int cqi) {
  assert(cqi >= kMinCqi && cqi <= kMaxCqi);
  return kTable[cqi - 1];
}

int SinrToCqi(double sinr_db) {
  int best = 0;
  for (const CqiEntry& e : kTable) {
    if (sinr_db >= e.sinr_threshold_db) best = e.cqi;
  }
  return best;
}

double CqiEfficiency(int cqi) {
  return cqi >= kMinCqi && cqi <= kMaxCqi ? CqiTable(cqi).efficiency : 0.0;
}

double CqiCodeRate(int cqi) {
  return cqi >= kMinCqi && cqi <= kMaxCqi ? CqiTable(cqi).code_rate : 0.0;
}

double BlerAt(int cqi, double sinr_db) {
  if (cqi < kMinCqi) return 1.0;
  const double thr = CqiTable(std::min(cqi, kMaxCqi)).sinr_threshold_db;
  // Logistic: BLER(thr) = 0.10, slope ~2 per dB.
  const double k = 2.0;
  const double x = k * (sinr_db - thr) + std::log(9.0);
  return 1.0 / (1.0 + std::exp(x));
}

int TransportBlockBits(int cqi, int num_rbs, int data_re_per_rb) {
  if (cqi < kMinCqi || num_rbs <= 0) return 0;
  const double bits = CqiEfficiency(std::min(cqi, kMaxCqi)) *
                      static_cast<double>(num_rbs) *
                      static_cast<double>(data_re_per_rb);
  return static_cast<int>(bits);
}

int QuantizeCqi(int cqi) { return std::clamp(cqi, 0, kMaxCqi); }

}  // namespace cellfi
