#include "cellfi/phy/resource_grid.h"

#include <cassert>

#include "cellfi/common/units.h"

namespace cellfi {

int NumResourceBlocks(LteBandwidth bw) {
  switch (bw) {
    case LteBandwidth::k1_4MHz: return 6;
    case LteBandwidth::k3MHz: return 15;
    case LteBandwidth::k5MHz: return 25;
    case LteBandwidth::k10MHz: return 50;
    case LteBandwidth::k15MHz: return 75;
    case LteBandwidth::k20MHz: return 100;
  }
  return 0;
}

int ResourceBlockGroupSize(LteBandwidth bw) {
  switch (bw) {
    case LteBandwidth::k1_4MHz: return 1;
    case LteBandwidth::k3MHz: return 2;
    case LteBandwidth::k5MHz: return 2;
    case LteBandwidth::k10MHz: return 3;
    case LteBandwidth::k15MHz: return 4;
    case LteBandwidth::k20MHz: return 4;
  }
  return 1;
}

double OccupiedBandwidthHz(LteBandwidth bw) {
  return NumResourceBlocks(bw) * kRbBandwidthHz;
}

double ChannelBandwidthHz(LteBandwidth bw) {
  switch (bw) {
    case LteBandwidth::k1_4MHz: return 1.4 * units::MHz;
    case LteBandwidth::k3MHz: return 3.0 * units::MHz;
    case LteBandwidth::k5MHz: return 5.0 * units::MHz;
    case LteBandwidth::k10MHz: return 10.0 * units::MHz;
    case LteBandwidth::k15MHz: return 15.0 * units::MHz;
    case LteBandwidth::k20MHz: return 20.0 * units::MHz;
  }
  return 0.0;
}

ResourceGrid::ResourceGrid(LteBandwidth bw, int pdcch_symbols)
    : bw_(bw),
      num_rbs_(NumResourceBlocks(bw)),
      rbg_size_(ResourceBlockGroupSize(bw)),
      pdcch_symbols_(pdcch_symbols) {
  assert(pdcch_symbols >= 1 && pdcch_symbols <= 3);
  num_subchannels_ = (num_rbs_ + rbg_size_ - 1) / rbg_size_;
}

int ResourceGrid::SubchannelRbCount(int s) const {
  assert(s >= 0 && s < num_subchannels_);
  const int first = s * rbg_size_;
  const int remaining = num_rbs_ - first;
  return remaining < rbg_size_ ? remaining : rbg_size_;
}

int ResourceGrid::DataResourceElementsPerRb() const {
  // Per RB-pair per subframe: 12 subcarriers * 14 symbols, minus the PDCCH
  // region (12 * pdcch_symbols) and 8 cell-specific reference symbols
  // outside the control region (2 antenna-port CRS pattern, simplified).
  const int total = kSubcarriersPerRb * kSymbolsPerSubframe;
  const int control = kSubcarriersPerRb * pdcch_symbols_;
  const int crs = 8;
  return total - control - crs;
}

double ResourceGrid::ControlPowerFraction() const {
  // CRS REs falling inside the victim's data symbols, as a fraction of the
  // data-region REs: 8 CRS per RB-pair over 12 x (14 - pdcch) REs.
  const int crs_in_data_region = 8;
  const int data_region = kSubcarriersPerRb * (kSymbolsPerSubframe - pdcch_symbols_);
  return static_cast<double>(crs_in_data_region) / static_cast<double>(data_region);
}

namespace {
// 3GPP 36.211 Table 4.2-2 (D = downlink, S = special, U = uplink).
constexpr const char* kTddPatterns[7] = {
    "DSUUUDSUUU",  // 0
    "DSUUDDSUUD",  // 1
    "DSUDDDSUDD",  // 2
    "DSUUUDDDDD",  // 3
    "DSUUDDDDDD",  // 4
    "DSUDDDDDDD",  // 5
    "DSUUUDSUUD",  // 6
};
}  // namespace

TddConfig::TddConfig(int config_index) : index_(config_index) {
  assert(config_index >= 0 && config_index <= 6);
  pattern_.resize(10);
  for (int i = 0; i < 10; ++i) {
    switch (kTddPatterns[config_index][i]) {
      case 'D': pattern_[i] = SubframeType::kDownlink; break;
      case 'U': pattern_[i] = SubframeType::kUplink; break;
      default: pattern_[i] = SubframeType::kSpecial; break;
    }
  }
}

TddConfig TddConfig::FddDownlink() {
  TddConfig c;
  c.index_ = -1;
  c.pattern_.assign(10, SubframeType::kDownlink);
  return c;
}

SubframeType TddConfig::TypeOf(int subframe_in_frame) const {
  assert(subframe_in_frame >= 0 && subframe_in_frame < 10);
  return pattern_[subframe_in_frame];
}

SubframeType TddConfig::TypeAt(SimTime now) const {
  const auto subframe = static_cast<int>((now / kSubframeDuration) % 10);
  return TypeOf(subframe);
}

int TddConfig::downlink_subframes_per_frame() const {
  int n = 0;
  for (auto t : pattern_)
    if (t == SubframeType::kDownlink) ++n;
  return n;
}

int TddConfig::uplink_subframes_per_frame() const {
  int n = 0;
  for (auto t : pattern_)
    if (t == SubframeType::kUplink) ++n;
  return n;
}

}  // namespace cellfi
