#include "cellfi/phy/prach.h"

#include <cassert>
#include <cmath>
#include <utility>

#include "cellfi/common/simd.h"
#include "cellfi/common/units.h"

namespace cellfi {

std::vector<Complex> ZadoffChu(int root, int length) {
  assert(length >= 3);
  assert(root >= 1 && root < length);
  std::vector<Complex> seq(static_cast<std::size_t>(length));
  for (int n = 0; n < length; ++n) {
    // n(n+1) grows to ~7e5 for N_ZC=839; reduce mod 2N to keep the phase
    // argument small and exact.
    const long long q = (static_cast<long long>(n) * (n + 1)) % (2LL * length);
    const double ang = -M_PI * static_cast<double>(root) * static_cast<double>(q) /
                       static_cast<double>(length);
    seq[static_cast<std::size_t>(n)] = Complex(std::cos(ang), std::sin(ang));
  }
  return seq;
}

int NumPreambles(const PrachConfig& config) {
  return config.sequence_length / config.cyclic_shift_step;
}

std::vector<Complex> GeneratePreamble(const PrachConfig& config, int preamble_index) {
  assert(preamble_index >= 0 && preamble_index < NumPreambles(config));
  const auto root = ZadoffChu(config.root, config.sequence_length);
  const int n = config.sequence_length;
  const int shift = preamble_index * config.cyclic_shift_step;
  // Delay convention: preamble v is the root sequence delayed by v * N_CS
  // samples, so the detector's correlation peak lands at lag
  // v * N_CS + timing_offset. (36.211 writes the shift as an advance; the
  // two are equivalent up to the correlation direction.)
  std::vector<Complex> out(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    out[static_cast<std::size_t>(i)] =
        root[static_cast<std::size_t>(((i - shift) % n + n) % n)];
  }
  return out;
}

namespace {

// dst = rx_spectrum * conj(root_spectrum), through the SIMD kernel layer.
// Shared by PrachDetector and PrachDetectorBank so the two produce
// bit-identical correlations (the bank-vs-detector identity gate in
// tests/simd_kernels_test.cc rests on this).
void CorrelationSpectrum(std::vector<Complex>& dst,
                         const std::vector<Complex>& rx_freq,
                         const std::vector<Complex>& root_freq) {
  assert(rx_freq.size() == root_freq.size());
  dst.resize(rx_freq.size());
  simd::ConjMulInterleaved(reinterpret_cast<double*>(dst.data()),
                           reinterpret_cast<const double*>(rx_freq.data()),
                           reinterpret_cast<const double*>(root_freq.data()),
                           rx_freq.size());
}

// Single-peak detection metric over one correlation (Detect).
PrachDetection StrongestPeak(const PrachConfig& config,
                             const std::vector<Complex>& corr) {
  double total_power = 0.0;
  double peak_power = 0.0;
  std::size_t peak_lag = 0;
  for (std::size_t i = 0; i < corr.size(); ++i) {
    const double p = std::norm(corr[i]);
    total_power += p;
    if (p > peak_power) {
      peak_power = p;
      peak_lag = i;
    }
  }
  const double avg = total_power / static_cast<double>(corr.size());

  PrachDetection det;
  det.peak_to_average = avg > 0.0 ? peak_power / avg : 0.0;
  det.detected = det.peak_to_average >= config.detection_threshold;
  det.shift_estimate = static_cast<int>(peak_lag);
  det.preamble_estimate = det.shift_estimate / config.cyclic_shift_step;
  return det;
}

// Iterative peak peeling over one correlation (DetectAll): every peak
// above threshold, re-estimating the noise floor after each peel so a
// strong preamble does not mask a weak one. `power` is caller scratch.
std::vector<PrachDetection> PeelPeaks(const PrachConfig& config,
                                      const std::vector<Complex>& corr,
                                      std::vector<double>& power) {
  power.resize(corr.size());
  double total = 0.0;
  for (std::size_t i = 0; i < corr.size(); ++i) {
    power[i] = std::norm(corr[i]);
    total += power[i];
  }

  std::vector<PrachDetection> found;
  const int guard = config.cyclic_shift_step;
  double remaining = total;
  std::size_t remaining_lags = power.size();
  for (int iter = 0; iter < NumPreambles(config); ++iter) {
    const double avg =
        remaining / static_cast<double>(std::max<std::size_t>(remaining_lags, 1));
    std::size_t peak_lag = 0;
    double peak_power = 0.0;
    for (std::size_t i = 0; i < power.size(); ++i) {
      if (power[i] > peak_power) {
        peak_power = power[i];
        peak_lag = i;
      }
    }
    if (avg <= 0.0 || peak_power / avg < config.detection_threshold) break;

    PrachDetection det;
    det.detected = true;
    det.peak_to_average = peak_power / avg;
    det.shift_estimate = static_cast<int>(peak_lag);
    det.preamble_estimate = det.shift_estimate / config.cyclic_shift_step;
    found.push_back(det);

    // Erase the whole cyclic-shift zone around the peak.
    for (int off = -guard + 1; off < guard; ++off) {
      const std::size_t idx = static_cast<std::size_t>(
          ((static_cast<int>(peak_lag) + off) % config.sequence_length +
           config.sequence_length) %
          config.sequence_length);
      if (power[idx] > 0.0) {
        remaining -= power[idx];
        power[idx] = 0.0;
        --remaining_lags;
      }
    }
  }
  return found;
}

}  // namespace

PrachDetector::PrachDetector(const PrachConfig& config) : config_(config) {
  root_freq_ = Dft(ZadoffChu(config.root, config.sequence_length));
}

PrachDetection PrachDetector::Detect(const std::vector<Complex>& received) {
  assert(static_cast<int>(received.size()) == config_.sequence_length);

  // Correlation 1: one frequency-domain circular correlation against the
  // root sequence covers every cyclic shift at once.
  DftInto(received, freq_scratch_, ws_);
  CorrelationSpectrum(freq_scratch_, freq_scratch_, root_freq_);
  IdftInto(freq_scratch_, corr_scratch_, ws_);

  // Correlation 2 (the "check"): compare the strongest lag's power against
  // the average correlation power.
  return StrongestPeak(config_, corr_scratch_);
}

std::vector<PrachDetection> PrachDetector::DetectAll(
    const std::vector<Complex>& received) {
  assert(static_cast<int>(received.size()) == config_.sequence_length);
  DftInto(received, freq_scratch_, ws_);
  CorrelationSpectrum(freq_scratch_, freq_scratch_, root_freq_);
  IdftInto(freq_scratch_, corr_scratch_, ws_);
  return PeelPeaks(config_, corr_scratch_, power_scratch_);
}

PrachDetectorBank::PrachDetectorBank(const PrachConfig& config,
                                     std::vector<int> roots)
    : config_(config), roots_(std::move(roots)) {
  root_freq_.reserve(roots_.size());
  for (int root : roots_) {
    // Same spectrum construction as PrachDetector's constructor, so the
    // cached spectra — and hence the correlations — match bit for bit.
    root_freq_.push_back(Dft(ZadoffChu(root, config_.sequence_length)));
  }
}

std::vector<PrachDetectorBank::RootDetections> PrachDetectorBank::DetectAll(
    const std::vector<Complex>& received) {
  assert(static_cast<int>(received.size()) == config_.sequence_length);
  // The single forward DFT all roots share; every transform below reuses
  // the same thread-cached Bluestein plan (common/fft.cc PlanFor) and this
  // bank's workspace.
  DftInto(received, rx_freq_, ws_);
  std::vector<RootDetections> out;
  out.reserve(roots_.size());
  for (std::size_t k = 0; k < roots_.size(); ++k) {
    CorrelationSpectrum(prod_scratch_, rx_freq_, root_freq_[k]);
    IdftInto(prod_scratch_, corr_scratch_, ws_);
    out.push_back(RootDetections{
        roots_[k], PeelPeaks(config_, corr_scratch_, power_scratch_)});
  }
  return out;
}

std::vector<Complex> PassThroughAwgn(const std::vector<Complex>& preamble,
                                     int timing_offset, double snr_db, Rng& rng) {
  const int n = static_cast<int>(preamble.size());
  assert(timing_offset >= 0);
  // Per-sample SNR: preamble samples have unit magnitude; noise variance
  // sigma^2 = 1 / snr_linear split across I and Q.
  const double snr_linear = DbToLinear(snr_db);
  const double sigma = std::sqrt(1.0 / (2.0 * snr_linear));
  std::vector<Complex> out(preamble.size());
  for (int i = 0; i < n; ++i) {
    const Complex s = preamble[static_cast<std::size_t>(((i - timing_offset) % n + n) % n)];
    out[static_cast<std::size_t>(i)] =
        s + Complex(sigma * rng.Normal(), sigma * rng.Normal());
  }
  return out;
}

std::vector<Complex> NoiseOnly(int length, Rng& rng) {
  const double sigma = std::sqrt(0.5);
  std::vector<Complex> out(static_cast<std::size_t>(length));
  for (auto& v : out) v = Complex(sigma * rng.Normal(), sigma * rng.Normal());
  return out;
}

}  // namespace cellfi
