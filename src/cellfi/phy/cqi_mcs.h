// CQI / MCS tables and link adaptation.
//
// Implements the 3GPP 36.213 Table 7.2.3-1 CQI table (modulation, code rate,
// spectral efficiency), an SINR -> CQI mapping targeting 10 % BLER, a
// logistic BLER model around each CQI's switching threshold, and transport
// block sizing from spectral efficiency and the resource-grid RE budget.
#pragma once

#include <cstdint>

namespace cellfi {

enum class Modulation : std::uint8_t { kQpsk = 2, kQam16 = 4, kQam64 = 6 };

/// One row of the CQI table.
struct CqiEntry {
  int cqi;                  // 1..15
  Modulation modulation;    // bits per symbol = static_cast<int>(modulation)
  double code_rate;         // channel code rate in (0, 1)
  double efficiency;        // information bits per resource element
  double sinr_threshold_db; // minimum SINR for ~10 % BLER
};

inline constexpr int kMinCqi = 1;
inline constexpr int kMaxCqi = 15;

/// Table lookup; `cqi` must be in [1, 15].
const CqiEntry& CqiTable(int cqi);

/// Highest CQI whose 10 % BLER threshold is <= `sinr_db`; 0 = out of range
/// (link cannot be served).
int SinrToCqi(double sinr_db);

/// Spectral efficiency (bits per RE) for `cqi`; 0 for cqi == 0.
double CqiEfficiency(int cqi);

/// Channel code rate for `cqi`; 0 for cqi == 0.
double CqiCodeRate(int cqi);

/// Block error rate of a transport block sent with `cqi` at actual
/// `sinr_db`: logistic in dB, equal to 10 % exactly at the CQI threshold.
double BlerAt(int cqi, double sinr_db);

/// Transport block size in bits for `cqi` over `num_rbs` RBs with
/// `data_re_per_rb` usable resource elements per RB.
int TransportBlockBits(int cqi, int num_rbs, int data_re_per_rb);

/// 4-bit wideband CQI quantization used in reports.
int QuantizeCqi(int cqi);

}  // namespace cellfi
