// Hybrid ARQ with chase combining.
//
// Each transport block gets up to `max_transmissions` attempts; retransmitted
// copies are soft-combined, so the effective SINR after k transmissions is
// the linear sum of the per-attempt SINRs. Fig. 1's observation that ~25 %
// of packets beyond 500 m use HARQ falls out of the BLER model here.
#pragma once

#include <cstdint>
#include <vector>

#include "cellfi/common/rng.h"

namespace cellfi {

/// Outcome of delivering one transport block through HARQ.
struct HarqOutcome {
  bool delivered = false;
  int transmissions = 0;        // attempts used (>= 1 when attempted)
  double effective_sinr_db = 0; // combined SINR of the final attempt
};

/// One HARQ process (per UE per direction); stateless between blocks.
class HarqProcess {
 public:
  explicit HarqProcess(int max_transmissions = 4);

  /// Simulate delivery of a block sent with `cqi` where attempt `k`
  /// experiences `sinr_per_attempt_db[k]` (missing entries reuse the last).
  /// Each attempt's error is drawn from the BLER model at the chase-combined
  /// SINR.
  HarqOutcome Deliver(int cqi, const std::vector<double>& sinr_per_attempt_db,
                      Rng& rng) const;

  /// Convenience: constant per-attempt SINR.
  HarqOutcome Deliver(int cqi, double sinr_db, Rng& rng) const;

  int max_transmissions() const { return max_transmissions_; }

 private:
  int max_transmissions_;
};

/// Aggregate HARQ statistics (retransmission fraction, residual loss).
struct HarqStats {
  std::int64_t blocks = 0;
  std::int64_t blocks_retransmitted = 0;  // needed >= 2 attempts
  std::int64_t blocks_lost = 0;           // exhausted attempts
  std::int64_t total_transmissions = 0;

  void Record(const HarqOutcome& o);
  double RetransmissionFraction() const;
  double ResidualLossRate() const;
};

}  // namespace cellfi
