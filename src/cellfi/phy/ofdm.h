// Signal-level OFDM/QAM chain.
//
// Grounds the table-driven PHY abstractions in actual waveforms: Gray-coded
// QPSK/16-QAM/64-QAM constellations (unit average energy), an OFDM
// modulator/demodulator with cyclic prefix, an AWGN channel, one-tap
// equalization, and closed-form BER references. The test suite uses this
// chain to cross-validate the CQI table's SINR thresholds (a threshold is
// only credible if the raw symbol stream at that SINR is correctable by the
// row's code rate) and the PRACH detector shares its FFT machinery.
#pragma once

#include <cstdint>
#include <vector>

#include "cellfi/common/fft.h"
#include "cellfi/common/rng.h"
#include "cellfi/phy/cqi_mcs.h"

namespace cellfi {

/// Bits per symbol for a modulation order.
int BitsPerSymbol(Modulation mod);

/// Gray-coded constellation mapping; output has unit average energy.
/// `bits.size()` must be a multiple of BitsPerSymbol(mod).
std::vector<Complex> ModulateQam(const std::vector<std::uint8_t>& bits, Modulation mod);

/// Hard-decision demapping (nearest constellation point).
std::vector<std::uint8_t> DemodulateQamHard(const std::vector<Complex>& symbols,
                                            Modulation mod);

/// Theoretical bit error rate of Gray-coded square QAM over AWGN at the
/// given per-symbol SNR (standard Q-function approximations).
double TheoreticalBerQam(Modulation mod, double snr_db);

/// Complex AWGN at per-symbol SNR `snr_db` (signal assumed unit energy).
std::vector<Complex> AddAwgn(const std::vector<Complex>& symbols, double snr_db, Rng& rng);

/// OFDM parameters: `fft_size` total bins, `used_subcarriers` active
/// (centred, DC skipped is not modelled), `cp_len` cyclic-prefix samples.
struct OfdmParams {
  int fft_size = 512;
  int used_subcarriers = 300;  // 25 RB x 12, LTE 5 MHz
  int cp_len = 36;
};

/// One OFDM symbol: map `used_subcarriers` QAM symbols to bins, IFFT,
/// prepend the cyclic prefix. Output length = fft_size + cp_len.
std::vector<Complex> OfdmModulate(const OfdmParams& params,
                                  const std::vector<Complex>& subcarriers);

/// Allocation-free variant: writes the symbol into `time_out` (resized to
/// fft_size + cp_len) and reuses `bins_scratch` across calls — the hot
/// path for symbol-rate modulation.
void OfdmModulate(const OfdmParams& params, const std::vector<Complex>& subcarriers,
                  std::vector<Complex>& time_out, std::vector<Complex>& bins_scratch);

/// As above, additionally reusing `ws` for the FFT's split-complex scratch
/// instead of the thread-local workspace (callers that own a DftWorkspace
/// anyway, e.g. a modem also running PRACH detection).
void OfdmModulate(const OfdmParams& params, const std::vector<Complex>& subcarriers,
                  std::vector<Complex>& time_out, std::vector<Complex>& bins_scratch,
                  DftWorkspace& ws);

/// Inverse of OfdmModulate: strip CP, FFT, extract the used bins.
std::vector<Complex> OfdmDemodulate(const OfdmParams& params,
                                    const std::vector<Complex>& time_samples);

/// Allocation-free variant of OfdmDemodulate; `subcarriers_out` is resized
/// to used_subcarriers and `bins_scratch` is reused across calls.
void OfdmDemodulate(const OfdmParams& params, const std::vector<Complex>& time_samples,
                    std::vector<Complex>& subcarriers_out,
                    std::vector<Complex>& bins_scratch);

/// As above with an explicit FFT workspace (see the OfdmModulate overload).
void OfdmDemodulate(const OfdmParams& params, const std::vector<Complex>& time_samples,
                    std::vector<Complex>& subcarriers_out,
                    std::vector<Complex>& bins_scratch, DftWorkspace& ws);

/// Convolve with a (short) channel impulse response, linearly.
std::vector<Complex> ApplyChannel(const std::vector<Complex>& samples,
                                  const std::vector<Complex>& taps);

/// Per-subcarrier channel frequency response of `taps` (for one-tap ZF
/// equalization of the used bins).
std::vector<Complex> ChannelFrequencyResponse(const OfdmParams& params,
                                              const std::vector<Complex>& taps);

}  // namespace cellfi
