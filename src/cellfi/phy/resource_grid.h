// LTE resource-grid geometry: resource blocks, resource-block groups,
// CellFi subchannels, subframe symbol budget and TDD frame patterns.
//
// A CellFi "subchannel" (paper Section 5) is the minimal schedulable set of
// resource blocks for which channel quality can be reported: one RBG. That
// yields 13 subchannels on a 5 MHz carrier and 25 on 20 MHz, matching the
// paper.
#pragma once

#include <cstdint>
#include <vector>

#include "cellfi/common/time.h"

namespace cellfi {

/// LTE channel bandwidth options.
enum class LteBandwidth { k1_4MHz, k3MHz, k5MHz, k10MHz, k15MHz, k20MHz };

/// Number of resource blocks for a bandwidth (3GPP 36.101 Table 5.6-1).
int NumResourceBlocks(LteBandwidth bw);

/// Resource-block-group size P (3GPP 36.213 Table 7.1.6.1-1).
int ResourceBlockGroupSize(LteBandwidth bw);

/// Occupied bandwidth in Hz (RBs * 180 kHz).
double OccupiedBandwidthHz(LteBandwidth bw);

/// Nominal channel bandwidth in Hz.
double ChannelBandwidthHz(LteBandwidth bw);

/// Grid constants.
inline constexpr int kSubcarriersPerRb = 12;
inline constexpr int kSymbolsPerSubframe = 14;   // normal CP, 2 slots
inline constexpr double kRbBandwidthHz = 180e3;
inline constexpr SimTime kSubframeDuration = 1 * kMillisecond;
inline constexpr SimTime kFrameDuration = 10 * kMillisecond;

/// Geometry of one carrier: subchannel <-> RB mapping and symbol budget.
class ResourceGrid {
 public:
  explicit ResourceGrid(LteBandwidth bw, int pdcch_symbols = 3);

  LteBandwidth bandwidth() const { return bw_; }
  int num_rbs() const { return num_rbs_; }
  int rbg_size() const { return rbg_size_; }

  /// Number of CellFi subchannels (= RBGs; last one may be smaller).
  int num_subchannels() const { return num_subchannels_; }

  /// RBs covered by subchannel `s` (the last group may be truncated).
  int SubchannelRbCount(int s) const;
  int SubchannelFirstRb(int s) const { return s * rbg_size_; }

  /// Subchannel containing resource block `rb`.
  int SubchannelOfRb(int rb) const { return rb / rbg_size_; }

  /// PDCCH control region length in OFDM symbols (1-3).
  int pdcch_symbols() const { return pdcch_symbols_; }

  /// Data resource elements per RB per subframe, after removing the PDCCH
  /// region and cell-specific reference symbols.
  int DataResourceElementsPerRb() const;

  /// All resource elements per RB per subframe.
  int TotalResourceElementsPerRb() const { return kSubcarriersPerRb * kSymbolsPerSubframe; }

  /// Interference PSD fraction a cell with NO data imposes on a
  /// neighbouring cell's DATA region — the "signalling interference" of
  /// Fig. 7. Subframes are time-aligned across cells (GPS), so the idle
  /// cell's PDCCH region overlaps only the victim's PDCCH region; inside
  /// the victim's data symbols the idle cell radiates only its
  /// cell-specific reference symbols (~6 % of REs).
  double ControlPowerFraction() const;

 private:
  LteBandwidth bw_;
  int num_rbs_;
  int rbg_size_;
  int num_subchannels_;
  int pdcch_symbols_;
};

/// TDD uplink-downlink configuration (3GPP 36.211 Table 4.2-2).
enum class SubframeType : std::uint8_t { kDownlink, kUplink, kSpecial };

/// Frame pattern for a TDD configuration index (0-6). Configuration 4
/// (used by the paper: 7 DL + 2 UL + 1 special) is the CellFi default.
class TddConfig {
 public:
  explicit TddConfig(int config_index);

  /// Pattern over the 10 subframes of a frame.
  SubframeType TypeOf(int subframe_in_frame) const;
  SubframeType TypeAt(SimTime now) const;

  int downlink_subframes_per_frame() const;
  int uplink_subframes_per_frame() const;
  int config_index() const { return index_; }

  /// FDD carriers are modelled as "all downlink" on the DL carrier.
  static TddConfig FddDownlink();

 private:
  TddConfig() = default;
  int index_ = -1;
  std::vector<SubframeType> pattern_;
};

}  // namespace cellfi
