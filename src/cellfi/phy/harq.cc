#include "cellfi/phy/harq.h"

#include <cassert>

#include "cellfi/common/units.h"
#include "cellfi/phy/cqi_mcs.h"

namespace cellfi {

HarqProcess::HarqProcess(int max_transmissions)
    : max_transmissions_(max_transmissions) {
  assert(max_transmissions >= 1);
}

HarqOutcome HarqProcess::Deliver(int cqi, const std::vector<double>& sinr_per_attempt_db,
                                 Rng& rng) const {
  HarqOutcome out;
  if (cqi < kMinCqi || sinr_per_attempt_db.empty()) return out;

  double combined_linear = 0.0;
  for (int attempt = 0; attempt < max_transmissions_; ++attempt) {
    const std::size_t idx =
        std::min(static_cast<std::size_t>(attempt), sinr_per_attempt_db.size() - 1);
    combined_linear += DbToLinear(sinr_per_attempt_db[idx]);
    out.transmissions = attempt + 1;
    out.effective_sinr_db = LinearToDb(combined_linear);
    if (!rng.Bernoulli(BlerAt(cqi, out.effective_sinr_db))) {
      out.delivered = true;
      return out;
    }
  }
  return out;
}

HarqOutcome HarqProcess::Deliver(int cqi, double sinr_db, Rng& rng) const {
  return Deliver(cqi, std::vector<double>{sinr_db}, rng);
}

void HarqStats::Record(const HarqOutcome& o) {
  ++blocks;
  total_transmissions += o.transmissions;
  if (o.transmissions > 1) ++blocks_retransmitted;
  if (!o.delivered) ++blocks_lost;
}

double HarqStats::RetransmissionFraction() const {
  return blocks ? static_cast<double>(blocks_retransmitted) / static_cast<double>(blocks)
                : 0.0;
}

double HarqStats::ResidualLossRate() const {
  return blocks ? static_cast<double>(blocks_lost) / static_cast<double>(blocks) : 0.0;
}

}  // namespace cellfi
