#include "cellfi/phy/ofdm.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace cellfi {

int BitsPerSymbol(Modulation mod) { return static_cast<int>(mod); }

namespace {

// Per-axis Gray mappings (levels in units of the step, centred on zero).
int GrayToLevel(unsigned bits, int bits_per_axis) {
  switch (bits_per_axis) {
    case 1:
      return bits ? -1 : 1;
    case 2: {
      // 00 01 11 10  ->  -3 -1 +1 +3
      static constexpr int kMap[4] = {-3, -1, +3, +1};
      return kMap[bits & 0x3];
    }
    case 3: {
      // Gray sequence 000 001 011 010 110 111 101 100 -> -7 .. +7
      static constexpr int kMap[8] = {-7, -5, -1, -3, +7, +5, +1, +3};
      return kMap[bits & 0x7];
    }
    default:
      assert(false);
      return 0;
  }
}

unsigned LevelToGray(double level, int bits_per_axis) {
  // Quantize to the nearest valid level, then invert the map.
  const int max_level = (1 << bits_per_axis) - 1;  // 1, 3, 7
  int q = static_cast<int>(std::lround((level + max_level) / 2.0));
  q = std::clamp(q, 0, max_level);
  const int quantized = 2 * q - max_level;
  for (unsigned bits = 0; bits <= static_cast<unsigned>(max_level); ++bits) {
    if (GrayToLevel(bits, bits_per_axis) == quantized) return bits;
  }
  return 0;
}

double AxisScale(Modulation mod) {
  switch (mod) {
    case Modulation::kQpsk: return std::sqrt(2.0);
    case Modulation::kQam16: return std::sqrt(10.0);
    case Modulation::kQam64: return std::sqrt(42.0);
  }
  return 1.0;
}

}  // namespace

std::vector<Complex> ModulateQam(const std::vector<std::uint8_t>& bits, Modulation mod) {
  const int k = BitsPerSymbol(mod);
  const int per_axis = k / 2;
  assert(bits.size() % static_cast<std::size_t>(k) == 0);
  const double scale = AxisScale(mod);
  std::vector<Complex> out;
  out.reserve(bits.size() / static_cast<std::size_t>(k));
  for (std::size_t i = 0; i < bits.size(); i += static_cast<std::size_t>(k)) {
    unsigned bi = 0, bq = 0;
    for (int b = 0; b < per_axis; ++b) {
      bi = (bi << 1) | bits[i + static_cast<std::size_t>(b)];
      bq = (bq << 1) | bits[i + static_cast<std::size_t>(per_axis + b)];
    }
    out.emplace_back(GrayToLevel(bi, per_axis) / scale, GrayToLevel(bq, per_axis) / scale);
  }
  return out;
}

std::vector<std::uint8_t> DemodulateQamHard(const std::vector<Complex>& symbols,
                                            Modulation mod) {
  const int k = BitsPerSymbol(mod);
  const int per_axis = k / 2;
  const double scale = AxisScale(mod);
  std::vector<std::uint8_t> bits;
  bits.reserve(symbols.size() * static_cast<std::size_t>(k));
  for (const Complex& s : symbols) {
    const unsigned bi = LevelToGray(s.real() * scale, per_axis);
    const unsigned bq = LevelToGray(s.imag() * scale, per_axis);
    for (int b = per_axis - 1; b >= 0; --b) bits.push_back((bi >> b) & 1);
    for (int b = per_axis - 1; b >= 0; --b) bits.push_back((bq >> b) & 1);
  }
  return bits;
}

double TheoreticalBerQam(Modulation mod, double snr_db) {
  const double snr = std::pow(10.0, snr_db / 10.0);
  const int k = BitsPerSymbol(mod);
  const double m = std::pow(2.0, k);
  const auto q = [](double x) { return 0.5 * std::erfc(x / std::sqrt(2.0)); };
  // Gray-coded square M-QAM over AWGN (standard approximation).
  return (4.0 / k) * (1.0 - 1.0 / std::sqrt(m)) * q(std::sqrt(3.0 * snr / (m - 1.0)));
}

std::vector<Complex> AddAwgn(const std::vector<Complex>& symbols, double snr_db, Rng& rng) {
  const double sigma = std::sqrt(0.5 / std::pow(10.0, snr_db / 10.0));
  std::vector<Complex> out;
  out.reserve(symbols.size());
  for (const Complex& s : symbols) {
    out.emplace_back(s.real() + sigma * rng.Normal(), s.imag() + sigma * rng.Normal());
  }
  return out;
}

void OfdmModulate(const OfdmParams& params, const std::vector<Complex>& subcarriers,
                  std::vector<Complex>& time_out, std::vector<Complex>& bins_scratch,
                  DftWorkspace& ws) {
  assert(static_cast<int>(subcarriers.size()) == params.used_subcarriers);
  assert(params.used_subcarriers < params.fft_size);
  assert(IsPowerOfTwo(static_cast<std::size_t>(params.fft_size)));
  bins_scratch.assign(static_cast<std::size_t>(params.fft_size), Complex(0, 0));
  for (int i = 0; i < params.used_subcarriers; ++i) {
    bins_scratch[static_cast<std::size_t>(i + 1)] = subcarriers[static_cast<std::size_t>(i)];
  }
  Ifft(bins_scratch.data(), bins_scratch.size(), ws);
  time_out.resize(static_cast<std::size_t>(params.fft_size + params.cp_len));
  std::size_t w = 0;
  for (int i = params.fft_size - params.cp_len; i < params.fft_size; ++i) {
    time_out[w++] = bins_scratch[static_cast<std::size_t>(i)];
  }
  for (int i = 0; i < params.fft_size; ++i) {
    time_out[w++] = bins_scratch[static_cast<std::size_t>(i)];
  }
}

void OfdmModulate(const OfdmParams& params, const std::vector<Complex>& subcarriers,
                  std::vector<Complex>& time_out, std::vector<Complex>& bins_scratch) {
  thread_local DftWorkspace ws;
  OfdmModulate(params, subcarriers, time_out, bins_scratch, ws);
}

std::vector<Complex> OfdmModulate(const OfdmParams& params,
                                  const std::vector<Complex>& subcarriers) {
  std::vector<Complex> out;
  std::vector<Complex> bins;
  OfdmModulate(params, subcarriers, out, bins);
  return out;
}

void OfdmDemodulate(const OfdmParams& params, const std::vector<Complex>& time_samples,
                    std::vector<Complex>& subcarriers_out,
                    std::vector<Complex>& bins_scratch, DftWorkspace& ws) {
  assert(static_cast<int>(time_samples.size()) >= params.fft_size + params.cp_len);
  bins_scratch.assign(time_samples.begin() + params.cp_len,
                      time_samples.begin() + params.cp_len + params.fft_size);
  Fft(bins_scratch.data(), bins_scratch.size(), ws);
  subcarriers_out.assign(bins_scratch.begin() + 1,
                         bins_scratch.begin() + 1 + params.used_subcarriers);
}

void OfdmDemodulate(const OfdmParams& params, const std::vector<Complex>& time_samples,
                    std::vector<Complex>& subcarriers_out,
                    std::vector<Complex>& bins_scratch) {
  thread_local DftWorkspace ws;
  OfdmDemodulate(params, time_samples, subcarriers_out, bins_scratch, ws);
}

std::vector<Complex> OfdmDemodulate(const OfdmParams& params,
                                    const std::vector<Complex>& time_samples) {
  std::vector<Complex> out;
  std::vector<Complex> bins;
  OfdmDemodulate(params, time_samples, out, bins);
  return out;
}

std::vector<Complex> ApplyChannel(const std::vector<Complex>& samples,
                                  const std::vector<Complex>& taps) {
  std::vector<Complex> out(samples.size(), Complex(0, 0));
  for (std::size_t n = 0; n < samples.size(); ++n) {
    for (std::size_t t = 0; t < taps.size() && t <= n; ++t) {
      out[n] += taps[t] * samples[n - t];
    }
  }
  return out;
}

std::vector<Complex> ChannelFrequencyResponse(const OfdmParams& params,
                                              const std::vector<Complex>& taps) {
  std::vector<Complex> bins(static_cast<std::size_t>(params.fft_size), Complex(0, 0));
  for (std::size_t t = 0; t < taps.size(); ++t) bins[t] = taps[t];
  Fft(bins);
  return std::vector<Complex>(bins.begin() + 1,
                              bins.begin() + 1 + params.used_subcarriers);
}

}  // namespace cellfi
