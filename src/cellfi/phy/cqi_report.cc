#include "cellfi/phy/cqi_report.h"

#include <algorithm>

#include "cellfi/phy/cqi_mcs.h"

namespace cellfi {

int DiffToOffset(std::uint8_t diff) {
  switch (diff & 0x3) {
    case 0: return 0;
    case 1: return 1;
    case 2: return 2;
    default: return -1;  // "less than or equal to -1"
  }
}

namespace {
std::uint8_t OffsetToDiff(int offset) {
  if (offset <= -1) return 3;
  if (offset >= 2) return 2;
  return static_cast<std::uint8_t>(offset);
}
}  // namespace

Mode30Report EncodeMode30(const CqiMeasurement& m) {
  Mode30Report r;
  r.wideband = static_cast<std::uint8_t>(QuantizeCqi(m.wideband_cqi));
  r.subband_diff.reserve(m.subband_cqi.size());
  for (int sb : m.subband_cqi) {
    r.subband_diff.push_back(OffsetToDiff(QuantizeCqi(sb) - r.wideband));
  }
  return r;
}

CqiMeasurement DecodeMode30(const Mode30Report& r) {
  CqiMeasurement m;
  m.wideband_cqi = r.wideband;
  m.subband_cqi.reserve(r.subband_diff.size());
  for (std::uint8_t d : r.subband_diff) {
    m.subband_cqi.push_back(std::clamp(r.wideband + DiffToOffset(d), 0, kMaxCqi));
  }
  return m;
}

int PayloadBits(const Mode30Report& r) {
  return 4 + 2 * static_cast<int>(r.subband_diff.size());
}

double SignallingOverheadBps(int payload_bits, double period_ms) {
  return static_cast<double>(payload_bits) / (period_ms * 1e-3);
}

}  // namespace cellfi
