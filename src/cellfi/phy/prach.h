// PRACH preamble generation and blind detection (paper Section 6.3.3).
//
// LTE random-access preambles are cyclic shifts of Zadoff-Chu root
// sequences (3GPP 36.211, N_ZC = 839). CellFi access points overhear
// preambles from clients of *other* cells to count contenders, without
// knowing the preamble index or timing. The detector exploits the CAZAC
// structure: a single circular correlation against the root sequence turns
// any cyclic shift / timing offset into a movable peak, so detection is two
// operations — locate the strongest shift, then test its correlation value
// against a noise-floor threshold.
#pragma once

#include <cstdint>
#include <vector>

#include "cellfi/common/fft.h"
#include "cellfi/common/rng.h"

namespace cellfi {

/// PRACH parameters (format 0 defaults).
struct PrachConfig {
  int sequence_length = 839;  // N_ZC, prime
  int root = 129;             // root index u, coprime with N_ZC
  int cyclic_shift_step = 13; // N_CS: shift granularity -> 64 preambles
  // Peak-to-average power threshold. Noise-only correlations have
  // exponentially distributed lag powers, so the max of N_ZC lags sits near
  // ln(N_ZC) ~ 6.7x the average; 20x keeps the false-alarm rate ~1e-6 while
  // still detecting preambles below -10 dB SNR.
  double detection_threshold = 20.0;
};

/// Generate the Zadoff-Chu root sequence x_u[n] = exp(-j pi u n (n+1) / N).
std::vector<Complex> ZadoffChu(int root, int length);

/// Generate preamble `index` (cyclic shift index) from the configured root.
std::vector<Complex> GeneratePreamble(const PrachConfig& config, int preamble_index);

/// Number of distinct preambles available from one root.
int NumPreambles(const PrachConfig& config);

/// Result of a blind detection pass over one PRACH occasion.
struct PrachDetection {
  bool detected = false;
  int shift_estimate = 0;     // sample offset of the peak (shift + timing)
  int preamble_estimate = 0;  // shift_estimate / N_CS
  double peak_to_average = 0; // detection metric
};

/// Blind PRACH detector: correlates received samples against the root
/// sequence only (no per-preamble correlation, no timing knowledge).
class PrachDetector {
 public:
  explicit PrachDetector(const PrachConfig& config);

  /// Detect a preamble in `received` (must be sequence_length samples).
  PrachDetection Detect(const std::vector<Complex>& received) const;

  /// Detect MULTIPLE superimposed preambles in one occasion: every
  /// correlation peak above the threshold, peaks separated by at least one
  /// cyclic-shift step (each zone belongs to one preamble index). This is
  /// what lets a CellFi AP count several contenders answering the same
  /// PDCCH-order solicitation.
  std::vector<PrachDetection> DetectAll(const std::vector<Complex>& received) const;

  const PrachConfig& config() const { return config_; }

 private:
  PrachConfig config_;
  std::vector<Complex> root_freq_;  // precomputed DFT of the root sequence
  // Reusable scratch so line-rate detection does not allocate per call.
  // Detect/DetectAll are logically const but mutate these buffers: a
  // detector instance must not be shared between threads (each simulation
  // replication owns its own detectors).
  mutable DftWorkspace ws_;
  mutable std::vector<Complex> freq_scratch_;
  mutable std::vector<Complex> corr_scratch_;
  mutable std::vector<double> power_scratch_;
};

/// Test-channel helper: delay a preamble by `timing_offset` samples
/// (cyclic, models propagation delay within the guard period), scale it to
/// `snr_db` against unit-variance complex AWGN, and add the noise.
std::vector<Complex> PassThroughAwgn(const std::vector<Complex>& preamble,
                                     int timing_offset, double snr_db, Rng& rng);

/// Noise-only occasion (for false-alarm measurement).
std::vector<Complex> NoiseOnly(int length, Rng& rng);

}  // namespace cellfi
