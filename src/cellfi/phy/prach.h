// PRACH preamble generation and blind detection (paper Section 6.3.3).
//
// LTE random-access preambles are cyclic shifts of Zadoff-Chu root
// sequences (3GPP 36.211, N_ZC = 839). CellFi access points overhear
// preambles from clients of *other* cells to count contenders, without
// knowing the preamble index or timing. The detector exploits the CAZAC
// structure: a single circular correlation against the root sequence turns
// any cyclic shift / timing offset into a movable peak, so detection is two
// operations — locate the strongest shift, then test its correlation value
// against a noise-floor threshold.
#pragma once

#include <cstdint>
#include <vector>

#include "cellfi/common/fft.h"
#include "cellfi/common/rng.h"

namespace cellfi {

/// PRACH parameters (format 0 defaults).
struct PrachConfig {
  int sequence_length = 839;  // N_ZC, prime
  int root = 129;             // root index u, coprime with N_ZC
  int cyclic_shift_step = 13; // N_CS: shift granularity -> 64 preambles
  // Peak-to-average power threshold. Noise-only correlations have
  // exponentially distributed lag powers, so the max of N_ZC lags sits near
  // ln(N_ZC) ~ 6.7x the average; 20x keeps the false-alarm rate ~1e-6 while
  // still detecting preambles below -10 dB SNR.
  double detection_threshold = 20.0;
};

/// Generate the Zadoff-Chu root sequence x_u[n] = exp(-j pi u n (n+1) / N).
std::vector<Complex> ZadoffChu(int root, int length);

/// Generate preamble `index` (cyclic shift index) from the configured root.
std::vector<Complex> GeneratePreamble(const PrachConfig& config, int preamble_index);

/// Number of distinct preambles available from one root.
int NumPreambles(const PrachConfig& config);

/// Result of a blind detection pass over one PRACH occasion.
struct PrachDetection {
  bool detected = false;
  int shift_estimate = 0;     // sample offset of the peak (shift + timing)
  int preamble_estimate = 0;  // shift_estimate / N_CS
  double peak_to_average = 0; // detection metric
};

/// Blind PRACH detector: correlates received samples against the root
/// sequence only (no per-preamble correlation, no timing knowledge).
///
/// Threading contract: Detect/DetectAll are non-const — they reuse the
/// detector's scratch buffers so line-rate detection does not allocate per
/// call. A detector instance therefore must NOT be shared between threads
/// or called concurrently; each cell (and each simulation replication)
/// owns its own detector. Cross-shard PRACH parallelism (ROADMAP item 1)
/// relies on this per-cell ownership, pinned by
/// tests/phy_prach_test.cc:PerCellDetectorOwnership.
class PrachDetector {
 public:
  explicit PrachDetector(const PrachConfig& config);

  /// Detect a preamble in `received` (must be sequence_length samples).
  PrachDetection Detect(const std::vector<Complex>& received);

  /// Detect MULTIPLE superimposed preambles in one occasion: every
  /// correlation peak above the threshold, peaks separated by at least one
  /// cyclic-shift step (each zone belongs to one preamble index). This is
  /// what lets a CellFi AP count several contenders answering the same
  /// PDCCH-order solicitation.
  std::vector<PrachDetection> DetectAll(const std::vector<Complex>& received);

  const PrachConfig& config() const { return config_; }

 private:
  PrachConfig config_;
  std::vector<Complex> root_freq_;  // precomputed DFT of the root sequence
  // Reusable scratch (see the class threading contract above).
  DftWorkspace ws_;
  std::vector<Complex> freq_scratch_;
  std::vector<Complex> corr_scratch_;
  std::vector<double> power_scratch_;
};

/// Batched blind detection against MANY Zadoff-Chu roots at once — the
/// "one wideband pass, many narrowband consumers" idiom: an AP overhears
/// the preambles of every neighboring cell (each cell plans on its own
/// root), and all K correlations share the single forward DFT of the
/// received window. Per occasion: 1 forward DFT + K cached-spectrum
/// conjugate multiplies (simd::ConjMulInterleaved) + K inverse DFTs, every
/// transform sharing one thread-cached Bluestein plan and this bank's
/// workspace — versus K forward + K inverse DFTs for K independent
/// detectors.
///
/// Detections are bit-identical to running PrachDetector::DetectAll per
/// root over the same window: the multiply kernel and the peak-peeling
/// pass are the very code the per-root detector runs (gated by
/// tests/simd_kernels_test.cc).
///
/// Same threading contract as PrachDetector: one bank per owner, no
/// concurrent calls.
class PrachDetectorBank {
 public:
  /// `config.root` is ignored; each entry of `roots` must be coprime with
  /// config.sequence_length (as for ZadoffChu).
  PrachDetectorBank(const PrachConfig& config, std::vector<int> roots);

  struct RootDetections {
    int root = 0;
    std::vector<PrachDetection> detections;
  };

  /// DetectAll against every configured root (received must be
  /// sequence_length samples). Result order follows the constructor's
  /// `roots` order.
  std::vector<RootDetections> DetectAll(const std::vector<Complex>& received);

  const PrachConfig& config() const { return config_; }
  const std::vector<int>& roots() const { return roots_; }

 private:
  PrachConfig config_;
  std::vector<int> roots_;
  std::vector<std::vector<Complex>> root_freq_;  // cached per-root spectra
  DftWorkspace ws_;
  std::vector<Complex> rx_freq_;
  std::vector<Complex> prod_scratch_;
  std::vector<Complex> corr_scratch_;
  std::vector<double> power_scratch_;
};

/// Test-channel helper: delay a preamble by `timing_offset` samples
/// (cyclic, models propagation delay within the guard period), scale it to
/// `snr_db` against unit-variance complex AWGN, and add the noise.
std::vector<Complex> PassThroughAwgn(const std::vector<Complex>& preamble,
                                     int timing_offset, double snr_db, Rng& rng);

/// Noise-only occasion (for false-alarm measurement).
std::vector<Complex> NoiseOnly(int length, Rng& rng);

}  // namespace cellfi
