// CQI reporting formats (3GPP 36.213 Section 7.2.1).
//
// CellFi configures clients for higher-layer-configured aperiodic mode 3-0
// sub-band reports every 2 ms (paper Sections 5.1, 6.3.4): one 4-bit
// wideband CQI plus a 2-bit differential CQI per sub-band. The encoder and
// decoder here are exact round-trips of that quantization, and
// `PayloadBits` is what the paper's signalling-overhead estimate counts.
#pragma once

#include <cstdint>
#include <vector>

namespace cellfi {

/// An unquantized measurement: wideband CQI plus per-subband CQI.
struct CqiMeasurement {
  int wideband_cqi = 0;
  std::vector<int> subband_cqi;
};

/// Wire form of an aperiodic mode 3-0 report.
struct Mode30Report {
  std::uint8_t wideband = 0;             // 4 bits
  std::vector<std::uint8_t> subband_diff; // 2 bits each
};

/// Differential offsets representable by the 2-bit subband field
/// (36.213 Table 7.2.1-2): {0, +1, +2, <= -1}.
int DiffToOffset(std::uint8_t diff);

/// Encode a measurement into mode 3-0 wire form.
Mode30Report EncodeMode30(const CqiMeasurement& m);

/// Decode back to (quantized) CQI values.
CqiMeasurement DecodeMode30(const Mode30Report& r);

/// Report payload in bits: 4 + 2 * num_subbands.
int PayloadBits(const Mode30Report& r);

/// Uplink overhead in bits/s for a report of `payload_bits` every
/// `period_ms` milliseconds.
double SignallingOverheadBps(int payload_bits, double period_ms);

}  // namespace cellfi
