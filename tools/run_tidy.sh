#!/usr/bin/env bash
# run_tidy.sh — clang-tidy driver with a frozen-debt baseline.
#
# Runs the curated .clang-tidy profile over every first-party translation
# unit in the compile database, normalizes the findings, and diffs them
# against tools/tidy_baseline.txt:
#
#   * findings in the baseline       -> frozen debt, reported as a count only
#   * findings NOT in the baseline   -> new debt, listed, exit 1
#   * baseline entries that no longer fire -> stale, listed as a reminder
#
# Usage:
#   tools/run_tidy.sh [--build-dir DIR] [--update-baseline] [-j N]
#
# The build dir must contain compile_commands.json (the root CMakeLists sets
# CMAKE_EXPORT_COMPILE_COMMANDS=ON, so any configured build dir works).
# If no clang-tidy binary is available the script prints a notice and exits 0
# so `tools/check.sh` stays usable on toolchains without clang — the lint and
# warning gates still run there.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="$ROOT/build"
BASELINE="$ROOT/tools/tidy_baseline.txt"
UPDATE=0
JOBS="$(nproc 2>/dev/null || echo 4)"

while [[ $# -gt 0 ]]; do
  case "$1" in
    --build-dir) BUILD_DIR="$2"; shift 2 ;;
    --update-baseline) UPDATE=1; shift ;;
    -j) JOBS="$2"; shift 2 ;;
    *) echo "run_tidy: unknown argument '$1'" >&2; exit 2 ;;
  esac
done

TIDY="${CLANG_TIDY:-}"
if [[ -z "$TIDY" ]]; then
  for candidate in clang-tidy clang-tidy-{21,20,19,18,17,16,15,14}; do
    if command -v "$candidate" >/dev/null 2>&1; then TIDY="$candidate"; break; fi
  done
fi
if [[ -z "$TIDY" ]]; then
  echo "run_tidy: clang-tidy not found (set CLANG_TIDY or install it) — skipping."
  echo "run_tidy: the lint_test / warning gates still cover this tree."
  exit 0
fi
# Print the resolved binary and version: baseline drift between clang-tidy
# releases is the first thing to rule out when the gate fires in CI only.
echo "run_tidy: using $TIDY ($("$TIDY" --version | sed -n 's/.*version */version /p' | head -n1))"

if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  echo "run_tidy: $BUILD_DIR/compile_commands.json missing — configure first:" >&2
  echo "  cmake --preset default" >&2
  exit 2
fi

# First-party TUs only: sources under src/, bench/, examples/, tests/ —
# system/third-party headers are already excluded by HeaderFilterRegex.
mapfile -t FILES < <(
  python3 - "$BUILD_DIR/compile_commands.json" <<'EOF'
import json, sys
for entry in json.load(open(sys.argv[1])):
    f = entry["file"]
    if any(seg in f for seg in ("/src/", "/bench/", "/examples/", "/tests/")):
        print(f)
EOF
)
if [[ ${#FILES[@]} -eq 0 ]]; then
  echo "run_tidy: no first-party files in compile database" >&2
  exit 2
fi

RAW="$(mktemp)"
trap 'rm -f "$RAW" "$RAW.cur" "$RAW.base"' EXIT

echo "run_tidy: $TIDY over ${#FILES[@]} files (-j $JOBS)"
printf '%s\n' "${FILES[@]}" \
  | xargs -P "$JOBS" -I{} "$TIDY" -p "$BUILD_DIR" --quiet {} 2>/dev/null \
  | grep -E '^[^ ]+:[0-9]+:[0-9]+: (warning|error):' \
  | sed -E "s#^$ROOT/##" \
  | sed -E 's#:[0-9]+:[0-9]+:#:#' \
  | sort -u > "$RAW" || true
# Normalized finding format: "<rel-path>: warning: <msg> [<check>]" — line and
# column numbers are stripped so unrelated edits above a finding don't churn
# the baseline.

grep -vE '^\s*(#|$)' "$BASELINE" | sort -u > "$RAW.base" || true
cp "$RAW" "$RAW.cur"

if [[ "$UPDATE" -eq 1 ]]; then
  {
    echo "# clang-tidy frozen-debt baseline — managed by tools/run_tidy.sh."
    echo "# Regenerate with: tools/run_tidy.sh --update-baseline"
    echo "# Do not add entries by hand: fix the finding or suppress it with"
    echo "# NOLINT(<check>) plus a justification comment."
    cat "$RAW.cur"
  } > "$BASELINE"
  echo "run_tidy: baseline updated with $(wc -l < "$RAW.cur") finding(s)"
  exit 0
fi

NEW="$(comm -13 "$RAW.base" "$RAW.cur")"
STALE="$(comm -23 "$RAW.base" "$RAW.cur")"
FROZEN_COUNT="$(comm -12 "$RAW.base" "$RAW.cur" | wc -l)"

if [[ -n "$STALE" ]]; then
  echo "run_tidy: stale baseline entries (fixed debt — run --update-baseline):"
  sed 's/^/  /' <<< "$STALE"
fi
echo "run_tidy: $FROZEN_COUNT baselined finding(s) suppressed"
if [[ -n "$NEW" ]]; then
  echo "run_tidy: NEW findings (not in baseline):"
  sed 's/^/  /' <<< "$NEW"
  echo "run_tidy: FAIL — fix the findings above or justify + NOLINT them"
  exit 1
fi
echo "run_tidy: OK — no non-baseline findings"
