#!/usr/bin/env python3
"""cellfi_purity — cross-TU phase-purity analyzer for the CellFi tree.

PR 7's parallel subframe phases and the DESIGN.md §13 observability layer
both rest on *prose* purity contracts ("PlanDownlink is RNG-free",
"instrumentation never draws Rng nor schedules events"). The bit-identity
tests enforce them dynamically — but only along the scenarios a test
happens to exercise. This tool proves them statically, at review time:

  1. Extract every function definition in `src/` and an over-approximated
     cross-TU call graph (an unresolvable callee is assumed effect-free;
     a name shared by several definitions unions their effects).
  2. Infer per-function effects from data-driven rules
     (`tools/purity_rules/effects.json`):
       draws_rng        stateful RNG use (Rng methods, std::mt19937,
                        SplitMix64, std::random_device, rand)
       schedules_event  event-queue / Timer scheduling
       mutates_global   writes to process-global state (g_* convention,
                        setenv) and to frozen shared epoch state
                        (InterferenceMap's mutating API)
       emits_trace      TraceSink / MetricsRegistry emission
       takes_lock       lock acquisition
  3. Propagate effects transitively from contract roots
     (`tools/purity_rules/contracts.json`) and report every forbidden
     effect reachable from a root, with the full call chain:

       src/cellfi/lte/enodeb.cc:123: [parallel-shard-phase] \
           EnodeB::PlanDownlink -> Helper -> Rng::Uniform: draws_rng

Extraction prefers libclang (python bindings over the always-exported
compile_commands.json); when the bindings are unavailable it degrades to a
regex scanner with a non-silent notice, mirroring run_tidy.sh's graceful
skip. The degraded mode is conservative-by-name: calls resolve to every
indexed function with the same (optionally class-qualified) name.

Contract roots must be *registered* at their definition site with

  // cellfi-purity: contract-root(<contract>) <RootSpec>

and listed in contracts.json; a root in only one of the two places is an
annotation-drift finding, so a new parallel phase cannot appear without
declaring its purity obligations (DESIGN.md §16).

Suppression is per effect-site line, with stale-allow semantics identical
to cellfi_lint.py:

  h = HashWords(a, b);  // cellfi-purity: allow(draws_rng) — stateless hash

Modes:
  cellfi_purity.py --repo DIR             analyze DIR/src against the
                                          frozen baseline (expected empty)
  cellfi_purity.py --root DIR --rules D   fixture mode (purity_selftest)
  ... --expect FILE                       compare findings to FILE exactly
  ... --strict-allow                      fail on allow() comments whose
                                          effect never fires on that line
  ... --mode {auto,libclang,regex}        extraction backend (default auto)
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from collections import deque
from pathlib import Path

from cellfi_lint import build_allow_map, collect_allow_origins, sanitize_lines

CXX_SUFFIXES = {".cc", ".cpp", ".cxx", ".h", ".hpp"}
# Fixture trees contain planted violations; never analyze them in repo mode.
REPO_EXCLUDE_PARTS = ("tests/purity_selftest", "tests/lint_selftest")

ALLOW_RE = re.compile(r"cellfi-purity:\s*allow\(([^)]*)\)")
ANNOTATION_RE = re.compile(r"cellfi-purity:\s*contract-root\(([\w-]+)\)\s+([\w:~]+)")
CALL_RE = re.compile(r"([A-Za-z_]\w*)\s*\(")
QUALIFIER_RE = re.compile(r"([A-Za-z_]\w*)\s*::\s*$")
MEMBER_RE = re.compile(r"(?:\.|->)\s*$")

# Identifiers before '(' that are never call targets.
NON_CALL_KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "alignof", "decltype",
    "static_assert", "noexcept", "catch", "throw", "new", "delete", "assert",
    "defined", "alignas", "typeid", "co_await", "co_return", "co_yield",
}
SCOPE_KEYWORDS = NON_CALL_KEYWORDS | {"else", "do", "try", "case", "default"}

CLASS_RE = re.compile(r"\b(?:class|struct|union|enum)\s+(?:class\s+|struct\s+)?"
                      r"(?:\[\[[^\]]*\]\]\s*)?([A-Za-z_]\w*)")
NAMESPACE_RE = re.compile(r"\bnamespace\s*([A-Za-z_][\w:]*)?\s*$")
FUNC_NAME_RE = re.compile(r"([A-Za-z_~][\w]*(?:\s*::\s*[A-Za-z_~][\w]*)*)\s*$")


class FunctionDef:
    __slots__ = ("qual", "name", "path", "start", "end",
                 "calls", "effect_sites")

    def __init__(self, qual: str, path: str, start: int):
        self.qual = qual
        self.name = qual.rsplit("::", 1)[-1]
        self.path = path
        self.start = start
        self.end = start
        # (callee terminal name, explicit class qualifier or None, line)
        self.calls: list[tuple[str, str | None, int]] = []
        self.effect_sites: dict[str, list[int]] = {}

    def display(self) -> str:
        parts = self.qual.split("::")
        if len(parts) >= 2 and parts[-2][:1].isupper():
            return "::".join(parts[-2:])
        return parts[-1]


class Finding:
    __slots__ = ("path", "line", "tag", "chain", "message")

    def __init__(self, path: str, line: int, tag: str, chain: str, message: str):
        self.path = path
        self.line = line
        self.tag = tag
        self.chain = chain  # "Root -> f -> g: effect" or "" for meta findings
        self.message = message

    def key(self) -> str:
        body = self.chain if self.chain else self.message
        return f"{self.path}:{self.line}: [{self.tag}] {body}"

    def render(self) -> str:
        out = self.key()
        if self.chain and self.message:
            out += f"\n    {self.message}"
        return out


def blank_preprocessor(lines: list[str]) -> list[str]:
    """Blank #directives (and their continuation lines) so macro bodies
    never unbalance the brace scanner."""
    out = []
    cont = False
    for line in lines:
        is_pp = cont or line.lstrip().startswith("#")
        cont = is_pp and line.rstrip().endswith("\\")
        out.append("" if is_pp else line)
    return out


class RegexExtractor:
    """Brace-tracking scanner: function definitions with qualified names
    (namespace/class scope stack) and their body line ranges."""

    def __init__(self, rel_path: str, sanitized: list[str]):
        self.rel = rel_path
        self.lines = blank_preprocessor(sanitized)
        self.functions: list[FunctionDef] = []

    def parse(self) -> list[FunctionDef]:
        # Scope stack entries: (kind, name, FunctionDef | None).
        stack: list[tuple[str, str, FunctionDef | None]] = []
        buf: list[str] = []

        def at_decl_scope() -> bool:
            return all(kind in ("namespace", "class") for kind, _, _ in stack)

        def qual_prefix() -> str:
            parts = [name for kind, name, _ in stack
                     if kind in ("namespace", "class") and name]
            return "::".join(parts)

        for lineno, line in enumerate(self.lines, start=1):
            for ch in line:
                if ch == "{":
                    if at_decl_scope():
                        kind, name = self._classify("".join(buf))
                        fn = None
                        if kind == "function" and name:
                            qual = (qual_prefix() + "::" + name) if qual_prefix() else name
                            fn = FunctionDef(qual, self.rel, lineno)
                            self.functions.append(fn)
                        stack.append((kind, name or "", fn))
                        buf.clear()
                    else:
                        stack.append(("block", "", None))
                elif ch == "}":
                    if stack:
                        kind, _, fn = stack.pop()
                        if fn is not None:
                            fn.end = lineno
                elif ch == ";":
                    if at_decl_scope():
                        buf.clear()
                else:
                    if at_decl_scope():
                        buf.append(ch)
            if at_decl_scope():
                buf.append("\n")
        return self.functions

    @staticmethod
    def _classify(buf: str) -> tuple[str, str | None]:
        s = " ".join(buf.split())
        if not s:
            return "block", None
        m = NAMESPACE_RE.search(s)
        if m is not None and "=" not in s:  # not a namespace alias
            return "namespace", (m.group(1) or "(anon)").rsplit("::", 1)[-1]
        cm = CLASS_RE.search(s)
        # A braced initializer (`Foo x = {...}`) is never a definition scope.
        if "=" in s.replace("==", "").replace("!=", "").replace("<=", "") \
                   .replace(">=", "").split("(")[0]:
            return "block", None
        # Function: identifier immediately before the first top-level '('.
        depth = 0
        paren_at = -1
        for i, ch in enumerate(s):
            if ch == "<":
                depth += 1
            elif ch == ">":
                depth = max(0, depth - 1)
            elif ch == "(" and depth == 0:
                paren_at = i
                break
        if paren_at > 0:
            head = s[:paren_at].rstrip()
            if "operator" not in head:
                fm = FUNC_NAME_RE.search(head)
                if fm is not None:
                    name = re.sub(r"\s*", "", fm.group(1))
                    if name.rsplit("::", 1)[-1] not in SCOPE_KEYWORDS:
                        return "function", name
        if cm is not None:
            return "class", cm.group(1)
        return "block", None


def extract_calls(fn: FunctionDef, sanitized: list[str]) -> None:
    for lineno in range(fn.start, fn.end + 1):
        text = sanitized[lineno - 1]
        for m in CALL_RE.finditer(text):
            name = m.group(1)
            if name in NON_CALL_KEYWORDS:
                continue
            prefix = text[: m.start(1)]
            qm = QUALIFIER_RE.search(prefix)
            qualifier = qm.group(1) if qm else None
            if qualifier in ("std", "cellfi", "obs", "lte", "json", "chaos",
                            "scenario"):
                qualifier = None  # namespace, not a class: resolve by name
            fn.calls.append((name, qualifier, lineno))


class Analyzer:
    def __init__(self, root: Path, files: list[Path], rules_dir: Path):
        self.root = root
        self.files = files
        self.rules_dir = rules_dir
        self.effects = self._load_effects(rules_dir / "effects.json")
        self.contracts = self._load_contracts(rules_dir / "contracts.json")
        self.raw: dict[str, list[str]] = {}
        self.sanitized: dict[str, list[str]] = {}
        self.functions: list[FunctionDef] = []
        self.by_name: dict[str, list[FunctionDef]] = {}
        self.used_allows: set[tuple[str, int, str]] = set()
        self.findings: list[Finding] = []

    @staticmethod
    def _load_effects(path: Path) -> dict:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
        effects = {}
        for name, spec in doc.items():
            if name.startswith("_"):
                continue
            effects[name] = {
                "message": spec.get("message", name),
                "body": [re.compile(p) for p in spec.get("body", [])],
                "functions": [re.compile(rf"(?:^|::)(?:{p})$")
                              for p in spec.get("functions", [])],
            }
        if not effects:
            raise SystemExit(f"cellfi_purity: no effects in {path}")
        return effects

    @staticmethod
    def _load_contracts(path: Path) -> list[dict]:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
        contracts = [c for c in doc if not c.get("_comment_only")]
        for c in contracts:
            for field in ("name", "roots", "forbid"):
                if field not in c:
                    raise SystemExit(
                        f"cellfi_purity: contract in {path} missing '{field}'")
        return contracts

    def rel(self, path: Path) -> str:
        return path.relative_to(self.root).as_posix()

    # ---- extraction -----------------------------------------------------

    def load_sources(self) -> None:
        for path in self.files:
            rel = self.rel(path)
            text = path.read_text(encoding="utf-8", errors="replace")
            self.raw[rel] = text.splitlines()
            self.sanitized[rel] = sanitize_lines(text)

    def extract_regex(self) -> None:
        for path in self.files:
            rel = self.rel(path)
            fns = RegexExtractor(rel, self.sanitized[rel]).parse()
            body_lines = blank_preprocessor(self.sanitized[rel])
            for fn in fns:
                extract_calls(fn, body_lines)
            self.functions.extend(fns)
        self.functions.sort(key=lambda f: (f.path, f.start, f.qual))
        for fn in self.functions:
            self.by_name.setdefault(fn.name, []).append(fn)

    def extract_libclang(self, build_dir: Path) -> None:
        """AST-precise extraction. Any failure (missing bindings, missing
        compile database, parse errors) raises — the caller degrades to the
        regex backend with a notice."""
        import clang.cindex as ci  # noqa: F401 — ImportError => degrade

        index = ci.Index.create()
        db = ci.CompilationDatabase.fromDirectory(str(build_dir))
        want = {str(p) for p in self.files}
        seen: dict[str, FunctionDef] = {}

        def qual_name(cursor) -> str:
            parts = []
            c = cursor
            while c is not None and c.kind != ci.CursorKind.TRANSLATION_UNIT:
                if c.spelling:
                    parts.append(c.spelling)
                c = c.semantic_parent
            return "::".join(reversed(parts))

        def visit(cursor, fn_stack):
            kind = cursor.kind
            is_fn = kind in (ci.CursorKind.FUNCTION_DECL, ci.CursorKind.CXX_METHOD,
                             ci.CursorKind.CONSTRUCTOR, ci.CursorKind.DESTRUCTOR)
            current = fn_stack[-1] if fn_stack else None
            pushed = False
            if is_fn and cursor.is_definition() and cursor.location.file and \
                    str(cursor.location.file) in want:
                rel = Path(str(cursor.location.file)).resolve() \
                    .relative_to(self.root).as_posix()
                qual = qual_name(cursor)
                fn = seen.get(qual + "@" + rel)
                if fn is None:
                    fn = FunctionDef(qual, rel, cursor.extent.start.line)
                    fn.end = cursor.extent.end.line
                    seen[qual + "@" + rel] = fn
                fn_stack.append(fn)
                pushed = True
                current = fn
            elif kind == ci.CursorKind.CALL_EXPR and current is not None:
                ref = cursor.referenced
                name = (ref.spelling if ref is not None else cursor.spelling) or ""
                if name:
                    current.calls.append((name, None, cursor.location.line))
            for child in cursor.get_children():
                visit(child, fn_stack)
            if pushed:
                fn_stack.pop()

        for path in sorted(want):
            if not path.endswith((".cc", ".cpp", ".cxx")):
                continue
            cmds = db.getCompileCommands(path)
            args = []
            if cmds:
                args = [a for a in list(cmds[0].arguments)[1:-1]
                        if a not in ("-c", "-o")]
            tu = index.parse(path, args=args)
            visit(tu.cursor, [])
        self.functions = sorted(seen.values(), key=lambda f: (f.path, f.start, f.qual))
        for fn in self.functions:
            self.by_name.setdefault(fn.name, []).append(fn)

    # ---- effects --------------------------------------------------------

    def compute_direct_effects(self) -> None:
        for fn in self.functions:
            body = blank_preprocessor(self.sanitized[fn.path])
            for effect, spec in self.effects.items():
                sites: list[int] = []
                if any(p.search(fn.qual) for p in spec["functions"]):
                    sites.append(fn.start)
                for lineno in range(fn.start, min(fn.end, len(body)) + 1):
                    if any(p.search(body[lineno - 1]) for p in spec["body"]):
                        sites.append(lineno)
                if sites:
                    fn.effect_sites[effect] = sorted(set(sites))

    def resolve(self, name: str, qualifier: str | None,
                caller_path: str) -> list[FunctionDef]:
        cands = self.by_name.get(name, [])
        if qualifier:
            suffix = f"{qualifier}::{name}"
            return [f for f in cands
                    if f.qual == suffix or f.qual.endswith("::" + suffix)]
        # Anonymous-namespace definitions have TU-local linkage: if the
        # caller's file defines this name in an anonymous namespace, the call
        # cannot reach same-named functions in other TUs.
        local = [f for f in cands
                 if f.path == caller_path and "(anon)" in f.qual]
        return local if local else cands

    # ---- contracts ------------------------------------------------------

    def match_roots(self, spec: str) -> list[FunctionDef]:
        return [f for f in self.functions
                if f.qual == spec or f.qual.endswith("::" + spec)]

    def check_contracts(self) -> None:
        contracts_rel = self._rules_rel("contracts.json")
        emitted: set[str] = set()
        for contract in self.contracts:
            cname = contract["name"]
            forbid = contract["forbid"]
            for spec in contract["roots"]:
                roots = self.match_roots(spec)
                if not roots:
                    self.findings.append(Finding(
                        contracts_rel, 1, cname, "",
                        f"root '{spec}' matches no function definition in the "
                        f"scanned tree (renamed or removed? update the "
                        f"contract and its source annotation)"))
                    continue
                for root in roots:
                    self._bfs(cname, spec, root, forbid, emitted)
        self.findings.sort(key=lambda f: (f.path, f.line, f.tag, f.chain, f.message))

    def _bfs(self, cname: str, spec: str, root: FunctionDef,
             forbid: list[str], emitted: set[str]) -> None:
        # Shortest chain from the root to every reachable forbidden effect
        # site; deterministic because neighbors expand in sorted order.
        start = (root.path, root.qual)
        parents: dict[tuple[str, str], FunctionDef] = {start: root}
        order: dict[tuple[str, str], tuple[str, str] | None] = {start: None}
        queue = deque([start])
        while queue:
            key = queue.popleft()
            fn = parents[key]
            self._report_sites(cname, fn, key, order, parents, forbid, emitted)
            callees: dict[tuple[str, str], FunctionDef] = {}
            for name, qualifier, _line in fn.calls:
                for callee in self.resolve(name, qualifier, fn.path):
                    callees[(callee.path, callee.qual)] = callee
            for ckey in sorted(callees):
                if ckey in order:
                    continue
                parents[ckey] = callees[ckey]
                order[ckey] = key
                queue.append(ckey)

    def _report_sites(self, cname, fn, key, order, parents, forbid, emitted):
        for effect in forbid:
            sites = fn.effect_sites.get(effect)
            if not sites:
                continue
            chain_fns = []
            k = key
            while k is not None:
                chain_fns.append(parents[k])
                k = order[k]
            chain = " -> ".join(f.display() for f in reversed(chain_fns))
            # The reporting (and suppression) unit is the function's FIRST
            # effect site: an allow() there declares the whole function's use
            # of the effect deliberate (e.g. a stateless hash).
            site = sites[0]
            allow = self._allow_map(fn.path)
            if effect in allow[site]:
                self.used_allows.add((fn.path, allow[site][effect], effect))
                continue
            finding = Finding(fn.path, site, cname,
                              f"{chain}: {effect}",
                              self.effects[effect]["message"])
            if finding.key() in emitted:
                continue
            emitted.add(finding.key())
            self.findings.append(finding)

    _allow_cache: dict[str, list] = {}

    def _allow_map(self, rel: str):
        cached = self._allow_cache.get(rel)
        if cached is None:
            cached = build_allow_map(self.raw[rel], self.sanitized[rel], ALLOW_RE)
            self._allow_cache[rel] = cached
        return cached

    def _rules_rel(self, name: str) -> str:
        p = self.rules_dir / name
        try:
            return p.resolve().relative_to(self.root).as_posix()
        except ValueError:
            return p.as_posix()

    # ---- annotations ----------------------------------------------------

    def check_annotations(self) -> None:
        """Two-way registration: every contracts.json root is annotated at a
        definition/declaration site, and every annotation names a contract
        root that exists — so adding a parallel phase without declaring its
        purity obligations (or retiring one silently) is a finding."""
        contracts_rel = self._rules_rel("contracts.json")
        declared = {(c["name"], spec) for c in self.contracts for spec in c["roots"]}
        annotated: dict[tuple[str, str], tuple[str, int]] = {}
        for rel in sorted(self.raw):
            for lineno, line in enumerate(self.raw[rel], start=1):
                for m in ANNOTATION_RE.finditer(line):
                    annotated.setdefault((m.group(1), m.group(2)), (rel, lineno))
        for cname, spec in sorted(declared - set(annotated)):
            self.findings.append(Finding(
                contracts_rel, 1, cname, "",
                f"root '{spec}' is not annotated at its definition — add "
                f"'// cellfi-purity: contract-root({cname}) {spec}'"))
        for (cname, spec), (rel, lineno) in sorted(annotated.items()):
            if (cname, spec) not in declared:
                self.findings.append(Finding(
                    rel, lineno, cname, "",
                    f"annotation contract-root({cname}) {spec} has no matching "
                    f"entry in contracts.json — register the root there too"))

    # ---- stale allows ---------------------------------------------------

    def stale_allow_findings(self) -> list[Finding]:
        stale = []
        for rel in sorted(self.raw):
            for line, effect in collect_allow_origins(self.raw[rel], ALLOW_RE):
                if (rel, line, effect) in self.used_allows:
                    continue
                why = ("unknown effect" if effect not in self.effects
                       else "no forbidden-effect chain ends on this line")
                stale.append(Finding(
                    rel, line, "stale-allow", "",
                    f"allow({effect}) suppresses nothing ({why}); delete the "
                    f"comment or fix the effect name"))
        return stale


def collect_files(root: Path, repo_mode: bool) -> list[Path]:
    tops = [root / "src"] if repo_mode else [root]
    files: list[Path] = []
    for top in tops:
        if not top.is_dir():
            continue
        for path in sorted(top.rglob("*")):
            if path.suffix not in CXX_SUFFIXES or not path.is_file():
                continue
            rel = path.relative_to(root).as_posix()
            if repo_mode and any(part in rel for part in REPO_EXCLUDE_PARTS):
                continue
            files.append(path)
    return files


def load_baseline(path: Path) -> list[str]:
    if not path.is_file():
        return []
    return [ln.strip() for ln in path.read_text(encoding="utf-8").splitlines()
            if ln.strip() and not ln.lstrip().startswith("#")]


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode_group = ap.add_mutually_exclusive_group()
    mode_group.add_argument("--repo", metavar="DIR",
                            help="repo root; analyzes DIR/src vs the baseline")
    mode_group.add_argument("--root", metavar="DIR",
                            help="analyze every C++ file under DIR (fixtures)")
    ap.add_argument("--rules", metavar="DIR",
                    help="rules dir with effects.json + contracts.json "
                         "(default: <script>/purity_rules)")
    ap.add_argument("--baseline", metavar="FILE",
                    help="frozen findings baseline "
                         "(default: <script>/purity_baseline.txt; repo mode)")
    ap.add_argument("--expect", metavar="FILE",
                    help="selftest: compare findings to FILE exactly")
    ap.add_argument("--mode", choices=("auto", "libclang", "regex"),
                    default="auto", help="extraction backend (default auto)")
    ap.add_argument("--build-dir", metavar="DIR",
                    help="build dir with compile_commands.json (libclang mode; "
                         "default <root>/build)")
    ap.add_argument("--strict-allow", action="store_true",
                    help="fail on allow() comments that suppress nothing")
    ap.add_argument("--list-effects", action="store_true")
    ap.add_argument("--list-contracts", action="store_true")
    args = ap.parse_args(argv)

    script_dir = Path(__file__).resolve().parent
    rules_dir = Path(args.rules) if args.rules else script_dir / "purity_rules"
    if args.repo is None and args.root is None:
        ap.error("one of --repo or --root is required")
    repo_mode = args.repo is not None
    root = Path(args.repo if repo_mode else args.root).resolve()
    if not root.is_dir():
        print(f"cellfi_purity: no such directory: {root}", file=sys.stderr)
        return 2

    files = collect_files(root, repo_mode)
    if not files:
        print(f"cellfi_purity: no C++ files under {root}", file=sys.stderr)
        return 2

    analyzer = Analyzer(root, files, rules_dir)
    if args.list_effects:
        for name, spec in analyzer.effects.items():
            print(f"{name:<18} {spec['message']}")
        return 0
    if args.list_contracts:
        for c in analyzer.contracts:
            print(f"{c['name']}: forbid {','.join(c['forbid'])}")
            for spec in c["roots"]:
                print(f"    {spec}")
        return 0

    analyzer.load_sources()
    backend = args.mode
    if backend in ("auto", "libclang"):
        build_dir = Path(args.build_dir) if args.build_dir else root / "build"
        try:
            analyzer.extract_libclang(build_dir)
            backend = "libclang"
        except Exception as exc:  # noqa: BLE001 — degrade on *any* failure
            if args.mode == "libclang":
                print(f"cellfi_purity: libclang extraction failed: {exc}",
                      file=sys.stderr)
                return 2
            print("cellfi_purity: libclang unavailable "
                  f"({type(exc).__name__}: {exc}) — degraded regex mode "
                  "(name-resolved call graph; install python3-clang for "
                  "AST-precise edges)")
            backend = "regex"
    if backend == "regex":
        analyzer.extract_regex()

    analyzer.compute_direct_effects()
    analyzer.check_annotations()
    analyzer.check_contracts()
    if args.strict_allow:
        analyzer.findings.extend(analyzer.stale_allow_findings())
    analyzer.findings.sort(
        key=lambda f: (f.path, f.line, f.tag, f.chain, f.message))
    findings = analyzer.findings
    stats = (f"{len(analyzer.functions)} functions in {len(files)} files, "
             f"{len(analyzer.contracts)} contracts, backend={backend}")

    if args.expect:
        expected = [ln.strip()
                    for ln in Path(args.expect).read_text(encoding="utf-8").splitlines()
                    if ln.strip() and not ln.lstrip().startswith("#")]
        actual = [f.key() for f in findings]
        if actual == expected:
            print(f"cellfi_purity selftest OK: {len(actual)} expected "
                  f"finding(s) matched ({stats})")
            return 0
        print("cellfi_purity selftest FAILED — findings differ:")
        for line in sorted(set(expected) - set(actual)):
            print(f"  missing:    {line}")
        for line in sorted(set(actual) - set(expected)):
            print(f"  unexpected: {line}")
        if actual != expected and set(actual) == set(expected):
            print("  (same findings, different order)")
        return 1

    baseline_path = (Path(args.baseline) if args.baseline
                     else script_dir / "purity_baseline.txt")
    baseline = load_baseline(baseline_path) if repo_mode or args.baseline else []
    actual_keys = [f.key() for f in findings]
    new = [f for f in findings if f.key() not in set(baseline)]
    stale = sorted(set(baseline) - set(actual_keys))
    frozen = len(actual_keys) - len(new)

    if stale:
        print("cellfi_purity: stale baseline entries (fixed debt — prune "
              f"{baseline_path.name}):")
        for line in stale:
            print(f"  {line}")
    if frozen:
        print(f"cellfi_purity: {frozen} baselined finding(s) suppressed")
    if new:
        for f in new:
            print(f.render())
        print(f"\ncellfi_purity: {len(new)} new finding(s) ({stats})")
        return 1
    print(f"cellfi_purity: clean — {stats}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
