#!/usr/bin/env python3
"""cellfi_lint — CellFi determinism & hygiene lint.

Enforces the determinism contract from DESIGN.md §10/§11: sweep outcomes
must depend only on (config, topology), never on thread count, completion
order, or wall clock. The linter is AST-free (regex + light context) so it
runs in milliseconds with no dependency beyond Python 3; it is wired into
ctest as `lint_test` so a stray `rand()` in a sim path fails the build's
test suite, not just code review.

Rules live in `tools/lint_rules/*.json`, one file per rule:

  {
    "id":      "no-libc-rand",          // stable rule id, used in allow()
    "kind":    "regex",                  // regex | unordered-iter | env-doc
    "pattern": "...",                    // for kind == regex / float-seed-ish
    "message": "human-facing finding text",
    "paths":   ["src/", "bench/"],       // path prefixes the rule applies to
    "exclude": ["src/cellfi/common/rng.h"]
  }

Suppression is per line, with a justification encouraged; a comment-only
allow() line suppresses the line that follows it:

  code();  // cellfi-lint: allow(no-unordered-iter) — commutative count

  // cellfi-lint: allow(no-unordered-iter) — commutative count
  for (const auto& [k, v] : unordered_thing_) { ... }

Matching happens on a sanitized copy of each line: string/char literal
contents and comments (// and /* */) are blanked first, so prose never
trips a rule and suppressions cannot hide in strings.

Modes:
  cellfi_lint.py --repo DIR              lint DIR/{src,bench,tests,examples}
  cellfi_lint.py --root DIR              lint every C++ file under DIR
                                         (selftest fixtures; README.md in DIR)
  ... --expect FILE                      compare findings against FILE
                                         ("path:line: rule-id" lines) and
                                         fail on any difference
  ... --strict-allow                     stale-suppression audit: an allow()
                                         comment whose rule no longer fires
                                         on its line (or that names an
                                         unknown rule id) is reported as a
                                         `stale-allow` finding, so
                                         suppressions cannot outlive the
                                         code they excused
  ... --list-rules                       print the loaded rule catalog
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

CXX_SUFFIXES = {".cc", ".cpp", ".cxx", ".h", ".hpp"}
REPO_SCAN_DIRS = ("src", "bench", "tests", "examples")
# Fixture trees contain violations on purpose; never lint them in repo mode.
REPO_EXCLUDE_PARTS = ("tests/lint_selftest",)

ALLOW_RE = re.compile(r"cellfi-lint:\s*allow\(([^)]*)\)")
# Declarations of unordered containers, e.g.
#   std::unordered_map<UeId, Entry> heard_;
#   std::unordered_set<std::uint64_t> cancelled_;
UNORDERED_DECL_RE = re.compile(
    r"unordered_(?:map|set|multimap|multiset)\s*<[^;{]*>\s+(\w+)\s*(?:;|=|\{)"
)
# Type aliases that resolve to unordered containers, collected cross-file so
# a `CellMap cells_;` member behind `using CellMap = std::unordered_map<...>`
# still registers `cells_` as unordered:
#   using CellMap = std::unordered_map<CellId, Entry>;
#   typedef std::unordered_map<CellId, Entry> CellMap;
UNORDERED_ALIAS_USING_RE = re.compile(
    r"\busing\s+(\w+)\s*=\s*(?:std\s*::\s*)?unordered_(?:map|set|multimap|multiset)\s*<"
)
UNORDERED_ALIAS_TYPEDEF_RE = re.compile(
    r"\btypedef\s+(?:std\s*::\s*)?unordered_(?:map|set|multimap|multiset)\s*<[^;]*>\s*(\w+)\s*;"
)
RANGE_FOR_RE = re.compile(r"\bfor\s*\(([^;)]*):([^)]*)\)")
ENV_LOOKUP_RE = re.compile(r"\b(?:getenv|setenv)\s*\(\s*\"([A-Z][A-Z0-9_]+)\"")


class Finding:
    __slots__ = ("path", "line", "rule_id", "message")

    def __init__(self, path: str, line: int, rule_id: str, message: str):
        self.path = path
        self.line = line
        self.rule_id = rule_id
        self.message = message

    def key(self) -> str:
        return f"{self.path}:{self.line}: {self.rule_id}"

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}: [{self.rule_id}] {self.message}\n"
            f"    (suppress with: // cellfi-lint: allow({self.rule_id}) — <why>)"
        )


def load_rules(rules_dir: Path) -> list[dict]:
    rules = []
    for path in sorted(rules_dir.glob("*.json")):
        with open(path, encoding="utf-8") as fh:
            rule = json.load(fh)
        for required in ("id", "kind", "message"):
            if required not in rule:
                raise SystemExit(f"cellfi_lint: rule {path} missing '{required}'")
        if rule["kind"] == "regex":
            rule["_regex"] = re.compile(rule["pattern"])
        rules.append(rule)
    if not rules:
        raise SystemExit(f"cellfi_lint: no rules found in {rules_dir}")
    return rules


def sanitize_lines(text: str) -> list[str]:
    """Blank string/char literal contents and comments, preserving line
    structure and column positions so reported line numbers stay exact."""
    out: list[str] = []
    in_block = False
    for raw in text.splitlines():
        buf = []
        i, n = 0, len(raw)
        while i < n:
            c = raw[i]
            if in_block:
                if c == "*" and i + 1 < n and raw[i + 1] == "/":
                    in_block = False
                    buf.append("  ")
                    i += 2
                else:
                    buf.append(" ")
                    i += 1
                continue
            if c == "/" and i + 1 < n and raw[i + 1] == "/":
                buf.append(" " * (n - i))
                break
            if c == "/" and i + 1 < n and raw[i + 1] == "*":
                in_block = True
                buf.append("  ")
                i += 2
                continue
            if c in "\"'":
                quote = c
                buf.append(quote)
                i += 1
                while i < n:
                    if raw[i] == "\\" and i + 1 < n:
                        buf.append("  ")
                        i += 2
                        continue
                    if raw[i] == quote:
                        buf.append(quote)
                        i += 1
                        break
                    buf.append(" ")
                    i += 1
                continue
            buf.append(c)
            i += 1
        out.append("".join(buf))
    return out


def build_allow_map(
    raw: list[str], sanitized: list[str], allow_re: re.Pattern = ALLOW_RE
) -> list[dict[str, int]]:
    """allow-map per 1-indexed line: {rule-id: origin line of the allow()
    comment}. Same-line allow(), plus a comment-only allow() line carrying
    through any further comment-only lines to the first code line after it
    (NOLINTNEXTLINE-style, multi-line justifications ok). Origin lines feed
    the --strict-allow stale-suppression audit: an allow() whose rule never
    fires on any line it covers is itself a finding."""
    n = len(raw)
    allow: list[dict[str, int]] = [{} for _ in range(n + 2)]

    def grant(line: int, ids: set[str], origin: int) -> None:
        for rule_id in ids:
            allow[line].setdefault(rule_id, origin)

    for idx, raw_line in enumerate(raw, start=1):
        m = allow_re.search(raw_line)
        if not m:
            continue
        ids = {tok.strip() for tok in m.group(1).split(",") if tok.strip()}
        if not ids:
            continue
        grant(idx, ids, idx)
        if not sanitized[idx - 1].strip():  # comment-only line
            nxt = idx + 1
            while nxt <= n and not sanitized[nxt - 1].strip():
                grant(nxt, ids, idx)
                nxt += 1
            if nxt <= n:
                grant(nxt, ids, idx)
    return allow


def collect_allow_origins(
    raw: list[str], allow_re: re.Pattern = ALLOW_RE
) -> list[tuple[int, str]]:
    """Every (line, rule-id) pair declared by an allow() comment in `raw`."""
    origins: list[tuple[int, str]] = []
    for idx, raw_line in enumerate(raw, start=1):
        m = allow_re.search(raw_line)
        if not m:
            continue
        for tok in m.group(1).split(","):
            if tok.strip():
                origins.append((idx, tok.strip()))
    return origins


def rule_applies(rule: dict, rel_path: str) -> bool:
    paths = rule.get("paths")
    if paths and not any(rel_path.startswith(p) for p in paths):
        return False
    if any(rel_path == e or rel_path.startswith(e) for e in rule.get("exclude", [])):
        return False
    return True


def trailing_identifier(expr: str) -> str:
    """Identifier a range-for actually iterates: `net.cells()` -> `cells`,
    `stats.ue_subchannel_subframes` -> `ue_subchannel_subframes`."""
    expr = expr.strip()
    expr = re.sub(r"\(\s*\)$", "", expr).strip()
    m = re.search(r"(\w+)$", expr)
    return m.group(1) if m else ""


class Linter:
    def __init__(self, rules: list[dict], root: Path, files: list[Path]):
        self.rules = rules
        self.root = root
        self.files = files
        self.findings: list[Finding] = []
        # Pass 1 products, shared by the context-sensitive rules.
        self.unordered_names: set[str] = set()
        self.unordered_aliases: set[str] = set()
        self.sanitized: dict[Path, list[str]] = {}
        self.raw: dict[Path, list[str]] = {}
        # (rel-path, allow-origin-line, rule-id) triples that suppressed at
        # least one finding — the complement is the --strict-allow audit.
        self.used_allows: set[tuple[str, int, str]] = set()

    def rel(self, path: Path) -> str:
        return path.relative_to(self.root).as_posix()

    def run(self) -> list[Finding]:
        for path in self.files:
            text = path.read_text(encoding="utf-8", errors="replace")
            self.raw[path] = text.splitlines()
            san = sanitize_lines(text)
            self.sanitized[path] = san
            for line in san:
                for m in UNORDERED_DECL_RE.finditer(line):
                    self.unordered_names.add(m.group(1))
                for m in UNORDERED_ALIAS_USING_RE.finditer(line):
                    self.unordered_aliases.add(m.group(1))
                for m in UNORDERED_ALIAS_TYPEDEF_RE.finditer(line):
                    self.unordered_aliases.add(m.group(1))

        # Pass 1.5: declarations typed by a collected alias register their
        # variable exactly like a direct unordered declaration would. Aliases
        # are collected across every file first, so a header's `using CellMap
        # = std::unordered_map<...>` covers a .cc's `CellMap cells_;`.
        if self.unordered_aliases:
            alias_alt = "|".join(sorted(re.escape(a) for a in self.unordered_aliases))
            alias_decl_re = re.compile(
                rf"\b(?:{alias_alt})\s+(\w+)\s*(?:;|=|\{{)"
            )
            for path in self.files:
                for line in self.sanitized[path]:
                    for m in alias_decl_re.finditer(line):
                        self.unordered_names.add(m.group(1))

        for path in self.files:
            rel = self.rel(path)
            san = self.sanitized[path]
            allow = build_allow_map(self.raw[path], san)
            for rule in self.rules:
                if not rule_applies(rule, rel):
                    continue
                kind = rule["kind"]
                for lineno, code in enumerate(san, start=1):
                    if kind == "regex":
                        hit = rule["_regex"].search(code)
                    elif kind == "unordered-iter":
                        hit = self._unordered_iter_hit(code)
                    else:
                        raise SystemExit(f"cellfi_lint: unknown rule kind '{kind}'")
                    if not hit:
                        continue
                    if rule["id"] in allow[lineno]:
                        self.used_allows.add((rel, allow[lineno][rule["id"]], rule["id"]))
                        continue
                    self.findings.append(Finding(rel, lineno, rule["id"], rule["message"]))
        self.findings.sort(key=lambda f: (f.path, f.line, f.rule_id))
        return self.findings

    def stale_allow_findings(self, known_rules: set[str]) -> list[Finding]:
        """--strict-allow audit: every allow() whose rule id never suppressed
        a finding is stale — the hazard was fixed (drop the comment) or the
        rule id is misspelled (the comment never protected anything)."""
        stale = []
        for path in self.files:
            rel = self.rel(path)
            for line, rule_id in collect_allow_origins(self.raw[path]):
                if (rel, line, rule_id) in self.used_allows:
                    continue
                why = ("unknown rule id" if rule_id not in known_rules
                       else "rule no longer fires on the suppressed line")
                stale.append(Finding(
                    rel, line, "stale-allow",
                    f"allow({rule_id}) suppresses nothing ({why}); "
                    f"delete the comment or fix the rule id"))
        return stale

    def _unordered_iter_hit(self, code: str):
        for m in RANGE_FOR_RE.finditer(code):
            range_expr = m.group(2)
            if "unordered_" in range_expr:
                return True
            if trailing_identifier(range_expr) in self.unordered_names:
                return True
            # A temporary / cast spelled via a collected alias type.
            if any(re.search(rf"\b{re.escape(a)}\b", range_expr)
                   for a in self.unordered_aliases):
                return True
        return False



def run_env_doc(linter: Linter, rule: dict, readme_text: str) -> list[Finding]:
    findings = []
    prefix = rule.get("prefix", "CELLFI_")
    for path in linter.files:
        rel = linter.rel(path)
        if not rule_applies(rule, rel):
            continue
        allow = build_allow_map(linter.raw[path], linter.sanitized[path])
        for lineno, raw_line in enumerate(linter.raw[path], start=1):
            for m in ENV_LOOKUP_RE.finditer(raw_line):
                name = m.group(1)
                if not name.startswith(prefix):
                    continue
                if name in readme_text:
                    continue
                if rule["id"] in allow[lineno]:
                    linter.used_allows.add((rel, allow[lineno][rule["id"]], rule["id"]))
                    continue
                findings.append(
                    Finding(rel, lineno, rule["id"], f"{rule['message']} (knob: {name})")
                )
    return findings


def collect_files(root: Path, repo_mode: bool) -> list[Path]:
    files: list[Path] = []
    if repo_mode:
        tops = [root / d for d in REPO_SCAN_DIRS]
    else:
        tops = [root]
    for top in tops:
        if not top.is_dir():
            continue
        for path in sorted(top.rglob("*")):
            if path.suffix not in CXX_SUFFIXES or not path.is_file():
                continue
            rel = path.relative_to(root).as_posix()
            if repo_mode and any(part in rel for part in REPO_EXCLUDE_PARTS):
                continue
            files.append(path)
    return files


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = ap.add_mutually_exclusive_group()
    mode.add_argument("--repo", metavar="DIR", help="repo root; lints src/ bench/ tests/ examples/")
    mode.add_argument("--root", metavar="DIR", help="lint every C++ file under DIR (fixture mode)")
    ap.add_argument("--rules", metavar="DIR", help="rules directory (default: <script>/lint_rules)")
    ap.add_argument("--expect", metavar="FILE", help="selftest: compare findings to FILE")
    ap.add_argument("--strict-allow", action="store_true",
                    help="fail on allow() comments whose rule no longer fires "
                         "on the suppressed line (stale-suppression audit)")
    ap.add_argument("--list-rules", action="store_true", help="print rule catalog and exit")
    args = ap.parse_args(argv)

    rules_dir = Path(args.rules) if args.rules else Path(__file__).resolve().parent / "lint_rules"
    rules = load_rules(rules_dir)

    if args.list_rules:
        for rule in rules:
            print(f"{rule['id']:<22} [{rule['kind']}] {rule['message']}")
        return 0

    if args.repo is None and args.root is None:
        ap.error("one of --repo or --root is required")
    repo_mode = args.repo is not None
    root = Path(args.repo if repo_mode else args.root).resolve()
    if not root.is_dir():
        print(f"cellfi_lint: no such directory: {root}", file=sys.stderr)
        return 2
    files = collect_files(root, repo_mode)
    if not files:
        print(f"cellfi_lint: no C++ files under {root}", file=sys.stderr)
        return 2

    linter = Linter([r for r in rules if r["kind"] != "env-doc"], root, files)
    findings = linter.run()
    readme_text = ""
    if (root / "README.md").is_file():
        readme_text = (root / "README.md").read_text(encoding="utf-8", errors="replace")
    for rule in rules:
        if rule["kind"] == "env-doc":
            findings.extend(run_env_doc(linter, rule, readme_text))
    if args.strict_allow:
        findings.extend(linter.stale_allow_findings({r["id"] for r in rules}))
    findings.sort(key=lambda f: (f.path, f.line, f.rule_id))

    if args.expect:
        expected = [
            ln.strip()
            for ln in Path(args.expect).read_text(encoding="utf-8").splitlines()
            if ln.strip() and not ln.lstrip().startswith("#")
        ]
        actual = [f.key() for f in findings]
        if actual == expected:
            print(f"cellfi_lint selftest OK: {len(actual)} expected findings matched")
            return 0
        print("cellfi_lint selftest FAILED — findings differ from expectations:")
        for line in sorted(set(expected) - set(actual)):
            print(f"  missing:    {line}")
        for line in sorted(set(actual) - set(expected)):
            print(f"  unexpected: {line}")
        if len(actual) == len(expected) and set(actual) == set(expected):
            print("  (same findings, different order)")
        return 1

    if findings:
        for f in findings:
            print(f.render())
        print(
            f"\ncellfi_lint: {len(findings)} finding(s) in {len(files)} files "
            f"({len(rules)} rules)"
        )
        return 1
    print(f"cellfi_lint: clean — {len(files)} files, {len(rules)} rules")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
